// Benchmarks regenerating the evaluation of the FliX paper (§6), one per
// table/figure, plus ablations of the design decisions in DESIGN.md §4.
// The dataset is the synthetic DBLP collection at full paper scale (6,210
// documents); set FLIX_BENCH_DOCS to shrink it for quick runs.
//
//	go test -bench=. -benchmem
//
// Reported custom metrics: bytes-of-index and meta-documents for Table 1,
// error-rate for the order experiment, label-entries for the HOPI cover
// ablation.
package flix_test

import (
	"os"
	"strconv"
	"sync"
	"testing"

	flix "repro"
	"repro/internal/bench"
	"repro/internal/dblp"
	"repro/internal/hopi"
	"repro/internal/lgraph"
	"repro/internal/query"
	"repro/internal/xmlgraph"
)

var (
	expOnce sync.Once
	exp     *bench.Experiment

	builtMu sync.Mutex
	builtBy map[string]bench.Built
)

// experiment lazily generates the shared collection.
func experiment(tb testing.TB) *bench.Experiment {
	expOnce.Do(func() {
		docs := 6210
		if s := os.Getenv("FLIX_BENCH_DOCS"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				docs = v
			}
		}
		exp = bench.NewExperiment(dblp.Scaled(docs))
		builtBy = make(map[string]bench.Built)
	})
	return exp
}

// built lazily builds one strategy and caches it across benchmarks.
func built(tb testing.TB, e bench.Entry) bench.Built {
	ex := experiment(tb)
	builtMu.Lock()
	defer builtMu.Unlock()
	if b, ok := builtBy[e.Label]; ok {
		return b
	}
	bs, err := ex.BuildAll([]bench.Entry{e})
	if err != nil {
		tb.Fatal(err)
	}
	builtBy[e.Label] = bs[0]
	return bs[0]
}

// BenchmarkTable1IndexSizes regenerates Table 1: per strategy, the build
// time is the benchmark time and the serialized size is reported as
// index-bytes.
func BenchmarkTable1IndexSizes(b *testing.B) {
	e := experiment(b)
	for _, en := range bench.PaperStrategies() {
		b.Run(en.Label, func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				ix, err := flix.Build(e.Coll, en.Config)
				if err != nil {
					b.Fatal(err)
				}
				bytes, err = ix.SizeBytes()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(bytes), "index-bytes")
		})
	}
}

// BenchmarkFigure5QueryTime regenerates Figure 5: time to deliver the first
// 100 results of start//article per strategy.
func BenchmarkFigure5QueryTime(b *testing.B) {
	e := experiment(b)
	for _, en := range bench.PaperStrategies() {
		bu := built(b, en)
		b.Run(en.Label, func(b *testing.B) {
			results := 0
			for i := 0; i < b.N; i++ {
				results = 0
				bu.Index.Descendants(e.Start, "article",
					flix.Options{MaxResults: 100}, func(flix.Result) bool {
						results++
						return true
					})
			}
			b.ReportMetric(float64(results), "results")
		})
	}
}

// BenchmarkFigure5FirstResult measures the latency to the very first
// result — the regime where the paper's FliX configurations beat monolithic
// HOPI.
func BenchmarkFigure5FirstResult(b *testing.B) {
	e := experiment(b)
	for _, en := range bench.PaperStrategies() {
		bu := built(b, en)
		b.Run(en.Label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bu.Index.Descendants(e.Start, "article",
					flix.Options{MaxResults: 1}, func(flix.Result) bool { return true })
			}
		})
	}
}

// BenchmarkFigure5AllResults measures the complete evaluation — the regime
// where monolithic HOPI is "clearly the fastest to return all results".
func BenchmarkFigure5AllResults(b *testing.B) {
	e := experiment(b)
	for _, en := range bench.PaperStrategies() {
		bu := built(b, en)
		b.Run(en.Label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bu.Index.Descendants(e.Start, "article",
					flix.Options{}, func(flix.Result) bool { return true })
			}
		})
	}
}

// BenchmarkErrorRates regenerates the in-text order-error experiment; the
// rate is reported as error-pct (paper: HOPI-5000 8.2%, HOPI-20000 10.4%,
// Maximal PPO 13.3%).
func BenchmarkErrorRates(b *testing.B) {
	e := experiment(b)
	oracle := bench.OracleDistances(e.Coll, e.Start, "article")
	for _, en := range bench.PaperStrategies() {
		bu := built(b, en)
		b.Run(en.Label, func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				ts := bench.QueryTimeSeries(bu, e.Start, "article", 0)
				rate = bench.ErrorRate(ts.Results, oracle)
			}
			b.ReportMetric(100*rate, "error-pct")
		})
	}
}

// BenchmarkConnectionTest regenerates the connection-test experiment
// ("same trend, lower absolute numbers").
func BenchmarkConnectionTest(b *testing.B) {
	e := experiment(b)
	for _, en := range bench.PaperStrategies() {
		bu := built(b, en)
		b.Run(en.Label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bench.ConnectionTest(bu, e.Coll, e.Start, 20)
			}
		})
	}
}

// BenchmarkAblationHopiCover compares the pruned 2-hop cover against the
// naive transitive-closure labeling (DESIGN.md §4.1) on one meta-document
// sized graph; label-entries quantifies the compression.
func BenchmarkAblationHopiCover(b *testing.B) {
	e := experiment(b)
	// Flatten a mid-sized subgraph: the first 500 documents.
	lb := lgraph.NewBuilder()
	limit := 500
	if e.Coll.NumDocs() < limit {
		limit = e.Coll.NumDocs()
	}
	var last xmlgraph.NodeID
	for d := 0; d < limit; d++ {
		first, l := e.Coll.Doc(xmlgraph.DocID(d)).Nodes()
		for n := first; n < l; n++ {
			lb.AddNode(e.Coll.Tag(n))
			last = n
		}
	}
	for d := 0; d < limit; d++ {
		first, l := e.Coll.Doc(xmlgraph.DocID(d)).Nodes()
		for n := first; n < l; n++ {
			e.Coll.EachChild(n, func(ch xmlgraph.NodeID) {
				lb.AddEdge(int32(n), int32(ch))
			})
		}
	}
	for _, lk := range e.Coll.Links() {
		if lk.From <= last && lk.To <= last {
			lb.AddEdge(int32(lk.From), int32(lk.To))
		}
	}
	g := lb.Finish()
	b.Run("pruned", func(b *testing.B) {
		var entries int
		for i := 0; i < b.N; i++ {
			entries = hopi.Build(g).LabelEntries()
		}
		b.ReportMetric(float64(entries), "label-entries")
	})
	b.Run("naive", func(b *testing.B) {
		var entries int
		for i := 0; i < b.N; i++ {
			entries = hopi.BuildNaive(g).LabelEntries()
		}
		b.ReportMetric(float64(entries), "label-entries")
	})
}

// BenchmarkAblationExactOrder measures the cost of exactly ordered output
// versus the paper's approximate block-wise streaming (DESIGN.md §4.2).
func BenchmarkAblationExactOrder(b *testing.B) {
	e := experiment(b)
	bu := built(b, bench.Entry{Label: "HOPI-5000",
		Config: flix.Config{Kind: flix.UnconnectedHOPI, PartitionSize: 5000}})
	for _, mode := range []struct {
		name string
		opts flix.Options
	}{
		{"approximate", flix.Options{}},
		{"exact", flix.Options{ExactOrder: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bu.Index.Descendants(e.Start, "article", mode.opts, func(flix.Result) bool { return true })
			}
		})
	}
}

// BenchmarkAblationDupElim compares the entry-point duplicate elimination
// (§5.1) against the rejected full seen-set (DESIGN.md §4.3).
func BenchmarkAblationDupElim(b *testing.B) {
	e := experiment(b)
	bu := built(b, bench.Entry{Label: "HOPI-5000",
		Config: flix.Config{Kind: flix.UnconnectedHOPI, PartitionSize: 5000}})
	for _, mode := range []struct {
		name string
		opts flix.Options
	}{
		{"entry-points", flix.Options{}},
		{"seen-set", flix.Options{DupSeenSet: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bu.Index.Descendants(e.Start, "article", mode.opts, func(flix.Result) bool { return true })
			}
		})
	}
}

// BenchmarkAblationBidirectional compares the forward connection test
// against the §5.2 bidirectional optimization (DESIGN.md §4.5).
func BenchmarkAblationBidirectional(b *testing.B) {
	e := experiment(b)
	bu := built(b, bench.Entry{Label: "HOPI-5000",
		Config: flix.Config{Kind: flix.UnconnectedHOPI, PartitionSize: 5000}})
	target := e.Coll.Doc(xmlgraph.DocID(0)).Root
	b.Run("forward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bu.Index.Connected(e.Start, target, 12)
		}
	})
	b.Run("bidirectional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bu.Index.ConnectedBidirectional(e.Start, target, 12)
		}
	})
}

// BenchmarkAblationPartitionSize sweeps the Unconnected HOPI size bound —
// the knob behind HOPI-5000 vs HOPI-20000 (DESIGN.md §4.4).
func BenchmarkAblationPartitionSize(b *testing.B) {
	e := experiment(b)
	for _, size := range []int{1000, 5000, 20000, 80000} {
		en := bench.Entry{
			Label:  "HOPI-" + strconv.Itoa(size),
			Config: flix.Config{Kind: flix.UnconnectedHOPI, PartitionSize: size},
		}
		bu := built(b, en)
		b.Run(en.Label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bu.Index.Descendants(e.Start, "article",
					flix.Options{MaxResults: 100}, func(flix.Result) bool { return true })
			}
			b.ReportMetric(float64(bu.Index.NumMetaDocuments()), "meta-docs")
		})
	}
}

// BenchmarkAblationHopiDC compares the monolithic HOPI build against the
// paper's divide-and-conquer construction (partition, label border hubs
// globally, label interior hubs within their partition).
func BenchmarkAblationHopiDC(b *testing.B) {
	e := experiment(b)
	for _, en := range []bench.Entry{
		{Label: "monolithic", Config: flix.Config{Kind: flix.Monolithic, Strategy: "hopi"}},
		{Label: "divide-and-conquer", Config: flix.Config{Kind: flix.Monolithic, Strategy: "hopi-dc"}},
	} {
		b.Run(en.Label, func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				ix, err := flix.Build(e.Coll, en.Config)
				if err != nil {
					b.Fatal(err)
				}
				bytes, _ = ix.SizeBytes()
			}
			b.ReportMetric(float64(bytes), "index-bytes")
		})
	}
}

// BenchmarkHotPathDescendants measures the steady-state serving hot path on
// the recommended Hybrid configuration with allocation reporting; CI gates
// on its allocs/op staying at zero (see the hotpath experiment in
// cmd/flixbench).
func BenchmarkHotPathDescendants(b *testing.B) {
	e := experiment(b)
	bu := built(b, bench.Entry{Label: "Hybrid",
		Config: flix.Config{Kind: flix.Hybrid, PartitionSize: 5000}})
	drop := func(flix.Result) bool { return true }
	opts := flix.Options{MaxResults: 100}
	for i := 0; i < 3; i++ { // warm the scratch pool and lazy index state
		bu.Index.Descendants(e.Start, "article", opts, drop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bu.Index.Descendants(e.Start, "article", opts, drop)
	}
}

// BenchmarkHotPathDescendantsTraced is the same workload with a tracer
// attached — the allocs/op difference is the cost of observability.
func BenchmarkHotPathDescendantsTraced(b *testing.B) {
	e := experiment(b)
	bu := built(b, bench.Entry{Label: "Hybrid",
		Config: flix.Config{Kind: flix.Hybrid, PartitionSize: 5000}})
	drop := func(flix.Result) bool { return true }
	for i := 0; i < 3; i++ {
		bu.Index.Descendants(e.Start, "article", flix.Options{MaxResults: 100}, drop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := flix.Options{MaxResults: 100, Tracer: flix.NewTrace(256)}
		bu.Index.Descendants(e.Start, "article", opts, drop)
	}
}

// BenchmarkHotPathTypeDescendants measures the multi-start A//B hot path
// with allocation reporting.
func BenchmarkHotPathTypeDescendants(b *testing.B) {
	bu := built(b, bench.Entry{Label: "Hybrid",
		Config: flix.Config{Kind: flix.Hybrid, PartitionSize: 5000}})
	drop := func(flix.Result) bool { return true }
	opts := flix.Options{MaxResults: 100}
	for i := 0; i < 3; i++ {
		bu.Index.TypeDescendants("inproceedings", "article", opts, drop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bu.Index.TypeDescendants("inproceedings", "article", opts, drop)
	}
}

// BenchmarkHotPathTopK measures the ranked top-k pipeline with allocation
// reporting; it rides on the same pooled evaluator underneath.
func BenchmarkHotPathTopK(b *testing.B) {
	bu := built(b, bench.Entry{Label: "Hybrid",
		Config: flix.Config{Kind: flix.Hybrid, PartitionSize: 5000}})
	ev := &query.Evaluator{Index: bu.Index}
	q, err := query.Parse("//inproceedings//article")
	if err != nil {
		b.Fatal(err)
	}
	ev.EvaluateTopK(q, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.EvaluateTopK(q, 10)
	}
}

// BenchmarkHotPathReference runs the frozen pre-optimization evaluator on
// the same workload as BenchmarkHotPathDescendants: the ns/op and allocs/op
// gap is the effect of the pooled scratch + 4-ary frontier rewrite.
func BenchmarkHotPathReference(b *testing.B) {
	e := experiment(b)
	bu := built(b, bench.Entry{Label: "Hybrid",
		Config: flix.Config{Kind: flix.Hybrid, PartitionSize: 5000}})
	drop := func(flix.Result) bool { return true }
	opts := flix.Options{MaxResults: 100}
	for i := 0; i < 3; i++ {
		bu.Index.ReferenceDescendants(e.Start, "article", opts, drop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bu.Index.ReferenceDescendants(e.Start, "article", opts, drop)
	}
}

// BenchmarkAblationTopK compares full ranked evaluation against the
// Fagin-style threshold-algorithm top-k (§3.1) on the DBLP collection.
func BenchmarkAblationTopK(b *testing.B) {
	bu := built(b, bench.Entry{Label: "HOPI-5000",
		Config: flix.Config{Kind: flix.UnconnectedHOPI, PartitionSize: 5000}})
	ev := &query.Evaluator{Index: bu.Index}
	q, err := query.Parse("//inproceedings//article")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("full", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			n = len(ev.Evaluate(q))
		}
		b.ReportMetric(float64(n), "results")
	})
	b.Run("top-10", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			n = len(ev.EvaluateTopK(q, 10))
		}
		b.ReportMetric(float64(n), "results")
	})
}

// TestPublicAPISmoke exercises the facade end to end so the root package
// has test coverage of its exported surface.
func TestPublicAPISmoke(t *testing.T) {
	coll := flix.NewCollection()
	d := coll.NewDocument("d.xml")
	root := d.Enter("a", "")
	d.AddLeaf("b", "x")
	d.Leave()
	d.Close()
	coll.Freeze()
	ix, err := flix.Build(coll, flix.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	ix.Descendants(root, "b", flix.Options{}, func(r flix.Result) bool {
		n++
		return true
	})
	if n != 1 {
		t.Fatalf("descendants = %d", n)
	}
	if _, err := flix.ParseQuery("//a//b"); err != nil {
		t.Fatal(err)
	}
	if _, err := flix.ParseOntology("a b 0.5"); err != nil {
		t.Fatal(err)
	}
	if st := flix.ComputeStats(coll); st.Nodes != 2 {
		t.Fatalf("stats = %+v", st)
	}
}
