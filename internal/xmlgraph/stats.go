package xmlgraph

import (
	"fmt"
	"sort"
)

// sortSlice is a local alias so bfs.go stays free of a sort import cycle in
// review diffs; it simply forwards to sort.Slice.
func sortSlice(s []NodeDist, less func(i, j int) bool) {
	sort.Slice(s, less)
}

// Stats summarizes the structural properties of a collection (or of a subset
// of its documents).  The Indexing Strategy Selector (§4.1 of the paper)
// bases its decisions on these numbers: number of documents, size
// distribution, link structure, and link density.
type Stats struct {
	Docs     int // number of documents
	Nodes    int // number of elements
	Edges    int // tree + link edges
	Links    int // link edges only
	Intra    int // intra-document links
	Inter    int // inter-document links
	Tags     int // distinct element names
	MaxDepth int // maximum tree depth over all documents
	MaxDoc   int // elements of the largest document
	AvgDoc   float64
	// LinkDensity is links per node.
	LinkDensity float64
	// HasCycle reports whether the data graph G_X contains a directed
	// cycle (possible only through link edges).
	HasCycle bool
	// IsTree reports whether G_X as a whole forms a forest of trees even
	// with links included, i.e. every node has at most one incoming edge
	// and there is no cycle.  When true, PPO can index the whole graph
	// (the "Maximal PPO" observation in §4.3).
	IsTree bool
}

// ComputeStats analyses the whole collection.
func ComputeStats(c *Collection) Stats {
	all := make([]DocID, c.NumDocs())
	for i := range all {
		all[i] = DocID(i)
	}
	return ComputeStatsFor(c, all)
}

// ComputeStatsFor analyses the sub-collection consisting of the given
// documents.  Links with an endpoint outside the subset are not counted.
func ComputeStatsFor(c *Collection, docs []DocID) Stats {
	var st Stats
	st.Docs = len(docs)
	inSet := make(map[DocID]bool, len(docs))
	for _, d := range docs {
		inSet[d] = true
	}
	tags := make(map[string]struct{})
	for _, d := range docs {
		doc := c.Doc(d)
		sz := doc.Size()
		st.Nodes += sz
		if sz > st.MaxDoc {
			st.MaxDoc = sz
		}
		first, last := doc.Nodes()
		for n := first; n < last; n++ {
			tags[c.Tag(n)] = struct{}{}
			if dep := c.Depth(n); dep > st.MaxDepth {
				st.MaxDepth = dep
			}
		}
	}
	for _, l := range c.Links() {
		if !inSet[c.DocOf(l.From)] || !inSet[c.DocOf(l.To)] {
			continue
		}
		st.Links++
		if c.DocOf(l.From) == c.DocOf(l.To) {
			st.Intra++
		} else {
			st.Inter++
		}
	}
	st.Tags = len(tags)
	st.Edges = st.Nodes - st.Docs + st.Links
	if st.Docs > 0 {
		st.AvgDoc = float64(st.Nodes) / float64(st.Docs)
	}
	if st.Nodes > 0 {
		st.LinkDensity = float64(st.Links) / float64(st.Nodes)
	}
	st.HasCycle = hasCycle(c, inSet)
	st.IsTree = !st.HasCycle && singleParent(c, inSet)
	return st
}

// hasCycle detects a directed cycle within the documents of inSet using an
// iterative three-color DFS over G_X.
func hasCycle(c *Collection, inSet map[DocID]bool) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[NodeID]uint8)
	type frame struct {
		node NodeID
		succ []NodeID
		next int
	}
	succs := func(n NodeID) []NodeID {
		var out []NodeID
		c.EachSuccessor(n, func(s NodeID) {
			if inSet[c.DocOf(s)] {
				out = append(out, s)
			}
		})
		return out
	}
	for d := range inSet {
		root := c.Doc(d).Root
		if color[root] != white {
			continue
		}
		stack := []frame{{node: root, succ: succs(root)}}
		color[root] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(f.succ) {
				s := f.succ[f.next]
				f.next++
				switch color[s] {
				case gray:
					return true
				case white:
					color[s] = gray
					stack = append(stack, frame{node: s, succ: succs(s)})
				}
				continue
			}
			color[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	// Nodes not reachable from any root in the subset cannot start a cycle
	// that a root-reachable walk would miss only if the cycle is entirely
	// among non-root-reachable nodes; visit them too.
	for d := range inSet {
		first, last := c.Doc(d).Nodes()
		for n := first; n < last; n++ {
			if color[n] != white {
				continue
			}
			stack := []frame{{node: n, succ: succs(n)}}
			color[n] = gray
			for len(stack) > 0 {
				f := &stack[len(stack)-1]
				if f.next < len(f.succ) {
					s := f.succ[f.next]
					f.next++
					switch color[s] {
					case gray:
						return true
					case white:
						color[s] = gray
						stack = append(stack, frame{node: s, succ: succs(s)})
					}
					continue
				}
				color[f.node] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return false
}

// singleParent reports whether every node of the subset has at most one
// incoming edge (tree or link) from within the subset, and every link target
// within the subset is a document root with no other incoming edge.  Under
// this condition the subset's data graph is a forest and PPO applies.
func singleParent(c *Collection, inSet map[DocID]bool) bool {
	indeg := make(map[NodeID]int)
	for d := range inSet {
		first, last := c.Doc(d).Nodes()
		for n := first; n < last; n++ {
			if p := c.Parent(n); p != InvalidNode {
				indeg[n]++
			}
		}
	}
	for _, l := range c.Links() {
		if !inSet[c.DocOf(l.From)] || !inSet[c.DocOf(l.To)] {
			continue
		}
		indeg[l.To]++
	}
	for _, deg := range indeg {
		if deg > 1 {
			return false
		}
	}
	return true
}

// String renders the stats for logs and the flixquery CLI.
func (s Stats) String() string {
	return fmt.Sprintf(
		"docs=%d nodes=%d edges=%d links=%d (intra=%d inter=%d) tags=%d maxDepth=%d maxDoc=%d avgDoc=%.1f density=%.4f cycle=%t tree=%t",
		s.Docs, s.Nodes, s.Edges, s.Links, s.Intra, s.Inter, s.Tags,
		s.MaxDepth, s.MaxDoc, s.AvgDoc, s.LinkDensity, s.HasCycle, s.IsTree)
}
