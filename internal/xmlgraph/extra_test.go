package xmlgraph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDescendantsOracle(t *testing.T) {
	c, ids := buildSmall(t)
	desc := c.Descendants(ids["bib"])
	if len(desc) != 7 { // everything except bib itself
		t.Errorf("Descendants(bib) = %v", desc)
	}
	// BFS order: nearer nodes first.
	dist := c.BFSDistances(ids["bib"])
	last := int32(0)
	for _, n := range desc {
		if dist[n] < last {
			t.Errorf("Descendants not in BFS order: %v", desc)
		}
		last = dist[n]
	}
	if got := c.Descendants(ids["title2"]); len(got) != 0 {
		t.Errorf("leaf has descendants: %v", got)
	}
}

func TestSortNodeDists(t *testing.T) {
	s := []NodeDist{{Node: 3, Dist: 2}, {Node: 1, Dist: 1}, {Node: 2, Dist: 1}}
	SortNodeDists(s)
	if s[0].Node != 1 || s[1].Node != 2 || s[2].Node != 3 {
		t.Errorf("SortNodeDists = %v", s)
	}
}

func TestBuilderAccessors(t *testing.T) {
	c := NewCollection()
	b := c.NewDocument("d")
	if b.Current() != InvalidNode {
		t.Error("Current before Enter")
	}
	root := b.Enter("r", "")
	if b.Current() != root {
		t.Error("Current after Enter")
	}
	b.AppendText("hello ")
	b.AppendText("world")
	if b.DocID() != 0 {
		t.Errorf("DocID = %d", b.DocID())
	}
	b.Leave()
	b.Close()
	c.Freeze()
	if !c.Frozen() {
		t.Error("Frozen after Freeze")
	}
	if c.Node(root).Text != "hello world" {
		t.Errorf("text = %q", c.Node(root).Text)
	}
	mustPanic(t, "SetXMLID outside element", func() {
		c2 := NewCollection()
		c2.NewDocument("x").SetXMLID("id")
	})
	mustPanic(t, "AppendText outside element", func() {
		c2 := NewCollection()
		c2.NewDocument("x").AppendText("t")
	})
}

func TestLinkIterationBeforeFreeze(t *testing.T) {
	// OutLinks/InLinks fall back to a linear scan before Freeze.
	c := NewCollection()
	b := c.NewDocument("d")
	b.Enter("r", "")
	x := b.AddLeaf("x", "")
	y := b.AddLeaf("y", "")
	b.Leave()
	b.Close()
	c.AddLink(x, y, EdgeIntraLink)
	outs := 0
	c.OutLinks(x, func(Link) { outs++ })
	ins := 0
	c.InLinks(y, func(Link) { ins++ })
	if outs != 1 || ins != 1 {
		t.Errorf("pre-freeze link iteration: out=%d in=%d", outs, ins)
	}
}

func TestStatsString(t *testing.T) {
	c, _ := buildSmall(t)
	s := ComputeStats(c).String()
	for _, want := range []string{"docs=2", "links=2", "tree=false"} {
		if !strings.Contains(s, want) {
			t.Errorf("Stats.String() = %q missing %q", s, want)
		}
	}
}

func TestRandomTreeCollectionIsTree(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := RandomTreeCollection(rng, 2+rng.Intn(10), 8)
		st := ComputeStats(c)
		// The defining property: G_X is a single tree spanning all
		// documents.
		if !st.IsTree || st.HasCycle {
			return false
		}
		// Links = docs - 1 (a spanning tree of the document graph).
		return st.Links == st.Docs-1
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
