package xmlgraph

// This file contains exact graph-search oracles over the full data graph
// G_X.  They are used as ground truth by the test suites of every index
// package and by the transitive-closure baseline; they are deliberately
// simple breadth-first searches.

// BFSDistances returns the shortest-path distance (number of edges, tree and
// link edges alike) from start to every node, or -1 where unreachable.
// start itself has distance 0.
func (c *Collection) BFSDistances(start NodeID) []int32 {
	dist := make([]int32, len(c.nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	queue := []NodeID{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		d := dist[n]
		c.EachSuccessor(n, func(s NodeID) {
			if dist[s] < 0 {
				dist[s] = d + 1
				queue = append(queue, s)
			}
		})
	}
	return dist
}

// BFSDistance returns the shortest-path distance from x to y, or -1 if y is
// not reachable from x.
func (c *Collection) BFSDistance(x, y NodeID) int32 {
	if x == y {
		return 0
	}
	dist := make(map[NodeID]int32, 64)
	dist[x] = 0
	queue := []NodeID{x}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		d := dist[n]
		found := int32(-1)
		c.EachSuccessor(n, func(s NodeID) {
			if _, seen := dist[s]; !seen {
				dist[s] = d + 1
				if s == y {
					found = d + 1
				}
				queue = append(queue, s)
			}
		})
		if found >= 0 {
			return found
		}
	}
	return -1
}

// Reachable reports whether y is reachable from x in G_X (the
// descendants-or-self relation of the linked collection).
func (c *Collection) Reachable(x, y NodeID) bool {
	if x == y {
		return true
	}
	return c.BFSDistance(x, y) >= 0
}

// Descendants returns all nodes reachable from start (excluding start itself
// unless it lies on a cycle through start), in BFS order.
func (c *Collection) Descendants(start NodeID) []NodeID {
	var out []NodeID
	seen := map[NodeID]struct{}{start: {}}
	queue := []NodeID{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		c.EachSuccessor(n, func(s NodeID) {
			if _, ok := seen[s]; !ok {
				seen[s] = struct{}{}
				out = append(out, s)
				queue = append(queue, s)
			}
		})
	}
	return out
}

// DescendantsByTag returns the nodes reachable from start whose tag equals
// tag, paired with their exact shortest-path distances, sorted by ascending
// distance (ties by NodeID).  This is the ground truth for the PEE's
// a//b evaluation.
func (c *Collection) DescendantsByTag(start NodeID, tag string) []NodeDist {
	dist := c.BFSDistances(start)
	var out []NodeDist
	for n := range dist {
		if dist[n] > 0 && c.nodes[n].Tag == tag {
			out = append(out, NodeDist{Node: NodeID(n), Dist: dist[n]})
		}
	}
	sortNodeDists(out)
	return out
}

// NodeDist pairs a node with a distance.
type NodeDist struct {
	Node NodeID
	Dist int32
}

func sortNodeDists(s []NodeDist) {
	// insertion-friendly small-slice sort is unnecessary; use sort.Slice.
	sortSlice(s, func(i, j int) bool {
		if s[i].Dist != s[j].Dist {
			return s[i].Dist < s[j].Dist
		}
		return s[i].Node < s[j].Node
	})
}

// SortNodeDists sorts s by ascending distance, ties by node ID.
func SortNodeDists(s []NodeDist) { sortNodeDists(s) }

// Ancestors returns all nodes from which start is reachable, in reverse-BFS
// order.
func (c *Collection) Ancestors(start NodeID) []NodeID {
	var out []NodeID
	seen := map[NodeID]struct{}{start: {}}
	queue := []NodeID{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		c.EachPredecessor(n, func(p NodeID) {
			if _, ok := seen[p]; !ok {
				seen[p] = struct{}{}
				out = append(out, p)
				queue = append(queue, p)
			}
		})
	}
	return out
}

// TreeDescendants returns the descendants of start following only tree
// (parent-child) edges, in depth-first order.  Used by the per-document
// indexes and as their oracle.
func (c *Collection) TreeDescendants(start NodeID) []NodeID {
	var out []NodeID
	var stack []NodeID
	c.EachChild(start, func(ch NodeID) { stack = append(stack, ch) })
	// Children were appended in order; pop from the end for DFS, so reverse
	// first to keep document order.
	reverseNodes(stack)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, n)
		var kids []NodeID
		c.EachChild(n, func(ch NodeID) { kids = append(kids, ch) })
		reverseNodes(kids)
		stack = append(stack, kids...)
	}
	return out
}

func reverseNodes(s []NodeID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
