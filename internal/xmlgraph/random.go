package xmlgraph

import "math/rand"

// RandomCollection builds a pseudo-random linked collection, deterministic in
// rng: docs documents of 1..maxSize elements each with random branching,
// plus links random link edges (intra- or inter-document depending on the
// chosen endpoints).  It is used by the property-based tests of every index
// package and by benchmarks that need collections of controlled size.
func RandomCollection(rng *rand.Rand, docs, maxSize, links int) *Collection {
	c := NewCollection()
	tags := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < docs; i++ {
		b := c.NewDocument(randomDocName(i))
		n := 1 + rng.Intn(maxSize)
		b.Enter(tags[rng.Intn(len(tags))], "")
		open := 1
		for j := 1; j < n; j++ {
			if open > 1 && rng.Intn(3) == 0 {
				b.Leave()
				open--
				continue
			}
			b.Enter(tags[rng.Intn(len(tags))], "")
			open++
		}
		for open > 0 {
			b.Leave()
			open--
		}
		b.Close()
	}
	for i := 0; i < links; i++ {
		from := NodeID(rng.Intn(c.NumNodes()))
		to := NodeID(rng.Intn(c.NumNodes()))
		kind := EdgeInterLink
		if c.DocOf(from) == c.DocOf(to) {
			kind = EdgeIntraLink
		}
		c.AddLink(from, to, kind)
	}
	c.Freeze()
	return c
}

// RandomTreeCollection builds a collection whose overall data graph is a
// tree: documents are linked root-to-root so that the document graph forms a
// tree (the Maximal PPO situation of §4.3).
func RandomTreeCollection(rng *rand.Rand, docs, maxSize int) *Collection {
	c := NewCollection()
	tags := []string{"a", "b", "c", "d", "e"}
	type docInfo struct {
		root   NodeID
		leaves []NodeID
	}
	var infos []docInfo
	for i := 0; i < docs; i++ {
		b := c.NewDocument(randomDocName(i))
		var info docInfo
		info.root = b.Enter(tags[rng.Intn(len(tags))], "")
		n := 1 + rng.Intn(maxSize)
		open := 1
		for j := 1; j < n; j++ {
			if open > 1 && rng.Intn(3) == 0 {
				b.Leave()
				open--
				continue
			}
			info.leaves = append(info.leaves, b.Enter(tags[rng.Intn(len(tags))], ""))
			open++
		}
		for open > 0 {
			b.Leave()
			open--
		}
		if len(info.leaves) == 0 {
			info.leaves = []NodeID{info.root}
		}
		b.Close()
		infos = append(infos, info)
	}
	// Link document i (i>0) from a random element of a random earlier
	// document to document i's root: the document graph is a tree and all
	// links point to roots, so G_X is a tree.
	for i := 1; i < len(infos); i++ {
		src := infos[rng.Intn(i)]
		from := src.leaves[rng.Intn(len(src.leaves))]
		c.AddLink(from, infos[i].root, EdgeInterLink)
	}
	c.Freeze()
	return c
}

func randomDocName(i int) string {
	const digits = "0123456789"
	if i == 0 {
		return "doc0"
	}
	var buf [12]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = digits[i%10]
		i /= 10
	}
	return "doc" + string(buf[pos:])
}
