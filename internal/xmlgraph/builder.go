package xmlgraph

import "fmt"

// DocumentBuilder constructs one document of a collection.  Elements are
// added in depth-first (document) order through Enter/Leave pairs, mirroring
// the event stream of an XML parser.
//
//	b := coll.NewDocument("d1")
//	root := b.Enter("movie", "")
//	title := b.Enter("title", "Matrix")
//	b.Leave() // title
//	b.Leave() // movie
//	b.Close()
type DocumentBuilder struct {
	c     *Collection
	doc   DocID
	stack []NodeID
	done  bool
}

// NewDocument starts a new document with the given unique name.  Panics if
// the name is already used or the collection is frozen.
func (c *Collection) NewDocument(name string) *DocumentBuilder {
	if c.frozen {
		panic("xmlgraph: NewDocument on frozen collection")
	}
	if _, dup := c.docByName[name]; dup {
		panic(fmt.Sprintf("xmlgraph: duplicate document name %q", name))
	}
	id := DocID(len(c.docs))
	c.docs = append(c.docs, Document{
		Name:  name,
		Root:  InvalidNode,
		first: NodeID(len(c.nodes)),
		last:  NodeID(len(c.nodes)),
	})
	c.docByName[name] = id
	return &DocumentBuilder{c: c, doc: id}
}

// Enter appends a new element below the current element (or as the document
// root) and makes it current.  It returns the new element's ID.
func (b *DocumentBuilder) Enter(tag, text string) NodeID {
	if b.done {
		panic("xmlgraph: Enter after Close")
	}
	id := NodeID(len(b.c.nodes))
	parent := InvalidNode
	if len(b.stack) > 0 {
		parent = b.stack[len(b.stack)-1]
	} else if b.c.docs[b.doc].Root != InvalidNode {
		panic("xmlgraph: second root element in document " + b.c.docs[b.doc].Name)
	}
	b.c.nodes = append(b.c.nodes, Node{
		Tag:         tag,
		Text:        text,
		Doc:         b.doc,
		Parent:      parent,
		firstChild:  InvalidNode,
		lastChild:   InvalidNode,
		nextSibling: InvalidNode,
	})
	if parent == InvalidNode {
		b.c.docs[b.doc].Root = id
	} else {
		p := &b.c.nodes[parent]
		if p.firstChild == InvalidNode {
			p.firstChild = id
		} else {
			b.c.nodes[p.lastChild].nextSibling = id
		}
		p.lastChild = id
	}
	b.stack = append(b.stack, id)
	b.c.docs[b.doc].last = NodeID(len(b.c.nodes))
	return id
}

// SetXMLID records the xml:id attribute of the current element.
func (b *DocumentBuilder) SetXMLID(id string) {
	if len(b.stack) == 0 {
		panic("xmlgraph: SetXMLID outside element")
	}
	b.c.nodes[b.stack[len(b.stack)-1]].XMLID = id
}

// AppendText appends character data to the current element's text.
func (b *DocumentBuilder) AppendText(s string) {
	if len(b.stack) == 0 {
		panic("xmlgraph: AppendText outside element")
	}
	b.c.nodes[b.stack[len(b.stack)-1]].Text += s
}

// Current returns the element currently open, or InvalidNode.
func (b *DocumentBuilder) Current() NodeID {
	if len(b.stack) == 0 {
		return InvalidNode
	}
	return b.stack[len(b.stack)-1]
}

// Leave closes the current element.
func (b *DocumentBuilder) Leave() {
	if len(b.stack) == 0 {
		panic("xmlgraph: Leave without matching Enter")
	}
	b.stack = b.stack[:len(b.stack)-1]
}

// Close finishes the document.  Panics if elements are still open or the
// document is empty.
func (b *DocumentBuilder) Close() {
	if b.done {
		return
	}
	if len(b.stack) != 0 {
		panic(fmt.Sprintf("xmlgraph: Close with %d open elements", len(b.stack)))
	}
	if b.c.docs[b.doc].Root == InvalidNode {
		panic("xmlgraph: Close on empty document " + b.c.docs[b.doc].Name)
	}
	b.done = true
}

// DocID returns the ID of the document being built.
func (b *DocumentBuilder) DocID() DocID { return b.doc }

// AddLeaf is a convenience for Enter(tag, text) immediately followed by
// Leave; it returns the new element's ID.
func (b *DocumentBuilder) AddLeaf(tag, text string) NodeID {
	id := b.Enter(tag, text)
	b.Leave()
	return id
}
