package xmlgraph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// buildSmall constructs a two-document collection:
//
//	doc a:           doc b:
//	  bib              paper
//	  ├─ article        └─ title
//	  │   ├─ author
//	  │   └─ title
//	  └─ article ──link──> paper (inter-document)
//	        └─ cite ─link─> first article (intra-document)
func buildSmall(t testing.TB) (*Collection, map[string]NodeID) {
	t.Helper()
	c := NewCollection()
	ids := make(map[string]NodeID)

	a := c.NewDocument("a")
	ids["bib"] = a.Enter("bib", "")
	ids["art1"] = a.Enter("article", "")
	ids["author1"] = a.AddLeaf("author", "Mohan")
	ids["title1"] = a.AddLeaf("title", "ARIES")
	a.Leave()
	ids["art2"] = a.Enter("article", "")
	ids["cite"] = a.AddLeaf("cite", "")
	a.Leave()
	a.Leave()
	a.Close()

	b := c.NewDocument("b")
	ids["paper"] = b.Enter("paper", "")
	ids["title2"] = b.AddLeaf("title", "HOPI")
	b.Leave()
	b.Close()

	c.AddLink(ids["art2"], ids["paper"], EdgeInterLink)
	c.AddLink(ids["cite"], ids["art1"], EdgeIntraLink)
	c.Freeze()
	return c, ids
}

func TestBuilderBasics(t *testing.T) {
	c, ids := buildSmall(t)
	if got := c.NumDocs(); got != 2 {
		t.Fatalf("NumDocs = %d, want 2", got)
	}
	if got := c.NumNodes(); got != 8 {
		t.Fatalf("NumNodes = %d, want 8", got)
	}
	if got := c.NumLinks(); got != 2 {
		t.Fatalf("NumLinks = %d, want 2", got)
	}
	// 8 nodes - 2 roots + 2 links = 8 edges.
	if got := c.NumEdges(); got != 8 {
		t.Fatalf("NumEdges = %d, want 8", got)
	}
	if c.Tag(ids["art1"]) != "article" {
		t.Errorf("Tag(art1) = %q", c.Tag(ids["art1"]))
	}
	if c.Parent(ids["author1"]) != ids["art1"] {
		t.Errorf("Parent(author1) wrong")
	}
	if c.Parent(ids["bib"]) != InvalidNode {
		t.Errorf("root parent should be InvalidNode")
	}
	var kids []NodeID
	kids = c.Children(ids["bib"], kids)
	want := []NodeID{ids["art1"], ids["art2"]}
	if !reflect.DeepEqual(kids, want) {
		t.Errorf("Children(bib) = %v, want %v", kids, want)
	}
	if d, ok := c.DocByName("b"); !ok || c.Doc(d).Root != ids["paper"] {
		t.Errorf("DocByName(b) wrong: %v %v", d, ok)
	}
	if c.Node(ids["title1"]).Text != "ARIES" {
		t.Errorf("text lost")
	}
}

func TestSuccessorsAndPredecessors(t *testing.T) {
	c, ids := buildSmall(t)
	var succ []NodeID
	c.EachSuccessor(ids["art2"], func(n NodeID) { succ = append(succ, n) })
	want := []NodeID{ids["cite"], ids["paper"]}
	if !reflect.DeepEqual(succ, want) {
		t.Errorf("EachSuccessor(art2) = %v, want %v", succ, want)
	}
	var pred []NodeID
	c.EachPredecessor(ids["art1"], func(n NodeID) { pred = append(pred, n) })
	want = []NodeID{ids["bib"], ids["cite"]}
	if !reflect.DeepEqual(pred, want) {
		t.Errorf("EachPredecessor(art1) = %v, want %v", pred, want)
	}
}

func TestBFSDistances(t *testing.T) {
	c, ids := buildSmall(t)
	dist := c.BFSDistances(ids["bib"])
	cases := map[string]int32{
		"bib": 0, "art1": 1, "author1": 2, "title1": 2,
		"art2": 1, "cite": 2, "paper": 2, "title2": 3,
	}
	for name, want := range cases {
		if got := dist[ids[name]]; got != want {
			t.Errorf("dist(bib, %s) = %d, want %d", name, got, want)
		}
	}
	// paper cannot reach bib.
	if got := c.BFSDistance(ids["paper"], ids["bib"]); got != -1 {
		t.Errorf("dist(paper, bib) = %d, want -1", got)
	}
	// cite reaches author1 through the intra-document link.
	if got := c.BFSDistance(ids["cite"], ids["author1"]); got != 2 {
		t.Errorf("dist(cite, author1) = %d, want 2", got)
	}
}

func TestReachable(t *testing.T) {
	c, ids := buildSmall(t)
	if !c.Reachable(ids["bib"], ids["title2"]) {
		t.Error("bib should reach title2 via inter-document link")
	}
	if c.Reachable(ids["title2"], ids["bib"]) {
		t.Error("title2 must not reach bib")
	}
	if !c.Reachable(ids["cite"], ids["cite"]) {
		t.Error("self reachability must hold")
	}
}

func TestDescendantsByTag(t *testing.T) {
	c, ids := buildSmall(t)
	got := c.DescendantsByTag(ids["bib"], "title")
	want := []NodeDist{
		{Node: ids["title1"], Dist: 2},
		{Node: ids["title2"], Dist: 3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DescendantsByTag = %v, want %v", got, want)
	}
}

func TestAncestors(t *testing.T) {
	c, ids := buildSmall(t)
	anc := c.Ancestors(ids["title2"])
	seen := make(map[NodeID]bool)
	for _, n := range anc {
		seen[n] = true
	}
	for _, name := range []string{"paper", "art2", "bib"} {
		if !seen[ids[name]] {
			t.Errorf("Ancestors(title2) missing %s", name)
		}
	}
	if seen[ids["author1"]] {
		t.Error("author1 is not an ancestor of title2")
	}
}

func TestTreeDescendantsDocumentOrder(t *testing.T) {
	c, ids := buildSmall(t)
	got := c.TreeDescendants(ids["bib"])
	want := []NodeID{ids["art1"], ids["author1"], ids["title1"], ids["art2"], ids["cite"]}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TreeDescendants = %v, want %v", got, want)
	}
}

func TestPathAndDepth(t *testing.T) {
	c, ids := buildSmall(t)
	if got := c.Path(ids["author1"]); !reflect.DeepEqual(got, []string{"bib", "article", "author"}) {
		t.Errorf("Path = %v", got)
	}
	if got := c.Depth(ids["author1"]); got != 2 {
		t.Errorf("Depth = %d, want 2", got)
	}
	if got := c.Depth(ids["bib"]); got != 0 {
		t.Errorf("Depth(root) = %d, want 0", got)
	}
}

func TestTagsAndNodesByTag(t *testing.T) {
	c, ids := buildSmall(t)
	tags := c.Tags()
	want := []string{"article", "author", "bib", "cite", "paper", "title"}
	if !reflect.DeepEqual(tags, want) {
		t.Errorf("Tags = %v, want %v", tags, want)
	}
	arts := c.NodesByTag("article")
	if !reflect.DeepEqual(arts, []NodeID{ids["art1"], ids["art2"]}) {
		t.Errorf("NodesByTag(article) = %v", arts)
	}
}

func TestXMLID(t *testing.T) {
	c := NewCollection()
	b := c.NewDocument("d")
	b.Enter("root", "")
	b.Enter("sec", "")
	b.SetXMLID("s1")
	b.Leave()
	b.Leave()
	b.Close()
	c.Freeze()
	d, _ := c.DocByName("d")
	if n := c.FindByXMLID(d, "s1"); n == InvalidNode || c.Tag(n) != "sec" {
		t.Errorf("FindByXMLID failed: %v", n)
	}
	if n := c.FindByXMLID(d, "nope"); n != InvalidNode {
		t.Errorf("FindByXMLID(nope) = %v, want InvalidNode", n)
	}
}

func TestStats(t *testing.T) {
	c, _ := buildSmall(t)
	st := ComputeStats(c)
	if st.Docs != 2 || st.Nodes != 8 || st.Links != 2 || st.Inter != 1 || st.Intra != 1 {
		t.Errorf("stats wrong: %+v", st)
	}
	if st.Tags != 6 {
		t.Errorf("Tags = %d, want 6", st.Tags)
	}
	if st.MaxDepth != 2 {
		t.Errorf("MaxDepth = %d, want 2", st.MaxDepth)
	}
	if st.MaxDoc != 6 {
		t.Errorf("MaxDoc = %d, want 6", st.MaxDoc)
	}
	if st.HasCycle {
		t.Error("collection has no cycle")
	}
	if st.IsTree {
		t.Error("art1 has two incoming edges; not a tree")
	}
}

func TestStatsTreeDetection(t *testing.T) {
	// Figure 3 of the paper: documents linked root-to-root form a tree.
	c := NewCollection()
	var roots []NodeID
	var leaves []NodeID
	for _, name := range []string{"1", "2", "3", "4", "5"} {
		b := c.NewDocument(name)
		r := b.Enter("doc", "")
		leaves = append(leaves, b.AddLeaf("item", ""))
		b.Leave()
		b.Close()
		roots = append(roots, r)
	}
	// 1 -> 2, 1 -> 3, 2 -> 4, 3 -> 5 (all to roots): a tree.
	c.AddLink(leaves[0], roots[1], EdgeInterLink)
	c.AddLink(leaves[0], roots[2], EdgeInterLink)
	c.AddLink(leaves[1], roots[3], EdgeInterLink)
	c.AddLink(leaves[2], roots[4], EdgeInterLink)
	c.Freeze()
	st := ComputeStats(c)
	if !st.IsTree {
		t.Errorf("root-to-root linked docs should be a tree: %+v", st)
	}
	if st.HasCycle {
		t.Error("no cycle expected")
	}
}

func TestStatsCycleDetection(t *testing.T) {
	c := NewCollection()
	b1 := c.NewDocument("x")
	r1 := b1.Enter("a", "")
	l1 := b1.AddLeaf("ref", "")
	b1.Leave()
	b1.Close()
	b2 := c.NewDocument("y")
	r2 := b2.Enter("b", "")
	l2 := b2.AddLeaf("ref", "")
	b2.Leave()
	b2.Close()
	c.AddLink(l1, r2, EdgeInterLink)
	c.AddLink(l2, r1, EdgeInterLink)
	c.Freeze()
	st := ComputeStats(c)
	if !st.HasCycle {
		t.Error("cycle between documents not detected")
	}
	if st.IsTree {
		t.Error("cyclic graph cannot be a tree")
	}
}

func TestComputeStatsForSubset(t *testing.T) {
	c, _ := buildSmall(t)
	a, _ := c.DocByName("a")
	st := ComputeStatsFor(c, []DocID{a})
	if st.Docs != 1 || st.Nodes != 6 {
		t.Errorf("subset stats wrong: %+v", st)
	}
	// The inter-document link leaves the subset and must not be counted.
	if st.Links != 1 || st.Intra != 1 || st.Inter != 0 {
		t.Errorf("subset link counting wrong: %+v", st)
	}
}

func TestFreezePanics(t *testing.T) {
	c, _ := buildSmall(t)
	mustPanic(t, "AddLink after Freeze", func() { c.AddLink(0, 1, EdgeChild) })
	mustPanic(t, "NewDocument after Freeze", func() { c.NewDocument("z") })
}

func TestBuilderPanics(t *testing.T) {
	c := NewCollection()
	b := c.NewDocument("d")
	mustPanic(t, "Leave without Enter", func() { b.Leave() })
	mustPanic(t, "Close empty", func() { b.Close() })
	b.Enter("r", "")
	mustPanic(t, "Close with open elements", func() { b.Close() })
	b.Leave()
	mustPanic(t, "second root", func() { b.Enter("r2", "") })
	b.Close()
	mustPanic(t, "duplicate doc name", func() { c.NewDocument("d") })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestRandomCollectionInvariants(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := RandomCollection(rng, 1+rng.Intn(8), 20, rng.Intn(15))
		// Every non-root node's parent link is consistent with Children.
		for d := 0; d < c.NumDocs(); d++ {
			first, last := c.Doc(DocID(d)).Nodes()
			for n := first; n < last; n++ {
				if p := c.Parent(n); p != InvalidNode {
					found := false
					c.EachChild(p, func(ch NodeID) {
						if ch == n {
							found = true
						}
					})
					if !found {
						return false
					}
				} else if c.Doc(DocID(d)).Root != n {
					return false
				}
			}
		}
		// BFS distance symmetry with distances array.
		if c.NumNodes() > 1 {
			x := NodeID(rng.Intn(c.NumNodes()))
			y := NodeID(rng.Intn(c.NumNodes()))
			all := c.BFSDistances(x)
			if got := c.BFSDistance(x, y); got != all[y] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestEdgeKindString(t *testing.T) {
	if EdgeChild.String() != "child" || EdgeIntraLink.String() != "intra-link" ||
		EdgeInterLink.String() != "inter-link" {
		t.Error("EdgeKind.String wrong")
	}
	if EdgeKind(9).String() != "EdgeKind(9)" {
		t.Error("unknown EdgeKind.String wrong")
	}
}
