// Package xmlgraph implements the XML data model of FliX (EDBT 2004, §2.1).
//
// Each XML document d is represented as a graph G_d = (V_d, E_d) whose
// vertices are the elements of d (plus referenced external elements) and
// whose edges are the parent-child relationships together with links from
// elements of d to other elements (intra-document id/idref links and
// inter-document XLink-style links).  A collection X = {d_1, ..., d_n} is the
// union G_X of the per-document graphs.
//
// The package also provides exact breadth-first-search oracles used both by
// the index builders (transitive closure of small partitions) and by the test
// suite as ground truth for every index structure.
package xmlgraph

import (
	"fmt"
	"sort"
)

// NodeID identifies an element in a Collection.  IDs are dense: a collection
// with n elements uses IDs 0..n-1 in document order (documents concatenated
// in insertion order, elements in depth-first order within a document).
type NodeID int32

// InvalidNode is returned by lookups that find no element.
const InvalidNode NodeID = -1

// DocID identifies a document in a Collection.  IDs are dense in insertion
// order.
type DocID int32

// InvalidDoc is the DocID of no document.
const InvalidDoc DocID = -1

// EdgeKind distinguishes the kinds of edges of the XML data graph.
type EdgeKind uint8

const (
	// EdgeChild is a parent-child edge within a document tree.
	EdgeChild EdgeKind = iota
	// EdgeIntraLink is an intra-document link (e.g. idref -> id).
	EdgeIntraLink
	// EdgeInterLink is an inter-document link (e.g. xlink:href).
	EdgeInterLink
)

// String returns a short human-readable name of the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeChild:
		return "child"
	case EdgeIntraLink:
		return "intra-link"
	case EdgeInterLink:
		return "inter-link"
	default:
		return fmt.Sprintf("EdgeKind(%d)", uint8(k))
	}
}

// Link is a non-tree edge of the data graph.
type Link struct {
	From NodeID
	To   NodeID
	Kind EdgeKind
}

// Node is one XML element.  The zero value is not a valid node; nodes are
// created through Collection.AddDocument / DocumentBuilder.
type Node struct {
	// Tag is the element name (e.g. "article", "author").
	Tag string
	// Text is the concatenated character data directly below the element.
	// It is kept for examples and content predicates; the index structures
	// ignore it.
	Text string
	// Doc is the document the element belongs to.
	Doc DocID
	// Parent is the parent element, or InvalidNode for a document root.
	Parent NodeID
	// XMLID is the value of the element's xml:id (or DTD ID) attribute,
	// empty if none.  Unique within a document.
	XMLID string
	// firstChild/lastChild/nextSibling encode the tree structure without
	// per-node slices; children are iterated through Collection.Children.
	firstChild, lastChild, nextSibling NodeID
}

// Document is one XML document of a collection.
type Document struct {
	// Name is the document identifier (usually its file name or a
	// generator-assigned name).  Unique within a collection.
	Name string
	// Root is the document's root element.
	Root NodeID
	// first and last delimit the half-open NodeID range [first, last) of
	// the document's elements; elements of one document are contiguous.
	first, last NodeID
}

// Size returns the number of elements of the document.
func (d *Document) Size() int { return int(d.last - d.first) }

// Nodes returns the half-open NodeID range [first, last) of the document.
func (d *Document) Nodes() (first, last NodeID) { return d.first, d.last }

// Collection is a set of interlinked XML documents, i.e. the graph G_X.
// A Collection is immutable after Freeze and safe for concurrent reads.
type Collection struct {
	nodes []Node
	docs  []Document
	links []Link

	// outLinks[n] lists the links leaving node n (index into links).
	// Built by Freeze.
	outLinks  [][]int32
	inLinks   [][]int32
	frozen    bool
	docByName map[string]DocID

	// byTag caches NodesByTag per tag.  Built by Freeze so queries against
	// a frozen collection answer tag lookups without scanning all nodes.
	byTag map[string][]NodeID
}

// NewCollection returns an empty collection.
func NewCollection() *Collection {
	return &Collection{docByName: make(map[string]DocID)}
}

// NumNodes returns the number of elements in the collection.
func (c *Collection) NumNodes() int { return len(c.nodes) }

// NumDocs returns the number of documents in the collection.
func (c *Collection) NumDocs() int { return len(c.docs) }

// NumLinks returns the number of link (non-tree) edges.
func (c *Collection) NumLinks() int { return len(c.links) }

// NumEdges returns the total number of edges (tree + link).
func (c *Collection) NumEdges() int {
	// Every node except each document root has exactly one incoming tree
	// edge.
	return len(c.nodes) - len(c.docs) + len(c.links)
}

// Node returns the element with the given ID.  The returned pointer stays
// valid for the lifetime of the collection; callers must not mutate it after
// Freeze.
func (c *Collection) Node(id NodeID) *Node {
	return &c.nodes[id]
}

// Valid reports whether id is a node of this collection.
func (c *Collection) Valid(id NodeID) bool {
	return id >= 0 && int(id) < len(c.nodes)
}

// Doc returns the document with the given ID.
func (c *Collection) Doc(id DocID) *Document {
	return &c.docs[id]
}

// DocByName returns the document with the given name.
func (c *Collection) DocByName(name string) (DocID, bool) {
	id, ok := c.docByName[name]
	return id, ok
}

// Links returns all link edges of the collection.  Callers must not mutate
// the returned slice.
func (c *Collection) Links() []Link { return c.links }

// Tag returns the element name of node id.
func (c *Collection) Tag(id NodeID) string { return c.nodes[id].Tag }

// Parent returns the parent of id, or InvalidNode for document roots.
func (c *Collection) Parent(id NodeID) NodeID { return c.nodes[id].Parent }

// Children appends the children of id to dst and returns it, in document
// order.
func (c *Collection) Children(id NodeID, dst []NodeID) []NodeID {
	for ch := c.nodes[id].firstChild; ch != InvalidNode; ch = c.nodes[ch].nextSibling {
		dst = append(dst, ch)
	}
	return dst
}

// EachChild calls fn for every child of id in document order.
func (c *Collection) EachChild(id NodeID, fn func(NodeID)) {
	for ch := c.nodes[id].firstChild; ch != InvalidNode; ch = c.nodes[ch].nextSibling {
		fn(ch)
	}
}

// OutLinks calls fn for every link edge leaving id.
func (c *Collection) OutLinks(id NodeID, fn func(Link)) {
	if c.outLinks == nil {
		for _, l := range c.links {
			if l.From == id {
				fn(l)
			}
		}
		return
	}
	for _, li := range c.outLinks[id] {
		fn(c.links[li])
	}
}

// InLinks calls fn for every link edge entering id.
func (c *Collection) InLinks(id NodeID, fn func(Link)) {
	if c.inLinks == nil {
		for _, l := range c.links {
			if l.To == id {
				fn(l)
			}
		}
		return
	}
	for _, li := range c.inLinks[id] {
		fn(c.links[li])
	}
}

// EachSuccessor calls fn for every direct successor of id in G_X: the
// element's children followed by its outgoing link targets.
func (c *Collection) EachSuccessor(id NodeID, fn func(NodeID)) {
	c.EachChild(id, fn)
	c.OutLinks(id, func(l Link) { fn(l.To) })
}

// EachPredecessor calls fn for every direct predecessor of id in G_X: the
// element's parent (if any) followed by the sources of incoming links.
func (c *Collection) EachPredecessor(id NodeID, fn func(NodeID)) {
	if p := c.nodes[id].Parent; p != InvalidNode {
		fn(p)
	}
	c.InLinks(id, func(l Link) { fn(l.From) })
}

// AddLink records a link edge.  Panics if either endpoint is unknown or the
// collection is frozen.
func (c *Collection) AddLink(from, to NodeID, kind EdgeKind) {
	if c.frozen {
		panic("xmlgraph: AddLink on frozen collection")
	}
	if !c.Valid(from) || !c.Valid(to) {
		panic(fmt.Sprintf("xmlgraph: AddLink(%d, %d): unknown node", from, to))
	}
	c.links = append(c.links, Link{From: from, To: to, Kind: kind})
}

// Freeze finalizes the collection: it builds the per-node link adjacency and
// marks the collection immutable.  Freeze is idempotent.
func (c *Collection) Freeze() {
	if c.frozen {
		return
	}
	c.outLinks = make([][]int32, len(c.nodes))
	c.inLinks = make([][]int32, len(c.nodes))
	// Two-pass counting to avoid per-node slice growth.
	outCnt := make([]int32, len(c.nodes))
	inCnt := make([]int32, len(c.nodes))
	for _, l := range c.links {
		outCnt[l.From]++
		inCnt[l.To]++
	}
	outBuf := make([]int32, len(c.links))
	inBuf := make([]int32, len(c.links))
	var oOff, iOff int32
	for n := range c.nodes {
		c.outLinks[n] = outBuf[oOff : oOff : oOff+outCnt[n]]
		c.inLinks[n] = inBuf[iOff : iOff : iOff+inCnt[n]]
		oOff += outCnt[n]
		iOff += inCnt[n]
	}
	for i, l := range c.links {
		c.outLinks[l.From] = append(c.outLinks[l.From], int32(i))
		c.inLinks[l.To] = append(c.inLinks[l.To], int32(i))
	}
	c.byTag = make(map[string][]NodeID)
	for i := range c.nodes {
		c.byTag[c.nodes[i].Tag] = append(c.byTag[c.nodes[i].Tag], NodeID(i))
	}
	c.frozen = true
}

// Frozen reports whether Freeze has been called.
func (c *Collection) Frozen() bool { return c.frozen }

// DocOf returns the document containing node id.
func (c *Collection) DocOf(id NodeID) DocID { return c.nodes[id].Doc }

// NodesByTag returns all node IDs with the given tag, in ascending order.
// On a frozen collection the result is the cached lookup slice — callers
// must not modify it.
func (c *Collection) NodesByTag(tag string) []NodeID {
	if c.frozen {
		return c.byTag[tag]
	}
	var out []NodeID
	for i := range c.nodes {
		if c.nodes[i].Tag == tag {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Tags returns the set of distinct element names in the collection, sorted.
func (c *Collection) Tags() []string {
	seen := make(map[string]struct{})
	for i := range c.nodes {
		seen[c.nodes[i].Tag] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// FindByXMLID returns the node of document doc whose xml:id attribute equals
// id, or InvalidNode.
func (c *Collection) FindByXMLID(doc DocID, id string) NodeID {
	d := &c.docs[doc]
	for n := d.first; n < d.last; n++ {
		if c.nodes[n].XMLID == id {
			return n
		}
	}
	return InvalidNode
}

// Path returns the tag path from the document root to id, e.g.
// ["dblp", "article", "author"].
func (c *Collection) Path(id NodeID) []string {
	var rev []string
	for n := id; n != InvalidNode; n = c.nodes[n].Parent {
		rev = append(rev, c.nodes[n].Tag)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Depth returns the number of tree edges between id and its document root.
func (c *Collection) Depth(id NodeID) int {
	d := 0
	for n := c.nodes[id].Parent; n != InvalidNode; n = c.nodes[n].Parent {
		d++
	}
	return d
}
