package shard

// POST /v1/batch on the router: the single-node batch endpoint's wire
// contract (BatchRequest/BatchResponse in protocol.go) over scatter-gather
// evaluation.  The router owns no query cache, so the cache-hit tier of
// the single-node execution order does not exist here; items still run
// grouped — descendants by the start node's meta document (consecutive
// gathers fan out to the same owning shard), ranked queries by their first
// step's tag — with the response in request order and a deadline expiry
// returning the completed prefix plus a "partial" marker.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"repro/internal/query"
	"repro/internal/xmlgraph"
)

// handleBatch answers POST /v1/batch on the router.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request, ctx context.Context) {
	if r.Method != http.MethodPost {
		rt.fail(w, http.StatusMethodNotAllowed, "POST a JSON batch body to /v1/batch")
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		rt.fail(w, http.StatusBadRequest, "bad batch body: "+err.Error())
		return
	}
	if len(req.Queries) == 0 {
		rt.fail(w, http.StatusBadRequest, `empty batch: want {"queries": [...]}`)
		return
	}
	if len(req.Queries) > rt.cfg.MaxBatch {
		rt.fail(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d queries exceeds the limit of %d", len(req.Queries), rt.cfg.MaxBatch))
		return
	}
	topo := rt.topo.Load()
	reqID := requestIDFrom(ctx)

	items := make([]BatchItem, len(req.Queries))
	plan := make([]routerBatchItem, 0, len(req.Queries))
	for i, bq := range req.Queries {
		it, err := rt.planBatchItem(topo, i, bq, req.K)
		if err != nil {
			items[i] = BatchItem{Status: BatchError, Error: err.Error()}
			continue
		}
		plan = append(plan, it)
	}
	sort.SliceStable(plan, func(i, j int) bool {
		a, b := plan[i], plan[j]
		if a.ranked != b.ranked {
			return !a.ranked // descendants items first
		}
		if a.ranked {
			return a.qTag < b.qTag
		}
		return a.meta < b.meta
	})

	failedSet := map[int]bool{}
	executed := 0
	for _, it := range plan {
		if expired(ctx) {
			break
		}
		items[it.idx] = rt.runBatchItem(ctx, reqID, it, failedSet)
		executed++
	}
	for _, it := range plan[executed:] {
		items[it.idx] = BatchItem{Status: BatchSkipped, Error: "batch deadline expired"}
	}

	timedOut := expired(ctx)
	if timedOut {
		rt.timeouts.Add(1)
	}
	failed := make([]int, 0, len(failedSet))
	for id := range failedSet {
		failed = append(failed, id)
	}
	sort.Ints(failed)
	rt.setPartialHeader(w, gatherOut{failed: failed})
	rt.ok(w, BatchResponse{
		Results:      items,
		Completed:    len(items) - (len(plan) - executed),
		Partial:      executed < len(plan),
		TimedOut:     timedOut,
		FailedShards: failed,
	})
}

// routerBatchItem is one executable entry of a router batch.
type routerBatchItem struct {
	idx int
	k   int

	ranked bool
	q      *query.Query
	qTag   string

	start   xmlgraph.NodeID
	tag     string
	maxDist int32
	self    bool
	meta    int32
}

// planBatchItem parses and resolves one entry; errors become per-item
// "error" statuses.
func (rt *Router) planBatchItem(topo *topology, i int, bq BatchQuery, defK int) (routerBatchItem, error) {
	it := routerBatchItem{idx: i, k: bq.K}
	if it.k <= 0 {
		it.k = defK
	}
	if it.k <= 0 {
		it.k = rt.cfg.DefaultLimit
	}
	if it.k > rt.cfg.MaxLimit {
		it.k = rt.cfg.MaxLimit
	}
	if bq.Q != "" {
		pq, err := query.Parse(bq.Q)
		if err != nil {
			return it, err
		}
		it.ranked = true
		it.q = pq
		it.qTag = pq.Steps[0].Tag
		return it, nil
	}
	start, err := rt.resolveNode(bq.Start)
	if err != nil {
		return it, fmt.Errorf("start: %v", err)
	}
	if bq.MaxDist < 0 {
		return it, fmt.Errorf("bad maxDist %d (want >= 0)", bq.MaxDist)
	}
	it.start, it.tag, it.maxDist, it.self = start, bq.Tag, bq.MaxDist, bq.IncludeSelf
	if topo != nil && int(start) < len(topo.metaOf) {
		it.meta = topo.metaOf[start]
	}
	return it, nil
}

// runBatchItem evaluates one planned item, accumulating failed shards into
// the batch-wide set.
func (rt *Router) runBatchItem(ctx context.Context, reqID string, it routerBatchItem, failedSet map[int]bool) BatchItem {
	item := BatchItem{Status: BatchOK}
	if it.ranked {
		be := &routerBackend{rt: rt, ctx: ctx, reqID: reqID}
		eval := &query.Evaluator{Index: be, Ontology: rt.onto, Cancel: ctx.Done()}
		matches := eval.EvaluateTopK(it.q, it.k)
		item.Results = make([]BatchResult, 0, len(matches))
		for _, m := range matches {
			br := rt.batchResult(m.Node, m.PathLen)
			br.Score = m.Score
			br.PathLen = m.PathLen
			item.Results = append(item.Results, br)
		}
		item.Truncated = be.partial || eval.Stats.Truncated
		for _, id := range be.failed {
			failedSet[id] = true
		}
		item.Count = len(item.Results)
		return item
	}
	g := rt.gatherDescendants(ctx, reqID, it.start, it.tag, it.maxDist, it.k, it.self, nil)
	item.Results = make([]BatchResult, 0, min(len(g.results), it.k))
	for _, e := range g.results {
		if len(item.Results) >= it.k {
			break
		}
		item.Results = append(item.Results, rt.batchResult(e.Node, e.Dist))
	}
	item.Truncated = g.partial
	for _, id := range g.failed {
		failedSet[id] = true
	}
	item.Count = len(item.Results)
	return item
}

// batchResult renders one result element in the batch wire shape.
func (rt *Router) batchResult(n xmlgraph.NodeID, dist int32) BatchResult {
	return BatchResult{
		Node: n,
		Tag:  rt.coll.Tag(n),
		Doc:  rt.coll.Doc(rt.coll.DocOf(n)).Name,
		Text: snippet(rt.coll.Node(n).Text),
		Dist: dist,
	}
}
