package shard_test

// The router /metrics round trip: scrape the hand-rolled Prometheus text
// exposition, parse every line back, and check the scatter-gather counters
// against the work the cluster actually did.  The parser rejects anything a
// real Prometheus scraper would: samples without HELP/TYPE, malformed label
// sets, duplicate series, non-cumulative histogram buckets.

import (
	"bufio"
	"fmt"
	"math"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/testutil"
)

// promSample matches one exposition sample line: name, optional label set
// with double-quoted values, value.
var promSample = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? (\S+)$`)

// promText is a parsed /metrics payload.
type promText struct {
	types   map[string]string  // metric family -> counter|gauge|histogram
	samples map[string]float64 // full series (name{labels}) -> value
	order   []string           // series in exposition order
}

// scrapeMetrics fetches and parses <base>/metrics, failing the test on any
// malformed line or on samples whose family lacks a HELP/TYPE pair.
func scrapeMetrics(t *testing.T, base string) *promText {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q, want text/plain", ct)
	}
	e := &promText{types: make(map[string]string), samples: make(map[string]float64)}
	help := make(map[string]bool)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, text, ok := strings.Cut(rest, " ")
			if !ok || text == "" {
				t.Errorf("HELP without text: %q", line)
			}
			help[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, ok := strings.Cut(rest, " ")
			if !ok || (kind != "counter" && kind != "gauge" && kind != "histogram") {
				t.Errorf("bad TYPE line: %q", line)
			}
			if !help[name] {
				t.Errorf("TYPE for %s without a preceding HELP", name)
			}
			if _, dup := e.types[name]; dup {
				t.Errorf("duplicate TYPE for %s", name)
			}
			e.types[name] = kind
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		name, labels, raw := m[1], m[2], m[3]
		var v float64
		if raw == "+Inf" {
			v = math.Inf(1)
		} else if v, err = strconv.ParseFloat(raw, 64); err != nil {
			t.Errorf("bad value in %q: %v", line, err)
			continue
		}
		if e.family(name) == "" {
			t.Errorf("sample %s without a TYPE declaration", name)
		}
		series := name + labels
		if _, dup := e.samples[series]; dup {
			t.Errorf("duplicate series %s", series)
		}
		e.samples[series] = v
		e.order = append(e.order, series)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return e
}

// family resolves a sample name to its declared metric family, mapping
// histogram _bucket/_sum/_count children onto the parent.
func (e *promText) family(name string) string {
	if e.types[name] != "" {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(name, suf); e.types[base] == "histogram" {
			return base
		}
	}
	return ""
}

// TestRouterMetricsExposition drives real traffic through a 2-shard cluster
// and round-trips the router's /metrics: format validity, the scatter and
// tracing counter families, per-shard series, runtime gauges, histogram
// bucket cumulativity and counter monotonicity across scrapes.
func TestRouterMetricsExposition(t *testing.T) {
	coll := testutil.Generate(testutil.Linked, 5, 10, 40, 30)
	ix := buildIndex(t, coll)
	c := newCluster(t, coll, ix, 2, 0)
	tags := coll.Tags()
	hit := func(n int, traced bool) {
		for i := 0; i < n; i++ {
			var dr struct {
				Rounds int `json:"rounds"`
			}
			path := fmt.Sprintf("/v1/descendants?start=%d&tag=%s&k=1000&timeout=20s", i%coll.NumNodes(), tags[i%len(tags)])
			if traced {
				path += "&trace=1"
			}
			c.getJSON(path, &dr)
		}
	}
	hit(4, false)
	hit(2, true)

	first := scrapeMetrics(t, c.router.URL)

	// Every family the dashboards read must be declared and populated.
	for series, want := range map[string]float64{
		"flix_router_ready":  1,
		"flix_router_shards": 2,
		`flix_router_requests_total{endpoint="descendants"}`: 6,
		"flix_router_gathers_total":                          6,
		"flix_router_traced_queries_total":                   2,
		"flix_router_partial_results_total":                  0,
		"flix_router_shard_failures_total":                   0,
	} {
		if got, ok := first.samples[series]; !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", series, got, ok, want)
		}
	}
	// Work counters must be present and self-consistent even where the exact
	// value depends on the partitioning.
	rounds := first.samples["flix_router_rounds_total"]
	gathers := first.samples["flix_router_gathers_total"]
	if rounds < gathers {
		t.Errorf("rounds_total %v < gathers_total %v — every gather runs at least one round", rounds, gathers)
	}
	if fanouts := first.samples["flix_router_fanouts_total"]; fanouts < rounds {
		t.Errorf("fanouts_total %v < rounds_total %v — every round dispatches at least one batch", fanouts, rounds)
	}
	if rpg := first.samples["flix_router_rounds_per_gather"]; math.Abs(rpg-rounds/gathers) > 1e-9 {
		t.Errorf("rounds_per_gather = %v, want %v/%v", rpg, rounds, gathers)
	}
	hops := first.samples["flix_router_hops_total"]
	redis := first.samples["flix_router_hops_redispatched_total"]
	dedup := first.samples["flix_router_hops_deduped_total"]
	if hops != redis+dedup {
		t.Errorf("hops_total %v != redispatched %v + deduped %v (no budget or maxdist in play)", hops, redis, dedup)
	}
	// Per-shard series: one rpcs/errors/ready sample per configured shard,
	// and both shards did work on this corpus.
	var rpcTotal float64
	for sh := 0; sh < 2; sh++ {
		rpcs, ok := first.samples[fmt.Sprintf("flix_router_shard_rpcs_total{shard=%q}", strconv.Itoa(sh))]
		if !ok || rpcs <= 0 {
			t.Errorf("shard %d rpcs series missing or zero: %v", sh, rpcs)
		}
		rpcTotal += rpcs
		if _, ok := first.samples[fmt.Sprintf("flix_router_shard_rpc_errors_total{shard=%q}", strconv.Itoa(sh))]; !ok {
			t.Errorf("shard %d rpc_errors series missing", sh)
		}
		if v := first.samples[fmt.Sprintf("flix_router_shard_ready{shard=%q}", strconv.Itoa(sh))]; v != 1 {
			t.Errorf("shard %d ready = %v, want 1", sh, v)
		}
	}
	if fanouts := first.samples["flix_router_fanouts_total"]; rpcTotal != fanouts {
		t.Errorf("per-shard rpcs sum %v != fanouts_total %v", rpcTotal, fanouts)
	}
	// Runtime gauges ride on the same endpoint.
	if v := first.samples["go_goroutines"]; v <= 0 {
		t.Errorf("go_goroutines = %v, want > 0", v)
	}
	if v := first.samples["go_memstats_heap_alloc_bytes"]; v <= 0 {
		t.Errorf("go_memstats_heap_alloc_bytes = %v, want > 0", v)
	}

	// The latency histogram must have cumulative buckets whose +Inf equals
	// _count.  The histogram is observed just after the response is written,
	// so poll briefly for the last request's sample.
	countSeries := `flix_router_request_duration_seconds_count{endpoint="descendants"}`
	deadline := time.Now().Add(2 * time.Second)
	for first.samples[countSeries] != 6 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
		first = scrapeMetrics(t, c.router.URL)
	}
	var prev float64
	buckets := 0
	for _, series := range first.order {
		if !strings.HasPrefix(series, `flix_router_request_duration_seconds_bucket{endpoint="descendants",`) {
			continue
		}
		if v := first.samples[series]; v < prev {
			t.Errorf("bucket counts not cumulative at %s: %v < %v", series, v, prev)
		} else {
			prev = v
		}
		buckets++
	}
	if buckets < 2 {
		t.Fatalf("found %d descendants duration buckets, want >= 2", buckets)
	}
	if inf := first.samples[`flix_router_request_duration_seconds_bucket{endpoint="descendants",le="+Inf"}`]; inf != first.samples[countSeries] {
		t.Errorf("+Inf bucket %v != _count %v", inf, first.samples[countSeries])
	}

	// Counters stay monotone across scrapes while more traffic lands.
	hit(3, true)
	second := scrapeMetrics(t, c.router.URL)
	for series, v2 := range second.samples {
		name := strings.SplitN(series, "{", 2)[0]
		kind := second.types[second.family(name)]
		if kind != "counter" && kind != "histogram" {
			continue
		}
		if v1, ok := first.samples[series]; ok && v2 < v1 {
			t.Errorf("%s went backwards: %v -> %v", series, v1, v2)
		}
	}
	if got := second.samples["flix_router_traced_queries_total"]; got != 5 {
		t.Errorf("traced_queries_total = %v, want 5", got)
	}
}
