package shard

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs"
)

// handleHealthz reports aggregate readiness: 200 once the topology is
// loaded and a quorum of shards is up, 503 (with the same JSON body)
// otherwise, so orchestrators and the shard client read one shape.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ready := rt.Ready()
	readyShards := rt.readyShards()
	status := "ok"
	switch {
	case !ready:
		status = "starting"
	case readyShards < len(rt.shards):
		status = "degraded"
	}
	shards := make([]map[string]any, len(rt.shards))
	for i, st := range rt.shards {
		shards[i] = map[string]any{
			"id":         i,
			"url":        st.url,
			"ready":      st.ready.Load(),
			"saturated":  st.saturated.Load(),
			"generation": st.generation.Load(),
		}
		if e := st.errString(); e != "" {
			shards[i]["error"] = e
		}
	}
	body := map[string]any{
		"status":      status,
		"ready":       ready,
		"readyShards": readyShards,
		"shards":      len(rt.shards),
		"quorum":      rt.cfg.Quorum,
		"inFlight":    len(rt.sem),
		"maxInFlight": cap(rt.sem),
		"uptime":      time.Since(rt.started).Round(time.Millisecond).String(),
		"shardStates": shards,
	}
	if !ready {
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	rt.ok(w, body)
}

// handleStatsz renders the router's operational counters plus a per-shard
// section: probe state, backpressure and the shard RPC latency quantiles.
func (rt *Router) handleStatsz(w http.ResponseWriter, r *http.Request) {
	topoSection := map[string]any{"loaded": false}
	if topo := rt.topo.Load(); topo != nil {
		topoSection = map[string]any{
			"loaded":      true,
			"metas":       topo.numMetas,
			"nodes":       topo.numNodes,
			"fingerprint": topo.fingerprint,
			"loadedFrom":  topo.loadedFrom,
		}
	}
	latency := map[string]any{}
	for ep, h := range rt.latency {
		sn := h.Snapshot()
		latency[ep] = map[string]any{
			"count": sn.Count,
			"p50":   durString(sn.Quantile(0.50)),
			"p99":   durString(sn.Quantile(0.99)),
		}
	}
	shards := make([]map[string]any, len(rt.shards))
	for i, st := range rt.shards {
		sn := rt.shardLatency[i].Snapshot()
		shards[i] = map[string]any{
			"id":          i,
			"url":         st.url,
			"ready":       st.ready.Load(),
			"saturated":   st.saturated.Load(),
			"generation":  st.generation.Load(),
			"inFlight":    st.inFlight.Load(),
			"maxInFlight": st.maxInFlight.Load(),
			"probes":      st.probes.Load(),
			"probeFails":  st.probeFails.Load(),
			"consecFails": st.consecFails.Load(),
			"rpcs":        st.rpcs.Load(),
			"rpcErrors":   st.rpcErrors.Load(),
			"rpcCount":    sn.Count,
			"rpcP50":      durString(sn.Quantile(0.50)),
			"rpcP99":      durString(sn.Quantile(0.99)),
		}
		if e := st.errString(); e != "" {
			shards[i]["lastError"] = e
		}
	}
	rt.ok(w, map[string]any{
		"ready":    rt.Ready(),
		"uptime":   time.Since(rt.started).Round(time.Millisecond).String(),
		"topology": topoSection,
		"requests": map[string]any{
			"descendants":  rt.reqDescendants.Load(),
			"connected":    rt.reqConnected.Load(),
			"query":        rt.reqQuery.Load(),
			"batch":        rt.reqBatch.Load(),
			"shed":         rt.shed.Load(),
			"notReady":     rt.notReady.Load(),
			"timeouts":     rt.timeouts.Load(),
			"clientErrors": rt.clientErrors.Load(),
			"inFlight":     len(rt.sem),
			"maxInFlight":  cap(rt.sem),
		},
		"scatter": map[string]any{
			"fanouts":          rt.fanouts.Load(),
			"gathers":          rt.gathers.Load(),
			"rounds":           rt.rounds.Load(),
			"roundsPerGather":  ratio(rt.rounds.Load(), rt.gathers.Load()),
			"hops":             rt.hops.Load(),
			"hopsDeduped":      rt.hopsDeduped.Load(),
			"hopsRedispatched": rt.hopsRedispatched.Load(),
			"earlyStops":       rt.earlyStops.Load(),
			"budgetStops":      rt.budgetStops.Load(),
			"partials":         rt.partials.Load(),
			"shardFailures":    rt.shardFailures.Load(),
			"hopBudget":        rt.cfg.HopBudget,
			"tracedQueries":    rt.tracedQueries.Load(),
		},
		"latency":     latency,
		"shardStates": shards,
	})
}

func durString(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

// ratio guards the rounds-per-gather division against a fresh router.
func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// handleMetrics renders the router counters in the Prometheus text format,
// same hand-rolled exposition as the single-node server (internal/obs).
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("# HELP flix_router_ready Whether the router serves (topology loaded, quorum up).\n")
	p("# TYPE flix_router_ready gauge\n")
	if rt.Ready() {
		p("flix_router_ready 1\n")
	} else {
		p("flix_router_ready 0\n")
	}
	p("# HELP flix_router_shards_ready Shards currently probing ready.\n")
	p("# TYPE flix_router_shards_ready gauge\n")
	p("flix_router_shards_ready %d\n", rt.readyShards())
	p("# HELP flix_router_shards Configured shards.\n")
	p("# TYPE flix_router_shards gauge\n")
	p("flix_router_shards %d\n", len(rt.shards))

	p("# HELP flix_router_requests_total Query requests received, by endpoint.\n")
	p("# TYPE flix_router_requests_total counter\n")
	p("flix_router_requests_total{endpoint=\"descendants\"} %d\n", rt.reqDescendants.Load())
	p("flix_router_requests_total{endpoint=\"connected\"} %d\n", rt.reqConnected.Load())
	p("flix_router_requests_total{endpoint=\"query\"} %d\n", rt.reqQuery.Load())
	p("# HELP flix_router_requests_shed_total Requests rejected 429 (router or cluster at capacity).\n")
	p("# TYPE flix_router_requests_shed_total counter\n")
	p("flix_router_requests_shed_total %d\n", rt.shed.Load())
	p("# HELP flix_router_requests_not_ready_total Requests answered 503 below quorum.\n")
	p("# TYPE flix_router_requests_not_ready_total counter\n")
	p("flix_router_requests_not_ready_total %d\n", rt.notReady.Load())
	p("# HELP flix_router_request_timeouts_total Requests whose deadline expired mid-gather.\n")
	p("# TYPE flix_router_request_timeouts_total counter\n")
	p("flix_router_request_timeouts_total %d\n", rt.timeouts.Load())
	p("# HELP flix_router_client_errors_total Requests rejected with a 4xx other than 429.\n")
	p("# TYPE flix_router_client_errors_total counter\n")
	p("flix_router_client_errors_total %d\n", rt.clientErrors.Load())

	p("# HELP flix_router_fanouts_total Shard RPC batches dispatched.\n")
	p("# TYPE flix_router_fanouts_total counter\n")
	p("flix_router_fanouts_total %d\n", rt.fanouts.Load())
	p("# HELP flix_router_gathers_total Scatter-gather evaluations executed.\n")
	p("# TYPE flix_router_gathers_total counter\n")
	p("flix_router_gathers_total %d\n", rt.gathers.Load())
	p("# HELP flix_router_rounds_total Scatter-gather rounds executed.\n")
	p("# TYPE flix_router_rounds_total counter\n")
	p("flix_router_rounds_total %d\n", rt.rounds.Load())
	p("# HELP flix_router_rounds_per_gather Mean re-dispatch rounds per gather since start.\n")
	p("# TYPE flix_router_rounds_per_gather gauge\n")
	p("flix_router_rounds_per_gather %s\n", obs.FormatFloat(ratio(rt.rounds.Load(), rt.gathers.Load())))
	p("# HELP flix_router_hops_total Cross-shard hop entries returned by shards.\n")
	p("# TYPE flix_router_hops_total counter\n")
	p("flix_router_hops_total %d\n", rt.hops.Load())
	p("# HELP flix_router_hops_deduped_total Hop entries dropped by the best-distance map.\n")
	p("# TYPE flix_router_hops_deduped_total counter\n")
	p("flix_router_hops_deduped_total %d\n", rt.hopsDeduped.Load())
	p("# HELP flix_router_hops_redispatched_total Hop entries re-dispatched to their owning shard.\n")
	p("# TYPE flix_router_hops_redispatched_total counter\n")
	p("flix_router_hops_redispatched_total %d\n", rt.hopsRedispatched.Load())
	p("# HELP flix_router_early_stops_total Gathers ended by the top-k or connectivity watermark.\n")
	p("# TYPE flix_router_early_stops_total counter\n")
	p("flix_router_early_stops_total %d\n", rt.earlyStops.Load())
	p("# HELP flix_router_budget_stops_total Gathers that exhausted the hop budget.\n")
	p("# TYPE flix_router_budget_stops_total counter\n")
	p("flix_router_budget_stops_total %d\n", rt.budgetStops.Load())
	p("# HELP flix_router_partial_results_total Queries answered with a partial result.\n")
	p("# TYPE flix_router_partial_results_total counter\n")
	p("flix_router_partial_results_total %d\n", rt.partials.Load())
	p("# HELP flix_router_shard_failures_total Shard batches dropped after retries.\n")
	p("# TYPE flix_router_shard_failures_total counter\n")
	p("flix_router_shard_failures_total %d\n", rt.shardFailures.Load())
	p("# HELP flix_router_traced_queries_total Queries evaluated with ?trace=1 distributed tracing.\n")
	p("# TYPE flix_router_traced_queries_total counter\n")
	p("flix_router_traced_queries_total %d\n", rt.tracedQueries.Load())

	p("# HELP flix_router_request_duration_seconds Query latency by endpoint.\n")
	p("# TYPE flix_router_request_duration_seconds histogram\n")
	for _, ep := range []string{"connected", "descendants", "query"} {
		writeHistogram(p, "flix_router_request_duration_seconds", "endpoint", ep, rt.latency[ep].Snapshot())
	}
	p("# HELP flix_router_shard_rpc_duration_seconds Shard RPC latency by shard.\n")
	p("# TYPE flix_router_shard_rpc_duration_seconds histogram\n")
	for i := range rt.shards {
		writeHistogram(p, "flix_router_shard_rpc_duration_seconds", "shard", fmt.Sprintf("%d", i), rt.shardLatency[i].Snapshot())
	}
	p("# HELP flix_router_shard_rpcs_total Eval RPCs dispatched, by shard.\n")
	p("# TYPE flix_router_shard_rpcs_total counter\n")
	for i, st := range rt.shards {
		p("flix_router_shard_rpcs_total{shard=\"%d\"} %d\n", i, st.rpcs.Load())
	}
	p("# HELP flix_router_shard_rpc_errors_total Eval RPCs that failed after retries, by shard.\n")
	p("# TYPE flix_router_shard_rpc_errors_total counter\n")
	for i, st := range rt.shards {
		p("flix_router_shard_rpc_errors_total{shard=\"%d\"} %d\n", i, st.rpcErrors.Load())
	}
	p("# HELP flix_router_shard_ready Per-shard readiness.\n")
	p("# TYPE flix_router_shard_ready gauge\n")
	for i, st := range rt.shards {
		v := 0
		if st.ready.Load() {
			v = 1
		}
		p("flix_router_shard_ready{shard=\"%d\"} %d\n", i, v)
	}
	p("# HELP flix_router_inflight_requests Queries currently evaluating.\n")
	p("# TYPE flix_router_inflight_requests gauge\n")
	p("flix_router_inflight_requests %d\n", len(rt.sem))

	obs.WriteGoRuntimeText(p)
}

// writeHistogram aliases the exposition helper shared with the single-node
// server's /metrics.
var writeHistogram = obs.WriteHistogramText
