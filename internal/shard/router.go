package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flix"
	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/query"
	"repro/internal/xmlgraph"
)

// RouterConfig tunes the scatter-gather router.  Shards is required; zero
// values elsewhere take the documented defaults.
type RouterConfig struct {
	// Shards lists the shard base URLs; shard i of the ring is Shards[i].
	Shards []string
	// VNodes is the ring's virtual-node count per shard; it must match the
	// shards' -shard-vnodes.  Default DefaultVNodes.
	VNodes int
	// Quorum is the number of ready shards required before the router
	// reports ready (0 = all shards).  Queries may still touch a non-ready
	// shard and come back partial; the quorum gates admission, not
	// correctness.
	Quorum int
	// HopBudget bounds the cross-shard hop entries dispatched per query;
	// exhausting it returns a partial result.  Default 100000.
	HopBudget int
	// MaxInFlight bounds concurrently evaluating queries (excess sheds
	// with 429).  Default 64.
	MaxInFlight int
	// DefaultTimeout / MaxTimeout mirror the single-node server's
	// per-request deadline handling.  Defaults 2s / 30s.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DefaultLimit / MaxLimit mirror the single-node result limits.
	// Defaults 100 / 10000.
	DefaultLimit int
	MaxLimit     int
	// MaxBatch caps the number of queries in one POST /v1/batch request.
	// Default 256.
	MaxBatch int
	// ShardTimeout bounds each shard RPC attempt.  Default 10s.
	ShardTimeout time.Duration
	// Retries / RetryBackoff tune the shard client.  Defaults 2 / 25ms.
	Retries      int
	RetryBackoff time.Duration
	// ProbeInterval is the health-probe cadence.  Default 1s.
	ProbeInterval time.Duration
	// Logger receives access-log lines and prober events.  Nil disables.
	Logger *log.Logger
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.Quorum <= 0 || c.Quorum > len(c.Shards) {
		c.Quorum = len(c.Shards)
	}
	if c.HopBudget <= 0 {
		c.HopBudget = 100000
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.DefaultLimit <= 0 {
		c.DefaultLimit = 100
	}
	if c.MaxLimit <= 0 {
		c.MaxLimit = 10000
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 10 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	return c
}

// topology is the router's immutable view of the cluster's meta-document
// decomposition, bootstrapped from a shard's /v1/shard/links and swapped
// atomically.
type topology struct {
	numMetas    int
	numNodes    int
	metaOf      []int32
	linkCounts  []int32
	fingerprint string
	loadedFrom  int
}

// shardState is the router's live view of one shard, updated by the prober
// and the gather loop, read by admission and /statsz.
type shardState struct {
	url         string
	ready       atomic.Bool
	saturated   atomic.Bool
	generation  atomic.Uint64
	inFlight    atomic.Int64
	maxInFlight atomic.Int64
	consecFails atomic.Int64
	probes      atomic.Int64
	probeFails  atomic.Int64
	rpcs        atomic.Int64
	rpcErrors   atomic.Int64
	lastErr     atomic.Pointer[string]
	fingerprint atomic.Pointer[string]
}

func (st *shardState) setErr(msg string) {
	st.lastErr.Store(&msg)
}

func (st *shardState) errString() string {
	if p := st.lastErr.Load(); p != nil {
		return *p
	}
	return ""
}

// Router fans queries out over a fixed set of flixd shards and merges the
// per-shard streams back into single-node-shaped responses.  It owns no
// index — only the collection (for node resolution and result rendering)
// and the ring.
type Router struct {
	coll   *xmlgraph.Collection
	onto   *ontology.Ontology
	cfg    RouterConfig
	client *Client
	ring   *Ring

	topo   atomic.Pointer[topology]
	shards []*shardState

	sem     chan struct{}
	started time.Time

	latency      map[string]*obs.Histogram
	shardLatency []*obs.Histogram

	reqSeq         atomic.Uint64
	reqDescendants atomic.Int64
	reqConnected   atomic.Int64
	reqQuery       atomic.Int64
	reqBatch       atomic.Int64
	shed           atomic.Int64
	notReady       atomic.Int64
	timeouts       atomic.Int64
	clientErrors   atomic.Int64

	fanouts          atomic.Int64
	gathers          atomic.Int64
	rounds           atomic.Int64
	hops             atomic.Int64
	hopsDeduped      atomic.Int64
	hopsRedispatched atomic.Int64
	budgetStops      atomic.Int64
	earlyStops       atomic.Int64
	partials         atomic.Int64
	shardFailures    atomic.Int64
	tracedQueries    atomic.Int64
}

// NewRouter builds a router over the collection the shards serve.  Call
// Start to begin health probing; the router reports ready once the topology
// is loaded and a quorum of shards is up.
func NewRouter(coll *xmlgraph.Collection, cfg RouterConfig) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one shard URL")
	}
	cfg = cfg.withDefaults()
	rt := &Router{
		coll: coll,
		cfg:  cfg,
		client: NewClient(cfg.Shards, ClientOptions{
			Timeout: cfg.ShardTimeout,
			Retries: cfg.Retries,
			Backoff: cfg.RetryBackoff,
		}),
		ring:    NewRing(len(cfg.Shards), cfg.VNodes),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		started: time.Now(),
		latency: map[string]*obs.Histogram{
			"descendants": new(obs.Histogram),
			"connected":   new(obs.Histogram),
			"query":       new(obs.Histogram),
			"batch":       new(obs.Histogram),
		},
	}
	rt.shards = make([]*shardState, len(cfg.Shards))
	rt.shardLatency = make([]*obs.Histogram, len(cfg.Shards))
	for i, url := range cfg.Shards {
		rt.shards[i] = &shardState{url: url}
		rt.shardLatency[i] = new(obs.Histogram)
	}
	return rt, nil
}

// SetOntology installs the tag-similarity ontology for /v1/query ~tag
// expansion.  Must be called before Handler.
func (rt *Router) SetOntology(o *ontology.Ontology) { rt.onto = o }

// Start launches the health prober; it probes immediately, then every
// ProbeInterval until ctx is cancelled.
func (rt *Router) Start(ctx context.Context) {
	go func() {
		rt.probeOnce(ctx)
		t := time.NewTicker(rt.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				rt.probeOnce(ctx)
			}
		}
	}()
}

// probeOnce probes every shard's /healthz in parallel and refreshes the
// topology when needed.
func (rt *Router) probeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for i := range rt.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rt.probeShard(ctx, i)
		}(i)
	}
	wg.Wait()
	rt.maybeLoadTopology(ctx)
}

func (rt *Router) probeShard(ctx context.Context, i int) {
	st := rt.shards[i]
	st.probes.Add(1)
	h, err := rt.client.Health(ctx, i)
	if err != nil {
		st.probeFails.Add(1)
		st.consecFails.Add(1)
		st.ready.Store(false)
		st.setErr(err.Error())
		return
	}
	st.generation.Store(h.Generation)
	st.inFlight.Store(int64(h.InFlight))
	st.maxInFlight.Store(int64(h.MaxInFlight))
	st.saturated.Store(h.MaxInFlight > 0 && h.InFlight >= h.MaxInFlight)
	if !h.Ready {
		st.ready.Store(false)
		st.setErr("shard not ready")
		return
	}
	if h.Shard == nil {
		st.ready.Store(false)
		st.setErr("shard is not running in shard mode")
		return
	}
	if h.Shard.ID != i || h.Shard.Count != len(rt.shards) {
		st.ready.Store(false)
		st.setErr(fmt.Sprintf("ring mismatch: shard reports %d/%d, router expects %d/%d",
			h.Shard.ID, h.Shard.Count, i, len(rt.shards)))
		return
	}
	st.fingerprint.Store(&h.Shard.Fingerprint)
	if topo := rt.topo.Load(); topo != nil && h.Shard.Fingerprint != topo.fingerprint {
		st.ready.Store(false)
		st.setErr("meta-document fingerprint disagrees with the loaded topology")
		return
	}
	st.consecFails.Store(0)
	st.setErr("")
	st.ready.Store(true)
}

// maybeLoadTopology bootstraps the topology from the first ready shard, or
// reloads it when every reporting shard has moved to a new (agreeing)
// fingerprint — the whole cluster was reindexed in lockstep.
func (rt *Router) maybeLoadTopology(ctx context.Context) {
	topo := rt.topo.Load()
	from := -1
	if topo == nil {
		for i, st := range rt.shards {
			if st.ready.Load() {
				from = i
				break
			}
		}
	} else {
		// Reload only when no shard matches the loaded topology anymore
		// and all reporting shards agree with each other.
		agreed := ""
		for _, st := range rt.shards {
			fp := st.fingerprint.Load()
			if fp == nil {
				continue
			}
			if *fp == topo.fingerprint {
				return
			}
			if agreed == "" {
				agreed = *fp
			} else if *fp != agreed {
				return
			}
		}
		if agreed == "" {
			return
		}
		for i, st := range rt.shards {
			if fp := st.fingerprint.Load(); fp != nil && *fp == agreed {
				from = i
				break
			}
		}
	}
	if from < 0 {
		return
	}
	lr, err := rt.client.Links(ctx, from, false)
	if err != nil {
		if rt.cfg.Logger != nil {
			rt.cfg.Logger.Printf("topology load from shard %d failed: %v", from, err)
		}
		return
	}
	if lr.Shards != len(rt.shards) || lr.VNodes != rt.cfg.VNodes {
		if rt.cfg.Logger != nil {
			rt.cfg.Logger.Printf("topology from shard %d rejected: ring %d/%d, router %d/%d",
				from, lr.Shards, lr.VNodes, len(rt.shards), rt.cfg.VNodes)
		}
		return
	}
	if lr.NumNodes != rt.coll.NumNodes() || len(lr.MetaOf) != rt.coll.NumNodes() {
		if rt.cfg.Logger != nil {
			rt.cfg.Logger.Printf("topology from shard %d rejected: %d nodes, collection has %d",
				from, lr.NumNodes, rt.coll.NumNodes())
		}
		return
	}
	rt.topo.Store(&topology{
		numMetas:    lr.NumMetas,
		numNodes:    lr.NumNodes,
		metaOf:      lr.MetaOf,
		linkCounts:  lr.LinkCounts,
		fingerprint: lr.Fingerprint,
		loadedFrom:  from,
	})
	if rt.cfg.Logger != nil {
		rt.cfg.Logger.Printf("topology loaded from shard %d: %d meta documents, fingerprint %s",
			from, lr.NumMetas, lr.Fingerprint)
	}
}

// readyShards counts shards currently probing ready.
func (rt *Router) readyShards() int {
	n := 0
	for _, st := range rt.shards {
		if st.ready.Load() {
			n++
		}
	}
	return n
}

// Ready reports whether the router can serve: topology loaded and a quorum
// of shards up.
func (rt *Router) Ready() bool {
	return rt.topo.Load() != nil && rt.readyShards() >= rt.cfg.Quorum
}

// WaitReady blocks until the router is ready or ctx expires.
func (rt *Router) WaitReady(ctx context.Context) error {
	t := time.NewTicker(10 * time.Millisecond)
	defer t.Stop()
	for {
		if rt.Ready() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

// saturatedCluster reports whether every ready shard is at its admission
// limit — the backpressure signal: fanning out another query would only get
// 429s from the shards, so the router sheds it at its own door.
func (rt *Router) saturatedCluster() bool {
	anyReady := false
	for _, st := range rt.shards {
		if !st.ready.Load() {
			continue
		}
		anyReady = true
		if !st.saturated.Load() {
			return false
		}
	}
	return anyReady
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/statsz", rt.handleStatsz)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	mux.HandleFunc("/v1/descendants", rt.admit("descendants", &rt.reqDescendants, rt.handleDescendants))
	mux.HandleFunc("/v1/connected", rt.admit("connected", &rt.reqConnected, rt.handleConnected))
	mux.HandleFunc("/v1/query", rt.admit("query", &rt.reqQuery, rt.handleQuery))
	mux.HandleFunc("/v1/batch", rt.admit("batch", &rt.reqBatch, rt.handleBatch))
	return rt.withRequestID(rt.logged(mux))
}

type ctxKey int

const reqIDKey ctxKey = 0

// requestIDFrom returns the request's ID ("" for handlers invoked without
// the middleware).
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey).(string)
	return id
}

// withRequestID reuses a syntactically valid incoming X-Flix-Request-Id —
// so a caller's ID correlates router and shard logs — or assigns a fresh
// one, and propagates it into the context for the gather loop's shard RPCs.
func (rt *Router) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := SanitizeRequestID(r.Header.Get(RequestIDHeader))
		if id == "" {
			id = fmt.Sprintf("%08x", rt.reqSeq.Add(1))
		}
		w.Header().Set(RequestIDHeader, id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), reqIDKey, id)))
	})
}

// SanitizeRequestID validates a client-supplied request ID: 1..64 chars of
// [A-Za-z0-9._-].  Anything else returns "" (caller assigns a fresh ID) so
// hostile header values never reach a log line or an upstream header.
func SanitizeRequestID(raw string) string {
	if len(raw) == 0 || len(raw) > 64 {
		return ""
	}
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return raw
}

// admit wraps a handler with the readiness gate, cluster backpressure, the
// admission semaphore and the per-request deadline — the single-node
// server's admission pipeline with one extra stage (shard saturation).
func (rt *Router) admit(endpoint string, counter *atomic.Int64, h func(http.ResponseWriter, *http.Request, context.Context)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		counter.Add(1)
		if !rt.Ready() {
			rt.notReady.Add(1)
			w.Header().Set("Retry-After", "1")
			rt.fail(w, http.StatusServiceUnavailable,
				fmt.Sprintf("router not ready: %d/%d shards up (quorum %d)",
					rt.readyShards(), len(rt.shards), rt.cfg.Quorum))
			return
		}
		if rt.saturatedCluster() {
			rt.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			rt.fail(w, http.StatusTooManyRequests, "all shards at capacity, retry later")
			return
		}
		select {
		case rt.sem <- struct{}{}:
			defer func() { <-rt.sem }()
		default:
			rt.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			rt.fail(w, http.StatusTooManyRequests, "router at capacity, retry later")
			return
		}
		timeout, err := rt.timeoutFor(r)
		if err != nil {
			rt.fail(w, http.StatusBadRequest, err.Error())
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		t0 := time.Now()
		h(w, r, ctx)
		if hg := rt.latency[endpoint]; hg != nil {
			hg.Observe(time.Since(t0))
		}
	}
}

// handleDescendants answers GET /v1/descendants with the single-node wire
// shape plus the partial-results contract: "partial" and "failedShards" in
// the body, X-Flix-Shards-Failed on the response.
func (rt *Router) handleDescendants(w http.ResponseWriter, r *http.Request, ctx context.Context) {
	q := r.URL.Query()
	start, err := rt.resolveNode(q.Get("start"))
	if err != nil {
		rt.fail(w, http.StatusNotFound, "start: "+err.Error())
		return
	}
	k, err := rt.limitFor(r)
	if err != nil {
		rt.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	maxDist, err := intParam(q.Get("maxdist"), 0)
	if err != nil {
		rt.fail(w, http.StatusBadRequest, "bad maxdist: "+err.Error())
		return
	}
	includeSelf := boolParam(q.Get("self"))
	tb := rt.traceFor(r, ctx, "descendants")
	g := rt.gatherDescendants(ctx, requestIDFrom(ctx), start, q.Get("tag"), int32(maxDist), k, includeSelf, tb)
	timedOut := expired(ctx)
	if timedOut {
		rt.timeouts.Add(1)
	}
	results := make([]nodeJSON, 0, min(len(g.results), k))
	for _, e := range g.results {
		if len(results) >= k {
			break
		}
		results = append(results, rt.nodeJSON(e.Node, e.Dist))
	}
	rt.setPartialHeader(w, g)
	resp := map[string]any{
		"results":      results,
		"count":        len(results),
		"timedOut":     timedOut,
		"partial":      g.partial,
		"failedShards": g.failed,
		"rounds":       g.rounds,
	}
	if tb != nil {
		resp["trace"] = tb.finish(int64(len(results)), g.partial, g.failed)
	}
	rt.ok(w, resp)
}

// traceFor starts a cluster trace when the request asked for one with
// ?trace=1.  nil (the common case) keeps the gather loop on its untraced
// path.
func (rt *Router) traceFor(r *http.Request, ctx context.Context, endpoint string) *traceBuilder {
	if !boolParam(r.URL.Query().Get("trace")) {
		return nil
	}
	rt.tracedQueries.Add(1)
	return newTraceBuilder(requestIDFrom(ctx), endpoint, len(rt.shards))
}

// handleConnected answers GET /v1/connected by gathering start//tag(to)
// with an early stop once the target's distance is final.
func (rt *Router) handleConnected(w http.ResponseWriter, r *http.Request, ctx context.Context) {
	q := r.URL.Query()
	from, err := rt.resolveNode(q.Get("from"))
	if err != nil {
		rt.fail(w, http.StatusNotFound, "from: "+err.Error())
		return
	}
	to, err := rt.resolveNode(q.Get("to"))
	if err != nil {
		rt.fail(w, http.StatusNotFound, "to: "+err.Error())
		return
	}
	maxDist, err := intParam(q.Get("maxdist"), 0)
	if err != nil {
		rt.fail(w, http.StatusBadRequest, "bad maxdist: "+err.Error())
		return
	}
	tb := rt.traceFor(r, ctx, "connected")
	var (
		dist int32
		ok   bool
		g    gatherOut
	)
	if from == to {
		dist, ok = 0, true
	} else {
		g = rt.gather(ctx, requestIDFrom(ctx), []flix.FrontierEntry{{Node: from, Dist: 0}},
			rt.coll.Tag(to), int32(maxDist), 0, to, tb)
		for _, e := range g.results {
			if e.Node == to {
				dist, ok = e.Dist, true
				break
			}
		}
	}
	timedOut := expired(ctx)
	if timedOut {
		rt.timeouts.Add(1)
	}
	rt.setPartialHeader(w, g)
	resp := map[string]any{"connected": ok, "timedOut": timedOut, "partial": g.partial, "failedShards": g.failed}
	if ok {
		resp["dist"] = dist
	}
	if tb != nil {
		var n int64
		if ok {
			n = 1
		}
		resp["trace"] = tb.finish(n, g.partial, g.failed)
	}
	rt.ok(w, resp)
}

// handleQuery answers GET /v1/query: the regular ranked evaluator running
// against the scatter-gather backend, so every //-step scan fans out.
func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request, ctx context.Context) {
	expr := r.URL.Query().Get("q")
	if expr == "" {
		rt.fail(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	k, err := rt.limitFor(r)
	if err != nil {
		rt.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	pq, err := query.Parse(expr)
	if err != nil {
		rt.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	tb := rt.traceFor(r, ctx, "query")
	be := &routerBackend{rt: rt, ctx: ctx, reqID: requestIDFrom(ctx), tb: tb}
	eval := &query.Evaluator{
		Index:      be,
		Ontology:   rt.onto,
		MaxResults: k,
		Cancel:     ctx.Done(),
	}
	matches := eval.EvaluateTopK(pq, k)
	timedOut := expired(ctx)
	if timedOut {
		rt.timeouts.Add(1)
	}
	type matchJSON struct {
		nodeJSON
		Score   float64 `json:"score"`
		PathLen int32   `json:"pathLen"`
	}
	out := make([]matchJSON, 0, len(matches))
	for _, m := range matches {
		out = append(out, matchJSON{
			nodeJSON: rt.nodeJSON(m.Node, m.PathLen),
			Score:    m.Score,
			PathLen:  m.PathLen,
		})
	}
	rt.setPartialHeader(w, gatherOut{partial: be.partial, failed: be.failed})
	resp := map[string]any{
		"results":      out,
		"count":        len(out),
		"timedOut":     timedOut,
		"partial":      be.partial,
		"failedShards": be.failed,
	}
	if tb != nil {
		// The ranked evaluator's own work shape rides on the root span;
		// each //-step scan is one gather child beneath it.
		tb.root.SetAttr("steps", int64(eval.Stats.Steps))
		tb.root.SetAttr("scans", int64(eval.Stats.Scans))
		tb.root.SetAttr("anchored", int64(eval.Stats.Anchored))
		resp["trace"] = tb.finish(int64(len(out)), be.partial, be.failed)
	}
	rt.ok(w, resp)
}

// setPartialHeader attaches X-Flix-Shards-Failed when shards dropped out of
// a gather.
func (rt *Router) setPartialHeader(w http.ResponseWriter, g gatherOut) {
	if len(g.failed) == 0 {
		return
	}
	ids := make([]string, len(g.failed))
	for i, sh := range g.failed {
		ids[i] = strconv.Itoa(sh)
	}
	w.Header().Set(FailedShardsHeader, strings.Join(ids, ","))
}

// --- request plumbing shared with the single-node server's wire shape ---
// (internal/server imports this package, so these small helpers are
// duplicated rather than imported back.)

func (rt *Router) timeoutFor(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("timeout")
	if raw == "" {
		return rt.cfg.DefaultTimeout, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("bad timeout %q (want a positive duration like 500ms)", raw)
	}
	if d > rt.cfg.MaxTimeout {
		d = rt.cfg.MaxTimeout
	}
	return d, nil
}

func (rt *Router) limitFor(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("k")
	if raw == "" {
		return rt.cfg.DefaultLimit, nil
	}
	k, err := strconv.Atoi(raw)
	if err != nil || k <= 0 {
		return 0, fmt.Errorf("bad k %q (want a positive integer)", raw)
	}
	if k > rt.cfg.MaxLimit {
		k = rt.cfg.MaxLimit
	}
	return k, nil
}

func (rt *Router) resolveNode(raw string) (xmlgraph.NodeID, error) {
	if raw == "" {
		return xmlgraph.InvalidNode, fmt.Errorf("missing node parameter")
	}
	if d, ok := rt.coll.DocByName(raw); ok {
		return rt.coll.Doc(d).Root, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 || n >= rt.coll.NumNodes() {
		return xmlgraph.InvalidNode, fmt.Errorf("unknown node %q (want a document name or a node id < %d)", raw, rt.coll.NumNodes())
	}
	return xmlgraph.NodeID(n), nil
}

type nodeJSON struct {
	Node xmlgraph.NodeID `json:"node"`
	Tag  string          `json:"tag"`
	Doc  string          `json:"doc"`
	Text string          `json:"text,omitempty"`
	Dist int32           `json:"dist"`
}

func (rt *Router) nodeJSON(n xmlgraph.NodeID, dist int32) nodeJSON {
	return nodeJSON{
		Node: n,
		Tag:  rt.coll.Tag(n),
		Doc:  rt.coll.Doc(rt.coll.DocOf(n)).Name,
		Text: snippet(rt.coll.Node(n).Text),
		Dist: dist,
	}
}

func snippet(t string) string {
	t = strings.Join(strings.Fields(t), " ")
	if len(t) > 80 {
		t = t[:77] + "..."
	}
	return t
}

func expired(ctx context.Context) bool {
	if ctx.Err() != nil {
		return true
	}
	dl, ok := ctx.Deadline()
	return ok && !time.Now().Before(dl)
}

func (rt *Router) ok(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func (rt *Router) fail(w http.ResponseWriter, code int, msg string) {
	if code >= 400 && code < 500 && code != http.StatusTooManyRequests {
		rt.clientErrors.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{"error": msg}) //nolint:errcheck
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (rt *Router) logged(next http.Handler) http.Handler {
	if rt.cfg.Logger == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		rt.cfg.Logger.Printf("id=%s %s %s %d %s", requestIDFrom(r.Context()),
			r.Method, r.URL.RequestURI(), sw.status, time.Since(t0).Round(time.Microsecond))
	})
}

func intParam(raw string, def int) (int, error) {
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%q is not a non-negative integer", raw)
	}
	return n, nil
}

func boolParam(raw string) bool {
	return raw == "1" || raw == "true"
}
