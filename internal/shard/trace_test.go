package shard_test

// Distributed-tracing tests over the real-HTTP cluster harness: ?trace=1
// must return one merged cluster trace whose per-shard fragments, per-round
// scatter spans and hop accounting reconcile exactly with the router's
// /metrics counters — including when many traced queries assemble their
// fragments concurrently (run under -race).

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/testutil"
	"repro/internal/xmlgraph"
)

// tracedResp is the ?trace=1 wire shape of /v1/descendants.
type tracedResp struct {
	descendantsResp
	Rounds int               `json:"rounds"`
	Trace  *obs.ClusterTrace `json:"trace"`
}

// routerCounters snapshots the /metrics counters a trace must reconcile
// with.
type routerCounters struct {
	gathers, rounds, fanouts    float64
	hops, deduped, redispatched float64
	traced                      float64
	shardRPCs                   map[int]float64
}

func counters(t *testing.T, c *cluster, nShards int) routerCounters {
	t.Helper()
	e := scrapeMetrics(t, c.router.URL)
	rc := routerCounters{
		gathers:      e.samples["flix_router_gathers_total"],
		rounds:       e.samples["flix_router_rounds_total"],
		fanouts:      e.samples["flix_router_fanouts_total"],
		hops:         e.samples["flix_router_hops_total"],
		deduped:      e.samples["flix_router_hops_deduped_total"],
		redispatched: e.samples["flix_router_hops_redispatched_total"],
		traced:       e.samples["flix_router_traced_queries_total"],
		shardRPCs:    make(map[int]float64, nShards),
	}
	for sh := 0; sh < nShards; sh++ {
		rc.shardRPCs[sh] = e.samples[fmt.Sprintf("flix_router_shard_rpcs_total{shard=%q}", strconv.Itoa(sh))]
	}
	return rc
}

// checkTraceShape validates one cluster trace's internal consistency: span
// tree structure, fragment attachment, and the cross-sections (span counts
// vs scalar counters vs per-shard rollups) agreeing with each other.
func checkTraceShape(t *testing.T, ct *obs.ClusterTrace, results int) {
	t.Helper()
	if ct == nil {
		t.Fatal("traced query returned no trace")
	}
	if ct.RequestID == "" {
		t.Error("trace has no request ID")
	}
	if ct.Elapsed <= 0 {
		t.Error("trace has no elapsed time")
	}
	if int(ct.Results) != results {
		t.Errorf("trace results %d != response results %d", ct.Results, results)
	}
	if ct.Gathers < 1 || ct.Rounds < ct.Gathers || ct.Fanouts < ct.Rounds {
		t.Errorf("work shape inverted: gathers=%d rounds=%d fanouts=%d", ct.Gathers, ct.Rounds, ct.Fanouts)
	}
	// Without a hop budget or maxdist, every hop the shards returned was
	// either re-dispatched or fell to the best-distance dedup.
	if ct.HopsSeen != ct.HopsRedispatched+ct.HopsDeduped {
		t.Errorf("hop accounting leaks: seen=%d redispatched=%d deduped=%d",
			ct.HopsSeen, ct.HopsRedispatched, ct.HopsDeduped)
	}
	if ct.BudgetExhausted || ct.Partial {
		t.Errorf("clean cluster flagged budgetExhausted=%v partial=%v", ct.BudgetExhausted, ct.Partial)
	}

	// Walk the span tree: root -> gathers -> rounds -> dispatches, every
	// dispatch carrying the shard's fragment.
	if ct.Root == nil {
		t.Fatal("trace has no span tree")
	}
	gathers, rounds, dispatches := 0, 0, 0
	var fragHops, fragPops int64
	for _, g := range ct.Root.Children {
		if g.Name != "gather" {
			t.Fatalf("root child %q, want gather", g.Name)
		}
		gathers++
		for _, r := range g.Children {
			if r.Name != "round" {
				t.Fatalf("gather child %q, want round", r.Name)
			}
			rounds++
			for _, d := range r.Children {
				if d.Name != "dispatch" {
					t.Fatalf("round child %q, want dispatch", d.Name)
				}
				dispatches++
				if d.Fragment == nil {
					t.Fatal("dispatch span on a clean cluster has no fragment")
				}
				if d.Duration <= 0 {
					t.Error("dispatch span has no duration")
				}
				fragHops += d.Attrs["hops"]
				fragPops += d.Fragment.Pops
			}
		}
	}
	if gathers != ct.Gathers || rounds != ct.Rounds || dispatches != ct.Fanouts {
		t.Errorf("span tree (%d gathers, %d rounds, %d dispatches) != counters (%d, %d, %d)",
			gathers, rounds, dispatches, ct.Gathers, ct.Rounds, ct.Fanouts)
	}
	if fragHops != ct.HopsSeen {
		t.Errorf("dispatch hop attrs sum to %d, trace saw %d", fragHops, ct.HopsSeen)
	}

	// The per-shard rollups must agree with the same fragments.
	var sumRPCs int
	var sumHops, sumPops int64
	for _, s := range ct.Shards {
		if s.RPCs <= 0 {
			t.Errorf("shard %d rollup with %d RPCs", s.Shard, s.RPCs)
		}
		if s.Generation == 0 {
			t.Errorf("shard %d rollup lost the generation", s.Shard)
		}
		sumRPCs += s.RPCs
		sumHops += s.Hops
		sumPops += s.Pops
	}
	if sumRPCs != ct.Fanouts {
		t.Errorf("shard rollup RPCs sum %d != fanouts %d", sumRPCs, ct.Fanouts)
	}
	if sumHops != ct.HopsSeen {
		t.Errorf("shard rollup hops sum %d != hops seen %d", sumHops, ct.HopsSeen)
	}
	if sumPops != fragPops {
		t.Errorf("shard rollup pops %d != fragment pops %d", sumPops, fragPops)
	}
	if len(ct.Strategies) == 0 {
		t.Error("trace has no strategy breakdown")
	}
}

// TestClusterTraceReconcilesWithMetrics runs traced descendants queries at
// 1, 2 and 4 shards and checks the acceptance contract: the merged trace's
// gather/round/fanout/hop counts equal the /metrics counter deltas exactly,
// and its per-shard RPC counts equal the per-shard rpcs series deltas.
func TestClusterTraceReconcilesWithMetrics(t *testing.T) {
	coll := testutil.Generate(testutil.Linked, 9, 12, 40, 40)
	ix := buildIndex(t, coll)
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards%d", n), func(t *testing.T) {
			c := newCluster(t, coll, ix, n, 0)
			tags := coll.Tags()
			for q := 0; q < 4; q++ {
				start := xmlgraph.NodeID((q * 37) % coll.NumNodes())
				tag := tags[q%len(tags)]
				before := counters(t, c, n)

				var tr tracedResp
				c.getJSON(fmt.Sprintf("/v1/descendants?start=%d&tag=%s&k=%d&trace=1&timeout=20s", start, tag, 1<<20), &tr)
				checkTraceShape(t, tr.Trace, len(tr.Results))

				// The traced answer is still the exact answer.
				oracle := oracleFor(coll, start, tag)
				if len(tr.Results) != len(oracle) {
					t.Fatalf("%d//%s traced: %d results, oracle %d", start, tag, len(tr.Results), len(oracle))
				}
				if tr.Trace.Rounds != tr.Rounds {
					t.Errorf("trace rounds %d != response rounds %d", tr.Trace.Rounds, tr.Rounds)
				}

				after := counters(t, c, n)
				ct := tr.Trace
				for _, chk := range []struct {
					name  string
					delta float64
					want  int64
				}{
					{"gathers", after.gathers - before.gathers, int64(ct.Gathers)},
					{"rounds", after.rounds - before.rounds, int64(ct.Rounds)},
					{"fanouts", after.fanouts - before.fanouts, int64(ct.Fanouts)},
					{"hops", after.hops - before.hops, ct.HopsSeen},
					{"hopsDeduped", after.deduped - before.deduped, ct.HopsDeduped},
					{"hopsRedispatched", after.redispatched - before.redispatched, ct.HopsRedispatched},
					{"tracedQueries", after.traced - before.traced, 1},
				} {
					if int64(chk.delta) != chk.want {
						t.Errorf("%d//%s: /metrics %s delta %v != trace %d", start, tag, chk.name, chk.delta, chk.want)
					}
				}
				shardDelta := make(map[int]int)
				for _, s := range ct.Shards {
					shardDelta[s.Shard] = s.RPCs
				}
				for sh := 0; sh < n; sh++ {
					if d := int(after.shardRPCs[sh] - before.shardRPCs[sh]); d != shardDelta[sh] {
						t.Errorf("%d//%s: shard %d rpcs delta %d != trace %d", start, tag, sh, d, shardDelta[sh])
					}
				}
			}

			// An untraced query on the same cluster must carry no trace.
			var plain tracedResp
			c.getJSON(fmt.Sprintf("/v1/descendants?start=0&tag=%s&k=10&timeout=20s", tags[0]), &plain)
			if plain.Trace != nil {
				t.Error("untraced query returned a trace")
			}
		})
	}
}

// TestClusterQueryTrace checks /v1/query tracing: one gather per //-step
// scan of the ranked evaluator, with the evaluator's work shape on the root
// span.
func TestClusterQueryTrace(t *testing.T) {
	coll := testutil.Generate(testutil.DAGs, 4, 12, 40, 30)
	ix := buildIndex(t, coll)
	c := newCluster(t, coll, ix, 3, 0)
	tags := coll.Tags()
	expr := "%2F%2F" + tags[0] + "%2F%2F" + tags[1%len(tags)]

	var qr struct {
		Results []json.RawMessage `json:"results"`
		Trace   *obs.ClusterTrace `json:"trace"`
	}
	c.getJSON("/v1/query?q="+expr+"&k=25&trace=1&timeout=20s", &qr)
	checkTraceShape(t, qr.Trace, len(qr.Results))
	if qr.Trace.Root.Name != "query" {
		t.Errorf("root span %q, want query", qr.Trace.Root.Name)
	}
	scans := qr.Trace.Root.Attrs["scans"]
	if scans <= 0 {
		t.Fatalf("root span scans attr = %d, want > 0", scans)
	}
	if int64(qr.Trace.Gathers) != scans {
		t.Errorf("gathers %d != evaluator scans %d — each //-step scan is one gather", qr.Trace.Gathers, scans)
	}
	if steps := qr.Trace.Root.Attrs["steps"]; steps <= 0 {
		t.Errorf("root span steps attr = %d, want > 0", steps)
	}
}

// TestClusterTraceConcurrent fires traced queries from many goroutines at a
// 4-shard cluster (run under -race: the dispatch goroutines and the
// builder's receive-side assembly race if anything shares state).  Every
// trace must be internally consistent, and because tracing mirrors the
// router's atomics at the same program points, the summed per-trace counts
// must equal the /metrics deltas exactly even under interleaving.
func TestClusterTraceConcurrent(t *testing.T) {
	coll := testutil.Generate(testutil.Linked, 13, 12, 40, 40)
	ix := buildIndex(t, coll)
	const nShards = 4
	c := newCluster(t, coll, ix, nShards, 0)
	tags := coll.Tags()
	before := counters(t, c, nShards)

	const workers, perWorker = 8, 4
	traces := make(chan *obs.ClusterTrace, workers*perWorker)
	errs := make(chan error, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < perWorker; q++ {
				start := (w*perWorker + q) * 29 % coll.NumNodes()
				tag := tags[(w+q)%len(tags)]
				url := c.router.URL + fmt.Sprintf("/v1/descendants?start=%d&tag=%s&k=%d&trace=1&timeout=20s", start, tag, 1<<20)
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				var tr tracedResp
				err = json.NewDecoder(resp.Body).Decode(&tr)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("decode %s: %w", url, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d", url, resp.StatusCode)
					return
				}
				traces <- tr.Trace
			}
		}(w)
	}
	wg.Wait()
	close(traces)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var n int
	var gathers, rounds, fanouts int
	var hops, deduped, redispatched int64
	shardRPCs := make(map[int]int)
	for ct := range traces {
		checkTraceShape(t, ct, int(ct.Results))
		n++
		gathers += ct.Gathers
		rounds += ct.Rounds
		fanouts += ct.Fanouts
		hops += ct.HopsSeen
		deduped += ct.HopsDeduped
		redispatched += ct.HopsRedispatched
		for _, s := range ct.Shards {
			shardRPCs[s.Shard] += s.RPCs
		}
	}
	if n != workers*perWorker {
		t.Fatalf("collected %d traces, want %d", n, workers*perWorker)
	}

	after := counters(t, c, nShards)
	for _, chk := range []struct {
		name  string
		delta float64
		want  int64
	}{
		{"gathers", after.gathers - before.gathers, int64(gathers)},
		{"rounds", after.rounds - before.rounds, int64(rounds)},
		{"fanouts", after.fanouts - before.fanouts, int64(fanouts)},
		{"hops", after.hops - before.hops, hops},
		{"hopsDeduped", after.deduped - before.deduped, deduped},
		{"hopsRedispatched", after.redispatched - before.redispatched, redispatched},
		{"tracedQueries", after.traced - before.traced, int64(n)},
	} {
		if int64(chk.delta) != chk.want {
			t.Errorf("/metrics %s delta %v != summed trace %d", chk.name, chk.delta, chk.want)
		}
	}
	for sh := 0; sh < nShards; sh++ {
		if d := int(after.shardRPCs[sh] - before.shardRPCs[sh]); d != shardRPCs[sh] {
			t.Errorf("shard %d rpcs delta %d != summed trace %d", sh, d, shardRPCs[sh])
		}
	}
}
