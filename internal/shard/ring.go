// Package shard is the scatter-gather serving tier over FliX's meta
// documents: a consistent-hash ring assigns meta-document IDs to shards,
// each shard (a flixd process in shard mode) answers partial-frontier
// evaluations over the meta documents it owns, and the router replays the
// paper's priority-queue evaluation one level up — re-dispatching
// cross-shard link hops to their owning shards and merging the per-shard
// streams into one distance-ordered result stream.
//
// Meta documents are the natural distribution unit: the framework already
// localizes all index structure per meta document and resolves everything
// that crosses them through runtime links, so a shard can answer its share
// of the frontier exactly, and only the hops travel.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the default number of virtual nodes per shard on the
// ring.  More vnodes smooth the meta-document distribution at the cost of a
// longer (binary-searched, build-once) point list.
const DefaultVNodes = 64

// Ring is a consistent-hash ring assigning meta-document IDs to shards.
// It is immutable after New and safe for concurrent use.  Every member of a
// cluster — the router and each shard — builds the ring from the same
// (shards, vnodes) pair and must agree on the assignment; the topology
// fingerprint check enforces the remaining ingredient (identical
// meta-document decompositions).
type Ring struct {
	shards int
	vnodes int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int32
}

// NewRing builds the ring for the given shard count (>= 1) and vnodes per
// shard (<= 0 selects DefaultVNodes).
func NewRing(shards, vnodes int) *Ring {
	if shards < 1 {
		panic(fmt.Sprintf("shard: NewRing with %d shards", shards))
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{shards: shards, vnodes: vnodes, points: make([]ringPoint, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashString(fmt.Sprintf("shard-%d/vnode-%d", s, v)), shard: int32(s)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the number of shards on the ring.
func (r *Ring) Shards() int { return r.shards }

// VNodes returns the number of virtual nodes per shard.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the shard owning meta document mi: the successor of the
// meta key on the ring.
func (r *Ring) Owner(mi int32) int {
	h := hashString(fmt.Sprintf("meta-%d", mi))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return int(r.points[i].shard)
}

// OwnedBy returns the ownership mask of one shard over numMetas meta
// documents: mask[mi] reports whether the shard owns meta document mi.
func (r *Ring) OwnedBy(shard, numMetas int) []bool {
	mask := make([]bool, numMetas)
	for mi := 0; mi < numMetas; mi++ {
		mask[mi] = r.Owner(int32(mi)) == shard
	}
	return mask
}

// hashString places a key on the ring: FNV-64a over the bytes, then a
// splitmix64-style finalizer.  Raw FNV has almost no avalanche — sequential
// keys ("meta-0", "meta-1", ...) differ only in their low bits and cluster
// on one arc of the ring, starving every shard but one on small
// collections.  The finalizer spreads those clusters uniformly.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (Stafford variant 13): a bijective
// 64-bit mixer with full avalanche.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
