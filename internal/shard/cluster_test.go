package shard_test

// The differential cluster harness: a full multi-shard cluster — N flixd
// shard servers plus the router, all real HTTP over httptest — checked
// element-for-element against the single-process BFS oracle, at 1, 2 and 4
// shards, with and without shards failing mid-query.  Run under -race this
// also exercises the concurrent fan-out, the prober and the generation
// machinery together.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/flix"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/testutil"
	"repro/internal/xmlgraph"
)

// cluster is one in-process scatter-gather deployment: n shard servers
// sharing a single prebuilt index, fronted by a router.
type cluster struct {
	t      *testing.T
	coll   *xmlgraph.Collection
	shards []*httptest.Server
	// kill[i], when set, makes shard i answer /v1/shard/eval with 500 —
	// the mid-query failure injection.  Health probes keep succeeding, so
	// the failure is invisible to the prober and must be absorbed by the
	// gather loop itself.
	kill []atomic.Bool
	// armKill, when set, triggers once on the next eval request any shard
	// receives: that shard's ring successor is killed — guaranteed
	// mid-query, after the query already fanned out.
	armKill atomic.Bool
	rt      *shard.Router
	router  *httptest.Server
	stop    context.CancelFunc
}

func newCluster(t *testing.T, coll *xmlgraph.Collection, ix *flix.Index, n int, retries int) *cluster {
	t.Helper()
	c := &cluster{t: t, coll: coll, kill: make([]atomic.Bool, n), shards: make([]*httptest.Server, n)}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		s := server.New(ix, server.Config{
			Shard:     &server.ShardConfig{ID: i, Count: n},
			CacheSize: -1,
		})
		h := s.Handler()
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/shard/eval" {
				if c.armKill.CompareAndSwap(true, false) {
					c.kill[(i+1)%n].Store(true)
				}
				if c.kill[i].Load() {
					http.Error(w, "injected failure", http.StatusInternalServerError)
					return
				}
			}
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		c.shards[i] = ts
		urls[i] = ts.URL
	}
	rt, err := shard.NewRouter(coll, shard.RouterConfig{
		Shards:        urls,
		ProbeInterval: 20 * time.Millisecond,
		ShardTimeout:  5 * time.Second,
		Retries:       retries,
		RetryBackoff:  time.Millisecond,
		MaxLimit:      1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.stop = cancel
	t.Cleanup(cancel)
	rt.Start(ctx)
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	defer wcancel()
	if err := rt.WaitReady(wctx); err != nil {
		t.Fatalf("router never became ready: %v", err)
	}
	c.rt = rt
	c.router = httptest.NewServer(rt.Handler())
	t.Cleanup(c.router.Close)
	return c
}

func (c *cluster) clearKills() {
	for i := range c.kill {
		c.kill[i].Store(false)
	}
	c.armKill.Store(false)
}

// descendantsResp is the router's /v1/descendants wire shape.
type descendantsResp struct {
	Results []struct {
		Node xmlgraph.NodeID `json:"node"`
		Dist int32           `json:"dist"`
	} `json:"results"`
	Count        int   `json:"count"`
	TimedOut     bool  `json:"timedOut"`
	Partial      bool  `json:"partial"`
	FailedShards []int `json:"failedShards"`
}

func (c *cluster) getJSON(path string, out any) *http.Response {
	c.t.Helper()
	resp, err := http.Get(c.router.URL + path)
	if err != nil {
		c.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		c.t.Fatalf("GET %s: decode: %v", path, err)
	}
	return resp
}

func (c *cluster) descendants(start xmlgraph.NodeID, tag string, k int) (descendantsResp, *http.Response) {
	c.t.Helper()
	var dr descendantsResp
	resp := c.getJSON(fmt.Sprintf("/v1/descendants?start=%d&tag=%s&k=%d&timeout=20s", start, tag, k), &dr)
	return dr, resp
}

// oracleFor returns the BFS ground truth for start//tag as (dist, node)
// sorted pairs; an empty tag is the wildcard.
func oracleFor(coll *xmlgraph.Collection, start xmlgraph.NodeID, tag string) []xmlgraph.NodeDist {
	if tag != "" {
		return coll.DescendantsByTag(start, tag)
	}
	dist := coll.BFSDistances(start)
	var out []xmlgraph.NodeDist
	for n, d := range dist {
		if d > 0 {
			out = append(out, xmlgraph.NodeDist{Node: xmlgraph.NodeID(n), Dist: d})
		}
	}
	xmlgraph.SortNodeDists(out)
	return out
}

func buildIndex(t *testing.T, coll *xmlgraph.Collection) *flix.Index {
	t.Helper()
	ix, err := flix.Build(coll, flix.Config{Kind: flix.Hybrid, PartitionSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestClusterDescendantsMatchesOracle is the tentpole differential check:
// for every graph family, the sharded scatter-gather answer over real HTTP
// equals the BFS oracle element for element — same nodes, exact shortest
// distances, exact (dist, node) order — at 1, 2 and 4 shards.
func TestClusterDescendantsMatchesOracle(t *testing.T) {
	for _, fam := range testutil.Families() {
		for seed := int64(1); seed <= 2; seed++ {
			coll := testutil.Generate(fam, seed, 12, 40, 30)
			ix := buildIndex(t, coll)
			for _, n := range []int{1, 2, 4} {
				t.Run(fmt.Sprintf("%s/seed%d/shards%d", fam, seed, n), func(t *testing.T) {
					c := newCluster(t, coll, ix, n, 0)
					rng := rand.New(rand.NewSource(seed * 131))
					tags := coll.Tags()
					for q := 0; q < 6; q++ {
						start := xmlgraph.NodeID(rng.Intn(coll.NumNodes()))
						tag := tags[rng.Intn(len(tags))]
						oracle := oracleFor(coll, start, tag)
						dr, _ := c.descendants(start, tag, 1<<20)
						if dr.Partial || dr.TimedOut {
							t.Fatalf("%d//%s: clean cluster answered partial=%v timedOut=%v",
								start, tag, dr.Partial, dr.TimedOut)
						}
						if len(dr.Results) != len(oracle) {
							t.Fatalf("%d//%s: %d results, oracle %d", start, tag, len(dr.Results), len(oracle))
						}
						for i, r := range dr.Results {
							if r.Node != oracle[i].Node || r.Dist != oracle[i].Dist {
								t.Fatalf("%d//%s: result %d = (%d,%d), oracle (%d,%d)",
									start, tag, i, r.Node, r.Dist, oracle[i].Node, oracle[i].Dist)
							}
						}
					}
				})
			}
		}
	}
}

// TestClusterTopKEarlyStop checks that the watermark early stop is exact:
// a small-k answer equals the oracle's k-prefix, not just any k sound
// results.
func TestClusterTopKEarlyStop(t *testing.T) {
	coll := testutil.Generate(testutil.Linked, 7, 12, 40, 40)
	ix := buildIndex(t, coll)
	c := newCluster(t, coll, ix, 3, 0)
	rng := rand.New(rand.NewSource(7))
	tags := coll.Tags()
	for q := 0; q < 10; q++ {
		start := xmlgraph.NodeID(rng.Intn(coll.NumNodes()))
		tag := tags[rng.Intn(len(tags))]
		k := 1 + rng.Intn(4)
		oracle := oracleFor(coll, start, tag)
		if len(oracle) > k {
			oracle = oracle[:k]
		}
		dr, _ := c.descendants(start, tag, k)
		if dr.Partial {
			t.Fatalf("%d//%s k=%d: early-stopped query flagged partial", start, tag, k)
		}
		if len(dr.Results) != len(oracle) {
			t.Fatalf("%d//%s k=%d: %d results, oracle prefix %d", start, tag, k, len(dr.Results), len(oracle))
		}
		for i, r := range dr.Results {
			if r.Node != oracle[i].Node || r.Dist != oracle[i].Dist {
				t.Fatalf("%d//%s k=%d: result %d = (%d,%d), oracle (%d,%d)",
					start, tag, k, i, r.Node, r.Dist, oracle[i].Node, oracle[i].Dist)
			}
		}
	}
}

// TestClusterConnected checks point-to-point distances against BFS,
// including unreachable pairs.
func TestClusterConnected(t *testing.T) {
	coll := testutil.Generate(testutil.DAGs, 3, 12, 40, 30)
	ix := buildIndex(t, coll)
	c := newCluster(t, coll, ix, 3, 0)
	rng := rand.New(rand.NewSource(17))
	for q := 0; q < 20; q++ {
		from := xmlgraph.NodeID(rng.Intn(coll.NumNodes()))
		to := xmlgraph.NodeID(rng.Intn(coll.NumNodes()))
		want := coll.BFSDistance(from, to)
		var cr struct {
			Connected bool  `json:"connected"`
			Dist      int32 `json:"dist"`
			Partial   bool  `json:"partial"`
		}
		c.getJSON(fmt.Sprintf("/v1/connected?from=%d&to=%d&timeout=20s", from, to), &cr)
		if cr.Partial {
			t.Fatalf("%d->%d: clean cluster answered partial", from, to)
		}
		if cr.Connected != (want >= 0) {
			t.Fatalf("%d->%d: connected=%v, oracle dist %d", from, to, cr.Connected, want)
		}
		if cr.Connected && cr.Dist != want {
			t.Fatalf("%d->%d: dist %d, oracle %d", from, to, cr.Dist, want)
		}
	}
}

// oracleBackend implements query.Backend over plain BFS — the ground truth
// for the ranked evaluator, independent of any index or shard machinery.
type oracleBackend struct{ coll *xmlgraph.Collection }

func (b oracleBackend) Collection() *xmlgraph.Collection { return b.coll }

func (b oracleBackend) Descendants(start xmlgraph.NodeID, tag string, opts flix.Options, fn flix.Emit) {
	for _, nd := range oracleFor(b.coll, start, tag) {
		if opts.MaxDist > 0 && nd.Dist > opts.MaxDist {
			continue
		}
		if !fn(flix.Result{Node: nd.Node, Dist: nd.Dist}) {
			return
		}
	}
}

func (b oracleBackend) Ancestors(start xmlgraph.NodeID, tag string, opts flix.Options, fn flix.Emit) {
}

// TestClusterQueryMatchesOracle checks /v1/query end to end: the ranked
// evaluator over the scatter-gather backend must produce the same matches,
// scores and path lengths as the same evaluator over the BFS oracle.
func TestClusterQueryMatchesOracle(t *testing.T) {
	for _, fam := range testutil.Families() {
		coll := testutil.Generate(fam, 2, 12, 40, 30)
		ix := buildIndex(t, coll)
		c := newCluster(t, coll, ix, 3, 0)
		tags := coll.Tags()
		exprs := []string{
			"//" + tags[0],
			"//" + tags[0] + "//" + tags[1%len(tags)],
			"//" + tags[2%len(tags)] + "//" + tags[0] + "//" + tags[1%len(tags)],
		}
		for _, expr := range exprs {
			pq, err := query.Parse(expr)
			if err != nil {
				t.Fatal(err)
			}
			const k = 25
			want := (&query.Evaluator{Index: oracleBackend{coll}, MaxResults: k}).EvaluateTopK(pq, k)
			var qr struct {
				Results []struct {
					Node    xmlgraph.NodeID `json:"node"`
					Score   float64         `json:"score"`
					PathLen int32           `json:"pathLen"`
				} `json:"results"`
				Partial bool `json:"partial"`
			}
			c.getJSON("/v1/query?q="+strings.ReplaceAll(expr, "/", "%2F")+fmt.Sprintf("&k=%d&timeout=20s", k), &qr)
			if qr.Partial {
				t.Fatalf("%s/%s: clean cluster answered partial", fam, expr)
			}
			if len(qr.Results) != len(want) {
				t.Fatalf("%s/%s: %d results, oracle %d", fam, expr, len(qr.Results), len(want))
			}
			for i, r := range qr.Results {
				w := want[i]
				if r.Node != w.Node || r.PathLen != w.PathLen || math.Abs(r.Score-w.Score) > 1e-9 {
					t.Fatalf("%s/%s: result %d = (%d, %.6f, %d), oracle (%d, %.6f, %d)",
						fam, expr, i, r.Node, r.Score, r.PathLen, w.Node, w.Score, w.PathLen)
				}
			}
		}
	}
}

// TestClusterShardKilledMidQuery kills one shard mid-query — the first
// shard to receive an eval batch arms the failure of its ring successor,
// so later rounds of the same query hit a dead shard.  Answers must stay
// sound (a subset of the oracle, distances of real paths), and queries that
// actually lost a batch must say so: partial flag, failedShards list and
// the X-Flix-Shards-Failed header.
func TestClusterShardKilledMidQuery(t *testing.T) {
	coll := testutil.Generate(testutil.Linked, 11, 12, 40, 40)
	// A fine partitioning maximizes cross-shard hops, so later rounds of
	// most queries genuinely depend on the shard being killed.
	ix, err := flix.Build(coll, flix.Config{Kind: flix.Hybrid, PartitionSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, coll, ix, 3, -1) // -1: no retries, failures surface at once
	rng := rand.New(rand.NewSource(23))
	tags := coll.Tags()
	partials := 0
	for q := 0; q < 25; q++ {
		c.clearKills()
		c.armKill.Store(true)
		start := xmlgraph.NodeID(rng.Intn(coll.NumNodes()))
		tag := tags[rng.Intn(len(tags))]
		oracle := make(map[xmlgraph.NodeID]int32)
		for _, nd := range oracleFor(coll, start, tag) {
			oracle[nd.Node] = nd.Dist
		}
		dr, resp := c.descendants(start, tag, 1<<20)
		for _, r := range dr.Results {
			want, ok := oracle[r.Node]
			if !ok {
				t.Fatalf("%d//%s: result %d not reachable per oracle", start, tag, r.Node)
			}
			if r.Dist < want {
				t.Fatalf("%d//%s: node %d at dist %d, below the true shortest %d", start, tag, r.Node, r.Dist, want)
			}
		}
		if dr.Partial {
			partials++
			if len(dr.FailedShards) == 0 {
				t.Fatalf("%d//%s: partial answer without failedShards", start, tag)
			}
			if resp.Header.Get(shard.FailedShardsHeader) == "" {
				t.Fatalf("%d//%s: partial answer without %s header", start, tag, shard.FailedShardsHeader)
			}
		} else if len(dr.Results) != len(oracle) {
			t.Fatalf("%d//%s: non-partial answer with %d of %d results", start, tag, len(dr.Results), len(oracle))
		}
	}
	if partials == 0 {
		t.Fatal("failure injection never produced a partial answer — the kill hook is not firing")
	}

	// The cluster must recover once the failure clears: health probes kept
	// passing throughout, so the next query is clean and complete.
	c.clearKills()
	start := coll.Doc(0).Root
	oracle := oracleFor(coll, start, tags[0])
	dr, _ := c.descendants(start, tags[0], 1<<20)
	if dr.Partial || len(dr.Results) != len(oracle) {
		t.Fatalf("post-recovery query: partial=%v results=%d oracle=%d", dr.Partial, len(dr.Results), len(oracle))
	}
}

// TestRouterQuorumReadiness checks the aggregate readiness gate: with a
// dead shard in the set, the router is ready under a reduced quorum and not
// ready under the default all-shards quorum.
func TestRouterQuorumReadiness(t *testing.T) {
	coll := testutil.Generate(testutil.Trees, 1, 8, 30, 0)
	ix := buildIndex(t, coll)
	live := httptest.NewServer(server.New(ix, server.Config{
		Shard:     &server.ShardConfig{ID: 0, Count: 2},
		CacheSize: -1,
	}).Handler())
	t.Cleanup(live.Close)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	mk := func(quorum int) *shard.Router {
		rt, err := shard.NewRouter(coll, shard.RouterConfig{
			Shards:        []string{live.URL, deadURL},
			Quorum:        quorum,
			ProbeInterval: 20 * time.Millisecond,
			Retries:       -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		t.Cleanup(cancel)
		rt.Start(ctx)
		return rt
	}

	lenient := mk(1)
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	if err := lenient.WaitReady(wctx); err != nil {
		t.Fatalf("quorum=1 router never became ready with one live shard: %v", err)
	}

	strict := mk(0) // 0 = all shards
	time.Sleep(200 * time.Millisecond)
	if strict.Ready() {
		t.Fatal("quorum=all router reports ready with a dead shard")
	}
	ts := httptest.NewServer(strict.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz below quorum: status %d, want 503", resp.StatusCode)
	}
	var hz struct {
		Ready       bool `json:"ready"`
		ReadyShards int  `json:"readyShards"`
		ShardStates []struct {
			ID    int  `json:"id"`
			Ready bool `json:"ready"`
		} `json:"shardStates"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Ready || hz.ReadyShards != 1 || len(hz.ShardStates) != 2 {
		t.Fatalf("healthz = %+v, want ready=false readyShards=1 with 2 shard states", hz)
	}

	query := ts.URL + "/v1/descendants?start=0&tag=a"
	qresp, err := http.Get(query)
	if err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query below quorum: status %d, want 503", qresp.StatusCode)
	}
}

// TestRequestIDPropagation checks the end-to-end ID chain: a valid caller
// ID is reused by the router and forwarded to the shards (which also reuse
// it), while an invalid one is replaced.
func TestRequestIDPropagation(t *testing.T) {
	coll := testutil.Generate(testutil.Trees, 4, 8, 30, 0)
	ix := buildIndex(t, coll)

	var seen atomic.Pointer[string]
	s := server.New(ix, server.Config{
		Shard:     &server.ShardConfig{ID: 0, Count: 1},
		CacheSize: -1,
	})
	h := s.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/shard/eval" {
			id := r.Header.Get(shard.RequestIDHeader)
			seen.Store(&id)
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	rt, err := shard.NewRouter(coll, shard.RouterConfig{
		Shards:        []string{ts.URL},
		ProbeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	rt.Start(ctx)
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	defer wcancel()
	if err := rt.WaitReady(wctx); err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	do := func(id string) (string, string) {
		req, err := http.NewRequest(http.MethodGet, rts.URL+"/v1/descendants?start=0&tag="+coll.Tags()[0], nil)
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set(shard.RequestIDHeader, id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		forwarded := ""
		if p := seen.Load(); p != nil {
			forwarded = *p
		}
		return resp.Header.Get(shard.RequestIDHeader), forwarded
	}

	echoed, forwarded := do("trace-me-42")
	if echoed != "trace-me-42" {
		t.Fatalf("router replaced a valid request ID: got %q", echoed)
	}
	if forwarded != "trace-me-42" {
		t.Fatalf("shard RPC carried %q, want the caller's ID", forwarded)
	}

	echoed, _ = do("bad id with junk!")
	if echoed == "" || strings.ContainsAny(echoed, " !") {
		t.Fatalf("invalid incoming ID not replaced: %q", echoed)
	}

	// The shard server reuses valid IDs directly too.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(shard.RequestIDHeader, "direct-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(shard.RequestIDHeader); got != "direct-7" {
		t.Fatalf("shard server replaced a valid request ID: got %q", got)
	}
}
