package shard

import (
	"repro/internal/flix"
	"repro/internal/obs"
	"repro/internal/xmlgraph"
)

// This file defines the wire protocol between the router and the shards.
// Both sides import it (internal/server implements the shard endpoints), so
// the JSON shapes have exactly one definition.

// RequestIDHeader carries the router's request ID to every shard RPC a
// query fans out into, so one query's hops correlate across the access logs
// and traces of the whole cluster.
const RequestIDHeader = "X-Flix-Request-Id"

// FailedShardsHeader lists the shards (comma-separated IDs) whose frontier
// batches were dropped after retries; it accompanies a partial response.
const FailedShardsHeader = "X-Flix-Shards-Failed"

// TraceHeader ("1" when set) asks a shard to evaluate under a bounded
// obs.Trace and return a TraceFragment in the response.  It travels beside
// RequestIDHeader so intermediaries can sample traces without parsing
// bodies; EvalRequest.Trace is the authoritative in-body copy.
const TraceHeader = "X-Flix-Trace"

// EvalRequest is the body of POST /v1/shard/eval: one batch of frontier
// entries to expand within the shard's owned meta documents.
type EvalRequest struct {
	// Entries is the frontier batch (query starts or re-dispatched hops).
	Entries []flix.FrontierEntry `json:"entries"`
	// Tag is the target element name; empty means the wildcard.
	Tag string `json:"tag"`
	// MaxDist prunes paths longer than this many edges (0 = unlimited).
	MaxDist int32 `json:"maxDist,omitempty"`
	// Trace asks the shard to evaluate under a bounded obs.Trace and
	// attach a TraceFragment to the response.  The untraced path is the
	// default and stays allocation-free on the shard.
	Trace bool `json:"trace,omitempty"`
}

// EvalResponse is the shard's answer: local matches plus the frontier
// entries that crossed into foreign meta documents.
type EvalResponse struct {
	// Results are matching elements in owned meta documents, minimum
	// distance per node, sorted by (dist, node).
	Results []flix.FrontierEntry `json:"results"`
	// Hops are frontier entries landing in foreign meta documents, minimum
	// distance per node, sorted by (dist, node).
	Hops []flix.FrontierEntry `json:"hops"`
	// Generation is the shard's serving index generation.
	Generation uint64 `json:"generation"`
	// Fingerprint is the shard's meta-document decomposition fingerprint
	// (hex); the router drops responses that disagree with the topology.
	Fingerprint string `json:"fingerprint"`
	// Truncated reports that the shard's evaluation was cut short (RPC
	// deadline); the router marks the query partial.
	Truncated bool `json:"truncated,omitempty"`
	// Pops, Entries and LinkHops are the shard-side evaluation effort.
	Pops     int64 `json:"pops"`
	Entries  int64 `json:"entries"`
	LinkHops int64 `json:"linkHops"`
	// Trace is the shard's distributed-trace fragment, present only when
	// EvalRequest.Trace (or the X-Flix-Trace header) asked for one.
	Trace *obs.TraceFragment `json:"trace,omitempty"`
}

// LinksResponse is the body of GET /v1/shard/links: the shard's view of the
// cluster topology — the link-export endpoint the router bootstraps from.
type LinksResponse struct {
	Generation  uint64 `json:"generation"`
	Fingerprint string `json:"fingerprint"`
	// Shard, Shards and VNodes echo the shard's ring parameters; the router
	// refuses shards whose ring disagrees with its own.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	VNodes int `json:"vnodes"`
	// NumMetas and NumNodes describe the decomposition.
	NumMetas int `json:"numMetas"`
	NumNodes int `json:"numNodes"`
	// OwnedMetas counts the meta documents this shard owns.
	OwnedMetas int `json:"ownedMetas"`
	// MetaOf is the node→meta assignment (omitted with ?summary=1).
	MetaOf []int32 `json:"metaOf,omitempty"`
	// LinkCounts is the per-meta runtime out-link count (omitted with
	// ?summary=1).
	LinkCounts []int32 `json:"linkCounts,omitempty"`
}

// Batch item statuses.  Every item in a BatchResponse carries exactly one:
// evaluated items are "ok", items the server looked at but could not run
// (parse error, unknown start node) are "error", and items abandoned when
// the per-batch deadline expired are "skipped".
const (
	BatchOK      = "ok"
	BatchError   = "error"
	BatchSkipped = "skipped"
)

// BatchQuery is one query inside a POST /v1/batch request: a ranked path
// expression when Q is set, otherwise a descendants connection query
// described by Start and Tag.
type BatchQuery struct {
	// Q is a ranked path expression (the /v1/query ?q= syntax).
	Q string `json:"q,omitempty"`
	// Start is the descendants query's start element: a document name or a
	// numeric node ID, exactly like /v1/descendants ?start=.
	Start string `json:"start,omitempty"`
	// Tag is the descendants target element name; empty is the wildcard.
	Tag string `json:"tag,omitempty"`
	// K bounds this item's results (0 = the request default, then the
	// server default).
	K int `json:"k,omitempty"`
	// MaxDist and IncludeSelf mirror the /v1/descendants parameters.
	MaxDist     int32 `json:"maxDist,omitempty"`
	IncludeSelf bool  `json:"self,omitempty"`
}

// BatchRequest is the body of POST /v1/batch: many queries answered in one
// round trip under one admission slot and one deadline.
type BatchRequest struct {
	Queries []BatchQuery `json:"queries"`
	// K is the default per-item result bound (0 = server default).
	K int `json:"k,omitempty"`
}

// BatchResult is one result element of a batch item: the /v1/descendants
// node shape plus the ranked-query score fields.
type BatchResult struct {
	Node xmlgraph.NodeID `json:"node"`
	Tag  string          `json:"tag"`
	Doc  string          `json:"doc"`
	Text string          `json:"text,omitempty"`
	// Dist is the connection distance (descendants items) or the matched
	// path length (ranked items).
	Dist int32 `json:"dist"`
	// Score and PathLen are set on ranked items only.
	Score   float64 `json:"score,omitempty"`
	PathLen int32   `json:"pathLen,omitempty"`
}

// BatchItem is one item's answer, in request order.
type BatchItem struct {
	Status  string        `json:"status"`
	Error   string        `json:"error,omitempty"`
	Results []BatchResult `json:"results,omitempty"`
	Count   int           `json:"count"`
	// Truncated reports that this item's evaluation was cut short by the
	// batch deadline: a sound but possibly incomplete answer.
	Truncated bool `json:"truncated,omitempty"`
	// CacheHit reports that a descendants item was answered from the query
	// cache (single-node server only; the router has no cache).
	CacheHit bool `json:"cacheHit,omitempty"`
}

// BatchResponse is the body of a POST /v1/batch answer.  Items appear in
// request order regardless of the cache-aware order they executed in.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
	// Completed counts items actually examined ("ok" or "error"); the
	// remaining len(Results)-Completed items were skipped at the deadline.
	Completed int `json:"completed"`
	// Partial reports that the deadline expired before every item ran.
	Partial    bool   `json:"partial,omitempty"`
	TimedOut   bool   `json:"timedOut"`
	Generation uint64 `json:"generation"`
	// FailedShards lists shards that dropped frontier batches during the
	// router's scatter-gather evaluation (router only).
	FailedShards []int `json:"failedShards,omitempty"`
}

// HealthResponse is the subset of a shard's /healthz the router's prober
// consumes: readiness plus the backpressure signal (inFlight/maxInFlight).
type HealthResponse struct {
	Ready       bool   `json:"ready"`
	Generation  uint64 `json:"generation"`
	InFlight    int    `json:"inFlight"`
	MaxInFlight int    `json:"maxInFlight"`
	Shard       *struct {
		ID          int    `json:"id"`
		Count       int    `json:"count"`
		Fingerprint string `json:"fingerprint"`
	} `json:"shard"`
}
