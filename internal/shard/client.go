package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// ClientOptions tunes the shard client.  The zero value takes the defaults
// below.
type ClientOptions struct {
	// Timeout bounds each RPC attempt (default 10s); the request context's
	// deadline still applies on top.
	Timeout time.Duration
	// Retries is the number of re-attempts after a failed RPC (default 2,
	// so 3 attempts total).  Network errors, 5xx and 429 retry; other 4xx
	// fail fast.
	Retries int
	// Backoff is the base delay before the first retry, doubled per
	// attempt (default 25ms).
	Backoff time.Duration
	// MaxIdlePerShard bounds the pooled idle connections per shard
	// (default 32).
	MaxIdlePerShard int
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Backoff <= 0 {
		o.Backoff = 25 * time.Millisecond
	}
	if o.MaxIdlePerShard <= 0 {
		o.MaxIdlePerShard = 32
	}
	return o
}

// Client talks to a fixed set of shards over HTTP with pooled connections,
// per-attempt timeouts and retry-with-backoff.  It is safe for concurrent
// use.
type Client struct {
	urls []string
	hc   *http.Client
	opts ClientOptions
}

// NewClient builds a client over the given shard base URLs
// (http://host:port, shard i = urls[i]).
func NewClient(urls []string, opts ClientOptions) *Client {
	opts = opts.withDefaults()
	return &Client{
		urls: urls,
		hc: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        opts.MaxIdlePerShard * len(urls),
				MaxIdleConnsPerHost: opts.MaxIdlePerShard,
				IdleConnTimeout:     90 * time.Second,
			},
		},
		opts: opts,
	}
}

// NumShards returns the number of configured shards.
func (c *Client) NumShards() int { return len(c.urls) }

// URL returns shard i's base URL.
func (c *Client) URL(i int) string { return c.urls[i] }

// Eval sends one frontier batch to a shard and decodes the partial result.
// reqID, when non-empty, travels as the X-Flix-Request-Id header.
func (c *Client) Eval(ctx context.Context, shard int, reqID string, req *EvalRequest) (*EvalResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var out EvalResponse
	err = c.do(ctx, shard, func(ctx context.Context) (*http.Request, error) {
		r, err := http.NewRequestWithContext(ctx, http.MethodPost, c.urls[shard]+"/v1/shard/eval", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		r.Header.Set("Content-Type", "application/json")
		if reqID != "" {
			r.Header.Set(RequestIDHeader, reqID)
		}
		if req.Trace {
			r.Header.Set(TraceHeader, "1")
		}
		return r, nil
	}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Links fetches a shard's topology view; summary omits the bulky per-node
// assignment.
func (c *Client) Links(ctx context.Context, shard int, summary bool) (*LinksResponse, error) {
	url := c.urls[shard] + "/v1/shard/links"
	if summary {
		url += "?summary=1"
	}
	var out LinksResponse
	err := c.do(ctx, shard, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Health probes a shard's /healthz once, without retries (the prober has
// its own cadence).  A 503 decodes like a 200: "alive but not ready" is a
// valid answer, not an RPC failure.
func (c *Client) Health(ctx context.Context, shard int) (*HealthResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.urls[shard]+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return nil, fmt.Errorf("shard %d: healthz status %d", shard, resp.StatusCode)
	}
	var out HealthResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&out); err != nil {
		return nil, fmt.Errorf("shard %d: healthz decode: %w", shard, err)
	}
	return &out, nil
}

// do runs one RPC with per-attempt timeouts and retry-with-backoff,
// decoding a 200 JSON body into out.
func (c *Client) do(ctx context.Context, shard int, build func(context.Context) (*http.Request, error), out any) error {
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			delay := c.opts.Backoff << uint(attempt-1)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(delay):
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		lastErr = c.attempt(ctx, shard, build, out)
		if lastErr == nil {
			return nil
		}
		var re *retryableError
		if !errors.As(lastErr, &re) {
			return lastErr
		}
	}
	return lastErr
}

func (c *Client) attempt(ctx context.Context, shard int, build func(context.Context) (*http.Request, error), out any) error {
	ctx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	req, err := build(ctx)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return &retryableError{fmt.Errorf("shard %d: %w", shard, err)}
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		err := fmt.Errorf("shard %d: status %d: %s", shard, resp.StatusCode, bytes.TrimSpace(body))
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
			return &retryableError{err}
		}
		return err
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(out); err != nil {
		return &retryableError{fmt.Errorf("shard %d: decode: %w", shard, err)}
	}
	return nil
}

// retryableError marks transient failures (network errors, 5xx, 429) that
// the backoff loop may re-attempt.
type retryableError struct{ err error }

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// drainClose drains and closes a response body so the pooled connection is
// reusable.
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, 1<<20)) //nolint:errcheck
	body.Close()
}
