package shard

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/flix"
	"repro/internal/obs"
	"repro/internal/xmlgraph"
)

// This file is the scatter-gather evaluator: the router-side half of the
// paper's priority-queue evaluation.  Each shard answers a frontier batch
// with exact local results plus the frontier entries that crossed into
// foreign meta documents ("hops"); the router is the outer Dijkstra loop —
// it dedupes hops against the best distance seen per node, re-dispatches
// them to their owning shards in rounds, and min-merges the per-shard
// sorted result runs into one stream.
//
// Because both sides relax with exact local distances and keep per-node
// minima, the merged stream carries exact global shortest distances — the
// differential harness checks it element-for-element against the BFS
// oracle.

// shardOut carries one shard RPC's outcome from its dispatch goroutine to
// the gather loop's receive goroutine.  The RPC timings ride along so the
// trace builder (single-goroutine, on the receive side) can build dispatch
// spans without any locking.
type shardOut struct {
	sh       int
	resp     *EvalResponse
	err      error
	rpcStart time.Time
	rpcDur   time.Duration
}

// gatherOut is one scatter-gather evaluation's outcome.
type gatherOut struct {
	// results is min-distance-per-node, sorted by (dist, node).
	results []flix.FrontierEntry
	// partial reports dropped work: failed shards, a truncated shard
	// evaluation, an exhausted hop budget or an expired deadline.
	partial bool
	// failed lists shard IDs whose batches were dropped (sorted).
	failed []int
	// rounds / fanouts / hopsDispatched describe the fan-out shape.
	rounds         int
	fanouts        int
	hopsDispatched int
}

// gatherDescendants runs start//tag across the cluster and applies the
// single-node self policy: the start node is reported only under
// includeSelf (at distance 0), never as its own cycle-descendant.
func (rt *Router) gatherDescendants(ctx context.Context, reqID string, start xmlgraph.NodeID, tag string, maxDist int32, needK int, includeSelf bool, tb *traceBuilder) gatherOut {
	if needK > 0 && !includeSelf {
		// The merged stream may contain start (dist 0, dropped below);
		// widen the early-stop target so dropping it still leaves needK.
		// needK == 0 means unbounded and must stay 0 (no early stop).
		needK++
	}
	g := rt.gather(ctx, reqID, []flix.FrontierEntry{{Node: start, Dist: 0}}, tag, maxDist, needK, xmlgraph.InvalidNode, tb)
	if !includeSelf {
		for i, e := range g.results {
			if e.Node == start {
				g.results = append(g.results[:i:i], g.results[i+1:]...)
				break
			}
		}
	}
	return g
}

// gather runs the rounds loop.  needK > 0 enables the top-k early stop
// (once needK results sit strictly below the pending-frontier watermark,
// no later round can displace them); target != InvalidNode enables the
// connectivity early stop (the target's distance is final once it is at or
// below the watermark).  Early stops are exact, not partial.
//
// tb, when non-nil, makes this a traced gather: every shard RPC carries
// the trace flag, fragments come back in the responses, and the builder
// grows a per-round span tree.  A nil tb is the default and adds no work
// to the loop beyond the pointer checks.
func (rt *Router) gather(ctx context.Context, reqID string, starts []flix.FrontierEntry, tag string, maxDist int32, needK int, target xmlgraph.NodeID, tb *traceBuilder) gatherOut {
	topo := rt.topo.Load()
	var out gatherOut
	if topo == nil {
		out.partial = true
		return out
	}
	var gspan *obs.Span
	if tb != nil {
		gspan = tb.beginGather(fmt.Sprintf("tag=%s starts=%d", tag, len(starts)))
		defer func() { tb.end(gspan) }()
	}
	nShards := len(rt.shards)
	// best is the lazy-deletion Dijkstra map: smallest distance at which
	// each node has entered the cross-shard frontier.
	best := make(map[xmlgraph.NodeID]int32, len(starts))
	resultMin := make(map[xmlgraph.NodeID]int32)
	failed := make(map[int]bool)
	dispatched := 0
	budgetHit := false

	batches := make([][]flix.FrontierEntry, nShards)
	stage := func(e flix.FrontierEntry) {
		if e.Dist < 0 || (maxDist > 0 && e.Dist > maxDist) {
			return
		}
		if d, ok := best[e.Node]; ok && d <= e.Dist {
			rt.hopsDeduped.Add(1)
			if tb != nil {
				tb.hopsDeduped++
			}
			return
		}
		best[e.Node] = e.Dist
		batches[rt.ring.Owner(topo.metaOf[e.Node])] = append(batches[rt.ring.Owner(topo.metaOf[e.Node])], e)
	}
	for _, e := range starts {
		stage(e)
	}

	for {
		if ctx.Err() != nil {
			out.partial = true
			break
		}
		// The watermark is the smallest pending frontier distance: every
		// result a future round can produce sits at or above it.
		watermark := int32(-1)
		active := 0
		for sh, b := range batches {
			if len(b) == 0 {
				continue
			}
			if failed[sh] {
				// The shard already failed this query; its share of the
				// frontier is lost — sound subset, flagged partial.
				out.partial = true
				batches[sh] = nil
				continue
			}
			active++
			for _, e := range b {
				if watermark < 0 || e.Dist < watermark {
					watermark = e.Dist
				}
			}
		}
		if active == 0 {
			break
		}
		if needK > 0 && countBelow(resultMin, watermark) >= needK {
			rt.earlyStops.Add(1)
			break
		}
		if target != xmlgraph.InvalidNode {
			if d, ok := resultMin[target]; ok && d <= watermark {
				rt.earlyStops.Add(1)
				break
			}
		}

		out.rounds++
		var rspan *obs.Span
		sent := make(map[int]int, active)
		if tb != nil {
			tb.rounds++
			rspan = tb.child(gspan, "round")
			rspan.SetAttr("round", int64(out.rounds))
			rspan.SetAttr("shards", int64(active))
			rspan.SetAttr("watermark", int64(watermark))
		}
		outs := make(chan shardOut, active)
		for sh, b := range batches {
			if len(b) == 0 {
				continue
			}
			out.fanouts++
			if tb != nil {
				tb.fanouts++
				sent[sh] = len(b)
			}
			go func(sh int, entries []flix.FrontierEntry) {
				t0 := time.Now()
				resp, err := rt.client.Eval(ctx, sh, reqID, &EvalRequest{Entries: entries, Tag: tag, MaxDist: maxDist, Trace: tb != nil})
				d := time.Since(t0)
				rt.shardLatency[sh].Observe(d)
				rt.shards[sh].rpcs.Add(1)
				if err != nil {
					rt.shards[sh].rpcErrors.Add(1)
				}
				outs <- shardOut{sh: sh, resp: resp, err: err, rpcStart: t0, rpcDur: d}
			}(sh, b)
		}
		// The dispatch goroutines hold the old batch slices; from here on
		// batches accumulates the next round's frontier.
		batches = make([][]flix.FrontierEntry, nShards)
		var redispatched, deduped int64
		for i := 0; i < active; i++ {
			o := <-outs
			if tb != nil {
				tb.dispatch(rspan, o, sent[o.sh])
			}
			if o.err != nil {
				failed[o.sh] = true
				out.partial = true
				rt.shardFailures.Add(1)
				if rt.cfg.Logger != nil {
					rt.cfg.Logger.Printf("id=%s shard %d dropped from query: %v", reqID, o.sh, o.err)
				}
				continue
			}
			if o.resp.Fingerprint != topo.fingerprint {
				// The shard swapped to a different decomposition mid-query;
				// its node IDs no longer map onto our topology.
				failed[o.sh] = true
				out.partial = true
				rt.shardFailures.Add(1)
				if rt.cfg.Logger != nil {
					rt.cfg.Logger.Printf("id=%s shard %d dropped: fingerprint %s != topology %s",
						reqID, o.sh, o.resp.Fingerprint, topo.fingerprint)
				}
				continue
			}
			if o.resp.Truncated {
				out.partial = true
			}
			for _, r := range o.resp.Results {
				if d, ok := resultMin[r.Node]; !ok || r.Dist < d {
					resultMin[r.Node] = r.Dist
				}
			}
			for _, hp := range o.resp.Hops {
				rt.hops.Add(1)
				if tb != nil {
					tb.hopsSeen++
				}
				if hp.Dist < 0 || (maxDist > 0 && hp.Dist > maxDist) {
					continue
				}
				if d, ok := best[hp.Node]; ok && d <= hp.Dist {
					rt.hopsDeduped.Add(1)
					deduped++
					continue
				}
				if rt.cfg.HopBudget > 0 && dispatched >= rt.cfg.HopBudget {
					budgetHit = true
					continue
				}
				best[hp.Node] = hp.Dist
				dispatched++
				redispatched++
				ow := rt.ring.Owner(topo.metaOf[hp.Node])
				batches[ow] = append(batches[ow], hp)
			}
		}
		if tb != nil {
			// The re-dispatch decision summary for this round: how many
			// returned hops advanced the frontier vs. fell to dedup.
			tb.hopsRedispatched += redispatched
			tb.hopsDeduped += deduped
			rspan.SetAttr("redispatched", redispatched)
			rspan.SetAttr("deduped", deduped)
			tb.end(rspan)
		}
	}

	if budgetHit {
		out.partial = true
		rt.budgetStops.Add(1)
		if tb != nil {
			tb.budgetExhausted = true
		}
	}
	out.hopsDispatched = dispatched
	out.results = sortEntries(resultMin)
	out.failed = sortedShardIDs(failed)
	rt.gathers.Add(1)
	rt.rounds.Add(int64(out.rounds))
	rt.fanouts.Add(int64(out.fanouts))
	rt.hopsRedispatched.Add(int64(dispatched))
	if out.partial {
		rt.partials.Add(1)
	}
	if gspan != nil {
		gspan.SetAttr("rounds", int64(out.rounds))
		gspan.SetAttr("results", int64(len(out.results)))
	}
	return out
}

// countBelow counts results strictly below the watermark — the immutable
// prefix of the merged stream.
func countBelow(m map[xmlgraph.NodeID]int32, watermark int32) int {
	if watermark < 0 {
		return 0
	}
	n := 0
	for _, d := range m {
		if d < watermark {
			n++
		}
	}
	return n
}

// sortEntries flattens a min-distance map into the (dist, node) order the
// wire protocol promises.
func sortEntries(m map[xmlgraph.NodeID]int32) []flix.FrontierEntry {
	out := make([]flix.FrontierEntry, 0, len(m))
	for n, d := range m {
		out = append(out, flix.FrontierEntry{Node: n, Dist: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Node < out[j].Node
	})
	return out
}

func sortedShardIDs(failed map[int]bool) []int {
	if len(failed) == 0 {
		return nil
	}
	out := make([]int, 0, len(failed))
	for sh := range failed {
		out = append(out, sh)
	}
	sort.Ints(out)
	return out
}

// routerBackend adapts the scatter-gather evaluator to query.Backend, so
// the unchanged ranked evaluator (internal/query) runs its //-step scans
// across the cluster.  It is used by one request goroutine at a time.
type routerBackend struct {
	rt        *Router
	ctx       context.Context
	reqID     string
	tb        *traceBuilder // non-nil for ?trace=1 ranked queries
	partial   bool
	failedSet map[int]bool
	failed    []int
}

func (b *routerBackend) Collection() *xmlgraph.Collection { return b.rt.coll }

func (b *routerBackend) Descendants(start xmlgraph.NodeID, tag string, opts flix.Options, fn flix.Emit) {
	g := b.rt.gatherDescendants(b.ctx, b.reqID, start, tag, opts.MaxDist, opts.MaxResults, opts.IncludeSelf, b.tb)
	b.merge(g)
	emitted := 0
	for _, e := range g.results {
		if opts.MaxResults > 0 && emitted >= opts.MaxResults {
			return
		}
		if !fn(flix.Result{Node: e.Node, Dist: e.Dist}) {
			return
		}
		emitted++
	}
}

// Ancestors is intentionally a no-op: the router does not enable
// InverseScore, so the ranked evaluator never calls it.
func (b *routerBackend) Ancestors(start xmlgraph.NodeID, tag string, opts flix.Options, fn flix.Emit) {
}

func (b *routerBackend) merge(g gatherOut) {
	if g.partial {
		b.partial = true
	}
	for _, sh := range g.failed {
		if b.failedSet == nil {
			b.failedSet = make(map[int]bool)
		}
		if !b.failedSet[sh] {
			b.failedSet[sh] = true
			b.failed = append(b.failed, sh)
			sort.Ints(b.failed)
		}
	}
}
