package shard

import (
	"time"

	"repro/internal/obs"
)

// traceBuilder assembles the router's half of a distributed trace: its own
// spans (per-gather, per-round scatter, per-shard dispatch, merge and
// re-dispatch decisions) plus the TraceFragments the shards return, folded
// into one obs.ClusterTrace — the `?trace=1` EXPLAIN payload.
//
// A builder belongs to exactly one request.  The gather loop's dispatch
// goroutines never touch it: they capture RPC timings into their shardOut
// and the single receive goroutine does all the assembly, so the builder
// needs no locking even though shard RPCs run concurrently.
type traceBuilder struct {
	start time.Time
	reqID string
	root  *obs.Span

	shards     []obs.ShardTraceSummary
	strategies map[string]obs.StrategyStats

	gathers          int
	rounds           int
	fanouts          int
	hopsSeen         int64
	hopsRedispatched int64
	hopsDeduped      int64
	budgetExhausted  bool
	eventsDropped    int64
}

// newTraceBuilder starts a request trace.  name labels the root span after
// the endpoint (descendants, connected, query).
func newTraceBuilder(reqID, name string, nShards int) *traceBuilder {
	tb := &traceBuilder{
		start:  time.Now(),
		reqID:  reqID,
		root:   &obs.Span{Name: name},
		shards: make([]obs.ShardTraceSummary, nShards),
	}
	for i := range tb.shards {
		tb.shards[i].Shard = i
	}
	return tb
}

// now is the offset from the trace start on the router's monotonic clock.
func (tb *traceBuilder) now() time.Duration { return time.Since(tb.start) }

// child opens a span under parent starting now; end closes it.
func (tb *traceBuilder) child(parent *obs.Span, name string) *obs.Span {
	sp := &obs.Span{Name: name, Start: tb.now()}
	parent.Children = append(parent.Children, sp)
	return sp
}

func (tb *traceBuilder) end(sp *obs.Span) { sp.Duration = tb.now() - sp.Start }

// beginGather opens one gather's span (a /v1/query evaluation runs several,
// one per //-step scan) and counts it.
func (tb *traceBuilder) beginGather(note string) *obs.Span {
	tb.gathers++
	sp := tb.child(tb.root, "gather")
	sp.Note = note
	return sp
}

// dispatch records one shard RPC: the round span gets a dispatch child
// covering the RPC's wall time with the shard's fragment attached, and the
// per-shard rollup accumulates the evaluation counters.  rpcStart was
// captured by the dispatch goroutine; assembly runs on the receive
// goroutine.
func (tb *traceBuilder) dispatch(round *obs.Span, o shardOut, sent int) {
	sp := &obs.Span{
		Name:     "dispatch",
		Start:    o.rpcStart.Sub(tb.start),
		Duration: o.rpcDur,
	}
	sp.SetAttr("shard", int64(o.sh))
	sp.SetAttr("entries", int64(sent))
	round.Children = append(round.Children, sp)

	s := &tb.shards[o.sh]
	s.RPCs++
	s.RPCTime += o.rpcDur
	if o.err != nil {
		s.Errors++
		sp.Note = "failed: " + o.err.Error()
		return
	}
	resp := o.resp
	sp.SetAttr("results", int64(len(resp.Results)))
	sp.SetAttr("hops", int64(len(resp.Hops)))
	s.Hops += int64(len(resp.Hops))
	s.Generation = resp.Generation
	if frag := resp.Trace; frag != nil {
		sp.Fragment = frag
		s.Pops += frag.Pops
		s.Entries += frag.Entries
		s.DupDrops += frag.DupDrops
		s.LinkHops += frag.LinkHops
		s.Results += frag.Results
		s.Probe += fragProbe(frag)
		s.EventsDropped += frag.EventsDropped
		tb.eventsDropped += frag.EventsDropped
		tb.strategies = obs.MergeStrategyStats(tb.strategies, frag.Strategies)
	} else {
		// A shard that answered without a fragment (it was not asked to
		// trace) still reports its aggregate effort in the response body.
		s.Pops += resp.Pops
		s.Entries += resp.Entries
		s.LinkHops += resp.LinkHops
	}
}

// fragProbe sums a fragment's per-strategy probe time (exact even when the
// MetaVisit list was capped, since strategies aggregate over all metas).
func fragProbe(f *obs.TraceFragment) time.Duration {
	var d time.Duration
	for _, st := range f.Strategies {
		d += st.Probe
	}
	return d
}

// finish closes the root span and folds everything into the ClusterTrace.
func (tb *traceBuilder) finish(results int64, partial bool, failed []int) *obs.ClusterTrace {
	tb.root.Duration = tb.now()
	shards := make([]obs.ShardTraceSummary, 0, len(tb.shards))
	for i := range tb.shards {
		if tb.shards[i].RPCs > 0 {
			shards = append(shards, tb.shards[i])
		}
	}
	return &obs.ClusterTrace{
		RequestID:        tb.reqID,
		Elapsed:          tb.root.Duration,
		Gathers:          tb.gathers,
		Rounds:           tb.rounds,
		Fanouts:          tb.fanouts,
		HopsSeen:         tb.hopsSeen,
		HopsRedispatched: tb.hopsRedispatched,
		HopsDeduped:      tb.hopsDeduped,
		BudgetExhausted:  tb.budgetExhausted,
		Partial:          partial,
		FailedShards:     failed,
		Results:          results,
		EventsDropped:    tb.eventsDropped,
		Shards:           shards,
		Strategies:       tb.strategies,
		Root:             tb.root,
	}
}
