package shard_test

// Batch-endpoint parity on the sharded tier: POST /v1/batch through the
// router must answer every item exactly like the corresponding single-query
// endpoint, at 1, 2 and 4 shards, with per-item errors contained to their
// item.  Run under -race this also exercises consecutive scatter-gathers
// reusing one admission slot.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/shard"
	"repro/internal/testutil"
	"repro/internal/xmlgraph"
)

func (c *cluster) postBatch(req shard.BatchRequest) shard.BatchResponse {
	c.t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.Post(c.router.URL+"/v1/batch?timeout=20s", "application/json", bytes.NewReader(body))
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("POST /v1/batch: status %d", resp.StatusCode)
	}
	var out shard.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		c.t.Fatalf("POST /v1/batch: decode: %v", err)
	}
	return out
}

// queryResp is the router's /v1/query wire shape.
type queryResp struct {
	Results []struct {
		Node    xmlgraph.NodeID `json:"node"`
		Score   float64         `json:"score"`
		PathLen int32           `json:"pathLen"`
	} `json:"results"`
	Count   int  `json:"count"`
	Partial bool `json:"partial"`
}

func TestClusterBatchParity(t *testing.T) {
	coll := testutil.Generate(testutil.Linked, 1, 12, 40, 30)
	ix := buildIndex(t, coll)
	starts := []xmlgraph.NodeID{0, 7, 23}
	exprs := []string{"//a//b", "//b//*"}
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards%d", n), func(t *testing.T) {
			c := newCluster(t, coll, ix, n, 0)
			const k = 1 << 20

			var qs []shard.BatchQuery
			for _, s := range starts {
				qs = append(qs, shard.BatchQuery{Start: fmt.Sprint(s), Tag: "b", K: k})
			}
			for _, e := range exprs {
				qs = append(qs, shard.BatchQuery{Q: e, K: k})
			}
			qs = append(qs, shard.BatchQuery{Q: "//["})           // parse error
			qs = append(qs, shard.BatchQuery{Start: "999999999"}) // unknown node

			got := c.postBatch(shard.BatchRequest{Queries: qs})
			if len(got.Results) != len(qs) {
				t.Fatalf("%d items, want %d", len(got.Results), len(qs))
			}
			if got.Partial || got.TimedOut {
				t.Fatalf("clean cluster answered partial=%v timedOut=%v", got.Partial, got.TimedOut)
			}
			if got.Completed != len(qs) {
				t.Fatalf("completed = %d, want %d", got.Completed, len(qs))
			}

			// Descendants items match the single-query endpoint element for
			// element.
			for i, s := range starts {
				item := got.Results[i]
				if item.Status != shard.BatchOK {
					t.Fatalf("descendants item %d status %q (%s)", i, item.Status, item.Error)
				}
				single, _ := c.descendants(s, "b", k)
				if item.Count != single.Count {
					t.Fatalf("start %d: batch %d results, single %d", s, item.Count, single.Count)
				}
				for j, r := range item.Results {
					if r.Node != single.Results[j].Node || r.Dist != single.Results[j].Dist {
						t.Fatalf("start %d result %d: batch (%d,%d), single (%d,%d)",
							s, j, r.Node, r.Dist, single.Results[j].Node, single.Results[j].Dist)
					}
				}
			}
			// Ranked items match /v1/query exactly: nodes, scores, order.
			for i, e := range exprs {
				item := got.Results[len(starts)+i]
				if item.Status != shard.BatchOK {
					t.Fatalf("ranked item %q status %q (%s)", e, item.Status, item.Error)
				}
				var single queryResp
				c.getJSON(fmt.Sprintf("/v1/query?q=%s&k=%d&timeout=20s", e, k), &single)
				if item.Count != single.Count {
					t.Fatalf("%q: batch %d results, single %d", e, item.Count, single.Count)
				}
				for j, r := range item.Results {
					sr := single.Results[j]
					if r.Node != sr.Node || r.Score != sr.Score || r.PathLen != sr.PathLen {
						t.Fatalf("%q result %d: batch %+v, single %+v", e, j, r, sr)
					}
				}
			}
			// The two bad items carry their own errors without failing the
			// batch.
			for _, bad := range []int{len(qs) - 2, len(qs) - 1} {
				if got.Results[bad].Status != shard.BatchError || got.Results[bad].Error == "" {
					t.Fatalf("bad item %d: %+v", bad, got.Results[bad])
				}
			}
		})
	}
}
