package shard

import "testing"

// TestRingDeterministic checks that two rings built from the same
// parameters agree on every assignment — the property that lets the router
// and every shard derive ownership independently.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(5, 64)
	b := NewRing(5, 64)
	for mi := int32(0); mi < 2000; mi++ {
		if a.Owner(mi) != b.Owner(mi) {
			t.Fatalf("meta %d: owners %d vs %d from identical rings", mi, a.Owner(mi), b.Owner(mi))
		}
	}
}

// TestRingCoverage checks that every shard owns a reasonable share: no
// shard starves and no shard hoards with the default vnode count.
func TestRingCoverage(t *testing.T) {
	const shards, metas = 4, 4000
	r := NewRing(shards, 0)
	if r.VNodes() != DefaultVNodes {
		t.Fatalf("VNodes() = %d, want default %d", r.VNodes(), DefaultVNodes)
	}
	counts := make([]int, shards)
	for mi := int32(0); mi < metas; mi++ {
		o := r.Owner(mi)
		if o < 0 || o >= shards {
			t.Fatalf("meta %d: owner %d out of range", mi, o)
		}
		counts[o]++
	}
	for s, n := range counts {
		if n < metas/shards/4 || n > metas/shards*4 {
			t.Fatalf("shard %d owns %d of %d metas — distribution badly skewed: %v", s, n, metas, counts)
		}
	}
}

// TestRingSmallCollections checks distribution quality where it is easiest
// to lose: collections with only a handful of meta documents.  Sequential
// meta IDs hash to near-identical FNV values; without a finalizing mixer
// they all land on one arc and a 3-shard cluster degenerates to one shard
// doing all the work (a regression this test pins down).
func TestRingSmallCollections(t *testing.T) {
	for _, shards := range []int{2, 3, 4} {
		for _, metas := range []int{10, 20, 50} {
			r := NewRing(shards, 0)
			counts := make([]int, shards)
			for mi := 0; mi < metas; mi++ {
				counts[r.Owner(int32(mi))]++
			}
			nonEmpty := 0
			for _, n := range counts {
				if n > 0 {
					nonEmpty++
				}
			}
			if nonEmpty < 2 {
				t.Errorf("%d shards / %d metas: ownership collapsed to one shard: %v", shards, metas, counts)
			}
			for s, n := range counts {
				if n > metas*9/10 {
					t.Errorf("%d shards / %d metas: shard %d owns >90%% (%d): %v", shards, metas, s, n, counts)
				}
			}
		}
	}
}

// TestRingOwnedByMatchesOwner checks the mask helper against the point
// lookup.
func TestRingOwnedByMatchesOwner(t *testing.T) {
	r := NewRing(3, 16)
	for s := 0; s < 3; s++ {
		mask := r.OwnedBy(s, 500)
		for mi, owned := range mask {
			if owned != (r.Owner(int32(mi)) == s) {
				t.Fatalf("shard %d meta %d: mask %v, Owner %d", s, mi, owned, r.Owner(int32(mi)))
			}
		}
	}
}

// TestRingDisjointExhaustive checks that ownership partitions the meta
// space: every meta document has exactly one owner.
func TestRingDisjointExhaustive(t *testing.T) {
	r := NewRing(4, 32)
	for mi := 0; mi < 1000; mi++ {
		owners := 0
		for s := 0; s < 4; s++ {
			if r.Owner(int32(mi)) == s {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("meta %d has %d owners", mi, owners)
		}
	}
}

// TestSanitizeRequestID checks the header validation: valid IDs pass
// through, hostile or oversized ones are rejected.
func TestSanitizeRequestID(t *testing.T) {
	valid := []string{"abc", "a1-B2_c3.d4", "00000001"}
	for _, id := range valid {
		if got := SanitizeRequestID(id); got != id {
			t.Errorf("SanitizeRequestID(%q) = %q, want unchanged", id, got)
		}
	}
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'a'
	}
	invalid := []string{"", "has space", "new\nline", "semi;colon", "ütf8", string(long), "x\x00y"}
	for _, id := range invalid {
		if got := SanitizeRequestID(id); got != "" {
			t.Errorf("SanitizeRequestID(%q) = %q, want rejection", id, got)
		}
	}
}
