package flix

import (
	"container/heap"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/xmlgraph"
)

// popAll drains a frontier4 into a slice.
func popAll(f *frontier4) []pqItem {
	var out []pqItem
	for f.Len() > 0 {
		out = append(out, f.pop())
	}
	return out
}

// refPopAll drains the container/heap reference frontier.
func refPopAll(rf *refFrontier) []pqItem {
	var out []pqItem
	for rf.Len() > 0 {
		out = append(out, heap.Pop(rf).(pqItem))
	}
	return out
}

// TestFrontier4MatchesContainerHeap is the pop-order property test: for any
// input sequence, frontier4 pops exactly the values container/heap pops.
// Both heaps remove the (dist, node)-minimum, so even with duplicate
// priorities the popped value sequences must be identical.
func TestFrontier4MatchesContainerHeap(t *testing.T) {
	check := func(dists []int32, nodes []int32, bulk bool) bool {
		n := len(dists)
		if len(nodes) < n {
			n = len(nodes)
		}
		var f frontier4
		var rf refFrontier
		items := make([]pqItem, 0, n)
		for i := 0; i < n; i++ {
			items = append(items, pqItem{dist: dists[i], node: xmlgraph.NodeID(nodes[i])})
		}
		if bulk {
			// Bulk construction: append then heapify, the
			// TypeDescendants path.
			f.grow(len(items))
			f.a = append(f.a, items...)
			f.heapify()
		} else {
			for _, it := range items {
				f.push(it)
			}
		}
		for _, it := range items {
			heap.Push(&rf, it)
		}
		got, want := popAll(&f), refPopAll(&rf)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestFrontier4TieHeavy forces massive priority collisions: distances drawn
// from {0,1,2} and node IDs from an 8-value domain, so nearly every pop has
// to break ties.  The pop sequences must still match container/heap exactly.
func TestFrontier4TieHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 200; round++ {
		n := rng.Intn(64)
		var f frontier4
		var rf refFrontier
		for i := 0; i < n; i++ {
			it := pqItem{dist: int32(rng.Intn(3)), node: xmlgraph.NodeID(rng.Intn(8))}
			f.push(it)
			heap.Push(&rf, it)
		}
		got, want := popAll(&f), refPopAll(&rf)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: pop %d: got %+v want %+v", round, i, got[i], want[i])
			}
		}
	}
}

// TestFrontier4Interleaved mixes pushes and pops in random order, comparing
// every popped value against container/heap driven by the same operation
// sequence.
func TestFrontier4Interleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 100; round++ {
		var f frontier4
		var rf refFrontier
		for op := 0; op < 200; op++ {
			if rf.Len() == 0 || rng.Intn(3) != 0 {
				it := pqItem{dist: int32(rng.Intn(10)), node: xmlgraph.NodeID(rng.Intn(1000))}
				f.push(it)
				heap.Push(&rf, it)
				continue
			}
			got := f.pop()
			want := heap.Pop(&rf).(pqItem)
			if got != want {
				t.Fatalf("round %d op %d: got %+v want %+v", round, op, got, want)
			}
		}
	}
}

// TestFrontier4Reset checks that reset empties the heap but retains capacity
// (the property the scratch pool relies on).
func TestFrontier4Reset(t *testing.T) {
	var f frontier4
	for i := 0; i < 100; i++ {
		f.push(pqItem{dist: int32(100 - i), node: xmlgraph.NodeID(i)})
	}
	c := cap(f.a)
	f.reset()
	if f.Len() != 0 {
		t.Fatalf("Len after reset = %d, want 0", f.Len())
	}
	if cap(f.a) != c {
		t.Fatalf("cap after reset = %d, want %d", cap(f.a), c)
	}
	f.push(pqItem{dist: 2, node: 1})
	f.push(pqItem{dist: 1, node: 2})
	if got := f.pop(); got != (pqItem{dist: 1, node: 2}) {
		t.Fatalf("pop after reset = %+v", got)
	}
}
