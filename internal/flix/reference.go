package flix

import (
	"container/heap"
	"time"

	"repro/internal/lgraph"
	"repro/internal/xmlgraph"
)

// This file preserves the pre-optimization Path Expression Evaluator
// verbatim: a container/heap binary frontier with boxed pqItems, per-query
// map scratch tables, and a visit closure rebuilt on every frontier pop.
// It is NOT used to serve queries.  It exists for two jobs:
//
//   - correctness: hotpath_test.go proves the optimized evaluator's result
//     stream is byte-identical to this one on every generator family and
//     option combination, and frontier_test.go pins frontier4's pop order
//     to container/heap's;
//   - benchmarking: `flixbench -exp hotpath` runs both evaluators on the
//     same index in the same process, so BENCH_hotpath.json records the
//     before/after numbers of the allocation-free rewrite without needing
//     the old commit.
//
// The only intentional difference is that the reference evaluator does not
// update Index.Stats (keeping the serving counters clean makes the baseline
// slightly FASTER, so measured speedups are conservative).

// refFrontier is the old binary min-heap over (dist, node) driven through
// container/heap — every Push and Pop boxes a pqItem into an `any`.
type refFrontier []pqItem

func (f refFrontier) Len() int { return len(f) }
func (f refFrontier) Less(i, j int) bool {
	if f[i].dist != f[j].dist {
		return f[i].dist < f[j].dist
	}
	return f[i].node < f[j].node
}
func (f refFrontier) Swap(i, j int) { f[i], f[j] = f[j], f[i] }
func (f *refFrontier) Push(x any)   { *f = append(*f, x.(pqItem)) }
func (f *refFrontier) Pop() any {
	old := *f
	n := len(old)
	it := old[n-1]
	*f = old[:n-1]
	return it
}

// ReferenceDescendants is Descendants on the frozen pre-optimization
// evaluator.  Results are streamed in the exact order the old engine
// produced; Index.Stats counters are not updated.
func (ix *Index) ReferenceDescendants(start xmlgraph.NodeID, tag string, opts Options, fn Emit) {
	ix.referenceEvaluate([]pqItem{{dist: 0, node: start}}, tag, opts, fn)
}

// ReferenceTypeDescendants is TypeDescendants on the frozen
// pre-optimization evaluator, starts grown via repeated append as before.
func (ix *Index) ReferenceTypeDescendants(tagA, tagB string, opts Options, fn Emit) {
	var starts []pqItem
	for _, n := range ix.coll.NodesByTag(tagA) {
		starts = append(starts, pqItem{dist: 0, node: n})
	}
	ix.referenceEvaluate(starts, tagB, opts, fn)
}

// referenceEvaluate is the old evaluate loop, kept byte-for-byte apart from
// the removed stats updates.
func (ix *Index) referenceEvaluate(starts []pqItem, tag string, opts Options, fn Emit) {
	tr := opts.Tracer
	f := make(refFrontier, 0, len(starts))
	for _, s := range starts {
		f = append(f, s)
	}
	heap.Init(&f)

	entered := make(map[int32][]int32) // meta ID -> visited entry points
	emitted := 0
	stopped := false
	var seenResults map[xmlgraph.NodeID]struct{}
	var seenEntries map[xmlgraph.NodeID]struct{}
	if opts.DupSeenSet {
		seenResults = make(map[xmlgraph.NodeID]struct{})
		seenEntries = make(map[xmlgraph.NodeID]struct{})
	}

	var buffer *refResultBuffer
	if opts.ExactOrder {
		buffer = &refResultBuffer{}
	}
	emit := func(r Result) bool {
		if !fn(r) {
			return false
		}
		emitted++
		return opts.MaxResults <= 0 || emitted < opts.MaxResults
	}

	for f.Len() > 0 && !stopped {
		if canceled(opts.Cancel) {
			stopped = true
			break
		}
		it := heap.Pop(&f).(pqItem)
		if tr != nil {
			tr.Pop(int64(it.node), it.dist)
		}
		if opts.MaxDist > 0 && it.dist > opts.MaxDist {
			break
		}
		if buffer != nil {
			if !buffer.flush(it.dist, emit) {
				stopped = true
				break
			}
		}
		mi := ix.set.MetaOf[it.node]
		le := ix.set.LocalOf[it.node]
		md := ix.set.Metas[mi]
		idx := ix.pis[mi]

		var prev []int32
		if opts.DupSeenSet {
			if _, dup := seenEntries[it.node]; dup {
				if tr != nil {
					tr.DupDrop(mi, int64(it.node), it.dist)
				}
				continue
			}
			seenEntries[it.node] = struct{}{}
		} else {
			prev = entered[mi]
			if coveredBy(idx, prev, le) {
				if tr != nil {
					tr.DupDrop(mi, int64(it.node), it.dist)
				}
				continue
			}
			entered[mi] = append(prev, le)
		}
		if tr != nil {
			tr.Entry(mi, idx.Name(), int64(it.node), it.dist)
		}

		localTag := lgraph.Tag(-1)
		wildcard := tag == ""
		if !wildcard {
			localTag = md.Graph.TagOf(tag)
			if localTag == lgraph.NoTag {
				goto links
			}
		}
		{
			var probeStart time.Time
			probeResults := 0
			if tr != nil {
				probeStart = time.Now()
			}
			visit := func(n, ld int32) bool {
				gd := it.dist + ld
				if opts.MaxDist > 0 && gd > opts.MaxDist {
					return false
				}
				if gd == 0 && !opts.IncludeSelf {
					return true
				}
				g := md.ToGlobal(n)
				if opts.DupSeenSet {
					if _, dup := seenResults[g]; dup {
						return true
					}
					seenResults[g] = struct{}{}
				} else if coveredBy(idx, prev, n) {
					return true
				}
				r := Result{Node: g, Dist: gd}
				if tr != nil {
					probeResults++
					tr.Result(mi, int64(g), gd)
				}
				if buffer != nil {
					buffer.add(r)
					return true
				}
				if !emit(r) {
					stopped = true
					return false
				}
				return true
			}
			if wildcard {
				idx.EachReachable(le, visit)
			} else {
				idx.EachReachableByTag(le, localTag, visit)
			}
			if tr != nil {
				tr.Probe(mi, idx.Name(), probeResults, time.Since(probeStart))
			}
			if stopped {
				break
			}
		}

	links:
		for _, ls := range md.LinkSources {
			d, ok := idx.Distance(le, ls)
			if !ok {
				continue
			}
			nd := it.dist + d + 1
			if opts.MaxDist > 0 && nd > opts.MaxDist {
				continue
			}
			for _, cl := range md.LinksFrom(ls) {
				heap.Push(&f, pqItem{dist: nd, node: cl.To})
				if tr != nil {
					tr.LinkHop(mi, int64(cl.To), nd)
				}
			}
		}
	}
	if buffer != nil && !stopped {
		buffer.flushAll(emit)
	}
}

// refResultBuffer is the old ExactOrder buffer over a container/heap-driven
// result heap.
type refResultBuffer struct {
	h refResultHeap
}

func (b *refResultBuffer) add(r Result) {
	heap.Push(&b.h, r)
}

func (b *refResultBuffer) flush(bound int32, emit func(Result) bool) bool {
	for b.h.Len() > 0 && b.h[0].Dist < bound {
		if !emit(heap.Pop(&b.h).(Result)) {
			return false
		}
	}
	return true
}

func (b *refResultBuffer) flushAll(emit func(Result) bool) {
	for b.h.Len() > 0 {
		if !emit(heap.Pop(&b.h).(Result)) {
			return
		}
	}
}

type refResultHeap []Result

func (h refResultHeap) Len() int { return len(h) }
func (h refResultHeap) Less(i, j int) bool {
	if h[i].Dist != h[j].Dist {
		return h[i].Dist < h[j].Dist
	}
	return h[i].Node < h[j].Node
}
func (h refResultHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refResultHeap) Push(x any)   { *h = append(*h, x.(Result)) }
func (h *refResultHeap) Pop() any {
	old := *h
	n := len(old)
	r := old[n-1]
	*h = old[:n-1]
	return r
}
