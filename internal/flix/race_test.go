//go:build race

package flix

// raceEnabled reports whether the race detector is compiled in.  Under the
// race detector sync.Pool deliberately drops cached items at random, so
// allocation-count assertions are meaningless there.
const raceEnabled = true
