package flix

// The v2 snapshot path: WriteSnapshotV2 emits the offset-based mmap-able
// container (storage.SnapshotWriter), OpenSnapshot serves an index
// straight from the mapped bytes with no parse step.  The file carries a
// manifest section (configuration + per-meta-document fingerprints)
// followed by one section per meta document in decomposition order; the
// decomposition itself is recomputed deterministically from the manifest
// configuration, exactly as the v1 loader does, and the fingerprints
// (node count, runtime-link count, link hash) detect a mismatched
// collection before any query runs.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/meta"
	"repro/internal/pathindex"
	"repro/internal/storage"
	"repro/internal/xmlgraph"
)

// ErrSnapshotCorrupt reports a v2 snapshot that failed structural
// validation or its checksum; it aliases storage.ErrCorrupt so callers can
// match either.  Truncations, bit flips and forged offsets all surface as
// errors wrapping it — never a panic, never silently wrong results.
var ErrSnapshotCorrupt = storage.ErrCorrupt

// WriteSnapshotV2 serializes the index in the v2 snapshot container.
// Unlike WriteTo (the v1 stream, which remains the default persisted
// format), the result can be served by OpenSnapshot directly from a
// memory-mapped file: fixed-width arrays are used in place and varint runs
// are decoded lazily per probe.
func (ix *Index) WriteSnapshotV2(w io.Writer) (int64, error) {
	return ix.WriteSnapshotV2With(w, SnapshotV2Options{})
}

// SnapshotV2Options tunes WriteSnapshotV2With.
type SnapshotV2Options struct {
	// Compress emits compressed section encodings (succinct bit-packed PPO
	// intervals, delta-packed HOPI labels) for every per-meta index that
	// supports one.  Each section is encoded both ways and the compressed
	// form is kept only when it is at most CompressRatio of the raw size —
	// so incompressible sections (APEX, transitive closure) fall back to
	// their raw encoding per section, recorded in the manifest.
	Compress bool
	// CompressRatio is the keep threshold (compressed ≤ ratio·raw);
	// 0 means the default of 0.9.
	CompressRatio float64
}

// defaultCompressRatio rejects compressed encodings that shave off less
// than 10%: below that the denser codec is not worth the extra probe work.
const defaultCompressRatio = 0.9

// writeManifest emits the manifest section.  rawLens, present only in
// compressed snapshots, appends a trailer recording each section's
// pre-compression size (0 = unknown / already compressed at build): a
// uvarint trailer version followed by one uvarint per meta document.
// Raw-mode output carries no trailer and stays byte-identical to what
// earlier writers produced.
func (ix *Index) writeManifest(sw *storage.SnapshotWriter, rawLens []int64) {
	sw.Begin(storage.SectionManifest)
	sw.Varint(int64(ix.cfg.Kind))
	sw.Varint(int64(ix.cfg.PartitionSize))
	sw.Varint(int64(ix.cfg.MinTreeDocs))
	sw.Varint(int64(ix.cfg.Load))
	sw.String(ix.cfg.Strategy)
	sw.Uvarint(uint64(len(ix.pis)))
	for i := range ix.pis {
		md := ix.set.Metas[i]
		sw.Uvarint(uint64(md.Graph.NumNodes()))
		sw.Uvarint(uint64(len(md.OutLinks)))
		sw.U64(linkHash(md))
	}
	if rawLens != nil {
		sw.Uvarint(manifestTrailerV1)
		for _, n := range rawLens {
			sw.Uvarint(uint64(n))
		}
	}
	sw.End()
}

// manifestTrailerV1 versions the optional manifest trailer.
const manifestTrailerV1 = 1

// WriteSnapshotV2With is WriteSnapshotV2 with explicit options.
func (ix *Index) WriteSnapshotV2With(w io.Writer, opts SnapshotV2Options) (int64, error) {
	sw := storage.NewSnapshotWriter(w)
	if !opts.Compress {
		// The streaming raw path: byte-identical to earlier writers.
		ix.writeManifest(sw, nil)
		for i, p := range ix.pis {
			enc, ok := p.(storage.SectionEncoder)
			if !ok {
				return sw.Offset(), fmt.Errorf("flix: meta %d: %s index cannot encode a v2 section", i, p.Name())
			}
			sw.Begin(enc.SectionKind())
			enc.EncodeSection(sw)
			sw.End()
		}
		return sw.Finish()
	}

	ratio := opts.CompressRatio
	if ratio == 0 {
		ratio = defaultCompressRatio
	}
	// Compressed sections are chosen per section by measured ratio, and the
	// manifest (which precedes them in the file) records the raw sizes — so
	// encode every body up front, then stream the container.
	type section struct {
		kind uint32
		body []byte
	}
	secs := make([]section, len(ix.pis))
	rawLens := make([]int64, len(ix.pis))
	for i, p := range ix.pis {
		enc, ok := p.(storage.SectionEncoder)
		if !ok {
			return 0, fmt.Errorf("flix: meta %d: %s index cannot encode a v2 section", i, p.Name())
		}
		body, err := storage.EncodeSectionBody(enc.EncodeSection)
		if err != nil {
			return 0, fmt.Errorf("flix: meta %d: %w", i, err)
		}
		secs[i] = section{kind: enc.SectionKind(), body: body}
		if storage.IsCompressedKind(secs[i].kind) {
			// Already compressed (re-persisting an open compressed
			// snapshot); the original raw size is unknown.
			continue
		}
		cenc, ok := p.(storage.CompressedSectionEncoder)
		if !ok {
			continue
		}
		comp, err := storage.EncodeSectionBody(cenc.EncodeCompressedSection)
		if err != nil {
			return 0, fmt.Errorf("flix: meta %d: %w", i, err)
		}
		if float64(len(comp)) <= ratio*float64(len(body)) {
			rawLens[i] = int64(len(body))
			secs[i] = section{kind: cenc.CompressedSectionKind(), body: comp}
		}
	}
	ix.writeManifest(sw, rawLens)
	for _, sec := range secs {
		sw.Begin(sec.kind)
		sw.Raw(sec.body)
		sw.End()
	}
	return sw.Finish()
}

// linkHash fingerprints a meta document's runtime link table (FNV-64a over
// the (FromLocal, To) pairs).  OpenSnapshot compares it against the
// recomputed decomposition, replacing the v1 loader's full link-table
// comparison at a fraction of the stored bytes.
func linkHash(md *meta.MetaDocument) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint32) {
		for s := 0; s < 32; s += 8 {
			h ^= uint64(v>>s) & 0xff
			h *= prime64
		}
	}
	for _, cl := range md.OutLinks {
		mix(uint32(cl.FromLocal))
		mix(uint32(cl.To))
	}
	return h
}

// OpenOptions tunes OpenSnapshotWith.
type OpenOptions struct {
	// Mmap maps the file read-only instead of reading it into memory.
	// Platforms without mmap support fall back to a plain read.
	Mmap bool
}

// OpenSnapshot opens a v2 snapshot file memory-mapped against the
// collection it was written for.  The returned index serves queries
// straight from the mapping; call Close when done (a finalizer releases
// the mapping otherwise, so a hot-swapped-out generation pinned by
// in-flight queries stays valid until the last reference drops).
func OpenSnapshot(c *xmlgraph.Collection, path string) (*Index, error) {
	return OpenSnapshotWith(c, path, OpenOptions{Mmap: true})
}

// OpenSnapshotWith is OpenSnapshot with explicit options.
func OpenSnapshotWith(c *xmlgraph.Collection, path string, opts OpenOptions) (*Index, error) {
	snap, err := storage.OpenSnapshotFile(path, opts.Mmap)
	if err != nil {
		return nil, wrapSnapshotErr(err)
	}
	ix, err := openSnapshot(c, snap)
	if err != nil {
		snap.Close()
		return nil, err
	}
	return ix, nil
}

// OpenSnapshotBytes opens a v2 snapshot from an in-memory image.
func OpenSnapshotBytes(c *xmlgraph.Collection, data []byte) (*Index, error) {
	snap, err := storage.OpenSnapshotBytes(data)
	if err != nil {
		return nil, wrapSnapshotErr(err)
	}
	ix, err := openSnapshot(c, snap)
	if err != nil {
		snap.Close()
		return nil, err
	}
	return ix, nil
}

// wrapSnapshotErr lifts the storage-level version error into this
// package's ErrSnapshotVersion (keeping the original chained), so callers
// match one sentinel for both the v1 stream and the v2 container.
func wrapSnapshotErr(err error) error {
	if errors.Is(err, storage.ErrVersion) && !errors.Is(err, ErrSnapshotVersion) {
		return fmt.Errorf("%w (%w)", ErrSnapshotVersion, err)
	}
	return err
}

func openSnapshot(c *xmlgraph.Collection, snap *storage.Snapshot) (*Index, error) {
	if !c.Frozen() {
		return nil, fmt.Errorf("flix: collection must be frozen before OpenSnapshot")
	}
	if snap.NumSections() < 1 || snap.Section(0).Kind != storage.SectionManifest {
		return nil, fmt.Errorf("%w: first section is not the manifest", ErrSnapshotCorrupt)
	}
	d := storage.NewSectionData(snap.Section(0).Data)
	cfg := Config{
		Kind:          ConfigKind(d.Varint()),
		PartitionSize: int(d.Varint()),
		MinTreeDocs:   int(d.Varint()),
		Load:          meta.QueryLoad(d.Varint()),
		Strategy:      d.String(),
	}
	nMetas := int(d.Uvarint())
	if err := d.Err(); err != nil {
		return nil, err
	}
	// Each manifest entry takes at least 10 bytes, so this bound rejects a
	// forged count before the arrays below are allocated.
	if nMetas < 0 || nMetas > maxSnapshotMetas || nMetas > d.Remaining()/10+1 {
		return nil, fmt.Errorf("%w: unreasonable meta-document count %d", ErrSnapshotCorrupt, nMetas)
	}
	if snap.NumSections() != nMetas+1 {
		return nil, fmt.Errorf("%w: %d sections for %d meta documents", ErrSnapshotCorrupt, snap.NumSections(), nMetas)
	}
	type fingerprint struct {
		nodes, links int
		hash         uint64
	}
	fps := make([]fingerprint, nMetas)
	for i := range fps {
		fps[i] = fingerprint{nodes: int(d.Uvarint()), links: int(d.Uvarint()), hash: d.U64()}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	// Compressed snapshots append a trailer with the pre-compression size
	// of each section; raw snapshots end right after the fingerprints.
	var secRaw []int64
	if d.Remaining() > 0 {
		if v := d.Uvarint(); v != manifestTrailerV1 {
			return nil, fmt.Errorf("%w: unknown manifest trailer version %d", ErrSnapshotCorrupt, v)
		}
		secRaw = make([]int64, nMetas)
		for i := range secRaw {
			secRaw[i] = int64(d.Uvarint())
		}
		if err := d.Err(); err != nil {
			return nil, err
		}
	}

	set, err := decompose(c, cfg)
	if err != nil {
		return nil, err
	}
	if len(set.Metas) != nMetas {
		return nil, fmt.Errorf("flix: snapshot has %d meta documents, collection yields %d — wrong collection?",
			nMetas, len(set.Metas))
	}
	ix := &Index{coll: c, set: set, cfg: cfg, pis: make([]pathindex.Index, nMetas), snap: snap, format: "v2", secRaw: secRaw}
	for i, md := range set.Metas {
		fp := fps[i]
		if fp.nodes != md.Graph.NumNodes() || fp.links != len(md.OutLinks) || fp.hash != linkHash(md) {
			return nil, fmt.Errorf("flix: meta %d: snapshot fingerprint mismatch — wrong collection?", i)
		}
		sec := snap.Section(i + 1)
		// A compressed section must be no larger than the raw size the
		// manifest declares for it — a mismatch means one of the two was
		// tampered with.
		if secRaw != nil && storage.IsCompressedKind(sec.Kind) && secRaw[i] != 0 && secRaw[i] < int64(len(sec.Data)) {
			return nil, fmt.Errorf("%w: meta %d: compressed section (%d bytes) exceeds declared raw size %d",
				ErrSnapshotCorrupt, i, len(sec.Data), secRaw[i])
		}
		open, ok := meta.SectionOpeners[sec.Kind]
		if !ok {
			return nil, fmt.Errorf("%w: meta %d: unknown section kind %d", ErrSnapshotCorrupt, i, sec.Kind)
		}
		idx, err := open(md.Graph, sec.Data)
		if err != nil {
			return nil, fmt.Errorf("flix: meta %d: %w", i, err)
		}
		ix.pis[i] = idx
	}
	ix.buildLinkTables()
	return ix, nil
}

// LoadSnapshotFile restores an index from a snapshot file of either
// format, sniffing the magic: v2 containers are opened in place (mapped
// when useMmap), v1 streams are parsed with Load.  Both formats share the
// generation store's gen-NNNNNN.flix naming, so warm start needs no
// format bookkeeping.
func LoadSnapshotFile(c *xmlgraph.Collection, path string, useMmap bool) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [8]byte
	n, _ := io.ReadFull(f, magic[:])
	if storage.SniffSnapshot(magic[:n]) {
		f.Close()
		return OpenSnapshotWith(c, path, OpenOptions{Mmap: useMmap})
	}
	defer f.Close()
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return Load(c, bufio.NewReaderSize(f, 1<<20))
}

// Close releases the snapshot backing this index, if any.  It must only
// be called once no query is active; indexes built in memory need no
// Close.
func (ix *Index) Close() error {
	if ix.snap == nil {
		return nil
	}
	return ix.snap.Close()
}

// StorageInfo describes how an index is backed.
type StorageInfo struct {
	// Format is "heap" for a built index, "v1" for one parsed from the
	// legacy stream, "v2" for one served from an open snapshot container.
	Format string
	// Mapped reports whether the backing snapshot is memory-mapped.
	Mapped bool
	// MappedBytes is the size of the mapping (0 when not mapped).
	MappedBytes int64
	// SizeBytes is the on-disk size of the backing snapshot container, or
	// 0 when the index is not snapshot-backed.
	SizeBytes int64
	// Compressed reports whether any section uses a compressed encoding.
	Compressed bool
	// Sections breaks the snapshot down by section kind.
	Sections []SectionStat
}

// SectionStat aggregates the snapshot sections of one kind.
type SectionStat struct {
	// Kind names the section kind ("manifest", "ppo", "ppo-c", ...).
	Kind string
	// Sections counts sections of this kind.
	Sections int
	// Bytes is their total on-disk payload size.
	Bytes int64
	// RawBytes is the total pre-compression size of the compressed
	// sections among them whose raw size the manifest records.
	RawBytes int64
	// Ratio is RawBytes/Bytes for those sections (0 when not applicable).
	Ratio float64
}

// StorageInfo reports how the index is backed; /statsz surfaces it.
func (ix *Index) StorageInfo() StorageInfo {
	si := StorageInfo{Format: ix.format}
	if si.Format == "" {
		si.Format = "heap"
	}
	if ix.snap == nil {
		return si
	}
	if ix.snap.Mapped() {
		si.Mapped = true
		si.MappedBytes = ix.snap.Size()
	}
	si.SizeBytes = ix.snap.Size()
	byKind := map[string]*SectionStat{}
	var order []string
	for i := 0; i < ix.snap.NumSections(); i++ {
		sec := ix.snap.Section(i)
		name := storage.SectionKindName(sec.Kind)
		st := byKind[name]
		if st == nil {
			st = &SectionStat{Kind: name}
			byKind[name] = st
			order = append(order, name)
		}
		st.Sections++
		st.Bytes += int64(len(sec.Data))
		if storage.IsCompressedKind(sec.Kind) {
			si.Compressed = true
			if i > 0 && ix.secRaw != nil && ix.secRaw[i-1] != 0 {
				st.RawBytes += ix.secRaw[i-1]
			}
		}
	}
	for _, name := range order {
		st := byKind[name]
		if st.RawBytes > 0 && st.Bytes > 0 {
			st.Ratio = float64(st.RawBytes) / float64(st.Bytes)
		}
		si.Sections = append(si.Sections, *st)
	}
	return si
}
