package flix

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/meta"
	"repro/internal/partition"
	"repro/internal/pathindex"
	"repro/internal/storage"
	"repro/internal/xmlgraph"
)

// SnapshotVersion is the current on-disk format version, written right
// after the "flix" header.  Load refuses snapshots from a newer version
// with ErrSnapshotVersion instead of misreading them; the live-reindexing
// generation store depends on this check to skip (not crash on) snapshots
// a newer binary left behind.
const SnapshotVersion = 1

// ErrSnapshotVersion reports a snapshot written by a newer format version
// than this binary understands.
var ErrSnapshotVersion = errors.New("flix: snapshot format version not supported")

// maxSnapshotMetas bounds the meta-document count declared in a snapshot
// header, so a corrupt stream fails with an error instead of an
// out-of-memory allocation.
const maxSnapshotMetas = 1 << 26

// WriteTo serializes every meta-document index plus the runtime link tables
// (the data a FliX deployment must persist); the byte count is the "index
// size" the experiments report (Table 1).  Load restores the index against
// the same collection.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	var total int64
	sw := storage.NewWriter(w)
	sw.Header("flix")
	sw.Uvarint(SnapshotVersion)
	sw.Varint(int64(ix.cfg.Kind))
	sw.Varint(int64(ix.cfg.PartitionSize))
	sw.Varint(int64(ix.cfg.MinTreeDocs))
	sw.Varint(int64(ix.cfg.Load))
	sw.String(ix.cfg.Strategy)
	sw.Uvarint(uint64(len(ix.pis)))
	n, err := sw.Flush()
	if err != nil {
		return n, err
	}
	total += n
	for i, p := range ix.pis {
		n, err := p.WriteTo(w)
		total += n
		if err != nil {
			return total, err
		}
		// Runtime link table of this meta document.
		lw := storage.NewWriter(w)
		md := ix.set.Metas[i]
		lw.Uvarint(uint64(len(md.OutLinks)))
		for _, cl := range md.OutLinks {
			lw.Int32(cl.FromLocal)
			lw.Int32(int32(cl.To))
		}
		n, err = lw.Flush()
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// SizeBytes measures the on-disk size of the index in its persisted form:
// the actual container size for a snapshot-backed index (v2, compressed or
// not), or the serialized v1 stream length for a heap-built one.
func (ix *Index) SizeBytes() (int64, error) {
	if ix.snap != nil {
		return ix.snap.Size(), nil
	}
	return ix.WriteTo(io.Discard)
}

// decompose recomputes the meta-document decomposition a stored
// configuration describes.  Both snapshot loaders (the v1 stream and the
// v2 mmap container) rely on it being deterministic: the collection plus
// the stored Config fully determine the meta documents, so only the
// per-meta-document indexes need to be persisted.
func decompose(c *xmlgraph.Collection, cfg Config) (*meta.Set, error) {
	switch cfg.Kind {
	case Naive:
		return meta.Build(c, partition.Singleton(c)), nil
	case MaximalPPO:
		return meta.Build(c, partition.TreePartitions(c)), nil
	case UnconnectedHOPI:
		return meta.Build(c, partition.SizeBounded(c, cfg.PartitionSize)), nil
	case Hybrid:
		return meta.Build(c, partition.Hybrid(c, cfg.PartitionSize, cfg.MinTreeDocs)), nil
	case Monolithic:
		return meta.Build(c, partition.Whole(c)), nil
	case ElementLevel:
		assign, parts := partition.ElementLevel(c, cfg.PartitionSize)
		return meta.BuildElements(c, assign, parts), nil
	default:
		return nil, fmt.Errorf("flix: stored configuration kind %d unknown", cfg.Kind)
	}
}

// Load restores an index written by WriteTo.  The collection must be the
// one the index was built over: the meta-document decomposition is
// recomputed deterministically from the stored configuration and the
// per-meta-document indexes are deserialized instead of rebuilt.  The
// stored link tables are checked against the recomputed decomposition, so
// a mismatched collection is detected rather than silently mis-queried.
func Load(c *xmlgraph.Collection, r io.Reader) (*Index, error) {
	if !c.Frozen() {
		return nil, fmt.Errorf("flix: collection must be frozen before Load")
	}
	sr := storage.NewReader(r)
	if err := sr.Header("flix"); err != nil {
		return nil, err
	}
	if v := sr.Uvarint(); v > SnapshotVersion {
		if err := sr.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: stream is v%d, this binary reads <= v%d", ErrSnapshotVersion, v, SnapshotVersion)
	}
	cfg := Config{
		Kind:          ConfigKind(sr.Varint()),
		PartitionSize: int(sr.Varint()),
		MinTreeDocs:   int(sr.Varint()),
		Load:          meta.QueryLoad(sr.Varint()),
		Strategy:      sr.String(),
	}
	nMetas := int(sr.Uvarint())
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if nMetas < 0 || nMetas > maxSnapshotMetas {
		return nil, fmt.Errorf("flix: unreasonable meta-document count %d in snapshot", nMetas)
	}

	set, err := decompose(c, cfg)
	if err != nil {
		return nil, err
	}
	if len(set.Metas) != nMetas {
		return nil, fmt.Errorf("flix: stream has %d meta documents, collection yields %d — wrong collection?",
			nMetas, len(set.Metas))
	}
	ix := &Index{coll: c, set: set, cfg: cfg, pis: make([]pathindex.Index, nMetas), format: "v1"}
	for i, md := range set.Metas {
		kind, err := sr.ReadHeader()
		if err != nil {
			return nil, fmt.Errorf("flix: meta %d: %w", i, err)
		}
		read, ok := meta.Readers[kind]
		if !ok {
			return nil, fmt.Errorf("flix: meta %d: unknown index kind %q", i, kind)
		}
		idx, err := read(md.Graph, sr)
		if err != nil {
			return nil, fmt.Errorf("flix: meta %d: %w", i, err)
		}
		ix.pis[i] = idx
		// Verify the stored link table against the recomputed one.
		nl := int(sr.Uvarint())
		if err := sr.Err(); err != nil {
			return nil, err
		}
		if nl != len(md.OutLinks) {
			return nil, fmt.Errorf("flix: meta %d: stream has %d runtime links, collection yields %d",
				i, nl, len(md.OutLinks))
		}
		for j := 0; j < nl; j++ {
			from := sr.Int32()
			to := xmlgraph.NodeID(sr.Int32())
			if md.OutLinks[j].FromLocal != from || md.OutLinks[j].To != to {
				return nil, fmt.Errorf("flix: meta %d: runtime link %d mismatch", i, j)
			}
		}
	}
	if err := sr.Err(); err != nil {
		return nil, err
	}
	ix.buildLinkTables()
	return ix, nil
}
