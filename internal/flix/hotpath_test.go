package flix

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/testutil"
	"repro/internal/xmlgraph"
)

// collect runs an evaluation function and records its full result stream.
func collectRun(run func(fn Emit)) []Result {
	var out []Result
	run(func(r Result) bool {
		out = append(out, r)
		return true
	})
	return out
}

// hotpathConfigs are the framework configurations the differential suite
// cross-checks; small partitions force plenty of runtime links.
func hotpathConfigs() []Config {
	return []Config{
		{Kind: Naive},
		{Kind: MaximalPPO},
		{Kind: UnconnectedHOPI, PartitionSize: 40},
		{Kind: Hybrid, PartitionSize: 40},
	}
}

// TestEvaluatorMatchesReference is the differential proof for the rewritten
// hot path: across collection families, configurations and option sets, the
// new evaluator's result stream must be exactly identical — order included —
// to the frozen pre-optimization evaluator kept in reference.go.
func TestEvaluatorMatchesReference(t *testing.T) {
	optSets := []Options{
		{},
		{MaxResults: 7},
		{MaxDist: 3},
		{IncludeSelf: true},
		{ExactOrder: true},
		{DupSeenSet: true},
		{MaxResults: 5, MaxDist: 4, IncludeSelf: true},
		{ExactOrder: true, MaxResults: 9},
	}
	tags := []string{"", "a", "b", "c"}
	for _, fam := range testutil.Families() {
		for seed := int64(1); seed <= 3; seed++ {
			c := testutil.Generate(fam, seed, 12, 20, 25)
			for _, cfg := range hotpathConfigs() {
				ix, err := Build(c, cfg)
				if err != nil {
					t.Fatalf("%s seed %d %v: %v", fam, seed, cfg.Kind, err)
				}
				step := c.NumNodes()/5 + 1
				for s := 0; s < c.NumNodes(); s += step {
					start := xmlgraph.NodeID(s)
					for _, tag := range tags {
						for oi, opts := range optSets {
							got := collectRun(func(fn Emit) { ix.Descendants(start, tag, opts, fn) })
							want := collectRun(func(fn Emit) { ix.ReferenceDescendants(start, tag, opts, fn) })
							diffStreams(t, fmt.Sprintf("%s seed %d %v start %d tag %q opts#%d",
								fam, seed, cfg.Kind, start, tag, oi), got, want)
						}
					}
				}
				for _, pair := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", ""}} {
					for oi, opts := range optSets {
						got := collectRun(func(fn Emit) { ix.TypeDescendants(pair[0], pair[1], opts, fn) })
						want := collectRun(func(fn Emit) { ix.ReferenceTypeDescendants(pair[0], pair[1], opts, fn) })
						diffStreams(t, fmt.Sprintf("%s seed %d %v type %s//%s opts#%d",
							fam, seed, cfg.Kind, pair[0], pair[1], oi), got, want)
					}
				}
			}
		}
	}
}

func diffStreams(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: stream length %d, reference %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d = %+v, reference %+v", label, i, got[i], want[i])
		}
	}
}

// TestEmitStopMatchesReference checks the early-stop exit path: an Emit
// callback returning false must leave both evaluators with the same prefix.
func TestEmitStopMatchesReference(t *testing.T) {
	c := testutil.Generate(testutil.Linked, 5, 15, 25, 30)
	ix, err := Build(c, Config{Kind: Hybrid, PartitionSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	for stop := 1; stop <= 9; stop += 4 {
		take := func(run func(fn Emit)) []Result {
			var out []Result
			run(func(r Result) bool {
				out = append(out, r)
				return len(out) < stop
			})
			return out
		}
		got := take(func(fn Emit) { ix.Descendants(0, "a", Options{}, fn) })
		want := take(func(fn Emit) { ix.ReferenceDescendants(0, "a", Options{}, fn) })
		diffStreams(t, fmt.Sprintf("stop after %d", stop), got, want)
	}
}

// TestDescendantsAllocBudget enforces the tentpole acceptance bar at test
// granularity: an untraced descendants query on a warm scratch pool must not
// allocate.  The budget is 2 rather than 0 only to tolerate testing
// instrumentation noise; the benchmark gate in CI holds the hard zero.
func TestDescendantsAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop cached items at random")
	}
	c := testutil.Generate(testutil.Linked, 3, 20, 25, 40)
	ix, err := Build(c, Config{Kind: Hybrid, PartitionSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	drop := func(Result) bool { return true }
	for i := 0; i < 4; i++ { // warm the pool and every lazy index structure
		ix.Descendants(0, "a", Options{MaxResults: 50}, drop)
	}
	avg := testing.AllocsPerRun(50, func() {
		ix.Descendants(0, "a", Options{MaxResults: 50}, drop)
	})
	if avg > 2 {
		t.Fatalf("untraced descendants allocated %.1f allocs/op on a warm pool, budget 2", avg)
	}
}

// TestDescendantsAllocBudgetMmap holds the mmap-backed generation to the
// same bar: serving from a v2 snapshot must not cost the hot path any
// allocations either — the varint posting cursors decode in place and the
// merge scratch is pooled exactly like the heap build's.
func TestDescendantsAllocBudgetMmap(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop cached items at random")
	}
	c := testutil.Generate(testutil.Linked, 3, 20, 25, 40)
	built, err := Build(c, Config{Kind: Hybrid, PartitionSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := built.WriteSnapshotV2(&buf); err != nil {
		t.Fatal(err)
	}
	ix, err := OpenSnapshotBytes(c, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	drop := func(Result) bool { return true }
	for i := 0; i < 4; i++ { // warm the pool, tag caches and lazy structures
		ix.Descendants(0, "a", Options{MaxResults: 50}, drop)
	}
	avg := testing.AllocsPerRun(50, func() {
		ix.Descendants(0, "a", Options{MaxResults: 50}, drop)
	})
	if avg > 2 {
		t.Fatalf("mmap-backed descendants allocated %.1f allocs/op on a warm pool, budget 2", avg)
	}
}

// TestScratchPoolSwapRace hammers the pooled scratch state from concurrent
// queries while the live index is hot-swapped between generations, as the
// reindexer does.  Each Index owns its own pool, so queries running against
// a retiring generation keep their scratch valid while new queries already
// use the replacement.  Run under -race this proves the pooling introduces
// no sharing between generations.
func TestScratchPoolSwapRace(t *testing.T) {
	c := testutil.Generate(testutil.Linked, 9, 15, 20, 30)
	build := func(ps int) *Index {
		ix, err := Build(c, Config{Kind: Hybrid, PartitionSize: ps})
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	gens := []*Index{build(30), build(60), build(120)}
	want := len(collectRun(func(fn Emit) { gens[0].Descendants(0, "a", Options{}, fn) }))

	var cur atomic.Pointer[Index]
	cur.Store(gens[0])
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, 8)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ix := cur.Load()
				n := 0
				ix.Descendants(0, "a", Options{}, func(Result) bool { n++; return true })
				if n != want {
					errs <- fmt.Sprintf("worker %d: %d results, want %d", w, n, want)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 60; i++ {
		cur.Store(gens[i%len(gens)])
	}
	close(stop)
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
}
