package flix

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/storage"
	"repro/internal/testutil"
	"repro/internal/xmlgraph"
)

// goldenCollection regenerates the exact collection the committed fixture
// was built from: testutil generation is deterministic in the seed, so the
// collection — and therefore the decomposition the loader validates the
// snapshot against — is stable across checkouts.
func goldenCollection() *xmlgraph.Collection {
	return testutil.Generate(testutil.Linked, 11, 10, 10, 15)
}

func goldenConfig() Config {
	return Config{Kind: Hybrid, PartitionSize: 60}
}

const goldenPath = "testdata/golden-v1.flix"

// TestSnapshotGoldenFixture loads the version-1 snapshot committed under
// testdata/ and checks it answers queries exactly like a fresh build of the
// same configuration.  The fixture pins the on-disk format: any
// serialization change that cannot read existing files breaks this test
// and must bump SnapshotVersion instead.
//
// Regenerate (after an intentional, version-bumped format change) with:
//
//	UPDATE_GOLDEN=1 go test -run TestSnapshotGoldenFixture ./internal/flix
func TestSnapshotGoldenFixture(t *testing.T) {
	coll := goldenCollection()
	fresh, err := Build(coll, goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := fresh.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, buf.Len())
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden fixture (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	ix, err := Load(coll, bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("loading golden fixture: %v", err)
	}
	if ix.Config() != fresh.Config() {
		t.Errorf("fixture config = %+v, want %+v", ix.Config(), fresh.Config())
	}
	if ix.Describe() != fresh.Describe() {
		t.Errorf("fixture Describe = %q, fresh build = %q", ix.Describe(), fresh.Describe())
	}
	// Byte-identical behavior: every sampled query streams the same
	// (node, dist) sequence from the restored index and the fresh build.
	for start := 0; start < coll.NumNodes(); start += 7 {
		for _, tag := range []string{"a", "b", "c", "d", "e", ""} {
			want := streamBytes(fresh, xmlgraph.NodeID(start), tag)
			got := streamBytes(ix, xmlgraph.NodeID(start), tag)
			if !bytes.Equal(want, got) {
				t.Fatalf("start %d tag %q: fixture stream %s != fresh %s", start, tag, got, want)
			}
		}
	}
}

// TestSnapshotFutureVersion checks a snapshot from a newer format version
// is refused with the typed sentinel — the downgrade path a mixed-version
// deployment hits when an old binary warm-starts from a new generation
// snapshot.
func TestSnapshotFutureVersion(t *testing.T) {
	var buf bytes.Buffer
	sw := storage.NewWriter(&buf)
	sw.Header("flix")
	sw.Uvarint(SnapshotVersion + 1)
	if _, err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	_, err := Load(goldenCollection(), bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("Load(v%d stream) = %v, want ErrSnapshotVersion", SnapshotVersion+1, err)
	}
}

// TestSnapshotCorrupt feeds damaged snapshots to Load: every truncation and
// every corrupted prefix byte must produce an error (or, for flips beyond
// the validated region, at worst a clean load) — never a panic and never an
// index for a stream whose header or tables are broken.
func TestSnapshotCorrupt(t *testing.T) {
	coll := goldenCollection()
	ix, err := Build(coll, goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	for _, n := range []int{0, 1, 3, len(raw) / 4, len(raw) / 2, len(raw) - 1} {
		if _, err := Load(coll, bytes.NewReader(raw[:n])); err == nil {
			t.Errorf("Load of %d/%d-byte truncation succeeded", n, len(raw))
		}
	}
	// The magic header must be enforced byte for byte.
	for i := 0; i < 4; i++ {
		bad := bytes.Clone(raw)
		bad[i] ^= 0xff
		if _, err := Load(coll, bytes.NewReader(bad)); err == nil {
			t.Errorf("Load with corrupted header byte %d succeeded", i)
		}
	}
	// Arbitrary single-byte corruption anywhere in the stream: Load may
	// reject it or (for don't-care bytes) still produce an index, but it
	// must never panic.  The loop re-runs Load len(raw) times, so keep the
	// fixture small.
	for i := range raw {
		bad := bytes.Clone(raw)
		bad[i] ^= 0x55
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Load panicked on corrupted byte %d: %v", i, r)
				}
			}()
			_, _ = Load(coll, bytes.NewReader(bad))
		}()
	}
}

// streamBytes serializes one exact-order descendants stream.
func streamBytes(ix *Index, start xmlgraph.NodeID, tag string) []byte {
	var b bytes.Buffer
	ix.Descendants(start, tag, Options{ExactOrder: true}, func(r Result) bool {
		fmt.Fprintf(&b, "%d:%d;", r.Node, r.Dist)
		return true
	})
	return b.Bytes()
}
