package flix

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/testutil"
	"repro/internal/xmlgraph"
)

// gatherLocal replays the router's scatter-gather loop in-process against a
// single index: the meta documents are split across nShards synthetic owners
// and hops are re-dispatched Dijkstra-style until the frontier drains.  It
// is the reference implementation of the distributed composition that the
// HTTP tier in internal/shard must match.
func gatherLocal(ix *Index, start xmlgraph.NodeID, tag string, maxDist int32, nShards int) []FrontierEntry {
	owner := func(mi int32) int { return int(mi) % nShards }
	best := map[xmlgraph.NodeID]int32{start: 0}
	results := make(map[xmlgraph.NodeID]int32)
	batches := make([][]FrontierEntry, nShards)
	batches[owner(ix.MetaOf(start))] = []FrontierEntry{{Node: start, Dist: 0}}
	for {
		any := false
		next := make([][]FrontierEntry, nShards)
		for sh, batch := range batches {
			if len(batch) == 0 {
				continue
			}
			any = true
			sh := sh
			pr := ix.PartialDescendants(batch, tag, PartialOptions{
				MaxDist: maxDist,
				Owned:   func(mi int32) bool { return owner(mi) == sh },
			})
			for _, r := range pr.Results {
				if d, ok := results[r.Node]; !ok || r.Dist < d {
					results[r.Node] = r.Dist
				}
			}
			for _, hp := range pr.Hops {
				if d, ok := best[hp.Node]; !ok || hp.Dist < d {
					best[hp.Node] = hp.Dist
					o := owner(ix.MetaOf(hp.Node))
					next[o] = append(next[o], hp)
				}
			}
		}
		if !any {
			break
		}
		batches = next
	}
	return sortedEntries(results)
}

// dropSelf removes the start element from a (dist, node)-sorted stream, the
// router's default include-self policy.
func dropSelf(entries []FrontierEntry, start xmlgraph.NodeID) []FrontierEntry {
	out := entries[:0:0]
	for _, e := range entries {
		if e.Node != start {
			out = append(out, e)
		}
	}
	return out
}

// TestPartialDescendantsMatchesOracle checks the core exactness claim: the
// gathered partial streams carry exact shortest distances in exact
// (dist, node) order, for every graph family and shard count — stronger
// than the single-node evaluator's approximate upper bounds.
func TestPartialDescendantsMatchesOracle(t *testing.T) {
	for _, fam := range testutil.Families() {
		for seed := int64(1); seed <= 3; seed++ {
			coll := testutil.Generate(fam, seed, 12, 40, 30)
			ix, err := Build(coll, Config{Kind: Hybrid, PartitionSize: 60})
			if err != nil {
				t.Fatalf("%s/%d: %v", fam, seed, err)
			}
			rng := rand.New(rand.NewSource(seed * 77))
			tags := coll.Tags()
			for q := 0; q < 8; q++ {
				start := xmlgraph.NodeID(rng.Intn(coll.NumNodes()))
				tag := tags[rng.Intn(len(tags))]
				oracle := coll.DescendantsByTag(start, tag)
				for _, nShards := range []int{1, 2, 4} {
					got := dropSelf(gatherLocal(ix, start, tag, 0, nShards), start)
					if len(got) != len(oracle) {
						t.Fatalf("%s/%d shards=%d %d//%s: %d results, oracle %d",
							fam, seed, nShards, start, tag, len(got), len(oracle))
					}
					for i := range got {
						if got[i].Node != oracle[i].Node || got[i].Dist != oracle[i].Dist {
							t.Fatalf("%s/%d shards=%d %d//%s: result %d = (%d,%d), oracle (%d,%d)",
								fam, seed, nShards, start, tag, i,
								got[i].Node, got[i].Dist, oracle[i].Node, oracle[i].Dist)
						}
					}
				}
			}
		}
	}
}

// TestPartialDescendantsMaxDist checks that the distance bound composes with
// sharding: bounded gathered runs equal the bounded oracle exactly (the
// partial evaluator's Dijkstra cutoff is exact, unlike the single-node
// found-path pruning).
func TestPartialDescendantsMaxDist(t *testing.T) {
	coll := testutil.Generate(testutil.Linked, 5, 12, 40, 40)
	ix, err := Build(coll, Config{Kind: Hybrid, PartitionSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	tags := coll.Tags()
	for q := 0; q < 10; q++ {
		start := xmlgraph.NodeID(rng.Intn(coll.NumNodes()))
		tag := tags[rng.Intn(len(tags))]
		maxDist := int32(1 + rng.Intn(6))
		var oracle []FrontierEntry
		for _, nd := range coll.DescendantsByTag(start, tag) {
			if nd.Dist <= maxDist {
				oracle = append(oracle, FrontierEntry{Node: nd.Node, Dist: nd.Dist})
			}
		}
		got := dropSelf(gatherLocal(ix, start, tag, maxDist, 3), start)
		if fmt.Sprint(got) != fmt.Sprint(oracle) {
			t.Fatalf("%d//%s maxdist=%d:\n got    %v\n oracle %v", start, tag, maxDist, got, oracle)
		}
	}
}

// TestPartialHopsAreForeign checks the ownership contract: hops lie only in
// foreign meta documents, results only in owned ones, and an entry handed in
// for a foreign meta document comes straight back as a hop.
func TestPartialHopsAreForeign(t *testing.T) {
	coll := testutil.Generate(testutil.Linked, 3, 10, 40, 40)
	ix, err := Build(coll, Config{Kind: Hybrid, PartitionSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumMetaDocuments() < 2 {
		t.Skip("collection produced a single meta document")
	}
	owned := func(mi int32) bool { return mi%2 == 0 }
	for start := xmlgraph.NodeID(0); int(start) < coll.NumNodes(); start += 7 {
		pr := ix.PartialDescendants([]FrontierEntry{{Node: start, Dist: 0}}, "", PartialOptions{Owned: owned})
		for _, r := range pr.Results {
			if !owned(ix.MetaOf(r.Node)) {
				t.Fatalf("start %d: result %d lies in foreign meta %d", start, r.Node, ix.MetaOf(r.Node))
			}
		}
		for _, h := range pr.Hops {
			if owned(ix.MetaOf(h.Node)) {
				t.Fatalf("start %d: hop %d lies in owned meta %d", start, h.Node, ix.MetaOf(h.Node))
			}
		}
		if !owned(ix.MetaOf(start)) {
			if len(pr.Results) != 0 || len(pr.Hops) != 1 || pr.Hops[0].Node != start {
				t.Fatalf("foreign start %d: want exactly itself back as a hop, got results=%v hops=%v",
					start, pr.Results, pr.Hops)
			}
		}
	}
}

// TestPartialDescendantsCancel checks that a closed cancel channel marks the
// evaluation truncated instead of looping.
func TestPartialDescendantsCancel(t *testing.T) {
	coll := testutil.Generate(testutil.Linked, 4, 10, 40, 40)
	ix, err := Build(coll, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	close(done)
	pr := ix.PartialDescendants([]FrontierEntry{{Node: 0, Dist: 0}}, "", PartialOptions{Cancel: done})
	if !pr.Truncated {
		t.Fatal("cancelled evaluation not marked truncated")
	}
}

// TestMetaFingerprintAgreement checks that identically configured builds
// agree on the fingerprint and differently partitioned builds do not.
func TestMetaFingerprintAgreement(t *testing.T) {
	coll := testutil.Generate(testutil.Linked, 6, 12, 40, 40)
	a, err := Build(coll, Config{Kind: Hybrid, PartitionSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(coll, Config{Kind: Hybrid, PartitionSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	if a.MetaFingerprint() != b.MetaFingerprint() {
		t.Fatal("identical builds disagree on the meta fingerprint")
	}
	mono, err := Build(coll, Config{Kind: Monolithic})
	if err != nil {
		t.Fatal(err)
	}
	if mono.NumMetaDocuments() != a.NumMetaDocuments() && mono.MetaFingerprint() == a.MetaFingerprint() {
		t.Fatal("different partitionings share a fingerprint")
	}
}
