package flix

import (
	"fmt"
	"testing"

	"repro/internal/xmlgraph"
)

// buildChain creates n single-item documents linked in a chain
// (d0.item -> d1.doc -> d1.item -> d2.doc -> ...), so a descendants query
// from the first root must hop a runtime link per document and the frontier
// drains one meta document per pop under the Naive configuration.
func buildChain(t testing.TB, n int) (*xmlgraph.Collection, xmlgraph.NodeID) {
	t.Helper()
	c := xmlgraph.NewCollection()
	roots := make([]xmlgraph.NodeID, n)
	leaves := make([]xmlgraph.NodeID, n)
	for i := 0; i < n; i++ {
		d := c.NewDocument(fmt.Sprintf("d%03d.xml", i))
		roots[i] = d.Enter("doc", "")
		leaves[i] = d.AddLeaf("item", fmt.Sprintf("item %d", i))
		d.Leave()
		d.Close()
	}
	for i := 0; i+1 < n; i++ {
		c.AddLink(leaves[i], roots[i+1], xmlgraph.EdgeInterLink)
	}
	c.Freeze()
	return c, roots[0]
}

func TestCancelPreTrippedStopsImmediately(t *testing.T) {
	c, start := buildChain(t, 20)
	ix, err := Build(c, Config{Kind: Naive})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	close(done)
	before := ix.Stats().Snapshot()
	got := collect(ix, start, "item", Options{Cancel: done})
	after := ix.Stats().Snapshot()
	if len(got) != 0 {
		t.Errorf("pre-tripped cancel emitted %d results, want 0", len(got))
	}
	if d := after.Entries - before.Entries; d != 0 {
		t.Errorf("pre-tripped cancel processed %d entries, want 0", d)
	}
}

func TestCancelStopsBeforeExhaustingFrontier(t *testing.T) {
	const n = 30
	c, start := buildChain(t, n)
	ix, err := Build(c, Config{Kind: Naive})
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: uncancelled, the query walks the whole chain.
	if all := collect(ix, start, "item", Options{}); len(all) != n {
		t.Fatalf("uncancelled query found %d items, want %d", len(all), n)
	}
	cancel := make(chan struct{})
	before := ix.Stats().Snapshot()
	emitted := 0
	ix.Descendants(start, "item", Options{Cancel: cancel}, func(Result) bool {
		emitted++
		if emitted == 1 {
			close(cancel)
		}
		return true
	})
	after := ix.Stats().Snapshot()
	if emitted >= n {
		t.Errorf("canceled query emitted %d results, want < %d", emitted, n)
	}
	// The cancel trips after the first meta document; the loop must stop
	// at the next pop, far short of the n-entry frontier walk.
	if d := after.Entries - before.Entries; d >= n {
		t.Errorf("canceled query processed %d entries, want < %d", d, n)
	}
}

func TestConnectedOptsCancel(t *testing.T) {
	c, start := buildChain(t, 15)
	ix, err := Build(c, Config{Kind: Naive})
	if err != nil {
		t.Fatal(err)
	}
	target := c.NodesByTag("item")[14]
	if _, ok := ix.Connected(start, target, 0); !ok {
		t.Fatal("chain ends must be connected")
	}
	done := make(chan struct{})
	close(done)
	if d, ok := ix.ConnectedOpts(start, target, Options{Cancel: done}); ok {
		t.Errorf("canceled connection test reported connected (dist %d)", d)
	}
}

func TestCacheDoesNotStoreCanceledEvaluation(t *testing.T) {
	c, start := buildChain(t, 20)
	ix, err := Build(c, Config{Kind: Naive})
	if err != nil {
		t.Fatal(err)
	}
	cache := ix.NewQueryCache(4)
	cancel := make(chan struct{})
	emitted := 0
	cache.Descendants(start, "item", Options{Cancel: cancel}, func(Result) bool {
		emitted++
		if emitted == 1 {
			close(cancel)
		}
		return true
	})
	if cache.Len() != 0 {
		t.Fatalf("canceled evaluation was cached (%d entries)", cache.Len())
	}
	// A complete run stores; a third run hits.
	cache.Descendants(start, "item", Options{}, func(Result) bool { return true })
	if cache.Len() != 1 {
		t.Fatalf("complete evaluation not cached (%d entries)", cache.Len())
	}
	n := 0
	cache.Descendants(start, "item", Options{}, func(Result) bool { n++; return true })
	if n != 20 {
		t.Errorf("cached replay returned %d results, want 20", n)
	}
	if hits, _ := cache.Counts(); hits != 1 {
		t.Errorf("hits = %d, want 1", hits)
	}
}

func TestCacheStoreBounded(t *testing.T) {
	c, start := buildChain(t, 20)
	ix, err := Build(c, Config{Kind: Naive})
	if err != nil {
		t.Fatal(err)
	}
	cache := ix.NewQueryCache(4)
	cache.StoreBounded = true
	n := 0
	cache.Descendants(start, "item", Options{MaxResults: 3}, func(Result) bool { n++; return true })
	if n != 3 {
		t.Fatalf("bounded miss returned %d results, want 3", n)
	}
	if cache.Len() != 1 {
		t.Fatalf("StoreBounded miss did not populate the cache (%d entries)", cache.Len())
	}
	// The stored stream is complete: an unbounded follow-up is a hit with
	// the full result set.
	n = 0
	cache.Descendants(start, "item", Options{}, func(Result) bool { n++; return true })
	if n != 20 {
		t.Errorf("replay of stored stream returned %d results, want 20", n)
	}
	if hits, misses := cache.Counts(); hits != 1 || misses != 1 {
		t.Errorf("counts = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
}
