package flix_test

// Differential tests for the resumable banded Probe: drained band by band,
// it must reproduce the full Descendants result set element for element, in
// exact (dist, node) order, with the band boundary honored — after Next(b)
// every unseen result is farther than b.

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/flix"
	"repro/internal/testutil"
	"repro/internal/xmlgraph"
)

// descendantsSorted collects the full Descendants result set in (dist, node)
// order — the oracle the banded probe must reproduce.
func descendantsSorted(ix *flix.Index, start xmlgraph.NodeID, tag string, opts flix.Options) []flix.Result {
	var out []flix.Result
	ix.Descendants(start, tag, opts, func(r flix.Result) bool {
		out = append(out, r)
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// drainProbe pulls a probe dry on the exponential band schedule, checking
// that every emission of band b has Dist <= b.
func drainProbe(t *testing.T, ix *flix.Index, start xmlgraph.NodeID, tag string, opts flix.Options, p *flix.Probe) []flix.Result {
	t.Helper()
	ix.StartProbe(p, start, tag, opts)
	var out []flix.Result
	band := int32(0)
	for {
		band = flix.NextBand(band, opts.MaxDist)
		more := p.Next(band, func(r flix.Result) bool {
			if r.Dist > band {
				t.Fatalf("band %d emitted dist %d", band, r.Dist)
			}
			out = append(out, r)
			return true
		})
		if !more {
			break
		}
		if opts.MaxDist > 0 && band >= opts.MaxDist {
			t.Fatalf("probe did not finish at the MaxDist band %d", band)
		}
	}
	if p.Truncated() {
		t.Fatal("unexpected truncation")
	}
	p.Close()
	return out
}

func TestProbeMatchesDescendants(t *testing.T) {
	tags := []string{"", "a", "b", "e"}
	for _, family := range testutil.Families() {
		for seed := int64(1); seed <= 3; seed++ {
			coll := testutil.Generate(family, seed, 8, 30, 16)
			ix, err := flix.Build(coll, flix.Config{Kind: flix.Hybrid, PartitionSize: 40})
			if err != nil {
				t.Fatalf("%s/%d: %v", family, seed, err)
			}
			var p flix.Probe
			for _, tag := range tags {
				for _, maxDist := range []int32{0, 3} {
					opts := flix.Options{MaxDist: maxDist, IncludeSelf: maxDist == 0}
					for start := xmlgraph.NodeID(0); int(start) < coll.NumNodes(); start += 7 {
						want := descendantsSorted(ix, start, tag, opts)
						got := drainProbe(t, ix, start, tag, opts, &p)
						if fmt.Sprint(got) != fmt.Sprint(want) {
							t.Fatalf("%s/%d start=%d tag=%q maxdist=%d:\n got %v\nwant %v",
								family, seed, start, tag, maxDist, got, want)
						}
					}
				}
			}
		}
	}
}

// TestProbeCancel checks the truncation contract: a cancelled probe reports
// Truncated and stops pulling frontier work.
func TestProbeCancel(t *testing.T) {
	coll := testutil.Generate(testutil.Linked, 1, 8, 30, 16)
	ix, err := flix.Build(coll, flix.Config{Kind: flix.Hybrid, PartitionSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	close(done)
	var p flix.Probe
	ix.StartProbe(&p, 0, "", flix.Options{Cancel: done})
	for p.Next(1<<20, func(flix.Result) bool { return true }) {
	}
	if !p.Truncated() {
		t.Fatal("cancelled probe not marked truncated")
	}
	p.Close()
}
