package flix

import (
	"container/list"
	"sync"

	"repro/internal/xmlgraph"
)

// QueryCache memoizes descendants queries — the "caching results of
// frequent (sub-)queries" optimization of §7.  It wraps an Index with a
// bounded LRU keyed by (start element, tag); hits replay the stored result
// stream, misses evaluate and (when the evaluation ran to completion)
// store it.
//
// Only complete, untruncated evaluations are cached: a stream the client
// cancelled or bounded with MaxResults/MaxDist is not a valid answer for
// the next caller.  Replays honor the caller's Options by truncating the
// stored stream.  A QueryCache is safe for concurrent use.
type QueryCache struct {
	ix  *Index
	cap int

	mu  sync.Mutex
	lru *list.List // of *cacheEntry, front = most recent
	byK map[cacheKey]*list.Element

	hits, misses int64
}

type cacheKey struct {
	start xmlgraph.NodeID
	tag   string
}

type cacheEntry struct {
	key     cacheKey
	results []Result
}

// NewQueryCache wraps the index with an LRU of the given capacity (number
// of distinct cached queries, minimum 1).
func (ix *Index) NewQueryCache(capacity int) *QueryCache {
	if capacity < 1 {
		capacity = 1
	}
	return &QueryCache{
		ix:  ix,
		cap: capacity,
		lru: list.New(),
		byK: make(map[cacheKey]*list.Element),
	}
}

// Descendants behaves like Index.Descendants but consults the cache.
func (c *QueryCache) Descendants(start xmlgraph.NodeID, tag string, opts Options, fn Emit) {
	key := cacheKey{start: start, tag: tag}
	if results, ok := c.lookup(key); ok {
		replay(results, opts, fn)
		return
	}
	// Cache only evaluations that run to completion without
	// client-imposed truncation.
	cacheable := opts.MaxResults == 0 && opts.MaxDist == 0 && !opts.IncludeSelf
	if !cacheable {
		c.ix.Descendants(start, tag, opts, fn)
		return
	}
	var results []Result
	complete := true
	c.ix.Descendants(start, tag, opts, func(r Result) bool {
		results = append(results, r)
		if !fn(r) {
			complete = false
			return false
		}
		return true
	})
	if complete {
		c.store(key, results)
	}
}

// replay feeds stored results through the caller's options.
func replay(results []Result, opts Options, fn Emit) {
	emitted := 0
	for _, r := range results {
		if opts.MaxDist > 0 && r.Dist > opts.MaxDist {
			continue
		}
		if r.Dist == 0 && !opts.IncludeSelf {
			continue
		}
		if !fn(r) {
			return
		}
		emitted++
		if opts.MaxResults > 0 && emitted >= opts.MaxResults {
			return
		}
	}
}

func (c *QueryCache) lookup(key cacheKey) ([]Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byK[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).results, true
}

func (c *QueryCache) store(key cacheKey, results []Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byK[key]; ok {
		el.Value.(*cacheEntry).results = results
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.cap {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.byK, last.Value.(*cacheEntry).key)
	}
	c.byK[key] = c.lru.PushFront(&cacheEntry{key: key, results: results})
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (c *QueryCache) HitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Len returns the number of cached queries.
func (c *QueryCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
