package flix

import (
	"container/list"
	"sort"
	"sync"

	"repro/internal/xmlgraph"
)

// QueryCache memoizes descendants queries — the "caching results of
// frequent (sub-)queries" optimization of §7.  It wraps an Index with a
// bounded LRU keyed by (start element, tag); hits replay the stored result
// stream, misses evaluate and (when the evaluation ran to completion)
// store it.
//
// Only complete, untruncated evaluations are cached: a stream the client
// cancelled or bounded with MaxResults/MaxDist is not a valid answer for
// the next caller.  Replays honor the caller's Options by truncating the
// stored stream.  A QueryCache is safe for concurrent use.
type QueryCache struct {
	ix  *Index
	cap int

	// StoreBounded makes a miss with client-imposed bounds (MaxResults,
	// MaxDist, IncludeSelf) evaluate the query *unbounded*, store the
	// complete stream, and then replay it through the caller's Options.
	// Repeated top-k queries — the typical server workload — then hit the
	// cache, at the cost of the first evaluation materializing the full
	// result set.  Off by default to preserve the library's streaming
	// early-termination behavior.
	StoreBounded bool

	mu  sync.Mutex
	lru *list.List // of *cacheEntry, front = most recent
	byK map[cacheKey]*list.Element

	hits, misses int64
}

type cacheKey struct {
	start xmlgraph.NodeID
	tag   string
}

type cacheEntry struct {
	key     cacheKey
	results []Result
}

// NewQueryCache wraps the index with an LRU of the given capacity (number
// of distinct cached queries, minimum 1).
func (ix *Index) NewQueryCache(capacity int) *QueryCache {
	if capacity < 1 {
		capacity = 1
	}
	return &QueryCache{
		ix:  ix,
		cap: capacity,
		lru: list.New(),
		byK: make(map[cacheKey]*list.Element),
	}
}

// Descendants behaves like Index.Descendants but consults the cache.
func (c *QueryCache) Descendants(start xmlgraph.NodeID, tag string, opts Options, fn Emit) {
	key := cacheKey{start: start, tag: tag}
	if results, ok := c.lookup(key); ok {
		if opts.Tracer != nil {
			opts.Tracer.CacheHit()
		}
		replay(results, opts, fn)
		return
	}
	if opts.Tracer != nil {
		opts.Tracer.CacheMiss()
	}
	// Cache only evaluations that run to completion without
	// client-imposed truncation.
	cacheable := opts.MaxResults == 0 && opts.MaxDist == 0 && !opts.IncludeSelf
	if !cacheable {
		if !c.StoreBounded {
			c.ix.Descendants(start, tag, opts, fn)
			return
		}
		// StoreBounded: evaluate unbounded (still honoring cancellation
		// and tracing), store the complete stream, replay it under the
		// caller's bounds.
		full := Options{ExactOrder: opts.ExactOrder, Cancel: opts.Cancel, Tracer: opts.Tracer}
		var results []Result
		c.ix.Descendants(start, tag, full, func(r Result) bool {
			results = append(results, r)
			return true
		})
		if !canceled(opts.Cancel) {
			c.store(key, results)
		}
		replay(results, opts, fn)
		return
	}
	var results []Result
	complete := true
	c.ix.Descendants(start, tag, opts, func(r Result) bool {
		results = append(results, r)
		if !fn(r) {
			complete = false
			return false
		}
		return true
	})
	// A cancellation stops the priority-queue loop without fn ever
	// returning false; such a truncated stream must not be stored.
	if canceled(opts.Cancel) {
		complete = false
	}
	if complete {
		c.store(key, results)
	}
}

// replay feeds stored results through the caller's options.  Stored streams
// are in the (approximate) order their evaluation produced; ExactOrder
// callers get a sorted copy, which is exact because the stream is complete.
func replay(results []Result, opts Options, fn Emit) {
	if opts.ExactOrder && !sortedByDist(results) {
		sorted := make([]Result, len(results))
		copy(sorted, results)
		sortResults(sorted)
		results = sorted
	}
	emitted := 0
	for _, r := range results {
		if opts.MaxDist > 0 && r.Dist > opts.MaxDist {
			continue
		}
		if r.Dist == 0 && !opts.IncludeSelf {
			continue
		}
		if !fn(r) {
			return
		}
		emitted++
		if opts.MaxResults > 0 && emitted >= opts.MaxResults {
			return
		}
	}
}

func (c *QueryCache) lookup(key cacheKey) ([]Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byK[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).results, true
}

func (c *QueryCache) store(key cacheKey, results []Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byK[key]; ok {
		el.Value.(*cacheEntry).results = results
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.cap {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.byK, last.Value.(*cacheEntry).key)
	}
	c.byK[key] = c.lru.PushFront(&cacheEntry{key: key, results: results})
}

// sortedByDist reports whether results are already in ascending
// (dist, node) order, the common case for single-meta-document streams.
func sortedByDist(results []Result) bool {
	for i := 1; i < len(results); i++ {
		a, b := results[i-1], results[i]
		if a.Dist > b.Dist || (a.Dist == b.Dist && a.Node > b.Node) {
			return false
		}
	}
	return true
}

// sortResults orders results by ascending (dist, node).
func sortResults(results []Result) {
	sort.Slice(results, func(i, j int) bool {
		if results[i].Dist != results[j].Dist {
			return results[i].Dist < results[j].Dist
		}
		return results[i].Node < results[j].Node
	})
}

// HotKey identifies one cached query for cross-cache warming.
type HotKey struct {
	Start xmlgraph.NodeID
	Tag   string
}

// HotKeys returns the keys of up to n cached queries (n <= 0 means all),
// most recently used first — the working set a replacement cache should be
// warmed with before it takes over.
func (c *QueryCache) HotKeys(n int) []HotKey {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n <= 0 || n > c.lru.Len() {
		n = c.lru.Len()
	}
	keys := make([]HotKey, 0, n)
	for el := c.lru.Front(); el != nil && len(keys) < n; el = el.Next() {
		k := el.Value.(*cacheEntry).key
		keys = append(keys, HotKey{Start: k.start, Tag: k.tag})
	}
	return keys
}

// Warm evaluates each key to completion on the wrapped index and stores the
// complete streams, least recent first so the LRU ends up ordered like the
// source cache.  A generation about to be hot-swapped live uses this to
// take over its predecessor's working set: the warming evaluations run on
// the installer's goroutine, so the first post-swap clients hit a warm
// cache instead of re-evaluating the whole hot set.  Returns the number of
// queries warmed; cancellation stops the sweep.
func (c *QueryCache) Warm(keys []HotKey, cancel <-chan struct{}) int {
	warmed := 0
	for i := len(keys) - 1; i >= 0; i-- {
		if canceled(cancel) {
			return warmed
		}
		key := keys[i]
		var results []Result
		c.ix.Descendants(key.Start, key.Tag, Options{Cancel: cancel}, func(r Result) bool {
			results = append(results, r)
			return true
		})
		if canceled(cancel) {
			return warmed
		}
		c.store(cacheKey{start: key.Start, tag: key.Tag}, results)
		warmed++
	}
	return warmed
}

// Contains reports whether a complete stream for (start, tag) is cached,
// without promoting the entry in the LRU or counting a hit or miss.  Batch
// handlers use it to order work — answer cached queries first — before the
// real lookups happen; a peek must therefore leave every counter and the
// eviction order exactly as it found them.
func (c *QueryCache) Contains(start xmlgraph.NodeID, tag string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.byK[cacheKey{start: start, tag: tag}]
	return ok
}

// Counts returns the number of cache hits and misses so far.
func (c *QueryCache) Counts() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (c *QueryCache) HitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Len returns the number of cached queries.
func (c *QueryCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
