package flix

import (
	"hash/fnv"
	"sort"

	"repro/internal/lgraph"
	"repro/internal/obs"
	"repro/internal/xmlgraph"
)

// This file is the shard-side half of the scatter-gather serving tier
// (internal/shard): a *partial* Path Expression Evaluator that expands a
// batch of frontier entries only within an owned subset of the meta
// documents and hands everything that crosses into foreign meta documents
// back to the caller.  The router replays Figure 4's priority-queue loop one
// level up, re-dispatching the returned hops to the shards that own them.
//
// Unlike the single-node evaluator, the partial evaluator deduplicates
// frontier entries by *identity with minimum distance* (a lazy-deletion
// Dijkstra) instead of the §5.1 entry-point coverage scheme.  Coverage
// pruning is only sound when one evaluation sees every entry of a meta
// document; split across RPC rounds it would suppress shorter rediscoveries.
// The identity scheme costs more frontier work but makes the distributed
// composition exact: local distances within a meta document are exact
// shortest paths, every boundary crossing is surfaced as a hop, and the
// router keeps the minimum distance per node — so the merged stream carries
// true shortest distances, not the single-node upper bounds.

// FrontierEntry is one (node, distance) pair of the distributed frontier —
// the wire unit of the shard protocol: query starts, returned results, and
// cross-shard hops all take this shape.
type FrontierEntry struct {
	Node xmlgraph.NodeID `json:"node"`
	Dist int32           `json:"dist"`
}

// PartialOptions tunes one partial evaluation.
type PartialOptions struct {
	// MaxDist prunes paths longer than this many edges (0 = unlimited).
	MaxDist int32
	// Owned reports whether this evaluator owns a meta document.  Entries
	// landing in un-owned meta documents are returned as hops instead of
	// being expanded.  Nil means everything is owned (single-shard mode).
	Owned func(meta int32) bool
	// Cancel aborts the evaluation when closed; the partial result is then
	// marked Truncated because un-expanded frontier work was dropped.
	Cancel <-chan struct{}
	// Tracer receives the same span events as the single-node evaluator.
	Tracer *obs.Trace
}

// PartialResult is the outcome of one partial evaluation.
type PartialResult struct {
	// Results are the matching elements found in owned meta documents, with
	// the minimum distance over all expanded entries, sorted by
	// (dist, node).  A result at distance 0 (the start itself) is included
	// when the tag matches; the router applies the include-self policy.
	Results []FrontierEntry
	// Hops are the frontier entries that landed in foreign meta documents,
	// minimum distance per node, sorted by (dist, node).  The caller owns
	// routing them to the shards that own them.
	Hops []FrontierEntry
	// Pops, Entries and LinkHops mirror the QueryStats counters for this
	// evaluation.
	Pops, Entries, LinkHops int64
	// Truncated reports that the evaluation was cancelled before the local
	// frontier drained; Results/Hops are then a sound but incomplete subset.
	Truncated bool
}

// entryHeap is a binary min-heap of frontier entries ordered by
// (dist, node); the partial evaluator is off the single-node hot path and
// keeps its own heap instead of borrowing the pooled 4-ary frontier.
type entryHeap []FrontierEntry

func entryLess(x, y FrontierEntry) bool {
	if x.Dist != y.Dist {
		return x.Dist < y.Dist
	}
	return x.Node < y.Node
}

func (h *entryHeap) push(e FrontierEntry) {
	a := append(*h, e)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !entryLess(a[i], a[p]) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
	*h = a
}

func (h *entryHeap) pop() FrontierEntry {
	a := *h
	min := a[0]
	last := len(a) - 1
	a[0] = a[last]
	a = a[:last]
	*h = a
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(a) && entryLess(a[l], a[smallest]) {
			smallest = l
		}
		if r < len(a) && entryLess(a[r], a[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		a[i], a[smallest] = a[smallest], a[i]
		i = smallest
	}
	return min
}

// PartialDescendants expands the given frontier entries within the owned
// meta documents, evaluating start//tag locally (empty tag = wildcard) and
// collecting boundary crossings as hops.  Entries already landing in foreign
// meta documents are returned as hops unexpanded, so a caller with a stale
// ownership view degrades gracefully instead of computing wrong answers.
func (ix *Index) PartialDescendants(entries []FrontierEntry, tag string, opts PartialOptions) PartialResult {
	var out PartialResult
	owned := opts.Owned
	wildcard := tag == ""
	tr := opts.Tracer

	// bestEntry is the lazy-deletion Dijkstra table over expanded entries;
	// results and hops keep the minimum distance per node.
	bestEntry := make(map[xmlgraph.NodeID]int32, len(entries)*2)
	results := make(map[xmlgraph.NodeID]int32)
	hops := make(map[xmlgraph.NodeID]int32)

	var f entryHeap
	for _, e := range entries {
		if e.Dist < 0 {
			continue
		}
		if opts.MaxDist > 0 && e.Dist > opts.MaxDist {
			continue
		}
		if d, ok := bestEntry[e.Node]; ok && d <= e.Dist {
			continue
		}
		bestEntry[e.Node] = e.Dist
		f.push(e)
	}

	for len(f) > 0 {
		if canceled(opts.Cancel) {
			out.Truncated = true
			break
		}
		it := f.pop()
		out.Pops++
		if tr != nil {
			tr.Pop(int64(it.Node), it.Dist)
		}
		if d, ok := bestEntry[it.Node]; !ok || d < it.Dist {
			continue // stale heap entry: a shorter path was queued later
		}
		mi := ix.set.MetaOf[it.Node]
		if owned != nil && !owned(mi) {
			if d, ok := hops[it.Node]; !ok || it.Dist < d {
				hops[it.Node] = it.Dist
			}
			continue
		}
		le := ix.set.LocalOf[it.Node]
		md := ix.set.Metas[mi]
		idx := ix.pis[mi]
		out.Entries++
		if tr != nil {
			tr.Entry(mi, idx.Name(), int64(it.Node), it.Dist)
		}

		// Stream matching descendants; local distances are exact, so
		// min-merging per node yields exact global shortest distances.
		localTag := lgraph.NoTag
		probe := true
		if !wildcard {
			localTag = md.Graph.TagOf(tag)
			probe = localTag != lgraph.NoTag
		}
		if probe {
			visit := func(n, ld int32) bool {
				gd := it.Dist + ld
				if opts.MaxDist > 0 && gd > opts.MaxDist {
					return false // ld ascending: the rest is farther
				}
				g := md.ToGlobal(n)
				if d, ok := results[g]; !ok || gd < d {
					results[g] = gd
					if tr != nil {
						tr.Result(mi, int64(g), gd)
					}
				}
				return true
			}
			if wildcard {
				idx.EachReachable(le, visit)
			} else {
				idx.EachReachableByTag(le, localTag, visit)
			}
		}

		// Follow reachable runtime links.  Owned targets relax the local
		// frontier; foreign targets become hops (also min-merged — the
		// router's Dijkstra continues from them).
		for _, ls := range md.LinkSources {
			d, ok := idx.Distance(le, ls)
			if !ok {
				continue
			}
			nd := it.Dist + d + 1
			if opts.MaxDist > 0 && nd > opts.MaxDist {
				continue
			}
			for _, cl := range md.LinksFrom(ls) {
				out.LinkHops++
				if tr != nil {
					tr.LinkHop(mi, int64(cl.To), nd)
				}
				tm := ix.set.MetaOf[cl.To]
				if owned == nil || owned(tm) {
					if d, ok := bestEntry[cl.To]; !ok || nd < d {
						bestEntry[cl.To] = nd
						f.push(FrontierEntry{Node: cl.To, Dist: nd})
					}
				} else if d, ok := hops[cl.To]; !ok || nd < d {
					hops[cl.To] = nd
				}
			}
		}
	}

	out.Results = sortedEntries(results)
	out.Hops = sortedEntries(hops)

	// Fold this evaluation into the shared query statistics so shard-mode
	// /statsz and /metrics report partial evaluations like any other load.
	ix.stats.Queries.Add(1)
	ix.stats.Pops.Add(out.Pops)
	ix.stats.Entries.Add(out.Entries)
	ix.stats.LinkHops.Add(out.LinkHops)
	ix.stats.Results.Add(int64(len(out.Results)))
	return out
}

// sortedEntries flattens a node→dist map into a (dist, node)-sorted slice.
func sortedEntries(m map[xmlgraph.NodeID]int32) []FrontierEntry {
	if len(m) == 0 {
		return nil
	}
	out := make([]FrontierEntry, 0, len(m))
	for n, d := range m {
		out = append(out, FrontierEntry{Node: n, Dist: d})
	}
	sort.Slice(out, func(i, j int) bool { return entryLess(out[i], out[j]) })
	return out
}

// MetaOf returns the meta document owning node n.
func (ix *Index) MetaOf(n xmlgraph.NodeID) int32 { return ix.set.MetaOf[n] }

// MetaAssignment returns the node→meta-document mapping.  The slice is the
// index's own; callers must treat it as read-only.
func (ix *Index) MetaAssignment() []int32 { return ix.set.MetaOf }

// MetaOutLinkCounts returns, per meta document, the number of runtime links
// leaving it — the router surfaces these in the topology endpoint so
// operators can see how link-heavy each ring segment is.
func (ix *Index) MetaOutLinkCounts() []int32 {
	out := make([]int32, len(ix.set.Metas))
	for i, md := range ix.set.Metas {
		out[i] = int32(len(md.OutLinks))
	}
	return out
}

// MetaFingerprint hashes the meta-document decomposition (count and the full
// node→meta assignment).  Every shard of a cluster must agree on it: the
// consistent-hash ring routes meta IDs, so two shards with different
// partitionings would silently mis-route hops.  The router refuses shards
// whose fingerprint disagrees.
func (ix *Index) MetaFingerprint() uint64 {
	h := fnv.New64a()
	var buf [4]byte
	put := func(v int32) {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		h.Write(buf[:])
	}
	put(int32(len(ix.set.Metas)))
	for _, mi := range ix.set.MetaOf {
		put(mi)
	}
	return h.Sum64()
}
