package flix

import (
	"repro/internal/xmlgraph"
)

// evalScratch is the per-query working state of the evaluator, pooled on the
// Index so that a warm query performs no allocation: the frontier backing
// array, the entered-entry-point table, the ablation seen-sets, the
// ExactOrder result heap, and the bound visit/emit callbacks are all checked
// out together at query start and returned — reset — on every exit path,
// including cancellation and emit-stop.
//
// The entered table replaces the old per-query map[int32][]int32: it is a
// dense slice indexed by meta-document ID (the pool is per-Index, so the
// length is fixed at len(ix.set.Metas)), and the touched dirty-list makes
// reset O(metas actually entered) instead of O(all metas) — reuse costs no
// more than the query itself did.
type evalScratch struct {
	run evalRun
	f   frontier4

	// entered[mi] lists the visited entry points of meta document mi;
	// touched lists the mi with a non-empty list, for the O(touched) reset.
	entered [][]int32
	touched []int32

	// Ablation mode (Options.DupSeenSet) seen-sets, allocated on first
	// ablation query and then cleared — not reallocated — between uses.
	seenResults map[xmlgraph.NodeID]struct{}
	seenEntries map[xmlgraph.NodeID]struct{}

	// rbuf backs the ExactOrder result buffer.
	rbuf resultHeap

	// visitFn and emitFn are method values bound once to &run.  The old
	// evaluator rebuilt the visit closure on every frontier pop; binding
	// here means the untraced hot path passes the same func value to every
	// index probe with no per-entry allocation.
	visitFn func(n, ld int32) bool
	emitFn  func(Result) bool
	linkFn  func(i int, d int32) bool
}

// getScratch checks a scratch out of the index's pool, allocating and
// sizing it on first use.  The pool is per-Index, so a live generation swap
// is naturally safe: queries pinned to the old generation keep draining its
// pool while the new generation starts a fresh one, and the old pool is
// collected with the index.
func (ix *Index) getScratch() *evalScratch {
	s, _ := ix.scratch.Get().(*evalScratch)
	if s == nil {
		s = &evalScratch{}
		s.run.s = s
		s.visitFn = s.run.visit
		s.emitFn = s.run.emit
		s.linkFn = s.run.linkVisit
	}
	if len(s.entered) < len(ix.set.Metas) {
		s.entered = make([][]int32, len(ix.set.Metas))
	}
	return s
}

// putScratch resets the scratch and returns it to the pool.  Reset drops
// every reference a query threaded through it (caller callback, tracer,
// per-pop index handles) so the pool never pins client state, and empties
// the containers while keeping their capacity.
func (ix *Index) putScratch(s *evalScratch) {
	s.f.reset()
	for _, mi := range s.touched {
		s.entered[mi] = s.entered[mi][:0]
	}
	s.touched = s.touched[:0]
	s.rbuf = s.rbuf[:0]
	if s.seenResults != nil {
		clear(s.seenResults)
		clear(s.seenEntries)
	}
	s.run = evalRun{s: s}
	ix.scratch.Put(s)
}
