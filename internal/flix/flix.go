// Package flix implements the FliX framework for indexing large,
// heterogeneous collections of interlinked XML documents (Schenkel, EDBT
// 2004 workshops).
//
// The build phase (§4) partitions the collection into meta documents
// (Meta Document Builder), picks the best path-indexing strategy for each
// (Indexing Strategy Selector) and builds the per-meta-document indexes
// (Index Builder).  The query phase (§5) evaluates descendants-or-self path
// expressions with a priority-queue algorithm that consults the local
// indexes and follows the remaining links at run time, streaming results in
// approximately ascending distance order.
package flix

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/meta"
	"repro/internal/partition"
	"repro/internal/pathindex"
	"repro/internal/storage"
	"repro/internal/xmlgraph"
)

// ConfigKind selects one of the predefined framework configurations (§4.3).
type ConfigKind int

const (
	// Naive treats every document as its own meta document.  Useful when
	// documents are large, inter-document links few, and queries rarely
	// cross document boundaries (e.g. the INEX collection).
	Naive ConfigKind = iota
	// MaximalPPO greedily groups documents into maximal tree-shaped
	// partitions indexed with PPO; remaining documents fall back to a
	// graph strategy.  Useful for link-poor collections like DBLP.
	MaximalPPO
	// UnconnectedHOPI partitions the collection into size-bounded groups
	// with few crossing links and indexes each with HOPI — the first two
	// steps of HOPI's divide-and-conquer build.  Useful when most
	// documents contain links.
	UnconnectedHOPI
	// Hybrid combines MaximalPPO on the tree-like regions with
	// UnconnectedHOPI on the densely linked rest — the mixed setting of
	// Figure 1.
	Hybrid
	// Monolithic indexes the whole collection as a single meta document
	// with the strategy named in Config.Strategy ("hopi" by default).
	// It exists to run the paper's comparators (full HOPI, full APEX)
	// through the same machinery.
	Monolithic
	// ElementLevel builds meta documents on the element level (§7 future
	// work): connected elements are grouped into size-bounded partitions
	// regardless of document boundaries, so an oversized document is
	// split and tightly linked documents merge.  Edges crossing a
	// partition — tree edges included — are followed at query run time.
	ElementLevel
)

// String implements fmt.Stringer.
func (k ConfigKind) String() string {
	switch k {
	case Naive:
		return "naive"
	case MaximalPPO:
		return "maximal-ppo"
	case UnconnectedHOPI:
		return "unconnected-hopi"
	case Hybrid:
		return "hybrid"
	case Monolithic:
		return "monolithic"
	case ElementLevel:
		return "element-level"
	default:
		return fmt.Sprintf("ConfigKind(%d)", int(k))
	}
}

// Config tunes the build phase.  The zero value is a usable Hybrid-less
// Naive configuration; DefaultConfig returns the recommended Hybrid setup.
type Config struct {
	// Kind selects the meta-document configuration.
	Kind ConfigKind
	// PartitionSize bounds the element count of UnconnectedHOPI/Hybrid
	// partitions.  Default 5000 (the paper's HOPI-5000).
	PartitionSize int
	// MinTreeDocs is the minimum number of documents for a Hybrid tree
	// partition to stay on the PPO side.  Default 2.
	MinTreeDocs int
	// Load hints the Indexing Strategy Selector about the query load.
	Load meta.QueryLoad
	// Strategy optionally forces a per-meta-document strategy by name
	// ("ppo", "hopi", "apex", "tc"); infeasible choices fall back to the
	// selector's heuristic.  Monolithic uses it as the single strategy.
	Strategy string
}

// DefaultConfig returns the recommended configuration: Hybrid partitions of
// at most 5000 elements.
func DefaultConfig() Config {
	return Config{Kind: Hybrid, PartitionSize: 5000, MinTreeDocs: 2}
}

func (c Config) withDefaults() Config {
	if c.PartitionSize <= 0 {
		c.PartitionSize = 5000
	}
	if c.MinTreeDocs <= 0 {
		c.MinTreeDocs = 2
	}
	return c
}

// BuildOptions tunes how the build phase executes, independently of what
// it builds (Config).  The zero value uses all CPUs.
type BuildOptions struct {
	// Parallelism bounds the number of concurrent per-meta-document index
	// builds in the worker pool; spare budget (e.g. Monolithic's single
	// meta document) flows into strategies with parallel builders such as
	// hopi-dc's per-partition labeling.  0 means GOMAXPROCS; 1 builds
	// serially.  The built index is identical — byte-for-byte under
	// WriteTo — at every parallelism level.
	Parallelism int
}

// Index is a built FliX index over one collection.  It is immutable and
// safe for concurrent queries.
type Index struct {
	coll   *xmlgraph.Collection
	set    *meta.Set
	pis    []pathindex.Index
	cfg    Config
	stats  QueryStats
	bstats BuildStats

	// snap is non-nil when the index is served from an open v2 snapshot
	// (OpenSnapshot*): the pis alias its bytes, so it must stay open for
	// the index's lifetime.  Close releases it.  format records the
	// provenance ("" = heap build, "v1", "v2") for StorageInfo.
	snap   *storage.Snapshot
	format string

	// linkTabs[mi] is the per-meta-document link-distance table (nil when
	// the meta document has no runtime-link sources or its index has no
	// accelerated form): the source-side columns of the distance test,
	// decoded once at build/open so the evaluator's link-follow loop —
	// the hottest per-pop work after the probe itself — sweeps dense
	// plain arrays instead of re-extracting packed values every pop.
	linkTabs []pathindex.LinkTable

	// secRaw holds the pre-compression byte size of each snapshot section
	// (parallel to snap's meta sections; 0 = unknown), parsed from the
	// manifest trailer of compressed snapshots.  StorageInfo turns it into
	// per-kind compression ratios.
	secRaw []int64

	// scratch pools evalScratch values for the query hot path.  It is
	// per-Index so the dense entered table is sized once and live
	// generation swaps stay safe: each generation drains its own pool.
	scratch sync.Pool
}

// Build runs the build phase on a frozen collection with default options
// (all CPUs).
func Build(c *xmlgraph.Collection, cfg Config) (*Index, error) {
	return BuildWithOptions(c, cfg, BuildOptions{})
}

// BuildWithOptions runs the build phase on a frozen collection.
func BuildWithOptions(c *xmlgraph.Collection, cfg Config, opts BuildOptions) (*Index, error) {
	if !c.Frozen() {
		return nil, fmt.Errorf("flix: collection must be frozen before Build")
	}
	cfg = cfg.withDefaults()
	preferred := cfg.Strategy
	var set *meta.Set
	var partTime time.Duration
	switch cfg.Kind {
	case Naive:
		r := partition.Singleton(c)
		partTime = r.Elapsed
		set = meta.Build(c, r)
	case MaximalPPO:
		r := partition.TreePartitions(c)
		partTime = r.Elapsed
		set = meta.Build(c, r)
		if preferred == "" {
			preferred = "ppo"
		}
	case UnconnectedHOPI:
		r := partition.SizeBounded(c, cfg.PartitionSize)
		partTime = r.Elapsed
		set = meta.Build(c, r)
		if preferred == "" {
			preferred = "hopi"
		}
	case Hybrid:
		r := partition.Hybrid(c, cfg.PartitionSize, cfg.MinTreeDocs)
		partTime = r.Elapsed
		set = meta.Build(c, r)
	case Monolithic:
		r := partition.Whole(c)
		partTime = r.Elapsed
		set = meta.Build(c, r)
		if preferred == "" {
			preferred = "hopi"
		}
	case ElementLevel:
		t0 := time.Now()
		assign, parts := partition.ElementLevel(c, cfg.PartitionSize)
		partTime = time.Since(t0)
		set = meta.BuildElements(c, assign, parts)
	default:
		return nil, fmt.Errorf("flix: unknown configuration kind %v", cfg.Kind)
	}
	ix := &Index{coll: c, set: set, cfg: cfg, pis: make([]pathindex.Index, len(set.Metas))}
	ix.bstats.Partition = partTime
	if err := ix.buildIndexes(preferred, opts.Parallelism); err != nil {
		return nil, err
	}
	ix.buildLinkTables()
	return ix, nil
}

// buildLinkTables precomputes the per-meta-document link-distance tables.
// Every constructor (heap build, v1 stream, v2 snapshot) calls it once the
// pis are in place.
func (ix *Index) buildLinkTables() {
	ix.linkTabs = make([]pathindex.LinkTable, len(ix.pis))
	for i, md := range ix.set.Metas {
		ix.linkTabs[i] = pathindex.NewLinkTable(ix.pis[i], md.LinkSources)
	}
}

// workerStats is one build worker's private aggregate.  Workers never share
// it, so recording needs no lock; buildIndexes merges the per-worker
// aggregates deterministically (in worker order) once the pool drains.
type workerStats struct {
	wb     WorkerBuild
	sel    time.Duration
	strats map[string]StrategyBuild
}

func (ws *workerStats) record(name string, tm meta.Timing) {
	if ws.strats == nil {
		ws.strats = make(map[string]StrategyBuild)
	}
	sb := ws.strats[name]
	sb.Metas++
	sb.Total += tm.Build
	if tm.Build > sb.Max {
		sb.Max = tm.Build
	}
	ws.strats[name] = sb
	ws.sel += tm.Select
	ws.wb.Metas++
	ws.wb.Busy += tm.Select + tm.Build
}

// buildIndexes constructs the per-meta-document indexes on a worker pool of
// the given width (<= 0 means all CPUs) — meta documents are independent,
// so this is the natural parallelism of the build phase.  Output is
// deterministic regardless of the pool width: pis[i] is keyed by the stable
// meta-document ordering, every strategy builds identical indexes at every
// parallelism level, and the per-worker statistics are merged in worker
// order after the pool drains.
func (ix *Index) buildIndexes(preferred string, parallelism int) error {
	metas := ix.set.Metas
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	ix.bstats.Parallelism = parallelism
	t0 := time.Now()
	defer func() { ix.bstats.IndexBuild = time.Since(t0) }()
	workers := min(parallelism, len(metas))
	if workers < 1 {
		workers = 1
	}
	// Intra-build budget: when the pool has spare parallelism relative to
	// the number of meta documents (the Monolithic extreme: one meta
	// document on a many-core box), the remainder flows into strategies
	// with parallel builders (hopi-dc's per-partition labeling).
	inner := max(1, parallelism/workers)
	perWorker := make([]workerStats, workers)
	if workers == 1 {
		for i, md := range metas {
			idx, tm, err := meta.BuildIndexParallel(md, ix.cfg.Load, preferred, inner)
			if err != nil {
				return err
			}
			ix.pis[i] = idx
			perWorker[0].record(idx.Name(), tm)
		}
	} else {
		var (
			next    atomic.Int64
			wg      sync.WaitGroup
			errOnce sync.Once
			firstE  error
			failed  atomic.Bool
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ws := &perWorker[w]
				for {
					i := int(next.Add(1)) - 1
					if i >= len(metas) || failed.Load() {
						return
					}
					idx, tm, err := meta.BuildIndexParallel(metas[i], ix.cfg.Load, preferred, inner)
					if err != nil {
						errOnce.Do(func() { firstE = err })
						failed.Store(true)
						return
					}
					ix.pis[i] = idx
					ws.record(idx.Name(), tm)
				}
			}(w)
		}
		wg.Wait()
		if firstE != nil {
			return firstE
		}
	}
	ix.bstats.Strategies = make(map[string]StrategyBuild)
	ix.bstats.Workers = make([]WorkerBuild, 0, workers)
	for w := range perWorker {
		ws := &perWorker[w]
		ix.bstats.Select += ws.sel
		for name, sb := range ws.strats {
			agg := ix.bstats.Strategies[name]
			agg.Metas += sb.Metas
			agg.Total += sb.Total
			if sb.Max > agg.Max {
				agg.Max = sb.Max
			}
			ix.bstats.Strategies[name] = agg
		}
		ix.bstats.Workers = append(ix.bstats.Workers, ws.wb)
	}
	return nil
}

// Collection returns the indexed collection.
func (ix *Index) Collection() *xmlgraph.Collection { return ix.coll }

// Config returns the configuration the index was built with.
func (ix *Index) Config() Config { return ix.cfg }

// NumMetaDocuments returns the number of meta documents.
func (ix *Index) NumMetaDocuments() int { return len(ix.set.Metas) }

// RuntimeLinks returns the number of links followed at query time rather
// than being represented in an index.
func (ix *Index) RuntimeLinks() int {
	n := 0
	for _, md := range ix.set.Metas {
		n += len(md.OutLinks)
	}
	return n
}

// StrategyCounts reports how many meta documents use each strategy.
func (ix *Index) StrategyCounts() map[string]int {
	out := make(map[string]int)
	for _, p := range ix.pis {
		out[p.Name()]++
	}
	return out
}

// Describe returns a one-line human-readable summary.
func (ix *Index) Describe() string {
	counts := ix.StrategyCounts()
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	s := fmt.Sprintf("%s: %d meta documents (", ix.cfg.Kind, len(ix.set.Metas))
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s×%d", n, counts[n])
	}
	return s + fmt.Sprintf("), %d runtime links", ix.RuntimeLinks())
}
