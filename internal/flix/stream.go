package flix

import (
	"math"
	"sync"
	"time"

	"repro/internal/lgraph"
	"repro/internal/meta"
	"repro/internal/obs"
	"repro/internal/pathindex"
	"repro/internal/xmlgraph"
)

// Stream decouples a client from the framework (§3.1): the evaluation runs
// in its own goroutine and inserts results into the stream; the client
// consumes them with Next at its own pace and may abandon the query at any
// time with Close.  A Stream models the paper's "multithreaded architecture
// where the client thread reads from a list in which FliX inserts the
// results".
type Stream struct {
	ch       chan Result
	cancel   chan struct{}
	once     sync.Once
	draining bool
}

// Stream starts the evaluation of start//tag in the background and returns
// the result stream.  tag == "" is the wildcard query start//*.
func (ix *Index) Stream(start xmlgraph.NodeID, tag string, opts Options) *Stream {
	s := &Stream{
		ch:     make(chan Result, 64),
		cancel: make(chan struct{}),
	}
	if opts.Cancel == nil {
		// Close also stops the evaluation between emissions, not only at
		// the next channel send.
		opts.Cancel = s.cancel
	}
	go func() {
		defer close(s.ch)
		ix.Descendants(start, tag, opts, func(r Result) bool {
			select {
			case s.ch <- r:
				return true
			case <-s.cancel:
				return false
			}
		})
	}()
	return s
}

// StreamType starts a background A//B evaluation.
func (ix *Index) StreamType(tagA, tagB string, opts Options) *Stream {
	s := &Stream{
		ch:     make(chan Result, 64),
		cancel: make(chan struct{}),
	}
	if opts.Cancel == nil {
		opts.Cancel = s.cancel
	}
	go func() {
		defer close(s.ch)
		ix.TypeDescendants(tagA, tagB, opts, func(r Result) bool {
			select {
			case s.ch <- r:
				return true
			case <-s.cancel:
				return false
			}
		})
	}()
	return s
}

// Next returns the next result; ok is false when the query has finished or
// the stream was closed.
func (s *Stream) Next() (r Result, ok bool) {
	r, ok = <-s.ch
	return r, ok
}

// Drain collects all remaining results.
func (s *Stream) Drain() []Result {
	var out []Result
	for r := range s.ch {
		out = append(out, r)
	}
	return out
}

// Close abandons the query.  Pending results are discarded; the evaluation
// goroutine stops at its next emission.  Close is idempotent and safe to
// call concurrently with Next.
func (s *Stream) Close() {
	s.once.Do(func() { close(s.cancel) })
	// Drain so the producer is not blocked on a full channel between the
	// cancel check points.
	go func() {
		for range s.ch {
		}
	}()
}

// probeEntry records one admitted entry point: local element le of meta
// document mi.  The probe keeps them in a flat slice instead of the dense
// pooled entered table of evalScratch — a paused probe may live across many
// resumptions, and one probe only ever enters a handful of meta documents,
// so a linear scan beats pinning a collection-sized table per stream.
type probeEntry struct {
	mi, le int32
}

// Probe is a resumable, pull-based variant of Descendants for the ranked
// top-k evaluator: the same Figure 4 priority-queue loop with §5.1
// entry-point duplicate elimination, but paused between distance bands.
// Next(band) runs the frontier only while its minimum distance is within
// band, buffers what the per-meta-document index probes overshoot, and
// emits exactly the results with Dist <= band in exact (dist, node) order.
// The union over growing bands equals the full Descendants result set
// element for element, and after Next(b) every unseen result has
// Dist >= b+1 — the score bound the threshold algorithm needs.
//
// A Probe holds no goroutine and no reference to pooled scratch; it is
// designed to be embedded by value in a pooled caller structure and reused
// via StartProbe after Close.  It is not safe for concurrent use.
type Probe struct {
	ix   *Index
	tag  string
	opts Options

	wildcard bool
	f        entryHeap // frontier of (dist, node), min first
	ents     []probeEntry
	rbuf     resultHeap // results overshooting the current band

	// visitFn is the bound visit method, rebound only when the Probe's
	// address changes (the embedding slice reallocated between queries).
	visitFn func(n, ld int32) bool
	self    *Probe

	// Per-pop context read by visit.
	dist      int32
	mi        int32
	entsLo    int // ents[:entsLo] are the earlier entries of meta mi's scan
	md        *meta.MetaDocument
	idx       pathindex.Index
	tr        *obs.Trace
	prResults int

	started   bool
	truncated bool

	// Per-probe stats deltas, flushed to the shared counters on Close.
	pops, entries, dupDropped, linkHops, emitted int64
}

// StartProbe arms p to evaluate start//tag (empty tag = wildcard) under
// opts.  Any previous state is discarded; buffers retained from an earlier
// Close are reused.  Options.MaxResults and ExactOrder are ignored: a probe
// always emits in exact order and the caller controls how much it pulls.
func (ix *Index) StartProbe(p *Probe, start xmlgraph.NodeID, tag string, opts Options) {
	p.reset()
	p.ix = ix
	p.tag = tag
	p.wildcard = tag == ""
	p.opts = opts
	p.tr = opts.Tracer
	if p.self != p {
		p.self = p
		p.visitFn = p.visit
	}
	p.f.push(FrontierEntry{Node: start, Dist: 0})
	p.started = true
}

// visit handles one node streamed from a meta document's index probe,
// mirroring evalRun.visit but buffering into the band heap.
func (p *Probe) visit(n, ld int32) bool {
	gd := p.dist + ld
	if p.opts.MaxDist > 0 && gd > p.opts.MaxDist {
		return false // ld ascending: rest is farther
	}
	if gd == 0 && !p.opts.IncludeSelf {
		return true
	}
	if p.coveredByEarlier(n) {
		return true // reported below an earlier entry point
	}
	g := p.md.ToGlobal(n)
	if p.tr != nil {
		p.prResults++
		p.tr.Result(p.mi, int64(g), gd)
	}
	p.rbuf.push(Result{Node: g, Dist: gd})
	return true
}

// coveredByEarlier reports whether an entry point admitted before the one
// currently being probed already reaches local node n of the same meta
// document.
func (p *Probe) coveredByEarlier(n int32) bool {
	for _, en := range p.ents[:p.entsLo] {
		if en.mi == p.mi && p.idx.Reachable(en.le, n) {
			return true
		}
	}
	return false
}

// Next resumes the evaluation until every result with Dist <= band has been
// found, then emits exactly those (in ascending (dist, node) order) that
// were not emitted by an earlier, smaller band.  It reports whether the
// probe may still hold unseen results; once it returns false the evaluation
// is exhausted (or cancelled — see Truncated) and only Close remains.
// fn must not retain the Result beyond the call; returning false from fn
// stops the emission but not the evaluation (the rest of the band stays
// buffered for the next call).
func (p *Probe) Next(band int32, fn Emit) bool {
	for len(p.f) > 0 && p.f[0].Dist <= band {
		if canceled(p.opts.Cancel) {
			p.truncated = true
			p.f = p.f[:0]
			break
		}
		it := p.f.pop()
		p.pops++
		if p.tr != nil {
			p.tr.Pop(int64(it.Node), it.Dist)
		}
		if p.opts.MaxDist > 0 && it.Dist > p.opts.MaxDist {
			// Every remaining frontier entry is at least as far.
			p.f = p.f[:0]
			break
		}
		ix := p.ix
		mi := ix.set.MetaOf[it.Node]
		le := ix.set.LocalOf[it.Node]
		md := ix.set.Metas[mi]
		idx := ix.pis[mi]
		p.mi, p.idx, p.entsLo = mi, idx, len(p.ents)
		if p.coveredByEarlier(le) {
			p.dupDropped++
			if p.tr != nil {
				p.tr.DupDrop(mi, int64(it.Node), it.Dist)
			}
			continue // descendants of it were already reported
		}
		p.ents = append(p.ents, probeEntry{mi: mi, le: le})
		p.entries++
		if p.tr != nil {
			p.tr.Entry(mi, idx.Name(), int64(it.Node), it.Dist)
		}

		// Stream matching descendants into the band buffer.  The per-meta
		// index probes are not resumable, so a pop near the band edge may
		// overshoot; the overshoot waits in rbuf for a later band.
		localTag := lgraph.NoTag
		probe := true
		if !p.wildcard {
			localTag = md.Graph.TagOf(p.tag)
			probe = localTag != lgraph.NoTag
		}
		if probe {
			p.dist, p.md = it.Dist, md
			var probeStart time.Time
			if p.tr != nil {
				p.prResults = 0
				probeStart = time.Now()
			}
			if p.wildcard {
				idx.EachReachable(le, p.visitFn)
			} else {
				idx.EachReachableByTag(le, localTag, p.visitFn)
			}
			if p.tr != nil {
				p.tr.Probe(mi, idx.Name(), p.prResults, time.Since(probeStart))
			}
		}

		// Follow reachable runtime links.
		for _, ls := range md.LinkSources {
			d, ok := idx.Distance(le, ls)
			if !ok {
				continue
			}
			nd := it.Dist + d + 1
			if p.opts.MaxDist > 0 && nd > p.opts.MaxDist {
				continue
			}
			for _, cl := range md.LinksFrom(ls) {
				p.f.push(FrontierEntry{Node: cl.To, Dist: nd})
				p.linkHops++
				if p.tr != nil {
					p.tr.LinkHop(mi, int64(cl.To), nd)
				}
			}
		}
	}
	if p.opts.MaxDist > 0 && band >= p.opts.MaxDist {
		// Entries beyond band were not popped, but everything past MaxDist
		// is pruned anyway — the probe is exhausted.
		p.f = p.f[:0]
	}
	// The frontier minimum now exceeds band (or the frontier drained), so
	// no future discovery can land at Dist <= band: the buffered prefix is
	// complete and final.
	for len(p.rbuf) > 0 && p.rbuf[0].Dist <= band {
		r := p.rbuf.popMin()
		p.emitted++
		if !fn(r) {
			break
		}
	}
	return len(p.f) > 0 || len(p.rbuf) > 0
}

// Truncated reports whether the evaluation was cancelled before the
// frontier drained — the emitted results are then a sound but incomplete
// subset.
func (p *Probe) Truncated() bool { return p.truncated }

// Close ends the probe, folding its counters into the index's query
// statistics (a paused probe abandoned by an early top-k stop still counts
// its work).  The buffers stay allocated for reuse via StartProbe.
func (p *Probe) Close() {
	if p.started && p.ix != nil {
		st := &p.ix.stats
		st.Queries.Add(1)
		st.Pops.Add(p.pops)
		st.Entries.Add(p.entries)
		st.DupDropped.Add(p.dupDropped)
		st.LinkHops.Add(p.linkHops)
		st.Results.Add(p.emitted)
	}
	p.reset()
}

// reset clears the probe state while keeping buffer capacity.
func (p *Probe) reset() {
	p.ix = nil
	p.tag = ""
	p.opts = Options{}
	p.tr = nil
	p.md = nil
	p.idx = nil
	p.f = p.f[:0]
	p.ents = p.ents[:0]
	p.rbuf = p.rbuf[:0]
	p.started = false
	p.truncated = false
	p.pops, p.entries, p.dupDropped, p.linkHops, p.emitted = 0, 0, 0, 0, 0
}

// NextBand returns the next distance band in the exponential resume
// schedule (1, 3, 7, 15, ...), clamped to maxDist when positive.  The
// schedule bounds the number of resumptions of one probe to O(log maxDist)
// while keeping the early bands — where the threshold algorithm usually
// stops — cheap.
func NextBand(band, maxDist int32) int32 {
	nb := band*2 + 1
	if nb <= band { // overflow guard
		nb = math.MaxInt32
	}
	if maxDist > 0 && nb > maxDist {
		nb = maxDist
	}
	return nb
}
