package flix

import (
	"sync"

	"repro/internal/xmlgraph"
)

// Stream decouples a client from the framework (§3.1): the evaluation runs
// in its own goroutine and inserts results into the stream; the client
// consumes them with Next at its own pace and may abandon the query at any
// time with Close.  A Stream models the paper's "multithreaded architecture
// where the client thread reads from a list in which FliX inserts the
// results".
type Stream struct {
	ch       chan Result
	cancel   chan struct{}
	once     sync.Once
	draining bool
}

// Stream starts the evaluation of start//tag in the background and returns
// the result stream.  tag == "" is the wildcard query start//*.
func (ix *Index) Stream(start xmlgraph.NodeID, tag string, opts Options) *Stream {
	s := &Stream{
		ch:     make(chan Result, 64),
		cancel: make(chan struct{}),
	}
	if opts.Cancel == nil {
		// Close also stops the evaluation between emissions, not only at
		// the next channel send.
		opts.Cancel = s.cancel
	}
	go func() {
		defer close(s.ch)
		ix.Descendants(start, tag, opts, func(r Result) bool {
			select {
			case s.ch <- r:
				return true
			case <-s.cancel:
				return false
			}
		})
	}()
	return s
}

// StreamType starts a background A//B evaluation.
func (ix *Index) StreamType(tagA, tagB string, opts Options) *Stream {
	s := &Stream{
		ch:     make(chan Result, 64),
		cancel: make(chan struct{}),
	}
	if opts.Cancel == nil {
		opts.Cancel = s.cancel
	}
	go func() {
		defer close(s.ch)
		ix.TypeDescendants(tagA, tagB, opts, func(r Result) bool {
			select {
			case s.ch <- r:
				return true
			case <-s.cancel:
				return false
			}
		})
	}()
	return s
}

// Next returns the next result; ok is false when the query has finished or
// the stream was closed.
func (s *Stream) Next() (r Result, ok bool) {
	r, ok = <-s.ch
	return r, ok
}

// Drain collects all remaining results.
func (s *Stream) Drain() []Result {
	var out []Result
	for r := range s.ch {
		out = append(out, r)
	}
	return out
}

// Close abandons the query.  Pending results are discarded; the evaluation
// goroutine stops at its next emission.  Close is idempotent and safe to
// call concurrently with Next.
func (s *Stream) Close() {
	s.once.Do(func() { close(s.cancel) })
	// Drain so the producer is not blocked on a full channel between the
	// cancel check points.
	go func() {
		for range s.ch {
		}
	}()
}
