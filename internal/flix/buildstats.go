package flix

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/xmlgraph"
)

// BuildStats breaks the build phase (§4) into its timed components:
// partitioning the collection into meta documents, selecting a strategy for
// each, and constructing the per-meta-document indexes.  flixd surfaces it
// via /statsz so operators can see where a rebuild spends its time.
type BuildStats struct {
	// Partition is the time the Meta Document Builder's partitioning
	// took.
	Partition time.Duration
	// Select is the summed time the Indexing Strategy Selector spent
	// across all meta documents.
	Select time.Duration
	// IndexBuild is the wall time of the (parallel) index construction.
	IndexBuild time.Duration
	// Parallelism is the worker-pool width the index build ran with.  An
	// index restored from disk reports 0 (nothing was built).
	Parallelism int
	// Workers reports each build worker's share of the construction, in
	// worker order.  Summed Busy over IndexBuild approximates the build's
	// effective parallel speedup.
	Workers []WorkerBuild
	// Strategies aggregates per-strategy construction effort.
	Strategies map[string]StrategyBuild
}

// WorkerBuild is one build worker's aggregate over the index construction.
type WorkerBuild struct {
	// Metas is the number of meta documents the worker built.
	Metas int
	// Busy is the time the worker spent selecting strategies and
	// building indexes (its wall time minus idle/steal time).
	Busy time.Duration
}

// StrategyBuild aggregates the index builds that used one strategy.
type StrategyBuild struct {
	// Metas is the number of meta documents built with the strategy.
	Metas int
	// Total is the summed build time across those meta documents.
	Total time.Duration
	// Max is the slowest single meta document build.
	Max time.Duration
}

// String renders the build statistics for logs.
func (b BuildStats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "partition %s, select %s, index build %s",
		b.Partition.Round(time.Microsecond), b.Select.Round(time.Microsecond),
		b.IndexBuild.Round(time.Microsecond))
	if b.Parallelism > 0 {
		fmt.Fprintf(&sb, " (parallelism %d, %d workers)", b.Parallelism, len(b.Workers))
	}
	names := make([]string, 0, len(b.Strategies))
	for n := range b.Strategies {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := b.Strategies[n]
		fmt.Fprintf(&sb, " (%s: %d metas, %s total, %s max)",
			n, s.Metas, s.Total.Round(time.Microsecond), s.Max.Round(time.Microsecond))
	}
	return sb.String()
}

// BuildStats returns the build-phase timings recorded when the index was
// constructed.  An index restored with Load reports only zeros apart from
// what the restore path recorded.
func (ix *Index) BuildStats() BuildStats { return ix.bstats }

// StrategyAt returns the name of the indexing strategy serving the meta
// document that contains node n — the label the serving layer attaches to
// its per-strategy latency histograms.
func (ix *Index) StrategyAt(n xmlgraph.NodeID) string {
	if int(n) < 0 || int(n) >= len(ix.set.MetaOf) {
		return ""
	}
	return ix.pis[ix.set.MetaOf[n]].Name()
}
