package flix

import (
	"fmt"
	"sync/atomic"
)

// QueryStats aggregates query-load statistics, the input of the §7
// self-tuning loop: "if it turns out in the query evaluation engine that
// most queries have to follow many links, then the choice of meta documents
// is no longer optimal for the current query load".
//
// Counters are updated atomically by every evaluation, so an Index can be
// shared by concurrent readers while statistics accumulate.
type QueryStats struct {
	// Queries counts completed evaluations.
	Queries atomic.Int64
	// Pops counts priority-queue pops, dropped or not — the raw work the
	// evaluator performs.
	Pops atomic.Int64
	// Entries counts processed entry elements (priority-queue pops that
	// were not dropped by duplicate elimination).
	Entries atomic.Int64
	// DupDropped counts pops discarded by the §5.1 duplicate elimination:
	// an earlier entry point of the same meta document already covered
	// them.  A high DupDropped/Pops ratio means many runtime paths
	// converge on the same regions — wasted frontier work that Entries
	// alone under-reports on link-heavy loads.
	DupDropped atomic.Int64
	// LinkHops counts runtime link traversals (frontier pushes).
	LinkHops atomic.Int64
	// Results counts emitted results.
	Results atomic.Int64
}

// flushQuery folds one finished evaluation's privately accumulated deltas
// into the shared counters.  The evaluator batches per-pop increments in its
// evalRun and flushes once per query — with ~2k pops per serving query the
// old per-pop atomic adds were a measurable cache-line ping-pong between
// concurrent queries.  Counters therefore lag in-flight queries by at most
// one query's worth of work, which Snapshot already documents as acceptable
// skew; completed-query counts are exact, which is what the swap-torture
// and concurrency tests assert.
func (s *QueryStats) flushQuery(r *evalRun) {
	if r.pops != 0 {
		s.Pops.Add(r.pops)
	}
	if r.entries != 0 {
		s.Entries.Add(r.entries)
	}
	if r.dupDropped != 0 {
		s.DupDropped.Add(r.dupDropped)
	}
	if r.linkHops != 0 {
		s.LinkHops.Add(r.linkHops)
	}
	s.Queries.Add(1)
	s.Results.Add(int64(r.emitted))
}

// Snapshot is an immutable copy of the counters.
type Snapshot struct {
	Queries, Pops, Entries, DupDropped, LinkHops, Results int64
}

// Snapshot returns a consistent-enough copy for reporting (individual
// counters are read atomically; cross-counter skew of in-flight queries is
// acceptable for tuning purposes).
func (s *QueryStats) Snapshot() Snapshot {
	return Snapshot{
		Queries:    s.Queries.Load(),
		Pops:       s.Pops.Load(),
		Entries:    s.Entries.Load(),
		DupDropped: s.DupDropped.Load(),
		LinkHops:   s.LinkHops.Load(),
		Results:    s.Results.Load(),
	}
}

// LinkHopsPerQuery returns the average number of runtime link traversals.
func (s Snapshot) LinkHopsPerQuery() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.LinkHops) / float64(s.Queries)
}

// EntriesPerQuery returns the average number of meta-document entries.
func (s Snapshot) EntriesPerQuery() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.Entries) / float64(s.Queries)
}

// PopsPerQuery returns the average number of priority-queue pops.
func (s Snapshot) PopsPerQuery() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.Pops) / float64(s.Queries)
}

// DupDropRatio returns the fraction of pops discarded by duplicate
// elimination — 0 when nothing was popped yet.
func (s Snapshot) DupDropRatio() float64 {
	if s.Pops == 0 {
		return 0
	}
	return float64(s.DupDropped) / float64(s.Pops)
}

// String renders the snapshot for logs.
func (s Snapshot) String() string {
	return fmt.Sprintf("queries=%d pops/q=%.1f entries/q=%.1f dupDrop=%.0f%% linkHops/q=%.1f results=%d",
		s.Queries, s.PopsPerQuery(), s.EntriesPerQuery(), 100*s.DupDropRatio(),
		s.LinkHopsPerQuery(), s.Results)
}

// Stats returns the index's live query statistics.
func (ix *Index) Stats() *QueryStats { return &ix.stats }

// Advice is the outcome of the self-tuning analysis.
type Advice struct {
	// Rebuild reports whether a reconfiguration looks worthwhile.
	Rebuild bool
	// Config is the suggested replacement configuration (meaningful only
	// when Rebuild is true).
	Config Config
	// Reason explains the recommendation.
	Reason string
}

// Advise implements the self-tuning heuristic sketched in §7: when the
// observed query load crosses many meta-document boundaries, the build
// phase "should start again, taking statistics on the query load into
// account" — here by enlarging the partitions (fewer, bigger meta
// documents) or, beyond that, falling back to a monolithic index.  The
// caller decides whether to act by rebuilding with the returned Config.
func (ix *Index) Advise() Advice {
	s := ix.stats.Snapshot()
	if s.Queries < 10 {
		return Advice{Reason: "not enough queries observed"}
	}
	hops := s.LinkHopsPerQuery()
	entries := s.EntriesPerQuery()
	// The duplicate-drop ratio is the second signal: Entries alone
	// under-reports wasted work on link-heavy loads where many runtime
	// paths converge on regions an earlier entry point already covered.
	// Lots of dropped pops mean the frontier keeps re-crossing meta
	// boundaries even when few entries survive.
	drop := s.DupDropRatio()
	dupHeavy := drop > 0.5 && s.PopsPerQuery() > 8
	cfg := ix.cfg
	switch {
	case entries <= 4 && hops <= 16 && !dupHeavy:
		return Advice{Reason: fmt.Sprintf(
			"load is local (%.1f entries/query, %.1f link hops/query, %.0f%% dup-dropped pops); configuration fits",
			entries, hops, 100*drop)}
	case cfg.Kind == Monolithic:
		return Advice{Reason: "already monolithic; nothing coarser to rebuild to"}
	case (cfg.Kind == UnconnectedHOPI || cfg.Kind == Hybrid) && cfg.PartitionSize < 1<<20:
		next := cfg
		next.PartitionSize = cfg.PartitionSize * 4
		reason := fmt.Sprintf(
			"%.1f link hops/query: enlarge partitions %d -> %d to keep queries inside one meta document",
			hops, cfg.PartitionSize, next.PartitionSize)
		if dupHeavy {
			reason = fmt.Sprintf(
				"%.0f%% of %.1f pops/query dropped as duplicates: enlarge partitions %d -> %d so converging link paths stay inside one meta document",
				100*drop, s.PopsPerQuery(), cfg.PartitionSize, next.PartitionSize)
		}
		return Advice{Rebuild: true, Config: next, Reason: reason}
	default:
		return Advice{
			Rebuild: true,
			Config:  Config{Kind: UnconnectedHOPI, PartitionSize: 20000, Load: cfg.Load},
			Reason: fmt.Sprintf(
				"%.1f link hops/query with %.1f entries/query: switch to size-bounded HOPI partitions", hops, entries),
		}
	}
}
