package flix

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"repro/internal/testutil"
	"repro/internal/xmlgraph"
)

// TestRebuildWithAdvisedConfigDifferential is the correctness contract of
// live reindexing, per collection family: drive a query load on a
// deliberately mis-partitioned index, rebuild with whatever configuration
// the §7 self-tuner advises, and require the rebuilt index to return
// byte-identical result sets for the whole query workload.  Distances may
// legitimately shrink (they are upper bounds that tighten as partitions
// grow), so sets compare by node and distances by the oracle bound; the
// exact (node, dist) stream is separately required to be deterministic
// across two builds of the advised configuration — what makes generation
// snapshots reproducible.
func TestRebuildWithAdvisedConfigDifferential(t *testing.T) {
	for _, fam := range testutil.Families() {
		fam := fam
		t.Run(string(fam), func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				coll := testutil.Generate(fam, seed, 25, 18, 50)
				orig, err := Build(coll, Config{Kind: Hybrid, PartitionSize: 40})
				if err != nil {
					t.Fatal(err)
				}
				// The workload is also the comparison suite.
				type q struct {
					start xmlgraph.NodeID
					tag   string
				}
				var load []q
				for s := 0; s < coll.NumNodes(); s += 7 {
					for _, tag := range []string{"a", "b", "c", "d", "e", ""} {
						load = append(load, q{xmlgraph.NodeID(s), tag})
					}
				}
				origSets := make([][]byte, len(load))
				for i, query := range load {
					origSets[i] = setBytes(orig, query.start, query.tag)
				}

				adv := orig.Advise()
				cfg2 := orig.Config()
				if adv.Rebuild {
					cfg2 = adv.Config
				}
				ix2, err := BuildWithOptions(coll, cfg2, BuildOptions{Parallelism: 4})
				if err != nil {
					t.Fatalf("seed %d: rebuilding with advised %+v: %v", seed, cfg2, err)
				}
				for i, query := range load {
					if got := setBytes(ix2, query.start, query.tag); !bytes.Equal(got, origSets[i]) {
						t.Fatalf("seed %d: start %d tag %q: advised rebuild set %s != original %s (advice: %s)",
							seed, query.start, query.tag, got, origSets[i], adv.Reason)
					}
				}

				// Same advised config, built twice: the full exact-order
				// streams must be byte-identical.
				ix2b, err := BuildWithOptions(coll, cfg2, BuildOptions{Parallelism: 2})
				if err != nil {
					t.Fatal(err)
				}
				for _, query := range load {
					a := streamBytes(ix2, query.start, query.tag)
					b := streamBytes(ix2b, query.start, query.tag)
					if !bytes.Equal(a, b) {
						t.Fatalf("seed %d: start %d tag %q: advised config builds disagree: %s vs %s",
							seed, query.start, query.tag, a, b)
					}
				}
			}
		})
	}
}

// setBytes serializes the result node set (order-independent) of one
// descendants query.
func setBytes(ix *Index, start xmlgraph.NodeID, tag string) []byte {
	var nodes []int
	ix.Descendants(start, tag, Options{}, func(r Result) bool {
		nodes = append(nodes, int(r.Node))
		return true
	})
	sort.Ints(nodes)
	var b bytes.Buffer
	for _, n := range nodes {
		fmt.Fprintf(&b, "%d,", n)
	}
	return b.Bytes()
}
