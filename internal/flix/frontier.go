package flix

// frontier4 is the priority queue IE of the Path Expression Evaluator: a
// 4-ary min-heap over (dist, node), concretely typed so that pushes and pops
// move pqItem values directly instead of boxing them through container/heap's
// `any` interface.  A 4-ary layout halves the tree height of a binary heap;
// sift-down compares up to four children per level, which trades a few
// comparisons for far fewer cache-missing levels — the classic d-ary heap
// result, and measurably faster on the link-heavy frontiers where pops
// dominate serving latency.
//
// The backing array lives in the evalScratch pool, so a warm heap performs
// no allocation at all: push appends into retained capacity, pop reslices.
// The pop order is exactly the order container/heap produced over the same
// items — both remove the (dist, node)-minimum of the current contents —
// which frontier_test.go pins with a property test.
type frontier4 struct {
	a []pqItem
}

// pqLess orders frontier entries by (dist, node) — the tie-break the
// evaluator's approximate distance ordering relies on.
func pqLess(x, y pqItem) bool {
	if x.dist != y.dist {
		return x.dist < y.dist
	}
	return x.node < y.node
}

// Len returns the number of queued entries.
func (f *frontier4) Len() int { return len(f.a) }

// reset empties the heap, retaining the backing array.
func (f *frontier4) reset() { f.a = f.a[:0] }

// grow ensures capacity for n more entries before a bulk load.
func (f *frontier4) grow(n int) {
	if need := len(f.a) + n; need > cap(f.a) {
		a := make([]pqItem, len(f.a), need)
		copy(a, f.a)
		f.a = a
	}
}

// push inserts one entry.  A push into an empty heap — the single-start
// Descendants case — is a plain append with no sifting.
func (f *frontier4) push(it pqItem) {
	f.a = append(f.a, it)
	f.siftUp(len(f.a) - 1)
}

// pop removes and returns the (dist, node)-minimum entry.
func (f *frontier4) pop() pqItem {
	a := f.a
	min := a[0]
	last := len(a) - 1
	a[0] = a[last]
	f.a = a[:last]
	if last > 0 {
		f.siftDown(0)
	}
	return min
}

// heapify establishes the heap property over a bulk-appended backing array
// in O(n) — the multi-start TypeDescendants load.
func (f *frontier4) heapify() {
	if len(f.a) < 2 {
		return // Go truncates (0-2)/4 to 0, which would sift an empty heap
	}
	for i := (len(f.a) - 2) / 4; i >= 0; i-- {
		f.siftDown(i)
	}
}

func (f *frontier4) siftUp(i int) {
	a := f.a
	it := a[i]
	for i > 0 {
		p := (i - 1) / 4
		if !pqLess(it, a[p]) {
			break
		}
		a[i] = a[p]
		i = p
	}
	a[i] = it
}

func (f *frontier4) siftDown(i int) {
	a := f.a
	n := len(a)
	it := a[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if pqLess(a[c], a[best]) {
				best = c
			}
		}
		if !pqLess(a[best], it) {
			break
		}
		a[i] = a[best]
		i = best
	}
	a[i] = it
}
