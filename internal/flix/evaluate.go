package flix

import (
	"container/heap"
	"time"

	"repro/internal/lgraph"
	"repro/internal/obs"
	"repro/internal/xmlgraph"
)

// Result is one query answer: a node and the length of the path that
// produced it.  Distances within one meta document are exact; distances of
// paths crossing meta documents are lengths of actual paths found and thus
// upper bounds of the true shortest distance.
type Result struct {
	Node xmlgraph.NodeID
	Dist int32
}

// Options tunes query evaluation.
type Options struct {
	// MaxResults stops the query after that many results (0 = all).
	// This is the top-k early termination of §3.1.
	MaxResults int
	// MaxDist prunes paths longer than this many edges (0 = unlimited) —
	// the client-side relevance threshold of §5.2.
	MaxDist int32
	// ExactOrder buffers results so they are emitted in exactly ascending
	// distance order instead of the approximate per-meta-document blocks
	// of Figure 4 (a §7 "future work" optimization; costs latency).
	ExactOrder bool
	// IncludeSelf reports the start element itself at distance 0 when it
	// matches the query (the "-or-self" part of descendants-or-self).
	IncludeSelf bool
	// DupSeenSet switches duplicate elimination from the paper's
	// entry-point scheme (§5.1) to the "straightforward approach" the
	// paper rejects: remembering every returned result.  It exists for
	// the ablation benchmark; the entry-point scheme needs memory only
	// proportional to the visited meta documents, this one to the result
	// set.  The two schemes may differ on one corner: a start element
	// lying on a cycle is re-reported as its own descendant by the seen
	// set but suppressed by the entry-point scheme.
	DupSeenSet bool
	// Cancel aborts the evaluation when closed (typically a
	// context.Context's Done channel).  The priority-queue loop checks it
	// on every pop, so a canceled query stops promptly instead of
	// exhausting the frontier; results emitted before the cancellation
	// stand.  Nil means the query runs to completion.
	Cancel <-chan struct{}
	// Tracer, when non-nil, receives span-style events from the
	// evaluation: frontier pops with their distance bounds, entry-point
	// admissions and duplicate drops, per-meta-document index probes
	// labeled with the strategy, runtime link hops, result emissions and
	// cache hits/misses.  The nil fast path is a single pointer check per
	// event site, so an untraced query pays nothing.
	Tracer *obs.Trace
}

// canceled reports whether ch (a Done-style channel) has been closed.
func canceled(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// Emit receives one result; returning false cancels the query (the "user
// decides to stop" case of §3.1).
type Emit func(Result) bool

// pqItem is one frontier element of the PEE's priority queue IE.
type pqItem struct {
	dist int32
	node xmlgraph.NodeID
}

// frontier is a binary min-heap over (dist, node).
type frontier []pqItem

func (f frontier) Len() int { return len(f) }
func (f frontier) Less(i, j int) bool {
	if f[i].dist != f[j].dist {
		return f[i].dist < f[j].dist
	}
	return f[i].node < f[j].node
}
func (f frontier) Swap(i, j int) { f[i], f[j] = f[j], f[i] }
func (f *frontier) Push(x any)   { *f = append(*f, x.(pqItem)) }
func (f *frontier) Pop() any {
	old := *f
	n := len(old)
	it := old[n-1]
	*f = old[:n-1]
	return it
}

// Descendants evaluates the path expression start//tag: all elements named
// tag reachable from start, streamed in approximately ascending distance
// order (§5.1, Figure 4).  An empty tag means the wildcard start//*.
func (ix *Index) Descendants(start xmlgraph.NodeID, tag string, opts Options, fn Emit) {
	ix.evaluate([]pqItem{{dist: 0, node: start}}, tag, opts, fn)
}

// TypeDescendants evaluates A//B where only the element types are fixed
// (§5.2): every element named tagA is inserted at priority 0, then the
// regular evaluation runs.  Results may be descendants of several A
// elements; each is reported once with the smallest distance found.
func (ix *Index) TypeDescendants(tagA, tagB string, opts Options, fn Emit) {
	var starts []pqItem
	for _, n := range ix.coll.NodesByTag(tagA) {
		starts = append(starts, pqItem{dist: 0, node: n})
	}
	ix.evaluate(starts, tagB, opts, fn)
}

// evaluate is the Path Expression Evaluator of Figure 4 with the
// entry-point duplicate elimination of §5.1.
//
// The priority queue IE holds intermediate elements ordered by the minimal
// distance any of their descendants can have.  Popping an element e, the
// evaluator (1) drops e when a previously visited entry point of e's meta
// document already reaches e — everything below e has been reported; (2)
// streams e's matching descendants from the meta document's index, skipping
// those below an earlier entry point; (3) pushes the targets of e's
// reachable runtime links at priority dist(e) + dist(e, l) + 1.
func (ix *Index) evaluate(starts []pqItem, tag string, opts Options, fn Emit) {
	tr := opts.Tracer // nil in the common case; every use is nil-checked
	f := make(frontier, 0, len(starts))
	for _, s := range starts {
		f = append(f, s)
	}
	heap.Init(&f)

	entered := make(map[int32][]int32) // meta ID -> visited entry points
	emitted := 0
	stopped := false
	// seenResults implements the ablation mode: exact-identity entry
	// dedup plus a set over every returned result.
	var seenResults map[xmlgraph.NodeID]struct{}
	var seenEntries map[xmlgraph.NodeID]struct{}
	if opts.DupSeenSet {
		seenResults = make(map[xmlgraph.NodeID]struct{})
		seenEntries = make(map[xmlgraph.NodeID]struct{})
	}

	var buffer *resultBuffer
	if opts.ExactOrder {
		buffer = &resultBuffer{}
	}
	emit := func(r Result) bool {
		if !fn(r) {
			return false
		}
		emitted++
		return opts.MaxResults <= 0 || emitted < opts.MaxResults
	}

	for f.Len() > 0 && !stopped {
		if canceled(opts.Cancel) {
			stopped = true
			break
		}
		it := heap.Pop(&f).(pqItem)
		ix.stats.Pops.Add(1)
		if tr != nil {
			tr.Pop(int64(it.node), it.dist)
		}
		if opts.MaxDist > 0 && it.dist > opts.MaxDist {
			break // every remaining frontier entry is at least as far
		}
		if buffer != nil {
			// Anything buffered below the new frontier minimum can
			// never be beaten; flush it in exact order.
			if !buffer.flush(it.dist, emit) {
				stopped = true
				break
			}
		}
		mi := ix.set.MetaOf[it.node]
		le := ix.set.LocalOf[it.node]
		md := ix.set.Metas[mi]
		idx := ix.pis[mi]

		var prev []int32
		if opts.DupSeenSet {
			// Ablation: entries are skipped only on exact identity,
			// results are deduplicated through seenResults below.
			if _, dup := seenEntries[it.node]; dup {
				ix.stats.DupDropped.Add(1)
				if tr != nil {
					tr.DupDrop(mi, int64(it.node), it.dist)
				}
				continue
			}
			seenEntries[it.node] = struct{}{}
		} else {
			prev = entered[mi]
			if coveredBy(idx, prev, le) {
				ix.stats.DupDropped.Add(1)
				if tr != nil {
					tr.DupDrop(mi, int64(it.node), it.dist)
				}
				continue // descendants of e were already reported
			}
			entered[mi] = append(prev, le)
		}
		ix.stats.Entries.Add(1)
		if tr != nil {
			tr.Entry(mi, idx.Name(), int64(it.node), it.dist)
		}

		// (2) stream matching descendants.
		localTag := lgraph.Tag(-1)
		wildcard := tag == ""
		if !wildcard {
			localTag = md.Graph.TagOf(tag)
			if localTag == lgraph.NoTag {
				// Tag absent from this meta document; still follow
				// links below.
				goto links
			}
		}
		{
			// Probe timing is only measured when a tracer is attached;
			// the extra clock reads stay off the untraced hot path.
			var probeStart time.Time
			probeResults := 0
			if tr != nil {
				probeStart = time.Now()
			}
			visit := func(n, ld int32) bool {
				gd := it.dist + ld
				if opts.MaxDist > 0 && gd > opts.MaxDist {
					return false // ld ascending: rest is farther
				}
				if gd == 0 && !opts.IncludeSelf {
					return true
				}
				g := md.ToGlobal(n)
				if opts.DupSeenSet {
					if _, dup := seenResults[g]; dup {
						return true
					}
					seenResults[g] = struct{}{}
				} else if coveredBy(idx, prev, n) {
					return true // reported below an earlier entry
				}
				r := Result{Node: g, Dist: gd}
				if tr != nil {
					// Recorded at production time: an ExactOrder
					// buffer may emit the result to the client later.
					probeResults++
					tr.Result(mi, int64(g), gd)
				}
				if buffer != nil {
					buffer.add(r)
					return true
				}
				if !emit(r) {
					stopped = true
					return false
				}
				return true
			}
			if wildcard {
				idx.EachReachable(le, visit)
			} else {
				idx.EachReachableByTag(le, localTag, visit)
			}
			if tr != nil {
				tr.Probe(mi, idx.Name(), probeResults, time.Since(probeStart))
			}
			if stopped {
				break
			}
		}

	links:
		// (3) follow reachable runtime links.
		for _, ls := range md.LinkSources {
			d, ok := idx.Distance(le, ls)
			if !ok {
				continue
			}
			nd := it.dist + d + 1
			if opts.MaxDist > 0 && nd > opts.MaxDist {
				continue
			}
			for _, cl := range md.LinksFrom(ls) {
				heap.Push(&f, pqItem{dist: nd, node: cl.To})
				ix.stats.LinkHops.Add(1)
				if tr != nil {
					tr.LinkHop(mi, int64(cl.To), nd)
				}
			}
		}
	}
	if buffer != nil && !stopped {
		buffer.flushAll(emit)
	}
	ix.stats.Queries.Add(1)
	ix.stats.Results.Add(int64(emitted))
}

// coveredBy reports whether any entry point in prev reaches local node n.
func coveredBy(idx interface{ Reachable(x, y int32) bool }, prev []int32, n int32) bool {
	for _, p := range prev {
		if idx.Reachable(p, n) {
			return true
		}
	}
	return false
}

// resultBuffer orders results exactly by (dist, node) for
// Options.ExactOrder.
type resultBuffer struct {
	h resultHeap
}

func (b *resultBuffer) add(r Result) {
	heap.Push(&b.h, r)
}

// flush emits every buffered result with distance < bound (no later path
// can be shorter than bound).  It reports false when the emit callback
// cancels.
func (b *resultBuffer) flush(bound int32, emit func(Result) bool) bool {
	for b.h.Len() > 0 && b.h[0].Dist < bound {
		if !emit(heap.Pop(&b.h).(Result)) {
			return false
		}
	}
	return true
}

func (b *resultBuffer) flushAll(emit func(Result) bool) {
	for b.h.Len() > 0 {
		if !emit(heap.Pop(&b.h).(Result)) {
			return
		}
	}
}

type resultHeap []Result

func (h resultHeap) Len() int { return len(h) }
func (h resultHeap) Less(i, j int) bool {
	if h[i].Dist != h[j].Dist {
		return h[i].Dist < h[j].Dist
	}
	return h[i].Node < h[j].Node
}
func (h resultHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x any)   { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() any {
	old := *h
	n := len(old)
	r := old[n-1]
	*h = old[:n-1]
	return r
}
