package flix

import (
	"time"

	"repro/internal/lgraph"
	"repro/internal/meta"
	"repro/internal/obs"
	"repro/internal/pathindex"
	"repro/internal/xmlgraph"
)

// Result is one query answer: a node and the length of the path that
// produced it.  Distances within one meta document are exact; distances of
// paths crossing meta documents are lengths of actual paths found and thus
// upper bounds of the true shortest distance.
type Result struct {
	Node xmlgraph.NodeID
	Dist int32
}

// Options tunes query evaluation.
type Options struct {
	// MaxResults stops the query after that many results (0 = all).
	// This is the top-k early termination of §3.1.
	MaxResults int
	// MaxDist prunes paths longer than this many edges (0 = unlimited) —
	// the client-side relevance threshold of §5.2.
	MaxDist int32
	// ExactOrder buffers results so they are emitted in exactly ascending
	// distance order instead of the approximate per-meta-document blocks
	// of Figure 4 (a §7 "future work" optimization; costs latency).
	ExactOrder bool
	// IncludeSelf reports the start element itself at distance 0 when it
	// matches the query (the "-or-self" part of descendants-or-self).
	IncludeSelf bool
	// DupSeenSet switches duplicate elimination from the paper's
	// entry-point scheme (§5.1) to the "straightforward approach" the
	// paper rejects: remembering every returned result.  It exists for
	// the ablation benchmark; the entry-point scheme needs memory only
	// proportional to the visited meta documents, this one to the result
	// set.  The two schemes may differ on one corner: a start element
	// lying on a cycle is re-reported as its own descendant by the seen
	// set but suppressed by the entry-point scheme.
	DupSeenSet bool
	// Cancel aborts the evaluation when closed (typically a
	// context.Context's Done channel).  The priority-queue loop checks it
	// on every pop, so a canceled query stops promptly instead of
	// exhausting the frontier; results emitted before the cancellation
	// stand.  Nil means the query runs to completion.
	Cancel <-chan struct{}
	// Tracer, when non-nil, receives span-style events from the
	// evaluation: frontier pops with their distance bounds, entry-point
	// admissions and duplicate drops, per-meta-document index probes
	// labeled with the strategy, runtime link hops, result emissions and
	// cache hits/misses.  The nil fast path is a single pointer check per
	// event site, so an untraced query pays nothing.
	Tracer *obs.Trace
}

// canceled reports whether ch (a Done-style channel) has been closed.
func canceled(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// Emit receives one result; returning false cancels the query (the "user
// decides to stop" case of §3.1).
type Emit func(Result) bool

// pqItem is one frontier element of the PEE's priority queue IE.
type pqItem struct {
	dist int32
	node xmlgraph.NodeID
}

// Descendants evaluates the path expression start//tag: all elements named
// tag reachable from start, streamed in approximately ascending distance
// order (§5.1, Figure 4).  An empty tag means the wildcard start//*.
func (ix *Index) Descendants(start xmlgraph.NodeID, tag string, opts Options, fn Emit) {
	s := ix.getScratch()
	// Single-start construction is a plain append into the empty pooled
	// heap — O(1), no heap.Init pass over a one-element slice.
	s.f.push(pqItem{dist: 0, node: start})
	ix.evaluate(s, tag, opts, fn)
}

// TypeDescendants evaluates A//B where only the element types are fixed
// (§5.2): every element named tagA is inserted at priority 0, then the
// regular evaluation runs.  Results may be descendants of several A
// elements; each is reported once with the smallest distance found.
func (ix *Index) TypeDescendants(tagA, tagB string, opts Options, fn Emit) {
	s := ix.getScratch()
	nodes := ix.coll.NodesByTag(tagA)
	s.f.grow(len(nodes))
	for _, n := range nodes {
		s.f.a = append(s.f.a, pqItem{dist: 0, node: n})
	}
	s.f.heapify()
	ix.evaluate(s, tagB, opts, fn)
}

// evalRun is the per-query state of one evaluation, embedded in the pooled
// evalScratch so that checking out a warm scratch re-arms a complete
// evaluator with zero allocation.  The per-pop fields exist so that visit —
// the old per-pop closure, now a method bound once per scratch lifetime —
// can read the popped entry's context without a fresh closure per frontier
// entry.
type evalRun struct {
	ix   *Index
	s    *evalScratch
	opts Options
	fn   Emit
	tr   *obs.Trace

	// Per-pop context read by visit.
	dist int32
	mi   int32
	prev []int32
	md   *meta.MetaDocument
	idx  pathindex.Index

	probeResults int
	emitted      int
	stopped      bool
	exact        bool

	// Per-query stats deltas, flushed to the shared atomic counters once
	// at query end instead of contending on every pop.
	pops, entries, dupDropped, linkHops int64
}

// visit handles one node streamed from a meta document's index probe.  It
// is the hot inner callback: the old evaluator rebuilt it as a closure on
// every frontier pop, this version is a method whose bound func value lives
// in the scratch pool.
func (r *evalRun) visit(n, ld int32) bool {
	gd := r.dist + ld
	if r.opts.MaxDist > 0 && gd > r.opts.MaxDist {
		return false // ld ascending: rest is farther
	}
	if gd == 0 && !r.opts.IncludeSelf {
		return true
	}
	g := r.md.ToGlobal(n)
	if r.opts.DupSeenSet {
		if _, dup := r.s.seenResults[g]; dup {
			return true
		}
		r.s.seenResults[g] = struct{}{}
	} else if coveredBy(r.idx, r.prev, n) {
		return true // reported below an earlier entry
	}
	res := Result{Node: g, Dist: gd}
	if r.tr != nil {
		// Recorded at production time: an ExactOrder buffer may emit the
		// result to the client later.
		r.probeResults++
		r.tr.Result(r.mi, int64(g), gd)
	}
	if r.exact {
		r.s.rbuf.push(res)
		return true
	}
	if !r.emit(res) {
		r.stopped = true
		return false
	}
	return true
}

// linkVisit handles one reachable runtime-link source streamed from the
// batched pathindex.LinkDistances sweep: it pushes the link targets at
// priority dist(e) + dist(e, l) + 1.  Like visit it is a method bound once
// per scratch lifetime so the link-follow loop allocates nothing.
func (r *evalRun) linkVisit(i int, d int32) bool {
	nd := r.dist + d + 1
	if r.opts.MaxDist > 0 && nd > r.opts.MaxDist {
		return true
	}
	for _, cl := range r.md.LinksFrom(r.md.LinkSources[i]) {
		r.s.f.push(pqItem{dist: nd, node: cl.To})
		r.linkHops++
		if r.tr != nil {
			r.tr.LinkHop(r.mi, int64(cl.To), nd)
		}
	}
	return true
}

// emit forwards one result to the client callback and enforces MaxResults.
func (r *evalRun) emit(res Result) bool {
	if !r.fn(res) {
		return false
	}
	r.emitted++
	return r.opts.MaxResults <= 0 || r.emitted < r.opts.MaxResults
}

// evaluate is the Path Expression Evaluator of Figure 4 with the
// entry-point duplicate elimination of §5.1, rebuilt to be allocation-free
// in steady state: the frontier, the entered table, and the result buffer
// come from the scratch pool (returned on every exit path, including
// cancellation), and the per-pop visit callback is a pre-bound method.
//
// The priority queue IE holds intermediate elements ordered by the minimal
// distance any of their descendants can have.  Popping an element e, the
// evaluator (1) drops e when a previously visited entry point of e's meta
// document already reaches e — everything below e has been reported; (2)
// streams e's matching descendants from the meta document's index, skipping
// those below an earlier entry point; (3) pushes the targets of e's
// reachable runtime links at priority dist(e) + dist(e, l) + 1.
//
// The caller loads the starts into s.f; evaluate owns s from here on and
// returns it to the pool when the query ends.
func (ix *Index) evaluate(s *evalScratch, tag string, opts Options, fn Emit) {
	defer ix.putScratch(s)
	r := &s.run
	r.ix = ix
	r.opts = opts
	r.fn = fn
	r.tr = opts.Tracer // nil in the common case; every use is nil-checked
	r.exact = opts.ExactOrder
	if opts.DupSeenSet && s.seenResults == nil {
		s.seenResults = make(map[xmlgraph.NodeID]struct{})
		s.seenEntries = make(map[xmlgraph.NodeID]struct{})
	}

	wildcard := tag == ""
	for s.f.Len() > 0 && !r.stopped {
		if canceled(opts.Cancel) {
			r.stopped = true
			break
		}
		it := s.f.pop()
		r.pops++
		if r.tr != nil {
			r.tr.Pop(int64(it.node), it.dist)
		}
		if opts.MaxDist > 0 && it.dist > opts.MaxDist {
			break // every remaining frontier entry is at least as far
		}
		if r.exact {
			// Anything buffered below the new frontier minimum can
			// never be beaten; flush it in exact order.
			if !s.rbuf.flushBelow(it.dist, s.emitFn) {
				r.stopped = true
				break
			}
		}
		mi := ix.set.MetaOf[it.node]
		le := ix.set.LocalOf[it.node]
		md := ix.set.Metas[mi]
		idx := ix.pis[mi]

		var prev []int32
		if opts.DupSeenSet {
			// Ablation: entries are skipped only on exact identity,
			// results are deduplicated through seenResults in visit.
			if _, dup := s.seenEntries[it.node]; dup {
				r.dupDropped++
				if r.tr != nil {
					r.tr.DupDrop(mi, int64(it.node), it.dist)
				}
				continue
			}
			s.seenEntries[it.node] = struct{}{}
		} else {
			prev = s.entered[mi]
			if coveredBy(idx, prev, le) {
				r.dupDropped++
				if r.tr != nil {
					r.tr.DupDrop(mi, int64(it.node), it.dist)
				}
				continue // descendants of e were already reported
			}
			if len(prev) == 0 {
				s.touched = append(s.touched, mi)
			}
			s.entered[mi] = append(prev, le)
		}
		r.entries++
		if r.tr != nil {
			r.tr.Entry(mi, idx.Name(), int64(it.node), it.dist)
		}

		// (2) stream matching descendants.
		localTag := lgraph.NoTag
		probe := true
		if !wildcard {
			localTag = md.Graph.TagOf(tag)
			// Tag absent from this meta document: skip the probe but
			// still follow links below.
			probe = localTag != lgraph.NoTag
		}
		// Arm the per-pop context visit and linkVisit read.  prev is the
		// pre-append entry list: results below an *earlier* entry point
		// were already reported, the current entry covers the probe
		// itself.
		r.dist, r.mi, r.prev, r.md, r.idx = it.dist, mi, prev, md, idx
		if probe {
			// Probe timing is only measured when a tracer is attached;
			// the extra clock reads stay off the untraced hot path.
			var probeStart time.Time
			if r.tr != nil {
				r.probeResults = 0
				probeStart = time.Now()
			}
			if wildcard {
				idx.EachReachable(le, s.visitFn)
			} else {
				idx.EachReachableByTag(le, localTag, s.visitFn)
			}
			if r.tr != nil {
				r.tr.Probe(mi, idx.Name(), r.probeResults, time.Since(probeStart))
			}
			if r.stopped {
				break
			}
		}

		// (3) follow reachable runtime links — via the precomputed
		// per-meta-document table when the index has one (source columns
		// decoded once at build/open), else the batched distance sweep.
		if len(md.LinkSources) > 0 {
			if lt := ix.linkTabs[mi]; lt != nil {
				lt.LinkDistancesTo(le, s.linkFn)
			} else {
				pathindex.LinkDistances(idx, le, md.LinkSources, s.linkFn)
			}
		}
	}
	if r.exact && !r.stopped {
		s.rbuf.flushAll(s.emitFn)
	}
	ix.stats.flushQuery(r)
}

// coveredBy reports whether any entry point in prev reaches local node n.
func coveredBy(idx pathindex.Index, prev []int32, n int32) bool {
	for _, p := range prev {
		if idx.Reachable(p, n) {
			return true
		}
	}
	return false
}

// resultHeap orders results exactly by (dist, node) for Options.ExactOrder.
// Like the frontier it is a concretely-typed hand-rolled heap (binary: the
// buffer is usually small) whose backing array lives in the scratch pool.
type resultHeap []Result

func resLess(x, y Result) bool {
	if x.Dist != y.Dist {
		return x.Dist < y.Dist
	}
	return x.Node < y.Node
}

func (h *resultHeap) push(r Result) {
	a := append(*h, r)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !resLess(a[i], a[p]) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
	*h = a
}

func (h *resultHeap) popMin() Result {
	a := *h
	min := a[0]
	last := len(a) - 1
	a[0] = a[last]
	a = a[:last]
	*h = a
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		smallest := i
		if l < len(a) && resLess(a[l], a[smallest]) {
			smallest = l
		}
		if rr < len(a) && resLess(a[rr], a[smallest]) {
			smallest = rr
		}
		if smallest == i {
			break
		}
		a[i], a[smallest] = a[smallest], a[i]
		i = smallest
	}
	return min
}

// flushBelow emits every buffered result with distance < bound (no later
// path can be shorter than bound).  It reports false when the emit callback
// cancels.
func (h *resultHeap) flushBelow(bound int32, emit func(Result) bool) bool {
	for len(*h) > 0 && (*h)[0].Dist < bound {
		if !emit(h.popMin()) {
			return false
		}
	}
	return true
}

func (h *resultHeap) flushAll(emit func(Result) bool) {
	for len(*h) > 0 {
		if !emit(h.popMin()) {
			return
		}
	}
}
