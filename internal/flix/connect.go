package flix

import (
	"repro/internal/pathindex"
	"repro/internal/xmlgraph"
)

// Connected tests whether b is reachable from a (§5.2) and returns the
// length of the discovered path.  maxDist bounds the search depth (0 =
// unlimited); the paper recommends a threshold because the client derives
// relevance from path length and can cut off negligible results.
//
// Within one meta document the returned distance is exact; across meta
// documents it is the length of the shortest path the evaluator discovers,
// an upper bound of the true shortest distance.
func (ix *Index) Connected(a, b xmlgraph.NodeID, maxDist int32) (int32, bool) {
	return ix.ConnectedOpts(a, b, Options{MaxDist: maxDist})
}

// ConnectedOpts is Connected with the full option set: opts.MaxDist bounds
// the search depth and opts.Cancel aborts it (a canceled test reports "not
// connected" for whatever it had not yet discovered).  The remaining Options
// fields do not apply to connection tests and are ignored.
//
// Like the descendants evaluator it runs on pooled scratch state — the
// frontier and the entered table come from the index's pool and go back on
// every exit path.
func (ix *Index) ConnectedOpts(a, b xmlgraph.NodeID, opts Options) (int32, bool) {
	maxDist := opts.MaxDist
	if a == b {
		return 0, true
	}
	s := ix.getScratch()
	defer ix.putScratch(s)
	s.f.push(pqItem{dist: 0, node: a})
	tmi := ix.set.MetaOf[b]
	tlocal := ix.set.LocalOf[b]
	best := int32(-1)

	for s.f.Len() > 0 {
		if canceled(opts.Cancel) {
			break
		}
		it := s.f.pop()
		if maxDist > 0 && it.dist > maxDist {
			break
		}
		if best >= 0 && it.dist >= best {
			break // no remaining path can improve on best
		}
		mi := ix.set.MetaOf[it.node]
		le := ix.set.LocalOf[it.node]
		md := ix.set.Metas[mi]
		idx := ix.pis[mi]
		prev := s.entered[mi]
		if coveredBy(idx, prev, le) {
			continue
		}
		if len(prev) == 0 {
			s.touched = append(s.touched, mi)
		}
		s.entered[mi] = append(prev, le)

		if mi == tmi {
			if d, ok := idx.Distance(le, tlocal); ok {
				if total := it.dist + d; best < 0 || total < best {
					best = total
				}
			}
		}
		for _, ls := range md.LinkSources {
			d, ok := idx.Distance(le, ls)
			if !ok {
				continue
			}
			nd := it.dist + d + 1
			if maxDist > 0 && nd > maxDist {
				continue
			}
			if best >= 0 && nd >= best {
				continue
			}
			for _, cl := range md.LinksFrom(ls) {
				s.f.push(pqItem{dist: nd, node: cl.To})
			}
		}
	}
	if best < 0 || (maxDist > 0 && best > maxDist) {
		return 0, false
	}
	return best, true
}

// ConnectedBidirectional runs the §5.2 optimization: one evaluation walks
// forward from a while a second walks backward from b; the searches meet in
// the middle.  Depending on the document structure either direction may
// dominate, so the two frontiers are expanded alternately, smaller first.
func (ix *Index) ConnectedBidirectional(a, b xmlgraph.NodeID, maxDist int32) (int32, bool) {
	if a == b {
		return 0, true
	}
	fwd := &halfSearch{ix: ix, forward: true, entered: make(map[int32][]int32)}
	bwd := &halfSearch{ix: ix, forward: false, entered: make(map[int32][]int32)}
	fwd.f.push(pqItem{dist: 0, node: a})
	bwd.f.push(pqItem{dist: 0, node: b})

	best := int32(-1)
	for fwd.f.Len() > 0 || bwd.f.Len() > 0 {
		// Stop when even the optimistic combination cannot improve.
		lo := int32(0)
		if fwd.f.Len() > 0 {
			lo += fwd.f.a[0].dist
		}
		if bwd.f.Len() > 0 {
			lo += bwd.f.a[0].dist
		}
		if best >= 0 && lo >= best {
			break
		}
		if maxDist > 0 && lo > maxDist {
			break
		}
		side := fwd
		other := bwd
		if fwd.f.Len() == 0 || (bwd.f.Len() > 0 && bwd.f.a[0].dist < fwd.f.a[0].dist) {
			side, other = bwd, fwd
		}
		if side.f.Len() == 0 {
			break
		}
		if d, ok := side.step(other); ok {
			if best < 0 || d < best {
				best = d
			}
		}
	}
	if best < 0 || (maxDist > 0 && best > maxDist) {
		return 0, false
	}
	return best, true
}

// halfSearch is one direction of the bidirectional connection test.
type halfSearch struct {
	ix      *Index
	forward bool
	f       frontier4
	// entered records visited entry points per meta document along with
	// their distances from this side's origin.
	entered map[int32][]int32
	dists   []entryDist
}

type entryDist struct {
	meta  int32
	local int32
	dist  int32
}

// step pops one entry, records it, checks for a meeting with the other
// side's recorded entries (a path origin -> e -> p -> other origin), and
// expands the runtime links of this side.  It returns a candidate total
// distance when the frontiers meet.
func (h *halfSearch) step(other *halfSearch) (int32, bool) {
	ix := h.ix
	it := h.f.pop()
	mi := ix.set.MetaOf[it.node]
	le := ix.set.LocalOf[it.node]
	md := ix.set.Metas[mi]
	idx := ix.pis[mi]
	prev := h.entered[mi]
	if h.covered(idx, prev, le) {
		return 0, false
	}
	h.entered[mi] = append(prev, le)
	h.dists = append(h.dists, entryDist{meta: mi, local: le, dist: it.dist})

	// Meeting check against every entry of the other side in this meta
	// document.  For the forward side, a path runs le -> p; for the
	// backward side, p -> le.
	best := int32(-1)
	for _, ed := range other.dists {
		if ed.meta != mi {
			continue
		}
		var d int32
		var ok bool
		if h.forward {
			d, ok = idx.Distance(le, ed.local)
		} else {
			d, ok = idx.Distance(ed.local, le)
		}
		if ok {
			if total := it.dist + d + ed.dist; best < 0 || total < best {
				best = total
			}
		}
	}

	if h.forward {
		for _, ls := range md.LinkSources {
			d, ok := idx.Distance(le, ls)
			if !ok {
				continue
			}
			for _, cl := range md.LinksFrom(ls) {
				h.f.push(pqItem{dist: it.dist + d + 1, node: cl.To})
			}
		}
	} else {
		for _, il := range md.InLinks {
			d, ok := idx.Distance(il.ToLocal, le)
			if !ok {
				continue
			}
			h.f.push(pqItem{dist: it.dist + d + 1, node: il.From})
		}
	}
	return best, best >= 0
}

// covered is coveredBy with direction awareness: for the backward side, an
// entry p covers e when e reaches p (everything above e was explored).
func (h *halfSearch) covered(idx pathindex.Index, prev []int32, n int32) bool {
	for _, p := range prev {
		if h.forward {
			if idx.Reachable(p, n) {
				return true
			}
		} else if idx.Reachable(n, p) {
			return true
		}
	}
	return false
}

// Ancestors evaluates the reverse axis start//ancestor::tag (§5.1 notes the
// same algorithm applies to ancestors): all elements named tag from which
// start is reachable, in approximately ascending distance order.  An empty
// tag means any ancestor.  The frontier and entered table come from the
// scratch pool; the reverse axis is rare enough that its visit callback
// stays a plain closure.
func (ix *Index) Ancestors(start xmlgraph.NodeID, tag string, opts Options, fn Emit) {
	s := ix.getScratch()
	defer ix.putScratch(s)
	s.f.push(pqItem{dist: 0, node: start})
	emitted := 0

	for s.f.Len() > 0 {
		if canceled(opts.Cancel) {
			return
		}
		it := s.f.pop()
		if opts.MaxDist > 0 && it.dist > opts.MaxDist {
			break
		}
		mi := ix.set.MetaOf[it.node]
		le := ix.set.LocalOf[it.node]
		md := ix.set.Metas[mi]
		idx := ix.pis[mi]
		prev := s.entered[mi]
		// Reverse coverage: p covers e when e reaches p.
		skip := false
		for _, p := range prev {
			if idx.Reachable(le, p) {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		if len(prev) == 0 {
			s.touched = append(s.touched, mi)
		}
		s.entered[mi] = append(prev, le)

		stop := false
		visit := func(n, ld int32) bool {
			gd := it.dist + ld
			if opts.MaxDist > 0 && gd > opts.MaxDist {
				return false
			}
			if gd == 0 && !opts.IncludeSelf {
				return true
			}
			for _, p := range prev {
				if idx.Reachable(n, p) {
					return true
				}
			}
			if !fn(Result{Node: md.ToGlobal(n), Dist: gd}) {
				stop = true
				return false
			}
			emitted++
			if opts.MaxResults > 0 && emitted >= opts.MaxResults {
				stop = true
				return false
			}
			return true
		}
		if tag == "" {
			idx.EachReaching(le, visit)
		} else if lt := md.Graph.TagOf(tag); lt >= 0 {
			idx.EachReachingByTag(le, lt, visit)
		}
		if stop {
			return
		}

		// Follow incoming runtime links: any in-link target that reaches
		// e extends the ancestor path into another meta document.
		for _, il := range md.InLinks {
			d, ok := idx.Distance(il.ToLocal, le)
			if !ok {
				continue
			}
			nd := it.dist + d + 1
			if opts.MaxDist > 0 && nd > opts.MaxDist {
				continue
			}
			s.f.push(pqItem{dist: nd, node: il.From})
		}
	}
}
