package flix

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"

	"repro/internal/storage"
	"repro/internal/testutil"
	"repro/internal/xmlgraph"
)

const goldenV2CPath = "testdata/golden-v2c.flix"

// compressOpts is the configuration the compressed fixtures and the
// -snapshot-compress flag use: defaults all the way down.
var compressOpts = SnapshotV2Options{Compress: true}

// TestSnapshotCompressedParity mirrors TestSnapshotV2Parity with
// compression enabled: for every collection family and every registered
// strategy, the heap index and the compressed snapshot reopened from its
// bytes must serve identical result streams and cost identical evaluator
// work — whether a given section actually compressed or fell back to raw.
func TestSnapshotCompressedParity(t *testing.T) {
	for _, fam := range testutil.Families() {
		for _, strat := range registryStrategies() {
			t.Run(string(fam)+"/"+strat, func(t *testing.T) {
				c := testutil.Generate(fam, 5, 10, 12, 18)
				cfg := Config{Kind: Hybrid, PartitionSize: 50, Strategy: strat}
				heap, err := BuildWithOptions(c, cfg, BuildOptions{Parallelism: 1})
				if err != nil {
					t.Fatal(err)
				}
				var serial, parallel bytes.Buffer
				if _, err := heap.WriteSnapshotV2With(&serial, compressOpts); err != nil {
					t.Fatal(err)
				}
				par, err := BuildWithOptions(c, cfg, BuildOptions{Parallelism: 0})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := par.WriteSnapshotV2With(&parallel, compressOpts); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
					t.Fatal("serial and parallel builds wrote different compressed snapshots")
				}
				snap, err := OpenSnapshotBytes(c, serial.Bytes())
				if err != nil {
					t.Fatal(err)
				}
				defer snap.Close()
				if snap.Describe() != heap.Describe() {
					t.Fatalf("snapshot Describe = %q, heap = %q", snap.Describe(), heap.Describe())
				}
				hb := queryFingerprint(heap, c)
				sb := queryFingerprint(snap, c)
				if !bytes.Equal(hb, sb) {
					t.Fatalf("query fingerprints diverge:\nheap %s\nsnap %s", firstDiff(hb, sb), firstDiff(sb, hb))
				}
				if hs, ss := heap.Stats().Snapshot(), snap.Stats().Snapshot(); hs != ss {
					t.Fatalf("EvalStats diverge: heap %+v, snapshot %+v", hs, ss)
				}
				// Reopening a compressed snapshot and re-persisting it
				// compressed must reproduce the image byte for byte (the
				// already-compressed sections pass through verbatim).
				var again bytes.Buffer
				if _, err := snap.WriteSnapshotV2With(&again, compressOpts); err != nil {
					t.Fatal(err)
				}
				openAgain, err := OpenSnapshotBytes(c, again.Bytes())
				if err != nil {
					t.Fatal(err)
				}
				defer openAgain.Close()
				if ab := queryFingerprint(openAgain, c); !bytes.Equal(hb, ab) {
					t.Fatal("re-persisted compressed snapshot diverges")
				}
			})
		}
	}
}

// TestSnapshotCompressedGoldenFixture pins the compressed container layout
// byte for byte, checks the compressed fixture actually beats the raw v2
// fixture on size, and verifies the storage accounting that rides in the
// manifest trailer.
//
// Regenerate (after an intentional, version-bumped format change) with:
//
//	UPDATE_GOLDEN=1 go test -run TestSnapshotCompressedGoldenFixture ./internal/flix
func TestSnapshotCompressedGoldenFixture(t *testing.T) {
	coll := goldenCollection()
	fresh, err := Build(coll, goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := fresh.WriteSnapshotV2With(&buf, compressOpts); err != nil {
		t.Fatal(err)
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenV2CPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenV2CPath, buf.Len())
	}
	raw, err := os.ReadFile(goldenV2CPath)
	if err != nil {
		t.Fatalf("reading golden fixture (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(raw, buf.Bytes()) {
		t.Fatalf("fresh compressed write (%d bytes) differs from committed fixture (%d bytes); "+
			"format changes must bump storage.SnapshotVersion", buf.Len(), len(raw))
	}
	rawV2, err := os.ReadFile(goldenV2Path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) >= len(rawV2) {
		t.Fatalf("compressed fixture (%d bytes) is no smaller than the raw v2 fixture (%d bytes)", len(raw), len(rawV2))
	}

	ix, err := OpenSnapshotBytes(coll, raw)
	if err != nil {
		t.Fatalf("opening golden fixture: %v", err)
	}
	defer ix.Close()
	for start := 0; start < coll.NumNodes(); start += 7 {
		for _, tag := range []string{"a", "b", "c", "d", "e", ""} {
			want := streamBytes(fresh, xmlgraph.NodeID(start), tag)
			got := streamBytes(ix, xmlgraph.NodeID(start), tag)
			if !bytes.Equal(want, got) {
				t.Fatalf("start %d tag %q: fixture stream %s != fresh %s", start, tag, got, want)
			}
		}
	}

	si := ix.StorageInfo()
	if !si.Compressed {
		t.Fatal("StorageInfo.Compressed = false for the compressed fixture")
	}
	if si.SizeBytes != int64(len(raw)) {
		t.Errorf("StorageInfo.SizeBytes = %d, file is %d", si.SizeBytes, len(raw))
	}
	if sz, err := ix.SizeBytes(); err != nil || sz != int64(len(raw)) {
		t.Errorf("SizeBytes() = %d, %v; want the container size %d", sz, err, len(raw))
	}
	var sawCompressed bool
	var total int64
	for _, st := range si.Sections {
		total += st.Bytes
		switch st.Kind {
		case "ppo-c", "hopi-c":
			sawCompressed = true
			if st.RawBytes <= st.Bytes {
				t.Errorf("section kind %s: RawBytes %d not larger than Bytes %d", st.Kind, st.RawBytes, st.Bytes)
			}
			if st.Ratio <= 1 {
				t.Errorf("section kind %s: Ratio = %v", st.Kind, st.Ratio)
			}
		}
	}
	if !sawCompressed {
		t.Fatal("no compressed section kinds in StorageInfo.Sections")
	}
	if total >= int64(len(raw)) {
		t.Errorf("section payloads sum to %d, whole file is %d", total, len(raw))
	}

	// The compressed container still re-emits the exact committed v1
	// stream: the probe views decode back to canonical form.
	rawV1, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	var back bytes.Buffer
	if _, err := ix.WriteTo(&back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Bytes(), rawV1) {
		t.Fatal("WriteTo from the compressed snapshot does not reproduce the committed v1 bytes")
	}
}

// TestSnapshotCompressedCorruptionMatrix extends the corruption matrix to
// the compressed fixture: every truncation and unresealed flip must be
// rejected with a typed error, and resealed damage — flips that pass the
// whole-file checksum and land in the bit-packed block directories or
// varint blobs — must either be rejected by section validation or yield an
// index whose probes stay in bounds.  Never a panic, in either case.
func TestSnapshotCompressedCorruptionMatrix(t *testing.T) {
	coll := goldenCollection()
	raw, err := os.ReadFile(goldenV2CPath)
	if err != nil {
		t.Fatalf("reading golden fixture (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	snap, err := storage.OpenSnapshotBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	mustReject := func(name string, img []byte) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: OpenSnapshotBytes panicked: %v", name, r)
			}
		}()
		ix, err := OpenSnapshotBytes(coll, img)
		if err == nil {
			t.Fatalf("%s: accepted", name)
		}
		if ix != nil {
			t.Fatalf("%s: returned an index alongside %v", name, err)
		}
		if !errors.Is(err, ErrSnapshotCorrupt) && !errors.Is(err, ErrSnapshotVersion) {
			t.Fatalf("%s: untyped error %v", name, err)
		}
	}

	// Truncations: envelope edges, every section boundary, and mid-block
	// inside every compressed payload.
	cuts := []int{0, 8, 31, 32}
	for i := 0; i < snap.NumSections(); i++ {
		sec := snap.Section(i)
		cuts = append(cuts, int(sec.Off), int(sec.Off)+len(sec.Data)/2, int(sec.Off)+len(sec.Data))
		if storage.IsCompressedKind(sec.Kind) {
			cuts = append(cuts, int(sec.Off)+24, int(sec.Off)+len(sec.Data)/4)
		}
	}
	cuts = append(cuts, len(raw)-41, len(raw)-40, len(raw)-1)
	for _, n := range cuts {
		if n < 0 || n >= len(raw) {
			continue
		}
		mustReject(fmt.Sprintf("truncation at %d", n), raw[:n])
	}

	// Unresealed single-byte flips, strided across the whole file: the
	// checksum catches every one of them.
	stride := len(raw)/8192 + 1
	for i := 0; i < len(raw); i += stride {
		bad := bytes.Clone(raw)
		bad[i] ^= 0x55
		mustReject(fmt.Sprintf("byte flip at %d", i), bad)
	}

	// Resealed flips inside the compressed sections — the checksum passes,
	// so the section openers' structural validation is all that stands.
	// Target the front of each compressed payload (the packed directories:
	// counts, dataLens, bases, widths) and a spread of deeper offsets.
	serve := func(ix *Index) {
		for s := 0; s < coll.NumNodes(); s += 9 {
			streamBytes(ix, xmlgraph.NodeID(s), "a")
			streamBytes(ix, xmlgraph.NodeID(s), "")
			ix.Connected(xmlgraph.NodeID(s), xmlgraph.NodeID(coll.NumNodes()-1-s), 0)
		}
	}
	for i := 0; i < snap.NumSections(); i++ {
		sec := snap.Section(i)
		if !storage.IsCompressedKind(sec.Kind) {
			continue
		}
		var offs []int
		for o := 0; o < min(len(sec.Data), 64); o++ {
			offs = append(offs, o)
		}
		for o := 64; o < len(sec.Data); o += len(sec.Data)/16 + 1 {
			offs = append(offs, o)
		}
		for _, o := range offs {
			for _, bit := range []byte{1, 0x80} {
				bad := bytes.Clone(raw)
				bad[int(sec.Off)+o] ^= bit
				if err := storage.Reseal(bad); err != nil {
					t.Fatal(err)
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("resealed flip at section %d offset %d bit %#x: panic %v", i, o, bit, r)
						}
					}()
					ix, err := OpenSnapshotBytes(coll, bad)
					if err == nil {
						serve(ix)
						ix.Close()
					} else if !errors.Is(err, ErrSnapshotCorrupt) && !errors.Is(err, ErrSnapshotVersion) {
						t.Fatalf("resealed flip at section %d offset %d bit %#x: untyped error %v", i, o, bit, err)
					}
				}()
			}
		}
	}
}

// TestSnapshotCompressedDeclaredRatioMismatch forges a snapshot whose
// manifest declares raw sizes smaller than the compressed sections it
// carries — a "compression" that expanded is a tampered manifest or a
// tampered section, and Open must refuse it up front.
func TestSnapshotCompressedDeclaredRatioMismatch(t *testing.T) {
	coll := goldenCollection()
	cfg := goldenConfig()
	cfg.Strategy = "ppo" // every section gets a compressed encoder
	ix, err := Build(coll, cfg)
	if err != nil {
		t.Fatal(err)
	}
	forge := func(rawLen int64) []byte {
		var buf bytes.Buffer
		sw := storage.NewSnapshotWriter(&buf)
		rawLens := make([]int64, len(ix.pis))
		for i := range rawLens {
			rawLens[i] = rawLen
		}
		ix.writeManifest(sw, rawLens)
		for _, p := range ix.pis {
			cenc := p.(storage.CompressedSectionEncoder)
			sw.Begin(cenc.CompressedSectionKind())
			cenc.EncodeCompressedSection(sw)
			sw.End()
		}
		if _, err := sw.Finish(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	// rawLen 1 understates every section: typed refusal.
	if _, err := OpenSnapshotBytes(coll, forge(1)); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("understated raw sizes: err = %v, want ErrSnapshotCorrupt", err)
	}
	// rawLen 0 means "unknown" (a re-persisted compressed snapshot) and
	// must open fine.
	open, err := OpenSnapshotBytes(coll, forge(0))
	if err != nil {
		t.Fatalf("unknown raw sizes: %v", err)
	}
	open.Close()
}

// TestSnapshotCompressedFallback pins the per-section fallback: with a
// keep threshold no real section can meet, every section stays raw and the
// container opens as an uncompressed (but trailer-bearing) snapshot.
func TestSnapshotCompressedFallback(t *testing.T) {
	coll := goldenCollection()
	fresh, err := Build(coll, goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := fresh.WriteSnapshotV2With(&buf, SnapshotV2Options{Compress: true, CompressRatio: 0.0001}); err != nil {
		t.Fatal(err)
	}
	ix, err := OpenSnapshotBytes(coll, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	si := ix.StorageInfo()
	if si.Compressed {
		t.Fatal("StorageInfo.Compressed = true under an unmeetable keep threshold")
	}
	for _, st := range si.Sections {
		if storage.IsCompressedKind(sectionKindByName(t, st.Kind)) {
			t.Fatalf("section kind %s present despite the fallback", st.Kind)
		}
	}
	if want, got := streamBytes(fresh, 0, "a"), streamBytes(ix, 0, "a"); !bytes.Equal(want, got) {
		t.Fatalf("fallback stream %s != fresh %s", got, want)
	}
}

// sectionKindByName inverts storage.SectionKindName for the small set of
// known kinds.
func sectionKindByName(t *testing.T, name string) uint32 {
	t.Helper()
	for k := uint32(0); k < 16; k++ {
		if storage.SectionKindName(k) == name {
			return k
		}
	}
	t.Fatalf("unknown section kind name %q", name)
	return 0
}
