package flix

import (
	"sync"
	"testing"
)

// fillCache issues one completed descendants query per key so it lands in
// the cache, in the given order (last issued = most recently used).
func fillCache(cache *QueryCache, keys []HotKey) {
	for _, k := range keys {
		cache.Descendants(k.Start, k.Tag, Options{}, func(Result) bool { return true })
	}
}

// TestHotKeysEmptyCache checks the degenerate warming handoff: a fresh cache
// has no working set, and warming from one is a no-op rather than an error.
func TestHotKeysEmptyCache(t *testing.T) {
	c, _ := buildSample(t)
	ix, err := Build(c, Config{Kind: Hybrid, PartitionSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	cold := ix.NewQueryCache(8)
	if keys := cold.HotKeys(0); len(keys) != 0 {
		t.Fatalf("HotKeys on empty cache = %v, want empty", keys)
	}
	if keys := cold.HotKeys(5); len(keys) != 0 {
		t.Fatalf("HotKeys(5) on empty cache = %v, want empty", keys)
	}
	next := ix.NewQueryCache(8)
	if n := next.Warm(nil, nil); n != 0 {
		t.Fatalf("Warm(nil) = %d, want 0", n)
	}
	if n := next.Warm([]HotKey{}, nil); n != 0 {
		t.Fatalf("Warm(empty) = %d, want 0", n)
	}
	if next.Len() != 0 {
		t.Fatalf("cache length after empty warm = %d", next.Len())
	}
}

// TestWarmSmallerCapacity checks warming a replacement cache whose capacity
// is below the hot-key count: the sweep runs least recent first, so the
// entries that survive eviction are exactly the most recently used ones.
func TestWarmSmallerCapacity(t *testing.T) {
	c, ids := buildSample(t)
	ix, err := Build(c, Config{Kind: Hybrid, PartitionSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	old := ix.NewQueryCache(8)
	// Four distinct queries, most recent last.
	order := []HotKey{
		{Start: ids["bib"], Tag: "title"},
		{Start: ids["bib"], Tag: "author"},
		{Start: ids["art1"], Tag: "title"},
		{Start: ids["art2"], Tag: "title"},
	}
	fillCache(old, order)
	keys := old.HotKeys(0)
	if len(keys) != len(order) {
		t.Fatalf("HotKeys = %d keys, want %d", len(keys), len(order))
	}
	// Most recently used first.
	if keys[0] != order[len(order)-1] {
		t.Fatalf("HotKeys[0] = %+v, want the most recent %+v", keys[0], order[len(order)-1])
	}

	next := ix.NewQueryCache(2)
	if n := next.Warm(keys, nil); n != len(keys) {
		t.Fatalf("Warm = %d, want %d (evictions do not abort the sweep)", n, len(keys))
	}
	if next.Len() != 2 {
		t.Fatalf("cache length = %d, want capacity 2", next.Len())
	}
	// The survivors are the two hottest keys, and hitting them is a pure
	// cache hit.
	for _, k := range keys[:2] {
		next.Descendants(k.Start, k.Tag, Options{}, func(Result) bool { return true })
	}
	if hits, misses := next.Counts(); hits != 2 || misses != 0 {
		t.Fatalf("hits/misses after warming = %d/%d, want 2/0", hits, misses)
	}
	// The evicted (coldest) key misses.
	cold := keys[len(keys)-1]
	next.Descendants(cold.Start, cold.Tag, Options{}, func(Result) bool { return true })
	if hits, misses := next.Counts(); misses != 1 {
		t.Fatalf("hits/misses after cold lookup = %d/%d, want one miss", hits, misses)
	}
}

// TestWarmTruncatedHotKeys checks HotKeys' n bound: a warming budget smaller
// than the working set takes the n most recent keys only.
func TestWarmTruncatedHotKeys(t *testing.T) {
	c, ids := buildSample(t)
	ix, err := Build(c, Config{Kind: Hybrid, PartitionSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	cache := ix.NewQueryCache(8)
	order := []HotKey{
		{Start: ids["bib"], Tag: "author"},
		{Start: ids["bib"], Tag: "title"},
		{Start: ids["paper"], Tag: "title"},
	}
	fillCache(cache, order)
	keys := cache.HotKeys(2)
	if len(keys) != 2 {
		t.Fatalf("HotKeys(2) = %d keys", len(keys))
	}
	if keys[0] != order[2] || keys[1] != order[1] {
		t.Fatalf("HotKeys(2) = %+v, want the two most recent in MRU order", keys)
	}
	// n beyond the population clamps.
	if keys := cache.HotKeys(100); len(keys) != len(order) {
		t.Fatalf("HotKeys(100) = %d keys, want %d", len(keys), len(order))
	}
}

// TestWarmConcurrentWithQueries checks the hot-swap scenario under the race
// detector: the replacement cache is being warmed on the installer's
// goroutine while clients already query both generations' caches, and a
// cancellation ends the sweep early without corrupting the cache.
func TestWarmConcurrentWithQueries(t *testing.T) {
	c, ids := buildSample(t)
	ix, err := Build(c, Config{Kind: Hybrid, PartitionSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	old := ix.NewQueryCache(8)
	order := []HotKey{
		{Start: ids["bib"], Tag: "title"},
		{Start: ids["bib"], Tag: "author"},
		{Start: ids["art1"], Tag: "title"},
		{Start: ids["paper"], Tag: "title"},
	}
	fillCache(old, order)
	next := ix.NewQueryCache(8)

	cancel := make(chan struct{})
	var wg sync.WaitGroup
	// Clients hammer both caches while the warm sweep runs.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := order[(g+i)%len(order)]
				target := next
				if i%2 == 0 {
					target = old
				}
				target.Descendants(k.Start, k.Tag, Options{}, func(Result) bool { return true })
			}
		}(g)
	}
	// A second warmer racing the first models overlapping swaps; store is
	// idempotent per key so the outcome is the same working set.
	wg.Add(1)
	go func() {
		defer wg.Done()
		next.Warm(old.HotKeys(2), nil)
	}()
	warmed := next.Warm(old.HotKeys(0), cancel)
	wg.Wait()
	close(cancel)
	if warmed != len(order) {
		t.Fatalf("Warm = %d, want %d", warmed, len(order))
	}
	if next.Len() != len(order) {
		t.Fatalf("cache length = %d, want %d", next.Len(), len(order))
	}
	// Every hot key replays from the warmed cache with the right stream.
	for _, k := range order {
		var got, want []Result
		next.Descendants(k.Start, k.Tag, Options{ExactOrder: true}, func(r Result) bool {
			got = append(got, r)
			return true
		})
		ix.Descendants(k.Start, k.Tag, Options{ExactOrder: true}, func(r Result) bool {
			want = append(want, r)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("key %+v: %d results from warmed cache, %d from index", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("key %+v result %d: %+v != %+v", k, i, got[i], want[i])
			}
		}
	}

	// A cancellation that fires immediately warms nothing.
	done := make(chan struct{})
	close(done)
	frozen := ix.NewQueryCache(8)
	if n := frozen.Warm(old.HotKeys(0), done); n != 0 {
		t.Fatalf("canceled Warm = %d, want 0", n)
	}
	if frozen.Len() != 0 {
		t.Fatalf("canceled warm stored %d entries", frozen.Len())
	}
}
