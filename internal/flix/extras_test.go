package flix

import (
	"sync"
	"testing"

	"repro/internal/xmlgraph"
)

func TestQueryStats(t *testing.T) {
	c, ids := buildSample(t)
	ix, err := Build(c, Config{Kind: Naive})
	if err != nil {
		t.Fatal(err)
	}
	if s := ix.Stats().Snapshot(); s.Queries != 0 {
		t.Fatalf("fresh stats: %+v", s)
	}
	for i := 0; i < 5; i++ {
		ix.Descendants(ids["bib"], "title", Options{}, func(Result) bool { return true })
	}
	s := ix.Stats().Snapshot()
	if s.Queries != 5 {
		t.Errorf("queries = %d", s.Queries)
	}
	if s.Results != 10 { // two titles per query
		t.Errorf("results = %d", s.Results)
	}
	if s.LinkHops == 0 || s.Entries == 0 {
		t.Errorf("no hops/entries recorded: %+v", s)
	}
	if s.LinkHopsPerQuery() <= 0 || s.EntriesPerQuery() <= 0 {
		t.Error("per-query averages wrong")
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestAdvise(t *testing.T) {
	c, ids := buildSample(t)
	ix, err := Build(c, Config{Kind: UnconnectedHOPI, PartitionSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Too few queries: no advice.
	if a := ix.Advise(); a.Rebuild {
		t.Errorf("premature advice: %+v", a)
	}
	// A local workload keeps the configuration.
	for i := 0; i < 20; i++ {
		ix.Descendants(ids["title2"], "title", Options{}, func(Result) bool { return true })
	}
	if a := ix.Advise(); a.Rebuild {
		t.Errorf("local load triggered rebuild: %+v", a)
	}
	// A link-heavy workload (many hops per query) triggers partition
	// growth.  Synthesise it through the counters directly — driving 17+
	// hops per query through this tiny collection is not possible.
	ix.Stats().LinkHops.Add(10000)
	a := ix.Advise()
	if !a.Rebuild {
		t.Fatalf("link-heavy load ignored: %+v", a)
	}
	if a.Config.PartitionSize != 16 {
		t.Errorf("suggested partition size = %d, want 16", a.Config.PartitionSize)
	}
	// Monolithic has nothing coarser.
	ix2, err := Build(c, Config{Kind: Monolithic})
	if err != nil {
		t.Fatal(err)
	}
	ix2.Stats().Queries.Add(100)
	ix2.Stats().LinkHops.Add(10000)
	ix2.Stats().Entries.Add(1000)
	if a := ix2.Advise(); a.Rebuild {
		t.Errorf("monolithic advised rebuild: %+v", a)
	}
	// Naive with heavy load switches to size-bounded HOPI.
	ix3, err := Build(c, Config{Kind: Naive})
	if err != nil {
		t.Fatal(err)
	}
	ix3.Stats().Queries.Add(100)
	ix3.Stats().LinkHops.Add(10000)
	ix3.Stats().Entries.Add(1000)
	a = ix3.Advise()
	if !a.Rebuild || a.Config.Kind != UnconnectedHOPI {
		t.Errorf("naive advice = %+v", a)
	}
	// The advice must be actionable: rebuilding works.
	if _, err := Build(c, a.Config); err != nil {
		t.Errorf("rebuild with advised config: %v", err)
	}
}

func TestQueryCache(t *testing.T) {
	c, ids := buildSample(t)
	ix, err := Build(c, Config{Kind: Hybrid, PartitionSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	cache := ix.NewQueryCache(2)

	gather := func(start xmlgraph.NodeID, tag string, opts Options) []Result {
		var out []Result
		cache.Descendants(start, tag, opts, func(r Result) bool {
			out = append(out, r)
			return true
		})
		return out
	}

	direct := collect(ix, ids["bib"], "title", Options{})
	first := gather(ids["bib"], "title", Options{})
	second := gather(ids["bib"], "title", Options{})
	if len(first) != len(direct) || len(second) != len(direct) {
		t.Fatalf("cache changed results: %d/%d vs %d", len(first), len(second), len(direct))
	}
	if cache.HitRate() != 0.5 { // one miss, one hit
		t.Errorf("hit rate = %g", cache.HitRate())
	}
	// Replay honors MaxResults.
	if got := gather(ids["bib"], "title", Options{MaxResults: 1}); len(got) != 1 {
		t.Errorf("MaxResults on replay: %v", got)
	}
	// Replay honors MaxDist.
	if got := gather(ids["bib"], "title", Options{MaxDist: 2}); len(got) != 1 {
		t.Errorf("MaxDist on replay: %v", got)
	}
	// Truncated queries are not cached.
	gather(ids["bib"], "author", Options{MaxResults: 1})
	if cache.Len() != 1 {
		t.Errorf("truncated query cached: len=%d", cache.Len())
	}
	// Eviction at capacity 2.
	gather(ids["bib"], "author", Options{})
	gather(ids["bib"], "cite", Options{})
	if cache.Len() != 2 {
		t.Errorf("cache len = %d, want 2", cache.Len())
	}
	// Cancelled evaluations are not cached.
	cache.Descendants(ids["bib"], "", Options{}, func(Result) bool { return false })
	if cache.Len() != 2 {
		t.Errorf("cancelled query cached: len=%d", cache.Len())
	}
}

func TestQueryCacheConcurrent(t *testing.T) {
	c, ids := buildSample(t)
	ix, err := Build(c, Config{Kind: Naive})
	if err != nil {
		t.Fatal(err)
	}
	cache := ix.NewQueryCache(4)
	var wg sync.WaitGroup
	tags := []string{"title", "author", "cite", "article"}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				cache.Descendants(ids["bib"], tags[(i+j)%len(tags)], Options{}, func(Result) bool { return true })
			}
		}(i)
	}
	wg.Wait()
	if cache.Len() == 0 || cache.HitRate() == 0 {
		t.Errorf("len=%d hitRate=%g", cache.Len(), cache.HitRate())
	}
}

func TestAccessorsAndStrings(t *testing.T) {
	c, _ := buildSample(t)
	ix, err := Build(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ix.Collection() != c {
		t.Error("Collection accessor wrong")
	}
	if got := ix.Config(); got.Kind != Hybrid || got.PartitionSize != 5000 {
		t.Errorf("Config = %+v", got)
	}
	for kind, want := range map[ConfigKind]string{
		Naive:           "naive",
		MaximalPPO:      "maximal-ppo",
		UnconnectedHOPI: "unconnected-hopi",
		Hybrid:          "hybrid",
		Monolithic:      "monolithic",
		ElementLevel:    "element-level",
		ConfigKind(99):  "ConfigKind(99)",
	} {
		if kind.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(kind), kind.String(), want)
		}
	}
	if _, err := Build(c, Config{Kind: ConfigKind(99)}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestExactOrderEarlyStop(t *testing.T) {
	c, ids := buildSample(t)
	ix, err := Build(c, Config{Kind: Naive})
	if err != nil {
		t.Fatal(err)
	}
	// Cancel mid-flush.
	count := 0
	ix.Descendants(ids["bib"], "", Options{ExactOrder: true}, func(r Result) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("cancelled exact-order emitted %d", count)
	}
	// MaxResults with exact order.
	count = 0
	ix.Descendants(ids["bib"], "", Options{ExactOrder: true, MaxResults: 3}, func(r Result) bool {
		count++
		return true
	})
	if count != 3 {
		t.Errorf("MaxResults with exact order emitted %d", count)
	}
}

func TestQueryCacheMinCapacity(t *testing.T) {
	c, ids := buildSample(t)
	ix, err := Build(c, Config{Kind: Naive})
	if err != nil {
		t.Fatal(err)
	}
	cache := ix.NewQueryCache(0) // clamps to 1
	for _, tag := range []string{"title", "author"} {
		cache.Descendants(ids["bib"], tag, Options{}, func(Result) bool { return true })
	}
	if cache.Len() != 1 {
		t.Errorf("capacity-1 cache holds %d", cache.Len())
	}
	// Re-storing the same key refreshes rather than duplicates.
	cache.Descendants(ids["bib"], "author", Options{}, func(Result) bool { return true })
	if cache.Len() != 1 {
		t.Errorf("refresh duplicated: %d", cache.Len())
	}
}

func TestConcurrentQueries(t *testing.T) {
	c, ids := buildSample(t)
	ix, err := Build(c, Config{Kind: Hybrid, PartitionSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				n := 0
				ix.Descendants(ids["bib"], "title", Options{}, func(Result) bool {
					n++
					return true
				})
				if n != 2 {
					t.Errorf("concurrent query returned %d results", n)
					return
				}
			}
		}()
	}
	wg.Wait()
}
