package flix

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/xmlgraph"
)

// TestDescendantsTraced runs a multi-meta-document query with a tracer and
// checks the trace agrees with the engine counters and the actual results.
func TestDescendantsTraced(t *testing.T) {
	c, ids := buildSample(t)
	ix, err := Build(c, Config{Kind: Naive})
	if err != nil {
		t.Fatal(err)
	}
	before := ix.Stats().Snapshot()
	tr := obs.NewTrace(0)
	results := collect(ix, ids["bib"], "title", Options{Tracer: tr})
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2 (title1 + linked title2)", len(results))
	}
	after := ix.Stats().Snapshot()
	s := tr.Summary(true)
	if s.Pops != after.Pops-before.Pops {
		t.Errorf("trace pops = %d, stats delta = %d", s.Pops, after.Pops-before.Pops)
	}
	if s.Entries != after.Entries-before.Entries {
		t.Errorf("trace entries = %d, stats delta = %d", s.Entries, after.Entries-before.Entries)
	}
	if s.LinkHops != after.LinkHops-before.LinkHops {
		t.Errorf("trace linkHops = %d, stats delta = %d", s.LinkHops, after.LinkHops-before.LinkHops)
	}
	if s.Results != int64(len(results)) {
		t.Errorf("trace results = %d, want %d", s.Results, len(results))
	}
	// Naive puts each document in its own meta document; the query starts
	// in a's and crosses the art2 -> paper link into b's.
	if len(s.Metas) != 2 {
		t.Fatalf("meta visits = %d, want 2:\n%s", len(s.Metas), s.Render())
	}
	for _, m := range s.Metas {
		if m.Strategy == "" {
			t.Errorf("meta %d missing strategy", m.Meta)
		}
	}
	if s.LinkHops == 0 {
		t.Error("no link hops recorded for a cross-document query")
	}
	if out := s.Render(); out == "" {
		t.Error("empty Render")
	}
}

// TestTracedStatsDupDrops checks DupDropped accounting: two runtime links
// converging on the same meta document force a duplicate drop (the second
// target is already covered by the first entry point).
func TestTracedStatsDupDrops(t *testing.T) {
	c := xmlgraph.NewCollection()
	a := c.NewDocument("a")
	root := a.Enter("r", "")
	l1 := a.AddLeaf("x", "")
	l2 := a.AddLeaf("x", "")
	a.Leave()
	a.Close()
	b := c.NewDocument("b")
	pb := b.Enter("p", "")
	tb := b.AddLeaf("t", "")
	b.Leave()
	b.Close()
	c.AddLink(l1, pb, xmlgraph.EdgeInterLink)
	c.AddLink(l2, tb, xmlgraph.EdgeInterLink)
	c.Freeze()
	ix, err := Build(c, Config{Kind: Naive})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace(0)
	// Both links push frontier entries at distance 2; the p entry covers
	// the later t entry, which is dropped.
	n := 0
	ix.Descendants(root, "t", Options{Tracer: tr}, func(Result) bool {
		n++
		return true
	})
	s := tr.Summary(false)
	snap := ix.Stats().Snapshot()
	if snap.DupDropped < 1 {
		t.Errorf("stats DupDropped = %d, want >= 1", snap.DupDropped)
	}
	if s.DupDrops < 1 {
		t.Errorf("trace dupDrops = %d, want >= 1", s.DupDrops)
	}
	if snap.Pops < snap.Entries+snap.DupDropped {
		t.Errorf("pops (%d) < entries (%d) + dropped (%d)", snap.Pops, snap.Entries, snap.DupDropped)
	}
}

// TestBuildStats checks that the build phase records its phase timings.
func TestBuildStats(t *testing.T) {
	c, ids := buildSample(t)
	ix, err := Build(c, Config{Kind: Hybrid, PartitionSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	bs := ix.BuildStats()
	if bs.IndexBuild <= 0 {
		t.Errorf("IndexBuild = %v, want > 0", bs.IndexBuild)
	}
	if len(bs.Strategies) == 0 {
		t.Fatal("no per-strategy build stats")
	}
	total := 0
	for name, sb := range bs.Strategies {
		if sb.Metas <= 0 {
			t.Errorf("strategy %s: %d metas", name, sb.Metas)
		}
		if sb.Max > sb.Total {
			t.Errorf("strategy %s: max %v > total %v", name, sb.Max, sb.Total)
		}
		total += sb.Metas
	}
	if total != ix.NumMetaDocuments() {
		t.Errorf("strategy meta counts sum to %d, want %d", total, ix.NumMetaDocuments())
	}
	if bs.String() == "" {
		t.Error("empty BuildStats.String")
	}
	if got := ix.StrategyAt(ids["bib"]); got == "" {
		t.Error("StrategyAt returned empty for a valid node")
	}
	if got := ix.StrategyAt(-1); got != "" {
		t.Errorf("StrategyAt(-1) = %q, want empty", got)
	}
}

// TestQueryCacheTraced checks cache hit/miss events reach the tracer.
func TestQueryCacheTraced(t *testing.T) {
	c, ids := buildSample(t)
	ix, err := Build(c, Config{Kind: Naive})
	if err != nil {
		t.Fatal(err)
	}
	qc := ix.NewQueryCache(4)
	run := func(tr *obs.Trace) {
		qc.Descendants(ids["bib"], "title", Options{Tracer: tr}, func(Result) bool { return true })
	}
	miss := obs.NewTrace(0)
	run(miss)
	if s := miss.Summary(false); s.CacheHit {
		t.Error("first lookup reported a cache hit")
	}
	hit := obs.NewTrace(0)
	run(hit)
	if s := hit.Summary(false); !s.CacheHit {
		t.Error("second lookup did not report a cache hit")
	}
}
