package flix

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/xmlgraph"
)

// serializeIndex renders an index to its persisted byte form — the
// strictest equality notion the framework has.
func serializeIndex(t testing.TB, ix *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBuildWithOptionsDeterministic verifies the parallel build pipeline's
// determinism guarantee across configurations: for every parallelism level
// the built index serializes byte-identically to the serial build and
// answers queries identically, and the merged per-worker statistics stay
// consistent with the meta-document count.
func TestBuildWithOptionsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := xmlgraph.RandomCollection(rng, 30, 60, 80)
	configs := []Config{
		{Kind: Naive},
		{Kind: Hybrid, PartitionSize: 200},
		{Kind: UnconnectedHOPI, PartitionSize: 200},
		{Kind: Monolithic, Strategy: "hopi-dc"},
		{Kind: ElementLevel, PartitionSize: 150},
	}
	for _, cfg := range configs {
		t.Run(cfg.Kind.String()+"/"+cfg.Strategy, func(t *testing.T) {
			serialIx, err := BuildWithOptions(c, cfg, BuildOptions{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			serial := serializeIndex(t, serialIx)
			wantResults := collectDescendants(serialIx, 0, "b")
			for _, p := range []int{2, 4, 8} {
				ix, err := BuildWithOptions(c, cfg, BuildOptions{Parallelism: p})
				if err != nil {
					t.Fatal(err)
				}
				if got := serializeIndex(t, ix); !bytes.Equal(serial, got) {
					t.Fatalf("parallelism %d: serialized index differs from serial build (%d vs %d bytes)",
						p, len(got), len(serial))
				}
				if got := collectDescendants(ix, 0, "b"); !equalResults(got, wantResults) {
					t.Fatalf("parallelism %d: query results differ from serial build", p)
				}
				bs := ix.BuildStats()
				if bs.Parallelism != p {
					t.Errorf("parallelism %d: BuildStats.Parallelism = %d", p, bs.Parallelism)
				}
				workerMetas := 0
				for _, wb := range bs.Workers {
					workerMetas += wb.Metas
				}
				if workerMetas != ix.NumMetaDocuments() {
					t.Errorf("parallelism %d: workers report %d meta documents, index has %d",
						p, workerMetas, ix.NumMetaDocuments())
				}
				stratMetas := 0
				for _, sb := range bs.Strategies {
					stratMetas += sb.Metas
				}
				if stratMetas != ix.NumMetaDocuments() {
					t.Errorf("parallelism %d: strategy stats cover %d meta documents, index has %d",
						p, stratMetas, ix.NumMetaDocuments())
				}
			}
		})
	}
}

func collectDescendants(ix *Index, start xmlgraph.NodeID, tag string) []Result {
	var out []Result
	ix.Descendants(start, tag, Options{}, func(r Result) bool {
		out = append(out, r)
		return true
	})
	return out
}

func equalResults(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelBuildDuringQueries is the concurrency regression test for the
// build pipeline: a parallel Build must not interfere with queries
// streaming against a previously built (immutable) index.  Results must
// stay identical and the traced counters (Pops, DupDropped) must advance by
// exactly the per-query amounts measured in isolation.
func TestParallelBuildDuringQueries(t *testing.T) {
	c, start := buildChain(t, 40)
	ix, err := Build(c, Config{Kind: Hybrid, PartitionSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	want := collectDescendants(ix, start, "item")

	// Measure the exact per-query counter deltas in isolation.
	before := ix.Stats().Snapshot()
	collectDescendants(ix, start, "item")
	after := ix.Stats().Snapshot()
	popsPerQuery := after.Pops - before.Pops
	dupPerQuery := after.DupDropped - before.DupDropped
	if popsPerQuery <= 0 {
		t.Fatalf("query performed %d pops; the fixture should exercise the frontier", popsPerQuery)
	}

	// Another collection to (re)build in parallel while queries stream.
	rng := rand.New(rand.NewSource(11))
	other := xmlgraph.RandomCollection(rng, 20, 50, 60)

	const builders = 2
	const queryWorkers = 4
	const queriesPerWorker = 25
	base := ix.Stats().Snapshot()
	var wg sync.WaitGroup
	errs := make(chan string, builders+queryWorkers)
	for b := 0; b < builders; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if _, err := BuildWithOptions(other, Config{Kind: UnconnectedHOPI, PartitionSize: 100},
					BuildOptions{Parallelism: 4}); err != nil {
					errs <- "parallel build failed: " + err.Error()
					return
				}
			}
		}()
	}
	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queriesPerWorker; i++ {
				if got := collectDescendants(ix, start, "item"); !equalResults(got, want) {
					errs <- "query results changed while a parallel build was running"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	// The shared counters must be exact: no lost updates, no leakage from
	// the concurrent builds (which have their own QueryStats).
	final := ix.Stats().Snapshot()
	queries := int64(queryWorkers * queriesPerWorker)
	if got, want := final.Pops-base.Pops, queries*popsPerQuery; got != want {
		t.Errorf("Pops advanced by %d over %d queries, want exactly %d", got, queries, want)
	}
	if got, want := final.DupDropped-base.DupDropped, queries*dupPerQuery; got != want {
		t.Errorf("DupDropped advanced by %d over %d queries, want exactly %d", got, queries, want)
	}
}
