package flix

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/xmlgraph"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	c, ids := buildSample(t)
	for _, cfg := range allConfigs() {
		orig, err := Build(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := orig.WriteTo(&buf); err != nil {
			t.Fatalf("%v: WriteTo: %v", cfg, err)
		}
		loaded, err := Load(c, &buf)
		if err != nil {
			t.Fatalf("%v: Load: %v", cfg, err)
		}
		// The loaded index must answer queries identically.
		for _, tag := range []string{"title", "article", ""} {
			want := collect(orig, ids["bib"], tag, Options{})
			got := collect(loaded, ids["bib"], tag, Options{})
			if len(want) != len(got) {
				t.Fatalf("%v: %q: %d vs %d results", cfg, tag, len(want), len(got))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%v: %q: result %d: %v vs %v", cfg, tag, i, want[i], got[i])
				}
			}
		}
		if orig.NumMetaDocuments() != loaded.NumMetaDocuments() {
			t.Errorf("%v: meta counts differ", cfg)
		}
		// Ancestors exercise the reverse structures rebuilt on load.
		var a1, a2 []Result
		orig.Ancestors(ids["title2"], "", Options{}, func(r Result) bool { a1 = append(a1, r); return true })
		loaded.Ancestors(ids["title2"], "", Options{}, func(r Result) bool { a2 = append(a2, r); return true })
		if len(a1) != len(a2) {
			t.Errorf("%v: ancestors differ: %v vs %v", cfg, a1, a2)
		}
	}
}

func TestLoadWrongCollection(t *testing.T) {
	c, _ := buildSample(t)
	ix, err := Build(c, Config{Kind: Naive})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// A different collection must be rejected.
	other := xmlgraph.NewCollection()
	b := other.NewDocument("x")
	b.Enter("r", "")
	b.Leave()
	b.Close()
	other.Freeze()
	if _, err := Load(other, &buf); err == nil {
		t.Error("Load accepted a mismatched collection")
	}
}

func TestLoadTruncated(t *testing.T) {
	c, _ := buildSample(t)
	ix, err := Build(c, Config{Kind: Hybrid, PartitionSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, len(full) / 2, len(full) - 1} {
		if _, err := Load(c, bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("Load accepted stream truncated at %d bytes", cut)
		}
	}
	// Garbage magic.
	if _, err := Load(c, bytes.NewReader([]byte("XXXXgarbage"))); err == nil {
		t.Error("Load accepted garbage")
	}
	// Unfrozen collection.
	fresh := xmlgraph.NewCollection()
	if _, err := Load(fresh, bytes.NewReader(full)); err == nil {
		t.Error("Load accepted unfrozen collection")
	}
}

func TestPropertySaveLoadEquivalence(t *testing.T) {
	cfg := &quick.Config{MaxCount: 10}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := xmlgraph.RandomCollection(rng, 2+rng.Intn(6), 10, rng.Intn(12))
		confs := allConfigs()
		conf := confs[rng.Intn(len(confs))]
		orig, err := Build(c, conf)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := orig.WriteTo(&buf); err != nil {
			return false
		}
		loaded, err := Load(c, &buf)
		if err != nil {
			return false
		}
		for trial := 0; trial < 4; trial++ {
			start := xmlgraph.NodeID(rng.Intn(c.NumNodes()))
			a := collect(orig, start, "", Options{})
			b := collect(loaded, start, "", Options{})
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			x := xmlgraph.NodeID(rng.Intn(c.NumNodes()))
			y := xmlgraph.NodeID(rng.Intn(c.NumNodes()))
			d1, ok1 := orig.Connected(x, y, 0)
			d2, ok2 := loaded.Connected(x, y, 0)
			if ok1 != ok2 || (ok1 && d1 != d2) {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
