package flix

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/meta"
	"repro/internal/storage"
	"repro/internal/testutil"
	"repro/internal/xmlgraph"
)

const goldenV2Path = "testdata/golden-v2.flix"

// registryStrategies returns every registered strategy name in stable
// order; the parity suite forces each one in turn (infeasible choices fall
// back to the selector's heuristic, which is itself part of the contract).
func registryStrategies() []string {
	names := make([]string, 0, len(meta.Registry))
	for n := range meta.Registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// queryFingerprint runs a fixed query battery — exact-order streams,
// approximate streams, top-k prefixes, connection probes — and serializes
// every result, so two backends can be compared wholesale.  It also
// exercises the reverse probes via ConnectedBidirectional.
func queryFingerprint(ix *Index, c *xmlgraph.Collection) []byte {
	var b bytes.Buffer
	step := c.NumNodes()/6 + 1
	tags := []string{"", "a", "b", "c", "e"}
	for s := 0; s < c.NumNodes(); s += step {
		start := xmlgraph.NodeID(s)
		for _, tag := range tags {
			for _, opts := range []Options{
				{},
				{ExactOrder: true},
				{MaxResults: 5},
				{MaxDist: 3, IncludeSelf: true},
				{ExactOrder: true, MaxResults: 3},
			} {
				fmt.Fprintf(&b, "q%d/%s/%v:", s, tag, opts.MaxResults)
				ix.Descendants(start, tag, opts, func(r Result) bool {
					fmt.Fprintf(&b, "%d@%d;", r.Node, r.Dist)
					return true
				})
			}
		}
		for e := 0; e < c.NumNodes(); e += step*2 + 1 {
			d1, ok1 := ix.Connected(start, xmlgraph.NodeID(e), 0)
			d2, ok2 := ix.ConnectedBidirectional(start, xmlgraph.NodeID(e), 0)
			fmt.Fprintf(&b, "c%d-%d:%d%v/%d%v;", s, e, d1, ok1, d2, ok2)
		}
	}
	return b.Bytes()
}

// TestSnapshotV2Parity is the differential suite of the tentpole: for
// every collection family and every registered strategy, a heap-built
// index and the same index written to a v2 snapshot and reopened from the
// bytes must be indistinguishable — identical result streams (exact and
// approximate order), identical top-k prefixes, identical connection
// answers, and identical evaluator work counters.  Serial and parallel
// builds must produce byte-identical snapshots.
func TestSnapshotV2Parity(t *testing.T) {
	for _, fam := range testutil.Families() {
		for _, strat := range registryStrategies() {
			t.Run(string(fam)+"/"+strat, func(t *testing.T) {
				c := testutil.Generate(fam, 5, 10, 12, 18)
				cfg := Config{Kind: Hybrid, PartitionSize: 50, Strategy: strat}
				heap, err := BuildWithOptions(c, cfg, BuildOptions{Parallelism: 1})
				if err != nil {
					t.Fatal(err)
				}
				var serial, parallel bytes.Buffer
				if _, err := heap.WriteSnapshotV2(&serial); err != nil {
					t.Fatal(err)
				}
				par, err := BuildWithOptions(c, cfg, BuildOptions{Parallelism: 0})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := par.WriteSnapshotV2(&parallel); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
					t.Fatal("serial and parallel builds wrote different v2 snapshots")
				}
				snap, err := OpenSnapshotBytes(c, serial.Bytes())
				if err != nil {
					t.Fatal(err)
				}
				defer snap.Close()
				if got := snap.StorageInfo().Format; got != "v2" {
					t.Errorf("StorageInfo.Format = %q, want v2", got)
				}
				if snap.Describe() != heap.Describe() {
					t.Fatalf("snapshot Describe = %q, heap = %q", snap.Describe(), heap.Describe())
				}
				hb := queryFingerprint(heap, c)
				sb := queryFingerprint(snap, c)
				if !bytes.Equal(hb, sb) {
					t.Fatalf("query fingerprints diverge:\nheap %s\nsnap %s", firstDiff(hb, sb), firstDiff(sb, hb))
				}
				// Identical streams must have cost identical evaluator
				// work: the probe layer is storage-agnostic all the way
				// into the counters.
				if hs, ss := heap.Stats().Snapshot(), snap.Stats().Snapshot(); hs != ss {
					t.Fatalf("EvalStats diverge: heap %+v, snapshot %+v", hs, ss)
				}
			})
		}
	}
}

// firstDiff renders the neighborhood of the first diverging byte.
func firstDiff(a, b []byte) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo := max(0, i-30)
	hi := min(len(a), i+30)
	return fmt.Sprintf("...%s... (offset %d)", a[lo:hi], i)
}

// TestSnapshotV2GoldenFixture pins the v2 container layout: the committed
// fixture must be byte-identical to a fresh WriteSnapshotV2 of the same
// build (the format is deterministic), and opening it must serve the same
// streams as the fresh index.
//
// Regenerate (after an intentional, version-bumped format change) with:
//
//	UPDATE_GOLDEN=1 go test -run TestSnapshotV2GoldenFixture ./internal/flix
func TestSnapshotV2GoldenFixture(t *testing.T) {
	coll := goldenCollection()
	fresh, err := Build(coll, goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := fresh.WriteSnapshotV2(&buf); err != nil {
		t.Fatal(err)
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenV2Path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenV2Path, buf.Len())
	}
	raw, err := os.ReadFile(goldenV2Path)
	if err != nil {
		t.Fatalf("reading golden fixture (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(raw, buf.Bytes()) {
		t.Fatalf("fresh WriteSnapshotV2 (%d bytes) differs from committed fixture (%d bytes); "+
			"format changes must bump storage.SnapshotVersion", buf.Len(), len(raw))
	}
	ix, err := OpenSnapshotBytes(coll, raw)
	if err != nil {
		t.Fatalf("opening golden fixture: %v", err)
	}
	defer ix.Close()
	for start := 0; start < coll.NumNodes(); start += 7 {
		for _, tag := range []string{"a", "b", "c", "d", "e", ""} {
			want := streamBytes(fresh, xmlgraph.NodeID(start), tag)
			got := streamBytes(ix, xmlgraph.NodeID(start), tag)
			if !bytes.Equal(want, got) {
				t.Fatalf("start %d tag %q: fixture stream %s != fresh %s", start, tag, got, want)
			}
		}
	}
}

// TestSnapshotV2CorruptionMatrix damages the golden fixture every way the
// issue enumerates — truncation at every section boundary, bit flips in
// header, section table, payload and footer, a future version stamp — and
// requires a typed refusal for each: ErrSnapshotCorrupt or
// ErrSnapshotVersion, never a panic, never an index.
func TestSnapshotV2CorruptionMatrix(t *testing.T) {
	coll := goldenCollection()
	raw, err := os.ReadFile(goldenV2Path)
	if err != nil {
		t.Fatalf("reading golden fixture (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	snap, err := storage.OpenSnapshotBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	mustReject := func(name string, img []byte) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: OpenSnapshotBytes panicked: %v", name, r)
			}
		}()
		ix, err := OpenSnapshotBytes(coll, img)
		if err == nil {
			t.Fatalf("%s: accepted", name)
		}
		if ix != nil {
			t.Fatalf("%s: returned an index alongside %v", name, err)
		}
		if !errors.Is(err, ErrSnapshotCorrupt) && !errors.Is(err, ErrSnapshotVersion) {
			t.Fatalf("%s: untyped error %v", name, err)
		}
	}

	// Truncation at (and within) every section boundary, plus the
	// envelope edges.
	cuts := []int{0, 8, 31, 32}
	for i := 0; i < snap.NumSections(); i++ {
		sec := snap.Section(i)
		cuts = append(cuts, int(sec.Off), int(sec.Off)+len(sec.Data)/2, int(sec.Off)+len(sec.Data))
	}
	cuts = append(cuts, len(raw)-41, len(raw)-40, len(raw)-1)
	for _, n := range cuts {
		if n < 0 || n >= len(raw) {
			continue
		}
		mustReject(fmt.Sprintf("truncation at %d", n), raw[:n])
	}

	// Single-bit flips in every region: header, section payloads, section
	// table, footer.
	tableOff := len(raw) - 40 - snap.NumSections()*24
	targets := []int{0, 9, 13, 20, tableOff + 3, tableOff + 17, len(raw) - 40, len(raw) - 12, len(raw) - 1}
	for i := 0; i < snap.NumSections(); i++ {
		sec := snap.Section(i)
		targets = append(targets, int(sec.Off), int(sec.Off)+len(sec.Data)/3)
	}
	for _, i := range targets {
		bad := bytes.Clone(raw)
		bad[i] ^= 1 << uint(i%8)
		mustReject(fmt.Sprintf("bit flip at %d", i), bad)
	}
	// Exhaustive single-byte corruption (strided on large fixtures): the
	// whole-file checksum means every flip must be caught.
	stride := len(raw)/8192 + 1
	for i := 0; i < len(raw); i += stride {
		bad := bytes.Clone(raw)
		bad[i] ^= 0x55
		mustReject(fmt.Sprintf("byte flip at %d", i), bad)
	}

	// A v3 container (resealed so only the version trips) must read as a
	// version problem, not corruption.
	future := bytes.Clone(raw)
	binary.LittleEndian.PutUint32(future[8:12], storage.SnapshotVersion+1)
	if err := storage.Reseal(future); err != nil {
		t.Fatal(err)
	}
	_, err = OpenSnapshotBytes(coll, future)
	if !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("v3 stamp: err = %v, want ErrSnapshotVersion", err)
	}
	if errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("v3 stamp misreported as corruption: %v", err)
	}

	// Wrong collection: valid bytes, mismatched decomposition.
	other := testutil.Generate(testutil.Linked, 12, 10, 10, 15)
	if _, err := OpenSnapshotBytes(other, raw); err == nil {
		t.Fatal("snapshot accepted against the wrong collection")
	}
}

// TestSnapshotV2CrossVersion proves the two formats describe the same
// index: the committed v1 stream, loaded and re-emitted as v2, must serve
// byte-identical result streams — and both backends must round-trip back
// to the exact committed v1 bytes via WriteTo, so no v1 regression hides
// behind the new container.
func TestSnapshotV2CrossVersion(t *testing.T) {
	coll := goldenCollection()
	rawV1, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden v1 fixture: %v", err)
	}
	v1ix, err := Load(coll, bytes.NewReader(rawV1))
	if err != nil {
		t.Fatal(err)
	}
	if got := v1ix.StorageInfo().Format; got != "v1" {
		t.Errorf("v1 StorageInfo.Format = %q", got)
	}
	// Freshly built index still writes the exact committed v1 bytes.
	fresh, err := Build(coll, goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	var v1out bytes.Buffer
	if _, err := fresh.WriteTo(&v1out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v1out.Bytes(), rawV1) {
		t.Fatal("fresh WriteTo no longer matches the committed v1 fixture")
	}
	// v1 -> v2 -> open.
	var v2buf bytes.Buffer
	if _, err := v1ix.WriteSnapshotV2(&v2buf); err != nil {
		t.Fatal(err)
	}
	v2ix, err := OpenSnapshotBytes(coll, v2buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	defer v2ix.Close()
	for start := 0; start < coll.NumNodes(); start += 5 {
		for _, tag := range []string{"a", "b", "c", ""} {
			want := streamBytes(v1ix, xmlgraph.NodeID(start), tag)
			got := streamBytes(v2ix, xmlgraph.NodeID(start), tag)
			if !bytes.Equal(want, got) {
				t.Fatalf("start %d tag %q: v2 stream %s != v1 %s", start, tag, got, want)
			}
		}
	}
	// v2 -> v1: the mmap-backed views re-emit the exact legacy stream.
	var back bytes.Buffer
	if _, err := v2ix.WriteTo(&back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Bytes(), rawV1) {
		t.Fatal("WriteTo from the v2-backed index does not reproduce the committed v1 bytes")
	}
}

// TestSnapshotV2File exercises the real file path: write, mmap-open, warm
// query, StorageInfo accounting, format sniffing via LoadSnapshotFile for
// both container generations sharing one filename convention.
func TestSnapshotV2File(t *testing.T) {
	coll := goldenCollection()
	fresh, err := Build(coll, goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	v2path := filepath.Join(dir, "gen-000001.flix")
	f, err := os.Create(v2path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.WriteSnapshotV2(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	ix, err := OpenSnapshot(coll, v2path)
	if err != nil {
		t.Fatal(err)
	}
	si := ix.StorageInfo()
	if si.Format != "v2" {
		t.Errorf("Format = %q", si.Format)
	}
	if si.Mapped {
		fi, _ := os.Stat(v2path)
		if si.MappedBytes != fi.Size() {
			t.Errorf("MappedBytes = %d, file is %d", si.MappedBytes, fi.Size())
		}
	}
	if want, got := streamBytes(fresh, 0, "a"), streamBytes(ix, 0, "a"); !bytes.Equal(want, got) {
		t.Fatalf("mapped stream %s != fresh %s", got, want)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	// LoadSnapshotFile sniffs the magic: v2 container...
	ix2, err := LoadSnapshotFile(coll, v2path, true)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.StorageInfo().Format != "v2" {
		t.Errorf("sniffed v2 Format = %q", ix2.StorageInfo().Format)
	}
	ix2.Close()
	// ...and the legacy v1 stream under the same naming scheme.
	v1path := filepath.Join(dir, "gen-000002.flix")
	var v1buf bytes.Buffer
	if _, err := fresh.WriteTo(&v1buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v1path, v1buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	ix1, err := LoadSnapshotFile(coll, v1path, true)
	if err != nil {
		t.Fatal(err)
	}
	if ix1.StorageInfo().Format != "v1" {
		t.Errorf("sniffed v1 Format = %q", ix1.StorageInfo().Format)
	}
}

// FuzzOpenSnapshot feeds arbitrary bytes to the v2 opener.  The invariant
// under fuzzing: OpenSnapshotBytes either returns a typed error or an
// index that serves queries without panicking — no input may crash the
// process or index out of bounds.
func FuzzOpenSnapshot(f *testing.F) {
	if raw, err := os.ReadFile(goldenV2Path); err == nil {
		f.Add(raw)
		// A resealed truncation and a resealed section-table edit give the
		// fuzzer valid-checksum starting points deep inside validation.
		if len(raw) > 100 {
			cut := bytes.Clone(raw[:len(raw)-48])
			f.Add(cut)
			mut := bytes.Clone(raw)
			mut[40] ^= 0xff
			if storage.Reseal(mut) == nil {
				f.Add(mut)
			}
		}
	}
	// The compressed fixture seeds the packed-directory and manifest-trailer
	// validation paths, with a resealed flip in its first compressed payload.
	if raw, err := os.ReadFile(goldenV2CPath); err == nil {
		f.Add(raw)
		if len(raw) > 200 {
			mut := bytes.Clone(raw)
			mut[150] ^= 0x10
			if storage.Reseal(mut) == nil {
				f.Add(mut)
			}
		}
	}
	f.Add([]byte(storage.SnapshotMagic))
	f.Add([]byte("FLIX\x04flix"))
	coll := goldenCollection()
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := OpenSnapshotBytes(coll, data)
		if err != nil {
			if ix != nil {
				t.Fatal("error with non-nil index")
			}
			return
		}
		// Anything that opens must be fully servable.
		for s := 0; s < coll.NumNodes(); s += 11 {
			streamBytes(ix, xmlgraph.NodeID(s), "a")
			streamBytes(ix, xmlgraph.NodeID(s), "")
			ix.Connected(xmlgraph.NodeID(s), xmlgraph.NodeID(coll.NumNodes()-1-s), 0)
		}
		ix.Close()
	})
}
