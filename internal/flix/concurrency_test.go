package flix

import (
	"sync"
	"testing"
)

// TestConcurrentSharedIndex hammers one shared Index and one shared
// QueryCache from many goroutines mixing descendants queries, connection
// tests and stats snapshots.  It exists to run under the race detector
// (go test -race): the Index is immutable after Build, the stats counters
// are atomics, and the cache serializes behind its mutex, so no interleaving
// may race or corrupt results.
func TestConcurrentSharedIndex(t *testing.T) {
	c, start := buildChain(t, 40)
	ix, err := Build(c, Config{Kind: Hybrid, PartitionSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	cache := ix.NewQueryCache(8)
	cache.StoreBounded = true
	items := c.NodesByTag("item")
	want := len(items)

	const workers = 8
	const iters = 60
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (w + i) % 4 {
				case 0:
					n := 0
					ix.Descendants(start, "item", Options{}, func(Result) bool { n++; return true })
					if n != want {
						errs <- "descendants result count changed under concurrency"
						return
					}
				case 1:
					n := 0
					cache.Descendants(start, "item", Options{MaxResults: 5}, func(Result) bool { n++; return true })
					if n != 5 {
						errs <- "cached descendants result count changed under concurrency"
						return
					}
				case 2:
					target := items[(w*iters+i)%len(items)]
					if _, ok := ix.Connected(start, target, 0); !ok {
						errs <- "connection test failed under concurrency"
						return
					}
				case 3:
					_ = ix.Stats().Snapshot()
					_ = ix.Advise()
					_ = cache.HitRate()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if hits, misses := cache.Counts(); hits == 0 || misses == 0 {
		t.Errorf("cache saw (%d hits, %d misses); the mixed load should produce both", hits, misses)
	}
}
