package flix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/meta"
	"repro/internal/xmlgraph"
)

// allConfigs are the configurations exercised by the integration tests.
func allConfigs() []Config {
	return []Config{
		{Kind: Naive},
		{Kind: MaximalPPO},
		{Kind: UnconnectedHOPI, PartitionSize: 15},
		{Kind: UnconnectedHOPI, PartitionSize: 60},
		{Kind: Hybrid, PartitionSize: 15},
		{Kind: Monolithic},
		{Kind: Monolithic, Strategy: "apex"},
		{Kind: Monolithic, Strategy: "tc"},
		{Kind: Monolithic, Strategy: "hopi-dc"},
		{Kind: Monolithic, Strategy: "a1"},
		{Kind: Naive, Load: meta.LoadShortPaths},
		{Kind: ElementLevel, PartitionSize: 5},
		{Kind: ElementLevel, PartitionSize: 40},
	}
}

// buildSample creates the small linked collection used by the unit tests:
//
//	doc a: bib -> article1(author,title), article2(cite)
//	doc b: paper -> title
//	links: article2 -> paper (inter), cite -> article1 (intra)
func buildSample(t testing.TB) (*xmlgraph.Collection, map[string]xmlgraph.NodeID) {
	t.Helper()
	c := xmlgraph.NewCollection()
	ids := make(map[string]xmlgraph.NodeID)
	a := c.NewDocument("a")
	ids["bib"] = a.Enter("bib", "")
	ids["art1"] = a.Enter("article", "")
	ids["author1"] = a.AddLeaf("author", "")
	ids["title1"] = a.AddLeaf("title", "")
	a.Leave()
	ids["art2"] = a.Enter("article", "")
	ids["cite"] = a.AddLeaf("cite", "")
	a.Leave()
	a.Leave()
	a.Close()
	b := c.NewDocument("b")
	ids["paper"] = b.Enter("paper", "")
	ids["title2"] = b.AddLeaf("title", "")
	b.Leave()
	b.Close()
	c.AddLink(ids["art2"], ids["paper"], xmlgraph.EdgeInterLink)
	c.AddLink(ids["cite"], ids["art1"], xmlgraph.EdgeIntraLink)
	c.Freeze()
	return c, ids
}

func collect(ix *Index, start xmlgraph.NodeID, tag string, opts Options) []Result {
	var out []Result
	ix.Descendants(start, tag, opts, func(r Result) bool {
		out = append(out, r)
		return true
	})
	return out
}

func TestBuildRequiresFrozen(t *testing.T) {
	c := xmlgraph.NewCollection()
	b := c.NewDocument("d")
	b.Enter("r", "")
	b.Leave()
	b.Close()
	if _, err := Build(c, Config{}); err == nil {
		t.Error("Build on unfrozen collection must fail")
	}
}

func TestDescendantsAllConfigs(t *testing.T) {
	c, ids := buildSample(t)
	want := map[xmlgraph.NodeID]int32{} // oracle: title descendants of bib
	for _, nd := range c.DescendantsByTag(ids["bib"], "title") {
		want[nd.Node] = nd.Dist
	}
	for _, cfg := range allConfigs() {
		ix, err := Build(c, cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		got := collect(ix, ids["bib"], "title", Options{})
		if len(got) != len(want) {
			t.Errorf("%v: got %d results, want %d: %v", cfg, len(got), len(want), got)
			continue
		}
		for _, r := range got {
			trueDist, ok := want[r.Node]
			if !ok {
				t.Errorf("%v: spurious result %v", cfg, r)
				continue
			}
			if r.Dist < trueDist {
				t.Errorf("%v: node %d distance %d below true %d", cfg, r.Node, r.Dist, trueDist)
			}
		}
	}
}

func TestDescendantsWildcard(t *testing.T) {
	c, ids := buildSample(t)
	ix, err := Build(c, Config{Kind: Hybrid, PartitionSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(ix, ids["art2"], "", Options{})
	// art2 reaches: cite, paper, title2, art1 (via cite link), author1,
	// title1.
	if len(got) != 6 {
		t.Errorf("wildcard results = %v", got)
	}
}

func TestIncludeSelf(t *testing.T) {
	c, ids := buildSample(t)
	ix, err := Build(c, Config{Kind: Monolithic})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(ix, ids["art1"], "article", Options{})
	if len(got) != 0 {
		t.Errorf("self excluded by default: %v", got)
	}
	got = collect(ix, ids["art1"], "article", Options{IncludeSelf: true})
	if len(got) != 1 || got[0].Node != ids["art1"] || got[0].Dist != 0 {
		t.Errorf("IncludeSelf: %v", got)
	}
}

func TestMaxResults(t *testing.T) {
	c, ids := buildSample(t)
	ix, err := Build(c, Config{Kind: Naive})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(ix, ids["bib"], "", Options{MaxResults: 3})
	if len(got) != 3 {
		t.Errorf("MaxResults: got %d", len(got))
	}
}

func TestMaxDist(t *testing.T) {
	c, ids := buildSample(t)
	ix, err := Build(c, Config{Kind: Naive})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(ix, ids["bib"], "title", Options{MaxDist: 2})
	// title1 at distance 2 qualifies; title2 at 3 does not.
	if len(got) != 1 || got[0].Node != ids["title1"] {
		t.Errorf("MaxDist: %v", got)
	}
}

func TestEmitCancel(t *testing.T) {
	c, ids := buildSample(t)
	ix, err := Build(c, Config{Kind: Naive})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	ix.Descendants(ids["bib"], "", Options{}, func(r Result) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("cancel after first: %d", count)
	}
}

func TestExactOrderMonolithic(t *testing.T) {
	c, ids := buildSample(t)
	ix, err := Build(c, Config{Kind: Monolithic})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(ix, ids["bib"], "", Options{ExactOrder: true})
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Errorf("ExactOrder violated at %d: %v", i, got)
		}
	}
}

func TestTypeDescendants(t *testing.T) {
	c, ids := buildSample(t)
	ix, err := Build(c, Config{Kind: Hybrid, PartitionSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	var got []Result
	ix.TypeDescendants("article", "title", Options{}, func(r Result) bool {
		got = append(got, r)
		return true
	})
	// article//title: title1 (below art1, also below art2 via cite) and
	// title2 (below art2 via link).
	found := map[xmlgraph.NodeID]bool{}
	for _, r := range got {
		found[r.Node] = true
	}
	if !found[ids["title1"]] || !found[ids["title2"]] || len(got) != 2 {
		t.Errorf("TypeDescendants = %v", got)
	}
}

func TestConnected(t *testing.T) {
	c, ids := buildSample(t)
	for _, cfg := range allConfigs() {
		ix, err := Build(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if d, ok := ix.Connected(ids["bib"], ids["title2"], 0); !ok || d < 3 {
			t.Errorf("%v: Connected(bib,title2) = %d,%t", cfg, d, ok)
		}
		if _, ok := ix.Connected(ids["title2"], ids["bib"], 0); ok {
			t.Errorf("%v: title2 must not reach bib", cfg)
		}
		if d, ok := ix.Connected(ids["cite"], ids["cite"], 0); !ok || d != 0 {
			t.Errorf("%v: self connection = %d,%t", cfg, d, ok)
		}
		// Threshold cuts off the long path.
		if _, ok := ix.Connected(ids["bib"], ids["title2"], 1); ok {
			t.Errorf("%v: threshold 1 must fail", cfg)
		}
	}
}

func TestConnectedBidirectional(t *testing.T) {
	c, ids := buildSample(t)
	for _, cfg := range allConfigs() {
		ix, err := Build(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		d1, ok1 := ix.Connected(ids["bib"], ids["title2"], 0)
		d2, ok2 := ix.ConnectedBidirectional(ids["bib"], ids["title2"], 0)
		if ok1 != ok2 {
			t.Errorf("%v: fwd %t vs bidi %t", cfg, ok1, ok2)
		}
		if ok1 && d1 != d2 {
			t.Errorf("%v: fwd dist %d vs bidi %d", cfg, d1, d2)
		}
		if _, ok := ix.ConnectedBidirectional(ids["title2"], ids["bib"], 0); ok {
			t.Errorf("%v: bidi found nonexistent path", cfg)
		}
	}
}

func TestAncestors(t *testing.T) {
	c, ids := buildSample(t)
	for _, cfg := range allConfigs() {
		ix, err := Build(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var got []Result
		ix.Ancestors(ids["title2"], "", Options{}, func(r Result) bool {
			got = append(got, r)
			return true
		})
		want := map[xmlgraph.NodeID]bool{ids["paper"]: true, ids["art2"]: true, ids["bib"]: true}
		if len(got) != len(want) {
			t.Errorf("%v: ancestors = %v", cfg, got)
			continue
		}
		for _, r := range got {
			if !want[r.Node] {
				t.Errorf("%v: spurious ancestor %v", cfg, r)
			}
		}
		// Typed variant.
		got = nil
		ix.Ancestors(ids["title2"], "article", Options{}, func(r Result) bool {
			got = append(got, r)
			return true
		})
		if len(got) != 1 || got[0].Node != ids["art2"] {
			t.Errorf("%v: article ancestors = %v", cfg, got)
		}
	}
}

func TestStream(t *testing.T) {
	c, ids := buildSample(t)
	ix, err := Build(c, Config{Kind: Hybrid, PartitionSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	s := ix.Stream(ids["bib"], "title", Options{})
	rs := s.Drain()
	if len(rs) != 2 {
		t.Errorf("stream results = %v", rs)
	}
	// Early close must not deadlock.
	s2 := ix.Stream(ids["bib"], "", Options{})
	if _, ok := s2.Next(); !ok {
		t.Error("no first result")
	}
	s2.Close()
	// StreamType.
	s3 := ix.StreamType("article", "title", Options{})
	if got := s3.Drain(); len(got) != 2 {
		t.Errorf("StreamType results = %v", got)
	}
}

func TestDescribeAndCounts(t *testing.T) {
	c, _ := buildSample(t)
	ix, err := Build(c, Config{Kind: Naive})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumMetaDocuments() != 2 {
		t.Errorf("meta docs = %d", ix.NumMetaDocuments())
	}
	counts := ix.StrategyCounts()
	// Doc a has an intra-document link (graph), doc b is a tree.
	if counts["ppo"] != 1 || counts["hopi"] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if ix.Describe() == "" || ix.RuntimeLinks() != 1 {
		t.Errorf("Describe=%q RuntimeLinks=%d", ix.Describe(), ix.RuntimeLinks())
	}
}

func TestSizeBytes(t *testing.T) {
	c, _ := buildSample(t)
	var sizes []int64
	for _, cfg := range []Config{{Kind: Naive}, {Kind: Monolithic}, {Kind: Monolithic, Strategy: "tc"}} {
		ix, err := Build(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		n, err := ix.SizeBytes()
		if err != nil || n <= 0 {
			t.Fatalf("SizeBytes: %d, %v", n, err)
		}
		sizes = append(sizes, n)
	}
	_ = sizes
}

// TestDupSeenSetEquivalence: the ablation duplicate-elimination mode must
// produce the same result set as the entry-point scheme, except possibly on
// the start element itself (the two schemes legitimately differ on whether
// a start lying on a cycle is re-reported; see Options.DupSeenSet).
func TestDupSeenSetEquivalence(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := xmlgraph.RandomCollection(rng, 2+rng.Intn(8), 12, rng.Intn(18))
		ix, err := Build(c, Config{Kind: UnconnectedHOPI, PartitionSize: 20})
		if err != nil {
			return false
		}
		start := xmlgraph.NodeID(rng.Intn(c.NumNodes()))
		gather := func(opts Options) map[xmlgraph.NodeID]bool {
			out := make(map[xmlgraph.NodeID]bool)
			dup := false
			ix.Descendants(start, "", opts, func(r Result) bool {
				if out[r.Node] {
					dup = true
				}
				out[r.Node] = true
				return true
			})
			if dup {
				return nil
			}
			delete(out, start)
			return out
		}
		a := gather(Options{})
		b := gather(Options{DupSeenSet: true})
		if a == nil || b == nil || len(a) != len(b) {
			return false
		}
		for n := range a {
			if !b[n] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// oracleCheck verifies, for one configuration and one random collection,
// that the streamed result set equals the BFS oracle and every reported
// distance is a valid path length (>= true shortest distance).
func oracleCheck(t *testing.T, c *xmlgraph.Collection, cfg Config, rng *rand.Rand) bool {
	t.Helper()
	ix, err := Build(c, cfg)
	if err != nil {
		t.Fatalf("%v: %v", cfg, err)
	}
	start := xmlgraph.NodeID(rng.Intn(c.NumNodes()))
	tags := []string{"a", "b", "c", "d", "e", ""}
	tag := tags[rng.Intn(len(tags))]

	trueDist := c.BFSDistances(start)
	want := make(map[xmlgraph.NodeID]int32)
	for n := range trueDist {
		if trueDist[n] > 0 && (tag == "" || c.Tag(xmlgraph.NodeID(n)) == tag) {
			want[xmlgraph.NodeID(n)] = trueDist[n]
		}
	}
	got := make(map[xmlgraph.NodeID]int32)
	dup := false
	ix.Descendants(start, tag, Options{}, func(r Result) bool {
		if _, seen := got[r.Node]; seen {
			dup = true
		}
		got[r.Node] = r.Dist
		return true
	})
	if dup {
		t.Logf("%v: duplicate results", cfg)
		return false
	}
	if len(got) != len(want) {
		t.Logf("%v: got %d results, want %d (start %d, tag %q)", cfg, len(got), len(want), start, tag)
		return false
	}
	for n, d := range got {
		td, ok := want[n]
		if !ok || d < td {
			t.Logf("%v: node %d dist %d vs true %d", cfg, n, d, td)
			return false
		}
	}
	return true
}

func TestPropertyAllConfigsMatchOracle(t *testing.T) {
	cfg := &quick.Config{MaxCount: 12}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := xmlgraph.RandomCollection(rng, 2+rng.Intn(8), 12, rng.Intn(18))
		for _, conf := range allConfigs() {
			if !oracleCheck(t, c, conf, rng) {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyConnectedMatchesOracle(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := xmlgraph.RandomCollection(rng, 2+rng.Intn(6), 10, rng.Intn(12))
		confs := allConfigs()
		conf := confs[rng.Intn(len(confs))]
		ix, err := Build(c, conf)
		if err != nil {
			return false
		}
		for trial := 0; trial < 6; trial++ {
			a := xmlgraph.NodeID(rng.Intn(c.NumNodes()))
			b := xmlgraph.NodeID(rng.Intn(c.NumNodes()))
			trueDist := c.BFSDistance(a, b)
			d, ok := ix.Connected(a, b, 0)
			if ok != (trueDist >= 0) {
				return false
			}
			if ok && d < trueDist {
				return false // distances are upper bounds, never below
			}
			d2, ok2 := ix.ConnectedBidirectional(a, b, 0)
			if ok2 != (trueDist >= 0) {
				return false
			}
			if ok2 && d2 < trueDist {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyAncestorsMatchOracle(t *testing.T) {
	cfg := &quick.Config{MaxCount: 12}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := xmlgraph.RandomCollection(rng, 2+rng.Intn(6), 10, rng.Intn(12))
		confs := allConfigs()
		conf := confs[rng.Intn(len(confs))]
		ix, err := Build(c, conf)
		if err != nil {
			return false
		}
		start := xmlgraph.NodeID(rng.Intn(c.NumNodes()))
		want := make(map[xmlgraph.NodeID]bool)
		for _, n := range c.Ancestors(start) {
			want[n] = true
		}
		got := make(map[xmlgraph.NodeID]bool)
		ix.Ancestors(start, "", Options{}, func(r Result) bool {
			if got[r.Node] {
				return false
			}
			got[r.Node] = true
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for n := range got {
			if !want[n] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestPropertyExactOrderSortedAndComplete: with ExactOrder, every
// configuration must emit in non-decreasing distance and still deliver the
// complete result set.
func TestPropertyExactOrderSortedAndComplete(t *testing.T) {
	cfg := &quick.Config{MaxCount: 12}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := xmlgraph.RandomCollection(rng, 2+rng.Intn(8), 12, rng.Intn(18))
		confs := allConfigs()
		conf := confs[rng.Intn(len(confs))]
		ix, err := Build(c, conf)
		if err != nil {
			return false
		}
		start := xmlgraph.NodeID(rng.Intn(c.NumNodes()))
		want := len(c.Descendants(start))
		last := int32(-1)
		got := 0
		sorted := true
		ix.Descendants(start, "", Options{ExactOrder: true}, func(r Result) bool {
			if r.Dist < last {
				sorted = false
				return false
			}
			last = r.Dist
			got++
			return true
		})
		return sorted && got == want
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestMaximalPPOOnTreeCollection: on a collection whose data graph is one
// tree (documents linked root-to-root), Maximal PPO must index everything
// with a single PPO meta document and zero runtime links — the ideal case
// of §4.3.
func TestMaximalPPOOnTreeCollection(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := xmlgraph.RandomTreeCollection(rng, 2+rng.Intn(10), 8)
		ix, err := Build(c, Config{Kind: MaximalPPO})
		if err != nil {
			return false
		}
		if ix.NumMetaDocuments() != 1 || ix.RuntimeLinks() != 0 {
			return false
		}
		counts := ix.StrategyCounts()
		if counts["ppo"] != 1 {
			return false
		}
		// Exactness follows: verify one query against the oracle.
		start := xmlgraph.NodeID(rng.Intn(c.NumNodes()))
		trueDist := c.BFSDistances(start)
		exact := true
		ix.Descendants(start, "", Options{}, func(r Result) bool {
			if trueDist[r.Node] != r.Dist {
				exact = false
				return false
			}
			return true
		})
		return exact
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestPropertyMonolithicExact: with a single meta document there are no
// runtime links, so distances and ordering must be exact.
func TestPropertyMonolithicExact(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := xmlgraph.RandomCollection(rng, 1+rng.Intn(5), 12, rng.Intn(10))
		ix, err := Build(c, Config{Kind: Monolithic})
		if err != nil {
			return false
		}
		start := xmlgraph.NodeID(rng.Intn(c.NumNodes()))
		trueDist := c.BFSDistances(start)
		last := int32(-1)
		exact := true
		ix.Descendants(start, "", Options{}, func(r Result) bool {
			if r.Dist != trueDist[r.Node] || r.Dist < last {
				exact = false
				return false
			}
			last = r.Dist
			return true
		})
		return exact
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
