//go:build !race

package flix

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
