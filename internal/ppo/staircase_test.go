package ppo

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestStaircaseDescendants(t *testing.T) {
	_, idx := buildTree(t)
	// Contexts 0 and 1: 1's subtree is inside 0's, so 1 is pruned; the
	// result is exactly 0's descendants in document order, once each.
	var nodes []int32
	idx.StaircaseDescendants([]int32{0, 1}, func(n, d int32) bool {
		nodes = append(nodes, n)
		return true
	})
	if !reflect.DeepEqual(nodes, []int32{1, 3, 4, 2}) {
		t.Errorf("staircase(0,1) = %v, want [1 3 4 2]", nodes)
	}
	// Disjoint contexts across both trees.
	nodes = nil
	idx.StaircaseDescendants([]int32{1, 5}, func(n, d int32) bool {
		nodes = append(nodes, n)
		return true
	})
	if !reflect.DeepEqual(nodes, []int32{3, 4, 6}) {
		t.Errorf("staircase(1,5) = %v, want [3 4 6]", nodes)
	}
	// Duplicate contexts collapse.
	nodes = nil
	idx.StaircaseDescendants([]int32{1, 1}, func(n, d int32) bool {
		nodes = append(nodes, n)
		return true
	})
	if !reflect.DeepEqual(nodes, []int32{3, 4}) {
		t.Errorf("staircase(1,1) = %v", nodes)
	}
	// Empty contexts.
	idx.StaircaseDescendants(nil, func(n, d int32) bool {
		t.Error("empty contexts produced a result")
		return false
	})
}

func TestStaircaseDescendantsByTag(t *testing.T) {
	g, idx := buildTree(t)
	var nodes []int32
	idx.StaircaseDescendantsByTag([]int32{0, 5}, int32(g.TagOf("b")), func(n, d int32) bool {
		nodes = append(nodes, n)
		return true
	})
	if !reflect.DeepEqual(nodes, []int32{1, 4, 6}) {
		t.Errorf("staircase by tag = %v, want [1 4 6]", nodes)
	}
}

func TestStaircaseAncestors(t *testing.T) {
	_, idx := buildTree(t)
	var nodes, dists []int32
	idx.StaircaseAncestors([]int32{3, 4}, func(n, d int32) bool {
		nodes = append(nodes, n)
		dists = append(dists, d)
		return true
	})
	// Ancestors of {3,4}: 0 and 1, in document order, each once.
	if !reflect.DeepEqual(nodes, []int32{0, 1}) || !reflect.DeepEqual(dists, []int32{2, 1}) {
		t.Errorf("staircase ancestors = %v %v", nodes, dists)
	}
}

func TestStaircaseEarlyStop(t *testing.T) {
	_, idx := buildTree(t)
	count := 0
	idx.StaircaseDescendants([]int32{0}, func(n, d int32) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early stop visited %d", count)
	}
}

// TestPropertyStaircaseMatchesUnion: the staircase result set must equal
// the union of per-context descendant sets, without duplicates, in
// document order.
func TestPropertyStaircaseMatchesUnion(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomForest(rng, 2+rng.Intn(50))
		idx, err := Build(g)
		if err != nil {
			return false
		}
		k := 1 + rng.Intn(5)
		contexts := make([]int32, k)
		for i := range contexts {
			contexts[i] = int32(rng.Intn(g.NumNodes()))
		}
		want := make(map[int32]bool)
		for _, c := range contexts {
			idx.EachReachable(c, func(n, d int32) bool {
				if n != c {
					want[n] = true
				}
				return true
			})
		}
		// A context that is a descendant of another context appears in
		// the union.
		for _, c := range contexts {
			for _, c2 := range contexts {
				if c != c2 && idx.Reachable(c2, c) {
					want[c] = true
				}
			}
		}
		var got []int32
		lastPre := int32(-1)
		ordered := true
		idx.StaircaseDescendants(contexts, func(n, d int32) bool {
			if idx.Pre(n) <= lastPre {
				ordered = false
			}
			lastPre = idx.Pre(n)
			got = append(got, n)
			return true
		})
		if !ordered || len(got) != len(want) {
			return false
		}
		for _, n := range got {
			if !want[n] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
