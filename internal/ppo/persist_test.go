package ppo

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func TestReadBodyRoundTrip(t *testing.T) {
	g, idx := buildTree(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	r := storage.NewReader(&buf)
	if err := r.Header("ppo"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBody(g, r)
	if err != nil {
		t.Fatal(err)
	}
	loaded := got.(*Index)
	for x := int32(0); x < int32(g.NumNodes()); x++ {
		for y := int32(0); y < int32(g.NumNodes()); y++ {
			if idx.Reachable(x, y) != loaded.Reachable(x, y) {
				t.Fatalf("Reachable(%d,%d) differs", x, y)
			}
		}
		if idx.SubtreeSize(x) != loaded.SubtreeSize(x) {
			t.Errorf("SubtreeSize(%d): %d vs %d", x, idx.SubtreeSize(x), loaded.SubtreeSize(x))
		}
	}
}

func TestReadBodyWrongGraph(t *testing.T) {
	g, idx := buildTree(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	_ = g
	small := randomForest(rand.New(rand.NewSource(1)), 3)
	r := storage.NewReader(&buf)
	if err := r.Header("ppo"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBody(small, r); err == nil {
		t.Error("ReadBody accepted a mismatched graph")
	}
}

func TestPropertyPersistRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomForest(rng, 2+rng.Intn(40))
		idx, err := Build(g)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := idx.WriteTo(&buf); err != nil {
			return false
		}
		r := storage.NewReader(&buf)
		if err := r.Header("ppo"); err != nil {
			return false
		}
		gotIdx, err := ReadBody(g, r)
		if err != nil {
			return false
		}
		loaded := gotIdx.(*Index)
		x := int32(rng.Intn(g.NumNodes()))
		a := gatherAll(idx, x)
		b := gatherAll(loaded, x)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func gatherAll(idx *Index, x int32) [][2]int32 {
	var out [][2]int32
	idx.EachReachable(x, func(n, d int32) bool {
		out = append(out, [2]int32{n, d})
		return true
	})
	idx.EachReaching(x, func(n, d int32) bool {
		out = append(out, [2]int32{n, d})
		return true
	})
	return out
}
