package ppo

// Compressed v2 snapshot section codec (kind SectionPPOC).  The raw
// section (section.go) stores every probe array as plain int32s — ~40
// bytes per node; this one stores them frame-of-reference bit-packed
// (storage.PackedI32), which exploits how PPO's arrays actually look:
// preorder ranks are near-identity, depths are tiny, parents sit a few
// nodes back, subtree sizes are small.  Three arrays disappear entirely:
//
//   - post is a derived quantity of a forest numbering,
//     post = pre + size - 1 - depth, so it is never stored;
//   - parent is stored as the relative offset x - parent(x) (0 for roots),
//     turning a block that mixes roots and deep nodes — which would pin
//     the frame width at the node-id range — into single-digit deltas;
//   - tagPre (the per-tag ascending preorder ranks) is stored only when
//     the sort fallback needs it (!runsSorted); otherwise it is merged
//     back out of the per-(tag, depth) runs on the cold WriteTo path.
//
// Probes run directly on the packed bytes through CIndex, a zero-copy
// view: each access is one 8-byte load + shift + mask, binary searches
// ride the per-block directory (point probes never scan a section), and
// the only steady-state heap traffic is the pooled sort-fallback scratch —
// 0 allocs/op, exactly like the raw view.
//
//	u32 n, numTags, runs, flags        (flags: 1 runsSorted, 2 derived,
//	                                    4 tagPre stored)
//	packed pre, depth, parentRel, size, byPre        each n values
//	-- iff tagPre stored --
//	packed tagPreOff (numTags+1)        packed tagPreData  (n)
//	-- iff derived --
//	packed tagRunIdx (numTags+1)        packed tagRunDepth (runs)
//	packed tagRunStart (runs+1)         packed tagRunData  (n)
//	                                    (per tag, (depth, pre)-sorted)
//
// The prefix-offset tables are packed too (PackedPrefixOffsets): a corpus
// section carries tens of thousands of tag-run starts whose values span
// the node range but whose per-block deltas are tiny, so frame-of-
// reference packing shaves them from 4 bytes to roughly one.
//
// Unlike the raw section the compressed one does not carry the per-depth
// wildcard runs: they repeat every preorder rank a third time for the one
// probe — untagged EachReachable — that the interval scan plus the pooled
// sort fallback already serves with identical emission order.  Wildcard
// probes on a compressed section therefore cost O(k log k) instead of
// O(k); tagged probes, the hot path, keep the streamed run machinery.

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/lgraph"
	"repro/internal/pathindex"
	"repro/internal/storage"
)

const secFlagTagPre = 1 << 2

// CompressedSectionKind implements storage.CompressedSectionEncoder.
func (idx *Index) CompressedSectionKind() uint32 { return storage.SectionPPOC }

// EncodeCompressedSection implements storage.CompressedSectionEncoder.
func (idx *Index) EncodeCompressedSection(sw *storage.SnapshotWriter) {
	n := len(idx.pre)
	numTags := len(idx.tagPre)
	derived := idx.depthRuns != nil
	hasTagPre := !(derived && idx.runsSorted)
	flags := uint32(0)
	if idx.runsSorted {
		flags |= secFlagRunsSorted
	}
	if derived {
		flags |= secFlagDerived
	}
	if hasTagPre {
		flags |= secFlagTagPre
	}
	runs := 0
	for _, trs := range idx.tagDepth {
		runs += len(trs)
	}
	sw.U32(uint32(n))
	sw.U32(uint32(numTags))
	sw.U32(uint32(runs))
	sw.U32(flags)
	sw.PackedI32s(idx.pre)
	sw.PackedI32s(idx.depth)
	rel := make([]int32, n)
	for v := range rel {
		if p := idx.parent[v]; p >= 0 {
			rel[v] = int32(v) - p
		}
	}
	sw.PackedI32s(rel)
	sw.PackedI32s(idx.size)
	sw.PackedI32s(idx.byPre)
	if hasTagPre {
		writePackedNested(sw, idx.tagPre, n)
	}
	if !derived {
		return
	}
	idxTab := make([]int32, numTags+1)
	depthTab := make([]int32, 0, runs)
	startTab := make([]int32, 0, runs+1)
	runData := make([]int32, 0, n)
	for t, trs := range idx.tagDepth {
		idxTab[t+1] = idxTab[t] + int32(len(trs))
		for _, r := range trs {
			depthTab = append(depthTab, r.depth)
			startTab = append(startTab, int32(len(runData)))
			runData = append(runData, r.pres...)
		}
	}
	startTab = append(startTab, int32(len(runData)))
	sw.PackedI32s(idxTab)
	sw.PackedI32s(depthTab)
	sw.PackedI32s(startTab)
	sw.PackedI32s(runData)
}

// writePackedNested writes a [][]int32 as a packed prefix-offset table plus
// the bit-packed concatenation (total elements).
func writePackedNested(sw *storage.SnapshotWriter, rows [][]int32, total int) {
	offs := make([]int32, len(rows)+1)
	flat := make([]int32, 0, total)
	for i, r := range rows {
		offs[i+1] = offs[i] + int32(len(r))
		flat = append(flat, r...)
	}
	sw.PackedI32s(offs)
	sw.PackedI32s(flat)
}

// CIndex is the zero-copy view over a compressed PPO section: the same
// probe surface and emission order as *Index, served by O(1) packed-array
// extraction instead of plain loads.
type CIndex struct {
	g *lgraph.LGraph

	raw []byte // whole section, for EncodeSection passthrough
	n   int32

	pre, depth, parentRel, size, byPre storage.PackedI32

	hasTagPre  bool
	tagPreOff  storage.PackedI32
	tagPreData storage.PackedI32

	derived     bool
	runsSorted  bool
	tagRunIdx   storage.PackedI32
	tagRunDepth storage.PackedI32
	tagRunStart storage.PackedI32
	tagRunData  storage.PackedI32

	scratch sync.Pool
}

var _ pathindex.Index = (*CIndex)(nil)
var _ storage.SectionEncoder = (*CIndex)(nil)

// OpenCompressedSection lays a CIndex over the section bytes.  Like the
// raw opener it validates every value range in one bounded scan — packed
// directories were already bounds-proofed by the storage layer, so after
// this no probe can read out of bounds even on adversarial input.
func OpenCompressedSection(g *lgraph.LGraph, data []byte) (pathindex.Index, error) {
	d := storage.NewSectionData(data)
	n := int(d.U32())
	numTags := int(d.U32())
	runs := int(d.U32())
	flags := d.U32()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n != g.NumNodes() || numTags != g.NumTags() {
		return nil, fmt.Errorf("ppo: section has %d nodes/%d tags, graph %d/%d",
			n, numTags, g.NumNodes(), g.NumTags())
	}
	if runs > n {
		return nil, fmt.Errorf("ppo: %d tag runs for %d nodes", runs, n)
	}
	v := &CIndex{
		g:          g,
		raw:        data,
		n:          int32(n),
		runsSorted: flags&secFlagRunsSorted != 0,
		derived:    flags&secFlagDerived != 0,
		hasTagPre:  flags&secFlagTagPre != 0,
	}
	if !v.hasTagPre && !(v.derived && v.runsSorted) {
		return nil, fmt.Errorf("ppo: section stores neither tagPre nor sorted tag runs")
	}
	v.pre = d.PackedI32s()
	v.depth = d.PackedI32s()
	v.parentRel = d.PackedI32s()
	v.size = d.PackedI32s()
	v.byPre = d.PackedI32s()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if v.pre.Len() != n || v.depth.Len() != n || v.parentRel.Len() != n ||
		v.size.Len() != n || v.byPre.Len() != n {
		return nil, fmt.Errorf("ppo: truncated packed arrays")
	}
	for x := int32(0); x < int32(n); x++ {
		p, q := v.pre.At(x), v.byPre.At(x)
		if p < 0 || int(p) >= n || q < 0 || int(q) >= n {
			return nil, fmt.Errorf("ppo: rank out of range at node %d", x)
		}
		if pa := v.parentOf(x); pa < -1 || int(pa) >= n {
			return nil, fmt.Errorf("ppo: parent %d out of range", pa)
		}
		if dp := v.depth.At(x); dp < 0 || int(dp) >= n {
			return nil, fmt.Errorf("ppo: depth %d out of range", dp)
		}
		if sz := v.size.At(x); sz < 1 || int(p)+int(sz) > n {
			return nil, fmt.Errorf("ppo: subtree [%d+%d] out of range", p, sz)
		}
	}
	checkRanks := func(p storage.PackedI32, what string) error {
		for i := int32(0); i < int32(p.Len()); i++ {
			if r := p.At(i); r < 0 || int(r) >= n {
				return fmt.Errorf("ppo: %s rank %d out of range", what, r)
			}
		}
		return nil
	}
	if v.hasTagPre {
		v.tagPreOff = d.PackedPrefixOffsets(numTags, uint32(n))
		v.tagPreData = d.PackedI32s()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if v.tagPreData.Len() != n {
			return nil, fmt.Errorf("ppo: tagPre holds %d ranks for %d nodes", v.tagPreData.Len(), n)
		}
		if err := checkRanks(v.tagPreData, "tag"); err != nil {
			return nil, err
		}
	}
	if !v.derived {
		v.runsSorted = false
		return v, nil
	}
	v.tagRunIdx = d.PackedPrefixOffsets(numTags, uint32(runs))
	v.tagRunDepth = d.PackedI32s()
	v.tagRunStart = d.PackedPrefixOffsets(runs, uint32(n))
	v.tagRunData = d.PackedI32s()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if v.tagRunDepth.Len() != runs || v.tagRunData.Len() != n {
		return nil, fmt.Errorf("ppo: truncated packed run arrays")
	}
	if err := checkRanks(v.tagRunData, "tag-run"); err != nil {
		return nil, err
	}
	return v, nil
}

// SectionKind implements storage.SectionEncoder.
func (v *CIndex) SectionKind() uint32 { return storage.SectionPPOC }

// EncodeSection re-emits the section the view was opened from, verbatim.
func (v *CIndex) EncodeSection(sw *storage.SnapshotWriter) { sw.Raw(v.raw) }

// parentOf decodes the relative parent encoding: 0 is a root.
func (v *CIndex) parentOf(x int32) int32 {
	r := v.parentRel.At(x)
	if r == 0 {
		return -1
	}
	return x - r
}

// Name implements pathindex.Index.
func (v *CIndex) Name() string { return "ppo" }

// NumNodes implements pathindex.Index.
func (v *CIndex) NumNodes() int { return int(v.n) }

// Reachable implements pathindex.Index: y is in x's subtree iff its
// preorder rank falls in [pre(x), pre(x)+size(x)) — the interval form of
// the pre/post plane test, needing no postorder array.
func (v *CIndex) Reachable(x, y int32) bool {
	px, py := v.pre.At(x), v.pre.At(y)
	return px <= py && py-px < v.size.At(x)
}

// Distance implements pathindex.Index.
func (v *CIndex) Distance(x, y int32) (int32, bool) {
	if !v.Reachable(x, y) {
		return 0, false
	}
	return v.depth.At(y) - v.depth.At(x), true
}

// LinkDistances implements pathindex.LinkDistancer.  The evaluator probes
// one fixed x against every link source of a meta document; extracting
// x's preorder rank, subtree size and depth once outside the loop cuts the
// per-source cost from five packed extractions to one (plus a second for
// the sources that are actually reachable).
func (v *CIndex) LinkDistances(x int32, sources []int32, fn func(i int, d int32) bool) {
	px := v.pre.At(x)
	lim := v.size.At(x)
	dx := v.depth.At(x)
	for i, y := range sources {
		py := v.pre.At(y)
		if py < px || py-px >= lim {
			continue
		}
		if !fn(i, v.depth.At(y)-dx) {
			return
		}
	}
}

// clinkTable is the pathindex.LinkTable of a compressed PPO view: the
// source-side preorder ranks and depths are extracted from the packed
// arrays once at table build, so the per-pop sweep runs over dense plain
// int32 slices — the same inner loop cost as the raw view — and only the
// probe side pays packed extraction, three times per call.
type clinkTable struct {
	v        *CIndex
	pre, dep []int32
}

// LinkTable implements pathindex.LinkTabler.
func (v *CIndex) LinkTable(sources []int32) pathindex.LinkTable {
	t := &clinkTable{v: v, pre: make([]int32, len(sources)), dep: make([]int32, len(sources))}
	for i, y := range sources {
		t.pre[i], t.dep[i] = v.pre.At(y), v.depth.At(y)
	}
	return t
}

// LinkDistancesTo implements pathindex.LinkTable.
func (t *clinkTable) LinkDistancesTo(x int32, fn func(i int, d int32) bool) {
	px := t.v.pre.At(x)
	lim := t.v.size.At(x)
	dx := t.v.depth.At(x)
	for i, py := range t.pre {
		if py >= px && py-px < lim {
			if !fn(i, t.dep[i]-dx) {
				return
			}
		}
	}
}

// EachReachable implements pathindex.Index.  The compressed section does
// not carry the per-depth wildcard runs (see the layout comment), so the
// untagged probe always scans the preorder interval and sorts the pairs
// through the pooled scratch — the same path, and the same (dist, node)
// emission order, as a raw section whose runs are unsorted.
func (v *CIndex) EachReachable(x int32, fn pathindex.Visit) {
	lo := v.pre.At(x)
	hi := lo + v.size.At(x)
	base := v.depth.At(x)
	sc := getInterval(&v.scratch)
	for p := lo; p < hi; p++ {
		n := v.byPre.At(p)
		sc.pairs = append(sc.pairs, distNode{d: v.depth.At(n) - base, n: n})
	}
	emitPairs(&v.scratch, sc, fn)
}

// EachReachableByTag implements pathindex.Index over the packed per-(tag,
// depth) runs.
func (v *CIndex) EachReachableByTag(x int32, tag lgraph.Tag, fn pathindex.Visit) {
	if tag < 0 || int(tag) >= v.g.NumTags() {
		return
	}
	lo := v.pre.At(x)
	hi := lo + v.size.At(x)
	base := v.depth.At(x)
	if !v.runsSorted {
		sc := getInterval(&v.scratch)
		shi := v.tagPreOff.At(int32(tag) + 1)
		for s := v.tagPreData.SearchGE(v.tagPreOff.At(int32(tag)), shi, lo); s < shi; s++ {
			p := v.tagPreData.At(s)
			if p >= hi {
				break
			}
			n := v.byPre.At(p)
			sc.pairs = append(sc.pairs, distNode{d: v.depth.At(n) - base, n: n})
		}
		emitPairs(&v.scratch, sc, fn)
		return
	}
	for r, rend := v.tagRunIdx.At(int32(tag)), v.tagRunIdx.At(int32(tag)+1); r < rend; r++ {
		d := v.tagRunDepth.At(r)
		if d < base {
			continue // a subtree node is at least as deep as its root
		}
		shi := v.tagRunStart.At(r + 1)
		for s := v.tagRunData.SearchGE(v.tagRunStart.At(r), shi, lo); s < shi; s++ {
			p := v.tagRunData.At(s)
			if p >= hi {
				break
			}
			if !fn(v.byPre.At(p), d-base) {
				return
			}
		}
	}
}

// EachReaching implements pathindex.Index via the parent chain.
func (v *CIndex) EachReaching(x int32, fn pathindex.Visit) {
	d := int32(0)
	for n := x; n != -1; n = v.parentOf(n) {
		if !fn(n, d) {
			return
		}
		d++
	}
}

// EachReachingByTag implements pathindex.Index.
func (v *CIndex) EachReachingByTag(x int32, tag lgraph.Tag, fn pathindex.Visit) {
	d := int32(0)
	for n := x; n != -1; n = v.parentOf(n) {
		if v.g.Tag(n) == tag {
			if !fn(n, d) {
				return
			}
		}
		d++
	}
}

// WriteTo implements pathindex.Index by re-emitting the exact v1 stream a
// heap-built index would write; postorder ranks are recomputed from the
// forest identity post = pre + size - 1 - depth, and tagPre — when not
// stored — is merged back out of the (depth, pre)-sorted tag runs.
func (v *CIndex) WriteTo(w io.Writer) (int64, error) {
	n := int(v.n)
	pre := make([]int32, n)
	post := make([]int32, n)
	depth := make([]int32, n)
	parent := make([]int32, n)
	for x := 0; x < n; x++ {
		pre[x] = v.pre.At(int32(x))
		depth[x] = v.depth.At(int32(x))
		parent[x] = v.parentOf(int32(x))
		post[x] = pre[x] + v.size.At(int32(x)) - 1 - depth[x]
	}
	numTags := v.g.NumTags()
	tagPre := make([][]int32, numTags)
	if v.hasTagPre {
		for t := 0; t < numTags; t++ {
			lo, hi := v.tagPreOff.At(int32(t)), v.tagPreOff.At(int32(t)+1)
			row := make([]int32, 0, hi-lo)
			for s := lo; s < hi; s++ {
				row = append(row, v.tagPreData.At(s))
			}
			tagPre[t] = row
		}
	} else {
		for t := 0; t < numTags; t++ {
			var row []int32
			for r, rend := v.tagRunIdx.At(int32(t)), v.tagRunIdx.At(int32(t)+1); r < rend; r++ {
				for s, send := v.tagRunStart.At(r), v.tagRunStart.At(r+1); s < send; s++ {
					row = append(row, v.tagRunData.At(s))
				}
			}
			sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
			tagPre[t] = row
		}
	}
	sw := storage.NewWriter(w)
	sw.Header("ppo")
	sw.Uvarint(uint64(n))
	sw.Int32Slice(pre)
	sw.Int32Slice(post)
	sw.Int32Slice(depth)
	sw.Int32Slice(parent)
	sw.Uvarint(uint64(numTags))
	for _, ranks := range tagPre {
		sw.Int32Slice(ranks)
	}
	return sw.Flush()
}
