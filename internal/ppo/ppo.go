// Package ppo implements the pre-/postorder path index of Grust (SIGMOD
// 2002), the PPO strategy of FliX (§2.2).
//
// The index assigns every node of a forest its preorder and postorder rank
// from one depth-first traversal.  A node x reaches y iff
// pre(x) <= pre(y) and post(x) >= post(y); the distance between them is the
// depth difference.  Building takes O(E) time and the index stores a
// constant number of integers per node, which makes PPO the cheapest
// strategy — but it is only applicable when the meta document's data graph
// is a forest (no element with two incoming edges, no cycles).
package ppo

import (
	"errors"
	"fmt"
	"io"
	"slices"
	"sort"
	"sync"

	"repro/internal/lgraph"
	"repro/internal/pathindex"
	"repro/internal/storage"
)

// ErrNotForest is returned when the local graph has a node with more than
// one incoming edge or a cycle.
var ErrNotForest = errors.New("ppo: graph is not a forest")

// Index is a pre/postorder connection index over a forest.
type Index struct {
	g *lgraph.LGraph

	pre    []int32 // preorder rank per node
	post   []int32 // postorder rank per node
	depth  []int32 // tree depth per node (roots have 0)
	parent []int32 // parent per node (-1 for roots)
	size   []int32 // subtree size per node (including the node)
	byPre  []int32 // node at each preorder rank (inverse of pre)

	// tagPre[t] lists the preorder ranks of the nodes with tag t,
	// ascending; used for the a//b range scan.
	tagPre [][]int32

	// The fields below are derived by finishDerived at build/load time and
	// are not serialized — WriteTo's byte format is unchanged.
	//
	// depthRuns[d] lists the preorder ranks of the nodes at depth d,
	// ascending.  A subtree is the preorder interval [pre(x), pre(x)+size),
	// so enumerating it in ascending distance order is one binary search
	// per depth level instead of bucketing the whole interval into a
	// per-query map — the enumeration probe allocates nothing.
	depthRuns [][]int32
	// tagDepth[t] groups tagPre[t] by depth: runs in ascending depth
	// order, each run's pre-ranks ascending.
	tagDepth [][]depthRun
	// runsSorted reports that byPre is node-ascending within every depth
	// run, which makes the run-scan emission order satisfy the
	// interface's (dist, node) contract without a per-query sort.  It
	// holds for most forests the meta-document builder produces; the
	// sort fallback covers the general case.
	runsSorted bool

	// scratch pools intervalScratch values for the sort fallback so its
	// steady state allocates nothing either.
	scratch sync.Pool
}

// depthRun is the preorder ranks of one tag at one depth.
type depthRun struct {
	depth int32
	pres  []int32
}

var _ pathindex.Index = (*Index)(nil)

// Strategy is the registry entry for PPO.
var Strategy = pathindex.Strategy{
	Name:           "ppo",
	Build:          func(g *lgraph.LGraph) (pathindex.Index, error) { return Build(g) },
	RequiresForest: true,
}

// Build constructs the index.  It fails with ErrNotForest when the graph is
// not a forest.
func Build(g *lgraph.LGraph) (*Index, error) {
	if !g.IsForest() {
		return nil, ErrNotForest
	}
	n := int32(g.NumNodes())
	idx := &Index{
		g:      g,
		pre:    make([]int32, n),
		post:   make([]int32, n),
		depth:  make([]int32, n),
		parent: make([]int32, n),
		size:   make([]int32, n),
		byPre:  make([]int32, n),
	}
	for i := range idx.parent {
		idx.parent[i] = -1
	}
	var preCtr, postCtr int32
	// Iterative DFS with an explicit phase per node: first visit assigns
	// pre, second assigns post and subtree size.
	type frame struct {
		node int32
		next int // index into Succs
	}
	for _, root := range g.Roots() {
		stack := []frame{{node: root}}
		idx.pre[root] = preCtr
		idx.byPre[preCtr] = root
		preCtr++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			succs := g.Succs(f.node)
			if f.next < len(succs) {
				ch := succs[f.next]
				f.next++
				idx.parent[ch] = f.node
				idx.depth[ch] = idx.depth[f.node] + 1
				idx.pre[ch] = preCtr
				idx.byPre[preCtr] = ch
				preCtr++
				stack = append(stack, frame{node: ch})
				continue
			}
			idx.post[f.node] = postCtr
			postCtr++
			sz := int32(1)
			for _, ch := range succs {
				sz += idx.size[ch]
			}
			idx.size[f.node] = sz
			stack = stack[:len(stack)-1]
		}
	}
	if preCtr != n {
		// IsForest should have caught this; keep the check as a guard
		// against builder bugs.
		return nil, ErrNotForest
	}
	idx.tagPre = make([][]int32, g.NumTags())
	for p := int32(0); p < n; p++ {
		t := g.Tag(idx.byPre[p])
		idx.tagPre[t] = append(idx.tagPre[t], p)
	}
	idx.finishDerived()
	return idx, nil
}

// finishDerived builds the enumeration acceleration structures from the
// serialized core (pre/depth/byPre/tagPre).  Called by both Build and
// ReadBody; the structures are never written out.
func (idx *Index) finishDerived() {
	n := len(idx.byPre)
	maxDepth := int32(-1)
	for _, d := range idx.depth {
		if d < 0 || int(d) >= n {
			// A depth outside [0, n) cannot come from a real forest — a
			// corrupted snapshot reached us.  Leave the acceleration
			// structures unbuilt; queries take the bucket-sort fallback.
			return
		}
		if d > maxDepth {
			maxDepth = d
		}
	}
	for _, ranks := range idx.tagPre {
		for _, p := range ranks {
			if p < 0 || int(p) >= n {
				return // corrupted snapshot; same fallback as above
			}
		}
	}
	idx.depthRuns = make([][]int32, maxDepth+1)
	for p := 0; p < n; p++ {
		d := idx.depth[idx.byPre[p]]
		idx.depthRuns[d] = append(idx.depthRuns[d], int32(p))
	}
	idx.runsSorted = true
check:
	for _, run := range idx.depthRuns {
		for i := 1; i < len(run); i++ {
			if idx.byPre[run[i-1]] >= idx.byPre[run[i]] {
				idx.runsSorted = false
				break check
			}
		}
	}
	idx.tagDepth = make([][]depthRun, len(idx.tagPre))
	for t, ranks := range idx.tagPre {
		if len(ranks) == 0 {
			continue
		}
		sorted := make([]int32, len(ranks))
		copy(sorted, ranks)
		depthOf := func(p int32) int32 { return idx.depth[idx.byPre[p]] }
		sort.Slice(sorted, func(i, j int) bool {
			di, dj := depthOf(sorted[i]), depthOf(sorted[j])
			if di != dj {
				return di < dj
			}
			return sorted[i] < sorted[j]
		})
		var runs []depthRun
		start := 0
		for i := 1; i <= len(sorted); i++ {
			if i == len(sorted) || depthOf(sorted[i]) != depthOf(sorted[start]) {
				runs = append(runs, depthRun{depth: depthOf(sorted[start]), pres: sorted[start:i]})
				start = i
			}
		}
		idx.tagDepth[t] = runs
	}
}

// searchGE returns the index of the first element >= v in the ascending
// slice a — sort.Search without the closure, so enumeration probes stay
// allocation-free even if escape analysis changes.
func searchGE(a []int32, v int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if a[m] < v {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// Name implements pathindex.Index.
func (idx *Index) Name() string { return "ppo" }

// NumNodes implements pathindex.Index.
func (idx *Index) NumNodes() int { return len(idx.pre) }

// Reachable reports whether x reaches y (descendants-or-self), in O(1).
func (idx *Index) Reachable(x, y int32) bool {
	return idx.pre[x] <= idx.pre[y] && idx.post[x] >= idx.post[y]
}

// Distance returns the tree distance from x to y.
func (idx *Index) Distance(x, y int32) (int32, bool) {
	if !idx.Reachable(x, y) {
		return 0, false
	}
	return idx.depth[y] - idx.depth[x], true
}

// LinkDistances implements pathindex.LinkDistancer: one fixed x is probed
// against every link source, so x's interval bounds and depth are loaded
// once outside the sweep.
func (idx *Index) LinkDistances(x int32, sources []int32, fn func(i int, d int32) bool) {
	px, postx, dx := idx.pre[x], idx.post[x], idx.depth[x]
	for i, y := range sources {
		if px <= idx.pre[y] && postx >= idx.post[y] {
			if !fn(i, idx.depth[y]-dx) {
				return
			}
		}
	}
}

// linkTable is the pathindex.LinkTable of a heap/raw-mapped PPO index:
// the source columns gathered into dense arrays (the sources are scattered
// across the node range; gathering buys locality for the per-pop sweep).
type linkTable struct {
	idx            *Index
	pre, post, dep []int32
}

// LinkTable implements pathindex.LinkTabler.
func (idx *Index) LinkTable(sources []int32) pathindex.LinkTable {
	t := &linkTable{
		idx:  idx,
		pre:  make([]int32, len(sources)),
		post: make([]int32, len(sources)),
		dep:  make([]int32, len(sources)),
	}
	for i, y := range sources {
		t.pre[i], t.post[i], t.dep[i] = idx.pre[y], idx.post[y], idx.depth[y]
	}
	return t
}

// LinkDistancesTo implements pathindex.LinkTable.
func (t *linkTable) LinkDistancesTo(x int32, fn func(i int, d int32) bool) {
	idx := t.idx
	px, postx, dx := idx.pre[x], idx.post[x], idx.depth[x]
	for i, py := range t.pre {
		if px <= py && postx >= t.post[i] {
			if !fn(i, t.dep[i]-dx) {
				return
			}
		}
	}
}

// Depth returns the tree depth of x (roots have depth 0).
func (idx *Index) Depth(x int32) int32 { return idx.depth[x] }

// Parent returns the parent of x, or -1.
func (idx *Index) Parent(x int32) int32 { return idx.parent[x] }

// Pre returns the preorder rank of x.
func (idx *Index) Pre(x int32) int32 { return idx.pre[x] }

// Post returns the postorder rank of x.
func (idx *Index) Post(x int32) int32 { return idx.post[x] }

// SubtreeSize returns the number of nodes in x's subtree, including x.
func (idx *Index) SubtreeSize(x int32) int32 { return idx.size[x] }

// EachReachable implements pathindex.Index.  The subtree of x is the
// preorder interval [pre(x), pre(x)+size(x)); walking the per-depth
// preorder runs emits it level by level — ascending distance — with one
// binary search per level and no per-query allocation.
func (idx *Index) EachReachable(x int32, fn pathindex.Visit) {
	lo := idx.pre[x]
	hi := lo + idx.size[x]
	if !idx.runsSorted {
		idx.emitInterval(x, idx.byPre[lo:hi], fn)
		return
	}
	base := idx.depth[x]
	remaining := idx.size[x]
	for d := base; remaining > 0 && int(d) < len(idx.depthRuns); d++ {
		run := idx.depthRuns[d]
		for _, p := range run[searchGE(run, lo):] {
			if p >= hi {
				break
			}
			if !fn(idx.byPre[p], d-base) {
				return
			}
			remaining--
		}
	}
}

// distNode is one (distance, node) pair of the sort fallback.
type distNode struct{ d, n int32 }

// intervalScratch is the pooled buffer of the sort fallback; its capacity is
// retained across probes so the steady state allocates nothing.
type intervalScratch struct{ pairs []distNode }

func getInterval(pool *sync.Pool) *intervalScratch {
	sc, _ := pool.Get().(*intervalScratch)
	if sc == nil {
		sc = &intervalScratch{}
	}
	return sc
}

func (idx *Index) getInterval() *intervalScratch { return getInterval(&idx.scratch) }

// emitPairs sorts the collected pairs into ascending (distance, node) order,
// streams them, and returns the scratch to the pool.  Shared by the heap
// index and the compressed section view (csection.go).
func emitPairs(pool *sync.Pool, sc *intervalScratch, fn pathindex.Visit) {
	slices.SortFunc(sc.pairs, func(a, b distNode) int {
		if a.d != b.d {
			return int(a.d) - int(b.d)
		}
		return int(a.n) - int(b.n)
	})
	for _, p := range sc.pairs {
		if !fn(p.n, p.d) {
			break
		}
	}
	sc.pairs = sc.pairs[:0]
	pool.Put(sc)
}

func (idx *Index) emitPairs(sc *intervalScratch, fn pathindex.Visit) {
	emitPairs(&idx.scratch, sc, fn)
}

// emitInterval emits nodes (given directly) in ascending (distance, node)
// order relative to x — the sort fallback for graphs whose preorder is not
// node-ascending per depth.
func (idx *Index) emitInterval(x int32, nodes []int32, fn pathindex.Visit) {
	if len(nodes) == 0 {
		return
	}
	base := idx.depth[x]
	sc := idx.getInterval()
	for _, n := range nodes {
		sc.pairs = append(sc.pairs, distNode{d: idx.depth[n] - base, n: n})
	}
	idx.emitPairs(sc, fn)
}

// EachReachableByTag implements pathindex.Index using the per-tag depth
// runs: every run intersecting x's preorder interval is found with one
// binary search and streamed directly, already in ascending (distance,
// node) order.
func (idx *Index) EachReachableByTag(x int32, tag lgraph.Tag, fn pathindex.Visit) {
	if tag < 0 || int(tag) >= len(idx.tagPre) {
		return
	}
	lo := idx.pre[x]
	hi := lo + idx.size[x]
	if !idx.runsSorted {
		ranks := idx.tagPre[tag]
		base := idx.depth[x]
		sc := idx.getInterval()
		for _, p := range ranks[searchGE(ranks, lo):] {
			if p >= hi {
				break
			}
			n := idx.byPre[p]
			sc.pairs = append(sc.pairs, distNode{d: idx.depth[n] - base, n: n})
		}
		idx.emitPairs(sc, fn)
		return
	}
	base := idx.depth[x]
	for _, run := range idx.tagDepth[tag] {
		if run.depth < base {
			continue // a subtree node is at least as deep as its root
		}
		for _, p := range run.pres[searchGE(run.pres, lo):] {
			if p >= hi {
				break
			}
			if !fn(idx.byPre[p], run.depth-base) {
				return
			}
		}
	}
}

// EachReaching implements pathindex.Index: the ancestors-or-self of x are
// its parent chain, already in ascending distance order.
func (idx *Index) EachReaching(x int32, fn pathindex.Visit) {
	d := int32(0)
	for n := x; n != -1; n = idx.parent[n] {
		if !fn(n, d) {
			return
		}
		d++
	}
}

// EachReachingByTag implements pathindex.Index.
func (idx *Index) EachReachingByTag(x int32, tag lgraph.Tag, fn pathindex.Visit) {
	d := int32(0)
	for n := x; n != -1; n = idx.parent[n] {
		if idx.g.Tag(n) == tag {
			if !fn(n, d) {
				return
			}
		}
		d++
	}
}

// EachChild enumerates the children of x in preorder (all at distance 1).
func (idx *Index) EachChild(x int32, fn pathindex.Visit) {
	lo := idx.pre[x] + 1
	hi := idx.pre[x] + idx.size[x]
	for p := lo; p < hi; {
		ch := idx.byPre[p]
		if !fn(ch, 1) {
			return
		}
		p += idx.size[ch]
	}
}

// root returns the root of x's tree.
func (idx *Index) root(x int32) int32 {
	for idx.parent[x] != -1 {
		x = idx.parent[x]
	}
	return x
}

// EachFollowing enumerates the nodes after x in document order that are not
// descendants of x (the XPath following axis), restricted to x's own tree;
// distances are not defined for this axis and are reported as -1.
func (idx *Index) EachFollowing(x int32, fn pathindex.Visit) {
	r := idx.root(x)
	end := idx.pre[r] + idx.size[r]
	for p := idx.pre[x] + idx.size[x]; p < end; p++ {
		if !fn(idx.byPre[p], -1) {
			return
		}
	}
}

// EachPreceding enumerates the nodes before x in document order that are not
// ancestors of x (the XPath preceding axis), restricted to x's own tree.
func (idx *Index) EachPreceding(x int32, fn pathindex.Visit) {
	for p := idx.pre[idx.root(x)]; p < idx.pre[x]; p++ {
		n := idx.byPre[p]
		if idx.Reachable(n, x) {
			continue // ancestor, not preceding
		}
		if !fn(n, -1) {
			return
		}
	}
}

// WriteTo serializes the index: pre, post, depth and parent per node, plus
// the per-tag preorder lists.  ReadBody restores it.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	sw := storage.NewWriter(w)
	sw.Header("ppo")
	sw.Uvarint(uint64(len(idx.pre)))
	sw.Int32Slice(idx.pre)
	sw.Int32Slice(idx.post)
	sw.Int32Slice(idx.depth)
	sw.Int32Slice(idx.parent)
	sw.Uvarint(uint64(len(idx.tagPre)))
	for _, ranks := range idx.tagPre {
		sw.Int32Slice(ranks)
	}
	return sw.Flush()
}

// ReadBody deserializes an index written by WriteTo whose header has
// already been consumed.  g must be the graph the index was built over.
func ReadBody(g *lgraph.LGraph, r *storage.Reader) (pathindex.Index, error) {
	n := int(r.Uvarint())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n != g.NumNodes() {
		return nil, fmt.Errorf("ppo: stream has %d nodes, graph %d", n, g.NumNodes())
	}
	idx := &Index{
		g:      g,
		pre:    r.Int32Slice(),
		post:   r.Int32Slice(),
		depth:  r.Int32Slice(),
		parent: r.Int32Slice(),
	}
	nTags := int(r.Uvarint())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if nTags != g.NumTags() {
		return nil, fmt.Errorf("ppo: stream has %d tags, graph %d", nTags, g.NumTags())
	}
	idx.tagPre = make([][]int32, nTags)
	for t := range idx.tagPre {
		idx.tagPre[t] = r.Int32Slice()
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	if len(idx.pre) != n || len(idx.post) != n || len(idx.depth) != n || len(idx.parent) != n {
		return nil, fmt.Errorf("ppo: truncated arrays")
	}
	// Rebuild the derived structures: the preorder permutation and the
	// subtree sizes (children have larger preorder ranks than their
	// parent, so a descending-rank sweep accumulates sizes bottom-up).
	idx.byPre = make([]int32, n)
	for v := 0; v < n; v++ {
		p := idx.pre[v]
		if p < 0 || int(p) >= n {
			return nil, fmt.Errorf("ppo: preorder rank %d out of range", p)
		}
		idx.byPre[p] = int32(v)
	}
	idx.size = make([]int32, n)
	for i := range idx.size {
		idx.size[i] = 1
	}
	for rank := n - 1; rank >= 0; rank-- {
		v := idx.byPre[rank]
		if p := idx.parent[v]; p != -1 {
			if p < 0 || int(p) >= n {
				return nil, fmt.Errorf("ppo: parent %d out of range", p)
			}
			idx.size[p] += idx.size[v]
		}
	}
	idx.finishDerived()
	return idx, nil
}
