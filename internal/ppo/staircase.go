package ppo

import (
	"sort"

	"repro/internal/pathindex"
)

// This file implements the staircase join (Grust & van Keulen, "Tree
// awareness for relational DBMS kernels", reference [11] of the FliX
// paper): evaluating an XPath axis step for a whole *sequence* of context
// nodes in one pass over the document, exploiting the pre/post plane.
//
// The key ideas carried over here:
//
//   - pruning: a context node whose subtree lies inside another context
//     node's subtree contributes no new descendants and is dropped;
//   - one sequential scan: after pruning, the remaining context intervals
//     are disjoint, so their results are produced by one ordered sweep of
//     the preorder axis with no duplicate elimination.

// StaircaseDescendants emits the distinct descendants (excluding the
// contexts themselves) of all context nodes in document (preorder) order.
// Each node is emitted once even when several contexts reach it.  The
// reported distance is the depth below the *innermost* context containing
// the node.
func (idx *Index) StaircaseDescendants(contexts []int32, fn pathindex.Visit) {
	for _, iv := range idx.pruneContexts(contexts) {
		lo := idx.pre[iv] + 1
		hi := idx.pre[iv] + idx.size[iv]
		base := idx.depth[iv]
		for p := lo; p < hi; p++ {
			n := idx.byPre[p]
			if !fn(n, idx.depth[n]-base) {
				return
			}
		}
	}
}

// StaircaseDescendantsByTag is StaircaseDescendants restricted to one tag,
// using the per-tag preorder lists instead of the full sweep.
func (idx *Index) StaircaseDescendantsByTag(contexts []int32, tag int32, fn pathindex.Visit) {
	if tag < 0 || int(tag) >= len(idx.tagPre) {
		return
	}
	ranks := idx.tagPre[tag]
	for _, iv := range idx.pruneContexts(contexts) {
		lo := idx.pre[iv] + 1
		hi := idx.pre[iv] + idx.size[iv]
		base := idx.depth[iv]
		from := sort.Search(len(ranks), func(i int) bool { return ranks[i] >= lo })
		for i := from; i < len(ranks) && ranks[i] < hi; i++ {
			n := idx.byPre[ranks[i]]
			if !fn(n, idx.depth[n]-base) {
				return
			}
		}
	}
}

// StaircaseAncestors emits the distinct ancestors (excluding the contexts
// themselves) of all context nodes, in document order.  Following the
// staircase-join idea for the ancestor axis, parent chains are walked from
// each context but stop as soon as they hit a node already covered by a
// previous context's chain — every node is visited at most twice.
// Distances are not well-defined for merged chains and are reported as the
// depth difference to the *nearest* context below the ancestor.
func (idx *Index) StaircaseAncestors(contexts []int32, fn pathindex.Visit) {
	type anc struct {
		node int32
		dist int32
	}
	seen := make(map[int32]int32, len(contexts)*4) // node -> min dist
	var order []anc
	for _, c := range contexts {
		d := int32(0)
		for n := idx.parent[c]; n != -1; n = idx.parent[n] {
			d++
			if old, ok := seen[n]; ok {
				if d < old {
					seen[n] = d
				}
				break // the rest of the chain is already covered
			}
			seen[n] = d
			order = append(order, anc{node: n})
		}
	}
	for i := range order {
		order[i].dist = seen[order[i].node]
	}
	sort.Slice(order, func(i, j int) bool { return idx.pre[order[i].node] < idx.pre[order[j].node] })
	for _, a := range order {
		if !fn(a.node, a.dist) {
			return
		}
	}
}

// pruneContexts drops contexts covered by another context and returns the
// survivors in ascending preorder — the "staircase" of disjoint intervals.
func (idx *Index) pruneContexts(contexts []int32) []int32 {
	if len(contexts) == 0 {
		return nil
	}
	sorted := make([]int32, len(contexts))
	copy(sorted, contexts)
	sort.Slice(sorted, func(i, j int) bool { return idx.pre[sorted[i]] < idx.pre[sorted[j]] })
	out := sorted[:0]
	var lastEnd int32 = -1 // exclusive preorder end of the last kept subtree
	var lastPre int32 = -1
	for _, c := range sorted {
		if idx.pre[c] == lastPre {
			continue // duplicate context
		}
		if idx.pre[c] < lastEnd {
			continue // inside the previous context's subtree
		}
		out = append(out, c)
		lastEnd = idx.pre[c] + idx.size[c]
		lastPre = idx.pre[c]
	}
	return out
}
