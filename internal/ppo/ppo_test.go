package ppo

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/lgraph"
	"repro/internal/pathindex"
	"repro/internal/storage"
)

// buildTree constructs the forest
//
//	0:a
//	├─ 1:b
//	│   ├─ 3:c
//	│   └─ 4:b
//	└─ 2:c
//	5:a (second root)
//	└─ 6:b
func buildTree(t testing.TB) (*lgraph.LGraph, *Index) {
	t.Helper()
	b := lgraph.NewBuilder()
	for _, tag := range []string{"a", "b", "c", "c", "b", "a", "b"} {
		b.AddNode(tag)
	}
	edges := [][2]int32{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {5, 6}}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g := b.Finish()
	idx, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, idx
}

func TestReachable(t *testing.T) {
	_, idx := buildTree(t)
	cases := []struct {
		x, y int32
		want bool
	}{
		{0, 0, true}, {0, 1, true}, {0, 3, true}, {0, 4, true}, {0, 2, true},
		{1, 3, true}, {1, 2, false}, {2, 3, false}, {3, 0, false},
		{0, 5, false}, {5, 6, true}, {6, 5, false}, {0, 6, false},
	}
	for _, c := range cases {
		if got := idx.Reachable(c.x, c.y); got != c.want {
			t.Errorf("Reachable(%d, %d) = %t, want %t", c.x, c.y, got, c.want)
		}
	}
}

func TestDistance(t *testing.T) {
	_, idx := buildTree(t)
	if d, ok := idx.Distance(0, 3); !ok || d != 2 {
		t.Errorf("Distance(0,3) = %d,%t", d, ok)
	}
	if d, ok := idx.Distance(0, 0); !ok || d != 0 {
		t.Errorf("Distance(0,0) = %d,%t", d, ok)
	}
	if _, ok := idx.Distance(3, 0); ok {
		t.Error("Distance(3,0) should be unreachable")
	}
}

func TestEachReachableOrder(t *testing.T) {
	_, idx := buildTree(t)
	var nodes []int32
	var dists []int32
	idx.EachReachable(0, func(n, d int32) bool {
		nodes = append(nodes, n)
		dists = append(dists, d)
		return true
	})
	wantNodes := []int32{0, 1, 2, 3, 4}
	wantDists := []int32{0, 1, 1, 2, 2}
	if !reflect.DeepEqual(nodes, wantNodes) || !reflect.DeepEqual(dists, wantDists) {
		t.Errorf("EachReachable(0) = %v %v, want %v %v", nodes, dists, wantNodes, wantDists)
	}
}

func TestEachReachableEarlyStop(t *testing.T) {
	_, idx := buildTree(t)
	count := 0
	idx.EachReachable(0, func(n, d int32) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d nodes, want 2", count)
	}
}

func TestEachReachableByTag(t *testing.T) {
	g, idx := buildTree(t)
	var got []int32
	idx.EachReachableByTag(0, g.TagOf("b"), func(n, d int32) bool {
		got = append(got, n)
		return true
	})
	if !reflect.DeepEqual(got, []int32{1, 4}) {
		t.Errorf("b-descendants of 0 = %v, want [1 4]", got)
	}
	// Self inclusion: a at node 0.
	got = nil
	idx.EachReachableByTag(0, g.TagOf("a"), func(n, d int32) bool {
		got = append(got, n)
		return true
	})
	if !reflect.DeepEqual(got, []int32{0}) {
		t.Errorf("a-descendants-or-self of 0 = %v, want [0]", got)
	}
	// Unknown tag: nothing.
	idx.EachReachableByTag(0, lgraph.NoTag, func(n, d int32) bool {
		t.Error("NoTag must match nothing")
		return false
	})
}

func TestEachReaching(t *testing.T) {
	_, idx := buildTree(t)
	var nodes, dists []int32
	idx.EachReaching(3, func(n, d int32) bool {
		nodes = append(nodes, n)
		dists = append(dists, d)
		return true
	})
	if !reflect.DeepEqual(nodes, []int32{3, 1, 0}) || !reflect.DeepEqual(dists, []int32{0, 1, 2}) {
		t.Errorf("EachReaching(3) = %v %v", nodes, dists)
	}
}

func TestEachReachingByTag(t *testing.T) {
	g, idx := buildTree(t)
	var nodes []int32
	idx.EachReachingByTag(3, g.TagOf("a"), func(n, d int32) bool {
		nodes = append(nodes, n)
		return true
	})
	if !reflect.DeepEqual(nodes, []int32{0}) {
		t.Errorf("a-ancestors of 3 = %v, want [0]", nodes)
	}
}

func TestEachChild(t *testing.T) {
	_, idx := buildTree(t)
	var kids []int32
	idx.EachChild(0, func(n, d int32) bool {
		kids = append(kids, n)
		return true
	})
	if !reflect.DeepEqual(kids, []int32{1, 2}) {
		t.Errorf("children of 0 = %v, want [1 2]", kids)
	}
	kids = nil
	idx.EachChild(3, func(n, d int32) bool { kids = append(kids, n); return true })
	if len(kids) != 0 {
		t.Errorf("leaf has children: %v", kids)
	}
}

func TestFollowingPreceding(t *testing.T) {
	_, idx := buildTree(t)
	var fol []int32
	idx.EachFollowing(1, func(n, d int32) bool { fol = append(fol, n); return true })
	if !reflect.DeepEqual(fol, []int32{2}) {
		t.Errorf("following(1) = %v, want [2] (stay within tree)", fol)
	}
	var prec []int32
	idx.EachPreceding(2, func(n, d int32) bool { prec = append(prec, n); return true })
	if !reflect.DeepEqual(prec, []int32{1, 3, 4}) {
		t.Errorf("preceding(2) = %v, want [1 3 4]", prec)
	}
}

func TestNotForest(t *testing.T) {
	b := lgraph.NewBuilder()
	b.AddNode("a")
	b.AddNode("b")
	b.AddNode("c")
	b.AddEdge(0, 2)
	b.AddEdge(1, 2) // two parents
	if _, err := Build(b.Finish()); err != ErrNotForest {
		t.Errorf("Build on DAG: err = %v, want ErrNotForest", err)
	}
	// Pure cycle, no roots.
	b2 := lgraph.NewBuilder()
	b2.AddNode("a")
	b2.AddNode("b")
	b2.AddEdge(0, 1)
	b2.AddEdge(1, 0)
	if _, err := Build(b2.Finish()); err != ErrNotForest {
		t.Errorf("Build on cycle: err = %v, want ErrNotForest", err)
	}
}

func TestWriteTo(t *testing.T) {
	_, idx := buildTree(t)
	n, err := storage.SizeOf(idx)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Errorf("serialized size = %d", n)
	}
}

// randomForest builds a random forest lgraph, deterministic in rng.
func randomForest(rng *rand.Rand, n int) *lgraph.LGraph {
	b := lgraph.NewBuilder()
	tags := []string{"a", "b", "c"}
	for i := 0; i < n; i++ {
		b.AddNode(tags[rng.Intn(len(tags))])
		if i > 0 && rng.Intn(8) != 0 { // some nodes stay roots
			b.AddEdge(int32(rng.Intn(i)), int32(i))
		}
	}
	return b.Finish()
}

func TestPropertyAgainstBFS(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomForest(rng, 2+rng.Intn(60))
		idx, err := Build(g)
		if err != nil {
			return false
		}
		x := int32(rng.Intn(g.NumNodes()))
		dist := g.BFSDistances(x, false)
		for y := int32(0); y < int32(g.NumNodes()); y++ {
			if idx.Reachable(x, y) != (dist[y] >= 0) {
				return false
			}
			if d, ok := idx.Distance(x, y); ok && d != dist[y] {
				return false
			}
		}
		// EachReachable yields exactly the BFS-reachable set in
		// non-decreasing distance order.
		seen := make(map[int32]bool)
		last := int32(-1)
		okOrder := true
		idx.EachReachable(x, func(n, d int32) bool {
			if d < last || dist[n] != d {
				okOrder = false
				return false
			}
			last = d
			seen[n] = true
			return true
		})
		if !okOrder {
			return false
		}
		for y := int32(0); y < int32(g.NumNodes()); y++ {
			if seen[y] != (dist[y] >= 0) {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyAncestors(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomForest(rng, 2+rng.Intn(40))
		idx, err := Build(g)
		if err != nil {
			return false
		}
		x := int32(rng.Intn(g.NumNodes()))
		rdist := g.BFSDistances(x, true)
		seen := make(map[int32]int32)
		idx.EachReaching(x, func(n, d int32) bool {
			seen[n] = d
			return true
		})
		for y := int32(0); y < int32(g.NumNodes()); y++ {
			d, ok := seen[y]
			if ok != (rdist[y] >= 0) {
				return false
			}
			if ok && d != rdist[y] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

var _ pathindex.Index = (*Index)(nil)
