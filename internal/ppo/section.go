package ppo

// v2 snapshot section codec.  Unlike the v1 stream (WriteTo/ReadBody),
// which stores only the core arrays and rebuilds byPre, size and the
// enumeration acceleration structures at load time, the v2 section stores
// everything the probes touch as fixed-width little-endian arrays plus
// prefix-offset tables.  OpenSection therefore performs no reconstruction:
// every array is a zero-copy view into the snapshot bytes, and the
// resulting *Index is the same type — and runs the same probe code — as a
// heap-built one.
//
//	u32 n, numTags, numDepths, flags        (flags: 1 runsSorted, 2 derived)
//	pre, post, depth, parent, size, byPre   []int32 × n
//	tagPreOff  []u32 numTags+1              tagPreData []int32 n
//	-- iff derived --
//	depthRunOff []u32 numDepths+1           depthRunData []int32 n
//	u32 runs                                tagRunIdx []u32 numTags+1
//	tagRunDepth []int32 runs                tagRunStart []u32 runs+1
//	tagRunData []int32 n                    (per tag, (depth, pre)-sorted)

import (
	"fmt"

	"repro/internal/lgraph"
	"repro/internal/pathindex"
	"repro/internal/storage"
)

const (
	secFlagRunsSorted = 1 << 0
	secFlagDerived    = 1 << 1
)

// SectionKind implements storage.SectionEncoder.
func (idx *Index) SectionKind() uint32 { return storage.SectionPPO }

// EncodeSection implements storage.SectionEncoder.
func (idx *Index) EncodeSection(sw *storage.SnapshotWriter) {
	n := len(idx.pre)
	numTags := len(idx.tagPre)
	flags := uint32(0)
	if idx.runsSorted {
		flags |= secFlagRunsSorted
	}
	derived := idx.depthRuns != nil
	if derived {
		flags |= secFlagDerived
	}
	numDepths := len(idx.depthRuns)
	sw.U32(uint32(n))
	sw.U32(uint32(numTags))
	sw.U32(uint32(numDepths))
	sw.U32(flags)
	sw.I32s(idx.pre)
	sw.I32s(idx.post)
	sw.I32s(idx.depth)
	sw.I32s(idx.parent)
	sw.I32s(idx.size)
	sw.I32s(idx.byPre)
	writeNested32(sw, idx.tagPre)
	if !derived {
		return
	}
	writeNested32(sw, idx.depthRuns)
	// Flatten tagDepth: a run-count prefix per tag, then the per-run depth
	// and data-offset tables, then the concatenated pre-rank runs.
	runs := 0
	for _, trs := range idx.tagDepth {
		runs += len(trs)
	}
	idxTab := make([]uint32, numTags+1)
	depthTab := make([]int32, 0, runs)
	startTab := make([]uint32, 0, runs+1)
	total := uint32(0)
	for t, trs := range idx.tagDepth {
		idxTab[t+1] = idxTab[t] + uint32(len(trs))
		for _, r := range trs {
			depthTab = append(depthTab, r.depth)
			startTab = append(startTab, total)
			total += uint32(len(r.pres))
		}
	}
	startTab = append(startTab, total)
	sw.U32(uint32(runs))
	sw.U32s(idxTab)
	sw.I32s(depthTab)
	sw.U32s(startTab)
	for _, trs := range idx.tagDepth {
		for _, r := range trs {
			sw.I32s(r.pres)
		}
	}
}

// writeNested32 writes a [][]int32 as a prefix-offset table plus the
// concatenated elements.
func writeNested32(sw *storage.SnapshotWriter, rows [][]int32) {
	offs := make([]uint32, len(rows)+1)
	for i, r := range rows {
		offs[i+1] = offs[i] + uint32(len(r))
	}
	sw.U32s(offs)
	for _, r := range rows {
		sw.I32s(r)
	}
}

// readNested32 reconstructs a [][]int32 of subslice headers over a
// zero-copy data view; total is the required concatenated length.
func readNested32(d *storage.SectionData, count, total int) [][]int32 {
	offs := d.PrefixOffsets(count, uint32(total))
	data := d.I32s(total)
	if d.Err() != nil {
		return nil
	}
	rows := make([][]int32, count)
	for i := range rows {
		rows[i] = data[offs[i]:offs[i+1]:offs[i+1]]
	}
	return rows
}

// OpenSection reconstructs an Index whose arrays alias the section bytes.
// Validation is one bounded scan over the fixed arrays (value ranges and
// prefix-table monotonicity) so that no probe can index out of bounds even
// on adversarial input; nothing is decoded or rebuilt.
func OpenSection(g *lgraph.LGraph, data []byte) (pathindex.Index, error) {
	d := storage.NewSectionData(data)
	n := int(d.U32())
	numTags := int(d.U32())
	numDepths := int(d.U32())
	flags := d.U32()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n != g.NumNodes() || numTags != g.NumTags() {
		return nil, fmt.Errorf("ppo: section has %d nodes/%d tags, graph %d/%d",
			n, numTags, g.NumNodes(), g.NumTags())
	}
	if numDepths > n {
		return nil, fmt.Errorf("ppo: %d depth runs for %d nodes", numDepths, n)
	}
	idx := &Index{
		g:          g,
		pre:        d.I32s(n),
		post:       d.I32s(n),
		depth:      d.I32s(n),
		parent:     d.I32s(n),
		size:       d.I32s(n),
		byPre:      d.I32s(n),
		runsSorted: flags&secFlagRunsSorted != 0,
	}
	idx.tagPre = readNested32(d, numTags, n)
	if err := d.Err(); err != nil {
		return nil, err
	}
	for v := 0; v < n; v++ {
		p, q := idx.pre[v], idx.byPre[v]
		if p < 0 || int(p) >= n || q < 0 || int(q) >= n {
			return nil, fmt.Errorf("ppo: rank out of range at node %d", v)
		}
		if pa := idx.parent[v]; pa < -1 || int(pa) >= n {
			return nil, fmt.Errorf("ppo: parent %d out of range", pa)
		}
		if dp := idx.depth[v]; dp < 0 || int(dp) >= n {
			return nil, fmt.Errorf("ppo: depth %d out of range", dp)
		}
		if sz := idx.size[v]; sz < 1 || int(p)+int(sz) > n {
			return nil, fmt.Errorf("ppo: subtree [%d+%d] out of range", p, sz)
		}
	}
	for _, ranks := range idx.tagPre {
		for _, p := range ranks {
			if p < 0 || int(p) >= n {
				return nil, fmt.Errorf("ppo: tag rank %d out of range", p)
			}
		}
	}
	if flags&secFlagDerived == 0 {
		// A snapshot written from a derived-less index (corrupt v1
		// lineage); the sort fallback serves every probe.
		idx.runsSorted = false
		return idx, nil
	}
	idx.depthRuns = readNested32(d, numDepths, n)
	runs := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	if runs > n {
		return nil, fmt.Errorf("ppo: %d tag runs for %d nodes", runs, n)
	}
	runIdx := d.PrefixOffsets(numTags, uint32(runs))
	depthTab := d.I32s(runs)
	startTab := d.PrefixOffsets(runs, uint32(n))
	runData := d.I32s(n)
	if err := d.Err(); err != nil {
		return nil, err
	}
	for _, p := range runData {
		if p < 0 || int(p) >= n {
			return nil, fmt.Errorf("ppo: tag-run rank %d out of range", p)
		}
	}
	for _, run := range idx.depthRuns {
		for _, p := range run {
			if p < 0 || int(p) >= n {
				return nil, fmt.Errorf("ppo: depth-run rank %d out of range", p)
			}
		}
	}
	idx.tagDepth = make([][]depthRun, numTags)
	for t := 0; t < numTags; t++ {
		lo, hi := runIdx[t], runIdx[t+1]
		if lo == hi {
			continue
		}
		trs := make([]depthRun, 0, hi-lo)
		for r := lo; r < hi; r++ {
			trs = append(trs, depthRun{
				depth: depthTab[r],
				pres:  runData[startTab[r]:startTab[r+1]:startTab[r+1]],
			})
		}
		idx.tagDepth[t] = trs
	}
	return idx, nil
}
