package ppo

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lgraph"
	"repro/internal/pathindex"
	"repro/internal/storage"
)

// compressedView encodes idx's compressed section and opens a CIndex over
// the bytes.
func compressedView(t testing.TB, g *lgraph.LGraph, idx *Index) *CIndex {
	t.Helper()
	body, err := storage.EncodeSectionBody(idx.EncodeCompressedSection)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := OpenCompressedSection(g, body)
	if err != nil {
		t.Fatal(err)
	}
	return pi.(*CIndex)
}

// collect gathers an enumeration into (node, dist) pairs.
func collect(each func(pathindex.Visit)) [][2]int32 {
	var out [][2]int32
	each(func(n, d int32) bool {
		out = append(out, [2]int32{n, d})
		return true
	})
	return out
}

func pairsEqual(a, b [][2]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCompressedSectionParity checks every probe of the compressed view
// against the heap index over random forests — identical results,
// identical emission order.
func TestCompressedSectionParity(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomForest(rng, 2+rng.Intn(80))
		idx, err := Build(g)
		if err != nil {
			return false
		}
		cv := compressedView(t, g, idx)
		n := int32(g.NumNodes())
		if cv.NumNodes() != int(n) || cv.Name() != "ppo" {
			return false
		}
		for x := int32(0); x < n; x++ {
			for y := int32(0); y < n; y++ {
				if idx.Reachable(x, y) != cv.Reachable(x, y) {
					t.Logf("Reachable(%d,%d) differs", x, y)
					return false
				}
				d1, ok1 := idx.Distance(x, y)
				d2, ok2 := cv.Distance(x, y)
				if ok1 != ok2 || d1 != d2 {
					t.Logf("Distance(%d,%d) differs", x, y)
					return false
				}
			}
			if !pairsEqual(
				collect(func(fn pathindex.Visit) { idx.EachReachable(x, fn) }),
				collect(func(fn pathindex.Visit) { cv.EachReachable(x, fn) })) {
				t.Logf("EachReachable(%d) differs", x)
				return false
			}
			if !pairsEqual(
				collect(func(fn pathindex.Visit) { idx.EachReaching(x, fn) }),
				collect(func(fn pathindex.Visit) { cv.EachReaching(x, fn) })) {
				t.Logf("EachReaching(%d) differs", x)
				return false
			}
			for tag := lgraph.Tag(-1); int(tag) <= g.NumTags(); tag++ {
				if !pairsEqual(
					collect(func(fn pathindex.Visit) { idx.EachReachableByTag(x, tag, fn) }),
					collect(func(fn pathindex.Visit) { cv.EachReachableByTag(x, tag, fn) })) {
					t.Logf("EachReachableByTag(%d, %d) differs", x, tag)
					return false
				}
				if !pairsEqual(
					collect(func(fn pathindex.Visit) { idx.EachReachingByTag(x, tag, fn) }),
					collect(func(fn pathindex.Visit) { cv.EachReachingByTag(x, tag, fn) })) {
					t.Logf("EachReachingByTag(%d, %d) differs", x, tag)
					return false
				}
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestCompressedWriteTo checks that the compressed view re-emits the exact
// v1 stream the heap index writes.
func TestCompressedWriteTo(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomForest(rng, 2+rng.Intn(60))
		idx, err := Build(g)
		if err != nil {
			t.Fatal(err)
		}
		cv := compressedView(t, g, idx)
		var want, got bytes.Buffer
		if _, err := idx.WriteTo(&want); err != nil {
			t.Fatal(err)
		}
		if _, err := cv.WriteTo(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("seed %d: compressed WriteTo differs from heap WriteTo", seed)
		}
	}
}

// TestCompressedEncodePassthrough checks that a compressed view re-encodes
// its own section verbatim.
func TestCompressedEncodePassthrough(t *testing.T) {
	g, idx := buildTree(t)
	body, err := storage.EncodeSectionBody(idx.EncodeCompressedSection)
	if err != nil {
		t.Fatal(err)
	}
	cv := compressedView(t, g, idx)
	if cv.SectionKind() != storage.SectionPPOC {
		t.Fatalf("SectionKind = %d", cv.SectionKind())
	}
	again, err := storage.EncodeSectionBody(cv.EncodeSection)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, again) {
		t.Fatal("EncodeSection is not a verbatim passthrough")
	}
}

// TestCompressedEarlyStop checks that a false-returning visitor stops the
// enumeration.
func TestCompressedEarlyStop(t *testing.T) {
	g, idx := buildTree(t)
	cv := compressedView(t, g, idx)
	count := 0
	cv.EachReachable(0, func(n, d int32) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("visited %d nodes, want 2", count)
	}
}

// TestCompressedSectionCorrupt flips every byte of an encoded section and
// requires OpenCompressedSection to either reject it or serve a view whose
// probes stay in bounds — never a panic.
func TestCompressedSectionCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomForest(rng, 50)
	idx, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	body, err := storage.EncodeSectionBody(idx.EncodeCompressedSection)
	if err != nil {
		t.Fatal(err)
	}
	probe := func(pi pathindex.Index) {
		n := int32(g.NumNodes())
		for x := int32(0); x < n; x += 7 {
			pi.Reachable(x, (x*13)%n)
			pi.EachReachable(x, func(int32, int32) bool { return true })
			pi.EachReachableByTag(x, 1, func(int32, int32) bool { return true })
			// Budget the ancestor walk: a forged parent encoding may cycle
			// (the raw section has the same property); real files are
			// checksummed, so per-step validation would tax only the hot
			// path.
			steps := 0
			pi.EachReaching(x, func(int32, int32) bool {
				steps++
				return steps <= int(n)
			})
		}
	}
	for i := range body {
		for _, bit := range []byte{1, 0x80} {
			c := append([]byte(nil), body...)
			c[i] ^= bit
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("byte %d bit %#x: panic %v", i, bit, r)
					}
				}()
				pi, err := OpenCompressedSection(g, c)
				if err == nil {
					probe(pi)
				}
			}()
		}
	}
	// Truncations at every boundary.
	for cut := 0; cut < len(body); cut += 3 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("truncation to %d: panic %v", cut, r)
				}
			}()
			pi, err := OpenCompressedSection(g, body[:cut])
			if err == nil {
				probe(pi)
			}
		}()
	}
}
