package storage

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// packRoundTrip writes vals through a detached section writer and reads
// them back as a PackedI32.
func packRoundTrip(t *testing.T, vals []int32) (PackedI32, []byte) {
	t.Helper()
	body, err := EncodeSectionBody(func(sw *SnapshotWriter) { sw.PackedI32s(vals) })
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	d := NewSectionData(body)
	p := d.PackedI32s()
	if err := d.Err(); err != nil {
		t.Fatalf("read: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d trailing bytes", d.Remaining())
	}
	return p, body
}

func TestPackedI32RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := map[string][]int32{
		"empty":    {},
		"one":      {42},
		"constant": {-5, -5, -5, -5, -5},
		"identity": func() []int32 {
			v := make([]int32, 1000)
			for i := range v {
				v[i] = int32(i)
			}
			return v
		}(),
		"block-boundary": make([]int32, packedBlock),
		"block-plus-one": func() []int32 {
			v := make([]int32, packedBlock+1)
			for i := range v {
				v[i] = int32(i * 3)
			}
			return v
		}(),
		"extremes": {math.MinInt32, math.MaxInt32, 0, -1, 1},
		"random": func() []int32 {
			v := make([]int32, 5000)
			for i := range v {
				v[i] = int32(rng.Uint32())
			}
			return v
		}(),
		"small-range": func() []int32 {
			v := make([]int32, 777)
			for i := range v {
				v[i] = 1000 + rng.Int31n(30)
			}
			return v
		}(),
	}
	for name, vals := range shapes {
		t.Run(name, func(t *testing.T) {
			p, _ := packRoundTrip(t, vals)
			if p.Len() != len(vals) {
				t.Fatalf("Len = %d, want %d", p.Len(), len(vals))
			}
			for i, want := range vals {
				if got := p.At(int32(i)); got != want {
					t.Fatalf("At(%d) = %d, want %d", i, got, want)
				}
			}
		})
	}
}

func TestPackedI32SearchGE(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]int32, 300)
	for i := range vals {
		vals[i] = rng.Int31n(1000)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	p, _ := packRoundTrip(t, vals)
	for v := int32(-1); v <= 1001; v++ {
		want := int32(sort.Search(len(vals), func(i int) bool { return vals[i] >= v }))
		if got := p.SearchGE(0, int32(len(vals)), v); got != want {
			t.Fatalf("SearchGE(%d) = %d, want %d", v, got, want)
		}
	}
	// Sub-range searches.
	for trial := 0; trial < 100; trial++ {
		lo := rng.Int31n(int32(len(vals)))
		hi := lo + rng.Int31n(int32(len(vals))-lo+1)
		v := rng.Int31n(1000)
		want := hi
		for i := lo; i < hi; i++ {
			if vals[i] >= v {
				want = i
				break
			}
		}
		if got := p.SearchGE(lo, hi, v); got != want {
			t.Fatalf("SearchGE(%d, %d, %d) = %d, want %d", lo, hi, v, got, want)
		}
	}
}

func TestPackedI32Corrupt(t *testing.T) {
	vals := make([]int32, 500)
	for i := range vals {
		vals[i] = int32(i * 7)
	}
	_, body := packRoundTrip(t, vals)
	read := func(b []byte) error {
		d := NewSectionData(b)
		d.PackedI32s()
		return d.Err()
	}
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{1, 4, 8, 12, len(body) / 2, len(body) - 1} {
			if err := read(body[:len(body)-cut]); err == nil {
				t.Fatalf("truncation by %d accepted", cut)
			}
		}
	})
	t.Run("width-over-32", func(t *testing.T) {
		// The widths array follows count, dataLen and the 4-aligned bases.
		nb := (len(vals) + packedBlock - 1) / packedBlock
		c := append([]byte(nil), body...)
		c[8+4*nb] = 33
		if err := read(c); err == nil {
			t.Fatal("width 33 accepted")
		}
	})
	t.Run("datalen-mismatch", func(t *testing.T) {
		c := append([]byte(nil), body...)
		c[4]++ // dataLen low byte
		if err := read(c); err == nil {
			t.Fatal("forged dataLen accepted")
		}
	})
	t.Run("forged-count", func(t *testing.T) {
		c := append([]byte(nil), body...)
		c[0], c[1], c[2], c[3] = 0xff, 0xff, 0xff, 0x7f
		if err := read(c); err == nil {
			t.Fatal("forged count accepted")
		}
	})
}
