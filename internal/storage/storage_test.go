package storage

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Header("test")
	w.Uvarint(42)
	w.Varint(-7)
	w.Int32(123456)
	w.String("hello")
	w.Float64(3.25)
	w.Int32Slice([]int32{1, 5, 5, 100, -3})
	n, err := w.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("count %d != len %d", n, buf.Len())
	}

	r := NewReader(&buf)
	if err := r.Header("test"); err != nil {
		t.Fatal(err)
	}
	if got := r.Uvarint(); got != 42 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := r.Varint(); got != -7 {
		t.Errorf("Varint = %d", got)
	}
	if got := r.Int32(); got != 123456 {
		t.Errorf("Int32 = %d", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.Float64(); got != 3.25 {
		t.Errorf("Float64 = %g", got)
	}
	if got := r.Int32Slice(); !reflect.DeepEqual(got, []int32{1, 5, 5, 100, -3}) {
		t.Errorf("Int32Slice = %v", got)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("NOPExxxx")))
	if err := r.Header("test"); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestWrongKind(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Header("ppo")
	if _, err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if err := r.Header("hopi"); err == nil {
		t.Error("wrong kind accepted")
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Header("t")
	w.String("abcdef")
	if _, err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	r := NewReader(bytes.NewReader(trunc))
	if err := r.Header("t"); err != nil {
		t.Fatal(err)
	}
	_ = r.String()
	if r.Err() == nil {
		t.Error("truncated string not detected")
	}
}

func TestPropertyVarintRoundTrip(t *testing.T) {
	err := quick.Check(func(v int64, u uint64, f float64, s string, sl []int32) bool {
		if math.IsNaN(f) {
			f = 0
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.Varint(v)
		w.Uvarint(u)
		w.Float64(f)
		w.String(s)
		w.Int32Slice(sl)
		if _, err := w.Flush(); err != nil {
			return false
		}
		r := NewReader(&buf)
		if r.Varint() != v || r.Uvarint() != u || r.Float64() != f || r.String() != s {
			return false
		}
		got := r.Int32Slice()
		if len(got) != len(sl) {
			return false
		}
		for i := range got {
			if got[i] != sl[i] {
				return false
			}
		}
		return r.Err() == nil
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestSizeOf(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Header("x")
	w.Int32Slice(make([]int32, 100))
	if _, err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := SizeOf(bytesWriterTo(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(buf.Len()) {
		t.Errorf("SizeOf = %d, want %d", got, buf.Len())
	}
}

type bytesWriterTo []byte

func (b bytesWriterTo) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(b)
	return int64(n), err
}
