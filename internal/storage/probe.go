package storage

// Visit receives one enumerated (node, dist) pair.  Returning false stops
// the enumeration.  It is the callback type of every probe method; the
// pathindex package aliases it so strategy implementations written against
// either package satisfy both.
type Visit func(node, dist int32) bool

// Probe is the storage-agnostic query surface of one meta document's
// connection index: the exact set of operations the Path Expression
// Evaluator issues per frontier pop.  Both backends implement it —
// heap-built indexes (flix.Build, flix.Load) and mmap-backed v2 snapshot
// views (flix.OpenSnapshot) — which is what makes generations
// interchangeable at query time: the evaluator, the streaming/partial
// paths and the sharded tier never learn where the bytes live.
//
// Contract (shared with pathindex.Index, which embeds this interface):
//
//   - Reachability follows the descendants-or-self axis; every node
//     reaches itself at distance 0.
//   - Enumeration methods stream results in ascending (dist, node) order.
//   - Tags are the local graph's dictionary-compressed element names
//     (lgraph.Tag, an int32); a negative tag matches nothing.
//   - Implementations must be safe for concurrent probes and must not
//     allocate on the steady-state enumeration path (pooled scratch only),
//     so the evaluator hot path stays 0 allocs/op over this interface.
type Probe interface {
	// NumNodes returns the number of nodes of the indexed graph.
	NumNodes() int

	// Reachable reports whether there is a (possibly empty) path x -> y.
	Reachable(x, y int32) bool

	// Distance returns the shortest-path distance from x to y, and false
	// if y is not reachable from x.
	Distance(x, y int32) (int32, bool)

	// EachReachable enumerates every node reachable from x (including x,
	// at distance 0) in ascending distance order.
	EachReachable(x int32, fn Visit)

	// EachReachableByTag enumerates the reachable nodes carrying tag, in
	// ascending distance order, descendants-or-self semantics.
	EachReachableByTag(x int32, tag int32, fn Visit)

	// EachReaching enumerates every node that reaches x (the
	// ancestors-or-self axis), in ascending distance order.
	EachReaching(x int32, fn Visit)

	// EachReachingByTag is EachReaching restricted to one tag.
	EachReachingByTag(x int32, tag int32, fn Visit)
}

// SectionEncoder is implemented by index backends that can serialize
// themselves as one v2 snapshot section.  EncodeSection writes the section
// body through the SnapshotWriter (between the caller's Begin/End);
// errors accumulate in the writer.
type SectionEncoder interface {
	// SectionKind returns the section kind tag identifying the decoder.
	SectionKind() uint32
	// EncodeSection writes the section body.
	EncodeSection(sw *SnapshotWriter)
}

// CompressedSectionEncoder is implemented by index backends that can also
// serialize themselves in a compressed section encoding.  The snapshot
// writer encodes both forms and keeps the compressed one only when it pays
// (per-section ratio threshold); backends without this interface — APEX
// and tc, whose sections are small fixed arrays and bitsets — always stay
// raw.
type CompressedSectionEncoder interface {
	SectionEncoder
	// CompressedSectionKind returns the section kind tag of the
	// compressed encoding.
	CompressedSectionKind() uint32
	// EncodeCompressedSection writes the compressed section body.
	EncodeCompressedSection(sw *SnapshotWriter)
}

// Section kinds of the v2 snapshot format.  The kind is stored per section
// in the section table; flix.OpenSnapshot dispatches on it.
const (
	// SectionManifest is the flix-level manifest (configuration, meta
	// document count, per-meta link-table fingerprints).
	SectionManifest uint32 = 1
	// SectionPPO is a pre/postorder index section (internal/ppo).
	SectionPPO uint32 = 2
	// SectionHOPI is a 2-hop-cover index section (internal/hopi).
	SectionHOPI uint32 = 3
	// SectionAPEX is a structural-summary index section (internal/apex).
	SectionAPEX uint32 = 4
	// SectionTC is a transitive-closure index section (internal/tc).
	SectionTC uint32 = 5
	// SectionPPOC is the compressed (frame-of-reference bit-packed)
	// pre/postorder section (internal/ppo).
	SectionPPOC uint32 = 6
	// SectionHOPIC is the compressed (packed offsets, prefix-truncated
	// varint) 2-hop-cover section (internal/hopi).
	SectionHOPIC uint32 = 7
)

// IsCompressedKind reports whether kind is a compressed section encoding.
func IsCompressedKind(kind uint32) bool {
	return kind == SectionPPOC || kind == SectionHOPIC
}

// SectionKindName returns a short operator-facing name for a section kind.
func SectionKindName(kind uint32) string {
	switch kind {
	case SectionManifest:
		return "manifest"
	case SectionPPO:
		return "ppo"
	case SectionHOPI:
		return "hopi"
	case SectionAPEX:
		return "apex"
	case SectionTC:
		return "tc"
	case SectionPPOC:
		return "ppo-c"
	case SectionHOPIC:
		return "hopi-c"
	}
	return "unknown"
}
