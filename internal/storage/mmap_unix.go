//go:build unix

package storage

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only.  mapped reports success; on any
// failure the caller falls back to reading the file into memory.
func mmapFile(f *os.File, size int64) (data []byte, mapped bool, err error) {
	if size <= 0 || size != int64(int(size)) {
		return nil, false, nil
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// munmapBytes releases a mapping created by mmapFile.
func munmapBytes(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}
