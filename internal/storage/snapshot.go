package storage

// The v2 snapshot container: an offset-based, checksummed, mmap-able file
// format.  Unlike the v1 tagged varint stream (Writer/Reader above), a v2
// snapshot is designed to be served without a parse step: the file is a
// header, a sequence of 8-byte-aligned payload sections, a section table of
// (kind, offset, length) entries, and a footer carrying a whole-file CRC-64.
// Opening a snapshot validates the envelope and the checksum — one
// sequential pass that decodes nothing and allocates only the section
// descriptors — after which fixed-width arrays inside sections are used in
// place via unsafe views and varint runs are decoded lazily per probe.
//
//	offset 0          header (32 B): magic "FLIXSNP2", version u32,
//	                  byte-order mark u32, 16 B reserved
//	8-aligned         payload sections, each 8-aligned, back to back
//	tableOff          section table: count × 24 B {off u64, len u64,
//	                  kind u32, pad u32}
//	len(file)-40      footer: tableOff u64, count u64, fileLen u64,
//	                  crc64 u64, end magic "2PNSXILF"
//
// The CRC-64 (ECMA) covers every byte before the crc field itself, so any
// single-bit flip anywhere in the file — header, table, payload or footer —
// fails Open with ErrCorrupt before a single probe can run.  All
// multi-byte values are little-endian; the byte-order mark refuses the
// (theoretical) big-endian host rather than serving garbage through the
// zero-copy views.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc64"
	"io"
	"os"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// SnapshotMagic opens every v2 snapshot file.  It shares the "FLIX" prefix
// with the v1 stream format but differs from byte 4 on (v1 continues with
// the uvarint-length-prefixed kind string), so a reader can sniff the
// format from the first 8 bytes.
const SnapshotMagic = "FLIXSNP2"

// snapshotEndMagic closes the file; a cheap truncation tripwire that fails
// before the checksum is even computed.
const snapshotEndMagic = "2PNSXILF"

// SnapshotVersion is the container format version stamped in the header.
// Open refuses newer versions with ErrVersion.
const SnapshotVersion = 2

// snapshotBOM is the little-endian byte-order mark stored in the header.
const snapshotBOM uint32 = 0x01020304

const (
	snapshotHeaderSize = 32
	snapshotFooterSize = 40
	sectionEntrySize   = 24
	maxSections        = 1 << 26
)

// ErrCorrupt reports a v2 snapshot that failed structural validation or
// its checksum.  Every corruption path (truncation, bit flip, forged
// offsets) surfaces as an error wrapping ErrCorrupt — never a panic and
// never silently wrong results.
var ErrCorrupt = errors.New("storage: snapshot corrupt")

// ErrVersion reports a v2 snapshot written by a newer container version
// than this binary understands.
var ErrVersion = errors.New("storage: snapshot format version not supported")

var crcTable = crc64.MakeTable(crc64.ECMA)

// hostLittleEndian is computed once; the zero-copy views reinterpret
// little-endian file bytes in place, so a big-endian host must refuse.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// SniffSnapshot reports whether b begins like a v2 snapshot.  Callers use
// it to dispatch between the v1 stream loader and OpenSnapshot on the
// shared gen-NNNNNN.flix filename.
func SniffSnapshot(b []byte) bool {
	return len(b) >= len(SnapshotMagic) && string(b[:len(SnapshotMagic)]) == SnapshotMagic
}

// SnapshotWriter streams a v2 snapshot onto an io.Writer: header first,
// then Begin/End-bracketed sections, then Finish emits the section table
// and checksummed footer.  All errors accumulate; check Finish's return.
type SnapshotWriter struct {
	w        io.Writer
	crc      hash.Hash64
	off      int64
	err      error
	sections []sectionEntry
	open     bool
	buf      [4096]byte
	vbuf     [binary.MaxVarintLen64]byte
}

type sectionEntry struct {
	off, length int64
	kind        uint32
}

// NewSnapshotWriter starts a snapshot on w by writing the header.
func NewSnapshotWriter(w io.Writer) *SnapshotWriter {
	sw := &SnapshotWriter{w: w, crc: crc64.New(crcTable)}
	var hdr [snapshotHeaderSize]byte
	copy(hdr[0:8], SnapshotMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], SnapshotVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], snapshotBOM)
	sw.write(hdr[:])
	return sw
}

// EncodeSectionBody runs enc against a detached writer and returns the
// bytes it produced, exactly as they would appear inside a section (the
// detached offset starts at 0, and real section bodies start 8-aligned, so
// the encoder's Align calls agree).  The compressing snapshot writer uses
// it to encode a section in both the raw and the compressed form and keep
// whichever pays.
func EncodeSectionBody(enc func(*SnapshotWriter)) ([]byte, error) {
	var buf bytes.Buffer
	sw := &SnapshotWriter{w: &buf, crc: crc64.New(crcTable)}
	enc(sw)
	return buf.Bytes(), sw.err
}

// write appends hashed bytes.
func (sw *SnapshotWriter) write(b []byte) {
	if sw.err != nil {
		return
	}
	sw.crc.Write(b)
	if _, err := sw.w.Write(b); err != nil {
		sw.err = err
		return
	}
	sw.off += int64(len(b))
}

var zeroPad [8]byte

// Align pads with zero bytes to the next multiple of n (a power of two).
func (sw *SnapshotWriter) Align(n int64) {
	if pad := (n - sw.off%n) % n; pad > 0 {
		sw.write(zeroPad[:pad])
	}
}

// Begin opens a new section of the given kind at the next 8-byte boundary.
func (sw *SnapshotWriter) Begin(kind uint32) {
	if sw.open {
		sw.fail("Begin inside an open section")
		return
	}
	sw.Align(8)
	sw.sections = append(sw.sections, sectionEntry{off: sw.off, kind: kind})
	sw.open = true
}

// End closes the current section.
func (sw *SnapshotWriter) End() {
	if !sw.open {
		sw.fail("End without Begin")
		return
	}
	s := &sw.sections[len(sw.sections)-1]
	s.length = sw.off - s.off
	sw.open = false
}

func (sw *SnapshotWriter) fail(msg string) {
	if sw.err == nil {
		sw.err = fmt.Errorf("storage: snapshot writer: %s", msg)
	}
}

// Raw writes bytes verbatim.
func (sw *SnapshotWriter) Raw(b []byte) { sw.write(b) }

// U32 writes a fixed-width little-endian uint32.
func (sw *SnapshotWriter) U32(v uint32) {
	binary.LittleEndian.PutUint32(sw.vbuf[:4], v)
	sw.write(sw.vbuf[:4])
}

// U64 writes a fixed-width little-endian uint64.
func (sw *SnapshotWriter) U64(v uint64) {
	binary.LittleEndian.PutUint64(sw.vbuf[:8], v)
	sw.write(sw.vbuf[:8])
}

// Uvarint writes an unsigned varint.
func (sw *SnapshotWriter) Uvarint(v uint64) {
	n := binary.PutUvarint(sw.vbuf[:], v)
	sw.write(sw.vbuf[:n])
}

// Varint writes a signed (zig-zag) varint.
func (sw *SnapshotWriter) Varint(v int64) {
	n := binary.PutVarint(sw.vbuf[:], v)
	sw.write(sw.vbuf[:n])
}

// String writes a length-prefixed string.
func (sw *SnapshotWriter) String(s string) {
	sw.Uvarint(uint64(len(s)))
	sw.write([]byte(s))
}

// I32s writes a fixed-width little-endian int32 array (no length prefix;
// the layout carries counts separately so readers can view arrays in
// place).
func (sw *SnapshotWriter) I32s(s []int32) {
	b := sw.buf[:]
	j := 0
	for _, v := range s {
		binary.LittleEndian.PutUint32(b[j:], uint32(v))
		j += 4
		if j == len(b) {
			sw.write(b)
			j = 0
		}
	}
	sw.write(b[:j])
}

// U32s writes a fixed-width little-endian uint32 array.
func (sw *SnapshotWriter) U32s(s []uint32) {
	b := sw.buf[:]
	j := 0
	for _, v := range s {
		binary.LittleEndian.PutUint32(b[j:], v)
		j += 4
		if j == len(b) {
			sw.write(b)
			j = 0
		}
	}
	sw.write(b[:j])
}

// U64s writes a fixed-width little-endian uint64 array.
func (sw *SnapshotWriter) U64s(s []uint64) {
	b := sw.buf[:]
	j := 0
	for _, v := range s {
		binary.LittleEndian.PutUint64(b[j:], v)
		j += 8
		if j == len(b) {
			sw.write(b)
			j = 0
		}
	}
	sw.write(b[:j])
}

// Err returns the first error encountered.
func (sw *SnapshotWriter) Err() error { return sw.err }

// Offset returns the number of bytes written so far.
func (sw *SnapshotWriter) Offset() int64 { return sw.off }

// Finish writes the section table and footer and returns the total byte
// count.
func (sw *SnapshotWriter) Finish() (int64, error) {
	if sw.open {
		sw.fail("Finish with an open section")
	}
	sw.Align(8)
	tableOff := sw.off
	for _, s := range sw.sections {
		sw.U64(uint64(s.off))
		sw.U64(uint64(s.length))
		sw.U32(s.kind)
		sw.U32(0)
	}
	fileLen := sw.off + snapshotFooterSize
	sw.U64(uint64(tableOff))
	sw.U64(uint64(len(sw.sections)))
	sw.U64(uint64(fileLen))
	if sw.err != nil {
		return sw.off, sw.err
	}
	// The crc field and end magic are outside the checksummed region.
	var tail [16]byte
	binary.LittleEndian.PutUint64(tail[0:8], sw.crc.Sum64())
	copy(tail[8:16], snapshotEndMagic)
	if _, err := sw.w.Write(tail[:]); err != nil {
		sw.err = err
		return sw.off, err
	}
	sw.off += 16
	return sw.off, nil
}

// Section is one validated payload section of an open snapshot.
type Section struct {
	// Kind tags the decoder (Section* constants).
	Kind uint32
	// Off is the section's byte offset within the snapshot file.
	Off int64
	// Data aliases the snapshot's bytes; it is read-only (writes to a
	// mapped snapshot fault) and valid until the snapshot is closed.
	Data []byte
}

// Snapshot is an open, validated v2 snapshot.  Its sections alias one
// contiguous byte region — an mmap'd file or an in-memory buffer.
type Snapshot struct {
	data     []byte
	mapped   bool
	closed   atomic.Bool
	sections []Section
}

// OpenSnapshotBytes validates b as a v2 snapshot and returns it without
// copying (unless b is not 8-byte aligned, in which case a private aligned
// copy is made so the zero-copy views hold).  The caller must not mutate b
// while the snapshot is in use.
func OpenSnapshotBytes(b []byte) (*Snapshot, error) {
	if len(b) > 0 && uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		c := make([]byte, len(b))
		copy(c, b)
		b = c
	}
	s := &Snapshot{data: b}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// OpenSnapshotFile opens and validates a v2 snapshot file.  With useMmap
// the file is mapped read-only and served zero-copy (falling back to a
// plain read when the platform cannot map); otherwise it is read into
// memory.  The returned snapshot owns the mapping; Close releases it, and
// a finalizer releases it when the snapshot is garbage collected — a
// retired generation still pinned by in-flight queries stays valid until
// the last reference drops.
func OpenSnapshotFile(path string, useMmap bool) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	var data []byte
	mapped := false
	if useMmap && size > 0 {
		data, mapped, _ = mmapFile(f, size)
	}
	if !mapped {
		data = make([]byte, size)
		if _, err := io.ReadFull(f, data); err != nil {
			return nil, err
		}
	}
	s := &Snapshot{data: data, mapped: mapped}
	if err := s.validate(); err != nil {
		s.Close()
		return nil, err
	}
	if mapped {
		runtime.SetFinalizer(s, (*Snapshot).Close)
	}
	return s, nil
}

func (s *Snapshot) validate() error {
	b := s.data
	if !hostLittleEndian {
		return fmt.Errorf("%w: big-endian hosts cannot serve little-endian snapshots", ErrVersion)
	}
	if len(b) < snapshotHeaderSize+snapshotFooterSize {
		return fmt.Errorf("%w: %d bytes is shorter than header+footer", ErrCorrupt, len(b))
	}
	if !SniffSnapshot(b) {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(b[8:12]); v != SnapshotVersion {
		if v > SnapshotVersion {
			return fmt.Errorf("%w: snapshot is v%d, this binary reads v%d", ErrVersion, v, SnapshotVersion)
		}
		return fmt.Errorf("%w: impossible container version %d", ErrCorrupt, v)
	}
	if bom := binary.LittleEndian.Uint32(b[12:16]); bom != snapshotBOM {
		return fmt.Errorf("%w: byte-order mark %#x", ErrCorrupt, bom)
	}
	foot := b[len(b)-snapshotFooterSize:]
	if string(foot[32:40]) != snapshotEndMagic {
		return fmt.Errorf("%w: bad end magic (truncated?)", ErrCorrupt)
	}
	if fl := binary.LittleEndian.Uint64(foot[16:24]); fl != uint64(len(b)) {
		return fmt.Errorf("%w: footer says %d bytes, file has %d", ErrCorrupt, fl, len(b))
	}
	want := binary.LittleEndian.Uint64(foot[24:32])
	if got := crc64.Checksum(b[:len(b)-16], crcTable); got != want {
		return fmt.Errorf("%w: checksum mismatch (%#x != %#x)", ErrCorrupt, got, want)
	}
	tableOff := binary.LittleEndian.Uint64(foot[0:8])
	count := binary.LittleEndian.Uint64(foot[8:16])
	if count > maxSections {
		return fmt.Errorf("%w: unreasonable section count %d", ErrCorrupt, count)
	}
	tableEnd := int64(len(b)) - snapshotFooterSize
	if tableOff%8 != 0 || int64(tableOff) < snapshotHeaderSize ||
		int64(tableOff)+int64(count)*sectionEntrySize != tableEnd {
		return fmt.Errorf("%w: section table [%d, %d×%d] does not fit", ErrCorrupt, tableOff, count, sectionEntrySize)
	}
	s.sections = make([]Section, count)
	for i := range s.sections {
		e := b[int64(tableOff)+int64(i)*sectionEntrySize:]
		off := binary.LittleEndian.Uint64(e[0:8])
		length := binary.LittleEndian.Uint64(e[8:16])
		kind := binary.LittleEndian.Uint32(e[16:20])
		if off%8 != 0 || int64(off) < snapshotHeaderSize || length > uint64(tableOff) ||
			int64(off) > int64(tableOff)-int64(length) {
			return fmt.Errorf("%w: section %d [%d+%d] out of bounds", ErrCorrupt, i, off, length)
		}
		s.sections[i] = Section{Kind: kind, Off: int64(off), Data: b[off : off+length : off+length]}
	}
	return nil
}

// NumSections returns the number of payload sections.
func (s *Snapshot) NumSections() int { return len(s.sections) }

// Section returns the i-th payload section.
func (s *Snapshot) Section(i int) Section { return s.sections[i] }

// Mapped reports whether the snapshot is memory-mapped (as opposed to read
// into the heap).
func (s *Snapshot) Mapped() bool { return s.mapped }

// Size returns the snapshot's total byte count.
func (s *Snapshot) Size() int64 { return int64(len(s.data)) }

// Close releases the mapping.  It is idempotent; the caller must guarantee
// no section view is dereferenced afterwards.
func (s *Snapshot) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if s.mapped {
		runtime.SetFinalizer(s, nil)
		data := s.data
		s.data, s.sections = nil, nil
		return munmapBytes(data)
	}
	s.data, s.sections = nil, nil
	return nil
}

// Reseal recomputes the footer checksum of a v2 snapshot image in place.
// It exists for tests and tooling that deliberately edit snapshot bytes
// (e.g. stamping a future version) and want only the edited field — not
// the checksum — to trip validation.
func Reseal(b []byte) error {
	if len(b) < snapshotHeaderSize+snapshotFooterSize || !SniffSnapshot(b) {
		return fmt.Errorf("%w: not a v2 snapshot image", ErrCorrupt)
	}
	binary.LittleEndian.PutUint64(b[len(b)-16:], crc64.Checksum(b[:len(b)-16], crcTable))
	return nil
}

// SectionData reads a section body sequentially: fixed-width scalars and
// zero-copy array views over the underlying bytes.  All accesses are
// bounds-checked; the first failure poisons the reader (Err) and
// subsequent reads return zero values — decoders validate once at open
// time, not per probe.
type SectionData struct {
	b   []byte
	off int
	err error
}

// NewSectionData returns a reader over a section body.
func NewSectionData(b []byte) *SectionData { return &SectionData{b: b} }

func (d *SectionData) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

// Err returns the first error encountered.
func (d *SectionData) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *SectionData) Remaining() int { return len(d.b) - d.off }

// Align skips to the next multiple of n within the section (sections are
// 8-aligned in the file, so section-relative alignment is absolute).
func (d *SectionData) Align(n int) {
	if pad := (n - d.off%n) % n; pad > 0 {
		d.Bytes(pad)
	}
}

// Bytes consumes n raw bytes and returns them without copying.
func (d *SectionData) Bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.b)-d.off {
		d.fail("section read of %d bytes at %d overruns %d", n, d.off, len(d.b))
		return nil
	}
	out := d.b[d.off : d.off+n : d.off+n]
	d.off += n
	return out
}

// U32 reads a fixed-width little-endian uint32.
func (d *SectionData) U32() uint32 {
	b := d.Bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed-width little-endian uint64.
func (d *SectionData) U64() uint64 {
	b := d.Bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Uvarint reads an unsigned varint.
func (d *SectionData) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Varint reads a signed varint.
func (d *SectionData) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// String reads a length-prefixed string (copying; strings are tiny
// manifest fields, not payload).
func (d *SectionData) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > 1<<20 {
		d.fail("unreasonable string length %d", n)
		return ""
	}
	return string(d.Bytes(int(n)))
}

// Count reads a fixed u32 array length and range-checks it against limit.
func (d *SectionData) Count(limit int) int {
	n := d.U32()
	if d.err != nil {
		return 0
	}
	if int64(n) > int64(limit) {
		d.fail("count %d exceeds limit %d", n, limit)
		return 0
	}
	return int(n)
}

// I32s consumes an n-element fixed-width int32 array and returns a
// zero-copy view of it.
func (d *SectionData) I32s(n int) []int32 {
	d.Align(4)
	b := d.Bytes(n * 4)
	if b == nil || n == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
}

// U32s consumes an n-element fixed-width uint32 array as a zero-copy view.
func (d *SectionData) U32s(n int) []uint32 {
	d.Align(4)
	b := d.Bytes(n * 4)
	if b == nil || n == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
}

// U64s consumes an n-element fixed-width uint64 array as a zero-copy view.
func (d *SectionData) U64s(n int) []uint64 {
	d.Align(8)
	b := d.Bytes(n * 8)
	if b == nil || n == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
}

// PrefixOffsets consumes an (n+1)-element u32 prefix-offset table and
// validates that it is monotonically non-decreasing and ends at end — the
// one open-time scan that lets every later per-probe slice skip its bounds
// re-checks.
func (d *SectionData) PrefixOffsets(n int, end uint32) []uint32 {
	offs := d.U32s(n + 1)
	if d.err != nil {
		return nil
	}
	if offs[0] != 0 || offs[n] != end {
		d.fail("prefix table spans [%d, %d], want [0, %d]", offs[0], offs[n], end)
		return nil
	}
	for i := 0; i < n; i++ {
		if offs[i] > offs[i+1] {
			d.fail("prefix table not monotonic at %d", i)
			return nil
		}
	}
	return offs
}

// Cursor decodes a varint run from a byte slice without allocating; it is
// a value type embedded in probe scratch.  Decode failures (possible only
// on forged input that also forged the file checksum) read as stream end.
type Cursor struct {
	B   []byte
	Pos int
}

// Uvarint decodes the next unsigned varint; ok is false at stream end.
func (c *Cursor) Uvarint() (uint64, bool) {
	v, n := binary.Uvarint(c.B[c.Pos:])
	if n <= 0 {
		c.Pos = len(c.B)
		return 0, false
	}
	c.Pos += n
	return v, true
}

// Varint decodes the next signed varint; ok is false at stream end.
func (c *Cursor) Varint() (int64, bool) {
	v, n := binary.Varint(c.B[c.Pos:])
	if n <= 0 {
		c.Pos = len(c.B)
		return 0, false
	}
	c.Pos += n
	return v, true
}
