// Package storage provides the binary serialization substrate for the index
// structures.
//
// The paper stores all indexes in database tables and reports their sizes
// (Table 1).  This reproduction serializes each index into a compact binary
// format instead; the reported "index size" is the number of bytes written.
// The format is a simple tagged stream of varints and strings with a header
// and no backward-compatibility machinery — it exists to persist and to
// measure, not to migrate.
package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Magic identifies FliX index files.
const Magic = "FLIX"

// ErrBadMagic is returned when a stream does not start with Magic.
var ErrBadMagic = errors.New("storage: bad magic")

// Writer encodes varints, strings and slices onto an io.Writer and counts
// the bytes written.
type Writer struct {
	w   *bufio.Writer
	n   int64
	err error
	buf [binary.MaxVarintLen64]byte
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Header writes the magic and a format identifier for the index kind.
func (w *Writer) Header(kind string) {
	w.Raw([]byte(Magic))
	w.String(kind)
}

// Raw writes bytes verbatim.
func (w *Writer) Raw(b []byte) {
	if w.err != nil {
		return
	}
	n, err := w.w.Write(b)
	w.n += int64(n)
	w.err = err
}

// Uvarint writes an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.buf[:], v)
	w.Raw(w.buf[:n])
}

// Varint writes a signed varint (zig-zag).
func (w *Writer) Varint(v int64) {
	if w.err != nil {
		return
	}
	n := binary.PutVarint(w.buf[:], v)
	w.Raw(w.buf[:n])
}

// Int32 writes a signed 32-bit value as a varint.
func (w *Writer) Int32(v int32) { w.Varint(int64(v)) }

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.Raw([]byte(s))
}

// Float64 writes an IEEE-754 double.
func (w *Writer) Float64(f float64) {
	if w.err != nil {
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
	w.Raw(b[:])
}

// Int32Slice writes a length-prefixed slice of varint-encoded int32s,
// delta-encoding runs that are ascending (typical for sorted ID lists).
func (w *Writer) Int32Slice(s []int32) {
	w.Uvarint(uint64(len(s)))
	prev := int32(0)
	for _, v := range s {
		w.Varint(int64(v - prev))
		prev = v
	}
}

// Flush flushes buffered output and returns the first error and the byte
// count.
func (w *Writer) Flush() (int64, error) {
	if w.err == nil {
		w.err = w.w.Flush()
	}
	return w.n, w.err
}

// Err returns the first error encountered.
func (w *Writer) Err() error { return w.err }

// Reader decodes streams produced by Writer.
type Reader struct {
	r   *bufio.Reader
	err error
}

// NewReader returns a Reader on r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Header checks the magic and the expected kind.
func (r *Reader) Header(kind string) error {
	got, err := r.ReadHeader()
	if err != nil {
		return err
	}
	if got != kind {
		return fmt.Errorf("storage: index kind %q, want %q", got, kind)
	}
	return nil
}

// ReadHeader checks the magic and returns the stream's kind, for callers
// that dispatch on it.
func (r *Reader) ReadHeader() (string, error) {
	var magic [len(Magic)]byte
	if _, err := io.ReadFull(r.r, magic[:]); err != nil {
		return "", fmt.Errorf("storage: reading magic: %w", err)
	}
	if string(magic[:]) != Magic {
		return "", ErrBadMagic
	}
	got := r.String()
	if r.err != nil {
		return "", r.err
	}
	return got, nil
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	r.err = err
	return v
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.r)
	r.err = err
	return v
}

// Int32 reads a signed 32-bit varint.
func (r *Reader) Int32() int32 { return int32(r.Varint()) }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > 1<<26 {
		r.err = fmt.Errorf("storage: unreasonable string length %d", n)
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = err
		return ""
	}
	return string(b)
}

// Float64 reads an IEEE-754 double.
func (r *Reader) Float64() float64 {
	if r.err != nil {
		return 0
	}
	var b [8]byte
	if _, err := io.ReadFull(r.r, b[:]); err != nil {
		r.err = err
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

// Int32Slice reads a slice written by Writer.Int32Slice.
func (r *Reader) Int32Slice() []int32 {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > 1<<28 {
		r.err = fmt.Errorf("storage: unreasonable slice length %d", n)
		return nil
	}
	s := make([]int32, n)
	prev := int32(0)
	for i := range s {
		prev += int32(r.Varint())
		s[i] = prev
	}
	return s
}

// Err returns the first error encountered.
func (r *Reader) Err() error { return r.err }

// SizeOf measures the serialized size of anything implementing io.WriterTo
// by writing it to a discarding counter.
func SizeOf(wt io.WriterTo) (int64, error) {
	return wt.WriteTo(io.Discard)
}
