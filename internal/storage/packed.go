package storage

// Frame-of-Reference bit-packed int32 arrays — the succinct building block
// of the compressed v2 section encodings (SectionPPOC / SectionHOPIC).
//
// Values are split into blocks of 64.  Each block stores its minimum (the
// frame base, a plain int32) plus the per-value deltas bit-packed at the
// block's width: the smallest number of bits that holds the block's
// max-min range.  64 values at width w occupy exactly 8·w bytes, so block
// payloads are byte-aligned by construction and a value is extracted with
// one unaligned 8-byte load, a shift and a mask — O(1), no decode step, no
// scratch.  The per-block (base, width) directory doubles as a block-skip
// index: point probes and binary searches touch only the blocks they land
// in, never the whole array.
//
// Wire layout (inside a section, read with SectionData):
//
//	u32 count                      number of logical values
//	u32 dataLen                    payload byte count (incl. 8 tail pad)
//	bases  []int32 × nBlocks       per-block frame base (4-aligned)
//	widths []u8    × nBlocks       per-block bit width (0..32)
//	data   []byte  × dataLen       8·width bytes per block, then 8 zero
//	                               bytes so the last extraction's 8-byte
//	                               load stays in bounds
//
// Byte offsets per block are not stored — the reader rebuilds them from
// the widths in one open-time pass into a consolidated per-block directory
// (the only allocation: base, byte offset and width side by side, so an At
// touches one directory cache line plus the value's own 8 bytes),
// validating that the offsets land exactly on dataLen-8 so no At call can
// read out of bounds.

import (
	"encoding/binary"
	"math/bits"
)

// packedBlockShift sets the block size: 64 values per block makes a
// block's payload exactly 8·width bytes.
const packedBlockShift = 6

const packedBlock = 1 << packedBlockShift

// packedDir is one block's directory entry: frame base, payload byte
// offset and bit width, packed into 12 bytes so an At touches a single
// directory cache line.
type packedDir struct {
	off   uint32
	base  int32
	width uint32
}

// PackedI32 is a read-only view of a bit-packed int32 array inside a
// snapshot section.  The zero value is an empty array.
type PackedI32 struct {
	n    int32
	dir  []packedDir
	data []byte // zero-copy section view
}

// Len returns the number of values.
func (p *PackedI32) Len() int { return int(p.n) }

// At returns the i-th value.  i must be in [0, Len()).
func (p *PackedI32) At(i int32) int32 {
	d := &p.dir[uint32(i)>>packedBlockShift]
	w := d.width
	if w == 0 {
		return d.base
	}
	bit := (uint32(i) & (packedBlock - 1)) * w
	word := binary.LittleEndian.Uint64(p.data[d.off+bit>>3:])
	return int32(uint32(d.base) + uint32(word>>(bit&7)&(1<<w-1)))
}

// SearchGE returns the least index in [lo, hi) whose value is >= v,
// assuming the values in that range are ascending; hi when none is.
func (p *PackedI32) SearchGE(lo, hi, v int32) int32 {
	for lo < hi {
		m := int32(uint32(lo+hi) >> 1)
		if p.At(m) < v {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// PackedI32s writes vals in the frame-of-reference bit-packed layout.
func (sw *SnapshotWriter) PackedI32s(vals []int32) {
	nb := (len(vals) + packedBlock - 1) / packedBlock
	bases := make([]int32, nb)
	widths := make([]byte, nb)
	dataLen := 8 // tail pad
	for b := 0; b < nb; b++ {
		blk := vals[b*packedBlock : min((b+1)*packedBlock, len(vals))]
		lo, hi := blk[0], blk[0]
		for _, v := range blk[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		bases[b] = lo
		w := bits.Len32(uint32(hi) - uint32(lo))
		widths[b] = byte(w)
		dataLen += 8 * w
	}
	sw.U32(uint32(len(vals)))
	sw.U32(uint32(dataLen))
	// Writer-side alignment must mirror the reader's (sections are
	// 8-aligned in the file, so file and section alignment agree): I32s
	// aligns to 4 on read, and the payload is aligned to 8 so its end —
	// dataLen is a multiple of 8 — leaves the stream aligned for whatever
	// follows the array.
	sw.Align(4)
	sw.I32s(bases)
	sw.Raw(widths)
	sw.Align(8)
	// The pack buffer holds one block at max width plus the 8-byte slack
	// the word-wise OR below writes into.
	var buf [8*32 + 8]byte
	for b := 0; b < nb; b++ {
		w := uint32(widths[b])
		if w == 0 {
			continue
		}
		clear(buf[:8*w+8])
		base := uint32(bases[b])
		for i, v := range vals[b*packedBlock : min((b+1)*packedBlock, len(vals))] {
			bit := uint32(i) * w
			pos := bit >> 3
			word := binary.LittleEndian.Uint64(buf[pos:])
			binary.LittleEndian.PutUint64(buf[pos:], word|uint64(uint32(v)-base)<<(bit&7))
		}
		sw.Raw(buf[:8*w])
	}
	sw.Raw(zeroPad[:])
}

// PackedPrefixOffsets consumes a bit-packed prefix table of n+1 offsets —
// written with PackedI32s — and applies the same validation as
// PrefixOffsets: starts at 0, ends at end, monotonically nondecreasing.
// Prefix tables over a few thousand rows are where plain u32 tables waste
// the most (tag-run starts are small deltas but span the node range), so
// sections store them frame-of-reference packed like every other array.
func (d *SectionData) PackedPrefixOffsets(n int, end uint32) PackedI32 {
	offs := d.PackedI32s()
	if d.err != nil {
		return PackedI32{}
	}
	if offs.Len() != n+1 {
		d.fail("prefix table has %d entries, want %d", offs.Len(), n+1)
		return PackedI32{}
	}
	if first, last := offs.At(0), offs.At(int32(n)); first != 0 || uint32(last) != end {
		d.fail("prefix table spans [%d, %d], want [0, %d]", first, last, end)
		return PackedI32{}
	}
	prev := int32(0)
	for i := int32(1); i <= int32(n); i++ {
		v := offs.At(i)
		if v < prev {
			d.fail("prefix table not monotonic at %d", i-1)
			return PackedI32{}
		}
		prev = v
	}
	return offs
}

// PackedI32s consumes a bit-packed array, validating the directory so that
// every later At stays in bounds: widths are capped at 32 and the
// width-derived block offsets must land exactly on the declared payload
// length (minus the tail pad).  Value-range validation is the caller's
// job, exactly as with the plain zero-copy array views.
func (d *SectionData) PackedI32s() PackedI32 {
	n := d.U32()
	dataLen := d.U32()
	if d.err != nil {
		return PackedI32{}
	}
	if n > 1<<31-1 {
		d.fail("packed array count %d overflows", n)
		return PackedI32{}
	}
	// A forged count cannot force a large allocation: the directory reads
	// below consume 5 bytes per declared block from the section itself, so
	// they fail on bounds before offs is ever allocated.
	nb := (int(n) + packedBlock - 1) / packedBlock
	bases := d.I32s(nb)
	widths := d.Bytes(nb)
	d.Align(8)
	p := PackedI32{n: int32(n)}
	p.data = d.Bytes(int(dataLen))
	if d.err != nil {
		return PackedI32{}
	}
	p.dir = make([]packedDir, nb)
	off := uint32(0)
	for b, w := range widths {
		if w > 32 {
			d.fail("packed block width %d", w)
			return PackedI32{}
		}
		p.dir[b] = packedDir{off: off, base: bases[b], width: uint32(w)}
		off += 8 * uint32(w)
	}
	if off+8 != dataLen {
		d.fail("packed payload is %d bytes, directory spans %d", dataLen, off+8)
		return PackedI32{}
	}
	return p
}
