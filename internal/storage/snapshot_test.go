package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// buildTestSnapshot emits a small two-section snapshot exercising every
// writer primitive.
func buildTestSnapshot(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw := NewSnapshotWriter(&buf)
	sw.Begin(SectionManifest)
	sw.Varint(-42)
	sw.Uvarint(7)
	sw.String("manifest")
	sw.U64(0xdeadbeef)
	sw.End()
	sw.Begin(SectionPPO)
	sw.U32(3)
	sw.I32s([]int32{-1, 0, 1})
	sw.U32s([]uint32{0, 2, 3})
	sw.Align(8)
	sw.U64s([]uint64{1 << 40, 2})
	sw.Raw([]byte{9, 9})
	sw.End()
	n, err := sw.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if int(n) != buf.Len() {
		t.Fatalf("Finish reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	raw := buildTestSnapshot(t)
	if !SniffSnapshot(raw) {
		t.Fatal("SniffSnapshot rejects a valid snapshot")
	}
	s, err := OpenSnapshotBytes(raw)
	if err != nil {
		t.Fatalf("OpenSnapshotBytes: %v", err)
	}
	if s.NumSections() != 2 {
		t.Fatalf("NumSections = %d, want 2", s.NumSections())
	}
	if k := s.Section(0).Kind; k != SectionManifest {
		t.Errorf("section 0 kind = %d", k)
	}
	d := NewSectionData(s.Section(0).Data)
	if v := d.Varint(); v != -42 {
		t.Errorf("Varint = %d", v)
	}
	if v := d.Uvarint(); v != 7 {
		t.Errorf("Uvarint = %d", v)
	}
	if v := d.String(); v != "manifest" {
		t.Errorf("String = %q", v)
	}
	if v := d.U64(); v != 0xdeadbeef {
		t.Errorf("U64 = %#x", v)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("manifest read: %v", err)
	}

	d = NewSectionData(s.Section(1).Data)
	if v := d.U32(); v != 3 {
		t.Errorf("U32 = %d", v)
	}
	i32 := d.I32s(3)
	if len(i32) != 3 || i32[0] != -1 || i32[2] != 1 {
		t.Errorf("I32s = %v", i32)
	}
	offs := d.PrefixOffsets(2, 3)
	if len(offs) != 3 || offs[1] != 2 {
		t.Errorf("PrefixOffsets = %v (err %v)", offs, d.Err())
	}
	d.Align(8)
	u64 := d.U64s(2)
	if len(u64) != 2 || u64[0] != 1<<40 {
		t.Errorf("U64s = %v", u64)
	}
	if b := d.Bytes(2); !bytes.Equal(b, []byte{9, 9}) {
		t.Errorf("Bytes = %v", b)
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d", d.Remaining())
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotUnalignedInputIsCopied(t *testing.T) {
	raw := buildTestSnapshot(t)
	// Force a misaligned backing array; OpenSnapshotBytes must realign so
	// the zero-copy views hold.
	backing := make([]byte, len(raw)+1)
	copy(backing[1:], raw)
	s, err := OpenSnapshotBytes(backing[1:])
	if err != nil {
		t.Fatalf("OpenSnapshotBytes(unaligned): %v", err)
	}
	d := NewSectionData(s.Section(1).Data)
	d.U32()
	if v := d.I32s(3); v[1] != 0 {
		t.Errorf("I32s over realigned copy = %v", v)
	}
}

func TestSnapshotFileMmap(t *testing.T) {
	raw := buildTestSnapshot(t)
	path := filepath.Join(t.TempDir(), "snap.flix")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, useMmap := range []bool{false, true} {
		s, err := OpenSnapshotFile(path, useMmap)
		if err != nil {
			t.Fatalf("OpenSnapshotFile(mmap=%v): %v", useMmap, err)
		}
		if s.Size() != int64(len(raw)) {
			t.Errorf("Size = %d, want %d", s.Size(), len(raw))
		}
		if s.NumSections() != 2 {
			t.Errorf("NumSections = %d", s.NumSections())
		}
		if !useMmap && s.Mapped() {
			t.Error("Mapped() true without mmap requested")
		}
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Errorf("second Close: %v", err)
		}
	}
}

func TestSnapshotTruncations(t *testing.T) {
	raw := buildTestSnapshot(t)
	for n := 0; n < len(raw); n++ {
		if _, err := OpenSnapshotBytes(raw[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
}

func TestSnapshotEveryBitFlip(t *testing.T) {
	raw := buildTestSnapshot(t)
	for i := range raw {
		bad := bytes.Clone(raw)
		bad[i] ^= 1 << uint(i%8)
		_, err := OpenSnapshotBytes(bad)
		if err == nil {
			t.Fatalf("flip of byte %d accepted", i)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("flip of byte %d: untyped error %v", i, err)
		}
	}
}

func TestSnapshotFutureVersionTyped(t *testing.T) {
	raw := bytes.Clone(buildTestSnapshot(t))
	binary.LittleEndian.PutUint32(raw[8:12], SnapshotVersion+1)
	if err := Reseal(raw); err != nil {
		t.Fatal(err)
	}
	_, err := OpenSnapshotBytes(raw)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("v%d snapshot: err = %v, want ErrVersion", SnapshotVersion+1, err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("version refusal should not read as corruption: %v", err)
	}
}

func TestSnapshotForgedSectionBounds(t *testing.T) {
	raw := buildTestSnapshot(t)
	s, err := OpenSnapshotBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the table: it sits right before the footer.
	tableOff := len(raw) - snapshotFooterSize - s.NumSections()*sectionEntrySize
	for _, forge := range []struct {
		name string
		off  uint64
		len  uint64
	}{
		{"offset past table", uint64(tableOff + 8), 16},
		{"misaligned offset", 33, 8},
		{"length past table", snapshotHeaderSize, uint64(len(raw))},
		{"offset into header", 8, 16},
	} {
		bad := bytes.Clone(raw)
		binary.LittleEndian.PutUint64(bad[tableOff:], forge.off)
		binary.LittleEndian.PutUint64(bad[tableOff+8:], forge.len)
		if err := Reseal(bad); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenSnapshotBytes(bad); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", forge.name, err)
		}
	}
}

func TestCursorDecodesAndTerminates(t *testing.T) {
	var blob []byte
	blob = binary.AppendUvarint(blob, 300)
	blob = binary.AppendVarint(blob, -5)
	c := Cursor{B: blob}
	if v, ok := c.Uvarint(); !ok || v != 300 {
		t.Fatalf("Uvarint = %d, %v", v, ok)
	}
	if v, ok := c.Varint(); !ok || v != -5 {
		t.Fatalf("Varint = %d, %v", v, ok)
	}
	if _, ok := c.Uvarint(); ok {
		t.Fatal("Uvarint past end reported ok")
	}
	// A truncated varint must read as stream end, not loop or panic.
	c = Cursor{B: []byte{0x80, 0x80}}
	if _, ok := c.Uvarint(); ok {
		t.Fatal("truncated uvarint reported ok")
	}
	if c.Pos != len(c.B) {
		t.Fatalf("cursor not pinned to end: %d", c.Pos)
	}
}

func TestSectionDataPoisoning(t *testing.T) {
	d := NewSectionData([]byte{1, 2})
	if d.U64(); d.Err() == nil {
		t.Fatal("U64 over 2 bytes did not error")
	}
	// Poisoned readers return zero values, never panic.
	if v := d.U32(); v != 0 {
		t.Errorf("poisoned U32 = %d", v)
	}
	if v := d.I32s(4); v != nil {
		t.Errorf("poisoned I32s = %v", v)
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Errorf("poison error = %v, want ErrCorrupt", d.Err())
	}
}

func TestPrefixOffsetsRejectsNonMonotonic(t *testing.T) {
	var buf bytes.Buffer
	sw := NewSnapshotWriter(&buf)
	sw.Begin(SectionTC)
	sw.U32s([]uint32{0, 5, 3, 9})
	sw.End()
	if _, err := sw.Finish(); err != nil {
		t.Fatal(err)
	}
	s, err := OpenSnapshotBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	d := NewSectionData(s.Section(0).Data)
	if offs := d.PrefixOffsets(3, 9); offs != nil || d.Err() == nil {
		t.Fatalf("non-monotonic prefix table accepted: %v", offs)
	}
}
