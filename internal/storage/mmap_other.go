//go:build !unix

package storage

import "os"

// mmapFile is unavailable on this platform; OpenSnapshotFile reads the
// file into memory instead (the zero-copy section views work the same
// over a heap buffer).
func mmapFile(f *os.File, size int64) (data []byte, mapped bool, err error) {
	return nil, false, nil
}

func munmapBytes(b []byte) error { return nil }
