// Package meta implements FliX's Meta Document Builder and Indexing
// Strategy Selector (§3.2, §4.1).
//
// A meta document is a subset of the collection's documents together with
// the link edges represented inside it.  The builder flattens each part of
// a document partitioning into a local labeled graph (lgraph.LGraph) with a
// dense node numbering, and records the remaining links — the ones the Path
// Expression Evaluator follows at query run time — as cross links attached
// to their source meta documents.
package meta

import (
	"fmt"
	"sort"

	"repro/internal/lgraph"
	"repro/internal/partition"
	"repro/internal/xmlgraph"
)

// CrossLink is a link edge not represented in any meta document index.  The
// source is local to the owning meta document; the target is global because
// it usually lies in another meta document.
type CrossLink struct {
	FromLocal int32
	To        xmlgraph.NodeID
}

// InLink is the mirror image for the ancestors direction.
type InLink struct {
	From    xmlgraph.NodeID
	ToLocal int32
}

// MetaDocument is one unit of indexing.
type MetaDocument struct {
	// ID is the meta document's index in its Set.
	ID int
	// Docs lists the member documents, ascending.  Element-level meta
	// documents (BuildElements) cut across documents and leave Docs nil.
	Docs []xmlgraph.DocID
	// Graph is the local data graph: tree edges plus included links.
	Graph *lgraph.LGraph
	// OutLinks lists the runtime links leaving elements of this meta
	// document, sorted by FromLocal.
	OutLinks []CrossLink
	// InLinks lists the runtime links entering this meta document,
	// sorted by ToLocal.
	InLinks []InLink
	// LinkSources lists the distinct local nodes with at least one
	// outgoing runtime link, ascending — the set L_i of §4.2.
	LinkSources []int32
	// linkStart[i] indexes into OutLinks for LinkSources[i] lookups.
	linkOf map[int32][]CrossLink

	// toGlobal maps local node IDs to collection node IDs.
	toGlobal []xmlgraph.NodeID
}

// ToGlobal converts a local node ID to the collection node ID.
func (m *MetaDocument) ToGlobal(local int32) xmlgraph.NodeID {
	return m.toGlobal[local]
}

// LinksFrom returns the runtime links leaving the given local node.
func (m *MetaDocument) LinksFrom(local int32) []CrossLink {
	return m.linkOf[local]
}

// Set is a complete meta-document decomposition of a collection.
type Set struct {
	Coll  *xmlgraph.Collection
	Metas []*MetaDocument
	// MetaOf and LocalOf map a collection node to its meta document and
	// local node ID.
	MetaOf  []int32
	LocalOf []int32
}

// Build flattens a document-level partitioning into meta documents.
func Build(c *xmlgraph.Collection, r *partition.Result) *Set {
	s := &Set{
		Coll:    c,
		MetaOf:  make([]int32, c.NumNodes()),
		LocalOf: make([]int32, c.NumNodes()),
	}
	s.Metas = make([]*MetaDocument, len(r.Parts))
	for pi, docs := range r.Parts {
		md := &MetaDocument{ID: pi, Docs: docs}
		for _, d := range docs {
			first, last := c.Doc(d).Nodes()
			for n := first; n < last; n++ {
				s.MetaOf[n] = int32(pi)
				s.LocalOf[n] = int32(len(md.toGlobal))
				md.toGlobal = append(md.toGlobal, n)
			}
		}
		s.Metas[pi] = md
	}
	// Tree edges always stay inside one meta document (documents are
	// atomic at this level); links follow IncludedLinks.
	s.wireEdges(func(i int) bool { return r.IncludedLinks[i] })
	return s
}

// BuildElements flattens a node-level assignment into meta documents — the
// element-level meta documents sketched in §7 ("ignore the artificial
// boundary of documents and combine semantically related, connected
// elements into a single meta document").  assign[n] gives the partition of
// node n (0 <= assign[n] < parts).  Any edge crossing the assignment —
// including a parent-child tree edge — becomes a runtime link; the Path
// Expression Evaluator handles those uniformly.
func BuildElements(c *xmlgraph.Collection, assign []int32, parts int) *Set {
	s := &Set{
		Coll:    c,
		MetaOf:  make([]int32, c.NumNodes()),
		LocalOf: make([]int32, c.NumNodes()),
	}
	s.Metas = make([]*MetaDocument, parts)
	for pi := range s.Metas {
		s.Metas[pi] = &MetaDocument{ID: pi}
	}
	for n := xmlgraph.NodeID(0); int(n) < c.NumNodes(); n++ {
		md := s.Metas[assign[n]]
		s.MetaOf[n] = assign[n]
		s.LocalOf[n] = int32(len(md.toGlobal))
		md.toGlobal = append(md.toGlobal, n)
	}
	s.wireEdges(func(i int) bool {
		l := c.Links()[i]
		return assign[l.From] == assign[l.To]
	})
	return s
}

// wireEdges builds each meta document's local graph and the runtime link
// tables.  Tree edges whose endpoints fall into different meta documents
// (possible only for element-level sets) become runtime links; data links
// follow linkIncluded.
func (s *Set) wireEdges(linkIncluded func(i int) bool) {
	c := s.Coll
	builders := make([]*lgraph.Builder, len(s.Metas))
	for pi, md := range s.Metas {
		b := lgraph.NewBuilder()
		for _, n := range md.toGlobal {
			b.AddNode(c.Tag(n))
		}
		builders[pi] = b
	}
	cross := func(from, to xmlgraph.NodeID) {
		src := s.Metas[s.MetaOf[from]]
		src.OutLinks = append(src.OutLinks, CrossLink{FromLocal: s.LocalOf[from], To: to})
		dst := s.Metas[s.MetaOf[to]]
		dst.InLinks = append(dst.InLinks, InLink{From: from, ToLocal: s.LocalOf[to]})
	}
	for pi, md := range s.Metas {
		for _, n := range md.toGlobal {
			c.EachChild(n, func(ch xmlgraph.NodeID) {
				if s.MetaOf[ch] == int32(pi) {
					builders[pi].AddEdge(s.LocalOf[n], s.LocalOf[ch])
				} else {
					cross(n, ch)
				}
			})
		}
	}
	for i, l := range c.Links() {
		if linkIncluded(i) {
			pi := s.MetaOf[l.From]
			builders[pi].AddEdge(s.LocalOf[l.From], s.LocalOf[l.To])
			continue
		}
		cross(l.From, l.To)
	}
	for pi, md := range s.Metas {
		md.Graph = builders[pi].Finish()
		sort.Slice(md.OutLinks, func(a, b int) bool {
			if md.OutLinks[a].FromLocal != md.OutLinks[b].FromLocal {
				return md.OutLinks[a].FromLocal < md.OutLinks[b].FromLocal
			}
			return md.OutLinks[a].To < md.OutLinks[b].To
		})
		sort.Slice(md.InLinks, func(a, b int) bool {
			if md.InLinks[a].ToLocal != md.InLinks[b].ToLocal {
				return md.InLinks[a].ToLocal < md.InLinks[b].ToLocal
			}
			return md.InLinks[a].From < md.InLinks[b].From
		})
		md.linkOf = make(map[int32][]CrossLink)
		for _, cl := range md.OutLinks {
			if len(md.linkOf[cl.FromLocal]) == 0 {
				md.LinkSources = append(md.LinkSources, cl.FromLocal)
			}
			md.linkOf[cl.FromLocal] = append(md.linkOf[cl.FromLocal], cl)
		}
	}
}

// Validate checks the internal consistency of the set; it is used by tests
// and by flixquery's --check mode.
func (s *Set) Validate() error {
	seen := make([]bool, s.Coll.NumNodes())
	for pi, md := range s.Metas {
		if md.Graph.NumNodes() != len(md.toGlobal) {
			return fmt.Errorf("meta %d: graph has %d nodes, mapping %d", pi, md.Graph.NumNodes(), len(md.toGlobal))
		}
		for local, g := range md.toGlobal {
			if seen[g] {
				return fmt.Errorf("node %d in two meta documents", g)
			}
			seen[g] = true
			if s.MetaOf[g] != int32(pi) || s.LocalOf[g] != int32(local) {
				return fmt.Errorf("node %d: inconsistent mapping", g)
			}
			if md.Graph.TagName(md.Graph.Tag(int32(local))) != s.Coll.Tag(g) {
				return fmt.Errorf("node %d: tag mismatch", g)
			}
		}
	}
	for _, ok := range seen {
		if !ok {
			return fmt.Errorf("meta set does not cover all nodes")
		}
	}
	return nil
}
