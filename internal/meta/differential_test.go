package meta

import (
	"fmt"
	"testing"

	"repro/internal/lgraph"
	"repro/internal/partition"
	"repro/internal/pathindex"
	"repro/internal/tc"
	"repro/internal/testutil"
)

// The differential suite cross-checks every strategy in Registry against
// the transitive-closure oracle on seeded random collections of all three
// structural families (trees, DAGs with id/idref links, cross-document
// XLinks): exact agreement on reachability, distances, and the ascending
// (distance, node) result ordering, for forward and reverse enumeration,
// wildcard and per-tag.  Strategies with a parallel builder are checked at
// parallelism 1 and 4 — the parallel build must answer identically.
//
// Every failure message carries the family and seed, so a red run
// reproduces exactly with testutil.Generate(family, seed, 6, 30, 12).
func TestDifferentialRegistryVsTC(t *testing.T) {
	for _, family := range testutil.Families() {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", family, seed), func(t *testing.T) {
				c := testutil.Generate(family, seed, 6, 30, 12)
				set := Build(c, partition.Whole(c))
				if err := set.Validate(); err != nil {
					t.Fatalf("family=%s seed=%d: invalid meta set: %v", family, seed, err)
				}
				g := set.Metas[0].Graph
				oracle := tc.Build(g)
				for name, strat := range Registry {
					if strat.RequiresForest && !g.IsForest() {
						t.Logf("family=%s seed=%d: skipping %s (graph is not a forest)", family, seed, name)
						continue
					}
					t.Run(name, func(t *testing.T) {
						ctx := fmt.Sprintf("family=%s seed=%d strategy=%s", family, seed, name)
						idx, err := strat.Build(g)
						if err != nil {
							t.Fatalf("%s: build: %v", ctx, err)
						}
						diffCheck(t, ctx, g, idx, oracle)
						if strat.BuildParallel != nil {
							pidx, err := strat.BuildParallel(g, 4)
							if err != nil {
								t.Fatalf("%s: parallel build: %v", ctx, err)
							}
							diffCheck(t, ctx+" (parallelism=4)", g, pidx, oracle)
						}
					})
				}
			})
		}
	}
}

// visitPair is one (node, dist) step of an enumeration.
type visitPair struct{ node, dist int32 }

func collect(enum func(pathindex.Visit)) []visitPair {
	var out []visitPair
	enum(func(node, dist int32) bool {
		out = append(out, visitPair{node, dist})
		return true
	})
	return out
}

// diffCheck asserts exact agreement between idx and the oracle on every
// node: reachability and distance for all pairs, plus the full enumeration
// sequences (order included) for the descendants-or-self and
// ancestors-or-self axes, wildcard and per-tag.
func diffCheck(t *testing.T, ctx string, g *lgraph.LGraph, idx pathindex.Index, oracle *tc.Index) {
	t.Helper()
	n := int32(idx.NumNodes())
	if int(n) != oracle.NumNodes() {
		t.Fatalf("%s: index has %d nodes, oracle %d", ctx, n, oracle.NumNodes())
	}
	for u := int32(0); u < n; u++ {
		for v := int32(0); v < n; v++ {
			wd, wok := oracle.Distance(u, v)
			gd, gok := idx.Distance(u, v)
			if wok != gok || (wok && wd != gd) {
				t.Fatalf("%s: Distance(%d,%d) = (%d,%v), oracle (%d,%v)", ctx, u, v, gd, gok, wd, wok)
			}
			if idx.Reachable(u, v) != wok {
				t.Fatalf("%s: Reachable(%d,%d) = %v, oracle %v", ctx, u, v, !wok, wok)
			}
		}
		checkSeq(t, ctx, fmt.Sprintf("EachReachable(%d)", u),
			collect(func(fn pathindex.Visit) { idx.EachReachable(u, fn) }),
			collect(func(fn pathindex.Visit) { oracle.EachReachable(u, fn) }))
		checkSeq(t, ctx, fmt.Sprintf("EachReaching(%d)", u),
			collect(func(fn pathindex.Visit) { idx.EachReaching(u, fn) }),
			collect(func(fn pathindex.Visit) { oracle.EachReaching(u, fn) }))
		for ti := 0; ti < g.NumTags(); ti++ {
			tag := lgraph.Tag(ti)
			checkSeq(t, ctx, fmt.Sprintf("EachReachableByTag(%d,%q)", u, g.TagName(tag)),
				collect(func(fn pathindex.Visit) { idx.EachReachableByTag(u, tag, fn) }),
				collect(func(fn pathindex.Visit) { oracle.EachReachableByTag(u, tag, fn) }))
			checkSeq(t, ctx, fmt.Sprintf("EachReachingByTag(%d,%q)", u, g.TagName(tag)),
				collect(func(fn pathindex.Visit) { idx.EachReachingByTag(u, tag, fn) }),
				collect(func(fn pathindex.Visit) { oracle.EachReachingByTag(u, tag, fn) }))
		}
	}
}

func checkSeq(t *testing.T, ctx, what string, got, want []visitPair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %s returned %d results, oracle %d", ctx, what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: %s result %d is (node %d, dist %d), oracle (node %d, dist %d)",
				ctx, what, i, got[i].node, got[i].dist, want[i].node, want[i].dist)
		}
	}
}
