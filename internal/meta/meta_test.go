package meta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/partition"
	"repro/internal/xmlgraph"
)

// buildLinked: two documents with one runtime link between them.
func buildLinked(t testing.TB) *xmlgraph.Collection {
	t.Helper()
	c := xmlgraph.NewCollection()
	a := c.NewDocument("a")
	a.Enter("bib", "")
	art := a.Enter("article", "")
	a.AddLeaf("author", "")
	a.Leave()
	a.Leave()
	a.Close()
	b := c.NewDocument("b")
	r := b.Enter("paper", "")
	b.AddLeaf("title", "")
	b.Leave()
	b.Close()
	c.AddLink(art, r, xmlgraph.EdgeInterLink)
	c.Freeze()
	return c
}

func TestBuildSingleton(t *testing.T) {
	c := buildLinked(t)
	s := Build(c, partition.Singleton(c))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Metas) != 2 {
		t.Fatalf("metas = %d", len(s.Metas))
	}
	m0 := s.Metas[0]
	if m0.Graph.NumNodes() != 3 {
		t.Errorf("meta 0 nodes = %d", m0.Graph.NumNodes())
	}
	// The inter-document link is a runtime link from meta 0 to meta 1.
	if len(m0.OutLinks) != 1 {
		t.Fatalf("meta 0 out links = %d", len(m0.OutLinks))
	}
	cl := m0.OutLinks[0]
	if c.Tag(m0.ToGlobal(cl.FromLocal)) != "article" {
		t.Errorf("link source tag = %q", c.Tag(m0.ToGlobal(cl.FromLocal)))
	}
	if c.Tag(cl.To) != "paper" {
		t.Errorf("link target tag = %q", c.Tag(cl.To))
	}
	if len(s.Metas[1].InLinks) != 1 {
		t.Errorf("meta 1 in links = %d", len(s.Metas[1].InLinks))
	}
	if len(m0.LinkSources) != 1 || len(m0.LinksFrom(m0.LinkSources[0])) != 1 {
		t.Error("LinkSources wrong")
	}
}

func TestBuildWhole(t *testing.T) {
	c := buildLinked(t)
	s := Build(c, partition.Whole(c))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Metas) != 1 {
		t.Fatalf("metas = %d", len(s.Metas))
	}
	m := s.Metas[0]
	if len(m.OutLinks) != 0 || len(m.InLinks) != 0 {
		t.Error("whole collection must have no runtime links")
	}
	// The included link appears as a local edge: article -> paper.
	if m.Graph.NumEdges() != c.NumEdges() {
		t.Errorf("edges = %d, want %d", m.Graph.NumEdges(), c.NumEdges())
	}
}

func TestLocalGlobalMapping(t *testing.T) {
	c := buildLinked(t)
	s := Build(c, partition.Singleton(c))
	for n := xmlgraph.NodeID(0); int(n) < c.NumNodes(); n++ {
		md := s.Metas[s.MetaOf[n]]
		if md.ToGlobal(s.LocalOf[n]) != n {
			t.Errorf("mapping roundtrip failed for %d", n)
		}
	}
}

func TestSelector(t *testing.T) {
	c := buildLinked(t)
	s := Build(c, partition.Singleton(c))
	// Both singleton docs are trees: auto picks PPO.
	if got := Select(s.Metas[0], LoadDescendants, ""); got.Name != "ppo" {
		t.Errorf("forest meta selected %s", got.Name)
	}
	// Preference respected when applicable.
	if got := Select(s.Metas[0], LoadDescendants, "hopi"); got.Name != "hopi" {
		t.Errorf("preference ignored: %s", got.Name)
	}
	// Unknown preference falls back.
	if got := Select(s.Metas[0], LoadDescendants, "nope"); got.Name != "ppo" {
		t.Errorf("unknown preference: %s", got.Name)
	}
}

func TestSelectorNonForest(t *testing.T) {
	c := xmlgraph.NewCollection()
	b := c.NewDocument("d")
	b.Enter("r", "")
	x := b.AddLeaf("x", "")
	y := b.AddLeaf("y", "")
	b.Leave()
	b.Close()
	c.AddLink(x, y, xmlgraph.EdgeIntraLink) // y gets two parents
	c.Freeze()
	s := Build(c, partition.Singleton(c))
	if got := Select(s.Metas[0], LoadDescendants, ""); got.Name != "hopi" {
		t.Errorf("graph meta selected %s, want hopi", got.Name)
	}
	if got := Select(s.Metas[0], LoadShortPaths, ""); got.Name != "apex" {
		t.Errorf("short-path load selected %s, want apex", got.Name)
	}
	// PPO preference is infeasible and must fall back.
	if got := Select(s.Metas[0], LoadDescendants, "ppo"); got.Name != "ppo" && got.Name != "hopi" {
		t.Errorf("unexpected fallback %s", got.Name)
	} else if got.Name == "ppo" {
		t.Error("ppo selected for non-forest graph")
	}
	// BuildIndex end to end.
	idx, err := BuildIndex(s.Metas[0], LoadDescendants, "")
	if err != nil {
		t.Fatal(err)
	}
	if idx.Name() != "hopi" || idx.NumNodes() != 3 {
		t.Errorf("BuildIndex: %s %d", idx.Name(), idx.NumNodes())
	}
}

func TestLocalGraphSemantics(t *testing.T) {
	// Included links become edges: distances inside a meta document must
	// equal the collection BFS distances when everything is one meta doc.
	c := buildLinked(t)
	s := Build(c, partition.Whole(c))
	m := s.Metas[0]
	for n := xmlgraph.NodeID(0); int(n) < c.NumNodes(); n++ {
		want := c.BFSDistances(n)
		got := m.Graph.BFSDistances(s.LocalOf[n], false)
		for v := xmlgraph.NodeID(0); int(v) < c.NumNodes(); v++ {
			if got[s.LocalOf[v]] != want[v] {
				t.Fatalf("dist(%d,%d): local %d, global %d", n, v, got[s.LocalOf[v]], want[v])
			}
		}
	}
}

func TestBuildElements(t *testing.T) {
	c := buildLinked(t)
	// Split the 5 elements into two meta documents by hand: doc a's
	// article subtree goes with doc b (cross-document grouping), the
	// rest stays.  Node order: bib=0 art=1 author=2 paper=3 title=4.
	assign := []int32{0, 1, 1, 1, 1}
	s := BuildElements(c, assign, 2)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// The tree edge bib->article crosses partitions: one runtime link
	// from meta 0.  The data link article->paper stays inside meta 1.
	if len(s.Metas[0].OutLinks) != 1 {
		t.Fatalf("meta 0 out links = %v", s.Metas[0].OutLinks)
	}
	if got := s.Metas[0].OutLinks[0].To; got != 1 {
		t.Errorf("cross tree edge target = %d, want 1 (article)", got)
	}
	if len(s.Metas[1].OutLinks) != 0 {
		t.Errorf("meta 1 out links = %v", s.Metas[1].OutLinks)
	}
	// Meta 1's local graph: article->author, article->paper (included
	// link), paper->title = 3 edges over 4 nodes.
	if s.Metas[1].Graph.NumNodes() != 4 || s.Metas[1].Graph.NumEdges() != 3 {
		t.Errorf("meta 1 graph: %d nodes, %d edges",
			s.Metas[1].Graph.NumNodes(), s.Metas[1].Graph.NumEdges())
	}
	// Edge conservation.
	localEdges, cross := 0, 0
	for _, m := range s.Metas {
		localEdges += m.Graph.NumEdges()
		cross += len(m.OutLinks)
	}
	if localEdges+cross != c.NumEdges() {
		t.Errorf("edges: %d local + %d cross != %d total", localEdges, cross, c.NumEdges())
	}
}

func TestPropertyBuildElementsConsistent(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := xmlgraph.RandomCollection(rng, 1+rng.Intn(8), 10, rng.Intn(12))
		assign, parts := partition.ElementLevel(c, 1+rng.Intn(15))
		s := BuildElements(c, assign, parts)
		if s.Validate() != nil {
			return false
		}
		localEdges, cross := 0, 0
		for _, m := range s.Metas {
			localEdges += m.Graph.NumEdges()
			cross += len(m.OutLinks)
		}
		return localEdges+cross == c.NumEdges()
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyBuildConsistent(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := xmlgraph.RandomCollection(rng, 2+rng.Intn(10), 10, rng.Intn(15))
		for _, r := range []*partition.Result{
			partition.Singleton(c),
			partition.Whole(c),
			partition.TreePartitions(c),
			partition.SizeBounded(c, 20),
			partition.Hybrid(c, 20, 2),
		} {
			s := Build(c, r)
			if s.Validate() != nil {
				return false
			}
			// Runtime links + local edges = all edges.
			localEdges, cross := 0, 0
			for _, m := range s.Metas {
				localEdges += m.Graph.NumEdges()
				cross += len(m.OutLinks)
			}
			if localEdges+cross != c.NumEdges() {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
