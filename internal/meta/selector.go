package meta

import (
	"fmt"
	"time"

	"repro/internal/apex"
	"repro/internal/hopi"
	"repro/internal/lgraph"
	"repro/internal/pathindex"
	"repro/internal/ppo"
	"repro/internal/storage"
	"repro/internal/tc"
)

// QueryLoad describes the dominant query pattern, one of the inputs of the
// Indexing Strategy Selector (§4.1): which axes dominate, how long result
// paths are.
type QueryLoad int

const (
	// LoadDescendants: long descendants-or-self paths with wildcards —
	// the workload FliX is optimized for.  Graph-shaped meta documents
	// get HOPI.
	LoadDescendants QueryLoad = iota
	// LoadShortPaths: short paths without wildcards; APEX "will do fine"
	// (§2.2) and is much cheaper to build than HOPI.
	LoadShortPaths
)

// String implements fmt.Stringer.
func (l QueryLoad) String() string {
	switch l {
	case LoadDescendants:
		return "descendants"
	case LoadShortPaths:
		return "short-paths"
	default:
		return fmt.Sprintf("QueryLoad(%d)", int(l))
	}
}

// Registry lists every available Path Indexing Strategy by name.  The
// "a1"/"a2" entries are the A(k)-index variants of the Index Definition
// Scheme (§2.2): coarser structural summaries that trade pruning power for
// build time and size.
var Registry = map[string]pathindex.Strategy{
	"ppo":     ppo.Strategy,
	"hopi":    hopi.Strategy,
	"hopi-dc": hopi.DCStrategy(20000),
	"apex":    apex.Strategy,
	"a1":      apex.StrategyK(1),
	"a2":      apex.StrategyK(2),
	"tc":      tc.Strategy,
}

// Readers maps a serialized index kind to its deserializer; used when
// loading a persisted FliX index.
var Readers = map[string]pathindex.BodyReader{
	"ppo":  ppo.ReadBody,
	"hopi": hopi.ReadBody,
	"apex": apex.ReadBody,
	"tc":   tc.ReadBody,
}

// SectionOpeners maps a v2 snapshot section kind to the strategy-specific
// opener that lays a zero-copy index view over the section bytes — the
// mmap-era counterpart of Readers.
var SectionOpeners = map[uint32]func(*lgraph.LGraph, []byte) (pathindex.Index, error){
	storage.SectionPPO:   ppo.OpenSection,
	storage.SectionHOPI:  hopi.OpenSection,
	storage.SectionAPEX:  apex.OpenSection,
	storage.SectionTC:    tc.OpenSection,
	storage.SectionPPOC:  ppo.OpenCompressedSection,
	storage.SectionHOPIC: hopi.OpenCompressedSection,
}

// Select implements the Indexing Strategy Selector: it picks the optimal
// strategy for one meta document, following the paper's rule of thumb
// (§2.2):
//
//   - no links, i.e. the local graph is a forest: PPO — cheapest and exact;
//   - otherwise HOPI for descendants-dominated loads, APEX for short-path
//     loads.
//
// The preferred name, when non-empty, overrides the heuristic if the
// strategy is applicable (a PPO preference on a non-forest graph falls back
// to the heuristic).
func Select(md *MetaDocument, load QueryLoad, preferred string) pathindex.Strategy {
	if preferred != "" {
		if s, ok := Registry[preferred]; ok {
			if !s.RequiresForest || md.Graph.IsForest() {
				return s
			}
		}
	}
	if md.Graph.IsForest() {
		return ppo.Strategy
	}
	if load == LoadShortPaths {
		return apex.Strategy
	}
	return hopi.Strategy
}

// BuildIndex selects and builds the index for one meta document.
func BuildIndex(md *MetaDocument, load QueryLoad, preferred string) (pathindex.Index, error) {
	idx, _, err := BuildIndexTimed(md, load, preferred)
	return idx, err
}

// Timing breaks one meta document's index construction into its phases —
// the raw material of the build-phase statistics surfaced by /statsz.
type Timing struct {
	// Select is the time the Indexing Strategy Selector spent (including
	// the forest check it runs on the local graph).
	Select time.Duration
	// Build is the time the chosen strategy's builder spent.
	Build time.Duration
}

// BuildIndexTimed is BuildIndex reporting how long strategy selection and
// index construction took.
func BuildIndexTimed(md *MetaDocument, load QueryLoad, preferred string) (pathindex.Index, Timing, error) {
	return BuildIndexParallel(md, load, preferred, 1)
}

// BuildIndexParallel is BuildIndexTimed with an intra-build parallelism
// budget for strategies whose construction can use extra workers (e.g. the
// per-partition labeling of hopi-dc).  parallelism <= 0 means all CPUs; the
// resulting index is identical at every parallelism level.
func BuildIndexParallel(md *MetaDocument, load QueryLoad, preferred string, parallelism int) (pathindex.Index, Timing, error) {
	var tm Timing
	t0 := time.Now()
	s := Select(md, load, preferred)
	tm.Select = time.Since(t0)
	t0 = time.Now()
	idx, err := s.BuildWith(md.Graph, parallelism)
	tm.Build = time.Since(t0)
	if err != nil {
		return nil, tm, fmt.Errorf("meta %d: building %s: %w", md.ID, s.Name, err)
	}
	return idx, tm, nil
}
