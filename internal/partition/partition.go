// Package partition implements the document-level partitioning algorithms
// behind FliX's meta-document configurations (§4.3).
//
// Finding optimal meta documents is NP-hard (the paper reduces it to set
// cover), so each configuration ships a deterministic greedy approximation:
//
//   - TreePartitions computes the "Maximal PPO" partitioning: maximal groups
//     of documents whose combined data graph stays a forest, by accepting
//     root-links into a spanning forest of the document graph.
//   - SizeBounded computes the "Unconnected HOPI" partitioning: document
//     groups of bounded element count with few partition-crossing links,
//     grown greedily by link affinity.
package partition

import (
	"sort"
	"time"

	"repro/internal/xmlgraph"
)

// Result is a partitioning of a collection's documents.  Every document is
// in exactly one part.
type Result struct {
	// Parts lists the documents of each part, ascending within a part.
	Parts [][]xmlgraph.DocID
	// PartOf maps every document to its part index.
	PartOf []int32
	// IncludedLinks marks, per link index of the collection, whether the
	// link is represented inside a part's meta document (true) or must be
	// followed at query run time (false).  Links between parts are always
	// excluded; TreePartitions additionally excludes intra-part links
	// that would break the forest property.
	IncludedLinks []bool
	// Elapsed is the wall time the partitioning took; every public entry
	// point stamps it for the build-phase statistics
	// (flix.Index.BuildStats).
	Elapsed time.Duration
}

// track stamps r.Elapsed with the time since t0 and returns r.
func track(r *Result, t0 time.Time) *Result {
	r.Elapsed = time.Since(t0)
	return r
}

// newResult allocates a Result for a collection.
func newResult(c *xmlgraph.Collection) *Result {
	return &Result{
		PartOf:        make([]int32, c.NumDocs()),
		IncludedLinks: make([]bool, c.NumLinks()),
	}
}

// CrossLinks counts the links not included in any part.
func (r *Result) CrossLinks() int {
	n := 0
	for _, inc := range r.IncludedLinks {
		if !inc {
			n++
		}
	}
	return n
}

// finishIncluded marks every link whose endpoints share a part as included.
// Used by partitionings that keep all intra-part links.
func (r *Result) finishIncluded(c *xmlgraph.Collection) {
	for i, l := range c.Links() {
		r.IncludedLinks[i] = r.PartOf[c.DocOf(l.From)] == r.PartOf[c.DocOf(l.To)]
	}
}

// Singleton puts every document into its own part, keeping intra-document
// links — the "Naive" configuration.
func Singleton(c *xmlgraph.Collection) *Result {
	t0 := time.Now()
	r := newResult(c)
	r.Parts = make([][]xmlgraph.DocID, c.NumDocs())
	for d := 0; d < c.NumDocs(); d++ {
		r.Parts[d] = []xmlgraph.DocID{xmlgraph.DocID(d)}
		r.PartOf[d] = int32(d)
	}
	r.finishIncluded(c)
	return track(r, t0)
}

// Whole puts the entire collection into a single part with all links
// included — used to run a monolithic index (full HOPI, full APEX) through
// the same machinery as the FliX configurations.
func Whole(c *xmlgraph.Collection) *Result {
	t0 := time.Now()
	r := newResult(c)
	docs := make([]xmlgraph.DocID, c.NumDocs())
	for d := range docs {
		docs[d] = xmlgraph.DocID(d)
	}
	r.Parts = [][]xmlgraph.DocID{docs}
	for i := range r.IncludedLinks {
		r.IncludedLinks[i] = true
	}
	return track(r, t0)
}

// TreePartitions computes the Maximal PPO partitioning (§4.3, option 2):
// partitions of the document graph such that each partition's data graph
// forms a forest indexable by PPO.
//
// A document is tree-capable when it has no intra-document links (any
// intra-document link gives some element a second incoming edge).  An
// inter-document link can be represented inside a partition only when it
// points to the target document's root; accepting it must neither give that
// root a second incoming link nor close a cycle among the partition's
// documents.  Links are considered in collection order, which makes the
// greedy spanning forest deterministic.  Documents that are not tree-capable
// form singleton parts whose intra-document links stay included only if the
// caller indexes them with a graph-capable strategy.
func TreePartitions(c *xmlgraph.Collection) *Result {
	t0 := time.Now()
	r := newResult(c)
	nDocs := c.NumDocs()
	treeCapable := make([]bool, nDocs)
	for d := range treeCapable {
		treeCapable[d] = true
	}
	for _, l := range c.Links() {
		if c.DocOf(l.From) == c.DocOf(l.To) {
			treeCapable[c.DocOf(l.From)] = false
		}
	}

	// Union-find over documents.
	parent := make([]int32, nDocs)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	hasIncomingAccepted := make([]bool, nDocs)
	for i, l := range c.Links() {
		fromDoc, toDoc := c.DocOf(l.From), c.DocOf(l.To)
		if fromDoc == toDoc {
			continue // intra-document: never accepted
		}
		if !treeCapable[fromDoc] || !treeCapable[toDoc] {
			continue
		}
		if l.To != c.Doc(toDoc).Root {
			continue // link into the middle of a document: second parent
		}
		if hasIncomingAccepted[toDoc] {
			continue // root would get a second incoming link
		}
		if find(int32(fromDoc)) == find(int32(toDoc)) {
			continue // would close a cycle
		}
		parent[find(int32(fromDoc))] = find(int32(toDoc))
		hasIncomingAccepted[toDoc] = true
		r.IncludedLinks[i] = true
	}

	// Group documents: tree-capable ones by union-find root; the rest as
	// singletons.
	group := make(map[int32][]xmlgraph.DocID)
	var order []int32
	for d := 0; d < nDocs; d++ {
		var key int32
		if treeCapable[d] {
			key = find(int32(d))
		} else {
			key = int32(nDocs + d) // unique singleton key
		}
		if _, ok := group[key]; !ok {
			order = append(order, key)
		}
		group[key] = append(group[key], xmlgraph.DocID(d))
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for pi, key := range order {
		r.Parts = append(r.Parts, group[key])
		for _, d := range group[key] {
			r.PartOf[d] = int32(pi)
		}
	}
	// Intra-document links of non-tree-capable singleton parts stay
	// included (their part is indexed with a graph strategy).
	for i, l := range c.Links() {
		if c.DocOf(l.From) == c.DocOf(l.To) {
			r.IncludedLinks[i] = true
		}
	}
	return track(r, t0)
}

// SizeBounded computes the Unconnected HOPI partitioning (§4.3): document
// groups whose element counts stay below maxNodes, grown greedily by link
// affinity so that partition-crossing links stay few.  This mirrors the
// first step of HOPI's divide-and-conquer build, stopped before the
// sub-index join.
//
// Documents larger than maxNodes form their own part.
func SizeBounded(c *xmlgraph.Collection, maxNodes int) *Result {
	t0 := time.Now()
	if maxNodes <= 0 {
		maxNodes = 1 << 30
	}
	r := newResult(c)
	nDocs := c.NumDocs()

	// Document-level link multigraph (undirected affinity counts).
	aff := make([]map[xmlgraph.DocID]int, nDocs)
	addAff := func(a, b xmlgraph.DocID) {
		if aff[a] == nil {
			aff[a] = make(map[xmlgraph.DocID]int)
		}
		aff[a][b]++
	}
	for _, l := range c.Links() {
		fd, td := c.DocOf(l.From), c.DocOf(l.To)
		if fd == td {
			continue
		}
		addAff(fd, td)
		addAff(td, fd)
	}

	assigned := make([]bool, nDocs)
	var partIdx int32
	fill := 0 // monotone cursor over seed documents
	for fill < nDocs {
		if assigned[fill] {
			fill++
			continue
		}
		var part []xmlgraph.DocID
		size := 0
		take := func(d xmlgraph.DocID) {
			assigned[d] = true
			part = append(part, d)
			size += c.Doc(d).Size()
			r.PartOf[d] = partIdx
		}
		// Greedy growth: repeatedly add the unassigned neighbour with
		// the highest affinity to the current part that still fits;
		// when no linked neighbour is left, pack the partition with the
		// next unassigned documents (HOPI's partitioner fills partitions
		// to the size bound; isolated documents carry no links, so
		// packing them together costs nothing in cut size).
		cand := make(map[xmlgraph.DocID]int)
		mergeNeighbours := func(d xmlgraph.DocID) {
			for n, cnt := range aff[d] {
				if !assigned[n] {
					cand[n] += cnt
				}
			}
		}
		take(xmlgraph.DocID(fill))
		mergeNeighbours(xmlgraph.DocID(fill))
		for {
			best := xmlgraph.InvalidDoc
			bestCnt := 0
			for d, cnt := range cand {
				if assigned[d] || c.Doc(d).Size()+size > maxNodes {
					continue
				}
				if cnt > bestCnt || (cnt == bestCnt && (best == xmlgraph.InvalidDoc || d < best)) {
					best, bestCnt = d, cnt
				}
			}
			if best == xmlgraph.InvalidDoc {
				// No linked candidate fits: pack with the next
				// unassigned document that does.
				for d := fill; d < nDocs; d++ {
					if !assigned[d] && c.Doc(xmlgraph.DocID(d)).Size()+size <= maxNodes {
						best = xmlgraph.DocID(d)
						break
					}
				}
				if best == xmlgraph.InvalidDoc {
					break // partition is full
				}
			}
			delete(cand, best)
			take(best)
			mergeNeighbours(best)
		}
		sort.Slice(part, func(i, j int) bool { return part[i] < part[j] })
		r.Parts = append(r.Parts, part)
		partIdx++
	}
	r.finishIncluded(c)
	return track(r, t0)
}

// Hybrid combines Maximal PPO with Unconnected HOPI (§4.3): tree-capable
// regions become PPO-ready tree partitions; everything else is partitioned
// size-bounded for HOPI.  A tree partition is kept only when it has at least
// minTreeDocs documents or is a genuinely isolated tree — tiny fragments of
// linked regions are better served by HOPI.  The returned Result contains
// the tree parts first, then the size-bounded parts.
func Hybrid(c *xmlgraph.Collection, maxNodes, minTreeDocs int) *Result {
	t0 := time.Now()
	trees, rest := hybridSplit(c, maxNodes, minTreeDocs)
	return track(merge(c, trees, rest), t0)
}

func hybridSplit(c *xmlgraph.Collection, maxNodes, minTreeDocs int) (trees, rest *Result) {
	full := TreePartitions(c)
	// Split documents: those in multi-document tree parts (or isolated
	// tree-capable singletons) stay PPO; the rest go to the HOPI side.
	isTreeDoc := make([]bool, c.NumDocs())
	for _, part := range full.Parts {
		if len(part) >= minTreeDocs {
			for _, d := range part {
				isTreeDoc[d] = true
			}
			continue
		}
		// Singleton: keep with PPO when it has no links at all.
		if len(part) == 1 && docIsolated(c, part[0]) {
			isTreeDoc[part[0]] = true
		}
	}
	treeColl := make([]xmlgraph.DocID, 0)
	restColl := make([]xmlgraph.DocID, 0)
	for d := 0; d < c.NumDocs(); d++ {
		if isTreeDoc[d] {
			treeColl = append(treeColl, xmlgraph.DocID(d))
		} else {
			restColl = append(restColl, xmlgraph.DocID(d))
		}
	}
	return restrict(c, full, treeColl), restrict(c, SizeBounded(c, maxNodes), restColl)
}

// docIsolated reports whether no link touches the document.
func docIsolated(c *xmlgraph.Collection, d xmlgraph.DocID) bool {
	for _, l := range c.Links() {
		if c.DocOf(l.From) == d || c.DocOf(l.To) == d {
			return false
		}
	}
	return true
}

// restrict filters a partitioning down to a subset of documents, dropping
// empty parts and renumbering.  Links with an endpoint outside the subset
// become excluded.
func restrict(c *xmlgraph.Collection, r *Result, docs []xmlgraph.DocID) *Result {
	inSet := make([]bool, c.NumDocs())
	for _, d := range docs {
		inSet[d] = true
	}
	out := newResult(c)
	for i := range out.PartOf {
		out.PartOf[i] = -1
	}
	remap := make(map[int32]int32)
	for _, d := range docs {
		old := r.PartOf[d]
		ni, ok := remap[old]
		if !ok {
			ni = int32(len(out.Parts))
			remap[old] = ni
			out.Parts = append(out.Parts, nil)
		}
		out.Parts[ni] = append(out.Parts[ni], d)
		out.PartOf[d] = ni
	}
	for i, l := range c.Links() {
		out.IncludedLinks[i] = r.IncludedLinks[i] &&
			inSet[c.DocOf(l.From)] && inSet[c.DocOf(l.To)]
	}
	return out
}

// ElementLevel assigns every element of the collection to a partition of at
// most maxNodes elements, ignoring document boundaries — the element-level
// meta documents of the paper's future work (§7): connected elements are
// grouped regardless of which document they live in.  Regions grow by
// breadth-first search over the undirected data graph (children, parents
// and links in both directions), so tightly linked elements of different
// documents land in one partition while an oversized document is split into
// several.  The returned assignment is deterministic.
func ElementLevel(c *xmlgraph.Collection, maxNodes int) (assign []int32, parts int) {
	if maxNodes <= 0 {
		maxNodes = 1 << 30
	}
	n := c.NumNodes()
	assign = make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	var queue []xmlgraph.NodeID
	cur := int32(0)
	size := 0
	take := func(v xmlgraph.NodeID) {
		assign[v] = cur
		size++
		queue = append(queue, v)
	}
	for seed := xmlgraph.NodeID(0); int(seed) < n; seed++ {
		if assign[seed] != -1 {
			continue
		}
		if size >= maxNodes {
			cur++
			size = 0
			queue = queue[:0]
		}
		take(seed)
		for len(queue) > 0 && size < maxNodes {
			v := queue[0]
			queue = queue[1:]
			visit := func(w xmlgraph.NodeID) {
				if assign[w] == -1 && size < maxNodes {
					take(w)
				}
			}
			c.EachSuccessor(v, visit)
			c.EachPredecessor(v, visit)
		}
	}
	return assign, int(cur) + 1
}

// merge concatenates two disjoint restricted partitionings into one Result.
// Every document must belong to exactly one of the two.
func merge(c *xmlgraph.Collection, a, b *Result) *Result {
	out := newResult(c)
	out.Parts = append(out.Parts, a.Parts...)
	out.Parts = append(out.Parts, b.Parts...)
	off := int32(len(a.Parts))
	for d := 0; d < c.NumDocs(); d++ {
		switch {
		case a.PartOf[d] >= 0:
			out.PartOf[d] = a.PartOf[d]
		case b.PartOf[d] >= 0:
			out.PartOf[d] = b.PartOf[d] + off
		default:
			panic("partition: document in neither side of a merge")
		}
	}
	for i := range out.IncludedLinks {
		out.IncludedLinks[i] = a.IncludedLinks[i] || b.IncludedLinks[i]
	}
	return out
}
