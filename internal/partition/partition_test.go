package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/xmlgraph"
)

// figure1 reproduces the collection of Figure 1 of the paper: documents 1-4
// form a tree (root-to-root links), documents 5-10 are densely interlinked.
func figure1(t testing.TB) *xmlgraph.Collection {
	t.Helper()
	c := xmlgraph.NewCollection()
	roots := make([]xmlgraph.NodeID, 11) // 1-based
	leaves := make([]xmlgraph.NodeID, 11)
	for i := 1; i <= 10; i++ {
		b := c.NewDocument(docName(i))
		roots[i] = b.Enter("doc", "")
		leaves[i] = b.AddLeaf("item", "")
		b.AddLeaf("item", "")
		b.Leave()
		b.Close()
	}
	link := func(from, to int, toRoot bool) {
		target := roots[to]
		if !toRoot {
			target = leaves[to]
		}
		c.AddLink(leaves[from], target, xmlgraph.EdgeInterLink)
	}
	// Tree region: 1 -> 2, 1 -> 3, 3 -> 4 (all to roots).
	link(1, 2, true)
	link(1, 3, true)
	link(3, 4, true)
	// Dense region: cycles and mid-document links among 5..10.
	link(5, 6, true)
	link(6, 7, false)
	link(7, 5, true)
	link(7, 8, false)
	link(8, 9, true)
	link(9, 10, false)
	link(10, 8, true)
	link(6, 9, false)
	// One link from the dense region into the tree region (like doc 5 ->
	// doc 4 in Figure 3).
	link(5, 4, false)
	c.Freeze()
	return c
}

func docName(i int) string {
	return string(rune('d')) + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func docIDs(t *testing.T, c *xmlgraph.Collection, names ...int) map[xmlgraph.DocID]bool {
	t.Helper()
	out := make(map[xmlgraph.DocID]bool)
	for _, n := range names {
		d, ok := c.DocByName(docName(n))
		if !ok {
			t.Fatalf("doc %d missing", n)
		}
		out[d] = true
	}
	return out
}

// checkPartitionInvariants verifies that parts are disjoint and cover all
// documents, and that PartOf matches Parts.
func checkPartitionInvariants(t *testing.T, c *xmlgraph.Collection, r *Result) {
	t.Helper()
	seen := make(map[xmlgraph.DocID]int32)
	for pi, part := range r.Parts {
		for _, d := range part {
			if old, dup := seen[d]; dup {
				t.Fatalf("doc %d in parts %d and %d", d, old, pi)
			}
			seen[d] = int32(pi)
			if r.PartOf[d] != int32(pi) {
				t.Fatalf("PartOf[%d] = %d, want %d", d, r.PartOf[d], pi)
			}
		}
	}
	if len(seen) != c.NumDocs() {
		t.Fatalf("parts cover %d of %d docs", len(seen), c.NumDocs())
	}
	for i, l := range c.Links() {
		if r.IncludedLinks[i] && r.PartOf[c.DocOf(l.From)] != r.PartOf[c.DocOf(l.To)] {
			t.Fatalf("link %d included across parts", i)
		}
	}
}

func TestSingleton(t *testing.T) {
	c := figure1(t)
	r := Singleton(c)
	checkPartitionInvariants(t, c, r)
	if len(r.Parts) != 10 {
		t.Errorf("parts = %d, want 10", len(r.Parts))
	}
	// All links are inter-document here, so none are included.
	if r.CrossLinks() != c.NumLinks() {
		t.Errorf("CrossLinks = %d, want %d", r.CrossLinks(), c.NumLinks())
	}
}

func TestWhole(t *testing.T) {
	c := figure1(t)
	r := Whole(c)
	checkPartitionInvariants(t, c, r)
	if len(r.Parts) != 1 || r.CrossLinks() != 0 {
		t.Errorf("Whole: parts=%d cross=%d", len(r.Parts), r.CrossLinks())
	}
}

// treeForest checks that every part of r, together with its included links,
// forms a forest (single incoming edge per element, no cycles).
func treeForest(t *testing.T, c *xmlgraph.Collection, r *Result) {
	t.Helper()
	for pi, part := range r.Parts {
		indeg := make(map[xmlgraph.NodeID]int)
		for _, d := range part {
			first, last := c.Doc(d).Nodes()
			for n := first; n < last; n++ {
				if c.Parent(n) != xmlgraph.InvalidNode {
					indeg[n]++
				}
			}
		}
		for i, l := range c.Links() {
			if r.IncludedLinks[i] && r.PartOf[c.DocOf(l.From)] == int32(pi) {
				indeg[l.To]++
			}
		}
		for n, deg := range indeg {
			if deg > 1 {
				t.Fatalf("part %d: node %d has %d incoming edges", pi, n, deg)
			}
		}
	}
}

func TestTreePartitionsFigure1(t *testing.T) {
	c := figure1(t)
	r := TreePartitions(c)
	checkPartitionInvariants(t, c, r)
	treeForest(t, c, r)
	// Documents 1-4 must end up in a single tree partition.
	want := docIDs(t, c, 1, 2, 3, 4)
	found := false
	for _, part := range r.Parts {
		if len(part) == 4 {
			all := true
			for _, d := range part {
				if !want[d] {
					all = false
				}
			}
			if all {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("tree region 1-4 not grouped: %v", r.Parts)
	}
}

func TestTreePartitionsRejectsMidDocumentLinks(t *testing.T) {
	c := xmlgraph.NewCollection()
	b1 := c.NewDocument("a")
	b1.Enter("r", "")
	l1 := b1.AddLeaf("x", "")
	b1.Leave()
	b1.Close()
	b2 := c.NewDocument("b")
	b2.Enter("r", "")
	mid := b2.AddLeaf("y", "")
	b2.Leave()
	b2.Close()
	c.AddLink(l1, mid, xmlgraph.EdgeInterLink) // into the middle of b
	c.Freeze()
	r := TreePartitions(c)
	checkPartitionInvariants(t, c, r)
	if r.IncludedLinks[0] {
		t.Error("mid-document link must not be included")
	}
	if len(r.Parts) != 2 {
		t.Errorf("parts = %d, want 2", len(r.Parts))
	}
}

func TestTreePartitionsCycle(t *testing.T) {
	// Two documents linking to each other's roots: only one link can be
	// accepted.
	c := xmlgraph.NewCollection()
	var roots, leaves []xmlgraph.NodeID
	for _, n := range []string{"a", "b"} {
		b := c.NewDocument(n)
		roots = append(roots, b.Enter("r", ""))
		leaves = append(leaves, b.AddLeaf("x", ""))
		b.Leave()
		b.Close()
	}
	c.AddLink(leaves[0], roots[1], xmlgraph.EdgeInterLink)
	c.AddLink(leaves[1], roots[0], xmlgraph.EdgeInterLink)
	c.Freeze()
	r := TreePartitions(c)
	checkPartitionInvariants(t, c, r)
	treeForest(t, c, r)
	if r.IncludedLinks[0] == r.IncludedLinks[1] {
		t.Errorf("exactly one of the two cycle links must be accepted: %v", r.IncludedLinks)
	}
	if len(r.Parts) != 1 {
		t.Errorf("parts = %d, want 1 (both docs in one tree)", len(r.Parts))
	}
}

func TestTreePartitionsIntraDocLink(t *testing.T) {
	c := xmlgraph.NewCollection()
	b := c.NewDocument("a")
	b.Enter("r", "")
	x := b.AddLeaf("x", "")
	y := b.AddLeaf("y", "")
	b.Leave()
	b.Close()
	c.AddLink(x, y, xmlgraph.EdgeIntraLink)
	c.Freeze()
	r := TreePartitions(c)
	checkPartitionInvariants(t, c, r)
	// The doc is not tree-capable; it becomes a singleton with its
	// intra-document link included (a graph strategy will index it).
	if len(r.Parts) != 1 || !r.IncludedLinks[0] {
		t.Errorf("parts=%d included=%v", len(r.Parts), r.IncludedLinks)
	}
}

func TestSizeBounded(t *testing.T) {
	c := figure1(t)
	r := SizeBounded(c, 9) // three 3-element docs per part
	checkPartitionInvariants(t, c, r)
	for pi, part := range r.Parts {
		size := 0
		for _, d := range part {
			size += c.Doc(d).Size()
		}
		if size > 9 {
			t.Errorf("part %d has %d nodes (> 9)", pi, size)
		}
	}
	// The dense region should mostly stick together: the partitioner must
	// produce fewer parts than documents.
	if len(r.Parts) >= 10 {
		t.Errorf("no grouping happened: %d parts", len(r.Parts))
	}
}

func TestSizeBoundedOversizedDoc(t *testing.T) {
	c := xmlgraph.NewCollection()
	b := c.NewDocument("big")
	b.Enter("r", "")
	for i := 0; i < 20; i++ {
		b.AddLeaf("x", "")
	}
	b.Leave()
	b.Close()
	c.Freeze()
	r := SizeBounded(c, 5)
	checkPartitionInvariants(t, c, r)
	if len(r.Parts) != 1 {
		t.Errorf("oversized doc must form its own part: %v", r.Parts)
	}
}

func TestSizeBoundedUnbounded(t *testing.T) {
	c := figure1(t)
	r := SizeBounded(c, 0)
	checkPartitionInvariants(t, c, r)
	// With no bound, linked documents collapse into connected groups.
	if len(r.Parts) > 3 {
		t.Errorf("parts = %d, expected few", len(r.Parts))
	}
}

func TestHybridFigure1(t *testing.T) {
	c := figure1(t)
	r := Hybrid(c, 100, 2)
	checkPartitionInvariants(t, c, r)
	// Tree region 1-4 grouped; 5-10 in size-bounded parts.
	tree := docIDs(t, c, 1, 2, 3, 4)
	for _, part := range r.Parts {
		hasTree, hasDense := false, false
		for _, d := range part {
			if tree[d] {
				hasTree = true
			} else {
				hasDense = true
			}
		}
		if hasTree && hasDense {
			t.Errorf("part mixes tree and dense docs: %v", part)
		}
	}
}

func TestElementLevel(t *testing.T) {
	c := figure1(t)
	assign, parts := ElementLevel(c, 7)
	if parts < 2 {
		t.Fatalf("parts = %d", parts)
	}
	counts := make([]int, parts)
	for n, p := range assign {
		if p < 0 || int(p) >= parts {
			t.Fatalf("node %d assigned to %d of %d", n, p, parts)
		}
		counts[p]++
	}
	for p, cnt := range counts {
		if cnt > 7 {
			t.Errorf("part %d has %d elements (> 7)", p, cnt)
		}
		if cnt == 0 {
			t.Errorf("part %d empty", p)
		}
	}
}

func TestElementLevelSplitsOversizedDoc(t *testing.T) {
	c := xmlgraph.NewCollection()
	b := c.NewDocument("big")
	b.Enter("r", "")
	for i := 0; i < 30; i++ {
		b.AddLeaf("x", "")
	}
	b.Leave()
	b.Close()
	c.Freeze()
	_, parts := ElementLevel(c, 10)
	if parts < 3 {
		t.Errorf("31-element doc with cap 10 gave %d parts, want >= 3", parts)
	}
}

func TestElementLevelUnbounded(t *testing.T) {
	c := figure1(t)
	assign, parts := ElementLevel(c, 0)
	if parts != 1 {
		t.Errorf("unbounded: %d parts", parts)
	}
	for _, p := range assign {
		if p != 0 {
			t.Fatal("unbounded assignment not uniform")
		}
	}
}

func TestPropertyElementLevelInvariants(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := xmlgraph.RandomCollection(rng, 1+rng.Intn(10), 12, rng.Intn(15))
		cap := 1 + rng.Intn(20)
		assign, parts := ElementLevel(c, cap)
		if len(assign) != c.NumNodes() {
			return false
		}
		counts := make([]int, parts)
		for _, p := range assign {
			if p < 0 || int(p) >= parts {
				return false
			}
			counts[p]++
		}
		for _, cnt := range counts {
			if cnt == 0 || cnt > cap {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyInvariants(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := xmlgraph.RandomCollection(rng, 2+rng.Intn(12), 10, rng.Intn(20))
		for _, r := range []*Result{
			Singleton(c),
			Whole(c),
			TreePartitions(c),
			SizeBounded(c, 15),
			Hybrid(c, 15, 2),
		} {
			seen := make(map[xmlgraph.DocID]bool)
			for pi, part := range r.Parts {
				for _, d := range part {
					if seen[d] || r.PartOf[d] != int32(pi) {
						return false
					}
					seen[d] = true
				}
			}
			if len(seen) != c.NumDocs() {
				return false
			}
			for i, l := range c.Links() {
				if r.IncludedLinks[i] && r.PartOf[c.DocOf(l.From)] != r.PartOf[c.DocOf(l.To)] {
					return false
				}
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestPropertyTreePartitionsAreForests: every TreePartitions part with its
// included links must satisfy the single-parent property.
func TestPropertyTreePartitionsAreForests(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := xmlgraph.RandomCollection(rng, 2+rng.Intn(10), 8, rng.Intn(15))
		r := TreePartitions(c)
		for pi, part := range r.Parts {
			// Skip non-tree-capable singletons (they keep their
			// intra-document links on purpose).
			intra := false
			for i, l := range c.Links() {
				if c.DocOf(l.From) == c.DocOf(l.To) && r.PartOf[c.DocOf(l.From)] == int32(pi) && r.IncludedLinks[i] {
					intra = true
				}
			}
			if intra && len(part) == 1 {
				continue
			}
			indeg := make(map[xmlgraph.NodeID]int)
			for _, d := range part {
				first, last := c.Doc(d).Nodes()
				for n := first; n < last; n++ {
					if c.Parent(n) != xmlgraph.InvalidNode {
						indeg[n]++
					}
				}
			}
			for i, l := range c.Links() {
				if r.IncludedLinks[i] && r.PartOf[c.DocOf(l.From)] == int32(pi) &&
					c.DocOf(l.From) != c.DocOf(l.To) {
					indeg[l.To]++
				}
			}
			for _, deg := range indeg {
				if deg > 1 {
					return false
				}
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
