package server

import (
	"errors"
	"net/http"

	"repro/internal/rebuild"
)

// Reindexer is the server's view of the background re-optimizer
// (rebuild.Manager): plan the next configuration, or execute a rebuild and
// hot-swap now.
type Reindexer interface {
	Plan() rebuild.Plan
	Reindex(force bool) (rebuild.Plan, error)
	Status() rebuild.Status
}

// handleReindex answers POST /v1/admin/reindex[?dry=1][&force=1]: the
// manual trigger of the live-reindexing loop.
//
//	dry=1    report the plan the current load produces; build nothing
//	force=1  rebuild and swap even when the planner sees no need (the
//	         resulting index uses the planned — possibly unchanged —
//	         configuration)
//
// Rebuilds run outside the query admission semaphore: they are operator
// actions, not queries, and the build happens off the serving path anyway.
// Concurrent triggers are refused with 409, not queued.
func (s *Server) handleReindex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	rx := s.getReindexer()
	if rx == nil {
		s.fail(w, http.StatusNotImplemented, "no reindexer configured (start flixd with -reindex-interval or wire rebuild.Manager)")
		return
	}
	q := r.URL.Query()
	if boolParam(q.Get("dry")) {
		s.ok(w, map[string]any{
			"dryRun": true,
			"plan":   planJSON(rx.Plan()),
		})
		return
	}
	plan, err := rx.Reindex(boolParam(q.Get("force")))
	switch {
	case errors.Is(err, rebuild.ErrBusy):
		s.fail(w, http.StatusConflict, err.Error())
		return
	case err != nil:
		s.fail(w, http.StatusInternalServerError, err.Error())
		return
	}
	swapped := plan.Rebuild || boolParam(q.Get("force"))
	s.ok(w, map[string]any{
		"dryRun":     false,
		"swapped":    swapped,
		"generation": s.Generation(),
		"plan":       planJSON(plan),
	})
}

// planJSON renders a rebuild plan for the admin API.
func planJSON(p rebuild.Plan) map[string]any {
	out := map[string]any{
		"rebuild":        p.Rebuild,
		"reason":         p.Reason,
		"queries":        p.Queries,
		"fromGeneration": p.FromGeneration,
		"config": map[string]any{
			"kind":          p.Config.Kind.String(),
			"partitionSize": p.Config.PartitionSize,
			"strategy":      p.Config.Strategy,
		},
	}
	if p.StrategyOverride != "" {
		out["strategyOverride"] = p.StrategyOverride
	}
	return out
}
