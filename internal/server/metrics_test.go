package server

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// sampleLine matches one exposition sample: a metric name, an optional
// label set with double-quoted values, and a value.
var sampleLine = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? (\S+)$`)

// exposition is a parsed /metrics payload.
type exposition struct {
	types   map[string]string  // metric family -> counter|gauge|histogram
	help    map[string]bool    // families with a HELP line
	samples map[string]float64 // full series (name{labels}) -> value
	order   []string           // series in exposition order
}

// scrape fetches and parses /metrics, failing the test on any line that is
// neither a comment nor a well-formed sample, and on samples whose family
// lacks a preceding HELP/TYPE pair.
func scrape(t *testing.T, url string) *exposition {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q, want text/plain", ct)
	}
	e := &exposition{
		types:   make(map[string]string),
		help:    make(map[string]bool),
		samples: make(map[string]float64),
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Errorf("HELP without text: %q", line)
			}
			e.help[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, ok := strings.Cut(rest, " ")
			if !ok || (kind != "counter" && kind != "gauge" && kind != "histogram") {
				t.Errorf("bad TYPE line: %q", line)
			}
			if !e.help[name] {
				t.Errorf("TYPE for %s without a preceding HELP", name)
			}
			if _, dup := e.types[name]; dup {
				t.Errorf("duplicate TYPE for %s", name)
			}
			e.types[name] = kind
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		name, labels, raw := m[1], m[2], m[3]
		var v float64
		if raw == "+Inf" {
			v = math.Inf(1)
		} else if v, err = strconv.ParseFloat(raw, 64); err != nil {
			t.Errorf("bad value in %q: %v", line, err)
			continue
		}
		family := name
		if e.types[family] == "" {
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(name, suf); e.types[base] == "histogram" {
					family = base
					break
				}
			}
		}
		if e.types[family] == "" {
			t.Errorf("sample %s without a TYPE declaration", name)
		}
		series := name + labels
		if _, dup := e.samples[series]; dup {
			t.Errorf("duplicate series %s", series)
		}
		e.samples[series] = v
		e.order = append(e.order, series)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return e
}

// scrapeUntil polls /metrics until the predicate holds (latency histograms
// are recorded just after the response is written, so a scrape racing the
// request's tail can be one observation behind).
func scrapeUntil(t *testing.T, url string, ok func(*exposition) bool) *exposition {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		e := scrape(t, url)
		if ok(e) || time.Now().After(deadline) {
			return e
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMetricsExpositionFormat checks the hand-rolled /metrics output against
// the Prometheus text-format rules: HELP/TYPE pairing, label syntax, bucket
// cumulativity, and counter monotonicity across scrapes.
func TestMetricsExpositionFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	hit := func(n int) {
		for i := 0; i < n; i++ {
			resp, err := http.Get(ts.URL + "/v1/descendants?start=movies.xml&tag=actor")
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
	}
	hit(3)
	countSeries := `flix_request_duration_seconds_count{endpoint="descendants"}`
	first := scrapeUntil(t, ts.URL, func(e *exposition) bool { return e.samples[countSeries] == 3 })

	// The per-endpoint histogram must exist with cumulative buckets ending
	// in a +Inf bucket that equals _count.
	var prev uint64
	var buckets int
	for _, series := range first.order {
		if !strings.HasPrefix(series, `flix_request_duration_seconds_bucket{endpoint="descendants",`) {
			continue
		}
		v := uint64(first.samples[series])
		if v < prev {
			t.Errorf("bucket counts not cumulative at %s: %d < %d", series, v, prev)
		}
		prev = v
		buckets++
	}
	if buckets < 2 {
		t.Fatalf("found %d descendants duration buckets, want >= 2", buckets)
	}
	inf := first.samples[`flix_request_duration_seconds_bucket{endpoint="descendants",le="+Inf"}`]
	count := first.samples[countSeries]
	if inf != count || count != 3 {
		t.Errorf("+Inf bucket = %v, _count = %v, want both 3", inf, count)
	}
	if sum := first.samples[`flix_request_duration_seconds_sum{endpoint="descendants"}`]; sum <= 0 {
		t.Errorf("_sum = %v, want > 0", sum)
	}

	// Counters must be monotone non-decreasing across scrapes.
	hit(2)
	second := scrapeUntil(t, ts.URL, func(e *exposition) bool { return e.samples[countSeries] == 5 })
	for series, v2 := range second.samples {
		name := strings.SplitN(series, "{", 2)[0]
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suf); second.types[base] == "histogram" {
				family = base
			}
		}
		kind := second.types[family]
		if kind != "counter" && kind != "histogram" {
			continue
		}
		if v1, ok := first.samples[series]; ok && v2 < v1 {
			t.Errorf("%s went backwards: %v -> %v", series, v1, v2)
		}
	}
	if d2 := second.samples[countSeries]; d2 != 5 {
		t.Errorf("after 5 requests _count = %v, want 5", d2)
	}
	if got := second.samples[fmt.Sprintf("flix_requests_total{endpoint=%q}", "descendants")]; got != 5 {
		t.Errorf("flix_requests_total = %v, want 5", got)
	}
}

// TestMetricsRuntimeGauges checks the Go runtime gauges ride on the flixd
// /metrics endpoint — and render even before the first index generation.
func TestMetricsRuntimeGauges(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	e := scrape(t, ts.URL)
	for series, kind := range map[string]string{
		"go_goroutines":                "gauge",
		"go_memstats_heap_alloc_bytes": "gauge",
		"go_gc_cycles_total":           "counter",
		"go_gc_pause_seconds_total":    "counter",
	} {
		if e.types[series] != kind {
			t.Errorf("%s declared %q, want %q", series, e.types[series], kind)
		}
		if v, ok := e.samples[series]; !ok || v < 0 {
			t.Errorf("%s = %v (present=%v), want >= 0", series, v, ok)
		}
	}
	if e.samples["go_goroutines"] <= 0 {
		t.Errorf("go_goroutines = %v, want > 0", e.samples["go_goroutines"])
	}
}

// TestMetricsStrategyHistogram checks requests are attributed to the
// indexing strategy serving the start node's meta document.
func TestMetricsStrategyHistogram(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/descendants?start=movies.xml&tag=actor")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	total := func(e *exposition) float64 {
		sum := 0.0
		for name := range s.CurrentIndex().StrategyCounts() {
			sum += e.samples[fmt.Sprintf("flix_strategy_request_duration_seconds_count{strategy=%q}", name)]
		}
		return sum
	}
	e := scrapeUntil(t, ts.URL, func(e *exposition) bool { return total(e) == 1 })
	if got := total(e); got != 1 {
		t.Errorf("per-strategy _count total = %v, want 1", got)
	}
}
