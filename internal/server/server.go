// Package server turns a built flix.Index into a long-lived, shared,
// overload-safe HTTP endpoint — the serving layer the paper's framework
// implies but leaves to the host system.
//
// One process loads (or builds) an index once and answers concurrent
// queries over a small JSON API:
//
//	GET /v1/descendants  start//tag connection queries
//	GET /v1/connected    point-to-point connection tests
//	GET /v1/query        ranked path expressions (ParseQuery/Evaluator)
//	POST /v1/batch       many queries in one request, one admission slot
//	GET /healthz         liveness
//	GET /statsz          engine + self-tuning + server statistics
//	GET /metrics         Prometheus text format
//
// Every query endpoint runs behind a bounded admission semaphore (excess
// load is shed immediately with 429 instead of queueing), a per-request
// deadline (the context's Done channel is threaded into the evaluator's
// priority-queue loop, so a timed-out query stops promptly and returns what
// it found, flagged as truncated), and request-scoped result limits.  A
// QueryCache fronts the descendants path; /statsz reports its hit rate next
// to the §7 self-tuning advice so operators can see when the meta-document
// layout has gone stale for the live query load.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/flix"
	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/query"
	"repro/internal/shard"
	"repro/internal/xmlgraph"
)

// Config tunes the serving layer.  The zero value is usable; New fills in
// the defaults below.
type Config struct {
	// MaxInFlight bounds the number of concurrently evaluating queries;
	// requests beyond it are shed with 429.  Default 64.
	MaxInFlight int
	// DefaultTimeout is the per-request deadline when the client does not
	// pass ?timeout=.  Default 2s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested deadlines.  Default 30s.
	MaxTimeout time.Duration
	// DefaultLimit is the result limit when the client does not pass ?k=.
	// Default 100.
	DefaultLimit int
	// MaxLimit clamps client-requested result limits.  Default 10000.
	MaxLimit int
	// MaxBatch caps the number of queries in one POST /v1/batch request.
	// Default 256.
	MaxBatch int
	// CacheSize is the QueryCache capacity fronting /v1/descendants
	// (number of distinct cached queries).  Default 1024; negative
	// disables the cache.
	CacheSize int
	// Logger receives one access-log line per request and the slow-query
	// log.  Nil disables both.
	Logger *log.Logger
	// SlowQueryThreshold enables the slow-query log: sampled query
	// requests that evaluate longer than this are logged with their full
	// trace summary.  0 disables.
	SlowQueryThreshold time.Duration
	// SlowQuerySample traces 1 in N admitted query requests for the
	// slow-query log (1 = trace every request).  Sampling keeps the
	// tracing overhead off most requests while still catching recurring
	// offenders.  Default 1.
	SlowQuerySample int
	// TraceEventLimit caps the raw event list of each request trace
	// (?trace=1 and slow-query tracing).  Default obs.DefaultEventLimit.
	TraceEventLimit int
	// Shard, when non-nil, runs the server as one shard of a
	// scatter-gather cluster: /v1/shard/eval and /v1/shard/links are
	// registered, /healthz reports the shard's ring position and
	// decomposition fingerprint, and each generation carries the
	// ownership mask the ring assigns to this shard.
	Shard *ShardConfig
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.DefaultLimit <= 0 {
		c.DefaultLimit = 100
	}
	if c.MaxLimit <= 0 {
		c.MaxLimit = 10000
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.SlowQuerySample <= 0 {
		c.SlowQuerySample = 1
	}
	return c
}

// generation is one immutable serving epoch: an index, the query cache
// fronting it, and the per-strategy latency histograms for the strategies
// present in that index.  A live reindex installs a complete new generation
// with a single atomic pointer store; requests capture the pointer once at
// admission, so an in-flight query finishes entirely on the generation it
// started on while new arrivals already see the next one.  The cache is
// part of the generation, which enforces the purge-on-swap invariant for
// free: a new index never serves results memoized from an old one.
type generation struct {
	num          uint64
	ix           *flix.Index
	cache        *flix.QueryCache
	stratLatency map[string]*obs.Histogram
	installed    time.Time
	reason       string
	warmed       int // queries pre-warmed from the previous generation's cache
	// shard is the per-generation shard state (ownership mask,
	// decomposition fingerprint); nil outside shard mode.
	shard *shardGen
}

// Server serves a FliX index that can be hot-swapped under live traffic.
type Server struct {
	coll *xmlgraph.Collection
	onto *ontology.Ontology
	cfg  Config

	// gen is the current serving generation; nil until the first Install
	// (readiness: /healthz and the query endpoints answer 503 meanwhile).
	gen       atomic.Pointer[generation]
	genSeq    atomic.Uint64
	swaps     atomic.Int64
	reindexer atomic.Pointer[reindexerBox]

	sem     chan struct{}
	started time.Time

	// ring is the cluster's consistent-hash ring; nil outside shard mode.
	ring *shard.Ring

	// latency holds one lock-free histogram per query endpoint, across
	// generations (per-strategy histograms live in the generation).  The
	// map is built in New and read-only afterwards, so concurrent handler
	// access needs no lock.
	latency map[string]*obs.Histogram

	// Serving counters (engine-level counters live in the generation's
	// Index.Stats()).
	reqDescendants atomic.Int64
	reqConnected   atomic.Int64
	reqQuery       atomic.Int64
	reqBatch       atomic.Int64
	reqShardEval   atomic.Int64
	tracedEvals    atomic.Int64
	shed           atomic.Int64
	notReady       atomic.Int64
	timeouts       atomic.Int64
	clientErrors   atomic.Int64
	slowQueries    atomic.Int64

	// reqSeq numbers requests for the X-Flix-Request-Id header; slowSeq
	// counts admitted requests for slow-query trace sampling.
	reqSeq  atomic.Uint64
	slowSeq atomic.Uint64

	// queryHook, when set, runs after admission and before evaluation.
	// It is a test seam for saturating the semaphore deterministically.
	queryHook func()
	// batchItemHook, when set, runs before each executed /v1/batch item
	// with its request position.  It is a test seam for expiring the batch
	// deadline at a chosen point in the execution order.
	batchItemHook func(int)
}

// New wraps a built index as generation 1.  cfg zero-value fields take the
// documented defaults.
func New(ix *flix.Index, cfg Config) *Server {
	s := NewPending(ix.Collection(), cfg)
	s.Install(ix, "initial index")
	return s
}

// NewPending returns a server with no index yet: /healthz reports 503 and
// the query endpoints shed with 503 until Install delivers the first
// generation.  It lets flixd bind its port and expose health immediately
// while the initial build runs in the background.
func NewPending(coll *xmlgraph.Collection, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		coll:    coll,
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxInFlight),
		started: time.Now(),
		latency: map[string]*obs.Histogram{
			"descendants": new(obs.Histogram),
			"connected":   new(obs.Histogram),
			"query":       new(obs.Histogram),
			"batch":       new(obs.Histogram),
			"shard_eval":  new(obs.Histogram),
		},
	}
	if cfg.Shard != nil {
		if cfg.Shard.Count < 1 || cfg.Shard.ID < 0 || cfg.Shard.ID >= cfg.Shard.Count {
			panic(fmt.Sprintf("server: shard %d of %d is not a valid ring position", cfg.Shard.ID, cfg.Shard.Count))
		}
		s.ring = shard.NewRing(cfg.Shard.Count, cfg.Shard.VNodes)
	}
	return s
}

// Install atomically hot-swaps in a new index and returns its generation
// number.  The index must be built over the server's collection.  In-flight
// queries keep the generation they were admitted under; the new generation
// starts with a fresh query cache and fresh per-strategy histograms.
func (s *Server) Install(ix *flix.Index, reason string) uint64 {
	if ix.Collection() != s.coll {
		panic("server: Install with an index built over a different collection")
	}
	g := &generation{
		num:          s.genSeq.Add(1),
		ix:           ix,
		stratLatency: make(map[string]*obs.Histogram),
		installed:    time.Now(),
		reason:       reason,
	}
	for name := range ix.StrategyCounts() {
		g.stratLatency[name] = new(obs.Histogram)
	}
	s.initShard(g)
	if s.cfg.CacheSize > 0 {
		g.cache = ix.NewQueryCache(s.cfg.CacheSize)
		g.cache.StoreBounded = true
		// Take over the outgoing generation's working set before going
		// live: the warming evaluations run here, on the installer's
		// goroutine, so post-swap clients hit a warm cache instead of
		// re-evaluating the whole hot set at once (the latency cliff a
		// plain purge-on-swap would cause).
		if old := s.gen.Load(); old != nil && old.cache != nil {
			g.warmed = g.cache.Warm(old.cache.HotKeys(0), nil)
		}
	}
	s.gen.Store(g)
	if g.num > 1 {
		s.swaps.Add(1)
	}
	return g.num
}

// Ready reports whether a generation is live.
func (s *Server) Ready() bool { return s.gen.Load() != nil }

// CurrentIndex returns the serving index, or nil before the first Install.
// Together with Generation, StrategyLatency and Install it forms the
// rebuild.Target surface the background re-optimizer works against.
func (s *Server) CurrentIndex() *flix.Index {
	if g := s.gen.Load(); g != nil {
		return g.ix
	}
	return nil
}

// Generation returns the current generation number (0 before the first
// Install).
func (s *Server) Generation() uint64 {
	if g := s.gen.Load(); g != nil {
		return g.num
	}
	return 0
}

// Swaps returns how many hot-swaps have happened (installs past the first).
func (s *Server) Swaps() int64 { return s.swaps.Load() }

// StrategyLatency snapshots the current generation's per-strategy latency
// histograms — the signal the re-optimizer uses to derive strategy
// overrides.
func (s *Server) StrategyLatency() map[string]obs.HistSnapshot {
	g := s.gen.Load()
	if g == nil {
		return nil
	}
	out := make(map[string]obs.HistSnapshot, len(g.stratLatency))
	for name, h := range g.stratLatency {
		out[name] = h.Snapshot()
	}
	return out
}

// reindexerBox wraps the Reindexer interface value so it can sit behind an
// atomic pointer: flixd installs it after the handler is already serving.
type reindexerBox struct{ r Reindexer }

// SetReindexer installs the background re-optimizer driving
// POST /v1/admin/reindex.  Safe to call while the handler is serving.
func (s *Server) SetReindexer(r Reindexer) { s.reindexer.Store(&reindexerBox{r: r}) }

// getReindexer returns the installed re-optimizer, or nil.
func (s *Server) getReindexer() Reindexer {
	if b := s.reindexer.Load(); b != nil {
		return b.r
	}
	return nil
}

// SetOntology installs the tag-similarity ontology used by /v1/query for
// ~tag expansion.  Must be called before Handler.
func (s *Server) SetOntology(o *ontology.Ontology) { s.onto = o }

// InFlight returns the number of queries currently evaluating.
func (s *Server) InFlight() int { return len(s.sem) }

// Handler returns the server's HTTP handler: the API mux wrapped in the
// request-ID and access-logging middlewares (the ID middleware is
// outermost so every log line and response carries an ID).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/descendants", s.admit("descendants", &s.reqDescendants, s.handleDescendants))
	mux.HandleFunc("/v1/connected", s.admit("connected", &s.reqConnected, s.handleConnected))
	mux.HandleFunc("/v1/query", s.admit("query", &s.reqQuery, s.handleQuery))
	mux.HandleFunc("/v1/batch", s.admit("batch", &s.reqBatch, s.handleBatch))
	mux.HandleFunc("/v1/admin/reindex", s.handleReindex)
	if s.cfg.Shard != nil {
		mux.HandleFunc("/v1/shard/eval", s.handleShardEval)
		mux.HandleFunc("/v1/shard/links", s.handleShardLinks)
	}
	return s.withRequestID(s.logged(mux))
}

// reqInfo is the per-request observability state, carried in the request
// context from the ID middleware through admission into the handler.
type reqInfo struct {
	id          string
	endpoint    string
	strategy    string      // set by the handler once the start node is known
	gen         *generation // serving generation captured at admission
	trace       *obs.Trace  // non-nil when traced (?trace=1 or slow-query sample)
	traceWanted bool        // client asked for the trace in the response
}

type ctxKey int

const reqInfoKey ctxKey = 0

// reqInfoFrom returns the request's reqInfo.  The fallback covers handlers
// invoked without the middleware (direct tests); it keeps nil-checks out of
// every call site.
func reqInfoFrom(ctx context.Context) *reqInfo {
	if ri, ok := ctx.Value(reqInfoKey).(*reqInfo); ok {
		return ri
	}
	return &reqInfo{}
}

// withRequestID carries each request's ID in the context and exposes it as
// the X-Flix-Request-Id response header, so the access log and the
// slow-query log can correlate their lines.  A syntactically valid incoming
// X-Flix-Request-Id is reused instead of replaced: the router stamps its ID
// onto every shard RPC a query fans out into, and reuse is what makes one
// query traceable across the whole cluster's logs.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := shard.SanitizeRequestID(r.Header.Get(shard.RequestIDHeader))
		if id == "" {
			id = fmt.Sprintf("%08x", s.reqSeq.Add(1))
		}
		ri := &reqInfo{id: id}
		w.Header().Set(shard.RequestIDHeader, ri.id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), reqInfoKey, ri)))
	})
}

// admit wraps a query handler with the admission semaphore, the per-request
// deadline, and the latency observation.  When the in-flight limit is hit
// the request is shed immediately with 429 — shedding beats queueing under
// overload because a queued query's deadline keeps ticking while it waits.
func (s *Server) admit(endpoint string, counter *atomic.Int64, h func(http.ResponseWriter, *http.Request, context.Context)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		counter.Add(1)
		// Readiness gate: before the first generation is installed there is
		// nothing to query; answer 503 without consuming the semaphore.
		g := s.gen.Load()
		if g == nil {
			s.notReady.Add(1)
			w.Header().Set("Retry-After", "1")
			s.fail(w, http.StatusServiceUnavailable, "index not ready: initial build in flight")
			return
		}
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			s.fail(w, http.StatusTooManyRequests, "server at capacity, retry later")
			return
		}
		if s.queryHook != nil {
			s.queryHook()
		}
		timeout, err := s.timeoutFor(r)
		if err != nil {
			s.fail(w, http.StatusBadRequest, err.Error())
			return
		}
		ri := reqInfoFrom(r.Context())
		ri.endpoint = endpoint
		ri.gen = g
		ri.traceWanted = boolParam(r.URL.Query().Get("trace"))
		if ri.traceWanted || s.sampleSlow() {
			ri.trace = obs.NewTrace(s.cfg.TraceEventLimit)
			ri.trace.SetGeneration(g.num)
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		t0 := time.Now()
		h(w, r, ctx)
		s.observe(ri, time.Since(t0))
	}
}

// sampleSlow reports whether this admitted request should carry a trace for
// the slow-query log: 1 in SlowQuerySample requests while a threshold is
// configured.
func (s *Server) sampleSlow() bool {
	if s.cfg.SlowQueryThreshold <= 0 {
		return false
	}
	return s.slowSeq.Add(1)%uint64(s.cfg.SlowQuerySample) == 0
}

// observe records one finished request into the per-endpoint and
// per-strategy latency histograms and, past the threshold, the slow-query
// log.
func (s *Server) observe(ri *reqInfo, elapsed time.Duration) {
	if h := s.latency[ri.endpoint]; h != nil {
		h.Observe(elapsed)
	}
	if ri.strategy != "" && ri.gen != nil {
		if h := ri.gen.stratLatency[ri.strategy]; h != nil {
			h.Observe(elapsed)
		}
	}
	if s.cfg.SlowQueryThreshold > 0 && elapsed >= s.cfg.SlowQueryThreshold {
		s.slowQueries.Add(1)
		if ri.trace != nil && s.cfg.Logger != nil {
			sum := ri.trace.Summary(false)
			b, err := json.Marshal(sum)
			if err != nil {
				b = []byte("{}")
			}
			s.cfg.Logger.Printf("slow-query id=%s endpoint=%s strategy=%s elapsed=%s trace=%s",
				ri.id, ri.endpoint, ri.strategy, elapsed.Round(time.Microsecond), b)
		}
	}
}

// genFor returns the generation a request was admitted under, falling back
// to the live pointer for handlers invoked without the admit wrapper
// (direct tests).
func (s *Server) genFor(ctx context.Context) *generation {
	if ri := reqInfoFrom(ctx); ri.gen != nil {
		return ri.gen
	}
	return s.gen.Load()
}

// expired reports whether the request deadline passed during handling.  It
// also compares against the wall clock: a deadline can pass after the last
// evaluator check but before the timer goroutine closes Done, and the
// response flag should not depend on that race.
func expired(ctx context.Context) bool {
	if ctx.Err() != nil {
		return true
	}
	dl, ok := ctx.Deadline()
	return ok && !time.Now().Before(dl)
}

// timeoutFor derives the request deadline from ?timeout= (a Go duration
// such as 500ms), clamped to cfg.MaxTimeout.
func (s *Server) timeoutFor(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("timeout")
	if raw == "" {
		return s.cfg.DefaultTimeout, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("bad timeout %q (want a positive duration like 500ms)", raw)
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// limitFor derives the result limit from ?k=, clamped to cfg.MaxLimit.
func (s *Server) limitFor(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("k")
	if raw == "" {
		return s.cfg.DefaultLimit, nil
	}
	k, err := strconv.Atoi(raw)
	if err != nil || k <= 0 {
		return 0, fmt.Errorf("bad k %q (want a positive integer)", raw)
	}
	if k > s.cfg.MaxLimit {
		k = s.cfg.MaxLimit
	}
	return k, nil
}

// resolveNode turns a ?start= / ?from= value into a node: a document name
// resolves to that document's root, anything else must be a numeric NodeID.
func (s *Server) resolveNode(raw string) (xmlgraph.NodeID, error) {
	if raw == "" {
		return xmlgraph.InvalidNode, fmt.Errorf("missing node parameter")
	}
	if d, ok := s.coll.DocByName(raw); ok {
		return s.coll.Doc(d).Root, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 || n >= s.coll.NumNodes() {
		return xmlgraph.InvalidNode, fmt.Errorf("unknown node %q (want a document name or a node id < %d)", raw, s.coll.NumNodes())
	}
	return xmlgraph.NodeID(n), nil
}

// nodeJSON is the wire form of one result element.
type nodeJSON struct {
	Node xmlgraph.NodeID `json:"node"`
	Tag  string          `json:"tag"`
	Doc  string          `json:"doc"`
	Text string          `json:"text,omitempty"`
	Dist int32           `json:"dist"`
}

func (s *Server) nodeJSON(n xmlgraph.NodeID, dist int32) nodeJSON {
	return nodeJSON{
		Node: n,
		Tag:  s.coll.Tag(n),
		Doc:  s.coll.Doc(s.coll.DocOf(n)).Name,
		Text: snippet(s.coll.Node(n).Text),
		Dist: dist,
	}
}

// snippet compresses element text for the wire.
func snippet(t string) string {
	t = strings.Join(strings.Fields(t), " ")
	if len(t) > 80 {
		t = t[:77] + "..."
	}
	return t
}

// handleDescendants answers GET /v1/descendants?start=<doc|node>&tag=<tag>
// [&k=][&maxdist=][&self=1][&order=exact][&timeout=].  An empty tag is the
// wildcard start//*.
func (s *Server) handleDescendants(w http.ResponseWriter, r *http.Request, ctx context.Context) {
	q := r.URL.Query()
	start, err := s.resolveNode(q.Get("start"))
	if err != nil {
		s.fail(w, http.StatusNotFound, "start: "+err.Error())
		return
	}
	k, err := s.limitFor(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	maxDist, err := intParam(q.Get("maxdist"), 0)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad maxdist: "+err.Error())
		return
	}
	ri := reqInfoFrom(ctx)
	g := s.genFor(ctx)
	ri.strategy = g.ix.StrategyAt(start)
	opts := flix.Options{
		MaxResults:  k,
		MaxDist:     int32(maxDist),
		IncludeSelf: boolParam(q.Get("self")),
		ExactOrder:  q.Get("order") == "exact",
		Cancel:      ctx.Done(),
		Tracer:      ri.trace,
	}
	results := make([]nodeJSON, 0, 16)
	emit := func(res flix.Result) bool {
		results = append(results, s.nodeJSON(res.Node, res.Dist))
		return true
	}
	if g.cache != nil {
		g.cache.Descendants(start, q.Get("tag"), opts, emit)
	} else {
		g.ix.Descendants(start, q.Get("tag"), opts, emit)
	}
	timedOut := expired(ctx)
	if timedOut {
		s.timeouts.Add(1)
	}
	resp := map[string]any{
		"results":    results,
		"count":      len(results),
		"timedOut":   timedOut,
		"generation": g.num,
	}
	if ri.traceWanted && ri.trace != nil {
		resp["trace"] = ri.trace.Summary(true)
	}
	s.ok(w, resp)
}

// handleConnected answers GET /v1/connected?from=<doc|node>&to=<doc|node>
// [&maxdist=][&timeout=].
func (s *Server) handleConnected(w http.ResponseWriter, r *http.Request, ctx context.Context) {
	q := r.URL.Query()
	from, err := s.resolveNode(q.Get("from"))
	if err != nil {
		s.fail(w, http.StatusNotFound, "from: "+err.Error())
		return
	}
	to, err := s.resolveNode(q.Get("to"))
	if err != nil {
		s.fail(w, http.StatusNotFound, "to: "+err.Error())
		return
	}
	maxDist, err := intParam(q.Get("maxdist"), 0)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad maxdist: "+err.Error())
		return
	}
	ri := reqInfoFrom(ctx)
	g := s.genFor(ctx)
	ri.strategy = g.ix.StrategyAt(from)
	dist, ok := g.ix.ConnectedOpts(from, to, flix.Options{MaxDist: int32(maxDist), Cancel: ctx.Done(), Tracer: ri.trace})
	timedOut := expired(ctx)
	if timedOut {
		s.timeouts.Add(1)
	}
	resp := map[string]any{"connected": ok, "timedOut": timedOut, "generation": g.num}
	if ok {
		resp["dist"] = dist
	}
	s.ok(w, resp)
}

// handleQuery answers GET /v1/query?q=<expr>[&k=][&timeout=]: ranked path
// expressions with structural and (when an ontology is installed) semantic
// vagueness.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, ctx context.Context) {
	expr := r.URL.Query().Get("q")
	if expr == "" {
		s.fail(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	k, err := s.limitFor(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	pq, err := query.Parse(expr)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	ri := reqInfoFrom(ctx)
	g := s.genFor(ctx)
	eval := &query.Evaluator{
		Index:      g.ix,
		Ontology:   s.onto,
		MaxResults: k,
		Cancel:     ctx.Done(),
		Tracer:     ri.trace,
	}
	matches := eval.EvaluateTopK(pq, k)
	timedOut := expired(ctx)
	if timedOut {
		s.timeouts.Add(1)
	}
	type matchJSON struct {
		nodeJSON
		Score   float64 `json:"score"`
		PathLen int32   `json:"pathLen"`
	}
	out := make([]matchJSON, 0, len(matches))
	for _, m := range matches {
		out = append(out, matchJSON{
			nodeJSON: s.nodeJSON(m.Node, m.PathLen),
			Score:    m.Score,
			PathLen:  m.PathLen,
		})
	}
	resp := map[string]any{
		"results":    out,
		"count":      len(out),
		"timedOut":   timedOut,
		"truncated":  eval.Stats.Truncated,
		"generation": g.num,
	}
	if ri.traceWanted && ri.trace != nil {
		resp["trace"] = ri.trace.Summary(true)
	}
	s.ok(w, resp)
}

// handleHealthz reports readiness, not just liveness: before the first
// index generation is installed the process is alive but cannot answer a
// single query, and a load balancer must not send it traffic — hence 503
// until Install delivers generation 1.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g := s.gen.Load()
	if g == nil {
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
			"status":      "starting",
			"ready":       false,
			"inFlight":    s.InFlight(),
			"maxInFlight": s.cfg.MaxInFlight,
			"uptime":      time.Since(s.started).Round(time.Millisecond).String(),
		})
		return
	}
	body := map[string]any{
		"status":      "ok",
		"ready":       true,
		"generation":  g.num,
		"swaps":       s.swaps.Load(),
		"inFlight":    s.InFlight(),
		"maxInFlight": s.cfg.MaxInFlight,
		"uptime":      time.Since(s.started).Round(time.Millisecond).String(),
	}
	// In shard mode the router's prober reads the ring position and the
	// decomposition fingerprint from here on every probe.
	if s.cfg.Shard != nil && g.shard != nil {
		body["shard"] = map[string]any{
			"id":          s.cfg.Shard.ID,
			"count":       s.cfg.Shard.Count,
			"fingerprint": g.shard.fingerprint,
		}
	}
	s.ok(w, body)
}

// handleStatsz reports the engine's query-load statistics, the §7
// self-tuning advice for the live load, cache effectiveness and the
// serving-layer counters in one JSON document.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	g := s.gen.Load()
	if g == nil {
		s.ok(w, map[string]any{
			"ready": false,
			"server": map[string]any{
				"notReady": s.notReady.Load(),
				"uptime":   time.Since(s.started).Round(time.Millisecond).String(),
			},
		})
		return
	}
	snap := g.ix.Stats().Snapshot()
	advice := g.ix.Advise()
	resp := map[string]any{
		"generation": map[string]any{
			"current":       g.num,
			"installedAt":   g.installed.Format(time.RFC3339Nano),
			"reason":        g.reason,
			"swaps":         s.swaps.Load(),
			"warmedQueries": g.warmed,
		},
		"index": map[string]any{
			"config":        g.ix.Config().Kind.String(),
			"metaDocuments": g.ix.NumMetaDocuments(),
			"runtimeLinks":  g.ix.RuntimeLinks(),
			"strategies":    g.ix.StrategyCounts(),
			"storage":       storageJSON(g.ix.StorageInfo()),
		},
		"queryStats": map[string]any{
			"queries":          snap.Queries,
			"pops":             snap.Pops,
			"entries":          snap.Entries,
			"dupDropped":       snap.DupDropped,
			"linkHops":         snap.LinkHops,
			"results":          snap.Results,
			"entriesPerQuery":  snap.EntriesPerQuery(),
			"linkHopsPerQuery": snap.LinkHopsPerQuery(),
			"dupDropRatio":     snap.DupDropRatio(),
		},
		"latency": s.latencyJSON(g),
		"build":   buildJSON(g.ix),
		"advice": map[string]any{
			"rebuild": advice.Rebuild,
			"reason":  advice.Reason,
		},
		"server": map[string]any{
			"inFlight":    s.InFlight(),
			"maxInFlight": s.cfg.MaxInFlight,
			"shed":        s.shed.Load(),
			"notReady":    s.notReady.Load(),
			"timeouts":    s.timeouts.Load(),
			"slowQueries": s.slowQueries.Load(),
			"requests": map[string]int64{
				"descendants": s.reqDescendants.Load(),
				"connected":   s.reqConnected.Load(),
				"query":       s.reqQuery.Load(),
				"batch":       s.reqBatch.Load(),
			},
		},
	}
	if advice.Rebuild {
		resp["advice"].(map[string]any)["config"] = map[string]any{
			"kind":          advice.Config.Kind.String(),
			"partitionSize": advice.Config.PartitionSize,
		}
	}
	if rx := s.getReindexer(); rx != nil {
		resp["reindex"] = rx.Status()
	}
	if sh := s.shardStatsz(g); sh != nil {
		resp["shard"] = sh
	}
	if g.cache != nil {
		hits, misses := g.cache.Counts()
		resp["cache"] = map[string]any{
			"entries": g.cache.Len(),
			"hits":    hits,
			"misses":  misses,
			"hitRate": g.cache.HitRate(),
		}
	}
	s.ok(w, resp)
}

// storageJSON renders how the serving index is backed — "heap" for a
// built generation, "v1"/"v2" for restored ones, with the mapping size
// when the v2 container is served via mmap and a per-section-kind byte
// breakdown (with compression ratios) for snapshot-backed generations.
func storageJSON(si flix.StorageInfo) map[string]any {
	out := map[string]any{"format": si.Format, "mapped": si.Mapped}
	if si.Mapped {
		out["mappedBytes"] = si.MappedBytes
	}
	if si.SizeBytes > 0 {
		out["sizeBytes"] = si.SizeBytes
	}
	if si.Sections != nil {
		out["compressed"] = si.Compressed
		secs := make([]map[string]any, 0, len(si.Sections))
		for _, st := range si.Sections {
			sec := map[string]any{
				"kind":     st.Kind,
				"sections": st.Sections,
				"bytes":    st.Bytes,
			}
			if st.RawBytes > 0 {
				sec["rawBytes"] = st.RawBytes
				sec["ratio"] = math.Round(st.Ratio*100) / 100
			}
			secs = append(secs, sec)
		}
		out["sections"] = secs
	}
	return out
}

// latencyJSON summarizes the per-endpoint and the generation's per-strategy
// latency histograms for /statsz.
func (s *Server) latencyJSON(g *generation) map[string]any {
	summ := func(hs map[string]*obs.Histogram) map[string]any {
		out := make(map[string]any, len(hs))
		for name, h := range hs {
			sn := h.Snapshot()
			if sn.Count == 0 {
				continue
			}
			out[name] = map[string]any{
				"count": sn.Count,
				"mean":  sn.Mean().Round(time.Microsecond).String(),
				"p50":   sn.Quantile(0.50).Round(time.Microsecond).String(),
				"p95":   sn.Quantile(0.95).Round(time.Microsecond).String(),
				"p99":   sn.Quantile(0.99).Round(time.Microsecond).String(),
			}
		}
		return out
	}
	return map[string]any{
		"endpoints":  summ(s.latency),
		"strategies": summ(g.stratLatency),
	}
}

// buildJSON renders the build-phase timings for /statsz, plus the on-disk
// size of the generation in its persisted form.
func buildJSON(ix *flix.Index) map[string]any {
	bs := ix.BuildStats()
	strategies := make(map[string]any, len(bs.Strategies))
	for name, sb := range bs.Strategies {
		strategies[name] = map[string]any{
			"metaDocuments": sb.Metas,
			"total":         sb.Total.Round(time.Microsecond).String(),
			"max":           sb.Max.Round(time.Microsecond).String(),
		}
	}
	workers := make([]map[string]any, 0, len(bs.Workers))
	for _, wb := range bs.Workers {
		workers = append(workers, map[string]any{
			"metaDocuments": wb.Metas,
			"busy":          wb.Busy.Round(time.Microsecond).String(),
		})
	}
	out := map[string]any{
		"partition":   bs.Partition.Round(time.Microsecond).String(),
		"select":      bs.Select.Round(time.Microsecond).String(),
		"indexBuild":  bs.IndexBuild.Round(time.Microsecond).String(),
		"parallelism": bs.Parallelism,
		"workers":     workers,
		"strategies":  strategies,
	}
	if sz, err := ix.SizeBytes(); err == nil {
		out["sizeBytes"] = sz
	}
	return out
}

// ok writes a 200 JSON response.
func (s *Server) ok(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// fail writes an error JSON response.
func (s *Server) fail(w http.ResponseWriter, code int, msg string) {
	if code >= 400 && code < 500 && code != http.StatusTooManyRequests {
		s.clientErrors.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{"error": msg}) //nolint:errcheck
}

// statusWriter captures the response code for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

// logged is the access-logging middleware.
func (s *Server) logged(next http.Handler) http.Handler {
	if s.cfg.Logger == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		s.cfg.Logger.Printf("id=%s %s %s %d %s", reqInfoFrom(r.Context()).id,
			r.Method, r.URL.RequestURI(), sw.status, time.Since(t0).Round(time.Microsecond))
	})
}

func intParam(raw string, def int) (int, error) {
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%q is not a non-negative integer", raw)
	}
	return n, nil
}

func boolParam(raw string) bool {
	return raw == "1" || raw == "true"
}
