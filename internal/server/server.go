// Package server turns a built flix.Index into a long-lived, shared,
// overload-safe HTTP endpoint — the serving layer the paper's framework
// implies but leaves to the host system.
//
// One process loads (or builds) an index once and answers concurrent
// queries over a small JSON API:
//
//	GET /v1/descendants  start//tag connection queries
//	GET /v1/connected    point-to-point connection tests
//	GET /v1/query        ranked path expressions (ParseQuery/Evaluator)
//	GET /healthz         liveness
//	GET /statsz          engine + self-tuning + server statistics
//	GET /metrics         Prometheus text format
//
// Every query endpoint runs behind a bounded admission semaphore (excess
// load is shed immediately with 429 instead of queueing), a per-request
// deadline (the context's Done channel is threaded into the evaluator's
// priority-queue loop, so a timed-out query stops promptly and returns what
// it found, flagged as truncated), and request-scoped result limits.  A
// QueryCache fronts the descendants path; /statsz reports its hit rate next
// to the §7 self-tuning advice so operators can see when the meta-document
// layout has gone stale for the live query load.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/flix"
	"repro/internal/ontology"
	"repro/internal/query"
	"repro/internal/xmlgraph"
)

// Config tunes the serving layer.  The zero value is usable; New fills in
// the defaults below.
type Config struct {
	// MaxInFlight bounds the number of concurrently evaluating queries;
	// requests beyond it are shed with 429.  Default 64.
	MaxInFlight int
	// DefaultTimeout is the per-request deadline when the client does not
	// pass ?timeout=.  Default 2s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested deadlines.  Default 30s.
	MaxTimeout time.Duration
	// DefaultLimit is the result limit when the client does not pass ?k=.
	// Default 100.
	DefaultLimit int
	// MaxLimit clamps client-requested result limits.  Default 10000.
	MaxLimit int
	// CacheSize is the QueryCache capacity fronting /v1/descendants
	// (number of distinct cached queries).  Default 1024; negative
	// disables the cache.
	CacheSize int
	// Logger receives one access-log line per request.  Nil disables
	// access logging.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.DefaultLimit <= 0 {
		c.DefaultLimit = 100
	}
	if c.MaxLimit <= 0 {
		c.MaxLimit = 10000
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	return c
}

// Server serves one immutable Index.
type Server struct {
	ix    *flix.Index
	coll  *xmlgraph.Collection
	cache *flix.QueryCache
	onto  *ontology.Ontology
	cfg   Config

	sem     chan struct{}
	started time.Time

	// Serving counters (engine-level counters live in ix.Stats()).
	reqDescendants atomic.Int64
	reqConnected   atomic.Int64
	reqQuery       atomic.Int64
	shed           atomic.Int64
	timeouts       atomic.Int64
	clientErrors   atomic.Int64

	// queryHook, when set, runs after admission and before evaluation.
	// It is a test seam for saturating the semaphore deterministically.
	queryHook func()
}

// New wraps a built index.  cfg zero-value fields take the documented
// defaults.
func New(ix *flix.Index, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		ix:      ix,
		coll:    ix.Collection(),
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxInFlight),
		started: time.Now(),
	}
	if cfg.CacheSize > 0 {
		s.cache = ix.NewQueryCache(cfg.CacheSize)
		s.cache.StoreBounded = true
	}
	return s
}

// SetOntology installs the tag-similarity ontology used by /v1/query for
// ~tag expansion.  Must be called before Handler.
func (s *Server) SetOntology(o *ontology.Ontology) { s.onto = o }

// InFlight returns the number of queries currently evaluating.
func (s *Server) InFlight() int { return len(s.sem) }

// Handler returns the server's HTTP handler: the API mux wrapped in the
// access-logging middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/descendants", s.admit(&s.reqDescendants, s.handleDescendants))
	mux.HandleFunc("/v1/connected", s.admit(&s.reqConnected, s.handleConnected))
	mux.HandleFunc("/v1/query", s.admit(&s.reqQuery, s.handleQuery))
	return s.logged(mux)
}

// admit wraps a query handler with the admission semaphore and the
// per-request deadline.  When the in-flight limit is hit the request is
// shed immediately with 429 — shedding beats queueing under overload
// because a queued query's deadline keeps ticking while it waits.
func (s *Server) admit(counter *atomic.Int64, h func(http.ResponseWriter, *http.Request, context.Context)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		counter.Add(1)
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			s.fail(w, http.StatusTooManyRequests, "server at capacity, retry later")
			return
		}
		if s.queryHook != nil {
			s.queryHook()
		}
		timeout, err := s.timeoutFor(r)
		if err != nil {
			s.fail(w, http.StatusBadRequest, err.Error())
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		h(w, r, ctx)
	}
}

// expired reports whether the request deadline passed during handling.  It
// also compares against the wall clock: a deadline can pass after the last
// evaluator check but before the timer goroutine closes Done, and the
// response flag should not depend on that race.
func expired(ctx context.Context) bool {
	if ctx.Err() != nil {
		return true
	}
	dl, ok := ctx.Deadline()
	return ok && !time.Now().Before(dl)
}

// timeoutFor derives the request deadline from ?timeout= (a Go duration
// such as 500ms), clamped to cfg.MaxTimeout.
func (s *Server) timeoutFor(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("timeout")
	if raw == "" {
		return s.cfg.DefaultTimeout, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("bad timeout %q (want a positive duration like 500ms)", raw)
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// limitFor derives the result limit from ?k=, clamped to cfg.MaxLimit.
func (s *Server) limitFor(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("k")
	if raw == "" {
		return s.cfg.DefaultLimit, nil
	}
	k, err := strconv.Atoi(raw)
	if err != nil || k <= 0 {
		return 0, fmt.Errorf("bad k %q (want a positive integer)", raw)
	}
	if k > s.cfg.MaxLimit {
		k = s.cfg.MaxLimit
	}
	return k, nil
}

// resolveNode turns a ?start= / ?from= value into a node: a document name
// resolves to that document's root, anything else must be a numeric NodeID.
func (s *Server) resolveNode(raw string) (xmlgraph.NodeID, error) {
	if raw == "" {
		return xmlgraph.InvalidNode, fmt.Errorf("missing node parameter")
	}
	if d, ok := s.coll.DocByName(raw); ok {
		return s.coll.Doc(d).Root, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 || n >= s.coll.NumNodes() {
		return xmlgraph.InvalidNode, fmt.Errorf("unknown node %q (want a document name or a node id < %d)", raw, s.coll.NumNodes())
	}
	return xmlgraph.NodeID(n), nil
}

// nodeJSON is the wire form of one result element.
type nodeJSON struct {
	Node xmlgraph.NodeID `json:"node"`
	Tag  string          `json:"tag"`
	Doc  string          `json:"doc"`
	Text string          `json:"text,omitempty"`
	Dist int32           `json:"dist"`
}

func (s *Server) nodeJSON(n xmlgraph.NodeID, dist int32) nodeJSON {
	return nodeJSON{
		Node: n,
		Tag:  s.coll.Tag(n),
		Doc:  s.coll.Doc(s.coll.DocOf(n)).Name,
		Text: snippet(s.coll.Node(n).Text),
		Dist: dist,
	}
}

// snippet compresses element text for the wire.
func snippet(t string) string {
	t = strings.Join(strings.Fields(t), " ")
	if len(t) > 80 {
		t = t[:77] + "..."
	}
	return t
}

// handleDescendants answers GET /v1/descendants?start=<doc|node>&tag=<tag>
// [&k=][&maxdist=][&self=1][&order=exact][&timeout=].  An empty tag is the
// wildcard start//*.
func (s *Server) handleDescendants(w http.ResponseWriter, r *http.Request, ctx context.Context) {
	q := r.URL.Query()
	start, err := s.resolveNode(q.Get("start"))
	if err != nil {
		s.fail(w, http.StatusNotFound, "start: "+err.Error())
		return
	}
	k, err := s.limitFor(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	maxDist, err := intParam(q.Get("maxdist"), 0)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad maxdist: "+err.Error())
		return
	}
	opts := flix.Options{
		MaxResults:  k,
		MaxDist:     int32(maxDist),
		IncludeSelf: boolParam(q.Get("self")),
		ExactOrder:  q.Get("order") == "exact",
		Cancel:      ctx.Done(),
	}
	results := make([]nodeJSON, 0, 16)
	emit := func(res flix.Result) bool {
		results = append(results, s.nodeJSON(res.Node, res.Dist))
		return true
	}
	if s.cache != nil {
		s.cache.Descendants(start, q.Get("tag"), opts, emit)
	} else {
		s.ix.Descendants(start, q.Get("tag"), opts, emit)
	}
	timedOut := expired(ctx)
	if timedOut {
		s.timeouts.Add(1)
	}
	s.ok(w, map[string]any{
		"results":  results,
		"count":    len(results),
		"timedOut": timedOut,
	})
}

// handleConnected answers GET /v1/connected?from=<doc|node>&to=<doc|node>
// [&maxdist=][&timeout=].
func (s *Server) handleConnected(w http.ResponseWriter, r *http.Request, ctx context.Context) {
	q := r.URL.Query()
	from, err := s.resolveNode(q.Get("from"))
	if err != nil {
		s.fail(w, http.StatusNotFound, "from: "+err.Error())
		return
	}
	to, err := s.resolveNode(q.Get("to"))
	if err != nil {
		s.fail(w, http.StatusNotFound, "to: "+err.Error())
		return
	}
	maxDist, err := intParam(q.Get("maxdist"), 0)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad maxdist: "+err.Error())
		return
	}
	dist, ok := s.ix.ConnectedOpts(from, to, flix.Options{MaxDist: int32(maxDist), Cancel: ctx.Done()})
	timedOut := expired(ctx)
	if timedOut {
		s.timeouts.Add(1)
	}
	resp := map[string]any{"connected": ok, "timedOut": timedOut}
	if ok {
		resp["dist"] = dist
	}
	s.ok(w, resp)
}

// handleQuery answers GET /v1/query?q=<expr>[&k=][&timeout=]: ranked path
// expressions with structural and (when an ontology is installed) semantic
// vagueness.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, ctx context.Context) {
	expr := r.URL.Query().Get("q")
	if expr == "" {
		s.fail(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	k, err := s.limitFor(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	pq, err := query.Parse(expr)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	eval := &query.Evaluator{
		Index:      s.ix,
		Ontology:   s.onto,
		MaxResults: k,
		Cancel:     ctx.Done(),
	}
	matches := eval.EvaluateTopK(pq, k)
	timedOut := expired(ctx)
	if timedOut {
		s.timeouts.Add(1)
	}
	type matchJSON struct {
		nodeJSON
		Score   float64 `json:"score"`
		PathLen int32   `json:"pathLen"`
	}
	out := make([]matchJSON, 0, len(matches))
	for _, m := range matches {
		out = append(out, matchJSON{
			nodeJSON: s.nodeJSON(m.Node, m.PathLen),
			Score:    m.Score,
			PathLen:  m.PathLen,
		})
	}
	s.ok(w, map[string]any{
		"results":  out,
		"count":    len(out),
		"timedOut": timedOut,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.ok(w, map[string]any{
		"status": "ok",
		"uptime": time.Since(s.started).Round(time.Millisecond).String(),
	})
}

// handleStatsz reports the engine's query-load statistics, the §7
// self-tuning advice for the live load, cache effectiveness and the
// serving-layer counters in one JSON document.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	snap := s.ix.Stats().Snapshot()
	advice := s.ix.Advise()
	resp := map[string]any{
		"index": map[string]any{
			"config":        s.ix.Config().Kind.String(),
			"metaDocuments": s.ix.NumMetaDocuments(),
			"runtimeLinks":  s.ix.RuntimeLinks(),
			"strategies":    s.ix.StrategyCounts(),
		},
		"queryStats": map[string]any{
			"queries":         snap.Queries,
			"entries":         snap.Entries,
			"linkHops":        snap.LinkHops,
			"results":         snap.Results,
			"entriesPerQuery": snap.EntriesPerQuery(),
			"linkHopsPerQuery": snap.LinkHopsPerQuery(),
		},
		"advice": map[string]any{
			"rebuild": advice.Rebuild,
			"reason":  advice.Reason,
		},
		"server": map[string]any{
			"inFlight":    s.InFlight(),
			"maxInFlight": s.cfg.MaxInFlight,
			"shed":        s.shed.Load(),
			"timeouts":    s.timeouts.Load(),
			"requests": map[string]int64{
				"descendants": s.reqDescendants.Load(),
				"connected":   s.reqConnected.Load(),
				"query":       s.reqQuery.Load(),
			},
		},
	}
	if advice.Rebuild {
		resp["advice"].(map[string]any)["config"] = map[string]any{
			"kind":          advice.Config.Kind.String(),
			"partitionSize": advice.Config.PartitionSize,
		}
	}
	if s.cache != nil {
		hits, misses := s.cache.Counts()
		resp["cache"] = map[string]any{
			"entries": s.cache.Len(),
			"hits":    hits,
			"misses":  misses,
			"hitRate": s.cache.HitRate(),
		}
	}
	s.ok(w, resp)
}

// ok writes a 200 JSON response.
func (s *Server) ok(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// fail writes an error JSON response.
func (s *Server) fail(w http.ResponseWriter, code int, msg string) {
	if code >= 400 && code < 500 && code != http.StatusTooManyRequests {
		s.clientErrors.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{"error": msg}) //nolint:errcheck
}

// statusWriter captures the response code for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

// logged is the access-logging middleware.
func (s *Server) logged(next http.Handler) http.Handler {
	if s.cfg.Logger == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		s.cfg.Logger.Printf("%s %s %d %s", r.Method, r.URL.RequestURI(), sw.status, time.Since(t0).Round(time.Microsecond))
	})
}

func intParam(raw string, def int) (int, error) {
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%q is not a non-negative integer", raw)
	}
	return n, nil
}

func boolParam(raw string) bool {
	return raw == "1" || raw == "true"
}
