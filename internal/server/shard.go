package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/flix"
	"repro/internal/obs"
	"repro/internal/shard"
)

// ShardConfig runs the server as one shard of a scatter-gather cluster
// (internal/shard).  A shard builds the full index over the full collection
// — the generation/swap machinery is unchanged — but answers partial
// evaluations only over the meta documents the consistent-hash ring assigns
// to it, exporting everything that crosses out as hops for the router to
// re-dispatch.
type ShardConfig struct {
	// ID is this shard's position on the ring, in [0, Count).
	ID int
	// Count is the cluster's shard count.
	Count int
	// VNodes is the ring's virtual nodes per shard (0 = DefaultVNodes).
	// Router and shards must agree.
	VNodes int
}

// shardGen is the per-generation shard state: the ownership mask and the
// decomposition fingerprint both depend on the generation's meta-document
// partitioning, so they swap with it.
type shardGen struct {
	owned       []bool
	ownedCount  int
	fingerprint string
}

// initShard precomputes a generation's ownership mask from the ring.
func (s *Server) initShard(g *generation) {
	if s.cfg.Shard == nil {
		return
	}
	ix := g.ix
	mask := s.ring.OwnedBy(s.cfg.Shard.ID, ix.NumMetaDocuments())
	owned := 0
	for _, o := range mask {
		if o {
			owned++
		}
	}
	g.shard = &shardGen{
		owned:       mask,
		ownedCount:  owned,
		fingerprint: fmt.Sprintf("%016x", ix.MetaFingerprint()),
	}
}

// handleShardEval answers POST /v1/shard/eval: one frontier batch expanded
// within this shard's owned meta documents (flix.PartialDescendants).  It
// shares the admission semaphore with the public endpoints, so a saturated
// shard sheds router batches with 429 — the router's retry/backpressure
// signal.
func (s *Server) handleShardEval(w http.ResponseWriter, r *http.Request) {
	s.reqShardEval.Add(1)
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	g := s.gen.Load()
	if g == nil || g.shard == nil {
		s.notReady.Add(1)
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusServiceUnavailable, "shard not ready: no index generation")
		return
	}
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusTooManyRequests, "shard at capacity, retry later")
		return
	}
	var req shard.EvalRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad eval request: "+err.Error())
		return
	}
	// The router owns the query deadline; the shard only guards itself
	// against a stuck peer with the server-wide maximum.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.MaxTimeout)
	defer cancel()
	owned := g.shard.owned
	// A distributed trace is requested in-body (authoritative) or via the
	// X-Flix-Trace header; the untraced default keeps the nil-tracer
	// allocation-free fast path.
	var tr *obs.Trace
	if req.Trace || r.Header.Get(shard.TraceHeader) == "1" {
		s.tracedEvals.Add(1)
		tr = obs.NewTrace(s.cfg.TraceEventLimit)
		tr.SetGeneration(g.num)
	}
	t0 := time.Now()
	pr := g.ix.PartialDescendants(req.Entries, req.Tag, flix.PartialOptions{
		MaxDist: req.MaxDist,
		Owned: func(mi int32) bool {
			return mi >= 0 && int(mi) < len(owned) && owned[mi]
		},
		Cancel: ctx.Done(),
		Tracer: tr,
	})
	if h := s.latency["shard_eval"]; h != nil {
		h.Observe(time.Since(t0))
	}
	resp := &shard.EvalResponse{
		Results:     pr.Results,
		Hops:        pr.Hops,
		Generation:  g.num,
		Fingerprint: g.shard.fingerprint,
		Truncated:   pr.Truncated || expired(ctx),
		Pops:        pr.Pops,
		Entries:     pr.Entries,
		LinkHops:    pr.LinkHops,
	}
	if tr != nil {
		resp.Trace = obs.NewFragment(s.cfg.Shard.ID, tr.Summary(false))
	}
	s.ok(w, resp)
}

// handleShardLinks answers GET /v1/shard/links: the topology export the
// router bootstraps from — the node→meta assignment, the per-meta out-link
// counts and the decomposition fingerprint.  ?summary=1 omits the bulky
// per-node arrays.
func (s *Server) handleShardLinks(w http.ResponseWriter, r *http.Request) {
	g := s.gen.Load()
	if g == nil || g.shard == nil {
		s.notReady.Add(1)
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusServiceUnavailable, "shard not ready: no index generation")
		return
	}
	resp := &shard.LinksResponse{
		Generation:  g.num,
		Fingerprint: g.shard.fingerprint,
		Shard:       s.cfg.Shard.ID,
		Shards:      s.cfg.Shard.Count,
		VNodes:      s.ring.VNodes(),
		NumMetas:    g.ix.NumMetaDocuments(),
		NumNodes:    s.coll.NumNodes(),
		OwnedMetas:  g.shard.ownedCount,
	}
	if !boolParam(r.URL.Query().Get("summary")) {
		resp.MetaOf = g.ix.MetaAssignment()
		resp.LinkCounts = g.ix.MetaOutLinkCounts()
	}
	s.ok(w, resp)
}

// shardStatsz is the /statsz "shard" section.
func (s *Server) shardStatsz(g *generation) map[string]any {
	if s.cfg.Shard == nil || g == nil || g.shard == nil {
		return nil
	}
	out := map[string]any{
		"id":          s.cfg.Shard.ID,
		"count":       s.cfg.Shard.Count,
		"vnodes":      s.ring.VNodes(),
		"ownedMetas":  g.shard.ownedCount,
		"totalMetas":  g.ix.NumMetaDocuments(),
		"fingerprint": g.shard.fingerprint,
		"evals":       s.reqShardEval.Load(),
		"tracedEvals": s.tracedEvals.Load(),
	}
	if sn := s.latency["shard_eval"].Snapshot(); sn.Count > 0 {
		out["evalLatency"] = map[string]any{
			"count": sn.Count,
			"p50":   sn.Quantile(0.50).Round(time.Microsecond).String(),
			"p99":   sn.Quantile(0.99).Round(time.Microsecond).String(),
		}
	}
	return out
}
