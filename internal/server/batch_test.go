package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/shard"
)

// postBatch posts a BatchRequest (query is the optional URL query string)
// and decodes the BatchResponse, failing on any other status than
// wantStatus.
func postBatch(t *testing.T, base, query string, req shard.BatchRequest, wantStatus int) shard.BatchResponse {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	url := base + "/v1/batch"
	if query != "" {
		url += "?" + query
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/batch: status %d, want %d (body %s)", resp.StatusCode, wantStatus, b)
	}
	var out shard.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST /v1/batch: bad JSON: %v", err)
	}
	return out
}

// TestBatchEndpoint covers the mixed batch: a cached descendants query, a
// cache miss, a ranked query, and two per-item errors that must not fail
// the batch.  Items come back in request order with per-item statuses.
func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Prime the cache so item 0 is a hit.
	getJSON(t, ts.URL+"/v1/descendants?start=movies.xml&tag=actor", 200)

	got := postBatch(t, ts.URL, "", shard.BatchRequest{Queries: []shard.BatchQuery{
		{Start: "movies.xml", Tag: "actor"},
		{Start: "actors.xml", Tag: "actor"},
		{Q: "//movie//actor"},
		{Q: "//["},
		{Start: "nope.xml", Tag: "actor"},
	}}, 200)

	if len(got.Results) != 5 {
		t.Fatalf("%d items, want 5", len(got.Results))
	}
	wantStatus := []string{"ok", "ok", "ok", "error", "error"}
	for i, want := range wantStatus {
		if got.Results[i].Status != want {
			t.Errorf("item %d status = %q, want %q (error %q)", i, got.Results[i].Status, want, got.Results[i].Error)
		}
	}
	if got.Completed != 5 || got.Partial || got.TimedOut {
		t.Errorf("completed=%d partial=%v timedOut=%v, want 5/false/false", got.Completed, got.Partial, got.TimedOut)
	}
	if !got.Results[0].CacheHit {
		t.Error("primed descendants item not flagged as a cache hit")
	}
	if got.Results[1].CacheHit {
		t.Error("first-touch descendants item flagged as a cache hit")
	}
	if got.Results[0].Count != 2 {
		t.Errorf("movies.xml//actor count = %d, want 2", got.Results[0].Count)
	}
	ranked := got.Results[2]
	if ranked.Count == 0 || ranked.Results[0].Score <= 0 {
		t.Errorf("ranked item got %+v, want scored results", ranked)
	}
	// The ranked item must agree with the single-query endpoint.
	single := getJSON(t, ts.URL+"/v1/query?q="+strings.ReplaceAll("//movie//actor", "/", "%2F"), 200)
	if float64(ranked.Count) != single["count"].(float64) {
		t.Errorf("batch ranked count %d != /v1/query count %v", ranked.Count, single["count"])
	}
	for _, bad := range []int{3, 4} {
		if got.Results[bad].Error == "" {
			t.Errorf("item %d has no error message", bad)
		}
	}
	// One batch = one admission = one request counter tick.
	stats := getJSON(t, ts.URL+"/statsz", 200)
	reqs := stats["server"].(map[string]any)["requests"].(map[string]any)
	if reqs["batch"].(float64) != 1 {
		t.Errorf("requests.batch = %v, want 1", reqs["batch"])
	}
}

// TestBatchKDefaults checks the three-level k resolution: item K, then the
// request default, then the server default, clamped to MaxLimit.
func TestBatchKDefaults(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxLimit: 3})
	got := postBatch(t, ts.URL, "", shard.BatchRequest{
		K: 1,
		Queries: []shard.BatchQuery{
			{Start: "movies.xml"},         // inherits request K=1
			{Start: "movies.xml", K: 2},   // own K
			{Start: "movies.xml", K: 100}, // clamped to MaxLimit=3
		},
	}, 200)
	for i, want := range []int{1, 2, 3} {
		if got.Results[i].Count != want {
			t.Errorf("item %d count = %d, want %d", i, got.Results[i].Count, want)
		}
	}
}

// TestBatchDeadlinePrefix pins the partial-batch contract: when the
// deadline expires mid-batch the response is still HTTP 200 with the
// completed prefix intact, the remainder marked skipped, and the partial
// flag set.
func TestBatchDeadlinePrefix(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	calls := 0
	s.batchItemHook = func(int) {
		calls++
		if calls == 3 {
			time.Sleep(300 * time.Millisecond) // past the 100ms deadline below
		}
	}
	// Four identical ranked queries: one ordering group, so execution
	// order is request order and the completed prefix is items 0..2.
	qs := make([]shard.BatchQuery, 4)
	for i := range qs {
		qs[i] = shard.BatchQuery{Q: "//movie//actor"}
	}
	got := postBatch(t, ts.URL, "timeout=100ms", shard.BatchRequest{Queries: qs}, 200)
	wantStatus := []string{"ok", "ok", "ok", "skipped"}
	for i, want := range wantStatus {
		if got.Results[i].Status != want {
			t.Fatalf("item %d status = %q, want %q", i, got.Results[i].Status, want)
		}
	}
	if got.Completed != 3 || !got.Partial || !got.TimedOut {
		t.Errorf("completed=%d partial=%v timedOut=%v, want 3/true/true", got.Completed, got.Partial, got.TimedOut)
	}
	// Items 0 and 1 ran before the deadline: full, untruncated answers.
	for i := 0; i < 2; i++ {
		if got.Results[i].Count == 0 || got.Results[i].Truncated {
			t.Errorf("pre-deadline item %d: count=%d truncated=%v", i, got.Results[i].Count, got.Results[i].Truncated)
		}
	}
}

// TestBatchShedding: a saturated server sheds a whole batch with 429, the
// same admission contract as the single-query endpoints.
func TestBatchShedding(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.queryHook = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	done := make(chan map[string]any)
	go func() {
		done <- getJSON(t, ts.URL+"/v1/descendants?start=movies.xml&tag=actor", 200)
	}()
	<-entered

	body, _ := json.Marshal(shard.BatchRequest{Queries: []shard.BatchQuery{{Q: "//movie"}}})
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("saturated server answered batch with %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	resp.Body.Close()
	close(release)
	<-done
}

// TestBatchRequestValidation covers the batch-level 4xx paths: wrong
// method, empty body, oversized batch.
func TestBatchRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 2})

	resp, err := http.Get(ts.URL + "/v1/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/batch = %d, want 405", resp.StatusCode)
	}

	for name, body := range map[string]string{
		"empty":    `{"queries": []}`,
		"garbage":  `{"queries": 12}`,
		"too-many": `{"queries": [{"q":"//a"},{"q":"//b"},{"q":"//c"}]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s batch = %d, want 400", name, resp.StatusCode)
		}
	}
}
