package server

// POST /v1/batch: many queries answered in one round trip under one
// admission slot and one deadline.  The motivating workload is the client
// that expands a document set or a dashboard refresh into dozens of small
// connection and ranked queries; issuing them one request each pays the
// admission and HTTP overhead per query and — worse — lets a load spike
// shed half of a logically atomic set.
//
// The handler reorders execution to make the deadline go further without
// changing any answer: descendants items already in the query cache run
// first (they cost microseconds and cannot miss the deadline), cache
// misses run grouped by their start node's meta document (consecutive
// misses traverse the same index structures while they are hot), and
// ranked queries run grouped by their first step's tag.  Items appear in
// the response in request order regardless.  When the deadline expires the
// items already examined are returned as a completed prefix — the response
// stays HTTP 200 with "partial": true and the remainder marked "skipped".

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"repro/internal/flix"
	"repro/internal/query"
	"repro/internal/shard"
	"repro/internal/xmlgraph"
)

// maxBatchBody bounds the /v1/batch request body (1 MiB).
const maxBatchBody = 1 << 20

// batchPlanItem is one executable batch entry: a parsed, resolved query
// plus the keys the cache-aware ordering sorts by.
type batchPlanItem struct {
	idx int // request position
	k   int

	// Ranked items.
	ranked bool
	q      *query.Query
	qTag   string // first step's tag: the anchor grouping key

	// Descendants items.
	start   xmlgraph.NodeID
	tag     string
	maxDist int32
	self    bool
	hit     bool  // answerable from the query cache
	meta    int32 // start's meta document: the miss grouping key
}

// handleBatch answers POST /v1/batch.  The body is a shard.BatchRequest;
// the response a shard.BatchResponse with one item per query, in request
// order.  Per-item failures (parse errors, unknown start nodes) do not
// fail the batch: the item carries status "error" and the rest proceed.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request, ctx context.Context) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST a JSON batch body to /v1/batch")
		return
	}
	var req shard.BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad batch body: "+err.Error())
		return
	}
	if len(req.Queries) == 0 {
		s.fail(w, http.StatusBadRequest, `empty batch: want {"queries": [...]}`)
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		s.fail(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d queries exceeds the limit of %d", len(req.Queries), s.cfg.MaxBatch))
		return
	}
	g := s.genFor(ctx)
	ri := reqInfoFrom(ctx)

	items := make([]shard.BatchItem, len(req.Queries))
	plan := make([]batchPlanItem, 0, len(req.Queries))
	for i, bq := range req.Queries {
		it, err := s.planBatchItem(g, i, bq, req.K)
		if err != nil {
			items[i] = shard.BatchItem{Status: shard.BatchError, Error: err.Error()}
			continue
		}
		plan = append(plan, it)
	}
	orderPlan(plan)

	// One evaluator for every ranked item in the batch: EvaluateTopK pools
	// its scratch, so consecutive ranked queries reuse the same heaps and
	// stream buffers instead of rewarming the pool per item.
	eval := &query.Evaluator{Index: g.ix, Ontology: s.onto, Cancel: ctx.Done(), Tracer: ri.trace}
	executed := 0
	for _, it := range plan {
		if expired(ctx) {
			break
		}
		if s.batchItemHook != nil {
			s.batchItemHook(it.idx)
		}
		items[it.idx] = s.runBatchItem(ctx, g, eval, it)
		executed++
	}
	for _, it := range plan[executed:] {
		items[it.idx] = shard.BatchItem{Status: shard.BatchSkipped, Error: "batch deadline expired"}
	}

	timedOut := expired(ctx)
	if timedOut {
		s.timeouts.Add(1)
	}
	resp := shard.BatchResponse{
		Results:    items,
		Completed:  len(items) - (len(plan) - executed),
		Partial:    executed < len(plan),
		TimedOut:   timedOut,
		Generation: g.num,
	}
	s.ok(w, resp)
}

// planBatchItem parses and resolves one batch entry, computing its result
// bound and ordering keys.  Errors here become per-item "error" statuses,
// not batch failures.
func (s *Server) planBatchItem(g *generation, i int, bq shard.BatchQuery, defK int) (batchPlanItem, error) {
	it := batchPlanItem{idx: i, k: bq.K}
	if it.k <= 0 {
		it.k = defK
	}
	if it.k <= 0 {
		it.k = s.cfg.DefaultLimit
	}
	if it.k > s.cfg.MaxLimit {
		it.k = s.cfg.MaxLimit
	}
	if bq.Q != "" {
		pq, err := query.Parse(bq.Q)
		if err != nil {
			return it, err
		}
		it.ranked = true
		it.q = pq
		it.qTag = pq.Steps[0].Tag
		return it, nil
	}
	start, err := s.resolveNode(bq.Start)
	if err != nil {
		return it, fmt.Errorf("start: %v", err)
	}
	if bq.MaxDist < 0 {
		return it, fmt.Errorf("bad maxDist %d (want >= 0)", bq.MaxDist)
	}
	it.start, it.tag, it.maxDist, it.self = start, bq.Tag, bq.MaxDist, bq.IncludeSelf
	it.meta = g.ix.MetaOf(start)
	it.hit = g.cache != nil && g.cache.Contains(start, bq.Tag)
	return it, nil
}

// orderPlan sorts executable items into cache-aware execution order:
// cached descendants first, then misses grouped by the start node's meta
// document, then ranked queries grouped by their first step's tag.  The
// sort is stable, so within each group the request order — and therefore
// the completed prefix a deadline expiry leaves behind — is predictable.
func orderPlan(plan []batchPlanItem) {
	rank := func(it batchPlanItem) int {
		switch {
		case !it.ranked && it.hit:
			return 0
		case !it.ranked:
			return 1
		default:
			return 2
		}
	}
	sort.SliceStable(plan, func(i, j int) bool {
		a, b := plan[i], plan[j]
		ra, rb := rank(a), rank(b)
		if ra != rb {
			return ra < rb
		}
		switch ra {
		case 1:
			return a.meta < b.meta
		case 2:
			return a.qTag < b.qTag
		}
		return false
	})
}

// runBatchItem evaluates one planned item on the request's generation.
func (s *Server) runBatchItem(ctx context.Context, g *generation, eval *query.Evaluator, it batchPlanItem) shard.BatchItem {
	item := shard.BatchItem{Status: shard.BatchOK, CacheHit: it.hit}
	if it.ranked {
		matches := eval.EvaluateTopK(it.q, it.k)
		item.Results = make([]shard.BatchResult, 0, len(matches))
		for _, m := range matches {
			br := s.batchResult(m.Node, m.PathLen)
			br.Score = m.Score
			br.PathLen = m.PathLen
			item.Results = append(item.Results, br)
		}
		item.Truncated = eval.Stats.Truncated
		item.Count = len(item.Results)
		return item
	}
	ri := reqInfoFrom(ctx)
	opts := flix.Options{
		MaxResults:  it.k,
		MaxDist:     it.maxDist,
		IncludeSelf: it.self,
		Cancel:      ctx.Done(),
		Tracer:      ri.trace,
	}
	item.Results = make([]shard.BatchResult, 0, 8)
	emit := func(r flix.Result) bool {
		item.Results = append(item.Results, s.batchResult(r.Node, r.Dist))
		return true
	}
	if g.cache != nil {
		g.cache.Descendants(it.start, it.tag, opts, emit)
	} else {
		g.ix.Descendants(it.start, it.tag, opts, emit)
	}
	// A deadline that expired mid-scan cut the priority-queue loop short;
	// the item's results are then a sound prefix, flagged as such.
	item.Truncated = expired(ctx)
	item.Count = len(item.Results)
	return item
}

// batchResult renders one result element in the batch wire shape.
func (s *Server) batchResult(n xmlgraph.NodeID, dist int32) shard.BatchResult {
	return shard.BatchResult{
		Node: n,
		Tag:  s.coll.Tag(n),
		Doc:  s.coll.Doc(s.coll.DocOf(n)).Name,
		Text: snippet(s.coll.Node(n).Text),
		Dist: dist,
	}
}
