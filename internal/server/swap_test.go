package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/flix"
	"repro/internal/query"
	"repro/internal/rebuild"
	"repro/internal/testutil"
	"repro/internal/xmlgraph"
)

// tortureCollection is the linked (cyclic, cross-document) family: the
// worst case for hot-swapping because every configuration partitions it
// differently and queries cross runtime links.
func tortureCollection(t testing.TB) *xmlgraph.Collection {
	t.Helper()
	return testutil.Generate(testutil.Linked, 11, 25, 18, 50)
}

// swapConfigs are the configurations the torture rotates through — every
// decomposition the engine supports, so consecutive generations disagree
// about meta documents, strategies, and runtime links.
func swapConfigs() []flix.Config {
	return []flix.Config{
		{Kind: flix.Hybrid, PartitionSize: 60},
		{Kind: flix.UnconnectedHOPI, PartitionSize: 50},
		{Kind: flix.MaximalPPO},
		{Kind: flix.Naive},
	}
}

// descSpec is one descendants request with its BFS ground truth: the set of
// reachable tagged nodes with their true shortest distances.  Any correct
// index generation must return exactly this node set, with distances that
// are valid path lengths (>= the true shortest).
type descSpec struct {
	url  string
	want map[xmlgraph.NodeID]int32
}

// querySpec is one ranked-path request with the match set computed once on
// a monolithic transitive-closure index — the exact reference every
// configuration must reproduce.
type querySpec struct {
	url  string
	want map[xmlgraph.NodeID]bool
}

func buildDescSpecs(t *testing.T, coll *xmlgraph.Collection, base string) []descSpec {
	t.Helper()
	var specs []descSpec
	tags := []string{"a", "b", "c", "d", "e"}
	for d := 0; d < coll.NumDocs() && len(specs) < 40; d++ {
		root := coll.Doc(xmlgraph.DocID(d)).Root
		trueDist := coll.BFSDistances(root)
		for _, tag := range tags {
			want := make(map[xmlgraph.NodeID]int32)
			for n := range trueDist {
				if trueDist[n] > 0 && coll.Tag(xmlgraph.NodeID(n)) == tag {
					want[xmlgraph.NodeID(n)] = trueDist[n]
				}
			}
			if len(want) == 0 {
				continue
			}
			specs = append(specs, descSpec{
				url:  fmt.Sprintf("%s/v1/descendants?start=%d&tag=%s&k=100000", base, root, tag),
				want: want,
			})
		}
	}
	if len(specs) < 8 {
		t.Fatalf("only %d non-empty descendants specs, want >= 8", len(specs))
	}
	return specs
}

func buildQuerySpecs(t *testing.T, coll *xmlgraph.Collection, base string) []querySpec {
	t.Helper()
	// The reference evaluator runs on the full transitive closure of the
	// whole collection as one meta document: no entry points, no runtime
	// links, exact distances — the oracle of PR 3's differential harness.
	tcIx, err := flix.Build(coll, flix.Config{Kind: flix.Monolithic, Strategy: "tc"})
	if err != nil {
		t.Fatal(err)
	}
	var specs []querySpec
	for _, expr := range []string{"//a//b", "//b//c", "//a//c//d", "//e//a"} {
		pq, err := query.Parse(expr)
		if err != nil {
			t.Fatal(err)
		}
		eval := &query.Evaluator{Index: tcIx, MaxResults: 100000}
		want := make(map[xmlgraph.NodeID]bool)
		for _, m := range eval.EvaluateTopK(pq, 100000) {
			want[m.Node] = true
		}
		if len(want) == 0 {
			continue
		}
		specs = append(specs, querySpec{
			url:  fmt.Sprintf("%s/v1/query?q=%s&k=100000", base, url.QueryEscape(expr)),
			want: want,
		})
	}
	if len(specs) < 2 {
		t.Fatalf("only %d non-empty query specs, want >= 2", len(specs))
	}
	return specs
}

// wireResponse is the part of a query/descendants response the torture
// verifies.
type wireResponse struct {
	Results []struct {
		Node xmlgraph.NodeID `json:"node"`
		Dist int32           `json:"dist"`
	} `json:"results"`
	TimedOut   bool   `json:"timedOut"`
	Generation uint64 `json:"generation"`
}

// TestSwapTorture hammers /v1/descendants and /v1/query from N goroutines
// while the index is hot-swapped M times under their feet, and asserts the
// swaps are invisible: every response is 200 (or an honest 429), every
// result set matches the BFS/transitive-closure oracle regardless of which
// generation served it, the generation tag is monotone per client, and the
// post-swap counters are exact.
func TestSwapTorture(t *testing.T) {
	coll := tortureCollection(t)
	cfgs := swapConfigs()
	ix0, err := flix.Build(coll, cfgs[len(cfgs)-1]) // start on Naive
	if err != nil {
		t.Fatal(err)
	}
	s := New(ix0, Config{
		MaxInFlight:    256,
		DefaultTimeout: 10 * time.Second,
		DefaultLimit:   1 << 20,
		MaxLimit:       1 << 20,
		CacheSize:      256,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	descSpecs := buildDescSpecs(t, coll, ts.URL)
	querySpecs := buildQuerySpecs(t, coll, ts.URL)

	var (
		reqs     atomic.Int64 // verified 200 responses
		shed     atomic.Int64 // tolerated 429s
		mu       sync.Mutex
		failures []string
	)
	report := func(format string, args ...any) {
		mu.Lock()
		if len(failures) < 10 {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
		mu.Unlock()
	}

	const workers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	client := ts.Client()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var lastGen uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				useQuery := (id+i)%3 == 0
				var u string
				if useQuery {
					u = querySpecs[(id+i)%len(querySpecs)].url
				} else {
					u = descSpecs[(id+i)%len(descSpecs)].url
				}
				resp, err := client.Get(u)
				if err != nil {
					report("worker %d: %v", id, err)
					return
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
					shed.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					report("worker %d: GET %s: status %d (%s)", id, u, resp.StatusCode, body)
					return
				}
				var out wireResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					report("worker %d: GET %s: bad JSON: %v", id, u, err)
					return
				}
				if out.TimedOut {
					report("worker %d: GET %s timed out", id, u)
					return
				}
				if out.Generation < lastGen {
					report("worker %d: generation went backwards %d -> %d", id, lastGen, out.Generation)
					return
				}
				lastGen = out.Generation
				if useQuery {
					spec := querySpecs[(id+i)%len(querySpecs)]
					if len(out.Results) != len(spec.want) {
						report("worker %d: %s: %d matches, want %d (gen %d)",
							id, u, len(out.Results), len(spec.want), out.Generation)
						return
					}
					for _, r := range out.Results {
						if !spec.want[r.Node] {
							report("worker %d: %s: unexpected match node %d (gen %d)", id, u, r.Node, out.Generation)
							return
						}
					}
				} else {
					spec := descSpecs[(id+i)%len(descSpecs)]
					if len(out.Results) != len(spec.want) {
						report("worker %d: %s: %d results, want %d (gen %d)",
							id, u, len(out.Results), len(spec.want), out.Generation)
						return
					}
					seen := make(map[xmlgraph.NodeID]bool, len(out.Results))
					for _, r := range out.Results {
						td, ok := spec.want[r.Node]
						if !ok {
							report("worker %d: %s: unexpected node %d (gen %d)", id, u, r.Node, out.Generation)
							return
						}
						if r.Dist < td {
							report("worker %d: %s: node %d dist %d below true %d (gen %d)",
								id, u, r.Node, r.Dist, td, out.Generation)
							return
						}
						if seen[r.Node] {
							report("worker %d: %s: duplicate node %d (gen %d)", id, u, r.Node, out.Generation)
							return
						}
						seen[r.Node] = true
					}
				}
				reqs.Add(1)
			}
		}(w)
	}

	// Fire the hot-swaps, each only after the workers have verified at
	// least 20 more responses since the previous one — that guarantees
	// real traffic overlapped every generation.
	const liveSwaps = 4
	for m := 0; m < liveSwaps; m++ {
		floor := reqs.Load() + 20
		deadline := time.Now().Add(10 * time.Second)
		for reqs.Load() < floor {
			if time.Now().After(deadline) {
				t.Fatalf("swap %d: workers stalled at %d verified responses", m+1, reqs.Load())
			}
			time.Sleep(time.Millisecond)
		}
		ix, err := flix.Build(coll, cfgs[m%len(cfgs)])
		if err != nil {
			t.Fatalf("building generation for swap %d: %v", m+1, err)
		}
		s.Install(ix, fmt.Sprintf("torture swap %d", m+1))
	}
	close(stop)
	wg.Wait()

	mu.Lock()
	for _, f := range failures {
		t.Error(f)
	}
	mu.Unlock()
	if t.Failed() {
		t.FailNow()
	}
	t.Logf("torture: %d verified responses, %d shed, %d live swaps", reqs.Load(), shed.Load(), liveSwaps)

	// One more swap on a quiet server, then the counters must be exact.
	// The incoming generation pre-warms its cache from the outgoing one's
	// hot keys, so right after the swap: entries == warmedQueries ==
	// engine queries (one evaluation per warmed key), and zero
	// hits/misses (warming stores without lookups).  K probes with keys
	// the torture never used then add exactly K misses and K entries,
	// and one repeat is exactly one hit.
	lastIx, err := flix.Build(coll, cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	s.Install(lastIx, "post-torture swap")
	wantGen := uint64(1 + liveSwaps + 1)
	if got := s.Generation(); got != wantGen {
		t.Errorf("Generation() = %d, want %d", got, wantGen)
	}
	if got := s.Swaps(); got != liveSwaps+1 {
		t.Errorf("Swaps() = %d, want %d", got, liveSwaps+1)
	}

	stats0 := getJSON(t, ts.URL+"/statsz", 200)
	warmed := stats0["generation"].(map[string]any)["warmedQueries"].(float64)
	if warmed <= 0 {
		t.Errorf("warmedQueries = %v after a traffic-heavy generation, want > 0", warmed)
	}
	cache0 := stats0["cache"].(map[string]any)
	if got := cache0["entries"].(float64); got != warmed {
		t.Errorf("post-swap cache entries = %v, want warmedQueries %v", got, warmed)
	}
	if h, m := cache0["hits"].(float64), cache0["misses"].(float64); h != 0 || m != 0 {
		t.Errorf("post-swap cache hits/misses = %v/%v, want 0/0", h, m)
	}
	if got := stats0["queryStats"].(map[string]any)["queries"].(float64); got != warmed {
		t.Errorf("post-swap queryStats.queries = %v, want warmedQueries %v", got, warmed)
	}

	// The probes use a tag no torture spec ever queried, so their keys
	// cannot have been warmed.
	const K = 7
	var freshURLs [K]string
	for i := 0; i < K; i++ {
		freshURLs[i] = fmt.Sprintf("%s/v1/descendants?start=%d&tag=zzz&k=100", ts.URL, i)
	}
	for i := 0; i < K; i++ {
		got := getJSON(t, freshURLs[i], 200)
		if gen := uint64(got["generation"].(float64)); gen != wantGen {
			t.Errorf("post-swap response generation = %d, want %d", gen, wantGen)
		}
	}
	getJSON(t, freshURLs[0], 200) // repeat: must be the one cache hit

	stats := getJSON(t, ts.URL+"/statsz", 200)
	qs := stats["queryStats"].(map[string]any)
	if got := qs["queries"].(float64); got != warmed+K {
		t.Errorf("queryStats.queries = %v, want exactly %v", got, warmed+K)
	}
	cache := stats["cache"].(map[string]any)
	if got := cache["entries"].(float64); got != warmed+K {
		t.Errorf("cache entries = %v, want exactly %v", got, warmed+K)
	}
	if got := cache["misses"].(float64); got != K {
		t.Errorf("cache misses = %v, want exactly %d", got, K)
	}
	if got := cache["hits"].(float64); got != 1 {
		t.Errorf("cache hits = %v, want exactly 1", got)
	}
	gen := stats["generation"].(map[string]any)
	if got := gen["current"].(float64); uint64(got) != wantGen {
		t.Errorf("statsz generation.current = %v, want %d", got, wantGen)
	}
	if got := gen["swaps"].(float64); got != liveSwaps+1 {
		t.Errorf("statsz generation.swaps = %v, want %d", got, liveSwaps+1)
	}
	if got := gen["reason"].(string); got != "post-torture swap" {
		t.Errorf("statsz generation.reason = %q, want %q", got, "post-torture swap")
	}
	health := getJSON(t, ts.URL+"/healthz", 200)
	if got := health["generation"].(float64); uint64(got) != wantGen {
		t.Errorf("healthz generation = %v, want %d", got, wantGen)
	}
}

// TestReadiness covers the pending-server lifecycle: the port serves
// immediately, query traffic and /healthz answer 503 until the first
// generation is installed, and flip to 200 afterwards.
func TestReadiness(t *testing.T) {
	coll := tortureCollection(t)
	s := NewPending(coll, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if s.Ready() {
		t.Fatal("pending server reports Ready")
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pending /healthz status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("pending /healthz has no Retry-After header")
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["ready"] != false || health["status"] != "starting" {
		t.Errorf("pending /healthz body = %v", health)
	}

	// Query endpoints shed with 503 (not 429, not a panic) while pending.
	for _, path := range []string{
		"/v1/descendants?start=0&tag=a",
		"/v1/connected?from=0&to=1",
		"/v1/query?q=//a//b",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("pending %s status = %d, want 503", path, resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra == "" {
			t.Errorf("pending %s has no Retry-After header", path)
		}
	}
	stats := getJSON(t, ts.URL+"/statsz", 200)
	if stats["ready"] != false {
		t.Errorf("pending /statsz ready = %v, want false", stats["ready"])
	}
	if got := stats["server"].(map[string]any)["notReady"].(float64); got != 3 {
		t.Errorf("notReady counter = %v, want 3", got)
	}

	// Install flips everything to ready atomically.
	ix, err := flix.Build(coll, flix.Config{Kind: flix.Naive})
	if err != nil {
		t.Fatal(err)
	}
	if gen := s.Install(ix, "initial index"); gen != 1 {
		t.Errorf("first Install returned generation %d, want 1", gen)
	}
	if !s.Ready() {
		t.Error("server not Ready after Install")
	}
	health = getJSON(t, ts.URL+"/healthz", 200)
	if health["ready"] != true || health["generation"].(float64) != 1 {
		t.Errorf("ready /healthz body = %v", health)
	}
	if got := health["swaps"].(float64); got != 0 {
		t.Errorf("swaps after initial install = %v, want 0", got)
	}
	got := getJSON(t, ts.URL+"/v1/descendants?start=0&tag=a&k=100", 200)
	if got["generation"].(float64) != 1 {
		t.Errorf("first query generation = %v, want 1", got["generation"])
	}
}

// errReindexer scripts the admin endpoint's error paths.
type errReindexer struct{ err error }

func (e errReindexer) Plan() rebuild.Plan                 { return rebuild.Plan{} }
func (e errReindexer) Reindex(bool) (rebuild.Plan, error) { return rebuild.Plan{}, e.err }
func (e errReindexer) Status() rebuild.Status             { return rebuild.Status{} }

// TestAdminReindex drives POST /v1/admin/reindex through its whole surface:
// method guard, unconfigured 501, dry-run planning, forced rebuild+swap,
// steady-state no-op, and the 409/500 error mapping.
func TestAdminReindex(t *testing.T) {
	coll := tortureCollection(t)
	ix, err := flix.Build(coll, flix.Config{Kind: flix.Hybrid, PartitionSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	s := New(ix, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	adminURL := ts.URL + "/v1/admin/reindex"

	post := func(u string, wantStatus int) map[string]any {
		t.Helper()
		resp, err := http.Post(u, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("POST %s: status %d, want %d (%s)", u, resp.StatusCode, wantStatus, body)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("POST %s: bad JSON: %v", u, err)
		}
		return out
	}

	// GET is refused with the Allow header.
	resp, err := http.Get(adminURL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Errorf("Allow = %q, want POST", allow)
	}

	// No reindexer wired: 501, not a panic.
	post(adminURL, http.StatusNotImplemented)

	mgr := rebuild.New(coll, s, rebuild.Config{MinQueries: 2})
	s.SetReindexer(mgr)

	// Dry run below the signal threshold: plan only, nothing swapped.
	out := post(adminURL+"?dry=1", 200)
	if out["dryRun"] != true {
		t.Errorf("dry response = %v", out)
	}
	plan := out["plan"].(map[string]any)
	if plan["rebuild"] != false {
		t.Errorf("dry plan with no load wants a rebuild: %v", plan)
	}
	if s.Generation() != 1 {
		t.Errorf("dry run changed the generation to %d", s.Generation())
	}

	// Forced: builds with the planned config and swaps.
	out = post(adminURL+"?force=1", 200)
	if out["swapped"] != true || out["generation"].(float64) != 2 {
		t.Errorf("forced response = %v, want swapped=true generation=2", out)
	}
	if s.Generation() != 2 || s.Swaps() != 1 {
		t.Errorf("after force: generation %d swaps %d, want 2/1", s.Generation(), s.Swaps())
	}
	// The manager shows up in /statsz once wired.
	stats := getJSON(t, ts.URL+"/statsz", 200)
	rx := stats["reindex"].(map[string]any)
	if rx["rebuilds"].(float64) != 1 {
		t.Errorf("statsz reindex.rebuilds = %v, want 1", rx["rebuilds"])
	}

	// Unforced with a steady load: the planner keeps the index.
	out = post(adminURL, 200)
	if out["swapped"] != false {
		t.Errorf("steady unforced response = %v, want swapped=false", out)
	}
	if s.Generation() != 2 {
		t.Errorf("steady unforced reindex changed the generation to %d", s.Generation())
	}

	// Error mapping: ErrBusy -> 409, anything else -> 500.
	s.SetReindexer(errReindexer{err: rebuild.ErrBusy})
	post(adminURL, http.StatusConflict)
	s.SetReindexer(errReindexer{err: errors.New("boom")})
	post(adminURL, http.StatusInternalServerError)
}
