package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/dblp"
	"repro/internal/flix"
)

// benchServer builds a DBLP-style corpus and wraps it in a Server, so later
// PRs have a serving-path baseline (HTTP parsing + admission + evaluation +
// JSON encoding), not just library-call numbers.
func benchServer(b *testing.B, docs int) (*Server, *dblp.Collection) {
	b.Helper()
	corpus := dblp.Generate(dblp.Scaled(docs))
	coll := corpus.BuildGraph()
	ix, err := flix.Build(coll, flix.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return New(ix, Config{MaxInFlight: 256}), corpus
}

// BenchmarkServeDescendantsHTTP measures full-stack throughput over real
// HTTP connections with concurrent clients rotating across start documents.
func BenchmarkServeDescendantsHTTP(b *testing.B) {
	s, corpus := benchServer(b, 400)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	urls := make([]string, 32)
	for i := range urls {
		urls[i] = fmt.Sprintf("%s/v1/descendants?start=%s&tag=title&k=20",
			ts.URL, corpus.DocName(i*len(corpus.Pubs)/len(urls)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		i := 0
		for pb.Next() {
			resp, err := client.Get(urls[i%len(urls)])
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
			i++
		}
	})
}

// BenchmarkServeDescendantsHandler measures the handler path without TCP:
// admission, evaluation, cache and JSON encoding via httptest recorders.
func BenchmarkServeDescendantsHandler(b *testing.B) {
	s, corpus := benchServer(b, 400)
	h := s.Handler()
	paths := make([]string, 32)
	for i := range paths {
		paths[i] = fmt.Sprintf("/v1/descendants?start=%s&tag=title&k=20",
			corpus.DocName(i*len(corpus.Pubs)/len(paths)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			req := httptest.NewRequest(http.MethodGet, paths[i%len(paths)], nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Errorf("status %d", rec.Code)
				return
			}
			i++
		}
	})
}

// BenchmarkServeRankedQueryHandler covers the /v1/query path: parse, ranked
// top-k evaluation, JSON encoding.
func BenchmarkServeRankedQueryHandler(b *testing.B) {
	s, _ := benchServer(b, 200)
	h := s.Handler()
	path := "/v1/query?q=//article//author&k=10"
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest(http.MethodGet, path, nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Errorf("status %d", rec.Code)
				return
			}
		}
	})
}
