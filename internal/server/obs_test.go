package server

import (
	"bytes"
	"io"
	"log"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe log sink.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRequestID checks every response carries a unique X-Flix-Request-Id
// and the access log carries the same ID.
func TestRequestID(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Config{Logger: log.New(&buf, "", 0)})
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/descendants?start=movies.xml&tag=actor")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		id := resp.Header.Get("X-Flix-Request-Id")
		if id == "" {
			t.Fatal("response without X-Flix-Request-Id")
		}
		if seen[id] {
			t.Fatalf("request ID %q repeated", id)
		}
		seen[id] = true
		if !strings.Contains(buf.String(), "id="+id+" ") {
			t.Errorf("access log missing id=%s:\n%s", id, buf.String())
		}
	}
}

// TestTraceParam checks ?trace=1 returns the EXPLAIN summary alongside the
// results on both traced endpoints.
func TestTraceParam(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: -1})
	got := getJSON(t, ts.URL+"/v1/descendants?start=movies.xml&tag=actor&trace=1", 200)
	if got["count"].(float64) != 2 {
		t.Fatalf("count = %v, want 2", got["count"])
	}
	tr, ok := got["trace"].(map[string]any)
	if !ok {
		t.Fatalf("no trace in response: %v", got)
	}
	if tr["pops"].(float64) < 1 {
		t.Errorf("trace pops = %v, want >= 1", tr["pops"])
	}
	metas, ok := tr["metas"].([]any)
	if !ok || len(metas) == 0 {
		t.Fatalf("trace without meta visits: %v", tr)
	}
	first := metas[0].(map[string]any)
	if first["strategy"] == "" {
		t.Errorf("meta visit without strategy: %v", first)
	}
	if _, ok := tr["events"].([]any); !ok {
		t.Error("trace without raw events")
	}

	// Untraced responses must not carry the key.
	got = getJSON(t, ts.URL+"/v1/descendants?start=movies.xml&tag=actor", 200)
	if _, ok := got["trace"]; ok {
		t.Error("trace present without ?trace=1")
	}

	u := ts.URL + "/v1/query?" + url.Values{"q": {"//movie//actor"}, "trace": {"1"}}.Encode()
	got = getJSON(t, u, 200)
	tr, ok = got["trace"].(map[string]any)
	if !ok {
		t.Fatalf("no trace in /v1/query response: %v", got)
	}
	if tr["pops"].(float64) < 1 {
		t.Errorf("/v1/query trace pops = %v, want >= 1", tr["pops"])
	}
}

// TestSlowQueryLog drives a request past a 1ns threshold and checks the
// sampled slow-query log line carries the ID, endpoint, and trace.
func TestSlowQueryLog(t *testing.T) {
	var buf syncBuffer
	s, ts := newTestServer(t, Config{
		Logger:             log.New(&buf, "", 0),
		SlowQueryThreshold: time.Nanosecond,
		CacheSize:          -1,
	})
	resp, err := http.Get(ts.URL + "/v1/descendants?start=movies.xml&tag=actor")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	id := resp.Header.Get("X-Flix-Request-Id")
	resp.Body.Close()

	deadline := time.Now().Add(2 * time.Second)
	for s.slowQueries.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.slowQueries.Load() < 1 {
		t.Fatal("slow query not counted")
	}
	logged := buf.String()
	for _, want := range []string{"slow-query id=" + id, "endpoint=descendants", "trace={", `"pops":`} {
		if !strings.Contains(logged, want) {
			t.Errorf("slow-query log missing %q:\n%s", want, logged)
		}
	}
	stats := getJSON(t, ts.URL+"/statsz", 200)
	if got := stats["server"].(map[string]any)["slowQueries"].(float64); got < 1 {
		t.Errorf("statsz slowQueries = %v, want >= 1", got)
	}
}

// TestStatszLatencyAndBuild checks /statsz reports the latency percentiles
// and the build-phase timings.
func TestStatszLatencyAndBuild(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	getJSON(t, ts.URL+"/v1/descendants?start=movies.xml&tag=actor", 200)
	deadline := time.Now().Add(2 * time.Second)
	for {
		stats := getJSON(t, ts.URL+"/statsz", 200)
		lat := stats["latency"].(map[string]any)
		eps := lat["endpoints"].(map[string]any)
		if d, ok := eps["descendants"].(map[string]any); ok {
			if d["count"].(float64) < 1 || d["p50"].(string) == "" || d["p99"].(string) == "" {
				t.Errorf("bad latency summary %v", d)
			}
			build := stats["build"].(map[string]any)
			if build["indexBuild"].(string) == "" {
				t.Errorf("bad build section %v", build)
			}
			if len(build["strategies"].(map[string]any)) == 0 {
				t.Errorf("build section without strategies: %v", build)
			}
			qs := stats["queryStats"].(map[string]any)
			if _, ok := qs["pops"]; !ok {
				t.Error("queryStats missing pops")
			}
			if _, ok := qs["dupDropRatio"]; !ok {
				t.Error("queryStats missing dupDropRatio")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("latency endpoint summary never appeared")
		}
		time.Sleep(time.Millisecond)
	}
}
