package server

import (
	"context"
	"encoding/json"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/flix"
	"repro/internal/ontology"
	"repro/internal/xmlparse"
)

// testIndex builds a small linked collection: movies.xml links into
// actors.xml, so descendants of the movies root cross a runtime link.
func testIndex(t testing.TB) *flix.Index {
	t.Helper()
	coll, err := xmlparse.Parse(map[string]string{
		"movies.xml": `<movies>
			<movie><title>The Matrix</title><cast href="actors.xml"/></movie>
			<movie><title>Speed</title><cast href="actors.xml"/></movie>
		</movies>`,
		"actors.xml": `<actors>
			<actor>Keanu Reeves</actor>
			<actor>Carrie-Anne Moss</actor>
		</actors>`,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := flix.Build(coll, flix.Config{Kind: flix.Naive})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(testIndex(t), cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// getJSON fetches a URL and decodes the JSON body.
func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d, want %d (body %s)", url, resp.StatusCode, wantStatus, body)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
	return out
}

func TestDescendantsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	got := getJSON(t, ts.URL+"/v1/descendants?start=movies.xml&tag=actor", 200)
	if got["count"].(float64) != 2 {
		t.Errorf("count = %v, want 2", got["count"])
	}
	if got["timedOut"].(bool) {
		t.Error("unexpected timedOut")
	}
	first := got["results"].([]any)[0].(map[string]any)
	if first["tag"] != "actor" || first["doc"] != "actors.xml" {
		t.Errorf("unexpected first result %v", first)
	}
	// The second identical request is a cache hit.
	getJSON(t, ts.URL+"/v1/descendants?start=movies.xml&tag=actor", 200)
	stats := getJSON(t, ts.URL+"/statsz", 200)
	cache := stats["cache"].(map[string]any)
	if cache["hits"].(float64) < 1 {
		t.Errorf("cache hits = %v, want >= 1", cache["hits"])
	}
}

func TestDescendantsLimitAndWildcard(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	got := getJSON(t, ts.URL+"/v1/descendants?start=movies.xml&k=3", 200)
	if got["count"].(float64) != 3 {
		t.Errorf("k=3 wildcard count = %v, want 3", got["count"])
	}
}

func TestDescendantsTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	got := getJSON(t, ts.URL+"/v1/descendants?start=movies.xml&tag=actor&timeout=1ns", 200)
	if !got["timedOut"].(bool) {
		t.Error("1ns deadline not reported as timed out")
	}
}

func TestConnectedEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	got := getJSON(t, ts.URL+"/v1/connected?from=movies.xml&to=actors.xml", 200)
	if !got["connected"].(bool) {
		t.Fatal("movies.xml -> actors.xml must be connected")
	}
	if got["dist"].(float64) != 3 {
		t.Errorf("dist = %v, want 3 (root/movie/cast -> link -> actors)", got["dist"])
	}
	got = getJSON(t, ts.URL+"/v1/connected?from=movies.xml&to=actors.xml&maxdist=1", 200)
	if got["connected"].(bool) {
		t.Error("maxdist=1 must not reach actors.xml")
	}
}

func TestRankedQueryEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	onto, err := ontology.Parse("movie film 0.9\n")
	if err != nil {
		t.Fatal(err)
	}
	s.SetOntology(onto)
	u := ts.URL + "/v1/query?" + url.Values{"q": {"//movie//actor"}, "k": {"10"}}.Encode()
	got := getJSON(t, u, 200)
	if got["count"].(float64) != 2 {
		t.Errorf("count = %v, want 2", got["count"])
	}
	top := got["results"].([]any)[0].(map[string]any)
	if top["score"].(float64) <= 0 || top["tag"] != "actor" {
		t.Errorf("unexpected top match %v", top)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	getJSON(t, ts.URL+"/v1/descendants?start=nosuch.xml&tag=actor", 404)
	getJSON(t, ts.URL+"/v1/descendants?start=movies.xml&k=-1", 400)
	getJSON(t, ts.URL+"/v1/descendants?start=movies.xml&timeout=bogus", 400)
	getJSON(t, ts.URL+"/v1/query?q=", 400)
	getJSON(t, ts.URL+"/v1/connected?from=movies.xml", 404)
}

func TestSheddingAtAdmissionLimit(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.queryHook = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	done := make(chan map[string]any)
	go func() {
		done <- getJSON(t, ts.URL+"/v1/descendants?start=movies.xml&tag=actor", 200)
	}()
	<-entered // the first request holds the only admission slot

	resp, err := http.Get(ts.URL + "/v1/descendants?start=movies.xml&tag=actor")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("saturated server returned %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	resp.Body.Close()

	close(release)
	if got := <-done; got["count"].(float64) != 2 {
		t.Errorf("blocked request result count = %v, want 2", got["count"])
	}
	stats := getJSON(t, ts.URL+"/statsz", 200)
	shed := stats["server"].(map[string]any)["shed"].(float64)
	if shed != 1 {
		t.Errorf("shed = %v, want 1", shed)
	}
}

// TestGracefulDrain exercises the SIGTERM path's contract: Shutdown must
// wait for the in-flight query and that query must complete successfully.
func TestGracefulDrain(t *testing.T) {
	s := New(testIndex(t), Config{})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.queryHook = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Shutdown

	status := make(chan int)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/v1/descendants?start=movies.xml&tag=actor")
		if err != nil {
			status <- -1
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		status <- resp.StatusCode
	}()
	<-entered

	shutdownDone := make(chan error)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a query was in flight", err)
	case <-time.After(50 * time.Millisecond):
		// Still draining — as it should be.
	}
	close(release)
	if code := <-status; code != http.StatusOK {
		t.Errorf("drained request finished with status %d, want 200", code)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

func TestHealthzStatszMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Logger: log.New(io.Discard, "", 0)})
	if got := getJSON(t, ts.URL+"/healthz", 200); got["status"] != "ok" {
		t.Errorf("healthz = %v", got)
	}
	getJSON(t, ts.URL+"/v1/descendants?start=movies.xml&tag=actor", 200)

	stats := getJSON(t, ts.URL+"/statsz", 200)
	qs := stats["queryStats"].(map[string]any)
	if qs["queries"].(float64) < 1 {
		t.Errorf("statsz queries = %v, want >= 1", qs["queries"])
	}
	if _, ok := stats["advice"].(map[string]any)["reason"]; !ok {
		t.Error("statsz missing self-tuning advice")
	}
	reqs := stats["server"].(map[string]any)["requests"].(map[string]any)
	if reqs["descendants"].(float64) != 1 {
		t.Errorf("request counter = %v, want 1", reqs["descendants"])
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`flix_requests_total{endpoint="descendants"} 1`,
		"flix_engine_queries_total",
		"flix_inflight_requests 0",
		"flix_cache_misses_total",
		"flix_index_meta_documents",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestConcurrentRequests drives the full HTTP path from many goroutines —
// the serving-layer counterpart of the engine-level race test.
func TestConcurrentRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 32})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Get(ts.URL + "/v1/descendants?start=movies.xml&tag=actor")
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
