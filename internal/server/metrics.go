package server

import (
	"fmt"
	"net/http"
	"sort"

	"repro/internal/obs"
)

// handleMetrics renders the serving and engine counters in the Prometheus
// text exposition format, hand-rolled on the standard library (the module
// takes no external dependencies).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	g := s.gen.Load()

	p("# HELP flix_ready Whether an index generation is live (readiness).\n")
	p("# TYPE flix_ready gauge\n")
	if g != nil {
		p("flix_ready 1\n")
	} else {
		p("flix_ready 0\n")
	}
	p("# HELP flix_index_generation Current index generation number.\n")
	p("# TYPE flix_index_generation gauge\n")
	p("flix_index_generation %d\n", s.Generation())
	p("# HELP flix_index_swaps_total Hot-swaps of the serving index (installs past the first).\n")
	p("# TYPE flix_index_swaps_total counter\n")
	p("flix_index_swaps_total %d\n", s.swaps.Load())
	p("# HELP flix_requests_not_ready_total Requests answered 503 before the first generation.\n")
	p("# TYPE flix_requests_not_ready_total counter\n")
	p("flix_requests_not_ready_total %d\n", s.notReady.Load())

	p("# HELP flix_requests_total Query requests received, by endpoint.\n")
	p("# TYPE flix_requests_total counter\n")
	p("flix_requests_total{endpoint=\"descendants\"} %d\n", s.reqDescendants.Load())
	p("flix_requests_total{endpoint=\"connected\"} %d\n", s.reqConnected.Load())
	p("flix_requests_total{endpoint=\"query\"} %d\n", s.reqQuery.Load())

	p("# HELP flix_requests_shed_total Requests rejected with 429 at the admission limit.\n")
	p("# TYPE flix_requests_shed_total counter\n")
	p("flix_requests_shed_total %d\n", s.shed.Load())

	p("# HELP flix_request_timeouts_total Requests whose deadline expired mid-evaluation.\n")
	p("# TYPE flix_request_timeouts_total counter\n")
	p("flix_request_timeouts_total %d\n", s.timeouts.Load())

	p("# HELP flix_client_errors_total Requests rejected with a 4xx other than 429.\n")
	p("# TYPE flix_client_errors_total counter\n")
	p("flix_client_errors_total %d\n", s.clientErrors.Load())

	p("# HELP flix_slow_queries_total Requests slower than the slow-query threshold.\n")
	p("# TYPE flix_slow_queries_total counter\n")
	p("flix_slow_queries_total %d\n", s.slowQueries.Load())

	p("# HELP flix_request_duration_seconds Query latency by endpoint.\n")
	p("# TYPE flix_request_duration_seconds histogram\n")
	for _, ep := range sortedKeys(s.latency) {
		writeHistogram(p, "flix_request_duration_seconds", "endpoint", ep, s.latency[ep].Snapshot())
	}

	p("# HELP flix_strategy_request_duration_seconds Query latency by the indexing strategy of the start node's meta document (current generation).\n")
	p("# TYPE flix_strategy_request_duration_seconds histogram\n")
	if g != nil {
		for _, st := range sortedKeys(g.stratLatency) {
			writeHistogram(p, "flix_strategy_request_duration_seconds", "strategy", st, g.stratLatency[st].Snapshot())
		}
	}

	p("# HELP flix_inflight_requests Queries currently evaluating.\n")
	p("# TYPE flix_inflight_requests gauge\n")
	p("flix_inflight_requests %d\n", s.InFlight())

	obs.WriteGoRuntimeText(p)

	// Everything below describes the serving generation; before the first
	// install there is none to describe.
	if g == nil {
		return
	}

	snap := g.ix.Stats().Snapshot()
	p("# HELP flix_engine_queries_total Completed index evaluations.\n")
	p("# TYPE flix_engine_queries_total counter\n")
	p("flix_engine_queries_total %d\n", snap.Queries)
	p("# HELP flix_engine_pops_total Priority-queue pops in the evaluator.\n")
	p("# TYPE flix_engine_pops_total counter\n")
	p("flix_engine_pops_total %d\n", snap.Pops)
	p("# HELP flix_engine_entries_total Meta-document entry points processed.\n")
	p("# TYPE flix_engine_entries_total counter\n")
	p("flix_engine_entries_total %d\n", snap.Entries)
	p("# HELP flix_engine_dup_dropped_total Frontier entries dropped as already covered.\n")
	p("# TYPE flix_engine_dup_dropped_total counter\n")
	p("flix_engine_dup_dropped_total %d\n", snap.DupDropped)
	p("# HELP flix_engine_link_hops_total Runtime link traversals.\n")
	p("# TYPE flix_engine_link_hops_total counter\n")
	p("flix_engine_link_hops_total %d\n", snap.LinkHops)
	p("# HELP flix_engine_results_total Results emitted by the evaluator.\n")
	p("# TYPE flix_engine_results_total counter\n")
	p("flix_engine_results_total %d\n", snap.Results)

	if g.cache != nil {
		hits, misses := g.cache.Counts()
		p("# HELP flix_cache_hits_total Query-cache hits.\n")
		p("# TYPE flix_cache_hits_total counter\n")
		p("flix_cache_hits_total %d\n", hits)
		p("# HELP flix_cache_misses_total Query-cache misses.\n")
		p("# TYPE flix_cache_misses_total counter\n")
		p("flix_cache_misses_total %d\n", misses)
		p("# HELP flix_cache_entries Cached query streams.\n")
		p("# TYPE flix_cache_entries gauge\n")
		p("flix_cache_entries %d\n", g.cache.Len())
	}

	p("# HELP flix_index_meta_documents Meta documents in the index.\n")
	p("# TYPE flix_index_meta_documents gauge\n")
	p("flix_index_meta_documents %d\n", g.ix.NumMetaDocuments())
	p("# HELP flix_index_runtime_links Links followed at query time.\n")
	p("# TYPE flix_index_runtime_links gauge\n")
	p("flix_index_runtime_links %d\n", g.ix.RuntimeLinks())

	p("# HELP flix_index_strategy_meta_documents Meta documents per indexing strategy.\n")
	p("# TYPE flix_index_strategy_meta_documents gauge\n")
	counts := g.ix.StrategyCounts()
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p("flix_index_strategy_meta_documents{strategy=%q} %d\n", n, counts[n])
	}

	bs := g.ix.BuildStats()
	p("# HELP flix_build_partition_seconds Build phase: meta-document partitioning time.\n")
	p("# TYPE flix_build_partition_seconds gauge\n")
	p("flix_build_partition_seconds %s\n", formatFloat(bs.Partition.Seconds()))
	p("# HELP flix_build_select_seconds Build phase: summed strategy-selection time.\n")
	p("# TYPE flix_build_select_seconds gauge\n")
	p("flix_build_select_seconds %s\n", formatFloat(bs.Select.Seconds()))
	p("# HELP flix_build_index_seconds Build phase: wall time of index construction.\n")
	p("# TYPE flix_build_index_seconds gauge\n")
	p("flix_build_index_seconds %s\n", formatFloat(bs.IndexBuild.Seconds()))
	p("# HELP flix_build_strategy_seconds Build phase: summed index construction time per strategy.\n")
	p("# TYPE flix_build_strategy_seconds gauge\n")
	for _, n := range sortedKeys(bs.Strategies) {
		p("flix_build_strategy_seconds{strategy=%q} %s\n", n, formatFloat(bs.Strategies[n].Total.Seconds()))
	}
}

// writeHistogram and formatFloat alias the exposition helpers shared with
// the router (internal/obs), keeping the two /metrics endpoints in one
// format.
var (
	writeHistogram = obs.WriteHistogramText
	formatFloat    = obs.FormatFloat
)

// sortedKeys returns the map's keys in sorted order, for a deterministic
// exposition.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
