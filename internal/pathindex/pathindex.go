// Package pathindex defines the contract every Path Indexing Strategy (PIS,
// FliX §3.2) fulfils, plus the strategy registry the Indexing Strategy
// Selector chooses from.
//
// An Index answers reachability, distance and "descendants by element name"
// queries over one meta document's local graph (an lgraph.LGraph).  All
// enumeration methods stream results through callbacks in ascending distance
// order (ties broken by node ID) — the order the Path Expression Evaluator
// relies on to produce approximately distance-ordered global results.
package pathindex

import (
	"io"

	"repro/internal/lgraph"
	"repro/internal/storage"
)

// Visit receives one result node with its distance from the query node.
// Returning false stops the enumeration.
type Visit func(node, dist int32) bool

// Index is a connection index over one local graph.
//
// Reachability follows the descendants-or-self axis: every node reaches
// itself at distance 0.
type Index interface {
	// Name identifies the strategy (e.g. "ppo", "hopi", "apex").
	Name() string

	// NumNodes returns the number of nodes of the indexed graph.
	NumNodes() int

	// Reachable reports whether there is a (possibly empty) path x -> y.
	Reachable(x, y int32) bool

	// Distance returns the shortest-path distance from x to y, and false
	// if y is not reachable from x.
	Distance(x, y int32) (int32, bool)

	// EachReachable enumerates every node reachable from x (including x,
	// at distance 0) in ascending distance order.
	EachReachable(x int32, fn Visit)

	// EachReachableByTag enumerates the reachable nodes carrying tag, in
	// ascending distance order.  x itself is included when it carries the
	// tag (descendants-or-self semantics); callers wanting strict
	// descendants skip dist 0.
	EachReachableByTag(x int32, tag lgraph.Tag, fn Visit)

	// EachReaching enumerates every node that reaches x (the
	// ancestors-or-self axis), in ascending distance order.
	EachReaching(x int32, fn Visit)

	// EachReachingByTag is EachReaching restricted to one tag.
	EachReachingByTag(x int32, tag lgraph.Tag, fn Visit)

	// WriteTo serializes the index; the byte count is the "index size"
	// reported in the experiments.
	io.WriterTo
}

// Builder constructs an Index for a local graph.  Builders may fail, e.g.
// PPO refuses non-forest graphs.
type Builder func(g *lgraph.LGraph) (Index, error)

// BodyReader deserializes an index from a stream whose header (magic +
// kind) has already been consumed — the caller dispatches on the kind.
// The local graph must be the one the index was built over.
type BodyReader func(g *lgraph.LGraph, r *storage.Reader) (Index, error)

// ParallelBuilder constructs an Index using up to parallelism concurrent
// workers.  parallelism <= 0 means "use all CPUs"; 1 must build serially.
// Implementations guarantee determinism: the resulting index is identical
// (byte-for-byte under WriteTo) for every parallelism value.
type ParallelBuilder func(g *lgraph.LGraph, parallelism int) (Index, error)

// Strategy pairs a strategy name with its builder and the structural
// constraints the Indexing Strategy Selector checks.
type Strategy struct {
	// Name is the registry key.
	Name string
	// Build constructs the index.
	Build Builder
	// BuildParallel, when non-nil, is a parallelism-aware variant of
	// Build used by the parallel build pipeline; when nil the strategy's
	// construction is inherently sequential and Build is used at every
	// parallelism level.
	BuildParallel ParallelBuilder
	// RequiresForest marks strategies (PPO) that only work when the local
	// graph is a forest.
	RequiresForest bool
}

// BuildWith dispatches to BuildParallel when available, Build otherwise.
func (s Strategy) BuildWith(g *lgraph.LGraph, parallelism int) (Index, error) {
	if s.BuildParallel != nil {
		return s.BuildParallel(g, parallelism)
	}
	return s.Build(g)
}

// FilterByTag adapts a Visit that should only see nodes of one tag; it is a
// helper for Index implementations whose natural enumeration is untyped.
func FilterByTag(g *lgraph.LGraph, tag lgraph.Tag, fn Visit) Visit {
	return func(node, dist int32) bool {
		if g.Tag(node) != tag {
			return true
		}
		return fn(node, dist)
	}
}
