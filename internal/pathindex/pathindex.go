// Package pathindex defines the contract every Path Indexing Strategy (PIS,
// FliX §3.2) fulfils, plus the strategy registry the Indexing Strategy
// Selector chooses from.
//
// An Index answers reachability, distance and "descendants by element name"
// queries over one meta document's local graph (an lgraph.LGraph).  All
// enumeration methods stream results through callbacks in ascending distance
// order (ties broken by node ID) — the order the Path Expression Evaluator
// relies on to produce approximately distance-ordered global results.
package pathindex

import (
	"io"

	"repro/internal/lgraph"
	"repro/internal/storage"
)

// Visit receives one result node with its distance from the query node.
// Returning false stops the enumeration.  It aliases storage.Visit so an
// index implementation satisfies the storage-agnostic probe interface and
// this package's Index with the same method set.
type Visit = storage.Visit

// Index is a connection index over one local graph.
//
// The query surface — reachability, distance and the four enumeration
// probes — is storage.Probe, the storage-agnostic contract shared by
// heap-built indexes and mmap-backed snapshot views; see that interface
// for the semantics (descendants-or-self axis, ascending (dist, node)
// emission order, allocation-free steady state).  Index adds the strategy
// name and v1 serialization on top.
type Index interface {
	// Name identifies the strategy (e.g. "ppo", "hopi", "apex").
	Name() string

	storage.Probe

	// WriteTo serializes the index in the v1 stream format; the byte
	// count is the "index size" reported in the experiments.
	io.WriterTo
}

// LinkDistancer is an optional batched variant of Probe.Distance for the
// evaluator's link-follow loop, which probes one fixed source element
// against every runtime-link source of a meta document.  An index that
// implements it can hoist the x-side of the reachability test out of the
// loop — for the compressed PPO view that turns five packed-array
// extractions per link source into at most two.  fn receives the position
// of each reachable source in sources together with its distance from x;
// returning false stops the sweep.  Unreachable sources are skipped.
type LinkDistancer interface {
	LinkDistances(x int32, sources []int32, fn func(i int, d int32) bool)
}

// LinkDistances dispatches to the index's batched fast path when it has
// one and otherwise falls back to per-source Distance calls with identical
// semantics.
func LinkDistances(idx Index, x int32, sources []int32, fn func(i int, d int32) bool) {
	if ld, ok := idx.(LinkDistancer); ok {
		ld.LinkDistances(x, sources, fn)
		return
	}
	for i, y := range sources {
		if d, ok := idx.Distance(x, y); ok {
			if !fn(i, d) {
				return
			}
		}
	}
}

// LinkTable accelerates LinkDistances for one FIXED source list.  A meta
// document's runtime-link sources never change after the build, so an
// index can decode the source-side columns of the distance test once —
// at table construction — and serve every later sweep from dense plain
// arrays.  For the compressed PPO view that removes the packed-array
// extraction from the per-source inner loop entirely: the sweep costs the
// same as over raw int32 slices, and only the probe-side constants are
// extracted per call.
type LinkTable interface {
	// LinkDistancesTo behaves like LinkDistances(idx, x, sources, fn)
	// for the source list the table was built over.
	LinkDistancesTo(x int32, fn func(i int, d int32) bool)
}

// LinkTabler is implemented by indexes that can precompute a LinkTable.
type LinkTabler interface {
	LinkTable(sources []int32) LinkTable
}

// NewLinkTable returns idx's precomputed table over sources, or nil when
// the list is empty or the index has no accelerated form — callers fall
// back to LinkDistances.
func NewLinkTable(idx Index, sources []int32) LinkTable {
	if len(sources) == 0 {
		return nil
	}
	if lt, ok := idx.(LinkTabler); ok {
		return lt.LinkTable(sources)
	}
	return nil
}

// Builder constructs an Index for a local graph.  Builders may fail, e.g.
// PPO refuses non-forest graphs.
type Builder func(g *lgraph.LGraph) (Index, error)

// BodyReader deserializes an index from a stream whose header (magic +
// kind) has already been consumed — the caller dispatches on the kind.
// The local graph must be the one the index was built over.
type BodyReader func(g *lgraph.LGraph, r *storage.Reader) (Index, error)

// ParallelBuilder constructs an Index using up to parallelism concurrent
// workers.  parallelism <= 0 means "use all CPUs"; 1 must build serially.
// Implementations guarantee determinism: the resulting index is identical
// (byte-for-byte under WriteTo) for every parallelism value.
type ParallelBuilder func(g *lgraph.LGraph, parallelism int) (Index, error)

// Strategy pairs a strategy name with its builder and the structural
// constraints the Indexing Strategy Selector checks.
type Strategy struct {
	// Name is the registry key.
	Name string
	// Build constructs the index.
	Build Builder
	// BuildParallel, when non-nil, is a parallelism-aware variant of
	// Build used by the parallel build pipeline; when nil the strategy's
	// construction is inherently sequential and Build is used at every
	// parallelism level.
	BuildParallel ParallelBuilder
	// RequiresForest marks strategies (PPO) that only work when the local
	// graph is a forest.
	RequiresForest bool
}

// BuildWith dispatches to BuildParallel when available, Build otherwise.
func (s Strategy) BuildWith(g *lgraph.LGraph, parallelism int) (Index, error) {
	if s.BuildParallel != nil {
		return s.BuildParallel(g, parallelism)
	}
	return s.Build(g)
}

// FilterByTag adapts a Visit that should only see nodes of one tag; it is a
// helper for Index implementations whose natural enumeration is untyped.
func FilterByTag(g *lgraph.LGraph, tag lgraph.Tag, fn Visit) Visit {
	return func(node, dist int32) bool {
		if g.Tag(node) != tag {
			return true
		}
		return fn(node, dist)
	}
}
