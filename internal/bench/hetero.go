package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/dblp"
	"repro/internal/xmlgraph"
)

// Region describes one homogeneous part of a mixed collection.
type Region struct {
	// Name labels the region in reports.
	Name string
	// FirstDoc and LastDoc delimit the region's documents [first, last).
	FirstDoc, LastDoc xmlgraph.DocID
	// Start is a representative query-start element inside the region.
	Start xmlgraph.NodeID
	// Tag is a representative element name for start//tag queries.
	Tag string
}

// Mixed is a heterogeneous collection: deep link-free trees (INEX-style
// articles), a DBLP-like citation region, and a densely interlinked Web-like
// region with cycles — the setting of the paper's Figure 1 and the
// adaptivity experiment its future work calls for (§7).
type Mixed struct {
	Coll    *xmlgraph.Collection
	Regions []Region
}

// MixedCollection builds the heterogeneous collection, deterministic in
// seed.  scale multiplies the per-region document counts (scale 1 ≈ 1,600
// documents, ≈70k elements).
func MixedCollection(seed int64, scale int) *Mixed {
	if scale < 1 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	coll := xmlgraph.NewCollection()
	m := &Mixed{Coll: coll}

	// Region 1: INEX-style articles — deep trees, no links at all.  The
	// selector should give every document (or merged tree partition) PPO.
	treeFirst := xmlgraph.DocID(coll.NumDocs())
	var treeStart xmlgraph.NodeID
	nTrees := 200 * scale
	for i := 0; i < nTrees; i++ {
		b := coll.NewDocument(fmt.Sprintf("inex%05d.xml", i))
		root := b.Enter("inexarticle", "")
		if i == 0 {
			treeStart = root
		}
		b.AddLeaf("atitle", fmt.Sprintf("Article %d", i))
		sections := 2 + rng.Intn(4)
		for s := 0; s < sections; s++ {
			b.Enter("sec", "")
			b.AddLeaf("st", fmt.Sprintf("Section %d", s))
			for p := 0; p < 2+rng.Intn(5); p++ {
				b.Enter("p", "")
				b.AddLeaf("it", "text")
				b.Leave()
			}
			if rng.Intn(2) == 0 {
				b.Enter("ss1", "")
				b.AddLeaf("p", "nested")
				b.Leave()
			}
			b.Leave()
		}
		b.Leave()
		b.Close()
	}
	m.Regions = append(m.Regions, Region{
		Name:     "inex-trees",
		FirstDoc: treeFirst,
		LastDoc:  xmlgraph.DocID(coll.NumDocs()),
		Start:    treeStart,
		Tag:      "p",
	})

	// Region 2: DBLP-like citation region.
	dblpFirst := xmlgraph.DocID(coll.NumDocs())
	corpus := dblp.Generate(dblp.Params{
		Docs: 1200 * scale, MeanCites: 4.085, MeanExtra: 15.9, Seed: seed + 1,
	})
	corpus.AppendTo(coll)
	m.Regions = append(m.Regions, Region{
		Name:     "dblp-citations",
		FirstDoc: dblpFirst,
		LastDoc:  xmlgraph.DocID(coll.NumDocs()),
		Start:    corpus.Hub(coll),
		Tag:      "article",
	})

	// Region 3: Web-like pages — small documents, dense inter-document
	// links in both directions (cycles), plus intra-document anchors.
	webFirst := xmlgraph.DocID(coll.NumDocs())
	nWeb := 200 * scale
	var webStart xmlgraph.NodeID
	type webDoc struct {
		root    xmlgraph.NodeID
		anchors []xmlgraph.NodeID
	}
	docs := make([]webDoc, nWeb)
	for i := 0; i < nWeb; i++ {
		b := coll.NewDocument(fmt.Sprintf("page%05d.xml", i))
		root := b.Enter("page", "")
		if i == 0 {
			webStart = root
		}
		b.AddLeaf("heading", fmt.Sprintf("Page %d", i))
		var anchors []xmlgraph.NodeID
		for a := 0; a < 2+rng.Intn(4); a++ {
			b.Enter("para", "")
			anchors = append(anchors, b.AddLeaf("anchor", ""))
			b.Leave()
		}
		b.Leave()
		b.Close()
		docs[i] = webDoc{root: root, anchors: anchors}
	}
	for i := 0; i < nWeb; i++ {
		// 3-6 outgoing links per page, any direction (cycles welcome).
		for l := 0; l < 3+rng.Intn(4); l++ {
			target := docs[rng.Intn(nWeb)]
			src := docs[i].anchors[rng.Intn(len(docs[i].anchors))]
			if rng.Intn(4) == 0 {
				// Deep link into another page's anchor.
				coll.AddLink(src, target.anchors[rng.Intn(len(target.anchors))], xmlgraph.EdgeInterLink)
			} else {
				coll.AddLink(src, target.root, xmlgraph.EdgeInterLink)
			}
		}
		// Occasional intra-document anchor reference.
		if rng.Intn(3) == 0 && len(docs[i].anchors) >= 2 {
			coll.AddLink(docs[i].anchors[0], docs[i].anchors[1], xmlgraph.EdgeIntraLink)
		}
	}
	m.Regions = append(m.Regions, Region{
		Name:     "web-pages",
		FirstDoc: webFirst,
		LastDoc:  xmlgraph.DocID(coll.NumDocs()),
		Start:    webStart,
		Tag:      "heading",
	})

	coll.Freeze()
	return m
}

// RegionOf returns the region containing a document, or -1.
func (m *Mixed) RegionOf(d xmlgraph.DocID) int {
	for i, r := range m.Regions {
		if d >= r.FirstDoc && d < r.LastDoc {
			return i
		}
	}
	return -1
}
