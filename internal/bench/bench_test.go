package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dblp"
	"repro/internal/flix"
	"repro/internal/xmlgraph"
)

// smallExperiment is shared by the tests; 400 documents keep everything
// fast while preserving the collection's structure.
func smallExperiment(t testing.TB) *Experiment {
	t.Helper()
	return NewExperiment(dblp.Scaled(400))
}

func TestBuildAllAndSizes(t *testing.T) {
	e := smallExperiment(t)
	built, err := e.BuildAll(PaperStrategies())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := IndexSizes(built)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byLabel := map[string]SizeRow{}
	for _, r := range rows {
		if r.Bytes <= 0 {
			t.Errorf("%s: size %d", r.Label, r.Bytes)
		}
		byLabel[r.Label] = r
	}
	// Table 1 shape: monolithic HOPI is the largest index.  HOPI-20000 is
	// excluded: at this small scale the whole collection fits in one
	// 20000-node partition, so it degenerates to monolithic HOPI (plus a
	// few bytes of empty link tables).
	for _, l := range []string{"APEX", "PPO-naive", "HOPI-5000", "MaximalPPO"} {
		if byLabel["HOPI"].Bytes <= byLabel[l].Bytes {
			t.Errorf("HOPI (%d) should exceed %s (%d)", byLabel["HOPI"].Bytes, l, byLabel[l].Bytes)
		}
	}
	if byLabel["HOPI"].Bytes+64 < byLabel["HOPI-20000"].Bytes {
		t.Errorf("HOPI-20000 (%d) should not materially exceed HOPI (%d)",
			byLabel["HOPI-20000"].Bytes, byLabel["HOPI"].Bytes)
	}
	// FliX HOPI partitions stay below monolithic HOPI even at this small
	// scale; the paper's order-of-magnitude gap emerges at full scale
	// (asserted by the root bench suite on the 6,210-document corpus).
	// Meta document counts: monolithic = 1, naive = one per document.
	if byLabel["HOPI"].MetaDocs != 1 || byLabel["PPO-naive"].MetaDocs != 400 {
		t.Errorf("meta docs: %v / %v", byLabel["HOPI"].MetaDocs, byLabel["PPO-naive"].MetaDocs)
	}
	out := FormatSizeTable(rows)
	if !strings.Contains(out, "HOPI-5000") || !strings.Contains(out, "MB") {
		t.Errorf("FormatSizeTable output:\n%s", out)
	}
}

func TestQueryTimeSeries(t *testing.T) {
	e := smallExperiment(t)
	built, err := e.BuildAll(PaperStrategies()[:1])
	if err != nil {
		t.Fatal(err)
	}
	ts := QueryTimeSeries(built[0], e.Start, "article", 50)
	if len(ts.Results) == 0 || len(ts.At) != len(ts.Results) {
		t.Fatalf("series: %d results, %d stamps", len(ts.Results), len(ts.At))
	}
	for i := 1; i < len(ts.At); i++ {
		if ts.At[i] < ts.At[i-1] {
			t.Error("timestamps must be monotone")
		}
	}
	s := ts.Sample([]int{1, 10, 1000})
	if s[0] > s[1] || s[1] > s[2] {
		t.Errorf("Sample not monotone: %v", s)
	}
	if s[2] != ts.At[len(ts.At)-1] {
		t.Error("overlong sample must clamp to the last arrival")
	}
	out := FormatFigure5([]TimeSeries{ts}, []int{1, 10, 50})
	if !strings.Contains(out, "HOPI") {
		t.Errorf("FormatFigure5 output:\n%s", out)
	}
}

func TestSampleEmptySeries(t *testing.T) {
	ts := TimeSeries{Total: time.Second}
	s := ts.Sample([]int{1, 5})
	if s[0] != time.Second || s[1] != time.Second {
		t.Errorf("empty series sample = %v", s)
	}
}

func TestErrorRate(t *testing.T) {
	trueDist := map[xmlgraph.NodeID]int32{1: 1, 2: 2, 3: 3, 4: 4}
	ordered := []flix.Result{{Node: 1}, {Node: 2}, {Node: 3}, {Node: 4}}
	if r := ErrorRate(ordered, trueDist); r != 0 {
		t.Errorf("ordered rate = %g", r)
	}
	// Node 1 (true dist 1) arrives after node 3 (true dist 3): one error.
	swapped := []flix.Result{{Node: 2}, {Node: 3}, {Node: 1}, {Node: 4}}
	if r := ErrorRate(swapped, trueDist); r != 0.25 {
		t.Errorf("swapped rate = %g", r)
	}
	// Spurious node counts as wrong.
	spurious := []flix.Result{{Node: 9}}
	if r := ErrorRate(spurious, trueDist); r != 1 {
		t.Errorf("spurious rate = %g", r)
	}
	if r := ErrorRate(nil, trueDist); r != 0 {
		t.Errorf("empty rate = %g", r)
	}
}

func TestErrorRatesAcrossStrategies(t *testing.T) {
	e := smallExperiment(t)
	built, err := e.BuildAll(PaperStrategies())
	if err != nil {
		t.Fatal(err)
	}
	oracle := OracleDistances(e.Coll, e.Start, "article")
	for _, b := range built {
		ts := QueryTimeSeries(b, e.Start, "article", 0)
		rate := ErrorRate(ts.Results, oracle)
		if rate < 0 || rate > 1 {
			t.Errorf("%s: rate %g out of range", b.Entry.Label, rate)
		}
		// Monolithic strategies stream exactly ordered: rate 0.
		if b.Entry.Label == "HOPI" || b.Entry.Label == "APEX" {
			if rate != 0 {
				t.Errorf("%s: rate %g, want 0 (single meta document)", b.Entry.Label, rate)
			}
		}
		// Result sets are complete regardless of configuration.
		if len(ts.Results) != len(oracle) {
			t.Errorf("%s: %d results, oracle %d", b.Entry.Label, len(ts.Results), len(oracle))
		}
	}
}

func TestConnectionTest(t *testing.T) {
	e := smallExperiment(t)
	built, err := e.BuildAll([]Entry{
		{Label: "HOPI-small", Config: flix.Config{Kind: flix.UnconnectedHOPI, PartitionSize: 2000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	row := ConnectionTest(built[0], e.Coll, e.Start, 20)
	if row.Pairs != 20 {
		t.Errorf("pairs = %d", row.Pairs)
	}
	if row.Connected == 0 {
		t.Error("no connected pairs found; the sampling is broken")
	}
	if row.Forward <= 0 || row.Bidirectional <= 0 {
		t.Error("timings missing")
	}
}

func TestMixedCollection(t *testing.T) {
	m := MixedCollection(7, 1)
	if len(m.Regions) != 3 {
		t.Fatalf("regions = %d", len(m.Regions))
	}
	c := m.Coll
	if !c.Frozen() {
		t.Fatal("collection not frozen")
	}
	// Regions cover all documents without overlap.
	covered := 0
	for i, r := range m.Regions {
		if r.LastDoc <= r.FirstDoc {
			t.Fatalf("region %d empty", i)
		}
		covered += int(r.LastDoc - r.FirstDoc)
		if m.RegionOf(r.FirstDoc) != i || m.RegionOf(r.LastDoc-1) != i {
			t.Errorf("RegionOf inconsistent for region %d", i)
		}
		if c.DocOf(r.Start) < r.FirstDoc || c.DocOf(r.Start) >= r.LastDoc {
			t.Errorf("region %d start element outside region", i)
		}
		if len(c.NodesByTag(r.Tag)) == 0 {
			t.Errorf("region %d tag %q absent", i, r.Tag)
		}
	}
	if covered != c.NumDocs() {
		t.Errorf("regions cover %d of %d docs", covered, c.NumDocs())
	}
	if m.RegionOf(xmlgraph.DocID(c.NumDocs())) != -1 {
		t.Error("RegionOf out of range should be -1")
	}
	// The tree region has no links touching it; the web region is dense.
	st := xmlgraph.ComputeStats(c)
	if !st.HasCycle {
		t.Error("web region should create cycles")
	}
	for _, l := range c.Links() {
		if m.RegionOf(c.DocOf(l.From)) == 0 || m.RegionOf(c.DocOf(l.To)) == 0 {
			t.Fatal("link touches the link-free tree region")
		}
	}
	// Determinism.
	m2 := MixedCollection(7, 1)
	if m2.Coll.NumNodes() != c.NumNodes() || m2.Coll.NumLinks() != c.NumLinks() {
		t.Error("MixedCollection not deterministic")
	}
	// All configurations index it correctly (smoke: hybrid).
	ix, err := flix.Build(c, flix.Config{Kind: flix.Hybrid, PartitionSize: 2000})
	if err != nil {
		t.Fatal(err)
	}
	counts := ix.StrategyCounts()
	if counts["ppo"] == 0 || counts["hopi"] == 0 {
		t.Errorf("hybrid on mixed collection should use both ppo and hopi: %v", counts)
	}
}

func TestFormatBytes(t *testing.T) {
	if got := FormatBytes(27 << 20); got != "27.00 MB" {
		t.Errorf("FormatBytes = %q", got)
	}
}

func TestSortRowsBySize(t *testing.T) {
	rows := []SizeRow{{Label: "a", Bytes: 1}, {Label: "b", Bytes: 5}, {Label: "c", Bytes: 3}}
	SortRowsBySize(rows)
	if rows[0].Label != "b" || rows[2].Label != "a" {
		t.Errorf("sorted = %v", rows)
	}
}
