// Package bench is the experiment harness that regenerates the evaluation
// of the FliX paper (§6): Table 1 (index sizes), Figure 5 (time to return
// the first k results of an a//b query), the in-text result-order error
// rates, and the connection-test trend.  DESIGN.md §2 maps each experiment
// to its entry point here; cmd/flixbench and the root bench_test.go drive
// them.
package bench

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/dblp"
	"repro/internal/flix"
	"repro/internal/xmlgraph"
)

// Entry pairs a display label with a framework configuration.
type Entry struct {
	Label  string
	Config flix.Config
}

// PaperStrategies returns the six competitors of the paper's evaluation in
// Table 1 order: monolithic HOPI and APEX applied to the whole collection,
// plus four FliX configurations.
func PaperStrategies() []Entry {
	return []Entry{
		{Label: "HOPI", Config: flix.Config{Kind: flix.Monolithic, Strategy: "hopi"}},
		{Label: "APEX", Config: flix.Config{Kind: flix.Monolithic, Strategy: "apex"}},
		{Label: "PPO-naive", Config: flix.Config{Kind: flix.Naive}},
		{Label: "HOPI-5000", Config: flix.Config{Kind: flix.UnconnectedHOPI, PartitionSize: 5000}},
		{Label: "HOPI-20000", Config: flix.Config{Kind: flix.UnconnectedHOPI, PartitionSize: 20000}},
		{Label: "MaximalPPO", Config: flix.Config{Kind: flix.MaximalPPO}},
	}
}

// Experiment holds the dataset shared by all experiment runs.
type Experiment struct {
	Params dblp.Params
	Corpus *dblp.Collection
	Coll   *xmlgraph.Collection
	// Start is the query start element (the ARIES-paper stand-in).
	Start xmlgraph.NodeID
}

// NewExperiment generates the synthetic DBLP collection.
func NewExperiment(p dblp.Params) *Experiment {
	corpus := dblp.Generate(p)
	coll := corpus.BuildGraph()
	return &Experiment{
		Params: p,
		Corpus: corpus,
		Coll:   coll,
		Start:  corpus.Hub(coll),
	}
}

// BuildAll builds every strategy's index, returning them alongside build
// times.
func (e *Experiment) BuildAll(entries []Entry) ([]Built, error) {
	out := make([]Built, 0, len(entries))
	for _, en := range entries {
		t0 := time.Now()
		ix, err := flix.Build(e.Coll, en.Config)
		if err != nil {
			return nil, fmt.Errorf("bench: building %s: %w", en.Label, err)
		}
		out = append(out, Built{Entry: en, Index: ix, BuildTime: time.Since(t0)})
	}
	return out, nil
}

// Built is one constructed competitor.
type Built struct {
	Entry     Entry
	Index     *flix.Index
	BuildTime time.Duration
}

// SizeRow is one row of Table 1.
type SizeRow struct {
	Label     string
	Bytes     int64
	BuildTime time.Duration
	MetaDocs  int
}

// IndexSizes measures the serialized size of every built index (Table 1).
func IndexSizes(built []Built) ([]SizeRow, error) {
	rows := make([]SizeRow, 0, len(built))
	for _, b := range built {
		n, err := b.Index.SizeBytes()
		if err != nil {
			return nil, fmt.Errorf("bench: sizing %s: %w", b.Entry.Label, err)
		}
		rows = append(rows, SizeRow{
			Label:     b.Entry.Label,
			Bytes:     n,
			BuildTime: b.BuildTime,
			MetaDocs:  b.Index.NumMetaDocuments(),
		})
	}
	return rows, nil
}

// TimeSeries records, for one strategy, the elapsed time until the k-th
// result of a query was delivered (Figure 5's y-axis over its x-axis).
type TimeSeries struct {
	Label string
	// At[k] is the elapsed time when result k+1 arrived.
	At      []time.Duration
	Total   time.Duration
	Results []flix.Result
}

// QueryTimeSeries runs start//tag on one built index, recording arrival
// times of the first maxResults results (0 = all).
func QueryTimeSeries(b Built, start xmlgraph.NodeID, tag string, maxResults int) TimeSeries {
	ts := TimeSeries{Label: b.Entry.Label}
	t0 := time.Now()
	b.Index.Descendants(start, tag, flix.Options{MaxResults: maxResults}, func(r flix.Result) bool {
		ts.At = append(ts.At, time.Since(t0))
		ts.Results = append(ts.Results, r)
		return true
	})
	ts.Total = time.Since(t0)
	return ts
}

// Sample returns the elapsed times at the given result counts (1-based),
// padding with the final time when the query returned fewer results.
func (ts TimeSeries) Sample(counts []int) []time.Duration {
	out := make([]time.Duration, len(counts))
	for i, k := range counts {
		switch {
		case len(ts.At) == 0:
			out[i] = ts.Total
		case k-1 < len(ts.At):
			out[i] = ts.At[k-1]
		default:
			out[i] = ts.At[len(ts.At)-1]
		}
	}
	return out
}

// ErrorRate measures the fraction of results returned in wrong order (§6):
// a result is counted when its true distance is smaller than that of the
// result delivered immediately before it — it should have come earlier.
// trueDist maps every result node to its exact distance from the start.
func ErrorRate(results []flix.Result, trueDist map[xmlgraph.NodeID]int32) float64 {
	if len(results) == 0 {
		return 0
	}
	wrong := 0
	prev := int32(-1)
	for _, r := range results {
		d, ok := trueDist[r.Node]
		if !ok {
			wrong++ // spurious result: certainly wrong
			continue
		}
		if prev >= 0 && d < prev {
			wrong++
		}
		prev = d
	}
	return float64(wrong) / float64(len(results))
}

// OracleDistances computes the exact distance of every tag-matching
// descendant of start — the ground truth for ErrorRate.
func OracleDistances(c *xmlgraph.Collection, start xmlgraph.NodeID, tag string) map[xmlgraph.NodeID]int32 {
	out := make(map[xmlgraph.NodeID]int32)
	for _, nd := range c.DescendantsByTag(start, tag) {
		out[nd.Node] = nd.Dist
	}
	return out
}

// ConnRow is one measurement of the connection-test experiment.
type ConnRow struct {
	Label         string
	Pairs         int
	Connected     int
	Forward       time.Duration // total time, forward-only search
	Bidirectional time.Duration // total time, bidirectional search
}

// ConnectionTest samples pairs (start element, one of its descendants or a
// random element) and measures connection-test time per strategy.
func ConnectionTest(b Built, c *xmlgraph.Collection, start xmlgraph.NodeID, pairs int) ConnRow {
	row := ConnRow{Label: b.Entry.Label, Pairs: pairs}
	// Deterministic pair choice: descendants of start (hits) interleaved
	// with stride-spaced elements (mostly misses).
	desc := c.Descendants(start)
	targets := make([]xmlgraph.NodeID, 0, pairs)
	for i := 0; i < pairs; i++ {
		if i%2 == 0 && len(desc) > 0 {
			targets = append(targets, desc[(i/2*37)%len(desc)])
		} else {
			targets = append(targets, xmlgraph.NodeID((i*104729)%c.NumNodes()))
		}
	}
	// The client derives relevance from path length (§5.2), so a modest
	// threshold is realistic — beyond it the pair would score near zero.
	const maxDist = 12
	t0 := time.Now()
	for _, tgt := range targets {
		if _, ok := b.Index.Connected(start, tgt, maxDist); ok {
			row.Connected++
		}
	}
	row.Forward = time.Since(t0)
	t0 = time.Now()
	for _, tgt := range targets {
		b.Index.ConnectedBidirectional(start, tgt, maxDist)
	}
	row.Bidirectional = time.Since(t0)
	return row
}

// FormatBytes renders a byte count the way the paper's Table 1 does (MB
// with one decimal).
func FormatBytes(n int64) string {
	return fmt.Sprintf("%.2f MB", float64(n)/(1024*1024))
}

// FormatSizeTable renders Table 1.
func FormatSizeTable(rows []SizeRow) string {
	s := fmt.Sprintf("%-12s %12s %12s %6s\n", "index", "size", "build", "metas")
	for _, r := range rows {
		s += fmt.Sprintf("%-12s %12s %12s %6d\n",
			r.Label, FormatBytes(r.Bytes), r.BuildTime.Round(time.Millisecond), r.MetaDocs)
	}
	return s
}

// FormatFigure5 renders the Figure 5 series: one row per strategy, elapsed
// time at the sampled result counts.
func FormatFigure5(series []TimeSeries, counts []int) string {
	s := fmt.Sprintf("%-12s", "index")
	for _, k := range counts {
		s += fmt.Sprintf(" %9s", fmt.Sprintf("@%d", k))
	}
	s += fmt.Sprintf(" %9s %8s\n", "total", "results")
	for _, ts := range series {
		s += fmt.Sprintf("%-12s", ts.Label)
		for _, d := range ts.Sample(counts) {
			s += fmt.Sprintf(" %9s", d.Round(time.Microsecond))
		}
		s += fmt.Sprintf(" %9s %8d\n", ts.Total.Round(time.Microsecond), len(ts.Results))
	}
	return s
}

// SortRowsBySize orders Table 1 rows by descending size (for readability;
// the paper lists a fixed order, which callers keep by not sorting).
func SortRowsBySize(rows []SizeRow) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Bytes > rows[j].Bytes })
}
