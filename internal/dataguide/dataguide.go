// Package dataguide implements strong DataGuides (Goldman & Widom, VLDB
// 1997), the structural summary mentioned among the related path indexes in
// FliX §2.2.
//
// A strong DataGuide is the deterministic "powerset automaton" of the data
// graph: every distinct label path from a root leads to exactly one guide
// node, whose target set is the set of data nodes reached by that path.  On
// tree-shaped documents the guide is at most as large as the tree; on
// general graphs it can grow exponentially, which is why Build enforces a
// node budget and why the Indexing Strategy Selector never picks DataGuides
// for link-heavy meta documents.
package dataguide

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/lgraph"
	"repro/internal/storage"
)

// ErrBudget is returned when the guide would exceed the node budget.
var ErrBudget = errors.New("dataguide: guide exceeds node budget")

// Guide is a strong DataGuide.
type Guide struct {
	g *lgraph.LGraph

	// targets[n] is the sorted target set of guide node n.
	targets [][]int32
	// tag[n] is the label of the edge leading to guide node n (the last
	// step of its label path); roots are grouped per tag as well.
	tag []lgraph.Tag
	// succ[n] maps a tag to the successor guide node.
	succ []map[lgraph.Tag]int32
	// roots maps a root tag to its guide node.
	roots map[lgraph.Tag]int32
}

// Build constructs the strong DataGuide.  maxNodes bounds the guide size
// (0 means 4 * data-graph size, a generous default for tree-ish data).
func Build(g *lgraph.LGraph, maxNodes int) (*Guide, error) {
	if maxNodes <= 0 {
		maxNodes = 4 * (g.NumNodes() + 1)
	}
	gd := &Guide{
		g:     g,
		roots: make(map[lgraph.Tag]int32),
	}
	// Determinization over target sets: states are canonical target-set
	// keys.
	type stateKey string
	states := make(map[stateKey]int32)

	intern := func(set []int32, tag lgraph.Tag) (int32, bool, error) {
		key := stateKey(fmt.Sprintf("%d|%v", tag, set))
		if id, ok := states[key]; ok {
			return id, false, nil
		}
		if len(gd.targets) >= maxNodes {
			return 0, false, ErrBudget
		}
		id := int32(len(gd.targets))
		states[key] = id
		gd.targets = append(gd.targets, set)
		gd.tag = append(gd.tag, tag)
		gd.succ = append(gd.succ, make(map[lgraph.Tag]int32))
		return id, true, nil
	}

	// Seed: group the data-graph roots by tag.
	rootSets := make(map[lgraph.Tag][]int32)
	for _, r := range g.Roots() {
		rootSets[g.Tag(r)] = append(rootSets[g.Tag(r)], r)
	}
	var queue []int32
	for _, t := range sortedTags(rootSets) {
		set := rootSets[t]
		sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
		id, fresh, err := intern(set, t)
		if err != nil {
			return nil, err
		}
		gd.roots[t] = id
		if fresh {
			queue = append(queue, id)
		}
	}
	// Subset construction.
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		nextSets := make(map[lgraph.Tag]map[int32]struct{})
		for _, u := range gd.targets[cur] {
			for _, v := range g.Succs(u) {
				t := g.Tag(v)
				if nextSets[t] == nil {
					nextSets[t] = make(map[int32]struct{})
				}
				nextSets[t][v] = struct{}{}
			}
		}
		for _, t := range sortedTagSet(nextSets) {
			set := make([]int32, 0, len(nextSets[t]))
			for v := range nextSets[t] {
				set = append(set, v)
			}
			sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
			id, fresh, err := intern(set, t)
			if err != nil {
				return nil, err
			}
			gd.succ[cur][t] = id
			if fresh {
				queue = append(queue, id)
			}
		}
	}
	return gd, nil
}

func sortedTags(m map[lgraph.Tag][]int32) []lgraph.Tag {
	out := make([]lgraph.Tag, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedTagSet(m map[lgraph.Tag]map[int32]struct{}) []lgraph.Tag {
	out := make([]lgraph.Tag, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumNodes returns the number of guide nodes.
func (gd *Guide) NumNodes() int { return len(gd.targets) }

// Targets returns the target set of a label path from the roots, or nil if
// no data node is reached by it.  The path is rooted: Targets("dblp",
// "article") matches /dblp/article.
func (gd *Guide) Targets(path ...string) []int32 {
	if len(path) == 0 {
		return nil
	}
	t0 := gd.g.TagOf(path[0])
	if t0 == lgraph.NoTag {
		return nil
	}
	cur, ok := gd.roots[t0]
	if !ok {
		return nil
	}
	for _, step := range path[1:] {
		t := gd.g.TagOf(step)
		if t == lgraph.NoTag {
			return nil
		}
		next, ok := gd.succ[cur][t]
		if !ok {
			return nil
		}
		cur = next
	}
	return gd.targets[cur]
}

// Paths returns every label path of the guide (up to maxDepth steps) with
// its target-set size, sorted lexicographically — the "query formulation"
// use DataGuides were designed for.
func (gd *Guide) Paths(maxDepth int) []PathInfo {
	var out []PathInfo
	type frame struct {
		node  int32
		path  []string
		depth int
	}
	var stack []frame
	rootTags := make([]lgraph.Tag, 0, len(gd.roots))
	for t := range gd.roots {
		rootTags = append(rootTags, t)
	}
	sort.Slice(rootTags, func(i, j int) bool { return rootTags[i] < rootTags[j] })
	for _, t := range rootTags {
		stack = append(stack, frame{node: gd.roots[t], path: []string{gd.g.TagName(t)}, depth: 1})
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, PathInfo{Path: strings.Join(f.path, "/"), Count: len(gd.targets[f.node])})
		if f.depth >= maxDepth {
			continue
		}
		tags := make([]lgraph.Tag, 0, len(gd.succ[f.node]))
		for t := range gd.succ[f.node] {
			tags = append(tags, t)
		}
		sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
		for _, t := range tags {
			np := make([]string, len(f.path)+1)
			copy(np, f.path)
			np[len(f.path)] = gd.g.TagName(t)
			stack = append(stack, frame{node: gd.succ[f.node][t], path: np, depth: f.depth + 1})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// PathInfo describes one label path of the guide.
type PathInfo struct {
	Path  string
	Count int
}

// WriteTo serializes the guide: per node its tag, target set and successor
// map.
func (gd *Guide) WriteTo(w io.Writer) (int64, error) {
	sw := storage.NewWriter(w)
	sw.Header("dataguide")
	sw.Uvarint(uint64(len(gd.targets)))
	for n := range gd.targets {
		sw.Int32(int32(gd.tag[n]))
		sw.Int32Slice(gd.targets[n])
		sw.Uvarint(uint64(len(gd.succ[n])))
		tags := make([]lgraph.Tag, 0, len(gd.succ[n]))
		for t := range gd.succ[n] {
			tags = append(tags, t)
		}
		sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
		for _, t := range tags {
			sw.Int32(int32(t))
			sw.Int32(gd.succ[n][t])
		}
	}
	return sw.Flush()
}
