package dataguide

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/lgraph"
	"repro/internal/storage"
)

// buildTree: 0:bib -> {1:article -> 3:author, 2:article -> 4:title}
func buildTree(t testing.TB) (*lgraph.LGraph, *Guide) {
	t.Helper()
	b := lgraph.NewBuilder()
	for _, tag := range []string{"bib", "article", "article", "author", "title"} {
		b.AddNode(tag)
	}
	for _, e := range [][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 4}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Finish()
	gd, err := Build(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	return g, gd
}

func TestTargets(t *testing.T) {
	_, gd := buildTree(t)
	if got := gd.Targets("bib"); !reflect.DeepEqual(got, []int32{0}) {
		t.Errorf("Targets(bib) = %v", got)
	}
	if got := gd.Targets("bib", "article"); !reflect.DeepEqual(got, []int32{1, 2}) {
		t.Errorf("Targets(bib/article) = %v", got)
	}
	if got := gd.Targets("bib", "article", "author"); !reflect.DeepEqual(got, []int32{3}) {
		t.Errorf("Targets(bib/article/author) = %v", got)
	}
	if got := gd.Targets("bib", "author"); got != nil {
		t.Errorf("Targets(bib/author) = %v, want nil", got)
	}
	if got := gd.Targets("nope"); got != nil {
		t.Errorf("Targets(nope) = %v", got)
	}
	if got := gd.Targets(); got != nil {
		t.Errorf("Targets() = %v", got)
	}
}

func TestGuideSizeOnTree(t *testing.T) {
	_, gd := buildTree(t)
	// Distinct label paths: bib, bib/article, bib/article/author,
	// bib/article/title => 4 guide nodes.
	if gd.NumNodes() != 4 {
		t.Errorf("NumNodes = %d, want 4", gd.NumNodes())
	}
}

func TestPaths(t *testing.T) {
	_, gd := buildTree(t)
	paths := gd.Paths(10)
	want := []PathInfo{
		{Path: "bib", Count: 1},
		{Path: "bib/article", Count: 2},
		{Path: "bib/article/author", Count: 1},
		{Path: "bib/article/title", Count: 1},
	}
	if !reflect.DeepEqual(paths, want) {
		t.Errorf("Paths = %v, want %v", paths, want)
	}
	if got := gd.Paths(1); len(got) != 1 {
		t.Errorf("Paths(1) = %v", got)
	}
}

func TestBudget(t *testing.T) {
	b := lgraph.NewBuilder()
	for i := 0; i < 10; i++ {
		b.AddNode("n")
	}
	for i := 0; i < 9; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	g := b.Finish()
	if _, err := Build(g, 3); err != ErrBudget {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestWriteTo(t *testing.T) {
	_, gd := buildTree(t)
	n, err := storage.SizeOf(gd)
	if err != nil || n <= 0 {
		t.Errorf("SizeOf = %d, %v", n, err)
	}
}

// TestPropertyTargetsMatchOracle checks that for random DAGs the guide's
// target set for a random 2-step rooted path equals a direct evaluation.
func TestPropertyTargetsMatchOracle(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		b := lgraph.NewBuilder()
		tags := []string{"a", "b", "c"}
		for i := 0; i < n; i++ {
			b.AddNode(tags[rng.Intn(3)])
		}
		// Forward-only edges keep it a DAG, so the guide stays finite.
		for e := rng.Intn(2 * n); e > 0; e-- {
			u := rng.Intn(n - 1)
			v := u + 1 + rng.Intn(n-u-1)
			b.AddEdge(int32(u), int32(v))
		}
		g := b.Finish()
		gd, err := Build(g, 1<<16)
		if err != nil {
			return false
		}
		p0 := tags[rng.Intn(3)]
		p1 := tags[rng.Intn(3)]
		// Oracle: nodes with tag p1 having a predecessor that is a root
		// with tag p0.
		rootSet := make(map[int32]bool)
		for _, r := range g.Roots() {
			if g.TagName(g.Tag(r)) == p0 {
				rootSet[r] = true
			}
		}
		want := make(map[int32]bool)
		for v := int32(0); v < int32(n); v++ {
			if g.TagName(g.Tag(v)) != p1 {
				continue
			}
			for _, p := range g.Preds(v) {
				if rootSet[p] {
					want[v] = true
					break
				}
			}
		}
		got := gd.Targets(p0, p1)
		if len(got) != len(want) {
			return false
		}
		for _, v := range got {
			if !want[v] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
