package xmlparse

import (
	"strings"
	"testing"

	"repro/internal/xmlgraph"
)

// FuzzLoadDocument checks that arbitrary input never panics the loader and
// that accepted documents produce structurally valid collections.
func FuzzLoadDocument(f *testing.F) {
	for _, seed := range []string{
		movieDoc,
		reviewDoc,
		`<a><b idref="x"/><c id="x"/></a>`,
		`<a href="other.xml#frag"/>`,
		`<a>`, `</a>`, `<a><b></a></b>`, ``, `text only`,
		`<a xmlns:xlink="http://www.w3.org/1999/xlink" xlink:href="#y"><b id="y"/></a>`,
		`<a idrefs="x y z"/>`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		l := NewLoader()
		if err := l.LoadDocument("fuzz.xml", strings.NewReader(doc)); err != nil {
			return
		}
		c, err := l.Finish()
		if err != nil {
			return
		}
		if c.NumDocs() != 1 {
			t.Fatalf("accepted document produced %d docs", c.NumDocs())
		}
		// Every node must have a consistent parent/child relation.
		first, last := c.Doc(0).Nodes()
		if first == last {
			t.Fatal("accepted document has no elements")
		}
		for n := first; n < last; n++ {
			p := c.Parent(n)
			if p == xmlgraph.InvalidNode {
				if c.Doc(0).Root != n {
					t.Fatalf("non-root node %d without parent", n)
				}
				continue
			}
			found := false
			c.EachChild(p, func(ch xmlgraph.NodeID) {
				if ch == n {
					found = true
				}
			})
			if !found {
				t.Fatalf("node %d missing from parent's children", n)
			}
		}
		// Links must connect valid nodes.
		for _, lk := range c.Links() {
			if !c.Valid(lk.From) || !c.Valid(lk.To) {
				t.Fatalf("invalid link %+v", lk)
			}
		}
	})
}
