package xmlparse

import (
	"strings"
	"testing"

	"repro/internal/xmlgraph"
)

// FuzzParseDocument attacks the parser with malformed, deeply nested and
// entity-heavy XML: whatever the input, parsing must never panic, never
// hang on expanding entities, and either report an error or produce a
// document that parses identically a second time (the loader is
// deterministic).  The Strict mode must never succeed where the lenient
// mode errored.
func FuzzParseDocument(f *testing.F) {
	deep := strings.Repeat("<d>", 400) + "x" + strings.Repeat("</d>", 400)
	entities := `<?xml version="1.0"?><!DOCTYPE a [<!ENTITY e "&#38;&#38;">]><a>&e;&e;&e;&amp;&lt;&gt;&quot;&#x26;</a>`
	bomb := `<!DOCTYPE a [<!ENTITY a "aaaa"><!ENTITY b "&a;&a;&a;&a;"><!ENTITY c "&b;&b;&b;&b;">]><a>&c;</a>`
	for _, seed := range []string{
		deep,
		entities,
		bomb,
		`<a id="x"><b idref="x"/></a>`,
		`<a href="#"/>`, `<a href="doc#"/>`, `<a xml:id=""/>`,
		`<a><![CDATA[<b>]]></a>`,
		`<a xmlns="urn:x"><b xmlns:y="urn:y"><y:c/></b></a>`,
		`<?pi data?><a/><!--tail-->`,
		`<a>&undefined;</a>`,
		`<a attr=">`, `<a ><`, "<a>\xff\xfe</a>", `<a/><b/>`,
		strings.Repeat("<a>", 50),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		l := NewLoader()
		err := l.LoadDocument("fuzz.xml", strings.NewReader(doc))
		strict := NewLoader()
		strict.Strict = true
		serr := strict.LoadDocument("fuzz.xml", strings.NewReader(doc))
		if err != nil {
			if serr == nil {
				t.Fatalf("lenient parse failed (%v) but strict parse succeeded", err)
			}
			return
		}
		c, err := l.Finish()
		if err != nil {
			return
		}
		// Accepted input must parse identically a second time.
		l2 := NewLoader()
		if err := l2.LoadDocument("fuzz.xml", strings.NewReader(doc)); err != nil {
			t.Fatalf("accepted document failed to re-parse: %v", err)
		}
		c2, err := l2.Finish()
		if err != nil {
			t.Fatalf("accepted document failed to re-finish: %v", err)
		}
		if c.NumNodes() != c2.NumNodes() || c.NumLinks() != c2.NumLinks() {
			t.Fatalf("re-parse changed shape: (%d nodes, %d links) vs (%d, %d)",
				c.NumNodes(), c.NumLinks(), c2.NumNodes(), c2.NumLinks())
		}
		for n := xmlgraph.NodeID(0); int(n) < c.NumNodes(); n++ {
			if c.Tag(n) != c2.Tag(n) || c.Parent(n) != c2.Parent(n) {
				t.Fatalf("re-parse changed node %d", n)
			}
		}
	})
}

// FuzzLoadDocument checks that arbitrary input never panics the loader and
// that accepted documents produce structurally valid collections.
func FuzzLoadDocument(f *testing.F) {
	for _, seed := range []string{
		movieDoc,
		reviewDoc,
		`<a><b idref="x"/><c id="x"/></a>`,
		`<a href="other.xml#frag"/>`,
		`<a>`, `</a>`, `<a><b></a></b>`, ``, `text only`,
		`<a xmlns:xlink="http://www.w3.org/1999/xlink" xlink:href="#y"><b id="y"/></a>`,
		`<a idrefs="x y z"/>`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		l := NewLoader()
		if err := l.LoadDocument("fuzz.xml", strings.NewReader(doc)); err != nil {
			return
		}
		c, err := l.Finish()
		if err != nil {
			return
		}
		if c.NumDocs() != 1 {
			t.Fatalf("accepted document produced %d docs", c.NumDocs())
		}
		// Every node must have a consistent parent/child relation.
		first, last := c.Doc(0).Nodes()
		if first == last {
			t.Fatal("accepted document has no elements")
		}
		for n := first; n < last; n++ {
			p := c.Parent(n)
			if p == xmlgraph.InvalidNode {
				if c.Doc(0).Root != n {
					t.Fatalf("non-root node %d without parent", n)
				}
				continue
			}
			found := false
			c.EachChild(p, func(ch xmlgraph.NodeID) {
				if ch == n {
					found = true
				}
			})
			if !found {
				t.Fatalf("node %d missing from parent's children", n)
			}
		}
		// Links must connect valid nodes.
		for _, lk := range c.Links() {
			if !c.Valid(lk.From) || !c.Valid(lk.To) {
				t.Fatalf("invalid link %+v", lk)
			}
		}
	})
}
