package xmlparse

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/xmlgraph"
)

const movieDoc = `<movie id="m1">
  <title>Matrix: Revolutions</title>
  <cast>
    <actor idref="a1"/>
  </cast>
  <actor id="a1"><name>Keanu Reeves</name></actor>
</movie>`

const reviewDoc = `<review>
  <about href="movies.xml#m1"/>
  <text>great</text>
  <seealso xmlns:xlink="http://www.w3.org/1999/xlink" xlink:href="movies.xml"/>
</review>`

func load(t *testing.T, docs map[string]string) *xmlgraph.Collection {
	t.Helper()
	c, err := Parse(docs)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestParseSingleDocument(t *testing.T) {
	c := load(t, map[string]string{"movies.xml": movieDoc})
	if c.NumDocs() != 1 {
		t.Fatalf("NumDocs = %d", c.NumDocs())
	}
	if c.NumNodes() != 6 {
		t.Fatalf("NumNodes = %d, want 6", c.NumNodes())
	}
	// idref produces one intra-document link actor-ref -> actor.
	if c.NumLinks() != 1 {
		t.Fatalf("NumLinks = %d, want 1", c.NumLinks())
	}
	l := c.Links()[0]
	if l.Kind != xmlgraph.EdgeIntraLink {
		t.Errorf("link kind = %v, want intra", l.Kind)
	}
	if c.Tag(l.From) != "actor" || c.Tag(l.To) != "actor" {
		t.Errorf("link endpoints: %s -> %s", c.Tag(l.From), c.Tag(l.To))
	}
	if c.Node(l.To).XMLID != "a1" {
		t.Errorf("link target xml id = %q", c.Node(l.To).XMLID)
	}
}

func TestParseInterDocumentLinks(t *testing.T) {
	c := load(t, map[string]string{"movies.xml": movieDoc, "review.xml": reviewDoc})
	if c.NumDocs() != 2 {
		t.Fatalf("NumDocs = %d", c.NumDocs())
	}
	var inter []xmlgraph.Link
	for _, l := range c.Links() {
		if l.Kind == xmlgraph.EdgeInterLink {
			inter = append(inter, l)
		}
	}
	if len(inter) != 2 {
		t.Fatalf("inter links = %d, want 2", len(inter))
	}
	// Both links resolve to the movie root: the fragment link because the
	// root carries id="m1", the bare href because it targets the document
	// root by definition.
	movies, _ := c.DocByName("movies.xml")
	root := c.Doc(movies).Root
	for _, l := range inter {
		if l.To != root {
			t.Errorf("inter link to %v (%s), want movie root %v", l.To, c.Tag(l.To), root)
		}
		if c.Tag(l.From) != "about" && c.Tag(l.From) != "seealso" {
			t.Errorf("unexpected link source %s", c.Tag(l.From))
		}
	}
}

func TestParseText(t *testing.T) {
	c := load(t, map[string]string{"movies.xml": movieDoc})
	titles := c.NodesByTag("title")
	if len(titles) != 1 || c.Node(titles[0]).Text != "Matrix: Revolutions" {
		t.Errorf("title text = %v", titles)
	}
}

func TestParseIdrefs(t *testing.T) {
	doc := `<r><x idrefs="a b"/><p id="a"/><p id="b"/></r>`
	c := load(t, map[string]string{"d.xml": doc})
	if c.NumLinks() != 2 {
		t.Fatalf("NumLinks = %d, want 2", c.NumLinks())
	}
}

func TestUnresolvedNonStrict(t *testing.T) {
	l := NewLoader()
	if err := l.LoadDocument("d.xml", strings.NewReader(`<r><x idref="nope"/></r>`)); err != nil {
		t.Fatal(err)
	}
	c, err := l.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if c.NumLinks() != 0 {
		t.Errorf("dangling ref created a link")
	}
	if len(l.Errs()) != 1 {
		t.Errorf("Errs = %v, want 1 entry", l.Errs())
	}
}

func TestUnresolvedStrict(t *testing.T) {
	l := NewLoader()
	l.Strict = true
	if err := l.LoadDocument("d.xml", strings.NewReader(`<r><x href="missing.xml"/></r>`)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Finish(); err == nil {
		t.Error("strict mode must report unresolved links")
	}
}

func TestMalformedXML(t *testing.T) {
	l := NewLoader()
	if err := l.LoadDocument("bad.xml", strings.NewReader(`<a><b></a>`)); err == nil {
		t.Error("malformed XML accepted")
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "movies.xml"), []byte(movieDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "review.xml"), []byte(reviewDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ignore.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	l := NewLoader()
	if err := l.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	c, err := l.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDocs() != 2 {
		t.Errorf("NumDocs = %d, want 2 (txt file must be ignored)", c.NumDocs())
	}
}

func TestSplitHref(t *testing.T) {
	cases := []struct{ in, doc, frag string }{
		{"a.xml#f", "a.xml", "f"},
		{"a.xml", "a.xml", ""},
		{"#f", "", "f"},
		{"", "", ""},
	}
	for _, tc := range cases {
		d, f := splitHref(tc.in)
		if d != tc.doc || f != tc.frag {
			t.Errorf("splitHref(%q) = (%q, %q), want (%q, %q)", tc.in, d, f, tc.doc, tc.frag)
		}
	}
}

func TestWhitespaceIgnored(t *testing.T) {
	c := load(t, map[string]string{"d.xml": "<a>\n  <b>text</b>\n</a>"})
	roots := c.NodesByTag("a")
	if c.Node(roots[0]).Text != "" {
		t.Errorf("whitespace kept: %q", c.Node(roots[0]).Text)
	}
	bs := c.NodesByTag("b")
	if c.Node(bs[0]).Text != "text" {
		t.Errorf("text lost: %q", c.Node(bs[0]).Text)
	}
}
