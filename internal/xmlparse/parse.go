// Package xmlparse loads real XML text into the xmlgraph data model.
//
// It recognizes the two kinds of links of the paper's data model (§1.1,
// §2.1):
//
//   - intra-document links through attributes of type id / idref
//     (recognized by the conventional attribute names "id"/"xml:id" and
//     "idref"/"idrefs"), and
//   - inter-document links through XLink-style attributes
//     ("xlink:href" or plain "href") of the form "docname" or
//     "docname#fragment"; a bare "#fragment" is an intra-document link.
//
// Loading is two-phase: documents are parsed first (collecting unresolved
// references), then all references are resolved against the complete
// collection, so forward references and links to later documents work.
package xmlparse

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/xmlgraph"
)

// pendingRef is an unresolved link discovered during parsing.
type pendingRef struct {
	from xmlgraph.NodeID
	doc  string // target document name; empty = same document
	frag string // target fragment (xml:id); empty = document root
	self string // name of the document containing from
}

// Loader accumulates documents and resolves links at the end.
//
// A LoadDocument/LoadFile error leaves the partially parsed document in the
// underlying collection, so the loader marks itself broken and Finish
// refuses to produce a collection afterwards; start a fresh Loader instead.
type Loader struct {
	coll    *xmlgraph.Collection
	pending []pendingRef
	// Strict makes unresolved references an error; otherwise they are
	// silently dropped (the Web never guarantees link targets exist).
	Strict bool
	errs   []error
	broken error
}

// NewLoader returns a Loader writing into a fresh collection.
func NewLoader() *Loader {
	return &Loader{coll: xmlgraph.NewCollection()}
}

// LoadDocument parses one XML document from r and adds it to the collection
// under the given name.  The name is what href attributes of other documents
// use to refer to it (conventionally the file name).
func (l *Loader) LoadDocument(name string, r io.Reader) error {
	if l.broken != nil {
		return fmt.Errorf("xmlparse: loader broken by earlier error: %w", l.broken)
	}
	if err := l.loadDocument(name, r); err != nil {
		l.broken = err
		return err
	}
	return nil
}

func (l *Loader) loadDocument(name string, r io.Reader) error {
	if _, dup := l.coll.DocByName(name); dup {
		return fmt.Errorf("xmlparse: duplicate document name %q", name)
	}
	b := l.coll.NewDocument(name)
	dec := xml.NewDecoder(r)
	depth := 0
	sawRoot := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("xmlparse: document %q: %w", name, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if depth == 0 && sawRoot {
				return fmt.Errorf("xmlparse: document %q: multiple root elements", name)
			}
			sawRoot = true
			id := b.Enter(t.Name.Local, "")
			depth++
			for _, a := range t.Attr {
				l.handleAttr(name, b, id, a)
			}
		case xml.EndElement:
			b.Leave()
			depth--
		case xml.CharData:
			if depth > 0 {
				if s := strings.TrimSpace(string(t)); s != "" {
					b.AppendText(s)
				}
			}
		}
	}
	if depth != 0 {
		return fmt.Errorf("xmlparse: document %q: unbalanced elements", name)
	}
	if !sawRoot {
		return fmt.Errorf("xmlparse: document %q: no root element", name)
	}
	b.Close()
	return nil
}

func (l *Loader) handleAttr(docName string, b *xmlgraph.DocumentBuilder, id xmlgraph.NodeID, a xml.Attr) {
	key := a.Name.Local
	if a.Name.Space != "" {
		// Normalize namespaced attributes like xml:id and xlink:href to
		// their local names; the namespace URI spelling varies.
		switch {
		case strings.HasSuffix(a.Name.Space, "xml") && key == "id":
			key = "id"
		case strings.Contains(a.Name.Space, "xlink") && key == "href":
			key = "href"
		}
	}
	switch key {
	case "id":
		b.SetXMLID(a.Value)
	case "idref":
		l.pending = append(l.pending, pendingRef{from: id, frag: a.Value, self: docName})
	case "idrefs":
		for _, f := range strings.Fields(a.Value) {
			l.pending = append(l.pending, pendingRef{from: id, frag: f, self: docName})
		}
	case "href":
		doc, frag := splitHref(a.Value)
		if doc == "" && frag == "" {
			return
		}
		l.pending = append(l.pending, pendingRef{from: id, doc: doc, frag: frag, self: docName})
	}
}

// splitHref splits "doc#frag" into its parts.  "#frag" yields ("", frag);
// "doc" yields (doc, "").
func splitHref(href string) (doc, frag string) {
	if i := strings.IndexByte(href, '#'); i >= 0 {
		return href[:i], href[i+1:]
	}
	return href, ""
}

// LoadFile parses the XML file at path; the document name is the base name.
func (l *Loader) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return l.LoadDocument(filepath.Base(path), f)
}

// LoadDir parses every *.xml file in dir (sorted by name, for determinism).
func (l *Loader) LoadDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".xml") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, n := range names {
		if err := l.LoadFile(filepath.Join(dir, n)); err != nil {
			return err
		}
	}
	return nil
}

// Finish resolves all pending references, freezes and returns the
// collection.  With Strict set, any unresolved reference is an error;
// otherwise unresolved references are dropped and reported by Errs.
func (l *Loader) Finish() (*xmlgraph.Collection, error) {
	if l.broken != nil {
		return nil, fmt.Errorf("xmlparse: loader broken by earlier error: %w", l.broken)
	}
	for _, p := range l.pending {
		target, err := l.resolve(p)
		if err != nil {
			if l.Strict {
				return nil, err
			}
			l.errs = append(l.errs, err)
			continue
		}
		kind := xmlgraph.EdgeInterLink
		if p.doc == "" || p.doc == p.self {
			kind = xmlgraph.EdgeIntraLink
		}
		l.coll.AddLink(p.from, target, kind)
	}
	l.coll.Freeze()
	return l.coll, nil
}

func (l *Loader) resolve(p pendingRef) (xmlgraph.NodeID, error) {
	docName := p.doc
	if docName == "" {
		docName = p.self
	}
	doc, ok := l.coll.DocByName(docName)
	if !ok {
		return xmlgraph.InvalidNode, fmt.Errorf("xmlparse: %s: link to unknown document %q", p.self, docName)
	}
	if p.frag == "" {
		return l.coll.Doc(doc).Root, nil
	}
	n := l.coll.FindByXMLID(doc, p.frag)
	if n == xmlgraph.InvalidNode {
		return xmlgraph.InvalidNode, fmt.Errorf("xmlparse: %s: link to unknown fragment %q in %q", p.self, p.frag, docName)
	}
	return n, nil
}

// Errs returns the references dropped in non-strict mode.
func (l *Loader) Errs() []error { return l.errs }

// Parse is a convenience that loads a set of named documents and finishes
// the collection.
func Parse(docs map[string]string) (*xmlgraph.Collection, error) {
	l := NewLoader()
	names := make([]string, 0, len(docs))
	for n := range docs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := l.LoadDocument(n, strings.NewReader(docs[n])); err != nil {
			return nil, err
		}
	}
	return l.Finish()
}
