package rebuild

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/flix"
)

// snapshotPattern matches generation snapshot files in SnapshotDir.
const snapshotPattern = "gen-*.flix"

// SnapshotName returns the file name a generation is persisted under.
func SnapshotName(gen uint64) string { return fmt.Sprintf("gen-%06d.flix", gen) }

// persist writes the freshly installed generation in the configured
// snapshot format ("v1" = flix.WriteTo stream, "v2" = the mmap-able
// container) and prunes old generations beyond cfg.Retain.  The write goes
// through a temp file + rename so a crash mid-write never leaves a half
// snapshot under a valid name.
func (m *Manager) persist(ix *flix.Index, gen uint64) error {
	if err := os.MkdirAll(m.cfg.SnapshotDir, 0o755); err != nil {
		return err
	}
	final := filepath.Join(m.cfg.SnapshotDir, SnapshotName(gen))
	tmp, err := os.CreateTemp(m.cfg.SnapshotDir, "gen-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) //nolint:errcheck // no-op after the rename
	switch m.cfg.SnapshotFormat {
	case "v2":
		_, err = ix.WriteSnapshotV2With(tmp, flix.SnapshotV2Options{Compress: m.cfg.SnapshotCompress})
	case "", "v1":
		_, err = ix.WriteTo(tmp)
	default:
		err = fmt.Errorf("rebuild: unknown snapshot format %q", m.cfg.SnapshotFormat)
	}
	if err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return err
	}
	return m.prune()
}

// prune removes generation snapshots beyond the newest cfg.Retain.  File
// names embed zero-padded generation numbers, so lexical order is
// generation order.
func (m *Manager) prune() error {
	matches, err := filepath.Glob(filepath.Join(m.cfg.SnapshotDir, snapshotPattern))
	if err != nil {
		return err
	}
	if len(matches) <= m.cfg.Retain {
		return nil
	}
	sort.Strings(matches)
	var firstErr error
	for _, path := range matches[:len(matches)-m.cfg.Retain] {
		if err := os.Remove(path); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// LatestSnapshot returns the path of the newest generation snapshot in dir,
// or "" when none exists — flixd's warm-start probe.
func LatestSnapshot(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, snapshotPattern))
	if err != nil || len(matches) == 0 {
		return "", err
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}
