// Package rebuild closes the paper's §7 self-tuning loop at run time: a
// background re-optimizer that watches the live query load of a serving
// index, decides when the built configuration no longer fits the observed
// workload, rebuilds off the serving path with the parallel build pipeline,
// and hot-swaps the result in atomically.
//
// The decision combines two signals:
//
//   - Index.Advise, the engine's own analysis of QueryStats (link hops,
//     entry points, duplicate-drop ratio per query) — it proposes a new
//     partitioning when queries keep crossing meta-document boundaries.
//   - The serving layer's per-strategy latency histograms — when one
//     strategy's p99 dwarfs the others on meaningful traffic, the planner
//     adds a per-meta-document strategy override (Config.Strategy, which
//     the Indexing Strategy Selector applies wherever feasible and ignores
//     where not).
//
// A Manager never builds concurrently with itself, never touches the
// serving index, and installs a finished index with one Target.Install
// call; in-flight queries finish on the generation they started on.
// Finished generations are optionally persisted with the regular snapshot
// format under a retention bound.
package rebuild

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flix"
	"repro/internal/obs"
	"repro/internal/xmlgraph"
)

// Target is the serving side the manager observes and swaps — implemented
// by server.Server.
type Target interface {
	// CurrentIndex returns the serving index (nil before the first
	// install).  Its QueryStats and Advise describe the load observed on
	// the current generation only, which is exactly the window the
	// planner wants: counters reset naturally on every swap.
	CurrentIndex() *flix.Index
	// Generation returns the current generation number.
	Generation() uint64
	// StrategyLatency snapshots the per-strategy latency histograms of
	// the current generation.
	StrategyLatency() map[string]obs.HistSnapshot
	// Install hot-swaps a newly built index in and returns its generation
	// number.
	Install(ix *flix.Index, reason string) uint64
}

// Plan is one proposed reconfiguration — what a dry-run reports and a
// rebuild executes.
type Plan struct {
	// Rebuild reports whether the observed load justifies a rebuild.
	Rebuild bool
	// Config is the configuration a rebuild would use (the current one
	// when Rebuild is false, so a forced rebuild re-optimizes in place).
	Config flix.Config
	// Reason explains the decision.
	Reason string
	// Queries is the number of queries the decision is based on.
	Queries int64
	// FromGeneration is the generation the plan was derived from.
	FromGeneration uint64
	// StrategyOverride names the per-meta-document strategy the latency
	// signal forced into Config.Strategy ("" when none).
	StrategyOverride string
}

// ErrBusy is returned when a rebuild is requested while another is in
// flight; rebuilds are serialized, never queued.
var ErrBusy = errors.New("rebuild: a rebuild is already in flight")

// Config tunes the manager.
type Config struct {
	// Interval is the cadence of the background loop (Run).  <= 0 means
	// Run returns immediately; manual Reindex calls still work.
	Interval time.Duration
	// MinQueries is the number of queries a generation must have served
	// before the planner trusts the statistics.  Default 50.
	MinQueries int64
	// Parallelism is the build worker-pool width (0 = all CPUs).
	Parallelism int
	// SnapshotDir, when non-empty, persists every installed generation as
	// gen-<number>.flix.
	SnapshotDir string
	// SnapshotFormat selects the persisted format: "v1" (default, the
	// portable stream Index.WriteTo emits) or "v2" (the mmap-able
	// container Index.WriteSnapshotV2 emits, which warm start serves with
	// no parse step).  Warm start sniffs the format per file, so the two
	// can coexist in one SnapshotDir across a flag change.
	SnapshotFormat string
	// SnapshotCompress persists v2 snapshots with compressed section
	// encodings (per-section, with raw fallback when compression does not
	// pay).  Only meaningful with SnapshotFormat "v2".
	SnapshotCompress bool
	// Retain bounds how many generation snapshots are kept on disk.
	// Default 3.
	Retain int
	// Logger receives one line per background decision.  Nil disables.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.MinQueries <= 0 {
		c.MinQueries = 50
	}
	if c.Retain <= 0 {
		c.Retain = 3
	}
	if c.SnapshotFormat == "" {
		c.SnapshotFormat = "v1"
	}
	return c
}

// Manager is the background re-optimizer for one collection/target pair.
type Manager struct {
	coll   *xmlgraph.Collection
	target Target
	cfg    Config

	building atomic.Bool
	rebuilds atomic.Int64 // completed build+swap cycles
	skipped  atomic.Int64 // decisions that kept the current index

	mu        sync.Mutex
	lastPlan  Plan
	lastErr   error
	lastBuild time.Duration
}

// New returns a manager re-optimizing target's index over coll.
func New(coll *xmlgraph.Collection, target Target, cfg Config) *Manager {
	return &Manager{coll: coll, target: target, cfg: cfg.withDefaults()}
}

// Plan derives the reconfiguration the current load asks for, without
// building anything — the admin endpoint's dry-run.
func (m *Manager) Plan() Plan {
	ix := m.target.CurrentIndex()
	if ix == nil {
		return Plan{Reason: "no index installed yet"}
	}
	plan := Plan{FromGeneration: m.target.Generation(), Config: ix.Config()}
	snap := ix.Stats().Snapshot()
	plan.Queries = snap.Queries
	if snap.Queries < m.cfg.MinQueries {
		plan.Reason = fmt.Sprintf("only %d queries this generation (min %d): not enough signal",
			snap.Queries, m.cfg.MinQueries)
		return plan
	}
	adv := ix.Advise()
	plan.Rebuild = adv.Rebuild
	plan.Reason = adv.Reason
	if adv.Rebuild {
		plan.Config = adv.Config
	}
	if name, why := m.strategyOverride(); name != "" && name != plan.Config.Strategy {
		plan.Config.Strategy = name
		plan.StrategyOverride = name
		plan.Rebuild = true
		plan.Reason += "; " + why
	}
	return plan
}

// strategyOverride inspects the per-strategy latency histograms: when a
// strategy carrying a meaningful share of requests has a p99 at least 4x
// the fastest strategy's, it proposes forcing the fast strategy wherever
// the selector finds it feasible.  "tc" (the full transitive closure) is
// never proposed — its build cost and size are the reason FliX exists.
func (m *Manager) strategyOverride() (name, why string) {
	lat := m.target.StrategyLatency()
	var total uint64
	for _, sn := range lat {
		total += sn.Count
	}
	if total < uint64(m.cfg.MinQueries) {
		return "", ""
	}
	const (
		minShare = 0.1 // slow strategy must serve >= 10% of requests
		factor   = 4.0 // ... with p99 >= 4x the fastest
	)
	var best, worst string
	var bestP99, worstP99 time.Duration
	for n, sn := range lat {
		if sn.Count == 0 {
			continue
		}
		p99 := sn.Quantile(0.99)
		if (best == "" || p99 < bestP99) && n != "tc" {
			best, bestP99 = n, p99
		}
		if float64(sn.Count) >= minShare*float64(total) && (worst == "" || p99 > worstP99) {
			worst, worstP99 = n, p99
		}
	}
	if best == "" || worst == "" || best == worst || bestP99 <= 0 {
		return "", ""
	}
	if float64(worstP99) < factor*float64(bestP99) {
		return "", ""
	}
	return best, fmt.Sprintf("strategy %q p99 %s is %.1fx strategy %q p99 %s: prefer %q where feasible",
		worst, worstP99.Round(time.Microsecond), float64(worstP99)/float64(bestP99),
		best, bestP99.Round(time.Microsecond), best)
}

// Reindex runs one plan/build/swap cycle.  Without force it is a no-op
// (beyond planning) unless the planner asks for a rebuild; with force it
// rebuilds with the planned configuration either way — the manual
// re-optimize of the admin endpoint.  Returns ErrBusy when a rebuild is
// already in flight.
func (m *Manager) Reindex(force bool) (Plan, error) {
	plan := m.Plan()
	if !plan.Rebuild && !force {
		m.skipped.Add(1)
		m.setLast(plan, nil, 0)
		return plan, nil
	}
	if !m.building.CompareAndSwap(false, true) {
		return plan, ErrBusy
	}
	defer m.building.Store(false)
	t0 := time.Now()
	ix, err := flix.BuildWithOptions(m.coll, plan.Config, flix.BuildOptions{Parallelism: m.cfg.Parallelism})
	elapsed := time.Since(t0)
	if err != nil {
		m.setLast(plan, err, elapsed)
		return plan, fmt.Errorf("rebuild: %w", err)
	}
	gen := m.target.Install(ix, plan.Reason)
	m.rebuilds.Add(1)
	m.setLast(plan, nil, elapsed)
	if m.cfg.SnapshotDir != "" {
		if err := m.persist(ix, gen); err != nil && m.cfg.Logger != nil {
			// Persistence is best-effort: the swap already happened and the
			// serving path must not depend on disk health.
			m.cfg.Logger.Printf("rebuild: persisting generation %d: %v", gen, err)
		}
	}
	if m.cfg.Logger != nil {
		m.cfg.Logger.Printf("rebuild: generation %d live after %s build (%s)",
			gen, elapsed.Round(time.Millisecond), plan.Reason)
	}
	return plan, nil
}

// Run is the background loop: every Interval it replans and rebuilds when
// the workload asks for it, until ctx is done.  A tick that finds a rebuild
// already in flight (a slow manual one) is skipped, not queued.
func (m *Manager) Run(ctx context.Context) {
	if m.cfg.Interval <= 0 {
		return
	}
	t := time.NewTicker(m.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			plan, err := m.Reindex(false)
			if m.cfg.Logger != nil {
				switch {
				case errors.Is(err, ErrBusy):
					m.cfg.Logger.Print("rebuild: tick skipped, rebuild in flight")
				case err != nil:
					m.cfg.Logger.Printf("rebuild: %v", err)
				case !plan.Rebuild:
					m.cfg.Logger.Printf("rebuild: keeping generation %d (%s)", plan.FromGeneration, plan.Reason)
				}
			}
		}
	}
}

func (m *Manager) setLast(p Plan, err error, build time.Duration) {
	m.mu.Lock()
	m.lastPlan, m.lastErr, m.lastBuild = p, err, build
	m.mu.Unlock()
}

// Status is the manager's reportable state for /statsz.
type Status struct {
	Building   bool   `json:"building"`
	Rebuilds   int64  `json:"rebuilds"`
	Skipped    int64  `json:"skipped"`
	LastReason string `json:"lastReason,omitempty"`
	LastError  string `json:"lastError,omitempty"`
	LastBuild  string `json:"lastBuild,omitempty"`
}

// Status snapshots the manager.
func (m *Manager) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Status{
		Building:   m.building.Load(),
		Rebuilds:   m.rebuilds.Load(),
		Skipped:    m.skipped.Load(),
		LastReason: m.lastPlan.Reason,
	}
	if m.lastErr != nil {
		st.LastError = m.lastErr.Error()
	}
	if m.lastBuild > 0 {
		st.LastBuild = m.lastBuild.Round(time.Millisecond).String()
	}
	return st
}
