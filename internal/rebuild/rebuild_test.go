package rebuild

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/flix"
	"repro/internal/obs"
	"repro/internal/testutil"
	"repro/internal/xmlgraph"
)

// fakeTarget is a minimal Target: a settable index, a generation counter,
// and a scripted latency snapshot.
type fakeTarget struct {
	mu       sync.Mutex
	ix       *flix.Index
	gen      uint64
	lat      map[string]obs.HistSnapshot
	installs []string // reasons, in order
}

func (f *fakeTarget) CurrentIndex() *flix.Index {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ix
}

func (f *fakeTarget) Generation() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gen
}

func (f *fakeTarget) StrategyLatency() map[string]obs.HistSnapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lat
}

func (f *fakeTarget) Install(ix *flix.Index, reason string) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ix = ix
	f.gen++
	f.installs = append(f.installs, reason)
	return f.gen
}

// testCollection returns a small frozen linked collection.
func testCollection(t *testing.T) *xmlgraph.Collection {
	t.Helper()
	return testutil.Generate(testutil.Linked, 7, 20, 15, 40)
}

// drive runs n distinct descendants queries so the index accumulates
// QueryStats.
func drive(ix *flix.Index, n int) {
	tags := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < n; i++ {
		start := xmlgraph.NodeID(i % 20)
		ix.Descendants(start, tags[i%len(tags)], flix.Options{}, func(flix.Result) bool { return true })
	}
}

// hist returns a HistSnapshot of n observations at d each.
func hist(n int, d time.Duration) obs.HistSnapshot {
	var h obs.Histogram
	for i := 0; i < n; i++ {
		h.Observe(d)
	}
	return h.Snapshot()
}

func TestPlanNoIndex(t *testing.T) {
	m := New(testCollection(t), &fakeTarget{}, Config{})
	plan := m.Plan()
	if plan.Rebuild {
		t.Error("Plan with no index wants a rebuild")
	}
	if !strings.Contains(plan.Reason, "no index") {
		t.Errorf("reason = %q, want a no-index explanation", plan.Reason)
	}
}

func TestPlanMinQueriesGate(t *testing.T) {
	coll := testCollection(t)
	ix, err := flix.Build(coll, flix.Config{Kind: flix.Hybrid, PartitionSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	ft := &fakeTarget{ix: ix, gen: 1}
	m := New(coll, ft, Config{MinQueries: 30})
	drive(ix, 5)
	plan := m.Plan()
	if plan.Rebuild {
		t.Error("Plan below MinQueries wants a rebuild")
	}
	if plan.Queries != 5 {
		t.Errorf("plan.Queries = %d, want 5", plan.Queries)
	}
	if plan.FromGeneration != 1 {
		t.Errorf("plan.FromGeneration = %d, want 1", plan.FromGeneration)
	}
	if !strings.Contains(plan.Reason, "not enough signal") {
		t.Errorf("reason = %q, want the min-queries explanation", plan.Reason)
	}
	// The planned config must be the current one so a forced rebuild
	// re-optimizes in place.
	if plan.Config != ix.Config() {
		t.Errorf("plan.Config = %+v, want current %+v", plan.Config, ix.Config())
	}
}

func TestStrategyOverride(t *testing.T) {
	coll := testCollection(t)
	ix, err := flix.Build(coll, flix.Config{Kind: flix.Hybrid, PartitionSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	ft := &fakeTarget{ix: ix, gen: 1}
	m := New(coll, ft, Config{MinQueries: 20})

	// Not enough histogram samples: no override regardless of skew.
	ft.lat = map[string]obs.HistSnapshot{
		"ppo":  hist(5, time.Microsecond),
		"hopi": hist(5, 50*time.Millisecond),
	}
	if name, _ := m.strategyOverride(); name != "" {
		t.Errorf("override below MinQueries = %q, want none", name)
	}

	// A slow strategy with a meaningful share: prefer the fast one.
	ft.lat = map[string]obs.HistSnapshot{
		"ppo":  hist(60, time.Microsecond),
		"hopi": hist(40, 50*time.Millisecond),
	}
	name, why := m.strategyOverride()
	if name != "ppo" {
		t.Fatalf("override = %q, want ppo (%s)", name, why)
	}
	if !strings.Contains(why, `"hopi"`) || !strings.Contains(why, `"ppo"`) {
		t.Errorf("override reason %q does not name both strategies", why)
	}

	// The skew exists but the slow strategy carries < 10% of requests:
	// not worth rebuilding for.
	ft.lat = map[string]obs.HistSnapshot{
		"ppo":  hist(1000, time.Microsecond),
		"hopi": hist(3, 50*time.Millisecond),
	}
	if name, _ := m.strategyOverride(); name != "" {
		t.Errorf("override for a <10%% share = %q, want none", name)
	}

	// "tc" must never be proposed even when it is the fastest.
	ft.lat = map[string]obs.HistSnapshot{
		"tc":   hist(60, time.Microsecond),
		"hopi": hist(40, 50*time.Millisecond),
	}
	if name, _ := m.strategyOverride(); name == "tc" {
		t.Error("override proposed tc")
	}

	// A full Plan with the skewed histograms flips Rebuild on and carries
	// the override into the config.
	ft.lat = map[string]obs.HistSnapshot{
		"ppo":  hist(60, time.Microsecond),
		"hopi": hist(40, 50*time.Millisecond),
	}
	drive(ix, 25)
	plan := m.Plan()
	if !plan.Rebuild {
		t.Fatalf("plan with latency skew keeps the index: %s", plan.Reason)
	}
	if plan.StrategyOverride != "ppo" || plan.Config.Strategy != "ppo" {
		t.Errorf("plan override = %q / config strategy = %q, want ppo/ppo",
			plan.StrategyOverride, plan.Config.Strategy)
	}
}

// TestPlanAdvisePassthrough checks the planner adopts the engine's own
// Advise verdict: a small-partition index on a link-heavy collection keeps
// crossing meta-document boundaries, so the plan proposes the enlarged
// partitioning and an unforced Reindex executes it.
func TestPlanAdvisePassthrough(t *testing.T) {
	coll := testCollection(t)
	ix, err := flix.Build(coll, flix.Config{Kind: flix.Hybrid, PartitionSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	ft := &fakeTarget{ix: ix, gen: 1}
	m := New(coll, ft, Config{MinQueries: 5})
	drive(ix, 10)
	plan := m.Plan()
	if !plan.Rebuild {
		t.Fatalf("link-heavy load kept the index: %s", plan.Reason)
	}
	if plan.Config.PartitionSize <= 60 {
		t.Errorf("advised partition size = %d, want > 60", plan.Config.PartitionSize)
	}
	if _, err := m.Reindex(false); err != nil {
		t.Fatal(err)
	}
	if len(ft.installs) != 1 {
		t.Fatalf("unforced reindex with rebuild-worthy load installed %d generations, want 1", len(ft.installs))
	}
	if got := ft.CurrentIndex().Config().PartitionSize; got != plan.Config.PartitionSize {
		t.Errorf("installed partition size = %d, want advised %d", got, plan.Config.PartitionSize)
	}
}

func TestReindexForceInstalls(t *testing.T) {
	coll := testCollection(t)
	// Monolithic: every query stays inside the single meta document, so
	// Advise never asks for a rebuild and the skip path is deterministic.
	ix, err := flix.Build(coll, flix.Config{Kind: flix.Monolithic})
	if err != nil {
		t.Fatal(err)
	}
	ft := &fakeTarget{ix: ix, gen: 1}
	m := New(coll, ft, Config{MinQueries: 5})
	drive(ix, 10)

	// Without force and without a rebuild-worthy load, nothing happens.
	plan, err := m.Reindex(false)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rebuild || len(ft.installs) != 0 {
		t.Fatalf("unforced reindex installed %d generations (plan %+v)", len(ft.installs), plan)
	}
	if st := m.Status(); st.Skipped != 1 || st.Rebuilds != 0 {
		t.Errorf("status after skip = %+v, want skipped=1 rebuilds=0", st)
	}

	// Forced: a fresh index with the planned config is built and installed.
	if _, err := m.Reindex(true); err != nil {
		t.Fatal(err)
	}
	if len(ft.installs) != 1 {
		t.Fatalf("forced reindex installed %d generations, want 1", len(ft.installs))
	}
	if ft.CurrentIndex() == ix {
		t.Error("forced reindex reinstalled the same *Index")
	}
	if got := ft.CurrentIndex().Config(); got != ix.Config() {
		t.Errorf("forced rebuild config = %+v, want unchanged %+v", got, ix.Config())
	}
	st := m.Status()
	if st.Rebuilds != 1 || st.Building {
		t.Errorf("status after rebuild = %+v, want rebuilds=1 building=false", st)
	}
	if st.LastBuild == "" {
		t.Error("status.LastBuild empty after a build")
	}
}

func TestReindexBusy(t *testing.T) {
	coll := testCollection(t)
	ix, err := flix.Build(coll, flix.Config{Kind: flix.Naive})
	if err != nil {
		t.Fatal(err)
	}
	m := New(coll, &fakeTarget{ix: ix, gen: 1}, Config{MinQueries: 1})
	drive(ix, 3)
	m.building.Store(true) // simulate a rebuild in flight
	if _, err := m.Reindex(true); !errors.Is(err, ErrBusy) {
		t.Fatalf("Reindex while building = %v, want ErrBusy", err)
	}
	m.building.Store(false)
	if _, err := m.Reindex(true); err != nil {
		t.Fatalf("Reindex after the build finished: %v", err)
	}
}

func TestPersistRetentionAndLatest(t *testing.T) {
	coll := testCollection(t)
	ix, err := flix.Build(coll, flix.Config{Kind: flix.Hybrid, PartitionSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	m := New(coll, &fakeTarget{ix: ix}, Config{SnapshotDir: dir, Retain: 2})
	for gen := uint64(1); gen <= 5; gen++ {
		if err := m.persist(ix, gen); err != nil {
			t.Fatalf("persist gen %d: %v", gen, err)
		}
	}
	matches, err := filepath.Glob(filepath.Join(dir, "gen-*.flix"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("retained %d snapshots %v, want 2", len(matches), matches)
	}
	latest, err := LatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(latest) != SnapshotName(5) {
		t.Errorf("LatestSnapshot = %s, want %s", latest, SnapshotName(5))
	}
	// The retained snapshot must round-trip through the regular loader.
	f, err := os.Open(latest)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ix2, err := flix.Load(coll, f)
	if err != nil {
		t.Fatalf("loading persisted generation: %v", err)
	}
	if ix2.Config() != ix.Config() {
		t.Errorf("restored config = %+v, want %+v", ix2.Config(), ix.Config())
	}
	// No temp files left behind.
	if tmp, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmp) != 0 {
		t.Errorf("temp files left behind: %v", tmp)
	}
}

func TestLatestSnapshotEmpty(t *testing.T) {
	path, err := LatestSnapshot(t.TempDir())
	if err != nil || path != "" {
		t.Errorf("LatestSnapshot(empty) = %q, %v; want \"\", nil", path, err)
	}
}

func TestRunDisabledAndTicking(t *testing.T) {
	coll := testCollection(t)
	ix, err := flix.Build(coll, flix.Config{Kind: flix.Hybrid, PartitionSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	ft := &fakeTarget{ix: ix, gen: 1}

	// Interval <= 0: Run returns immediately even with a live context.
	done := make(chan struct{})
	go func() {
		New(coll, ft, Config{}).Run(context.Background())
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run with Interval 0 did not return")
	}

	// A ticking loop replans; with a steady index it keeps skipping and
	// stops when the context is canceled.
	drive(ix, 20)
	m := New(coll, ft, Config{Interval: 5 * time.Millisecond, MinQueries: 10})
	ctx, cancel := context.WithCancel(context.Background())
	done = make(chan struct{})
	go func() {
		m.Run(ctx)
		close(done)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for m.Status().Skipped+m.Status().Rebuilds == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop on context cancel")
	}
	if st := m.Status(); st.Skipped+st.Rebuilds == 0 {
		t.Error("ticking Run never made a decision")
	}
}
