package query

// Frozen reference evaluators, mirroring internal/flix/reference.go: the
// optimized ranked-query paths in topk.go are checked differentially and
// benchmarked against these deliberately simple implementations.
//
//   - ReferenceEvaluate is the map-based full evaluator with per-candidate
//     math.Pow decay — the correctness oracle.  EvaluateTopK(q, k) must
//     equal ReferenceEvaluate(q)[:k] element for element.
//   - ReferenceEvaluateTopK is the pre-optimization top-k evaluator (one
//     fully materialized buffer per stream, full top-k heap rebuild per
//     accepted candidate) — the performance baseline flixbench -exp topk
//     measures speedups against.
//
// Do not "improve" this file: its value is staying put while topk.go moves.

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/flix"
	"repro/internal/xmlgraph"
)

// ReferenceEvaluate runs the query with the frozen full evaluator and
// returns all results ranked by descending relevance (ties: shorter path,
// then node ID).  Unlike Evaluate it never truncates to MaxResults — the
// differential suite needs the complete ranking.
func (e *Evaluator) ReferenceEvaluate(q *Query) []Match {
	e.Stats = EvalStats{}
	frontier := e.refAnchor(q.Steps[0])
	for _, s := range q.Steps[1:] {
		if e.canceled() {
			e.Stats.Truncated = true
			break
		}
		frontier = e.refAdvance(frontier, s)
		if len(frontier) == 0 {
			return nil
		}
	}
	out := make([]Match, 0, len(frontier))
	for _, m := range frontier {
		out = append(out, m)
	}
	sortMatches(out)
	return out
}

// refAnchor is the frozen copy of anchor.
func (e *Evaluator) refAnchor(s Step) map[xmlgraph.NodeID]Match {
	coll := e.Index.Collection()
	frontier := make(map[xmlgraph.NodeID]Match)
	add := func(n xmlgraph.NodeID, score float64) {
		if !e.matchesPred(s, n) {
			return
		}
		if old, ok := frontier[n]; !ok || score > old.Score {
			frontier[n] = Match{Node: n, Score: score}
		}
	}
	for _, wt := range e.expansions(s) {
		switch {
		case s.Axis == Child && wt.Tag == "":
			for d := 0; d < coll.NumDocs(); d++ {
				add(coll.Doc(xmlgraph.DocID(d)).Root, wt.Score)
			}
		case s.Axis == Child:
			for d := 0; d < coll.NumDocs(); d++ {
				r := coll.Doc(xmlgraph.DocID(d)).Root
				if coll.Tag(r) == wt.Tag {
					add(r, wt.Score)
				}
			}
		case wt.Tag == "":
			for n := 0; n < coll.NumNodes(); n++ {
				add(xmlgraph.NodeID(n), wt.Score)
			}
		default:
			for _, n := range coll.NodesByTag(wt.Tag) {
				add(n, wt.Score)
			}
		}
	}
	e.Stats.Anchored = len(frontier)
	return frontier
}

// refAdvance is the frozen copy of advance, including the deterministic
// per-node tie-break (maximum score, then shorter path) that defines the
// ranking contract the optimized paths must reproduce.
func (e *Evaluator) refAdvance(frontier map[xmlgraph.NodeID]Match, s Step) map[xmlgraph.NodeID]Match {
	e.Stats.Steps++
	coll := e.Index.Collection()
	next := make(map[xmlgraph.NodeID]Match)
	add := func(n xmlgraph.NodeID, score float64, pathLen int32) {
		if score < e.minScore() || !e.matchesPred(s, n) {
			return
		}
		if old, ok := next[n]; !ok || score > old.Score ||
			(score == old.Score && pathLen < old.PathLen) {
			next[n] = Match{Node: n, Score: score, PathLen: pathLen}
		}
	}
	for _, wt := range e.expansions(s) {
		for _, m := range frontier {
			if e.canceled() {
				e.Stats.Truncated = true
				return next
			}
			base := m.Score * wt.Score
			if base < e.minScore() {
				continue
			}
			if s.Axis == Child {
				coll.EachSuccessor(m.Node, func(c xmlgraph.NodeID) {
					if wt.Tag == "" || coll.Tag(c) == wt.Tag {
						add(c, base, m.PathLen+1)
					}
				})
				continue
			}
			e.Stats.Scans++
			opts := flix.Options{MaxDist: e.maxDistFor(base), Cancel: e.Cancel, Tracer: e.Tracer}
			e.Index.Descendants(m.Node, wt.Tag, opts, func(r flix.Result) bool {
				score := base
				if r.Dist > 1 {
					score *= math.Pow(e.decay(), float64(r.Dist-1))
				}
				add(r.Node, score, m.PathLen+r.Dist)
				return true
			})
			if e.InverseScore > 0 && e.InverseScore < 1 {
				invBase := base * e.InverseScore
				if invBase < e.minScore() {
					continue
				}
				e.Stats.InverseScans++
				invOpts := flix.Options{MaxDist: e.maxDistFor(invBase), Cancel: e.Cancel, Tracer: e.Tracer}
				e.Index.Ancestors(m.Node, wt.Tag, invOpts, func(r flix.Result) bool {
					score := invBase
					if r.Dist > 1 {
						score *= math.Pow(e.decay(), float64(r.Dist-1))
					}
					add(r.Node, score, m.PathLen+r.Dist)
					return true
				})
			}
		}
	}
	return next
}

// ReferenceEvaluateTopK is the frozen pre-optimization EvaluateTopK: the
// same threshold-algorithm shape as the optimized path, but every touched
// stream materializes its complete result set up front, the decay is a
// math.Pow per candidate, and the top-k heap is fully rebuilt from the
// candidate map on every accepted candidate.  Note its last-step streams
// ignore InverseScore, as the original did.
func (e *Evaluator) ReferenceEvaluateTopK(q *Query, k int) []Match {
	if k <= 0 {
		return nil
	}
	e.Stats = EvalStats{}
	if len(q.Steps) == 1 {
		out := e.ReferenceEvaluate(q)
		if len(out) > k {
			out = out[:k]
		}
		return out
	}
	frontier := e.refAnchor(q.Steps[0])
	for _, s := range q.Steps[1 : len(q.Steps)-1] {
		frontier = e.refAdvance(frontier, s)
		if len(frontier) == 0 {
			return nil
		}
	}
	last := q.Steps[len(q.Steps)-1]
	if last.Axis == Child {
		final := e.refAdvance(frontier, last)
		return topOf(final, k)
	}
	e.Stats.Steps++

	var streams []*refResultStream
	for _, wt := range e.expansions(last) {
		for _, m := range frontier {
			base := m.Score * wt.Score
			if base < e.minScore() {
				continue
			}
			streams = append(streams, &refResultStream{
				e: e, from: m, tag: wt.Tag, base: base, maxDist: e.maxDistFor(base),
			})
		}
	}
	h := make(refStreamHeap, 0, len(streams))
	for _, s := range streams {
		s.curScore = s.base
		h = append(h, s)
	}
	heap.Init(&h)

	best := make(map[xmlgraph.NodeID]Match)
	collected := &refMatchHeap{}
	for h.Len() > 0 && !e.canceled() {
		if collected.Len() >= k && (*collected)[0].Score >= h[0].curScore {
			break
		}
		s := h[0]
		if !s.fetched {
			if s.next() {
				heap.Fix(&h, 0)
			} else {
				heap.Pop(&h)
			}
			continue
		}
		cand := Match{Node: s.curNode, Score: s.curScore, PathLen: s.curPathLen}
		if s.next() {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
		if !e.matchesPred(last, cand.Node) {
			continue
		}
		if old, ok := best[cand.Node]; ok && old.Score >= cand.Score {
			continue
		}
		best[cand.Node] = cand
		collected.rebuild(best, k)
	}
	out := make([]Match, 0, len(best))
	for _, m := range best {
		out = append(out, m)
	}
	return topOf2(out, k)
}

// refResultStream is the frozen buffer-everything stream.
type refResultStream struct {
	e       *Evaluator
	from    Match
	tag     string
	base    float64
	maxDist int32

	buf []flix.Result
	pos int

	curNode    xmlgraph.NodeID
	curScore   float64
	curPathLen int32
	fetched    bool
}

func (s *refResultStream) next() bool {
	if !s.fetched {
		s.fetched = true
		s.e.Stats.Scans++
		s.e.Index.Descendants(s.from.Node, s.tag,
			flix.Options{MaxDist: s.maxDist, Cancel: s.e.Cancel, Tracer: s.e.Tracer},
			func(r flix.Result) bool {
				s.buf = append(s.buf, r)
				return true
			})
		sort.Slice(s.buf, func(i, j int) bool {
			if s.buf[i].Dist != s.buf[j].Dist {
				return s.buf[i].Dist < s.buf[j].Dist
			}
			return s.buf[i].Node < s.buf[j].Node
		})
	}
	if s.pos >= len(s.buf) {
		return false
	}
	r := s.buf[s.pos]
	s.pos++
	s.curNode = r.Node
	s.curScore = s.base
	if r.Dist > 1 {
		s.curScore *= math.Pow(s.e.decay(), float64(r.Dist-1))
	}
	s.curPathLen = s.from.PathLen + r.Dist
	return true
}

// refStreamHeap is a max-heap over current candidate scores.
type refStreamHeap []*refResultStream

func (h refStreamHeap) Len() int           { return len(h) }
func (h refStreamHeap) Less(i, j int) bool { return h[i].curScore > h[j].curScore }
func (h refStreamHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refStreamHeap) Push(x any)        { *h = append(*h, x.(*refResultStream)) }
func (h *refStreamHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}

// refMatchHeap tracks the k-th best score by full rebuild — the quadratic
// hotspot the optimized path replaced.
type refMatchHeap []Match

func (h refMatchHeap) Len() int           { return len(h) }
func (h refMatchHeap) Less(i, j int) bool { return h[i].Score < h[j].Score }
func (h refMatchHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refMatchHeap) Push(x any)        { *h = append(*h, x.(Match)) }
func (h *refMatchHeap) Pop() any {
	old := *h
	n := len(old)
	m := old[n-1]
	*h = old[:n-1]
	return m
}

func (h *refMatchHeap) rebuild(best map[xmlgraph.NodeID]Match, k int) {
	*h = (*h)[:0]
	for _, m := range best {
		heap.Push(h, m)
		if h.Len() > k {
			heap.Pop(h)
		}
	}
}
