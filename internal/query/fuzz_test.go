package query

import "testing"

// FuzzParse checks that the parser never panics and that every accepted
// expression round-trips through String.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"//movie//actor",
		"/dblp/article/author",
		`//~movie[text~"Matrix"]//actor`,
		"//a//*",
		"a/b",
		"//",
		"~",
		`//x[text="a\"b"]`,
		"//x[", "//x[text", "//x[text=", `//x[text="`, `//x[text="v"`,
		"////", "/*/*", "//~*",
		"0[text~\"\xd1\"]", // regression: invalid UTF-8 in a predicate value must round-trip
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		q, err := Parse(expr)
		if err != nil {
			return
		}
		if len(q.Steps) == 0 {
			t.Fatalf("Parse(%q) accepted an empty query", expr)
		}
		// Accepted queries render and re-parse to the same structure.
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("reparse of %q (from %q) failed: %v", rendered, expr, err)
		}
		if len(q.Steps) != len(q2.Steps) {
			t.Fatalf("round trip changed step count: %q -> %q", expr, rendered)
		}
		for i := range q.Steps {
			a, b := q.Steps[i], q2.Steps[i]
			if a.Axis != b.Axis || a.Tag != b.Tag || a.Similar != b.Similar || a.Op != b.Op || a.Value != b.Value {
				t.Fatalf("round trip changed step %d: %+v vs %+v", i, a, b)
			}
		}
	})
}
