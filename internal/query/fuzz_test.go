package query

import "testing"

// FuzzEvaluate drives every accepted query string through the full
// evaluation pipeline against a small fixed collection: evaluation must
// never panic, and the ranked matches must respect the evaluator's
// contract — scores in (0, 1], non-increasing order, valid nodes.
func FuzzEvaluate(f *testing.F) {
	for _, seed := range []string{
		"//movie//actor",
		"//~movie//~actor",
		`//movie[text~"Matrix"]//actor`,
		"/movie/cast/actor",
		"//*", "//x//y//z", "a",
		`//title[text="Matrix 3"]`,
	} {
		f.Add(seed)
	}
	e, _ := buildEval(f)
	e.MaxResults = 50
	f.Fuzz(func(t *testing.T, expr string) {
		q, err := Parse(expr)
		if err != nil {
			return
		}
		matches := e.Evaluate(q)
		if len(matches) > e.MaxResults {
			t.Fatalf("Evaluate(%q) returned %d matches, MaxResults %d", expr, len(matches), e.MaxResults)
		}
		coll := e.Index.Collection()
		for i, m := range matches {
			if m.Score <= 0 || m.Score > 1 {
				t.Fatalf("Evaluate(%q) match %d has score %v outside (0,1]", expr, i, m.Score)
			}
			if i > 0 && matches[i-1].Score < m.Score {
				t.Fatalf("Evaluate(%q) matches not sorted: score %v before %v", expr, matches[i-1].Score, m.Score)
			}
			if !coll.Valid(m.Node) {
				t.Fatalf("Evaluate(%q) match %d names invalid node %d", expr, i, m.Node)
			}
		}
	})
}

// FuzzEvaluateTopK cross-checks the optimized top-k evaluator against the
// frozen reference evaluator for every accepted query string and k: the
// answer must be exactly the first min(k, n) elements of the reference's
// full deterministic ranking, and an uncancelled run must never report
// truncation.
func FuzzEvaluateTopK(f *testing.F) {
	for _, seed := range []string{
		"//movie//actor",
		"//~movie//~actor",
		`//movie[text~"Matrix"]//actor`,
		"/movie/cast/actor",
		"//*", "//x//y//z", "a",
		"//movie", "//cast//*",
	} {
		f.Add(seed, 1)
		f.Add(seed, 10)
		f.Add(seed, 1000)
	}
	e, _ := buildEval(f)
	f.Fuzz(func(t *testing.T, expr string, k int) {
		q, err := Parse(expr)
		if err != nil {
			return
		}
		if k < 0 {
			k = -k
		}
		k %= 2000
		got := e.EvaluateTopK(q, k)
		full := e.ReferenceEvaluate(q)
		want := full
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("EvaluateTopK(%q, %d) returned %d matches, reference prefix has %d",
				expr, k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("EvaluateTopK(%q, %d) result %d = %+v, reference %+v",
					expr, k, i, got[i], want[i])
			}
		}
		// e.Stats now holds the reference run's stats; re-run the optimized
		// path last so the truncation check reads its flag.
		e.EvaluateTopK(q, k)
		if e.Stats.Truncated {
			t.Fatalf("EvaluateTopK(%q, %d) reported truncation without a cancel", expr, k)
		}
	})
}

// FuzzParse checks that the parser never panics and that every accepted
// expression round-trips through String.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"//movie//actor",
		"/dblp/article/author",
		`//~movie[text~"Matrix"]//actor`,
		"//a//*",
		"a/b",
		"//",
		"~",
		`//x[text="a\"b"]`,
		"//x[", "//x[text", "//x[text=", `//x[text="`, `//x[text="v"`,
		"////", "/*/*", "//~*",
		"0[text~\"\xd1\"]", // regression: invalid UTF-8 in a predicate value must round-trip
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		q, err := Parse(expr)
		if err != nil {
			return
		}
		if len(q.Steps) == 0 {
			t.Fatalf("Parse(%q) accepted an empty query", expr)
		}
		// Accepted queries render and re-parse to the same structure.
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("reparse of %q (from %q) failed: %v", rendered, expr, err)
		}
		if len(q.Steps) != len(q2.Steps) {
			t.Fatalf("round trip changed step count: %q -> %q", expr, rendered)
		}
		for i := range q.Steps {
			a, b := q.Steps[i], q2.Steps[i]
			if a.Axis != b.Axis || a.Tag != b.Tag || a.Similar != b.Similar || a.Op != b.Op || a.Value != b.Value {
				t.Fatalf("round trip changed step %d: %+v vs %+v", i, a, b)
			}
		}
	})
}
