package query

import (
	"math"
	"testing"

	"repro/internal/flix"
	"repro/internal/ontology"
	"repro/internal/xmlgraph"
)

// movieCollection models the paper's introduction scenario: one source uses
// movie/cast/actor, another uses science-fiction with actors one level
// deeper and a follow-up movie linked from the first.
func movieCollection(t testing.TB) (*xmlgraph.Collection, map[string]xmlgraph.NodeID) {
	t.Helper()
	c := xmlgraph.NewCollection()
	ids := make(map[string]xmlgraph.NodeID)

	a := c.NewDocument("matrix.xml")
	ids["movie1"] = a.Enter("movie", "")
	ids["title1"] = a.AddLeaf("title", "Matrix: Revolutions")
	a.Enter("cast", "")
	ids["actor1"] = a.Enter("actor", "")
	a.AddLeaf("name", "Keanu Reeves")
	a.Leave()
	a.Leave()
	ids["follows"] = a.AddLeaf("follows", "")
	a.Leave()
	a.Close()

	b := c.NewDocument("matrix2.xml")
	ids["movie2"] = b.Enter("science-fiction", "")
	ids["title2"] = b.AddLeaf("title", "Matrix 3")
	b.Enter("credits", "")
	b.Enter("people", "")
	ids["actor2"] = b.AddLeaf("actor", "Carrie-Anne Moss")
	b.Leave()
	b.Leave()
	b.Leave()
	b.Close()

	c.AddLink(ids["follows"], ids["movie2"], xmlgraph.EdgeInterLink)
	c.Freeze()
	return c, ids
}

func buildEval(t testing.TB) (*Evaluator, map[string]xmlgraph.NodeID) {
	t.Helper()
	c, ids := movieCollection(t)
	ix, err := flix.Build(c, flix.Config{Kind: flix.Hybrid, PartitionSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	o := ontology.New()
	if err := o.AddSimilarity("movie", "science-fiction", 0.8); err != nil {
		t.Fatal(err)
	}
	return &Evaluator{Index: ix, Ontology: o}, ids
}

func mustParse(t testing.TB, s string) *Query {
	t.Helper()
	q, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestEvaluateSimpleDescendant(t *testing.T) {
	e, ids := buildEval(t)
	got := e.Evaluate(mustParse(t, "//movie//actor"))
	// Only actor1 sits below a literal movie... except the link makes
	// actor2 reachable from movie1 too.
	found := map[xmlgraph.NodeID]float64{}
	for _, m := range got {
		found[m.Node] = m.Score
	}
	if len(found) != 2 {
		t.Fatalf("results = %v", got)
	}
	// actor1 at distance 2 scores decay^1 = 0.8; actor2 at distance 5
	// via the link scores less.
	if math.Abs(found[ids["actor1"]]-0.8) > 1e-9 {
		t.Errorf("actor1 score = %g", found[ids["actor1"]])
	}
	if found[ids["actor2"]] >= found[ids["actor1"]] {
		t.Errorf("actor2 should rank below actor1: %v", got)
	}
}

func TestEvaluateSemanticVagueness(t *testing.T) {
	e, ids := buildEval(t)
	// Without ~: science-fiction roots are not movies.
	got := e.Evaluate(mustParse(t, "//movie"))
	if len(got) != 1 || got[0].Node != ids["movie1"] {
		t.Fatalf("//movie = %v", got)
	}
	// With ~: the ontology admits science-fiction at 0.8.
	got = e.Evaluate(mustParse(t, "//~movie"))
	if len(got) != 2 {
		t.Fatalf("//~movie = %v", got)
	}
	if got[0].Node != ids["movie1"] || got[0].Score != 1 {
		t.Errorf("first = %+v", got[0])
	}
	if got[1].Node != ids["movie2"] || math.Abs(got[1].Score-0.8) > 1e-9 {
		t.Errorf("second = %+v", got[1])
	}
}

func TestEvaluatePredicate(t *testing.T) {
	e, ids := buildEval(t)
	got := e.Evaluate(mustParse(t, `//~movie//title[text~"matrix"]`))
	if len(got) != 2 {
		t.Fatalf("results = %v", got)
	}
	got = e.Evaluate(mustParse(t, `//title[text="Matrix 3"]`))
	if len(got) != 1 || got[0].Node != ids["title2"] {
		t.Errorf("exact predicate = %v", got)
	}
	got = e.Evaluate(mustParse(t, `//title[text="matrix 3"]`)) // exact is case-sensitive
	if len(got) != 0 {
		t.Errorf("case-sensitive exact matched: %v", got)
	}
}

func TestEvaluateChildAxis(t *testing.T) {
	e, ids := buildEval(t)
	got := e.Evaluate(mustParse(t, "/movie/title"))
	if len(got) != 1 || got[0].Node != ids["title1"] {
		t.Errorf("/movie/title = %v", got)
	}
	// cast/actor requires two child steps; title is not below cast.
	got = e.Evaluate(mustParse(t, "/movie/cast/actor"))
	if len(got) != 1 || got[0].Node != ids["actor1"] {
		t.Errorf("/movie/cast/actor = %v", got)
	}
}

func TestEvaluateRelaxedFindsDeepActors(t *testing.T) {
	e, ids := buildEval(t)
	// The paper's full example: ~movie//actor//... here the relaxed query
	// //~movie//actor must find the deep actor under science-fiction.
	got := e.Evaluate(mustParse(t, "//~movie//actor"))
	found := map[xmlgraph.NodeID]bool{}
	for _, m := range got {
		found[m.Node] = true
	}
	if !found[ids["actor1"]] || !found[ids["actor2"]] {
		t.Errorf("relaxed query missed actors: %v", got)
	}
	// Ranking is by descending score.
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Errorf("not ranked: %v", got)
		}
	}
}

func TestEvaluateWildcardStep(t *testing.T) {
	e, _ := buildEval(t)
	got := e.Evaluate(mustParse(t, "//cast/*"))
	if len(got) != 1 {
		t.Errorf("//cast/* = %v", got)
	}
}

func TestEvaluateMaxResults(t *testing.T) {
	e, _ := buildEval(t)
	e.MaxResults = 1
	got := e.Evaluate(mustParse(t, "//~movie//*"))
	if len(got) != 1 {
		t.Errorf("MaxResults ignored: %v", got)
	}
}

func TestEvaluateNoMatch(t *testing.T) {
	e, _ := buildEval(t)
	if got := e.Evaluate(mustParse(t, "//nonexistent//actor")); got != nil {
		t.Errorf("expected nil, got %v", got)
	}
}

func TestMaxDistForBoundsSearch(t *testing.T) {
	e := &Evaluator{}
	d := e.maxDistFor(1.0)
	// decay 0.8, minScore 0.01: 0.8^(d-1) >= 0.01 => d-1 <= 20.6.
	if d < 20 || d > 23 {
		t.Errorf("maxDistFor(1) = %d", d)
	}
	if e.maxDistFor(0.02) >= d {
		t.Error("lower score must shrink the bound")
	}
}
