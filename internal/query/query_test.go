package query

import (
	"reflect"
	"testing"
)

func TestParseBasic(t *testing.T) {
	q, err := Parse("//movie//actor")
	if err != nil {
		t.Fatal(err)
	}
	want := []Step{
		{Axis: Descendant, Tag: "movie"},
		{Axis: Descendant, Tag: "actor"},
	}
	if !reflect.DeepEqual(q.Steps, want) {
		t.Errorf("Steps = %+v", q.Steps)
	}
}

func TestParseChildAxis(t *testing.T) {
	q, err := Parse("/dblp/article/author")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Steps) != 3 {
		t.Fatalf("steps = %d", len(q.Steps))
	}
	for i, s := range q.Steps {
		if s.Axis != Child {
			t.Errorf("step %d axis = %v", i, s.Axis)
		}
	}
}

func TestParseBareLeadingName(t *testing.T) {
	q, err := Parse("movie//actor")
	if err != nil {
		t.Fatal(err)
	}
	if q.Steps[0].Axis != Descendant || q.Steps[0].Tag != "movie" {
		t.Errorf("leading step = %+v", q.Steps[0])
	}
}

func TestParseSimilarAndWildcard(t *testing.T) {
	q, err := Parse("//~movie//*")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Steps[0].Similar || q.Steps[0].Tag != "movie" {
		t.Errorf("step 0 = %+v", q.Steps[0])
	}
	if q.Steps[1].Tag != "" || q.Steps[1].Similar {
		t.Errorf("step 1 = %+v", q.Steps[1])
	}
}

func TestParsePredicates(t *testing.T) {
	q, err := Parse(`//movie[text="Matrix"]//actor[text~"reeves"]`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Steps[0].Op != PredEq || q.Steps[0].Value != "Matrix" {
		t.Errorf("step 0 pred = %+v", q.Steps[0])
	}
	if q.Steps[1].Op != PredContains || q.Steps[1].Value != "reeves" {
		t.Errorf("step 1 pred = %+v", q.Steps[1])
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"//",
		"//movie//",
		"//~*",
		"//movie[foo=\"x\"]",
		"//movie[text=\"x\"",
		"//movie[text=\"x]",
		"//movie[text?\"x\"]",
		"movie actor",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, src := range []string{
		"//movie//actor",
		"/dblp/article",
		`//~movie[text~"Matrix"]//actor`,
		"//a//*",
	} {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", q.String(), err)
		}
		if !reflect.DeepEqual(q.Steps, q2.Steps) {
			t.Errorf("%q round trip: %q", src, q.String())
		}
	}
}

func TestRelax(t *testing.T) {
	q, err := Parse("/movie/actor")
	if err != nil {
		t.Fatal(err)
	}
	r := q.Relax()
	for i, s := range r.Steps {
		if s.Axis != Descendant {
			t.Errorf("relaxed step %d = %v", i, s.Axis)
		}
	}
	// Original untouched.
	if q.Steps[0].Axis != Child {
		t.Error("Relax mutated the original")
	}
	if r.String() != "//movie//actor" {
		t.Errorf("relaxed = %q", r.String())
	}
}
