package query

// The differential top-k suite: EvaluateTopK must return exactly the first
// min(k, n) elements of the frozen reference evaluator's full deterministic
// ranking — same nodes, same scores, same path lengths, same order — for
// every testutil graph family, every Registry strategy, serial and parallel
// builds, and k below, at and beyond the result count.  Plus the
// cancellation and single-step fast-path regression tests.

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/flix"
	"repro/internal/meta"
	"repro/internal/testutil"
	"repro/internal/xmlgraph"
)

// registryStrategies lists every Path Indexing Strategy name, in stable
// order for reproducible subtest names.
func registryStrategies() []string {
	names := make([]string, 0, len(meta.Registry))
	for name := range meta.Registry {
		names = append(names, name)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// assertExactPrefix fails unless got is element-for-element the first
// min(k, len(full)) entries of full.
func assertExactPrefix(t *testing.T, label string, got, full []Match, k int) {
	t.Helper()
	want := full
	if len(want) > k {
		want = want[:k]
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d\n got %v\nwant %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func TestDifferentialTopK(t *testing.T) {
	exprs := []string{"//a//b", "//b//*", "//a//c//e", "//e//d"}
	for _, family := range testutil.Families() {
		for seed := int64(1); seed <= 2; seed++ {
			coll := testutil.Generate(family, seed, 6, 30, 12)
			for _, strategy := range registryStrategies() {
				// Infeasible choices (ppo on a non-forest meta document)
				// fall back to the selector's heuristic inside the build.
				cfg := flix.Config{Kind: flix.Hybrid, PartitionSize: 40, Strategy: strategy}
				for _, par := range []int{1, 4} {
					ix, err := flix.BuildWithOptions(coll, cfg, flix.BuildOptions{Parallelism: par})
					if err != nil {
						t.Fatalf("%s/%d %s p%d: %v", family, seed, strategy, par, err)
					}
					e := &Evaluator{Index: ix}
					for _, expr := range exprs {
						q := mustParse(t, expr)
						full := e.ReferenceEvaluate(q)
						for _, k := range []int{1, 5, 100, len(full) + 7} {
							got := e.EvaluateTopK(q, k)
							label := fmt.Sprintf("%s/%d %s p%d %s k=%d",
								family, seed, strategy, par, expr, k)
							assertExactPrefix(t, label, got, full, k)
						}
					}
				}
			}
		}
	}
}

// TestDifferentialTopKInverse covers the InverseScore ancestor streams the
// old top-k evaluator silently dropped.
func TestDifferentialTopKInverse(t *testing.T) {
	for _, family := range testutil.Families() {
		coll := testutil.Generate(family, 3, 6, 30, 12)
		ix, err := flix.Build(coll, flix.Config{Kind: flix.Hybrid, PartitionSize: 40})
		if err != nil {
			t.Fatal(err)
		}
		e := &Evaluator{Index: ix, InverseScore: 0.5}
		for _, expr := range []string{"//a//b", "//e//d"} {
			q := mustParse(t, expr)
			full := e.ReferenceEvaluate(q)
			for _, k := range []int{1, 5, len(full) + 1} {
				got := e.EvaluateTopK(q, k)
				assertExactPrefix(t, fmt.Sprintf("%s %s k=%d", family, expr, k), got, full, k)
			}
		}
	}
}

// TestTopKGrowingKAppends is the quick property: growing k only appends —
// EvaluateTopK(q, k1) is a strict prefix of EvaluateTopK(q, k2) for
// k1 <= k2.
func TestTopKGrowingKAppends(t *testing.T) {
	coll := testutil.Generate(testutil.Linked, 7, 8, 40, 20)
	ix, err := flix.Build(coll, flix.Config{Kind: flix.Hybrid, PartitionSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	e := &Evaluator{Index: ix}
	exprs := []string{"//a//b", "//b//*", "//c//d"}
	prop := func(ei, k1, k2 uint8) bool {
		q := mustParse(t, exprs[int(ei)%len(exprs)])
		lo, hi := int(k1)%40+1, int(k2)%40+1
		if lo > hi {
			lo, hi = hi, lo
		}
		small := e.EvaluateTopK(q, lo)
		big := e.EvaluateTopK(q, hi)
		if len(small) > len(big) {
			return false
		}
		for i := range small {
			if small[i] != big[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// cancelAfterBackend wraps an index and trips a cancel channel after a
// fixed number of last-step stream openings, making mid-stream cancellation
// deterministic.  It forwards the banded-probe capability, so the optimized
// banded path is the one being cancelled.
type cancelAfterBackend struct {
	ix     *flix.Index
	after  int
	opened int
	cancel chan struct{}
}

func (b *cancelAfterBackend) Collection() *xmlgraph.Collection { return b.ix.Collection() }

func (b *cancelAfterBackend) Descendants(start xmlgraph.NodeID, tag string, opts flix.Options, fn flix.Emit) {
	b.trip()
	b.ix.Descendants(start, tag, opts, fn)
}

func (b *cancelAfterBackend) Ancestors(start xmlgraph.NodeID, tag string, opts flix.Options, fn flix.Emit) {
	b.ix.Ancestors(start, tag, opts, fn)
}

func (b *cancelAfterBackend) StartProbe(p *flix.Probe, start xmlgraph.NodeID, tag string, opts flix.Options) {
	b.trip()
	b.ix.StartProbe(p, start, tag, opts)
}

func (b *cancelAfterBackend) trip() {
	b.opened++
	if b.opened == b.after {
		close(b.cancel)
	}
}

// TestEvaluateTopKCancelMidStream mirrors flix's cancel_test for the ranked
// evaluator: a cancellation between stream openings must surface as
// Stats.Truncated instead of returning a silently complete-looking answer.
func TestEvaluateTopKCancelMidStream(t *testing.T) {
	coll := testutil.Generate(testutil.Linked, 5, 10, 40, 25)
	ix, err := flix.Build(coll, flix.Config{Kind: flix.Hybrid, PartitionSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	q := mustParse(t, "//a//b")
	oracle := (&Evaluator{Index: ix}).ReferenceEvaluate(q)
	if len(oracle) == 0 {
		t.Fatal("bad fixture: no results")
	}

	be := &cancelAfterBackend{ix: ix, after: 2, cancel: make(chan struct{})}
	e := &Evaluator{Index: be, Cancel: be.cancel}
	got := e.EvaluateTopK(q, len(oracle))
	if !e.Stats.Truncated {
		t.Fatal("cancel mid-stream not surfaced in Stats.Truncated")
	}
	if len(got) >= len(oracle) {
		t.Fatalf("truncated answer has %d results, full has %d", len(got), len(oracle))
	}

	// Pre-tripped cancel: still truncated, not an error.
	done := make(chan struct{})
	close(done)
	e2 := &Evaluator{Index: ix, Cancel: done}
	e2.EvaluateTopK(q, 5)
	if !e2.Stats.Truncated {
		t.Fatal("pre-cancelled evaluation not marked truncated")
	}

	// And without any cancellation the flag stays clear.
	e3 := &Evaluator{Index: ix}
	e3.EvaluateTopK(q, 5)
	if e3.Stats.Truncated {
		t.Fatal("uncancelled evaluation marked truncated")
	}
}

// TestEvaluateTopKSingleStepFastPath is the regression test for the
// delegating fast path: MaxResults must not shrink the answer below k, the
// ordering is the exact sortMatches prefix, Stats is reset like the
// streamed path, and the evaluator's MaxResults survives the call.
func TestEvaluateTopKSingleStepFastPath(t *testing.T) {
	e, _ := buildEval(t)
	q := mustParse(t, "//actor")
	full := e.ReferenceEvaluate(q)
	if len(full) < 2 {
		t.Fatalf("bad fixture: %d actors", len(full))
	}

	e.MaxResults = 1
	e.Stats = EvalStats{Steps: 99, Scans: 99, Truncated: true} // stale garbage
	got := e.EvaluateTopK(q, len(full))
	if e.MaxResults != 1 {
		t.Fatalf("MaxResults clobbered: %d", e.MaxResults)
	}
	assertExactPrefix(t, "single step k=all", got, full, len(full))
	if e.Stats.Steps != 0 || e.Stats.Truncated {
		t.Fatalf("stale stats survived the fast path: %+v", e.Stats)
	}
	if e.Stats.Anchored == 0 {
		t.Fatalf("fast path did not record stats: %+v", e.Stats)
	}

	got = e.EvaluateTopK(q, 2)
	assertExactPrefix(t, "single step k=2", got, full, 2)

	// A similarity expansion on the fast path (ontology-backed) as well.
	sq := mustParse(t, "//~movie")
	sfull := e.ReferenceEvaluate(sq)
	assertExactPrefix(t, "single step ~movie", e.EvaluateTopK(sq, 3), sfull, 3)
}

// TestTopKMatchesReferenceTopK pins the frozen baseline itself: on ties the
// old evaluator resolved per-node winners nondeterministically, but the set
// of (node, score) pairs at each k must agree with the optimized path when
// no ties are in play, which the movie fixture guarantees for these
// queries.
func TestTopKMatchesReferenceTopK(t *testing.T) {
	e, _ := buildEval(t)
	for _, expr := range []string{"//movie//actor", "//~movie//title"} {
		q := mustParse(t, expr)
		for _, k := range []int{1, 3, 50} {
			got := e.EvaluateTopK(q, k)
			want := e.ReferenceEvaluateTopK(q, k)
			if len(got) != len(want) {
				t.Fatalf("%s k=%d: %d vs reference %d", expr, k, len(got), len(want))
			}
			for i := range want {
				if got[i].Node != want[i].Node || got[i].Score != want[i].Score {
					t.Fatalf("%s k=%d result %d: %+v vs reference %+v", expr, k, i, got[i], want[i])
				}
			}
		}
	}
}
