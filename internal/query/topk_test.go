package query

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dblp"
	"repro/internal/flix"
	"repro/internal/xmlgraph"
)

func TestEvaluateTopKMatchesFull(t *testing.T) {
	e, _ := buildEval(t)
	for _, expr := range []string{
		"//~movie//actor",
		"//movie//*",
		"//~movie//title",
		"//movie",
	} {
		q := mustParse(t, expr)
		full := e.Evaluate(q)
		for _, k := range []int{1, 2, 5, 100} {
			got := e.EvaluateTopK(q, k)
			want := full
			if len(want) > k {
				want = want[:k]
			}
			if len(got) != len(want) {
				t.Fatalf("%s k=%d: %d results, want %d (%v vs %v)", expr, k, len(got), len(want), got, want)
			}
			for i := range want {
				if got[i].Node != want[i].Node || got[i].Score != want[i].Score {
					t.Fatalf("%s k=%d result %d: %+v vs %+v", expr, k, i, got[i], want[i])
				}
			}
		}
	}
	if got := e.EvaluateTopK(mustParse(t, "//movie//actor"), 0); got != nil {
		t.Errorf("k=0: %v", got)
	}
}

func TestEvaluateTopKChildAxis(t *testing.T) {
	e, ids := buildEval(t)
	got := e.EvaluateTopK(mustParse(t, "/movie/title"), 3)
	if len(got) != 1 || got[0].Node != ids["title1"] {
		t.Errorf("top-k child axis = %v", got)
	}
}

func TestInverseScore(t *testing.T) {
	e, ids := buildEval(t)
	// actor//movie: no movie is a descendant of an actor...
	got := e.Evaluate(mustParse(t, "//actor//movie"))
	if len(got) != 0 {
		t.Fatalf("forward-only: %v", got)
	}
	// ...but with inverse matching, the containing movie qualifies at a
	// penalty.
	e.InverseScore = 0.5
	got = e.Evaluate(mustParse(t, "//actor//movie"))
	if len(got) != 1 || got[0].Node != ids["movie1"] {
		t.Fatalf("inverse: %v", got)
	}
	if got[0].Score >= 0.5 {
		t.Errorf("inverse score %g should be penalized below 0.5", got[0].Score)
	}
	// Forward matches are unaffected and rank above inverse ones.
	fwd := e.Evaluate(mustParse(t, "//movie//actor"))
	if len(fwd) == 0 || fwd[0].Score != 0.8 {
		t.Errorf("forward with inverse enabled: %v", fwd)
	}
}

// TestPropertyTopKAgainstFull: top-k must equal the k-prefix of the full
// ranking on larger random-ish data.
func TestPropertyTopKAgainstFull(t *testing.T) {
	corpus := dblp.Generate(dblp.Scaled(150))
	coll := corpus.BuildGraph()
	ix, err := flix.Build(coll, flix.Config{Kind: flix.UnconnectedHOPI, PartitionSize: 600})
	if err != nil {
		t.Fatal(err)
	}
	e := &Evaluator{Index: ix}
	exprs := []string{
		"//inproceedings//article",
		"//article//cite",
		"//inproceedings//author",
	}
	cfg := &quick.Config{MaxCount: 12}
	err = quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := mustParse(t, exprs[rng.Intn(len(exprs))])
		k := 1 + rng.Intn(20)
		full := e.Evaluate(q)
		got := e.EvaluateTopK(q, k)
		want := full
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			return false
		}
		// Scores must match position by position (node ties may permute
		// among equal scores; compare scores and set membership).
		wantSet := make(map[xmlgraph.NodeID]float64)
		for _, m := range want {
			wantSet[m.Node] = m.Score
		}
		for i := range got {
			if got[i].Score != want[i].Score {
				return false
			}
			if s, ok := wantSet[got[i].Node]; !ok || s != got[i].Score {
				// Allow a different node only when an equal score
				// exists in the full ranking beyond the cut.
				found := false
				for _, m := range full {
					if m.Node == got[i].Node && m.Score == got[i].Score {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
