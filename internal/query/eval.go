package query

import (
	"math"
	"sort"
	"strings"

	"repro/internal/flix"
	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/xmlgraph"
)

// Match is one ranked query result.
type Match struct {
	Node xmlgraph.NodeID
	// Score is the XXL-style relevance in (0, 1]: the product of the tag
	// similarity of every matched step and a decay factor per extra path
	// edge.
	Score float64
	// PathLen is the total number of edges along the matched path.
	PathLen int32
}

// Backend is the index surface the evaluator runs against: a local
// *flix.Index in the single-node server, or the scatter-gather router in
// the sharded tier (internal/shard), which evaluates each //-step scan
// across the cluster.  The evaluator itself is backend-agnostic.
type Backend interface {
	// Collection returns the underlying document collection (tag lookups,
	// content predicates, document roots).
	Collection() *xmlgraph.Collection
	// Descendants streams the elements named tag reachable from start in
	// approximately ascending distance order (flix.Index semantics).
	Descendants(start xmlgraph.NodeID, tag string, opts flix.Options, fn flix.Emit)
	// Ancestors is the inverse-direction scan used by InverseScore.
	Ancestors(start xmlgraph.NodeID, tag string, opts flix.Options, fn flix.Emit)
}

var _ Backend = (*flix.Index)(nil)

// Evaluator runs parsed queries against a FliX index with optional
// ontology-based tag expansion.
type Evaluator struct {
	Index Backend
	// Ontology expands ~tag steps; nil disables semantic vagueness.
	Ontology *ontology.Ontology
	// Decay scales relevance per path edge beyond the first on //-steps:
	// a result at distance d contributes Decay^(d-1).  Defaults to 0.8,
	// matching the paper's movie/cast/actor ≈ 0.8 example.
	Decay float64
	// MinTagScore prunes ontology expansions below this similarity.
	// Defaults to 0.5.
	MinTagScore float64
	// MinScore drops results whose accumulated relevance falls below it.
	// Defaults to 0.01, bounding //-step expansion depth.
	MinScore float64
	// MaxResults truncates the ranked result list (0 = all).
	MaxResults int
	// InverseScore enables the inverted-direction vagueness of §1.1
	// ("one could also consider inverting the direction, i.e., consider
	// also actor/acts_in/movie relevant, with a lower similarity"): each
	// //-step additionally matches *ancestors*, scaled by this factor in
	// (0, 1).  0 disables inverse matching.
	InverseScore float64
	// Cancel aborts the evaluation when closed (typically a context's
	// Done channel): the hook is forwarded into every index scan and
	// checked between frontier expansions, so Evaluate returns promptly
	// with the matches ranked so far.
	Cancel <-chan struct{}
	// Tracer, when non-nil, records every underlying index scan of the
	// evaluation into one trace (the //-step descendant scans and the
	// InverseScore ancestor scans alike).  Nil costs nothing.
	Tracer *obs.Trace
	// Stats accumulates the index work of the most recent Evaluate or
	// EvaluateTopK call.  On the sharded tier every Scan is one
	// scatter-gather, so the router's cluster trace reconciles its gather
	// count against these counters.
	Stats EvalStats
}

// EvalStats counts one evaluation's backend work.
type EvalStats struct {
	// Steps is the number of steps advanced past the anchor.
	Steps int
	// Scans is the number of descendant scans issued to the backend
	// (EvaluateTopK counts only streams the threshold actually opened).
	Scans int
	// InverseScans is the number of ancestor scans (InverseScore > 0).
	InverseScans int
	// Anchored is the initial frontier size after the first step.
	Anchored int
	// Truncated reports that cancellation stopped the evaluation before it
	// examined everything it needed: the returned matches are then a sound
	// but possibly incomplete subset of the full answer, indistinguishable
	// from a complete one by shape alone.  It may be conservatively set
	// when the cancel races the completion of the final scan.
	Truncated bool
}

func (e *Evaluator) canceled() bool {
	if e.Cancel == nil {
		return false
	}
	select {
	case <-e.Cancel:
		return true
	default:
		return false
	}
}

func (e *Evaluator) decay() float64 {
	if e.Decay <= 0 || e.Decay >= 1 {
		return 0.8
	}
	return e.Decay
}

func (e *Evaluator) minTagScore() float64 {
	if e.MinTagScore <= 0 {
		return 0.5
	}
	return e.MinTagScore
}

func (e *Evaluator) minScore() float64 {
	if e.MinScore <= 0 {
		return 0.01
	}
	return e.MinScore
}

// maxDistFor bounds a //-step's search depth: beyond it the decay pushes
// every result below MinScore anyway.
func (e *Evaluator) maxDistFor(score float64) int32 {
	d := math.Log(e.minScore()/score)/math.Log(e.decay()) + 1
	if d < 1 {
		return 1
	}
	if d > 1<<20 {
		return 0 // effectively unlimited
	}
	return int32(d)
}

// expansions returns the tags a step matches with their similarity scores.
func (e *Evaluator) expansions(s Step) []ontology.WeightedTag {
	if s.Tag == "" {
		return []ontology.WeightedTag{{Tag: "", Score: 1}}
	}
	if !s.Similar || e.Ontology == nil {
		return []ontology.WeightedTag{{Tag: s.Tag, Score: 1}}
	}
	return e.Ontology.Similar(s.Tag, e.minTagScore())
}

// matchesPred checks a step's content predicate against an element.
func (e *Evaluator) matchesPred(s Step, n xmlgraph.NodeID) bool {
	switch s.Op {
	case PredNone:
		return true
	case PredEq:
		return e.Index.Collection().Node(n).Text == s.Value
	case PredContains:
		return strings.Contains(
			strings.ToLower(e.Index.Collection().Node(n).Text),
			strings.ToLower(s.Value))
	default:
		return false
	}
}

// Evaluate runs the query and returns results ranked by descending
// relevance (ties: shorter path, then node ID).
func (e *Evaluator) Evaluate(q *Query) []Match {
	e.Stats = EvalStats{}
	frontier := e.anchor(q.Steps[0])
	for _, s := range q.Steps[1:] {
		if e.canceled() {
			e.Stats.Truncated = true
			break
		}
		frontier = e.advance(frontier, s)
		if len(frontier) == 0 {
			return nil
		}
	}
	out := make([]Match, 0, len(frontier))
	for _, m := range frontier {
		out = append(out, m)
	}
	sortMatches(out)
	if e.MaxResults > 0 && len(out) > e.MaxResults {
		out = out[:e.MaxResults]
	}
	return out
}

// sortMatches ranks by descending score, ties by shorter path then node ID.
func sortMatches(out []Match) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].PathLen != out[j].PathLen {
			return out[i].PathLen < out[j].PathLen
		}
		return out[i].Node < out[j].Node
	})
}

// anchor produces the initial frontier for the first step.
func (e *Evaluator) anchor(s Step) map[xmlgraph.NodeID]Match {
	coll := e.Index.Collection()
	frontier := make(map[xmlgraph.NodeID]Match)
	add := func(n xmlgraph.NodeID, score float64) {
		if !e.matchesPred(s, n) {
			return
		}
		if old, ok := frontier[n]; !ok || score > old.Score {
			frontier[n] = Match{Node: n, Score: score}
		}
	}
	for _, wt := range e.expansions(s) {
		switch {
		case s.Axis == Child && wt.Tag == "":
			// /*: all document roots.
			for d := 0; d < coll.NumDocs(); d++ {
				add(coll.Doc(xmlgraph.DocID(d)).Root, wt.Score)
			}
		case s.Axis == Child:
			// /tag: document roots with the tag.
			for d := 0; d < coll.NumDocs(); d++ {
				r := coll.Doc(xmlgraph.DocID(d)).Root
				if coll.Tag(r) == wt.Tag {
					add(r, wt.Score)
				}
			}
		case wt.Tag == "":
			// //*: every element.
			for n := 0; n < coll.NumNodes(); n++ {
				add(xmlgraph.NodeID(n), wt.Score)
			}
		default:
			for _, n := range coll.NodesByTag(wt.Tag) {
				add(n, wt.Score)
			}
		}
	}
	e.Stats.Anchored = len(frontier)
	return frontier
}

// advance moves the frontier across one step.
func (e *Evaluator) advance(frontier map[xmlgraph.NodeID]Match, s Step) map[xmlgraph.NodeID]Match {
	e.Stats.Steps++
	coll := e.Index.Collection()
	next := make(map[xmlgraph.NodeID]Match)
	add := func(n xmlgraph.NodeID, score float64, pathLen int32) {
		if score < e.minScore() || !e.matchesPred(s, n) {
			return
		}
		// Per node, the winner is the maximum score with ties broken by the
		// shorter path.  The tie-break makes the full ranking deterministic
		// (sortMatches orders by score, path length, node), so EvaluateTopK
		// can promise exact element-for-element prefixes of it.
		if old, ok := next[n]; !ok || score > old.Score ||
			(score == old.Score && pathLen < old.PathLen) {
			next[n] = Match{Node: n, Score: score, PathLen: pathLen}
		}
	}
	for _, wt := range e.expansions(s) {
		for _, m := range frontier {
			if e.canceled() {
				e.Stats.Truncated = true
				return next
			}
			base := m.Score * wt.Score
			if base < e.minScore() {
				continue
			}
			if s.Axis == Child {
				coll.EachSuccessor(m.Node, func(c xmlgraph.NodeID) {
					if wt.Tag == "" || coll.Tag(c) == wt.Tag {
						add(c, base, m.PathLen+1)
					}
				})
				continue
			}
			e.Stats.Scans++
			opts := flix.Options{MaxDist: e.maxDistFor(base), Cancel: e.Cancel, Tracer: e.Tracer}
			e.Index.Descendants(m.Node, wt.Tag, opts, func(r flix.Result) bool {
				score := base
				if r.Dist > 1 {
					score *= math.Pow(e.decay(), float64(r.Dist-1))
				}
				add(r.Node, score, m.PathLen+r.Dist)
				return true
			})
			if e.InverseScore > 0 && e.InverseScore < 1 {
				invBase := base * e.InverseScore
				if invBase < e.minScore() {
					continue
				}
				e.Stats.InverseScans++
				invOpts := flix.Options{MaxDist: e.maxDistFor(invBase), Cancel: e.Cancel, Tracer: e.Tracer}
				e.Index.Ancestors(m.Node, wt.Tag, invOpts, func(r flix.Result) bool {
					score := invBase
					if r.Dist > 1 {
						score *= math.Pow(e.decay(), float64(r.Dist-1))
					}
					add(r.Node, score, m.PathLen+r.Dist)
					return true
				})
			}
		}
	}
	if e.canceled() {
		// The Cancel channel is threaded into every scan, so a cancel may
		// have cut the final scan short with no later loop iteration left
		// to notice it.
		e.Stats.Truncated = true
	}
	return next
}
