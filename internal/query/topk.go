package query

import (
	"math"
	"sort"
	"sync"

	"repro/internal/flix"
	"repro/internal/xmlgraph"
)

// This file is the allocation-disciplined ranked top-k evaluator: the
// threshold algorithm of §3.1 ("stop the execution when it can determine
// that it has produced the top k results ... similar to Fagin's threshold
// algorithm with only sequential reads") rebuilt in the style of the PR 5
// hot path.  Relative to the frozen ReferenceEvaluateTopK it changes four
// things:
//
//   - Streams pull candidates in bounded distance bands through the
//     resumable flix.Probe instead of materializing each stream's complete
//     result set: a stream touched once near the threshold fetches only its
//     nearest band, and the expensive far links are never followed for
//     streams the threshold retires early.
//   - The per-candidate full top-k heap rebuild (quadratic in candidates)
//     is an incremental indexed heap: O(log k) per accepted candidate.
//   - The per-candidate math.Pow decay is a table lookup (the table entries
//     themselves are math.Pow values, so scores stay bit-identical to the
//     full evaluator's).
//   - All per-query state — streams, their buffers, both heaps, the decay
//     table — lives in a pooled topkScratch; steady state allocates only
//     the returned slice and the sort.
//
// Exactness contract (locked down by the differential suite): for every
// query and k, EvaluateTopK(q, k) equals the first min(k, n) elements of
// the full evaluator's deterministic ranking — same nodes, same scores,
// same path lengths, same order.  Two design points make that exact rather
// than merely "top-k up to ties": the per-node winner rule is shared with
// advance (max score, ties to the shorter path), and the threshold stop is
// strict — the scan only stops when the k-th collected score is strictly
// above every stream's bound, so candidates tying the k-th score are still
// examined and the tie is resolved by the same total order sortMatches
// uses.

// bandedBackend is the optional Backend capability the top-k streams
// prefer: a resumable probe pulling descendants in bounded distance bands.
// *flix.Index implements it; backends without it — the scatter-gather
// router evaluates each scan across the cluster — fall back to buffered
// full-fetch streams, which keep the pooling, the decay table and the
// incremental heap but not the banded early exit.
type bandedBackend interface {
	StartProbe(p *flix.Probe, start xmlgraph.NodeID, tag string, opts flix.Options)
}

var _ bandedBackend = (*flix.Index)(nil)

// maxDecayTab bounds the precomputed decay table; distances beyond it fall
// back to math.Pow (only reachable with a decay very close to 1).
const maxDecayTab = 64

// topkScratch pools the per-query state of EvaluateTopK.  The pool is
// package-level rather than per-Evaluator because server handlers build a
// fresh Evaluator per request; the scratch must outlive them to be warm.
type topkScratch struct {
	streams []resultStream
	heap    []int32 // stream indices, max-heap by curScore
	topk    topkHeap

	// decayTab[d] = decay^(d-1) for the decay it was built for.  Entries
	// are computed with math.Pow, not iterated multiplication: candidate
	// scores must equal the full evaluator's per-candidate math.Pow bit
	// for bit or the differential equality fails on ULPs.
	decay    float64
	decayTab []float64
}

var topkPool = sync.Pool{New: func() any { return new(topkScratch) }}

func (ts *topkScratch) ensureDecay(decay float64) {
	if ts.decay != decay {
		ts.decayTab = ts.decayTab[:0]
		ts.decay = decay
	}
	for d := len(ts.decayTab); d <= maxDecayTab; d++ {
		ts.decayTab = append(ts.decayTab, math.Pow(decay, float64(d-1)))
	}
}

// score is the relevance of a candidate at distance dist on a stream with
// the given base score.
func (ts *topkScratch) score(base float64, dist int32) float64 {
	if dist <= 1 {
		return base
	}
	if int(dist) <= maxDecayTab {
		return base * ts.decayTab[dist]
	}
	return base * math.Pow(ts.decay, float64(dist-1))
}

// addStream appends a stream, reusing the pooled element (probe frontier,
// band buffer) when the backing array still has capacity.
func (ts *topkScratch) addStream(from Match, tag string, base float64, maxDist int32, banded, inverse bool) {
	var s *resultStream
	if n := len(ts.streams); n < cap(ts.streams) {
		ts.streams = ts.streams[:n+1]
		s = &ts.streams[n]
	} else {
		ts.streams = append(ts.streams, resultStream{})
		s = &ts.streams[len(ts.streams)-1]
	}
	s.from, s.tag, s.base, s.maxDist = from, tag, base, maxDist
	s.banded, s.inverse = banded, inverse
	s.band, s.opened, s.done = 0, false, false
	s.buf, s.pos = s.buf[:0], 0
	s.hasCand = false
	// Until the stream is opened its bound is the base score: the nearest
	// possible candidate (distance <= 1) scores exactly base.
	s.curScore = base
}

// release returns the scratch to the pool, closing probes the early stop
// abandoned mid-band so their work still reaches the index counters.
func (ts *topkScratch) release() {
	for i := range ts.streams {
		s := &ts.streams[i]
		if s.banded && s.opened && !s.done {
			s.probe.Close()
		}
	}
	ts.streams = ts.streams[:0]
	ts.heap = ts.heap[:0]
	ts.topk.reset()
	topkPool.Put(ts)
}

// resultStream pulls one (frontier element, tag expansion) stream of the
// last step, exposing candidates in descending score order.  Banded streams
// resume a flix.Probe one distance band at a time; buffered streams (the
// Backend fallback and the InverseScore ancestor streams) fetch everything
// on first touch.
type resultStream struct {
	from    Match
	tag     string
	base    float64
	maxDist int32
	banded  bool
	inverse bool

	probe  flix.Probe
	band   int32 // highest band already drained from the probe
	opened bool
	done   bool // no further candidates will ever arrive

	buf []flix.Result // pending candidates in ascending (dist, node)
	pos int

	curNode xmlgraph.NodeID
	curDist int32
	// curScore is the current candidate's exact score when hasCand, else
	// an upper bound on everything the stream can still produce.
	curScore float64
	hasCand  bool

	// emitFn is the bound appendResult, rebound only when the stream's
	// address changes (the pooled backing array was regrown).
	emitFn func(flix.Result) bool
	self   *resultStream
}

func (s *resultStream) appendResult(r flix.Result) bool {
	s.buf = append(s.buf, r)
	return true
}

// cursor advances the stream to its next candidate, or to the bound state
// for the unfetched remainder.
func (ts *topkScratch) cursor(s *resultStream) {
	if s.pos < len(s.buf) {
		r := s.buf[s.pos]
		s.pos++
		s.curNode, s.curDist = r.Node, r.Dist
		s.curScore = ts.score(s.base, r.Dist)
		s.hasCand = true
		return
	}
	s.hasCand = false
	if !s.done {
		// Everything not yet fetched is beyond the drained band.
		s.curScore = ts.score(s.base, s.band+1)
	}
}

// fetchStream opens or resumes a stream: the next probe band for banded
// streams, the complete buffered result set otherwise.
func (e *Evaluator) fetchStream(ts *topkScratch, s *resultStream, bb bandedBackend) {
	if s.self != s {
		s.self = s
		s.emitFn = s.appendResult
	}
	if !s.banded {
		s.opened, s.done = true, true
		opts := flix.Options{MaxDist: s.maxDist, Cancel: e.Cancel, Tracer: e.Tracer}
		if s.inverse {
			e.Stats.InverseScans++
			e.Index.Ancestors(s.from.Node, s.tag, opts, s.emitFn)
		} else {
			e.Stats.Scans++
			e.Index.Descendants(s.from.Node, s.tag, opts, s.emitFn)
		}
		// FliX streams only approximately distance-ordered across meta
		// documents; per-stream score monotonicity needs ascending dist.
		sort.Slice(s.buf, func(i, j int) bool {
			if s.buf[i].Dist != s.buf[j].Dist {
				return s.buf[i].Dist < s.buf[j].Dist
			}
			return s.buf[i].Node < s.buf[j].Node
		})
		ts.cursor(s)
		return
	}
	if !s.opened {
		s.opened = true
		e.Stats.Scans++
		bb.StartProbe(&s.probe, s.from.Node, s.tag,
			flix.Options{MaxDist: s.maxDist, Cancel: e.Cancel, Tracer: e.Tracer})
	}
	s.buf, s.pos = s.buf[:0], 0
	s.band = flix.NextBand(s.band, s.maxDist)
	if !s.probe.Next(s.band, s.emitFn) {
		s.done = true
		if s.probe.Truncated() {
			e.Stats.Truncated = true
		}
		s.probe.Close()
	}
	ts.cursor(s)
}

// Stream-index heap: a hand-rolled binary max-heap over curScore, ties to
// the lower index for a deterministic consumption order.
func (ts *topkScratch) hless(i, j int32) bool {
	si, sj := &ts.streams[i], &ts.streams[j]
	if si.curScore != sj.curScore {
		return si.curScore > sj.curScore
	}
	return i < j
}

func (ts *topkScratch) hinit() {
	for i := int32(len(ts.heap))/2 - 1; i >= 0; i-- {
		ts.hdown(i)
	}
}

func (ts *topkScratch) hdown(i int32) {
	h := ts.heap
	n := int32(len(h))
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && ts.hless(h[l], h[m]) {
			m = l
		}
		if r < n && ts.hless(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// hfix restores heap order after the root stream's curScore changed (it can
// only have decreased).
func (ts *topkScratch) hfix() { ts.hdown(0) }

// hpop removes the root stream.
func (ts *topkScratch) hpop() {
	h := ts.heap
	n := len(h) - 1
	h[0] = h[n]
	ts.heap = h[:n]
	ts.hdown(0)
}

// topkHeap is the incremental indexed top-k heap replacing the frozen
// refMatchHeap.rebuild: a min-heap whose root is the worst of the current
// k best per-node candidates under the full sortMatches order, plus a
// node→slot index so an in-heap candidate improves in place.
//
// Evicted nodes need no tombstones: the root is the minimum of the heap
// under the total order and per-node bests only ever improve, so a node
// evicted as the worst of k+1 can only re-enter by beating the (monotone
// non-decreasing) root — the plain insert path handles it.
type topkHeap struct {
	a   []Match
	pos map[xmlgraph.NodeID]int32
}

// worseMatch reports whether a ranks strictly after b in the final output
// order (sortMatches: score desc, path length asc, node asc).
func worseMatch(a, b Match) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	if a.PathLen != b.PathLen {
		return a.PathLen > b.PathLen
	}
	return a.Node > b.Node
}

func (h *topkHeap) reset() {
	h.a = h.a[:0]
	if h.pos == nil {
		h.pos = make(map[xmlgraph.NodeID]int32)
	} else {
		clear(h.pos)
	}
}

// consider offers one candidate: improve it in place if its node already
// holds a slot, insert it while the heap is short, else evict the current
// worst when the candidate beats it.
func (h *topkHeap) consider(cand Match, k int) {
	if i, ok := h.pos[cand.Node]; ok {
		old := h.a[i]
		// Same per-node winner rule as advance: max score, then the
		// shorter path.
		if cand.Score > old.Score || (cand.Score == old.Score && cand.PathLen < old.PathLen) {
			h.a[i] = cand
			h.down(i) // improving moves a slot away from the worst root
		}
		return
	}
	if len(h.a) < k {
		h.a = append(h.a, cand)
		i := int32(len(h.a) - 1)
		h.pos[cand.Node] = i
		h.up(i)
		return
	}
	if !worseMatch(h.a[0], cand) {
		return // not better than the current k-th
	}
	delete(h.pos, h.a[0].Node)
	h.a[0] = cand
	h.pos[cand.Node] = 0
	h.down(0)
}

func (h *topkHeap) swap(i, j int32) {
	h.a[i], h.a[j] = h.a[j], h.a[i]
	h.pos[h.a[i].Node] = i
	h.pos[h.a[j].Node] = j
}

func (h *topkHeap) up(i int32) {
	for i > 0 {
		p := (i - 1) / 2
		if !worseMatch(h.a[i], h.a[p]) {
			return
		}
		h.swap(i, p)
		i = p
	}
}

func (h *topkHeap) down(i int32) {
	n := int32(len(h.a))
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && worseMatch(h.a[l], h.a[m]) {
			m = l
		}
		if r < n && worseMatch(h.a[r], h.a[m]) {
			m = r
		}
		if m == i {
			return
		}
		h.swap(i, m)
		i = m
	}
}

// EvaluateTopK evaluates the query and returns exactly the first
// min(k, n) elements of the full evaluator's ranking, stopping the
// underlying index scans early in the style of Fagin's threshold algorithm
// with sorted access only.  MaxResults is ignored — k is the truncation.
// A cancellation mid-scan returns the matches ranked so far and sets
// Stats.Truncated.
//
// For every step but the last, evaluation proceeds as in Evaluate.  The
// last step opens one candidate stream per (frontier element, tag
// expansion) pair — plus one ancestor stream per pair when InverseScore is
// set.  Each stream delivers candidates in descending score (FliX streams
// descendants in ascending distance and the decay is monotone in
// distance), so a stream's next candidate — or, for its unfetched banded
// remainder, the decayed score one past the drained band — bounds
// everything it can still produce.  Streams are consumed best-first; the
// scan stops when the k-th best collected score strictly exceeds every
// remaining bound.
func (e *Evaluator) EvaluateTopK(q *Query, k int) []Match {
	if k <= 0 {
		return nil
	}
	if len(q.Steps) == 1 {
		// The fast path delegates to Evaluate (which resets e.Stats like
		// the streamed path does) with MaxResults bypassed, so a
		// MaxResults below k cannot silently shrink the answer; out is in
		// sortMatches order, so out[:k] is exactly the top-k prefix.
		saved := e.MaxResults
		e.MaxResults = 0
		out := e.Evaluate(q)
		e.MaxResults = saved
		if len(out) > k {
			out = out[:k]
		}
		return out
	}
	e.Stats = EvalStats{}
	frontier := e.anchor(q.Steps[0])
	for _, s := range q.Steps[1 : len(q.Steps)-1] {
		frontier = e.advance(frontier, s)
		if len(frontier) == 0 {
			return nil
		}
	}
	last := q.Steps[len(q.Steps)-1]
	if last.Axis == Child {
		// The child axis has no distance decay to exploit; fall back to
		// full evaluation of the final step.
		final := e.advance(frontier, last)
		return topOf(final, k)
	}
	e.Stats.Steps++ // the streamed last step (advance counts the others)

	bb, _ := e.Index.(bandedBackend)
	ts := topkPool.Get().(*topkScratch)
	defer ts.release()
	ts.ensureDecay(e.decay())

	minScore := e.minScore()
	inverse := e.InverseScore > 0 && e.InverseScore < 1
	for _, wt := range e.expansions(last) {
		for _, m := range frontier {
			base := m.Score * wt.Score
			if base < minScore {
				continue
			}
			ts.addStream(m, wt.Tag, base, e.maxDistFor(base), bb != nil, false)
			if inverse {
				if invBase := base * e.InverseScore; invBase >= minScore {
					ts.addStream(m, wt.Tag, invBase, e.maxDistFor(invBase), false, true)
				}
			}
		}
	}
	for i := range ts.streams {
		ts.heap = append(ts.heap, int32(i))
	}
	ts.hinit()
	ts.topk.reset()

	for len(ts.heap) > 0 {
		if e.canceled() {
			e.Stats.Truncated = true
			break
		}
		s := &ts.streams[ts.heap[0]]
		// Threshold test, strict: stopping on a tie could drop an unseen
		// candidate that ties the k-th score but wins on path length.
		if len(ts.topk.a) >= k && ts.topk.a[0].Score > s.curScore {
			break
		}
		if !s.hasCand {
			if !s.done {
				e.fetchStream(ts, s, bb)
			}
			if s.done && !s.hasCand {
				ts.hpop()
			} else {
				ts.hfix()
			}
			continue
		}
		cand := Match{Node: s.curNode, Score: s.curScore, PathLen: s.from.PathLen + s.curDist}
		ts.cursor(s)
		if s.done && !s.hasCand {
			ts.hpop()
		} else {
			ts.hfix()
		}
		// The minScore filter mirrors advance's: maxDistFor truncates to
		// whole edges, so a candidate at the boundary distance can still
		// decay just below MinScore.
		if cand.Score < minScore || !e.matchesPred(last, cand.Node) {
			continue
		}
		ts.topk.consider(cand, k)
	}

	out := make([]Match, len(ts.topk.a))
	copy(out, ts.topk.a)
	sortMatches(out)
	return out
}

func topOf(m map[xmlgraph.NodeID]Match, k int) []Match {
	out := make([]Match, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	return topOf2(out, k)
}

func topOf2(out []Match, k int) []Match {
	sortMatches(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}
