package query

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/flix"
	"repro/internal/xmlgraph"
)

// EvaluateTopK evaluates the query and returns the k best results, stopping
// the underlying index scans early in the style of Fagin's threshold
// algorithm with sorted access only (§3.1 of the FliX paper: the search
// engine "may even stop the execution when it can determine that it has
// produced the top k results, e.g., using an algorithm similar to Fagin's
// threshold algorithm with only sequential reads").
//
// For every step but the last, evaluation proceeds as in Evaluate.  The
// last step then opens one result stream per (frontier element, tag
// expansion) pair.  Each stream delivers candidates in descending score —
// FliX streams descendants in ascending distance, and the relevance decay
// is monotone in distance — so the maximum score any stream can still
// produce is the score of its next candidate.  Streams are consumed
// best-first; as soon as the k-th best collected score is at least the best
// possible remaining score, no stream can improve the answer and the scan
// stops.
func (e *Evaluator) EvaluateTopK(q *Query, k int) []Match {
	if k <= 0 {
		return nil
	}
	e.Stats = EvalStats{}
	if len(q.Steps) == 1 {
		out := e.Evaluate(q)
		if len(out) > k {
			out = out[:k]
		}
		return out
	}
	frontier := e.anchor(q.Steps[0])
	for _, s := range q.Steps[1 : len(q.Steps)-1] {
		frontier = e.advance(frontier, s)
		if len(frontier) == 0 {
			return nil
		}
	}
	last := q.Steps[len(q.Steps)-1]
	if last.Axis == Child {
		// The child axis has no distance decay to exploit; fall back to
		// full evaluation of the final step.
		final := e.advance(frontier, last)
		return topOf(final, k)
	}
	e.Stats.Steps++ // the streamed last step (advance counts the others)

	// One lazily pulled stream per (frontier element, expansion).
	var streams []*resultStream
	for _, wt := range e.expansions(last) {
		for _, m := range frontier {
			base := m.Score * wt.Score
			if base < e.minScore() {
				continue
			}
			streams = append(streams, e.newStream(m, wt.Tag, base))
		}
	}
	// Seed the heap with per-stream upper bounds (the base score is the
	// score of a hypothetical distance-1 result); a stream is only
	// materialized when it reaches the heap top, so streams the threshold
	// prunes are never evaluated at all.
	h := make(streamHeap, 0, len(streams))
	for _, s := range streams {
		s.curScore = s.base
		h = append(h, s)
	}
	heap.Init(&h)

	best := make(map[xmlgraph.NodeID]Match)
	collected := &matchHeap{} // min-heap of the current top k scores
	for h.Len() > 0 && !e.canceled() {
		// Threshold test: the head's current score is an upper bound on
		// anything any remaining stream can still produce.
		if collected.Len() >= k && (*collected)[0].Score >= h[0].curScore {
			break
		}
		s := h[0]
		if !s.fetched {
			// Materialize lazily; the first real candidate usually
			// scores below the upper bound, so re-establish heap order
			// before consuming anything.
			if s.next() {
				heap.Fix(&h, 0)
			} else {
				heap.Pop(&h)
			}
			continue
		}
		cand := Match{Node: s.curNode, Score: s.curScore, PathLen: s.curPathLen}
		if s.next() {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
		if !e.matchesPred(last, cand.Node) {
			continue
		}
		if old, ok := best[cand.Node]; ok && old.Score >= cand.Score {
			continue
		}
		best[cand.Node] = cand
		// Maintain the top-k score heap over distinct nodes.
		collected.rebuild(best, k)
	}
	out := make([]Match, 0, len(best))
	for _, m := range best {
		out = append(out, m)
	}
	return topOf2(out, k)
}

// resultStream pulls one (frontier element, tag) descendant stream in
// batches, exposing candidates in descending score order.
type resultStream struct {
	e       *Evaluator
	from    Match
	tag     string
	base    float64
	maxDist int32

	buf []flix.Result
	pos int

	curNode    xmlgraph.NodeID
	curScore   float64
	curPathLen int32
	fetched    bool
}

func (e *Evaluator) newStream(from Match, tag string, base float64) *resultStream {
	return &resultStream{
		e:       e,
		from:    from,
		tag:     tag,
		base:    base,
		maxDist: e.maxDistFor(base),
	}
}

// next advances to the next candidate; false when exhausted.  The whole
// stream is materialized on first use — FliX's evaluation is
// callback-driven, so the "sorted access" is over the buffered, already
// approximately distance-ordered results.  Buffering one stream at a time
// keeps peak memory at one result set, and unneeded streams (pruned by the
// threshold) are never fetched at all.
func (s *resultStream) next() bool {
	if !s.fetched {
		s.fetched = true
		s.e.Stats.Scans++
		s.e.Index.Descendants(s.from.Node, s.tag, flix.Options{MaxDist: s.maxDist, Cancel: s.e.Cancel, Tracer: s.e.Tracer},
			func(r flix.Result) bool {
				s.buf = append(s.buf, r)
				return true
			})
		// FliX streams only approximately distance-ordered across meta
		// documents; the threshold test needs strict per-stream score
		// monotonicity, so sort the batch by ascending distance.
		sort.Slice(s.buf, func(i, j int) bool {
			if s.buf[i].Dist != s.buf[j].Dist {
				return s.buf[i].Dist < s.buf[j].Dist
			}
			return s.buf[i].Node < s.buf[j].Node
		})
	}
	if s.pos >= len(s.buf) {
		return false
	}
	r := s.buf[s.pos]
	s.pos++
	s.curNode = r.Node
	s.curScore = s.base
	if r.Dist > 1 {
		s.curScore *= math.Pow(s.e.decay(), float64(r.Dist-1))
	}
	s.curPathLen = s.from.PathLen + r.Dist
	return true
}

// streamHeap is a max-heap over current candidate scores.
type streamHeap []*resultStream

func (h streamHeap) Len() int           { return len(h) }
func (h streamHeap) Less(i, j int) bool { return h[i].curScore > h[j].curScore }
func (h streamHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *streamHeap) Push(x any)        { *h = append(*h, x.(*resultStream)) }
func (h *streamHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}

// matchHeap tracks the k-th best score cheaply.
type matchHeap []Match

func (h matchHeap) Len() int           { return len(h) }
func (h matchHeap) Less(i, j int) bool { return h[i].Score < h[j].Score }
func (h matchHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *matchHeap) Push(x any)        { *h = append(*h, x.(Match)) }
func (h *matchHeap) Pop() any {
	old := *h
	n := len(old)
	m := old[n-1]
	*h = old[:n-1]
	return m
}

// rebuild refreshes the top-k heap from the distinct-node score map.  The
// map stays small (bounded by results seen), so a full rebuild keeps the
// logic simple; callers invoke it once per accepted candidate.
func (h *matchHeap) rebuild(best map[xmlgraph.NodeID]Match, k int) {
	*h = (*h)[:0]
	for _, m := range best {
		heap.Push(h, m)
		if h.Len() > k {
			heap.Pop(h)
		}
	}
}

func topOf(m map[xmlgraph.NodeID]Match, k int) []Match {
	out := make([]Match, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	return topOf2(out, k)
}

func topOf2(out []Match, k int) []Match {
	sortMatches(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}
