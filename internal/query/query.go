// Package query implements the path-expression language of the FliX paper
// and its evaluation on top of a flix.Index.
//
// The grammar follows the paper's notation (§1.1, §5): steps are separated
// by / (child axis) or // (descendants-or-self axis); a step is an element
// name, the wildcard *, or a name prefixed with ~ for ontology-based
// semantic vagueness; a step may carry a content predicate in brackets:
//
//	//movie[title~"Matrix"]//actor//movie
//	/dblp/article/author
//	//~movie//actor
//
// Supported predicates: [text="exact"] and [text~"substring"] (the latter
// is the paper's ≈ operator restricted to substring containment).
//
// Evaluation follows the XXL scoring model: results carry a relevance score
// that decays with path length (structural vagueness) and with ontology
// similarity (semantic vagueness).
package query

import (
	"fmt"
	"strings"
)

// Axis is the relation between consecutive steps.
type Axis int

const (
	// Child is the / axis: direct successors in the data graph (tree
	// children and direct link targets, following the paper's view that
	// linked elements are treated like children).
	Child Axis = iota
	// Descendant is the // axis.
	Descendant
)

// String implements fmt.Stringer.
func (a Axis) String() string {
	if a == Child {
		return "/"
	}
	return "//"
}

// PredOp is a content predicate operator.
type PredOp int

const (
	// PredNone means the step has no predicate.
	PredNone PredOp = iota
	// PredEq is [text="exact"].
	PredEq
	// PredContains is [text~"substring"] (case-insensitive).
	PredContains
)

// Step is one location step.
type Step struct {
	// Axis relates this step to the previous one.  The first step's axis
	// describes its anchoring: / matches document roots only, // matches
	// elements anywhere.
	Axis Axis
	// Tag is the element name; empty means the wildcard *.
	Tag string
	// Similar marks the ~name form: the ontology expands the tag.
	Similar bool
	// Op and Value form the optional content predicate.
	Op    PredOp
	Value string
}

// Query is a parsed path expression.
type Query struct {
	Steps []Step
}

// String renders the query back to its surface syntax.
func (q *Query) String() string {
	var b strings.Builder
	for _, s := range q.Steps {
		b.WriteString(s.Axis.String())
		if s.Similar {
			b.WriteByte('~')
		}
		if s.Tag == "" {
			b.WriteByte('*')
		} else {
			b.WriteString(s.Tag)
		}
		// Predicate values are rendered verbatim: the grammar has no
		// escape sequences, so a parsed value can never contain a
		// quote and round-trips exactly.
		switch s.Op {
		case PredEq:
			fmt.Fprintf(&b, `[text="%s"]`, s.Value)
		case PredContains:
			fmt.Fprintf(&b, `[text~"%s"]`, s.Value)
		}
	}
	return b.String()
}

// Relax returns a copy of the query with every child axis relaxed to the
// descendants-or-self axis — the structural vagueness transformation of
// §1.1 (movie/actor becomes movie//actor).
func (q *Query) Relax() *Query {
	out := &Query{Steps: make([]Step, len(q.Steps))}
	copy(out.Steps, q.Steps)
	for i := range out.Steps {
		out.Steps[i].Axis = Descendant
	}
	return out
}

// Parse parses a path expression.
func Parse(input string) (*Query, error) {
	p := &parser{in: input}
	q, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	return q, nil
}

type parser struct {
	in  string
	pos int
}

func (p *parser) parse() (*Query, error) {
	q := &Query{}
	if len(p.in) == 0 {
		return nil, fmt.Errorf("empty expression")
	}
	for p.pos < len(p.in) {
		axis, err := p.axis(len(q.Steps) == 0)
		if err != nil {
			return nil, err
		}
		step, err := p.step()
		if err != nil {
			return nil, err
		}
		step.Axis = axis
		q.Steps = append(q.Steps, step)
	}
	if len(q.Steps) == 0 {
		return nil, fmt.Errorf("no steps")
	}
	return q, nil
}

func (p *parser) axis(first bool) (Axis, error) {
	if !strings.HasPrefix(p.in[p.pos:], "/") {
		if first {
			// A bare leading name is shorthand for //name.
			return Descendant, nil
		}
		return 0, fmt.Errorf("position %d: expected / or //", p.pos)
	}
	p.pos++
	if strings.HasPrefix(p.in[p.pos:], "/") {
		p.pos++
		return Descendant, nil
	}
	return Child, nil
}

func (p *parser) step() (Step, error) {
	var s Step
	if p.pos < len(p.in) && p.in[p.pos] == '~' {
		s.Similar = true
		p.pos++
	}
	if p.pos < len(p.in) && p.in[p.pos] == '*' {
		if s.Similar {
			return s, fmt.Errorf("position %d: ~* is not meaningful", p.pos)
		}
		p.pos++
	} else {
		start := p.pos
		for p.pos < len(p.in) && isNameChar(p.in[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			return s, fmt.Errorf("position %d: expected element name or *", p.pos)
		}
		s.Tag = p.in[start:p.pos]
	}
	if p.pos < len(p.in) && p.in[p.pos] == '[' {
		if err := p.predicate(&s); err != nil {
			return s, err
		}
	}
	return s, nil
}

func (p *parser) predicate(s *Step) error {
	p.pos++ // consume [
	if !strings.HasPrefix(p.in[p.pos:], "text") {
		return fmt.Errorf("position %d: only text predicates are supported", p.pos)
	}
	p.pos += len("text")
	if p.pos >= len(p.in) {
		return fmt.Errorf("truncated predicate")
	}
	switch p.in[p.pos] {
	case '=':
		s.Op = PredEq
	case '~':
		s.Op = PredContains
	default:
		return fmt.Errorf("position %d: expected = or ~", p.pos)
	}
	p.pos++
	if p.pos >= len(p.in) || p.in[p.pos] != '"' {
		return fmt.Errorf("position %d: expected quoted value", p.pos)
	}
	p.pos++
	end := strings.IndexByte(p.in[p.pos:], '"')
	if end < 0 {
		return fmt.Errorf("unterminated string in predicate")
	}
	s.Value = p.in[p.pos : p.pos+end]
	p.pos += end + 1
	if p.pos >= len(p.in) || p.in[p.pos] != ']' {
		return fmt.Errorf("position %d: expected ]", p.pos)
	}
	p.pos++
	return nil
}

func isNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '-' || c == '_' || c == '.' || c == ':'
}
