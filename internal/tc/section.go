package tc

// v2 snapshot section codec.  The forward postings are stored as
// interleaved (node, dist) int32 pairs behind a prefix-offset table, so
// OpenSection aliases the snapshot bytes directly as []posting rows — the
// resulting *Index is the heap type and runs the unmodified probe code.
// The reverse postings stay derived data, built lazily on first reverse
// query exactly as after a heap build.
//
//	u32 n, u32 total
//	rowOff []u32 n+1      (element offsets, end = total)
//	8-aligned
//	pairs  []int32 2×total (interleaved node, dist per posting)

import (
	"fmt"
	"unsafe"

	"repro/internal/lgraph"
	"repro/internal/pathindex"
	"repro/internal/storage"
)

// SectionKind implements storage.SectionEncoder.
func (idx *Index) SectionKind() uint32 { return storage.SectionTC }

// EncodeSection implements storage.SectionEncoder.
func (idx *Index) EncodeSection(sw *storage.SnapshotWriter) {
	n := len(idx.fwd)
	offs := make([]uint32, n+1)
	for i, row := range idx.fwd {
		offs[i+1] = offs[i] + uint32(len(row))
	}
	sw.U32(uint32(n))
	sw.U32(offs[n])
	sw.U32s(offs)
	sw.Align(8)
	for _, row := range idx.fwd {
		sw.I32s(postingWords(row))
	}
}

// postingWords reinterprets a posting row as its int32 representation;
// posting is exactly two int32 fields, so the layouts coincide.
func postingWords(row []posting) []int32 {
	if len(row) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&row[0])), len(row)*2)
}

// OpenSection reconstructs an Index whose rows alias the section bytes.
// One scan validates node ranges and per-row ordering (ascending node IDs,
// the invariant the binary-search probes rely on); nothing is copied.
func OpenSection(g *lgraph.LGraph, data []byte) (pathindex.Index, error) {
	d := storage.NewSectionData(data)
	n := int(d.U32())
	total := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n != g.NumNodes() {
		return nil, fmt.Errorf("tc: section has %d nodes, graph %d", n, g.NumNodes())
	}
	if int64(total) > int64(n)*int64(n) {
		return nil, fmt.Errorf("tc: %d postings for %d nodes", total, n)
	}
	offs := d.PrefixOffsets(n, uint32(total))
	d.Align(8)
	flat := d.I32s(2 * total)
	if err := d.Err(); err != nil {
		return nil, err
	}
	var pairs []posting
	if total > 0 {
		pairs = unsafe.Slice((*posting)(unsafe.Pointer(&flat[0])), total)
	}
	idx := &Index{g: g, fwd: make([][]posting, n)}
	for u := 0; u < n; u++ {
		row := pairs[offs[u]:offs[u+1]:offs[u+1]]
		prev := int32(-1)
		for _, p := range row {
			if p.node <= prev || int(p.node) >= n || p.dist < 0 {
				return nil, fmt.Errorf("tc: row %d corrupt at node %d", u, p.node)
			}
			prev = p.node
		}
		idx.fwd[u] = row
	}
	return idx, nil
}
