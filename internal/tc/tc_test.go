package tc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/lgraph"
	"repro/internal/storage"
)

func buildDiamond(t testing.TB) (*lgraph.LGraph, *Index) {
	t.Helper()
	b := lgraph.NewBuilder()
	for _, tag := range []string{"a", "b", "c", "b"} {
		b.AddNode(tag)
	}
	for _, e := range [][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Finish()
	return g, Build(g)
}

func TestReachableDistance(t *testing.T) {
	_, idx := buildDiamond(t)
	if !idx.Reachable(0, 3) || idx.Reachable(3, 0) {
		t.Error("reachability wrong")
	}
	if d, ok := idx.Distance(0, 3); !ok || d != 2 {
		t.Errorf("Distance(0,3) = %d,%t", d, ok)
	}
	if d, ok := idx.Distance(1, 1); !ok || d != 0 {
		t.Errorf("Distance(1,1) = %d,%t", d, ok)
	}
	if _, ok := idx.Distance(1, 2); ok {
		t.Error("1 must not reach 2")
	}
}

func TestPairs(t *testing.T) {
	_, idx := buildDiamond(t)
	// 0: {0,1,2,3}, 1: {1,3}, 2: {2,3}, 3: {3} => 9 pairs.
	if got := idx.Pairs(); got != 9 {
		t.Errorf("Pairs = %d, want 9", got)
	}
}

func TestEnumeration(t *testing.T) {
	g, idx := buildDiamond(t)
	var nodes, dists []int32
	idx.EachReachable(0, func(n, d int32) bool {
		nodes = append(nodes, n)
		dists = append(dists, d)
		return true
	})
	if !reflect.DeepEqual(nodes, []int32{0, 1, 2, 3}) || !reflect.DeepEqual(dists, []int32{0, 1, 1, 2}) {
		t.Errorf("EachReachable = %v %v", nodes, dists)
	}
	nodes = nil
	idx.EachReachableByTag(0, g.TagOf("b"), func(n, d int32) bool {
		nodes = append(nodes, n)
		return true
	})
	if !reflect.DeepEqual(nodes, []int32{1, 3}) {
		t.Errorf("EachReachableByTag = %v", nodes)
	}
	nodes = nil
	idx.EachReaching(3, func(n, d int32) bool {
		nodes = append(nodes, n)
		return true
	})
	if !reflect.DeepEqual(nodes, []int32{3, 1, 2, 0}) {
		t.Errorf("EachReaching(3) = %v", nodes)
	}
	nodes = nil
	idx.EachReachingByTag(3, g.TagOf("a"), func(n, d int32) bool {
		nodes = append(nodes, n)
		return true
	})
	if !reflect.DeepEqual(nodes, []int32{0}) {
		t.Errorf("EachReachingByTag(3, a) = %v", nodes)
	}
}

func TestWriteTo(t *testing.T) {
	_, idx := buildDiamond(t)
	n, err := storage.SizeOf(idx)
	if err != nil || n <= 0 {
		t.Errorf("SizeOf = %d, %v", n, err)
	}
}

func TestPropertyMatchesBFS(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := lgraph.NewBuilder()
		for i := 0; i < n; i++ {
			b.AddNode("t")
		}
		for e := rng.Intn(3 * n); e > 0; e-- {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Finish()
		idx := Build(g)
		x := int32(rng.Intn(n))
		dist := g.BFSDistances(x, false)
		for y := int32(0); y < int32(n); y++ {
			d, ok := idx.Distance(x, y)
			if ok != (dist[y] >= 0) {
				return false
			}
			if ok && d != dist[y] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
