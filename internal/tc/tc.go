// Package tc materializes the full transitive closure with distances.
//
// The closure is the brute-force baseline of the FliX experiments: queries
// are trivial lookups, but the stored size grows with the number of
// reachable pairs — Table 1's observation is that HOPI stays more than an
// order of magnitude smaller.  The package doubles as the exact oracle for
// the approximate result-order measurements (experiment E-err).
package tc

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/lgraph"
	"repro/internal/pathindex"
	"repro/internal/storage"
)

// Index stores, for every node, the sorted postings of reachable nodes with
// shortest-path distances.
type Index struct {
	g *lgraph.LGraph

	// fwd[u] lists (node, dist) pairs reachable from u, sorted by node;
	// every node reaches itself at distance 0.
	fwd [][]posting
	// rev[v] lists the nodes reaching v; built lazily on first reverse
	// query and then cached (revOnce keeps that safe for concurrent
	// queries).
	revOnce sync.Once
	rev     [][]posting
}

type posting struct {
	node int32
	dist int32
}

var _ pathindex.Index = (*Index)(nil)

// Strategy is the registry entry for the transitive closure.
var Strategy = pathindex.Strategy{
	Name:  "tc",
	Build: func(g *lgraph.LGraph) (pathindex.Index, error) { return Build(g), nil },
}

// Build runs one BFS per node.  The cost is output-sensitive: proportional
// to the number of reachable pairs.
func Build(g *lgraph.LGraph) *Index {
	n := g.NumNodes()
	idx := &Index{g: g, fwd: make([][]posting, n)}
	for u := int32(0); u < int32(n); u++ {
		dist := g.BFSDistances(u, false)
		var row []posting
		for v := int32(0); v < int32(n); v++ {
			if dist[v] >= 0 {
				row = append(row, posting{node: v, dist: dist[v]})
			}
		}
		idx.fwd[u] = row
	}
	return idx
}

func (idx *Index) reverse() [][]posting {
	idx.revOnce.Do(func() {
		rev := make([][]posting, idx.g.NumNodes())
		for u := range idx.fwd {
			for _, p := range idx.fwd[u] {
				rev[p.node] = append(rev[p.node], posting{node: int32(u), dist: p.dist})
			}
		}
		idx.rev = rev
	})
	return idx.rev
}

// Name implements pathindex.Index.
func (idx *Index) Name() string { return "tc" }

// NumNodes implements pathindex.Index.
func (idx *Index) NumNodes() int { return idx.g.NumNodes() }

// Pairs returns the number of stored (source, target) pairs.
func (idx *Index) Pairs() int {
	total := 0
	for _, row := range idx.fwd {
		total += len(row)
	}
	return total
}

func find(row []posting, y int32) (int32, bool) {
	i := sort.Search(len(row), func(i int) bool { return row[i].node >= y })
	if i < len(row) && row[i].node == y {
		return row[i].dist, true
	}
	return 0, false
}

// Reachable implements pathindex.Index by binary search in u's postings.
func (idx *Index) Reachable(x, y int32) bool {
	_, ok := find(idx.fwd[x], y)
	return ok
}

// Distance implements pathindex.Index.
func (idx *Index) Distance(x, y int32) (int32, bool) {
	return find(idx.fwd[x], y)
}

// EachReachable implements pathindex.Index.
func (idx *Index) EachReachable(x int32, fn pathindex.Visit) {
	emit(idx.fwd[x], idx.g, lgraph.NoTag, true, fn)
}

// EachReachableByTag implements pathindex.Index.
func (idx *Index) EachReachableByTag(x int32, tag lgraph.Tag, fn pathindex.Visit) {
	emit(idx.fwd[x], idx.g, tag, false, fn)
}

// EachReaching implements pathindex.Index.
func (idx *Index) EachReaching(x int32, fn pathindex.Visit) {
	emit(idx.reverse()[x], idx.g, lgraph.NoTag, true, fn)
}

// EachReachingByTag implements pathindex.Index.
func (idx *Index) EachReachingByTag(x int32, tag lgraph.Tag, fn pathindex.Visit) {
	emit(idx.reverse()[x], idx.g, tag, false, fn)
}

// emit sorts a postings row by (dist, node) and streams it.
func emit(row []posting, g *lgraph.LGraph, tag lgraph.Tag, wildcard bool, fn pathindex.Visit) {
	if !wildcard && tag == lgraph.NoTag {
		return
	}
	sorted := make([]posting, 0, len(row))
	for _, p := range row {
		if wildcard || g.Tag(p.node) == tag {
			sorted = append(sorted, p)
		}
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].dist != sorted[j].dist {
			return sorted[i].dist < sorted[j].dist
		}
		return sorted[i].node < sorted[j].node
	})
	for _, p := range sorted {
		if !fn(p.node, p.dist) {
			return
		}
	}
}

// WriteTo serializes the forward postings.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	sw := storage.NewWriter(w)
	sw.Header("tc")
	sw.Uvarint(uint64(len(idx.fwd)))
	for _, row := range idx.fwd {
		sw.Uvarint(uint64(len(row)))
		prev := int32(0)
		for _, p := range row {
			sw.Varint(int64(p.node - prev))
			prev = p.node
			sw.Varint(int64(p.dist))
		}
	}
	return sw.Flush()
}

// ReadBody deserializes an index written by WriteTo whose header has
// already been consumed.
func ReadBody(g *lgraph.LGraph, r *storage.Reader) (pathindex.Index, error) {
	n := int(r.Uvarint())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n != g.NumNodes() {
		return nil, fmt.Errorf("tc: stream has %d nodes, graph %d", n, g.NumNodes())
	}
	idx := &Index{g: g, fwd: make([][]posting, n)}
	for u := 0; u < n; u++ {
		k := int(r.Uvarint())
		if r.Err() != nil {
			return nil, r.Err()
		}
		if k > n {
			return nil, fmt.Errorf("tc: row %d has %d postings for %d nodes", u, k, n)
		}
		row := make([]posting, k)
		prev := int32(0)
		for i := range row {
			prev += int32(r.Varint())
			row[i] = posting{node: prev, dist: int32(r.Varint())}
		}
		idx.fwd[u] = row
	}
	return idx, r.Err()
}
