package tc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lgraph"
	"repro/internal/storage"
)

func TestReadBodyRoundTrip(t *testing.T) {
	g, idx := buildDiamond(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	r := storage.NewReader(&buf)
	if err := r.Header("tc"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBody(g, r)
	if err != nil {
		t.Fatal(err)
	}
	loaded := got.(*Index)
	if loaded.Pairs() != idx.Pairs() {
		t.Fatalf("pairs: %d vs %d", loaded.Pairs(), idx.Pairs())
	}
	for x := int32(0); x < int32(g.NumNodes()); x++ {
		for y := int32(0); y < int32(g.NumNodes()); y++ {
			d1, ok1 := idx.Distance(x, y)
			d2, ok2 := loaded.Distance(x, y)
			if ok1 != ok2 || (ok1 && d1 != d2) {
				t.Fatalf("Distance(%d,%d) differs", x, y)
			}
		}
	}
}

func TestReadBodyWrongGraph(t *testing.T) {
	_, idx := buildDiamond(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := lgraph.NewBuilder()
	b.AddNode("a")
	small := b.Finish()
	r := storage.NewReader(&buf)
	if err := r.Header("tc"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBody(small, r); err == nil {
		t.Error("ReadBody accepted a mismatched graph")
	}
}

func TestPropertyPersistRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		b := lgraph.NewBuilder()
		for i := 0; i < n; i++ {
			b.AddNode("t")
		}
		for e := rng.Intn(2 * n); e > 0; e-- {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Finish()
		idx := Build(g)
		var buf bytes.Buffer
		if _, err := idx.WriteTo(&buf); err != nil {
			return false
		}
		r := storage.NewReader(&buf)
		if err := r.Header("tc"); err != nil {
			return false
		}
		got, err := ReadBody(g, r)
		if err != nil {
			return false
		}
		loaded := got.(*Index)
		x := int32(rng.Intn(n))
		var a, c [][2]int32
		idx.EachReachable(x, func(u, d int32) bool { a = append(a, [2]int32{u, d}); return true })
		loaded.EachReachable(x, func(u, d int32) bool { c = append(c, [2]int32{u, d}); return true })
		if len(a) != len(c) {
			return false
		}
		for i := range a {
			if a[i] != c[i] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
