package hopi

// Compressed v2 snapshot section codec (kind SectionHOPIC).  The raw hopi
// section (section.go) already varint-delta-codes the label and posting
// blobs; what it spends freely are the four plain-u32 per-node offset
// tables (16 bytes per node) and one varint per field.  This encoding
// bit-packs the offset tables (storage.PackedI32 — ascending offsets pack
// to a few bits each) and switches the blobs to the prefix-truncated
// codec: the tiny distance (or distance delta) rides in the low two bits
// of the hub (or zig-zag node) varint, with tag 3 escaping to an explicit
// extra uvarint.  The same View type serves both encodings — the codec is
// a branch on View.tight, so the pooled-cursor k-way merge machinery and
// the probe surface are shared verbatim.
//
//	u32 n
//	u32 inLen, outLen, hubInLen, hubOutLen   (blob byte lengths)
//	packed inOff, outOff          n+1 values  byte offsets into the blobs
//	packed hubInOff, hubOutOff    n+1 values
//	in, out, hubIn, hubOut blobs              tight varint runs
//
// Label runs (in/out, hub-ascending):
//	uvarint(hubΔ<<2 | min(dist,3)) [uvarint(dist-3)]
// Posting runs (hubIn/hubOut, by (dist, node)):
//	uvarint(zigzag(nodeΔ)<<2 | min(distΔ,3)) [uvarint(distΔ-3)]

import (
	"encoding/binary"
	"fmt"

	"repro/internal/lgraph"
	"repro/internal/pathindex"
	"repro/internal/storage"
)

// CompressedSectionKind implements storage.CompressedSectionEncoder.
func (idx *Index) CompressedSectionKind() uint32 { return storage.SectionHOPIC }

// EncodeCompressedSection implements storage.CompressedSectionEncoder.
func (idx *Index) EncodeCompressedSection(sw *storage.SnapshotWriter) {
	encodeCompressed(sw, idx.in, idx.out, idx.hubIn, idx.hubOut)
}

// CompressedSectionKind implements storage.CompressedSectionEncoder.
func (v *View) CompressedSectionKind() uint32 { return storage.SectionHOPIC }

// EncodeCompressedSection re-encodes the view in the tight codec: verbatim
// when the view is already tight, otherwise by materializing the runs once
// (a cold, persistence-time path).
func (v *View) EncodeCompressedSection(sw *storage.SnapshotWriter) {
	if v.tight {
		sw.Raw(v.raw)
		return
	}
	decodeAllPostings := func(offs *offTab, blob []byte) [][]entry {
		out := make([][]entry, v.n)
		for h := int32(0); h < v.n; h++ {
			out[h] = decodePostings(run(offs, blob, h), v.n, v.tight)
		}
		return out
	}
	encodeCompressed(sw,
		decodeLabels(&v.inOff, v.inB, v.n, v.tight),
		decodeLabels(&v.outOff, v.outB, v.n, v.tight),
		decodeAllPostings(&v.hubInOff, v.hubInB),
		decodeAllPostings(&v.hubOutOff, v.hubOutB))
}

func encodeCompressed(sw *storage.SnapshotWriter, in, out, hubIn, hubOut [][]entry) {
	inOff, inB := encodeLabelRunsTight(in)
	outOff, outB := encodeLabelRunsTight(out)
	hubInOff, hubInB := encodePostingRunsTight(hubIn)
	hubOutOff, hubOutB := encodePostingRunsTight(hubOut)
	sw.U32(uint32(len(in)))
	sw.U32(uint32(len(inB)))
	sw.U32(uint32(len(outB)))
	sw.U32(uint32(len(hubInB)))
	sw.U32(uint32(len(hubOutB)))
	sw.PackedI32s(inOff)
	sw.PackedI32s(outOff)
	sw.PackedI32s(hubInOff)
	sw.PackedI32s(hubOutOff)
	sw.Raw(inB)
	sw.Raw(outB)
	sw.Raw(hubInB)
	sw.Raw(hubOutB)
}

// truncTag folds a non-negative value into a 2-bit tag with escape value 3.
func truncTag(v int32) uint64 {
	if v >= 3 {
		return 3
	}
	return uint64(v)
}

func encodeLabelRunsTight(labels [][]entry) ([]int32, []byte) {
	offs := make([]int32, len(labels)+1)
	var blob []byte
	for i, l := range labels {
		prev := int32(0)
		for _, e := range l {
			blob = binary.AppendUvarint(blob, uint64(e.hub-prev)<<2|truncTag(e.dist))
			if e.dist >= 3 {
				blob = binary.AppendUvarint(blob, uint64(e.dist-3))
			}
			prev = e.hub
		}
		offs[i+1] = int32(len(blob))
	}
	return offs, blob
}

func encodePostingRunsTight(postings [][]entry) ([]int32, []byte) {
	offs := make([]int32, len(postings)+1)
	var blob []byte
	for i, p := range postings {
		prevD, prevN := int32(0), int32(0)
		for _, e := range p {
			nd := int64(e.hub - prevN)
			zz := uint64(nd<<1 ^ nd>>63)
			dd := e.dist - prevD
			blob = binary.AppendUvarint(blob, zz<<2|truncTag(dd))
			if dd >= 3 {
				blob = binary.AppendUvarint(blob, uint64(dd-3))
			}
			prevD, prevN = e.dist, e.hub
		}
		offs[i+1] = int32(len(blob))
	}
	return offs, blob
}

// packedOffsets reads one bit-packed offset table and validates it the way
// PrefixOffsets validates the raw form: monotonic, starting at 0, ending
// at end — after which every run slice is in bounds by construction.
func packedOffsets(d *storage.SectionData, n int, end uint32) (storage.PackedI32, error) {
	p := d.PackedI32s()
	if err := d.Err(); err != nil {
		return storage.PackedI32{}, err
	}
	if p.Len() != n+1 {
		return storage.PackedI32{}, fmt.Errorf("%w: hopi: offset table has %d entries, want %d",
			storage.ErrCorrupt, p.Len(), n+1)
	}
	prev := uint32(p.At(0))
	if prev != 0 {
		return storage.PackedI32{}, fmt.Errorf("%w: hopi: offset table starts at %d", storage.ErrCorrupt, prev)
	}
	for i := int32(1); i <= int32(n); i++ {
		cur := uint32(p.At(i))
		if cur < prev {
			return storage.PackedI32{}, fmt.Errorf("%w: hopi: offset table not monotonic at %d", storage.ErrCorrupt, i)
		}
		prev = cur
	}
	if prev != end {
		return storage.PackedI32{}, fmt.Errorf("%w: hopi: offset table ends at %d, want %d", storage.ErrCorrupt, prev, end)
	}
	return p, nil
}

// OpenCompressedSection lays a View (in tight-codec mode) over the section
// bytes.  As with the raw opener, only the offset tables are validated —
// probes bounds-check every decoded hub and node, so a forged stream
// degrades to a truncated enumeration rather than a panic.
func OpenCompressedSection(g *lgraph.LGraph, data []byte) (pathindex.Index, error) {
	d := storage.NewSectionData(data)
	n := int(d.U32())
	inLen := int(d.U32())
	outLen := int(d.U32())
	hubInLen := int(d.U32())
	hubOutLen := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n != g.NumNodes() {
		return nil, fmt.Errorf("%w: hopi: section has %d nodes, graph %d", storage.ErrCorrupt, n, g.NumNodes())
	}
	v := &View{g: g, n: int32(n), raw: data, kind: storage.SectionHOPIC, tight: true}
	var err error
	if v.inOff.packed, err = packedOffsets(d, n, uint32(inLen)); err != nil {
		return nil, err
	}
	if v.outOff.packed, err = packedOffsets(d, n, uint32(outLen)); err != nil {
		return nil, err
	}
	if v.hubInOff.packed, err = packedOffsets(d, n, uint32(hubInLen)); err != nil {
		return nil, err
	}
	if v.hubOutOff.packed, err = packedOffsets(d, n, uint32(hubOutLen)); err != nil {
		return nil, err
	}
	v.inB = d.Bytes(inLen)
	v.outB = d.Bytes(outLen)
	v.hubInB = d.Bytes(hubInLen)
	v.hubOutB = d.Bytes(hubOutLen)
	if err := d.Err(); err != nil {
		return nil, err
	}
	return v, nil
}
