package hopi

// v2 snapshot section codec.  HOPI's labels and postings dominate index
// size, so unlike ppo/apex/tc — whose sections are fixed-width arrays the
// heap Index type can alias directly — the hopi section keeps them as
// delta-encoded varint runs and serves them through a dedicated View that
// decodes lazily per probe.  Nothing is decoded at open time: the four
// blobs stay raw bytes, and each probe walks storage.Cursor values over
// the mapped region.
//
//	u32 n
//	u32 inLen, outLen, hubInLen, hubOutLen   (blob byte lengths)
//	inOff, outOff         []u32 n+1           byte offsets into the blobs
//	hubInOff, hubOutOff   []u32 n+1
//	in, out, hubIn, hubOut blobs              raw varint runs
//
// Label runs (in/out, hub-ascending):    uvarint(hub Δ), uvarint(dist)
// Posting runs (hubIn/hubOut, by (dist, node)):
//	uvarint(dist Δ), varint(node Δ)       (zig-zag; node may regress)

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"repro/internal/lgraph"
	"repro/internal/pathindex"
	"repro/internal/storage"
)

// SectionKind implements storage.SectionEncoder.
func (idx *Index) SectionKind() uint32 { return storage.SectionHOPI }

// EncodeSection implements storage.SectionEncoder.
func (idx *Index) EncodeSection(sw *storage.SnapshotWriter) {
	inOff, inB := encodeLabelRuns(idx.in)
	outOff, outB := encodeLabelRuns(idx.out)
	hubInOff, hubInB := encodePostingRuns(idx.hubIn)
	hubOutOff, hubOutB := encodePostingRuns(idx.hubOut)
	sw.U32(uint32(len(idx.in)))
	sw.U32(uint32(len(inB)))
	sw.U32(uint32(len(outB)))
	sw.U32(uint32(len(hubInB)))
	sw.U32(uint32(len(hubOutB)))
	sw.U32s(inOff)
	sw.U32s(outOff)
	sw.U32s(hubInOff)
	sw.U32s(hubOutOff)
	sw.Raw(inB)
	sw.Raw(outB)
	sw.Raw(hubInB)
	sw.Raw(hubOutB)
}

// encodeLabelRuns delta-encodes hub-sorted label slices: hub deltas are
// non-negative, so both fields are plain uvarints.
func encodeLabelRuns(labels [][]entry) ([]uint32, []byte) {
	offs := make([]uint32, len(labels)+1)
	var blob []byte
	for i, l := range labels {
		prev := int32(0)
		for _, e := range l {
			blob = binary.AppendUvarint(blob, uint64(e.hub-prev))
			prev = e.hub
			blob = binary.AppendUvarint(blob, uint64(e.dist))
		}
		offs[i+1] = uint32(len(blob))
	}
	return offs, blob
}

// encodePostingRuns delta-encodes (dist, node)-sorted postings: distance
// deltas are non-negative uvarints, node deltas may regress and use
// zig-zag varints.
func encodePostingRuns(postings [][]entry) ([]uint32, []byte) {
	offs := make([]uint32, len(postings)+1)
	var blob []byte
	for i, p := range postings {
		prevD, prevN := int32(0), int32(0)
		for _, e := range p {
			blob = binary.AppendUvarint(blob, uint64(e.dist-prevD))
			blob = binary.AppendVarint(blob, int64(e.hub-prevN))
			prevD, prevN = e.dist, e.hub
		}
		offs[i+1] = uint32(len(blob))
	}
	return offs, blob
}

// View is an mmap-backed HOPI index: the probe surface of Index served
// directly from snapshot bytes.  Labels and postings are decoded per probe
// through stack-resident cursors; the only steady-state heap traffic is
// the pooled merge scratch, so enumeration stays allocation-free exactly
// like the heap index.
type View struct {
	g   *lgraph.LGraph
	n   int32
	raw []byte // whole section, for EncodeSection passthrough

	// kind and tight select the codec: SectionHOPI serves plain u32
	// offset tables and the loose varint runs, SectionHOPIC (csection.go)
	// serves bit-packed offset tables and the prefix-truncated runs.
	kind  uint32
	tight bool

	inOff, outOff       offTab
	hubInOff, hubOutOff offTab
	inB, outB           []byte
	hubInB, hubOutB     []byte

	// tagIn/tagOut cache decoded, tag-filtered postings per queried tag —
	// the same trade the heap index makes, and the one place the View
	// materializes entries.
	mu     sync.Mutex
	tagIn  map[lgraph.Tag][][]entry
	tagOut map[lgraph.Tag][][]entry

	merge sync.Pool
}

var _ pathindex.Index = (*View)(nil)
var _ storage.SectionEncoder = (*View)(nil)

// OpenSection lays a View over the section bytes.  Only the envelope (the
// offset tables) is validated; the varint runs themselves are not walked —
// that would be the parse step v2 exists to avoid.  Probes bounds-check
// every decoded hub and node instead, so even a forged stream degrades to
// a truncated enumeration rather than a panic.
func OpenSection(g *lgraph.LGraph, data []byte) (pathindex.Index, error) {
	d := storage.NewSectionData(data)
	n := int(d.U32())
	inLen := int(d.U32())
	outLen := int(d.U32())
	hubInLen := int(d.U32())
	hubOutLen := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n != g.NumNodes() {
		return nil, fmt.Errorf("hopi: section has %d nodes, graph %d", n, g.NumNodes())
	}
	v := &View{g: g, n: int32(n), raw: data, kind: storage.SectionHOPI}
	v.inOff = offTab{raw: d.PrefixOffsets(n, uint32(inLen))}
	v.outOff = offTab{raw: d.PrefixOffsets(n, uint32(outLen))}
	v.hubInOff = offTab{raw: d.PrefixOffsets(n, uint32(hubInLen))}
	v.hubOutOff = offTab{raw: d.PrefixOffsets(n, uint32(hubOutLen))}
	v.inB = d.Bytes(inLen)
	v.outB = d.Bytes(outLen)
	v.hubInB = d.Bytes(hubInLen)
	v.hubOutB = d.Bytes(hubOutLen)
	if err := d.Err(); err != nil {
		return nil, err
	}
	return v, nil
}

// SectionKind implements storage.SectionEncoder: the kind the View was
// opened as, so re-persisting keeps the same encoding.
func (v *View) SectionKind() uint32 { return v.kind }

// EncodeSection re-emits the section the View was opened from, verbatim —
// re-snapshotting an mmap-backed generation is a byte copy.
func (v *View) EncodeSection(sw *storage.SnapshotWriter) { sw.Raw(v.raw) }

// offTab is one per-node byte-offset table, either a zero-copy u32 view
// (raw sections) or a bit-packed array (compressed sections).  Both forms
// are validated monotonic and in-bounds at open time.
type offTab struct {
	raw    []uint32
	packed storage.PackedI32
}

func (o *offTab) at(i int32) uint32 {
	if o.raw != nil {
		return o.raw[i]
	}
	return uint32(o.packed.At(i))
}

// run returns the raw byte run of element x in a blob.
func run(offs *offTab, blob []byte, x int32) []byte {
	return blob[offs.at(x):offs.at(x+1)]
}

// nextLabel decodes one (hub, dist) label element; prev carries the hub
// delta chain.  The tight codec folds distances 0..2 into the hub delta's
// low bits (tag 3 escapes to an explicit uvarint) — 2-hop label distances
// are almost always tiny, so most entries are one varint instead of two.
func nextLabel(c *storage.Cursor, prev *int32, tight bool) (hub, dist int32, ok bool) {
	if tight {
		v, ok := c.Uvarint()
		if !ok {
			return 0, 0, false
		}
		*prev += int32(v >> 2)
		d := int32(v & 3)
		if d == 3 {
			e, ok := c.Uvarint()
			if !ok {
				return 0, 0, false
			}
			d += int32(e)
		}
		return *prev, d, true
	}
	dh, ok := c.Uvarint()
	if !ok {
		return 0, 0, false
	}
	dd, ok := c.Uvarint()
	if !ok {
		return 0, 0, false
	}
	*prev += int32(dh)
	return *prev, int32(dd), true
}

// labelDist merges x's Lout run and y's Lin run by hub — the 2-hop
// distance join, straight off the mapped bytes.
func (v *View) labelDist(xOut, yIn []byte) int32 {
	co := storage.Cursor{B: xOut}
	ci := storage.Cursor{B: yIn}
	var oprev, iprev int32
	best := infinity
	ohub, odist, ook := nextLabel(&co, &oprev, v.tight)
	ihub, idist, iok := nextLabel(&ci, &iprev, v.tight)
	for ook && iok {
		switch {
		case ohub < ihub:
			ohub, odist, ook = nextLabel(&co, &oprev, v.tight)
		case ohub > ihub:
			ihub, idist, iok = nextLabel(&ci, &iprev, v.tight)
		default:
			if s := odist + idist; s >= 0 && s < best {
				best = s
			}
			ohub, odist, ook = nextLabel(&co, &oprev, v.tight)
			ihub, idist, iok = nextLabel(&ci, &iprev, v.tight)
		}
	}
	return best
}

// Name implements pathindex.Index.
func (v *View) Name() string { return "hopi" }

// NumNodes implements pathindex.Index.
func (v *View) NumNodes() int { return int(v.n) }

// Reachable implements pathindex.Index.
func (v *View) Reachable(x, y int32) bool {
	return v.labelDist(run(&v.outOff, v.outB, x), run(&v.inOff, v.inB, y)) < infinity
}

// Distance implements pathindex.Index.
func (v *View) Distance(x, y int32) (int32, bool) {
	d := v.labelDist(run(&v.outOff, v.outB, x), run(&v.inOff, v.inB, y))
	if d == infinity {
		return 0, false
	}
	return d, true
}

// EachReachable implements pathindex.Index.
func (v *View) EachReachable(x int32, fn pathindex.Visit) {
	v.eachVia(run(&v.outOff, v.outB, x), &v.hubInOff, v.hubInB, nil, fn)
}

// EachReachableByTag implements pathindex.Index.
func (v *View) EachReachableByTag(x int32, tag lgraph.Tag, fn pathindex.Visit) {
	if tag == lgraph.NoTag {
		return
	}
	v.eachVia(run(&v.outOff, v.outB, x), nil, nil, v.taggedPostings(tag, false), fn)
}

// EachReaching implements pathindex.Index.
func (v *View) EachReaching(x int32, fn pathindex.Visit) {
	v.eachVia(run(&v.inOff, v.inB, x), &v.hubOutOff, v.hubOutB, nil, fn)
}

// EachReachingByTag implements pathindex.Index.
func (v *View) EachReachingByTag(x int32, tag lgraph.Tag, fn pathindex.Visit) {
	if tag == lgraph.NoTag {
		return
	}
	v.eachVia(run(&v.inOff, v.inB, x), nil, nil, v.taggedPostings(tag, true), fn)
}

// nextPosting decodes one (dist, node) posting element; prevD/prevN carry
// the delta chains.  The tight codec folds distance deltas 0..2 into the
// zig-zag node delta's low bits with a tag-3 escape, mirroring the tight
// label codec.
func nextPosting(c *storage.Cursor, prevD, prevN *int32, tight bool) bool {
	if tight {
		v, ok := c.Uvarint()
		if !ok {
			return false
		}
		zz := v >> 2
		*prevN += int32(int64(zz>>1) ^ -int64(zz&1))
		dd := int32(v & 3)
		if dd == 3 {
			e, ok := c.Uvarint()
			if !ok {
				return false
			}
			dd += int32(e)
		}
		*prevD += dd
		return true
	}
	dd, ok := c.Uvarint()
	if !ok {
		return false
	}
	dn, ok := c.Varint()
	if !ok {
		return false
	}
	*prevD += int32(dd)
	*prevN += int32(dn)
	return true
}

// decodePostings materializes one hub's posting run.
func decodePostings(b []byte, n int32, tight bool) []entry {
	c := storage.Cursor{B: b}
	var out []entry
	prevD, prevN := int32(0), int32(0)
	for {
		if !nextPosting(&c, &prevD, &prevN, tight) {
			return out
		}
		if prevN < 0 || prevN >= n || prevD < 0 {
			return out
		}
		out = append(out, entry{hub: prevN, dist: prevD})
	}
}

// taggedPostings mirrors (*Index).taggedPostings: decoded, tag-filtered
// postings built on first use per tag and cached.
func (v *View) taggedPostings(tag lgraph.Tag, reverse bool) [][]entry {
	v.mu.Lock()
	defer v.mu.Unlock()
	cache := &v.tagIn
	offs, blob := &v.hubInOff, v.hubInB
	if reverse {
		cache = &v.tagOut
		offs, blob = &v.hubOutOff, v.hubOutB
	}
	if *cache == nil {
		*cache = make(map[lgraph.Tag][][]entry)
	}
	if p, ok := (*cache)[tag]; ok {
		return p
	}
	filtered := make([][]entry, v.n)
	for h := int32(0); h < v.n; h++ {
		var keep []entry
		for _, e := range decodePostings(run(offs, blob, h), v.n, v.tight) {
			if v.g.Tag(e.hub) == tag {
				keep = append(keep, e)
			}
		}
		filtered[h] = keep
	}
	(*cache)[tag] = filtered
	return filtered
}

// vCursor is one posting stream position in the View's k-way merge.  It
// runs in one of two modes: raw (decoding a varint run in place) or
// decoded (walking a cached tag-filtered []entry).
type vCursor struct {
	c       storage.Cursor
	entries []entry
	epos    int
	tight   bool  // raw-mode codec selector
	prevD   int32 // raw-mode delta chains
	prevN   int32
	base    int32 // label distance added to every posting distance
	dist    int32 // current combined distance (cached key)
	node    int32 // current node (cached key)
}

// advance steps to the next posting; false at stream end.  Raw-mode
// anomalies (possible only past a forged checksum) read as stream end.
func (vc *vCursor) advance(n int32) bool {
	if vc.entries != nil {
		if vc.epos >= len(vc.entries) {
			return false
		}
		e := vc.entries[vc.epos]
		vc.epos++
		vc.dist = vc.base + e.dist
		vc.node = e.hub
		return true
	}
	if !nextPosting(&vc.c, &vc.prevD, &vc.prevN, vc.tight) {
		return false
	}
	if vc.prevN < 0 || vc.prevN >= n || vc.prevD < 0 {
		return false
	}
	vc.dist = vc.base + vc.prevD
	vc.node = vc.prevN
	return true
}

// viewScratch pools the merge state, mirroring mergeScratch on the heap
// index: heap backing array plus an epoch-stamped duplicate table.
type viewScratch struct {
	h    []vCursor
	seen []int64
	tick int64
}

// eachVia is (*Index).eachVia re-expressed over snapshot bytes: the label
// run names the hubs, each hub contributes one posting cursor, and a
// hand-rolled min-heap merges them in ascending (dist, node) order with
// epoch-based dedup.  Exactly one of (postOff, postB) and tagged is set.
func (v *View) eachVia(label []byte, postOff *offTab, postB []byte, tagged [][]entry, fn pathindex.Visit) {
	ms, _ := v.merge.Get().(*viewScratch)
	if ms == nil {
		ms = &viewScratch{seen: make([]int64, v.n)}
	}
	ms.tick++
	tick := ms.tick
	h := ms.h[:0]
	lc := storage.Cursor{B: label}
	var prevHub int32
	for {
		hub, ldist, ok := nextLabel(&lc, &prevHub, v.tight)
		if !ok {
			break
		}
		if hub < 0 || hub >= v.n || ldist < 0 {
			break
		}
		vc := vCursor{base: ldist, tight: v.tight}
		if tagged != nil {
			vc.entries = tagged[hub]
		} else {
			vc.c = storage.Cursor{B: run(postOff, postB, hub)}
		}
		if vc.advance(v.n) {
			h = append(h, vc)
		}
	}
	vheapInit(h)
	for len(h) > 0 {
		cur := &h[0]
		node, dist := cur.node, cur.dist
		if cur.advance(v.n) {
			vheapFix(h, 0)
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
			if len(h) > 0 {
				vheapFix(h, 0)
			}
		}
		if ms.seen[node] == tick {
			continue
		}
		ms.seen[node] = tick
		if !fn(node, dist) {
			break
		}
	}
	ms.h = h[:0]
	v.merge.Put(ms)
}

func vless(h []vCursor, i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].node < h[j].node
}

func vheapInit(h []vCursor) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		vheapFix(h, i)
	}
}

func vheapFix(h []vCursor, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && vless(h, l, smallest) {
			smallest = l
		}
		if r < len(h) && vless(h, r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// decodeLabels materializes one label blob back into per-node slices.
func decodeLabels(offs *offTab, blob []byte, n int32, tight bool) [][]entry {
	labels := make([][]entry, n)
	for x := int32(0); x < n; x++ {
		c := storage.Cursor{B: run(offs, blob, x)}
		var prev int32
		var l []entry
		for {
			hub, dist, ok := nextLabel(&c, &prev, tight)
			if !ok {
				break
			}
			l = append(l, entry{hub: hub, dist: dist})
		}
		labels[x] = l
	}
	return labels
}

// WriteTo implements pathindex.Index by re-emitting the exact v1 stream a
// heap-built index would write: an mmap-backed generation can still be
// persisted in the legacy format.
func (v *View) WriteTo(w io.Writer) (int64, error) {
	sw := storage.NewWriter(w)
	sw.Header("hopi")
	sw.Uvarint(uint64(v.n))
	writeLabels := func(labels [][]entry) {
		for _, l := range labels {
			sw.Uvarint(uint64(len(l)))
			prev := int32(0)
			for _, e := range l {
				sw.Varint(int64(e.hub - prev))
				prev = e.hub
				sw.Varint(int64(e.dist))
			}
		}
	}
	writeLabels(decodeLabels(&v.inOff, v.inB, v.n, v.tight))
	writeLabels(decodeLabels(&v.outOff, v.outB, v.n, v.tight))
	return sw.Flush()
}
