package hopi

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lgraph"
	"repro/internal/storage"
)

func roundTrip(t testing.TB, g *lgraph.LGraph, idx *Index) *Index {
	t.Helper()
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	r := storage.NewReader(&buf)
	if err := r.Header("hopi"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBody(g, r)
	if err != nil {
		t.Fatal(err)
	}
	return got.(*Index)
}

func TestReadBodyRoundTrip(t *testing.T) {
	g, idx := buildGraph(t)
	loaded := roundTrip(t, g, idx)
	if loaded.LabelEntries() != idx.LabelEntries() {
		t.Fatalf("label entries: %d vs %d", loaded.LabelEntries(), idx.LabelEntries())
	}
	for x := int32(0); x < int32(g.NumNodes()); x++ {
		for y := int32(0); y < int32(g.NumNodes()); y++ {
			d1, ok1 := idx.Distance(x, y)
			d2, ok2 := loaded.Distance(x, y)
			if ok1 != ok2 || (ok1 && d1 != d2) {
				t.Fatalf("Distance(%d,%d): %d,%t vs %d,%t", x, y, d1, ok1, d2, ok2)
			}
		}
	}
}

func TestReadBodyWrongGraph(t *testing.T) {
	g, idx := buildGraph(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	_ = g
	b := lgraph.NewBuilder()
	b.AddNode("a")
	small := b.Finish()
	r := storage.NewReader(&buf)
	if err := r.Header("hopi"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBody(small, r); err == nil {
		t.Error("ReadBody accepted a mismatched graph")
	}
}

func TestReadBodyCorrupt(t *testing.T) {
	g, idx := buildGraph(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	trunc := data[:len(data)/2]
	r := storage.NewReader(bytes.NewReader(trunc))
	if err := r.Header("hopi"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBody(g, r); err == nil {
		t.Error("ReadBody accepted a truncated stream")
	}
}

func TestPropertyPersistRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Intn(3*n))
		idx := Build(g)
		loaded := roundTrip(t, g, idx)
		x := int32(rng.Intn(n))
		// Enumeration including the rebuilt postings must agree.
		var a, b [][2]int32
		idx.EachReachable(x, func(u, d int32) bool { a = append(a, [2]int32{u, d}); return true })
		loaded.EachReachable(x, func(u, d int32) bool { b = append(b, [2]int32{u, d}); return true })
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
