package hopi

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/lgraph"
	"repro/internal/storage"
)

// buildGraph constructs the cyclic linked graph
//
//	0:a -> 1:b -> 3:b
//	0:a -> 2:c -> 3
//	3 -> 4:a -> 0   (cycle back to the root)
//	5:c            (isolated)
func buildGraph(t testing.TB) (*lgraph.LGraph, *Index) {
	t.Helper()
	b := lgraph.NewBuilder()
	for _, tag := range []string{"a", "b", "c", "b", "a", "c"} {
		b.AddNode(tag)
	}
	for _, e := range [][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 0}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Finish()
	return g, Build(g)
}

func TestReachableAndDistance(t *testing.T) {
	_, idx := buildGraph(t)
	cases := []struct {
		x, y int32
		dist int32 // -1 = unreachable
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 2}, {0, 4, 3},
		{3, 0, 2},  // through the cycle
		{1, 2, 4},  // 1->3->4->0->2
		{5, 0, -1}, // isolated
		{0, 5, -1}, // isolated
		{4, 4, 0},  // self
		{2, 1, 4},  // 2->3->4->0->1
	}
	for _, c := range cases {
		d, ok := idx.Distance(c.x, c.y)
		if c.dist < 0 {
			if ok {
				t.Errorf("Distance(%d,%d) = %d, want unreachable", c.x, c.y, d)
			}
			if idx.Reachable(c.x, c.y) {
				t.Errorf("Reachable(%d,%d) = true", c.x, c.y)
			}
			continue
		}
		if !ok || d != c.dist {
			t.Errorf("Distance(%d,%d) = %d,%t, want %d", c.x, c.y, d, ok, c.dist)
		}
		if !idx.Reachable(c.x, c.y) {
			t.Errorf("Reachable(%d,%d) = false", c.x, c.y)
		}
	}
}

func TestEachReachableOrder(t *testing.T) {
	_, idx := buildGraph(t)
	var nodes, dists []int32
	idx.EachReachable(0, func(n, d int32) bool {
		nodes = append(nodes, n)
		dists = append(dists, d)
		return true
	})
	wantNodes := []int32{0, 1, 2, 3, 4}
	wantDists := []int32{0, 1, 1, 2, 3}
	if !reflect.DeepEqual(nodes, wantNodes) || !reflect.DeepEqual(dists, wantDists) {
		t.Errorf("EachReachable(0) = %v %v, want %v %v", nodes, dists, wantNodes, wantDists)
	}
}

func TestEachReachableByTag(t *testing.T) {
	g, idx := buildGraph(t)
	var nodes []int32
	idx.EachReachableByTag(0, g.TagOf("b"), func(n, d int32) bool {
		nodes = append(nodes, n)
		return true
	})
	if !reflect.DeepEqual(nodes, []int32{1, 3}) {
		t.Errorf("b-descendants of 0 = %v", nodes)
	}
	idx.EachReachableByTag(0, lgraph.NoTag, func(n, d int32) bool {
		t.Error("NoTag must match nothing")
		return false
	})
}

func TestEachReaching(t *testing.T) {
	_, idx := buildGraph(t)
	var nodes, dists []int32
	idx.EachReaching(2, func(n, d int32) bool {
		nodes = append(nodes, n)
		dists = append(dists, d)
		return true
	})
	// Ancestors of 2: itself(0), 0(1), 4(2), 3(3), then 1 and 2's other
	// predecessors through the cycle: 1 -> 3 -> 4 -> 0 -> 2 gives 1 at 4.
	wantNodes := []int32{2, 0, 4, 3, 1}
	wantDists := []int32{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(nodes, wantNodes) || !reflect.DeepEqual(dists, wantDists) {
		t.Errorf("EachReaching(2) = %v %v, want %v %v", nodes, dists, wantNodes, wantDists)
	}
}

func TestEarlyStop(t *testing.T) {
	_, idx := buildGraph(t)
	count := 0
	idx.EachReachable(0, func(n, d int32) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestWriteTo(t *testing.T) {
	_, idx := buildGraph(t)
	n, err := storage.SizeOf(idx)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Errorf("size = %d", n)
	}
}

func TestLabelEntriesSmallerThanNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 120, 240)
	pruned := Build(g)
	naive := BuildNaive(g)
	if pruned.LabelEntries() >= naive.LabelEntries() {
		t.Errorf("pruned labels %d >= naive %d; the cover should compress",
			pruned.LabelEntries(), naive.LabelEntries())
	}
}

// randomGraph builds a random directed graph, deterministic in rng.
func randomGraph(rng *rand.Rand, n, edges int) *lgraph.LGraph {
	b := lgraph.NewBuilder()
	tags := []string{"a", "b", "c"}
	for i := 0; i < n; i++ {
		b.AddNode(tags[rng.Intn(len(tags))])
	}
	for e := 0; e < edges; e++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.Finish()
}

// checkAgainstBFS verifies reachability, distances and enumeration order of
// idx against the BFS oracle for a single start node.
func checkAgainstBFS(g *lgraph.LGraph, idx *Index, x int32) bool {
	dist := g.BFSDistances(x, false)
	for y := int32(0); y < int32(g.NumNodes()); y++ {
		d, ok := idx.Distance(x, y)
		if ok != (dist[y] >= 0) {
			return false
		}
		if ok && d != dist[y] {
			return false
		}
	}
	seen := make(map[int32]bool)
	last := int32(-1)
	good := true
	idx.EachReachable(x, func(n, d int32) bool {
		if d < last || dist[n] != d || seen[n] {
			good = false
			return false
		}
		last = d
		seen[n] = true
		return true
	})
	if !good {
		return false
	}
	for y := int32(0); y < int32(g.NumNodes()); y++ {
		if seen[y] != (dist[y] >= 0) {
			return false
		}
	}
	return true
}

func TestPropertyAgainstBFS(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(3*n))
		idx := Build(g)
		for trial := 0; trial < 4; trial++ {
			if !checkAgainstBFS(g, idx, int32(rng.Intn(n))) {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyReverseAgainstBFS(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(3*n))
		idx := Build(g)
		x := int32(rng.Intn(n))
		rdist := g.BFSDistances(x, true)
		seen := make(map[int32]int32)
		idx.EachReaching(x, func(u, d int32) bool {
			seen[u] = d
			return true
		})
		for y := int32(0); y < int32(n); y++ {
			d, ok := seen[y]
			if ok != (rdist[y] >= 0) {
				return false
			}
			if ok && d != rdist[y] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyPartitionedEqualsWhole(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(3*n))
		parts := 1 + rng.Intn(4)
		part := make([]int32, n)
		for i := range part {
			part[i] = int32(rng.Intn(parts))
		}
		idx := BuildPartitioned(g, part)
		for trial := 0; trial < 4; trial++ {
			if !checkAgainstBFS(g, idx, int32(rng.Intn(n))) {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestPropertyParallelBuildDeterministic verifies the parallel
// divide-and-conquer build's central guarantee: at every parallelism level
// the labels are identical to the serial build's — compared byte-for-byte
// through WriteTo, which serializes Lin and Lout exactly.
func TestPropertyParallelBuildDeterministic(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(60)
		g := randomGraph(rng, n, rng.Intn(3*n))
		parts := 1 + rng.Intn(5)
		part := make([]int32, n)
		for i := range part {
			part[i] = int32(rng.Intn(parts))
		}
		serial := serialize(t, BuildPartitioned(g, part))
		for _, parallelism := range []int{2, 4, 8} {
			par := serialize(t, BuildPartitionedParallel(g, part, parallelism))
			if !bytes.Equal(serial, par) {
				t.Logf("seed %d, %d nodes, %d partitions, parallelism %d: labels differ from serial build",
					seed, n, parts, parallelism)
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func serialize(t *testing.T, idx *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPropertyNaiveAgainstBFS(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Intn(2*n))
		idx := BuildNaive(g)
		return checkAgainstBFS(g, idx, int32(rng.Intn(n)))
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestIsolatedNode(t *testing.T) {
	b := lgraph.NewBuilder()
	b.AddNode("a")
	g := b.Finish()
	idx := Build(g)
	if !idx.Reachable(0, 0) {
		t.Error("single node must reach itself")
	}
	if d, ok := idx.Distance(0, 0); !ok || d != 0 {
		t.Errorf("self distance = %d,%t", d, ok)
	}
}
