// Package hopi implements the HOPI connection index (Schenkel, Theobald,
// Weikum, EDBT 2004), a distance-aware 2-hop cover (Cohen et al., SODA 2002)
// over an arbitrary directed graph.
//
// Every node v carries two labels: Lin(v), a set of (hub, d) pairs with a
// shortest path hub -> v of length d, and Lout(v), pairs with a shortest
// path v -> hub.  A node x reaches y iff Lout(x) and Lin(y) share a hub, and
// dist(x, y) = min over common hubs h of dist(x, h) + dist(h, y).
//
// Construction uses pruned landmark labeling: hubs are processed in
// descending (in+1)*(out+1) degree order (a stand-in for Cohen's
// densest-subgraph benefit heuristic); each hub performs a forward and a
// backward BFS that prunes every node whose distance is already covered by
// the labels built so far.  The result is an exact, minimal-per-order 2-hop
// cover with distances.
//
// BuildPartitioned mirrors the paper's divide-and-conquer construction
// (§2.2): the graph is divided into partitions, the nodes incident to
// partition-crossing edges ("border" nodes) are labeled first over the whole
// graph, and the remaining nodes are labeled with BFS runs confined to their
// own partition.  Every cross-partition path passes through a border hub, so
// the cover stays exact while the per-node work shrinks to partition size.
package hopi

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/lgraph"
	"repro/internal/pathindex"
	"repro/internal/storage"
)

// infinity is larger than any real distance (paths have < 2^31 edges).
const infinity int32 = math.MaxInt32

// entry is one label element: a hub and the shortest-path distance between
// the labeled node and the hub.
type entry struct {
	hub  int32
	dist int32
}

// Index is a distance-aware 2-hop label index.
type Index struct {
	g *lgraph.LGraph

	// in[v] and out[v] are sorted by hub ID.
	in, out [][]entry

	// postings for enumeration queries, built by finish: hubIn[h] lists
	// (node, dist) pairs with h in Lin(node) — the nodes a query can
	// reach *through* h; hubOut[h] symmetrically for Lout.  Sorted by
	// (dist, node) for the k-way streaming merge.
	hubIn, hubOut [][]entry

	// tagIn/tagOut cache tag-filtered copies of the postings, built
	// lazily per queried tag: enumerating a//b then only touches
	// b-postings instead of filtering the full stream per query.
	mu     sync.Mutex
	tagIn  map[lgraph.Tag][][]entry
	tagOut map[lgraph.Tag][][]entry

	// merge pools mergeScratch values so steady-state enumeration probes
	// allocate nothing — the heap backing array and the epoch-stamped seen
	// table are reused across queries.
	merge sync.Pool
}

// mergeScratch is the reusable state of one eachVia k-way merge: the heap's
// backing array and a duplicate table stamped with a per-use tick, so
// clearing it between probes is bumping the tick rather than wiping memory.
type mergeScratch struct {
	h    mergeHeap
	seen []int64
	tick int64
}

var _ pathindex.Index = (*Index)(nil)

// Strategy is the registry entry for whole-graph HOPI.
var Strategy = pathindex.Strategy{
	Name:  "hopi",
	Build: func(g *lgraph.LGraph) (pathindex.Index, error) { return Build(g), nil },
}

// Build constructs the index over the whole graph.
func Build(g *lgraph.LGraph) *Index {
	idx := newIndex(g)
	order := hubOrder(g)
	b := newBuilder(idx)
	for _, v := range order {
		b.label(v, nil)
	}
	idx.finish()
	return idx
}

// BuildPartitioned constructs the index with the divide-and-conquer scheme:
// part[v] gives the partition of node v.  Border nodes (endpoints of
// partition-crossing edges) are labeled over the whole graph first; all other
// nodes are labeled within their partition only.
func BuildPartitioned(g *lgraph.LGraph, part []int32) *Index {
	return BuildPartitionedParallel(g, part, 1)
}

// BuildPartitionedParallel is BuildPartitioned with the per-partition
// labeling step running on up to parallelism workers (<= 0 means all CPUs).
//
// Phase 1 (border hubs) stays sequential: each border BFS prunes against
// the labels of every earlier hub over the whole graph, so its outcome
// depends on the processing order.  Phase 2 is parallel across partitions:
// a partition-confined BFS reads and writes only labels of its own
// partition's nodes — border labels are complete and read-only by then —
// so partitions are independent, and processing each partition's interior
// hubs in global hub order makes the result identical to the serial build
// at every parallelism level.
func BuildPartitionedParallel(g *lgraph.LGraph, part []int32, parallelism int) *Index {
	idx := newIndex(g)
	b := newBuilder(idx)
	border := make([]bool, g.NumNodes())
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		for _, v := range g.Succs(u) {
			if part[u] != part[v] {
				border[u] = true
				border[v] = true
			}
		}
	}
	order := hubOrder(g)
	// Phase 1: border hubs, unrestricted BFS.
	for _, v := range order {
		if border[v] {
			b.label(v, nil)
		}
	}
	// Phase 2: interior hubs, BFS confined to the hub's partition.
	// Group them by partition, preserving hub order within each group.
	groupOf := make(map[int32]int)
	var groups [][]int32
	for _, v := range order {
		if border[v] {
			continue
		}
		gi, ok := groupOf[part[v]]
		if !ok {
			gi = len(groups)
			groupOf[part[v]] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], v)
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	workers := min(parallelism, len(groups))
	runGroup := func(b *builder, hubs []int32) {
		p := part[hubs[0]]
		within := func(u int32) bool { return part[u] == p }
		for _, v := range hubs {
			b.label(v, within)
		}
	}
	if workers <= 1 {
		for _, hubs := range groups {
			runGroup(b, hubs)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				wb := newBuilder(idx)
				for {
					gi := int(next.Add(1)) - 1
					if gi >= len(groups) {
						return
					}
					runGroup(wb, groups[gi])
				}
			}()
		}
		wg.Wait()
	}
	idx.finish()
	return idx
}

// AssignPartitions computes a node-level partitioning for BuildPartitioned:
// breadth-first regions over the undirected graph, capped at maxNodes
// elements each — the first step of HOPI's divide-and-conquer build
// ("partitions of the XML graph are built such that each partition does not
// exceed a configurable size and the number of partition-crossing edges is
// small").
func AssignPartitions(g *lgraph.LGraph, maxNodes int) []int32 {
	if maxNodes <= 0 {
		maxNodes = 1 << 30
	}
	n := g.NumNodes()
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	var queue []int32
	cur := int32(0)
	size := 0
	take := func(v int32) {
		assign[v] = cur
		size++
		queue = append(queue, v)
	}
	for seed := int32(0); seed < int32(n); seed++ {
		if assign[seed] != -1 {
			continue
		}
		if size >= maxNodes {
			cur++
			size = 0
			queue = queue[:0]
		}
		take(seed)
		for len(queue) > 0 && size < maxNodes {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Succs(v) {
				if assign[w] == -1 && size < maxNodes {
					take(w)
				}
			}
			for _, w := range g.Preds(v) {
				if assign[w] == -1 && size < maxNodes {
					take(w)
				}
			}
		}
	}
	return assign
}

// DCStrategy returns a registry entry for the divide-and-conquer build with
// the given partition cap, named "hopi-dc".  The resulting index answers
// exactly like Build's, but construction confines most BFS runs to one
// partition.
func DCStrategy(maxNodes int) pathindex.Strategy {
	return pathindex.Strategy{
		Name: "hopi-dc",
		Build: func(g *lgraph.LGraph) (pathindex.Index, error) {
			return BuildPartitioned(g, AssignPartitions(g, maxNodes)), nil
		},
		BuildParallel: func(g *lgraph.LGraph, parallelism int) (pathindex.Index, error) {
			return BuildPartitionedParallel(g, AssignPartitions(g, maxNodes), parallelism), nil
		},
	}
}

// BuildNaive constructs the trivial 2-hop cover that materializes the full
// transitive closure into Lout: Lout(u) = all nodes reachable from u with
// their distances, Lin(v) = {(v, 0)}.  It exists as the ablation baseline
// for the greedy cover (DESIGN.md §4.1) and as a correctness cross-check.
func BuildNaive(g *lgraph.LGraph) *Index {
	idx := newIndex(g)
	n := int32(g.NumNodes())
	for v := int32(0); v < n; v++ {
		idx.in[v] = []entry{{hub: v, dist: 0}}
	}
	for u := int32(0); u < n; u++ {
		dist := g.BFSDistances(u, false)
		for v := int32(0); v < n; v++ {
			if dist[v] >= 0 {
				idx.out[u] = append(idx.out[u], entry{hub: v, dist: dist[v]})
			}
		}
	}
	idx.finish()
	return idx
}

func newIndex(g *lgraph.LGraph) *Index {
	n := g.NumNodes()
	return &Index{
		g:   g,
		in:  make([][]entry, n),
		out: make([][]entry, n),
	}
}

// hubOrder returns the nodes in descending (in+1)*(out+1) order, ties by ID.
func hubOrder(g *lgraph.LGraph) []int32 {
	n := g.NumNodes()
	order := make([]int32, n)
	score := make([]int64, n)
	for i := 0; i < n; i++ {
		order[i] = int32(i)
		score[i] = int64(g.InDegree(int32(i))+1) * int64(g.OutDegree(int32(i))+1)
	}
	sort.Slice(order, func(a, b int) bool {
		if score[order[a]] != score[order[b]] {
			return score[order[a]] > score[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// builder holds the scratch state for pruned BFS runs.
type builder struct {
	idx   *Index
	dist  []int32 // BFS distances, reset between runs via touched
	queue []int32
}

func newBuilder(idx *Index) *builder {
	d := make([]int32, idx.g.NumNodes())
	for i := range d {
		d[i] = -1
	}
	return &builder{idx: idx, dist: d}
}

// label runs the pruned forward and backward BFS for hub v.  When within is
// non-nil, the BFS only visits nodes with within(u) == true.
func (b *builder) label(v int32, within func(int32) bool) {
	b.prunedBFS(v, false, within)
	b.prunedBFS(v, true, within)
}

func (b *builder) prunedBFS(v int32, reverse bool, within func(int32) bool) {
	g := b.idx.g
	b.queue = b.queue[:0]
	b.queue = append(b.queue, v)
	b.dist[v] = 0
	touched := []int32{v}
	for head := 0; head < len(b.queue); head++ {
		u := b.queue[head]
		d := b.dist[u]
		// Prune when the existing labels already certify dist <= d.
		var covered int32
		if reverse {
			covered = b.idx.labelDist(u, v)
		} else {
			covered = b.idx.labelDist(v, u)
		}
		if covered <= d {
			continue
		}
		if reverse {
			b.idx.out[u] = insertEntry(b.idx.out[u], entry{hub: v, dist: d})
		} else {
			b.idx.in[u] = insertEntry(b.idx.in[u], entry{hub: v, dist: d})
		}
		next := g.Succs(u)
		if reverse {
			next = g.Preds(u)
		}
		for _, w := range next {
			if b.dist[w] >= 0 {
				continue
			}
			if within != nil && !within(w) {
				continue
			}
			b.dist[w] = d + 1
			b.queue = append(b.queue, w)
			touched = append(touched, w)
		}
	}
	for _, u := range touched {
		b.dist[u] = -1
	}
}

// insertEntry inserts e into the hub-sorted label slice.
func insertEntry(label []entry, e entry) []entry {
	i := sort.Search(len(label), func(i int) bool { return label[i].hub >= e.hub })
	label = append(label, entry{})
	copy(label[i+1:], label[i:])
	label[i] = e
	return label
}

// labelDist returns the distance certified by the current labels, or
// infinity.  Both label slices are sorted by hub, so a merge suffices.
func (idx *Index) labelDist(x, y int32) int32 {
	lo, li := idx.out[x], idx.in[y]
	best := infinity
	i, j := 0, 0
	for i < len(lo) && j < len(li) {
		switch {
		case lo[i].hub < li[j].hub:
			i++
		case lo[i].hub > li[j].hub:
			j++
		default:
			if s := lo[i].dist + li[j].dist; s < best {
				best = s
			}
			i++
			j++
		}
	}
	return best
}

// finish builds the per-hub postings used by the enumeration queries.
// Postings are sorted by (dist, node) so that enumeration can stream them
// through a k-way merge in globally ascending distance order.
func (idx *Index) finish() {
	n := idx.g.NumNodes()
	idx.hubIn = make([][]entry, n)
	idx.hubOut = make([][]entry, n)
	for v := int32(0); v < int32(n); v++ {
		for _, e := range idx.in[v] {
			idx.hubIn[e.hub] = append(idx.hubIn[e.hub], entry{hub: v, dist: e.dist})
		}
		for _, e := range idx.out[v] {
			idx.hubOut[e.hub] = append(idx.hubOut[e.hub], entry{hub: v, dist: e.dist})
		}
	}
	byDist := func(p []entry) {
		sort.Slice(p, func(i, j int) bool {
			if p[i].dist != p[j].dist {
				return p[i].dist < p[j].dist
			}
			return p[i].hub < p[j].hub
		})
	}
	for h := range idx.hubIn {
		byDist(idx.hubIn[h])
		byDist(idx.hubOut[h])
	}
}

// Name implements pathindex.Index.
func (idx *Index) Name() string { return "hopi" }

// NumNodes implements pathindex.Index.
func (idx *Index) NumNodes() int { return idx.g.NumNodes() }

// Reachable implements pathindex.Index.
func (idx *Index) Reachable(x, y int32) bool {
	return idx.labelDist(x, y) < infinity
}

// Distance implements pathindex.Index.
func (idx *Index) Distance(x, y int32) (int32, bool) {
	d := idx.labelDist(x, y)
	if d == infinity {
		return 0, false
	}
	return d, true
}

// LabelEntries returns the total number of label entries (the paper's
// measure of HOPI index size).
func (idx *Index) LabelEntries() int {
	total := 0
	for v := range idx.in {
		total += len(idx.in[v]) + len(idx.out[v])
	}
	return total
}

// EachReachable implements pathindex.Index: it merges the postings of every
// hub in Lout(x), keeping the minimum distance per node, then emits in
// ascending (distance, node) order.
func (idx *Index) EachReachable(x int32, fn pathindex.Visit) {
	idx.eachVia(idx.out[x], idx.hubIn, lgraph.NoTag, false, fn)
}

// EachReachableByTag implements pathindex.Index.
func (idx *Index) EachReachableByTag(x int32, tag lgraph.Tag, fn pathindex.Visit) {
	if tag == lgraph.NoTag {
		return
	}
	idx.eachVia(idx.out[x], idx.taggedPostings(tag, false), lgraph.NoTag, false, fn)
}

// EachReaching implements pathindex.Index.
func (idx *Index) EachReaching(x int32, fn pathindex.Visit) {
	idx.eachVia(idx.in[x], idx.hubOut, lgraph.NoTag, false, fn)
}

// EachReachingByTag implements pathindex.Index.
func (idx *Index) EachReachingByTag(x int32, tag lgraph.Tag, fn pathindex.Visit) {
	if tag == lgraph.NoTag {
		return
	}
	idx.eachVia(idx.in[x], idx.taggedPostings(tag, true), lgraph.NoTag, false, fn)
}

// taggedPostings returns the postings restricted to one tag, building and
// caching them on first use.  Safe for concurrent queries.
func (idx *Index) taggedPostings(tag lgraph.Tag, reverse bool) [][]entry {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	cache := &idx.tagIn
	src := idx.hubIn
	if reverse {
		cache = &idx.tagOut
		src = idx.hubOut
	}
	if *cache == nil {
		*cache = make(map[lgraph.Tag][][]entry)
	}
	if p, ok := (*cache)[tag]; ok {
		return p
	}
	filtered := make([][]entry, len(src))
	for h := range src {
		var run []entry
		for _, e := range src[h] {
			if idx.g.Tag(e.hub) == tag {
				run = append(run, e)
			}
		}
		filtered[h] = run
	}
	(*cache)[tag] = filtered
	return filtered
}

// eachVia streams the union of the postings of every hub in label, in
// ascending (distance, node) order, via a k-way merge.  Each posting stream
// is sorted by distance, so the first time a node surfaces in the merged
// order carries its minimal distance; later surfacings are duplicates and
// are skipped.  The merge makes enumeration incremental: delivering the
// first k results costs O((|label| + k·dup) log |label|) rather than a full
// materialization — the property behind FliX's streaming evaluation.
func (idx *Index) eachVia(label []entry, postings [][]entry, tag lgraph.Tag, filter bool, fn pathindex.Visit) {
	ms, _ := idx.merge.Get().(*mergeScratch)
	if ms == nil {
		ms = &mergeScratch{seen: make([]int64, idx.g.NumNodes())}
	}
	ms.tick++
	tick := ms.tick
	h := ms.h[:0]
	for _, l := range label {
		p := postings[l.hub]
		if len(p) == 0 {
			continue
		}
		h = append(h, mergeCursor{
			stream: p,
			base:   l.dist,
			dist:   l.dist + p[0].dist,
			node:   p[0].hub,
		})
	}
	heapInit(h)
	for len(h) > 0 {
		cur := &h[0]
		node, dist := cur.node, cur.dist
		// Advance the top cursor.
		cur.pos++
		if cur.pos < len(cur.stream) {
			cur.dist = cur.base + cur.stream[cur.pos].dist
			cur.node = cur.stream[cur.pos].hub
			heapFix(h, 0)
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
			if len(h) > 0 {
				heapFix(h, 0)
			}
		}
		if ms.seen[node] == tick {
			continue
		}
		ms.seen[node] = tick
		if filter && idx.g.Tag(node) != tag {
			continue
		}
		if !fn(node, dist) {
			break
		}
	}
	ms.h = h[:0]
	idx.merge.Put(ms)
}

// mergeCursor is one posting stream position in the k-way merge.
type mergeCursor struct {
	stream []entry
	pos    int
	base   int32 // label distance added to every posting distance
	dist   int32 // current combined distance (cached key)
	node   int32 // current node (cached key)
}

// mergeHeap is a hand-rolled binary min-heap over (dist, node); it avoids
// container/heap's interface indirection on this hot path.
type mergeHeap []mergeCursor

func (h mergeHeap) less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].node < h[j].node
}

func heapInit(h mergeHeap) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		heapFix(h, i)
	}
}

func heapFix(h mergeHeap, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// WriteTo serializes both label sets.  The per-hub postings are derived data
// and are not stored; ReadBody rebuilds them.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	sw := storage.NewWriter(w)
	sw.Header("hopi")
	sw.Uvarint(uint64(len(idx.in)))
	writeLabels := func(labels [][]entry) {
		for _, l := range labels {
			sw.Uvarint(uint64(len(l)))
			prev := int32(0)
			for _, e := range l {
				sw.Varint(int64(e.hub - prev))
				prev = e.hub
				sw.Varint(int64(e.dist))
			}
		}
	}
	writeLabels(idx.in)
	writeLabels(idx.out)
	return sw.Flush()
}

// ReadBody deserializes an index written by WriteTo whose header has
// already been consumed.
func ReadBody(g *lgraph.LGraph, r *storage.Reader) (pathindex.Index, error) {
	n := int(r.Uvarint())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n != g.NumNodes() {
		return nil, fmt.Errorf("hopi: stream has %d nodes, graph %d", n, g.NumNodes())
	}
	idx := newIndex(g)
	readLabels := func(labels [][]entry) error {
		for v := range labels {
			k := int(r.Uvarint())
			if r.Err() != nil {
				return r.Err()
			}
			if k > 1<<28 {
				return fmt.Errorf("hopi: unreasonable label size %d", k)
			}
			l := make([]entry, k)
			prev := int32(0)
			for i := range l {
				prev += int32(r.Varint())
				l[i] = entry{hub: prev, dist: int32(r.Varint())}
				if prev < 0 || int(prev) >= n || l[i].dist < 0 {
					return fmt.Errorf("hopi: corrupt label entry (hub %d, dist %d)", prev, l[i].dist)
				}
			}
			labels[v] = l
		}
		return r.Err()
	}
	if err := readLabels(idx.in); err != nil {
		return nil, err
	}
	if err := readLabels(idx.out); err != nil {
		return nil, err
	}
	idx.finish()
	return idx, nil
}
