package hopi

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lgraph"
	"repro/internal/pathindex"
	"repro/internal/storage"
)

// tightView encodes idx's compressed section and opens a tight View over
// the bytes.
func tightView(t testing.TB, g *lgraph.LGraph, idx *Index) *View {
	t.Helper()
	body, err := storage.EncodeSectionBody(idx.EncodeCompressedSection)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := OpenCompressedSection(g, body)
	if err != nil {
		t.Fatal(err)
	}
	return pi.(*View)
}

// gather collects an enumeration into (node, dist) pairs.
func gather(each func(pathindex.Visit)) [][2]int32 {
	var out [][2]int32
	each(func(n, d int32) bool {
		out = append(out, [2]int32{n, d})
		return true
	})
	return out
}

func samePairs(a, b [][2]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCompressedSectionParity checks every probe of the tight view against
// the heap index over random labeled graphs — identical results, identical
// emission order.
func TestCompressedSectionParity(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(3*n))
		idx := Build(g)
		v := tightView(t, g, idx)
		if v.NumNodes() != n || v.Name() != "hopi" {
			return false
		}
		for x := int32(0); x < int32(n); x++ {
			for y := int32(0); y < int32(n); y++ {
				if idx.Reachable(x, y) != v.Reachable(x, y) {
					t.Logf("Reachable(%d,%d) differs", x, y)
					return false
				}
				d1, ok1 := idx.Distance(x, y)
				d2, ok2 := v.Distance(x, y)
				if ok1 != ok2 || d1 != d2 {
					t.Logf("Distance(%d,%d) differs", x, y)
					return false
				}
			}
			if !samePairs(
				gather(func(fn pathindex.Visit) { idx.EachReachable(x, fn) }),
				gather(func(fn pathindex.Visit) { v.EachReachable(x, fn) })) {
				t.Logf("EachReachable(%d) differs", x)
				return false
			}
			if !samePairs(
				gather(func(fn pathindex.Visit) { idx.EachReaching(x, fn) }),
				gather(func(fn pathindex.Visit) { v.EachReaching(x, fn) })) {
				t.Logf("EachReaching(%d) differs", x)
				return false
			}
			for tag := lgraph.Tag(-1); int(tag) <= g.NumTags(); tag++ {
				if !samePairs(
					gather(func(fn pathindex.Visit) { idx.EachReachableByTag(x, tag, fn) }),
					gather(func(fn pathindex.Visit) { v.EachReachableByTag(x, tag, fn) })) {
					t.Logf("EachReachableByTag(%d, %d) differs", x, tag)
					return false
				}
				if !samePairs(
					gather(func(fn pathindex.Visit) { idx.EachReachingByTag(x, tag, fn) }),
					gather(func(fn pathindex.Visit) { v.EachReachingByTag(x, tag, fn) })) {
					t.Logf("EachReachingByTag(%d, %d) differs", x, tag)
					return false
				}
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestCompressedWriteTo checks that the tight view re-emits the exact v1
// stream the heap index writes.
func TestCompressedWriteTo(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(3*n))
		idx := Build(g)
		v := tightView(t, g, idx)
		var want, got bytes.Buffer
		if _, err := idx.WriteTo(&want); err != nil {
			t.Fatal(err)
		}
		if _, err := v.WriteTo(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("seed %d: compressed WriteTo differs from heap WriteTo", seed)
		}
	}
}

// TestCompressedReencode checks the two re-encoding paths: a tight view
// passes its section through verbatim, and a raw view's compressed
// encoding matches the heap index's byte for byte.
func TestCompressedReencode(t *testing.T) {
	g, idx := buildGraph(t)
	comp, err := storage.EncodeSectionBody(idx.EncodeCompressedSection)
	if err != nil {
		t.Fatal(err)
	}

	v := tightView(t, g, idx)
	if v.SectionKind() != storage.SectionHOPIC {
		t.Fatalf("SectionKind = %d", v.SectionKind())
	}
	if v.CompressedSectionKind() != storage.SectionHOPIC {
		t.Fatalf("CompressedSectionKind = %d", v.CompressedSectionKind())
	}
	again, err := storage.EncodeSectionBody(v.EncodeSection)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(comp, again) {
		t.Fatal("tight EncodeSection is not a verbatim passthrough")
	}
	again, err = storage.EncodeSectionBody(v.EncodeCompressedSection)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(comp, again) {
		t.Fatal("tight EncodeCompressedSection is not a verbatim passthrough")
	}

	raw, err := storage.EncodeSectionBody(idx.EncodeSection)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := OpenSection(g, raw)
	if err != nil {
		t.Fatal(err)
	}
	recomp, err := storage.EncodeSectionBody(rv.(*View).EncodeCompressedSection)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(comp, recomp) {
		t.Fatal("raw view's compressed encoding differs from heap index's")
	}
}

// TestCompressedEarlyStop checks that a false-returning visitor stops the
// enumeration.
func TestCompressedEarlyStop(t *testing.T) {
	g, idx := buildGraph(t)
	v := tightView(t, g, idx)
	count := 0
	v.EachReachable(0, func(n, d int32) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("visited %d nodes, want 2", count)
	}
}

// TestCompressedSectionCorrupt flips every byte of an encoded section and
// requires OpenCompressedSection to either reject it or serve a view whose
// probes stay in bounds — never a panic.
func TestCompressedSectionCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 40, 90)
	idx := Build(g)
	body, err := storage.EncodeSectionBody(idx.EncodeCompressedSection)
	if err != nil {
		t.Fatal(err)
	}
	probe := func(pi pathindex.Index) {
		n := int32(g.NumNodes())
		for x := int32(0); x < n; x += 7 {
			pi.Reachable(x, (x*13)%n)
			pi.EachReachable(x, func(int32, int32) bool { return true })
			pi.EachReachableByTag(x, 1, func(int32, int32) bool { return true })
			pi.EachReaching(x, func(int32, int32) bool { return true })
		}
	}
	for i := range body {
		for _, bit := range []byte{1, 0x80} {
			c := append([]byte(nil), body...)
			c[i] ^= bit
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("byte %d bit %#x: panic %v", i, bit, r)
					}
				}()
				pi, err := OpenCompressedSection(g, c)
				if err == nil {
					probe(pi)
				}
			}()
		}
	}
	for cut := 0; cut < len(body); cut += 3 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("truncation to %d: panic %v", cut, r)
				}
			}()
			pi, err := OpenCompressedSection(g, body[:cut])
			if err == nil {
				probe(pi)
			}
		}()
	}
}

// TestCompressedSmallerThanRaw pins down that the tight encoding actually
// pays on a non-trivial graph.
func TestCompressedSmallerThanRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 400, 900)
	idx := Build(g)
	raw, err := storage.EncodeSectionBody(idx.EncodeSection)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := storage.EncodeSectionBody(idx.EncodeCompressedSection)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(raw) {
		t.Fatalf("compressed section is %d bytes, raw %d", len(comp), len(raw))
	}
	t.Logf("raw %d bytes, compressed %d bytes (%.2fx)", len(raw), len(comp),
		float64(len(raw))/float64(len(comp)))
}
