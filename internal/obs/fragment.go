package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// This file defines the distributed-trace types shared by the shard servers
// and the router.  A shard that evaluates a partial frontier under a Trace
// folds it into a TraceFragment — a compact, JSON-serializable aggregate
// that rides back inside EvalResponse — and the router assembles fragments
// plus its own dispatch/merge spans into a ClusterTrace, the `?trace=1`
// EXPLAIN payload of flixd-router.  Everything here is plain data: the
// package stays dependency-free so both internal/shard and cmd/flixquery
// can decode the same wire shapes.

// FragmentMetaLimit caps the per-meta-document detail rows a fragment
// carries on the wire.  Aggregates and the strategy breakdown are computed
// over ALL visited metas before the cap applies, so totals stay exact;
// MetasDropped records how many rows were cut.
const FragmentMetaLimit = 64

// StrategyStats aggregates trace activity by indexing strategy (ppo, hopi,
// apex, tc, ...) — the per-strategy view the FliX framework is built
// around: which index family did the work, and how long its probes took.
type StrategyStats struct {
	Metas    int           `json:"metas"`
	Entries  int64         `json:"entries"`
	Results  int64         `json:"results"`
	LinkHops int64         `json:"linkHops"`
	Probe    time.Duration `json:"probeNs"`
}

// TraceFragment is one shard's share of a distributed trace: the Summary
// of the bounded Trace its partial-frontier evaluation ran under, rolled
// up for the wire.  It carries no raw events — only meta-visit aggregates,
// the strategy breakdown, and the drop counter — so its size is bounded by
// FragmentMetaLimit regardless of query size.
type TraceFragment struct {
	Shard         int                      `json:"shard"`
	Generation    uint64                   `json:"generation,omitempty"`
	Elapsed       time.Duration            `json:"elapsedNs"`
	Pops          int64                    `json:"pops"`
	Entries       int64                    `json:"entries"`
	DupDrops      int64                    `json:"dupDrops"`
	LinkHops      int64                    `json:"linkHops"`
	Results       int64                    `json:"results"`
	EventsDropped int64                    `json:"eventsDropped,omitempty"`
	Metas         []MetaVisit              `json:"metas,omitempty"`
	MetasDropped  int                      `json:"metasDropped,omitempty"`
	Strategies    map[string]StrategyStats `json:"strategies,omitempty"`
}

// NewFragment folds a trace summary into the wire fragment for one shard.
// The strategy breakdown is computed over every visited meta document
// before the MetaVisit list is capped at FragmentMetaLimit.
func NewFragment(shard int, s Summary) *TraceFragment {
	f := &TraceFragment{
		Shard:         shard,
		Generation:    s.Generation,
		Elapsed:       s.Elapsed,
		Pops:          s.Pops,
		Entries:       s.Entries,
		DupDrops:      s.DupDrops,
		LinkHops:      s.LinkHops,
		Results:       s.Results,
		EventsDropped: s.Dropped,
	}
	if len(s.Metas) > 0 {
		f.Strategies = make(map[string]StrategyStats, 4)
		for _, m := range s.Metas {
			st := f.Strategies[m.Strategy]
			st.Metas++
			st.Entries += m.Entries
			st.Results += m.Results
			st.LinkHops += m.LinkHops
			st.Probe += m.Probe
			f.Strategies[m.Strategy] = st
		}
		metas := s.Metas
		if len(metas) > FragmentMetaLimit {
			f.MetasDropped = len(metas) - FragmentMetaLimit
			metas = metas[:FragmentMetaLimit]
		}
		f.Metas = append([]MetaVisit(nil), metas...)
	}
	return f
}

// MergeStrategyStats folds src into dst (allocating dst on first use) and
// returns it.  Both the fragment builder and the router's cluster rollup
// use it so the two breakdowns cannot drift.
func MergeStrategyStats(dst, src map[string]StrategyStats) map[string]StrategyStats {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(map[string]StrategyStats, len(src))
	}
	for k, v := range src {
		st := dst[k]
		st.Metas += v.Metas
		st.Entries += v.Entries
		st.Results += v.Results
		st.LinkHops += v.LinkHops
		st.Probe += v.Probe
		dst[k] = st
	}
	return dst
}

// Span is one timed node of the router's trace tree.  Start is the offset
// from the root's start on the router's monotonic clock; shard-side time
// lives in the attached Fragment (shard clocks are never compared).
type Span struct {
	Name     string           `json:"name"`
	Note     string           `json:"note,omitempty"`
	Start    time.Duration    `json:"startNs"`
	Duration time.Duration    `json:"durNs"`
	Attrs    map[string]int64 `json:"attrs,omitempty"`
	Fragment *TraceFragment   `json:"fragment,omitempty"`
	Children []*Span          `json:"children,omitempty"`
}

// SetAttr records one integer attribute on the span.
func (sp *Span) SetAttr(key string, v int64) {
	if sp.Attrs == nil {
		sp.Attrs = make(map[string]int64, 4)
	}
	sp.Attrs[key] = v
}

// ShardTraceSummary rolls one shard's fragments up across every round of a
// gather: RPC counts and wall time from the router's side, evaluation
// counters from the shard's fragments.
type ShardTraceSummary struct {
	Shard         int           `json:"shard"`
	RPCs          int           `json:"rpcs"`
	Errors        int           `json:"errors,omitempty"`
	RPCTime       time.Duration `json:"rpcNs"`
	Pops          int64         `json:"pops"`
	Entries       int64         `json:"entries"`
	DupDrops      int64         `json:"dupDrops"`
	LinkHops      int64         `json:"linkHops"`
	Results       int64         `json:"results"`
	Hops          int64         `json:"hops"` // frontier entries returned for foreign metas
	Probe         time.Duration `json:"probeNs"`
	EventsDropped int64         `json:"eventsDropped,omitempty"`
	Generation    uint64        `json:"generation,omitempty"`
}

// ClusterTrace is the merged router-side view of one scatter-gather query:
// outer-Dijkstra round counts, hop accounting, per-shard rollups, the
// cluster-wide strategy breakdown, and the span tree with per-dispatch
// fragments attached.  It is the `?trace=1` response body member on
// flixd-router, mirroring Summary on a single flixd.
type ClusterTrace struct {
	RequestID        string                   `json:"requestId,omitempty"`
	Elapsed          time.Duration            `json:"elapsedNs"`
	Gathers          int                      `json:"gathers"`
	Rounds           int                      `json:"rounds"`
	Fanouts          int                      `json:"fanouts"`
	HopsSeen         int64                    `json:"hopsSeen"`
	HopsRedispatched int64                    `json:"hopsRedispatched"`
	HopsDeduped      int64                    `json:"hopsDeduped"`
	BudgetExhausted  bool                     `json:"budgetExhausted,omitempty"`
	Partial          bool                     `json:"partial,omitempty"`
	FailedShards     []int                    `json:"failedShards,omitempty"`
	Results          int64                    `json:"results"`
	EventsDropped    int64                    `json:"eventsDropped,omitempty"`
	Shards           []ShardTraceSummary      `json:"shards"`
	Strategies       map[string]StrategyStats `json:"strategies,omitempty"`
	Root             *Span                    `json:"spans,omitempty"`
}

// Render writes the human-readable cluster EXPLAIN — the distributed
// counterpart of Summary.Render that flixquery prints when -explain runs
// against a router.
func (c ClusterTrace) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster trace: %d gathers, %d rounds, %d fanouts, %d hops seen (%d redispatched, %d deduped), %d results in %s",
		c.Gathers, c.Rounds, c.Fanouts, c.HopsSeen, c.HopsRedispatched, c.HopsDeduped,
		c.Results, c.Elapsed.Round(time.Microsecond))
	if c.RequestID != "" {
		fmt.Fprintf(&b, " [id %s]", c.RequestID)
	}
	b.WriteByte('\n')
	if c.BudgetExhausted {
		b.WriteString("hop budget exhausted: results may omit distant matches\n")
	}
	if c.Partial {
		fmt.Fprintf(&b, "PARTIAL results: shards %v failed\n", c.FailedShards)
	}
	if len(c.Shards) > 0 {
		fmt.Fprintf(&b, "%-6s %5s %5s %12s %8s %8s %8s %8s %6s %12s %8s\n",
			"shard", "rpcs", "errs", "rpc-time", "pops", "entries", "results", "hops", "drops", "probe", "gen")
		for _, s := range c.Shards {
			fmt.Fprintf(&b, "%-6d %5d %5d %12s %8d %8d %8d %8d %6d %12s %8d\n",
				s.Shard, s.RPCs, s.Errors, s.RPCTime.Round(time.Microsecond),
				s.Pops, s.Entries, s.Results, s.Hops, s.EventsDropped,
				s.Probe.Round(time.Microsecond), s.Generation)
		}
	}
	if len(c.Strategies) > 0 {
		names := make([]string, 0, len(c.Strategies))
		for k := range c.Strategies {
			names = append(names, k)
		}
		sort.Strings(names)
		b.WriteString("strategy breakdown: ")
		for i, k := range names {
			st := c.Strategies[k]
			if i > 0 {
				b.WriteString("; ")
			}
			fmt.Fprintf(&b, "%s: %d metas, %d entries, %d results, %s probe",
				k, st.Metas, st.Entries, st.Results, st.Probe.Round(time.Microsecond))
		}
		b.WriteByte('\n')
	}
	if c.EventsDropped > 0 {
		fmt.Fprintf(&b, "(%d shard trace events dropped beyond per-shard caps; aggregates stay exact)\n", c.EventsDropped)
	}
	if c.Root != nil {
		b.WriteString("spans:\n")
		renderSpan(&b, c.Root, 1)
	}
	return b.String()
}

// renderSpan prints one span line plus its subtree, two spaces per level.
func renderSpan(b *strings.Builder, sp *Span, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "%s", sp.Name)
	if sp.Note != "" {
		fmt.Fprintf(b, " (%s)", sp.Note)
	}
	fmt.Fprintf(b, " +%s %s", sp.Start.Round(time.Microsecond), sp.Duration.Round(time.Microsecond))
	if len(sp.Attrs) > 0 {
		keys := make([]string, 0, len(sp.Attrs))
		for k := range sp.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString(" [")
		for i, k := range keys {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(b, "%s=%d", k, sp.Attrs[k])
		}
		b.WriteString("]")
	}
	if f := sp.Fragment; f != nil {
		fmt.Fprintf(b, " {shard %d: %d pops, %d results, %d dropped}", f.Shard, f.Pops, f.Results, f.EventsDropped)
	}
	b.WriteByte('\n')
	for _, ch := range sp.Children {
		renderSpan(b, ch, depth+1)
	}
}
