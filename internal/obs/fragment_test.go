package obs

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// summaryWithMetas builds a Summary visiting n metas alternating between two
// strategies, with per-meta counters derived from the index so aggregate
// expectations are easy to state in closed form.
func summaryWithMetas(n int) Summary {
	s := Summary{Generation: 3, Elapsed: 5 * time.Millisecond}
	for i := 0; i < n; i++ {
		strat := "ppo"
		if i%2 == 1 {
			strat = "hopi"
		}
		s.Metas = append(s.Metas, MetaVisit{
			Meta:     int32(i),
			Strategy: strat,
			Entries:  int64(i + 1),
			Results:  int64(i),
			LinkHops: int64(i % 3),
			Probe:    time.Duration(i) * time.Microsecond,
		})
		s.Entries += int64(i + 1)
		s.Results += int64(i)
		s.LinkHops += int64(i % 3)
	}
	s.Pops = s.Entries + 7
	s.DupDrops = 11
	s.Dropped = 4
	return s
}

// TestNewFragmentStrategyBreakdown checks the fragment's core contract: the
// strategy breakdown and the scalar aggregates are computed over every
// visited meta, even when the wire-facing MetaVisit list is capped.
func TestNewFragmentStrategyBreakdown(t *testing.T) {
	const n = FragmentMetaLimit + 36
	s := summaryWithMetas(n)
	f := NewFragment(2, s)

	if f.Shard != 2 || f.Generation != 3 {
		t.Fatalf("identity fields: shard=%d gen=%d", f.Shard, f.Generation)
	}
	if f.Pops != s.Pops || f.Entries != s.Entries || f.DupDrops != s.DupDrops ||
		f.LinkHops != s.LinkHops || f.Results != s.Results || f.EventsDropped != s.Dropped {
		t.Fatalf("aggregates drifted from the summary: %+v vs %+v", f, s)
	}
	if len(f.Metas) != FragmentMetaLimit {
		t.Fatalf("meta list not capped: %d, want %d", len(f.Metas), FragmentMetaLimit)
	}
	if f.MetasDropped != n-FragmentMetaLimit {
		t.Fatalf("MetasDropped = %d, want %d", f.MetasDropped, n-FragmentMetaLimit)
	}

	// The breakdown must cover ALL n metas — the rows cut by the cap
	// included — and its totals must sum back to the fragment scalars.
	var metas int
	var entries, results, hops int64
	for _, st := range f.Strategies {
		metas += st.Metas
		entries += st.Entries
		results += st.Results
		hops += st.LinkHops
	}
	if metas != n {
		t.Fatalf("strategy breakdown covers %d metas, want %d", metas, n)
	}
	if entries != s.Entries || results != s.Results || hops != s.LinkHops {
		t.Fatalf("strategy totals (%d,%d,%d) != summary (%d,%d,%d)",
			entries, results, hops, s.Entries, s.Results, s.LinkHops)
	}
	if f.Strategies["ppo"].Metas != (n+1)/2 || f.Strategies["hopi"].Metas != n/2 {
		t.Fatalf("per-strategy meta counts: %+v", f.Strategies)
	}
}

// TestNewFragmentSmall checks the no-cap path: all metas on the wire, no
// drop counter.
func TestNewFragmentSmall(t *testing.T) {
	f := NewFragment(0, summaryWithMetas(5))
	if len(f.Metas) != 5 || f.MetasDropped != 0 {
		t.Fatalf("metas=%d dropped=%d, want 5/0", len(f.Metas), f.MetasDropped)
	}
	empty := NewFragment(1, Summary{Pops: 2})
	if empty.Metas != nil || empty.Strategies != nil {
		t.Fatalf("meta-free summary grew metas/strategies: %+v", empty)
	}
}

// TestFragmentJSONRoundTrip checks the wire shape survives encode/decode
// bit-for-bit — the fragment crosses the shard→router HTTP boundary and the
// router→flixquery one.
func TestFragmentJSONRoundTrip(t *testing.T) {
	f := NewFragment(3, summaryWithMetas(10))
	raw, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var got TraceFragment
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*f, got) {
		t.Fatalf("round trip drifted:\n in: %+v\nout: %+v", *f, got)
	}
	// Spot-check the stable JSON keys other components decode by name.
	for _, key := range []string{`"shard"`, `"elapsedNs"`, `"eventsDropped"`, `"strategies"`, `"probeNs"`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("encoded fragment lacks %s: %s", key, raw)
		}
	}
}

func TestMergeStrategyStats(t *testing.T) {
	a := map[string]StrategyStats{
		"ppo":  {Metas: 2, Entries: 10, Results: 4, Probe: time.Millisecond},
		"apex": {Metas: 1, Entries: 3},
	}
	b := map[string]StrategyStats{
		"ppo": {Metas: 1, Entries: 5, Results: 1, LinkHops: 2, Probe: time.Millisecond},
		"tc":  {Metas: 4},
	}
	got := MergeStrategyStats(nil, a)
	got = MergeStrategyStats(got, b)
	want := map[string]StrategyStats{
		"ppo":  {Metas: 3, Entries: 15, Results: 5, LinkHops: 2, Probe: 2 * time.Millisecond},
		"apex": {Metas: 1, Entries: 3},
		"tc":   {Metas: 4},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge = %+v, want %+v", got, want)
	}
	if MergeStrategyStats(nil, nil) != nil {
		t.Fatal("merging nothing into nil allocated a map")
	}
}

// TestClusterTraceRender checks the human EXPLAIN covers every section:
// header counts, degradation notes, per-shard table, strategy breakdown,
// the drop note and the span tree with an attached fragment.
func TestClusterTraceRender(t *testing.T) {
	frag := NewFragment(1, summaryWithMetas(3))
	root := &Span{Name: "descendants", Duration: 4 * time.Millisecond}
	gather := &Span{Name: "gather", Note: "tag=actor starts=1", Duration: 3 * time.Millisecond}
	round := &Span{Name: "round", Attrs: map[string]int64{"round": 1, "shards": 2}}
	round.Children = append(round.Children, &Span{Name: "dispatch", Fragment: frag, Attrs: map[string]int64{"shard": 1}})
	gather.Children = append(gather.Children, round)
	root.Children = append(root.Children, gather)

	ct := ClusterTrace{
		RequestID:        "req-9",
		Elapsed:          4 * time.Millisecond,
		Gathers:          1,
		Rounds:           2,
		Fanouts:          3,
		HopsSeen:         40,
		HopsRedispatched: 25,
		HopsDeduped:      15,
		BudgetExhausted:  true,
		Partial:          true,
		FailedShards:     []int{2},
		Results:          17,
		EventsDropped:    4,
		Shards: []ShardTraceSummary{
			{Shard: 0, RPCs: 2, Pops: 30, Results: 9},
			{Shard: 1, RPCs: 1, Errors: 1, Pops: 12, Results: 8, EventsDropped: 4},
		},
		Strategies: frag.Strategies,
		Root:       root,
	}
	out := ct.Render()
	for _, want := range []string{
		"1 gathers, 2 rounds, 3 fanouts",
		"40 hops seen (25 redispatched, 15 deduped)",
		"[id req-9]",
		"hop budget exhausted",
		"PARTIAL results: shards [2] failed",
		"strategy breakdown:",
		"ppo:",
		"(4 shard trace events dropped",
		"spans:",
		"gather (tag=actor starts=1)",
		"dispatch",
		"{shard 1:",
		"[round=1 shards=2]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
	// One table row per shard, shard column first.
	for _, s := range ct.Shards {
		if !strings.Contains(out, fmt.Sprintf("\n%-6d %5d", s.Shard, s.RPCs)) {
			t.Errorf("Render() missing the table row for shard %d:\n%s", s.Shard, out)
		}
	}
}

// TestClusterTraceJSONRoundTrip checks the ?trace=1 payload decodes back
// losslessly — flixquery consumes exactly this.
func TestClusterTraceJSONRoundTrip(t *testing.T) {
	ct := ClusterTrace{
		RequestID: "abc",
		Gathers:   2,
		Rounds:    3,
		HopsSeen:  9,
		Shards:    []ShardTraceSummary{{Shard: 0, RPCs: 1, Pops: 5}},
		Root: &Span{Name: "query", Children: []*Span{
			{Name: "gather", Attrs: map[string]int64{"rounds": 3}},
		}},
	}
	raw, err := json.Marshal(ct)
	if err != nil {
		t.Fatal(err)
	}
	var got ClusterTrace
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ct, got) {
		t.Fatalf("round trip drifted:\n in: %+v\nout: %+v", ct, got)
	}
	if !strings.Contains(string(raw), `"spans"`) || !strings.Contains(string(raw), `"shards"`) {
		t.Fatalf("cluster trace JSON lacks its marker keys: %s", raw)
	}
}

// TestWriteGoRuntimeText checks the runtime gauges render well-formed
// non-negative samples with HELP/TYPE pairs.
func TestWriteGoRuntimeText(t *testing.T) {
	var b strings.Builder
	WriteGoRuntimeText(func(format string, args ...any) { fmt.Fprintf(&b, format, args...) })
	out := b.String()
	for _, m := range []string{"go_goroutines", "go_memstats_heap_alloc_bytes", "go_gc_cycles_total", "go_gc_pause_seconds_total"} {
		if !strings.Contains(out, "# HELP "+m+" ") || !strings.Contains(out, "# TYPE "+m+" ") {
			t.Errorf("missing HELP/TYPE for %s:\n%s", m, out)
		}
		found := false
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, m+" ") {
				found = true
				if strings.HasPrefix(line, m+" -") {
					t.Errorf("negative sample: %q", line)
				}
			}
		}
		if !found {
			t.Errorf("no sample line for %s:\n%s", m, out)
		}
	}
}
