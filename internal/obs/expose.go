package obs

import (
	"math"
	"runtime"
	"strconv"
)

// This file holds the Prometheus text-exposition helpers shared by the
// single-node server (internal/server) and the scatter-gather router
// (internal/shard): both hand-roll the format on the standard library, and
// histogram rendering is exactly the part that must not drift between them.

// WriteHistogramText renders one histogram snapshot as a Prometheus
// histogram series with a single label through the caller's printf-style
// sink: cumulative _bucket lines, then _sum and _count.
func WriteHistogramText(p func(format string, args ...any), name, label, value string, sn HistSnapshot) {
	for _, bc := range sn.ExpositionBuckets() {
		le := "+Inf"
		if !math.IsInf(bc.Le, 1) {
			le = FormatFloat(bc.Le)
		}
		p("%s_bucket{%s=%q,le=%q} %d\n", name, label, value, le, bc.Count)
	}
	p("%s_sum{%s=%q} %s\n", name, label, value, FormatFloat(sn.Sum().Seconds()))
	p("%s_count{%s=%q} %d\n", name, label, value, sn.Count)
}

// FormatFloat renders a float the way Prometheus expects (shortest exact
// decimal/scientific form).
func FormatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// WriteGoRuntimeText exposes the Go runtime gauges every flix binary
// should publish — goroutine count, heap sizes, and GC pause totals — in
// the standard go_* metric names, through the caller's printf-style sink.
// runtime.ReadMemStats stops the world briefly; that cost is paid per
// /metrics scrape, never on a query path.
func WriteGoRuntimeText(p func(format string, args ...any)) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p("# HELP go_goroutines Number of goroutines that currently exist.\n")
	p("# TYPE go_goroutines gauge\n")
	p("go_goroutines %d\n", runtime.NumGoroutine())
	p("# HELP go_memstats_heap_alloc_bytes Number of heap bytes allocated and still in use.\n")
	p("# TYPE go_memstats_heap_alloc_bytes gauge\n")
	p("go_memstats_heap_alloc_bytes %d\n", ms.HeapAlloc)
	p("# HELP go_memstats_heap_inuse_bytes Number of heap bytes that are in use.\n")
	p("# TYPE go_memstats_heap_inuse_bytes gauge\n")
	p("go_memstats_heap_inuse_bytes %d\n", ms.HeapInuse)
	p("# HELP go_memstats_heap_sys_bytes Number of heap bytes obtained from system.\n")
	p("# TYPE go_memstats_heap_sys_bytes gauge\n")
	p("go_memstats_heap_sys_bytes %d\n", ms.HeapSys)
	p("# HELP go_memstats_next_gc_bytes Number of heap bytes when next garbage collection will take place.\n")
	p("# TYPE go_memstats_next_gc_bytes gauge\n")
	p("go_memstats_next_gc_bytes %d\n", ms.NextGC)
	p("# HELP go_gc_cycles_total Number of completed GC cycles.\n")
	p("# TYPE go_gc_cycles_total counter\n")
	p("go_gc_cycles_total %d\n", ms.NumGC)
	p("# HELP go_gc_pause_seconds_total Cumulative stop-the-world GC pause time.\n")
	p("# TYPE go_gc_pause_seconds_total counter\n")
	p("go_gc_pause_seconds_total %s\n", FormatFloat(float64(ms.PauseTotalNs)/1e9))
	last := ms.PauseNs[(ms.NumGC+255)%256]
	if ms.NumGC == 0 {
		last = 0
	}
	p("# HELP go_gc_last_pause_seconds Duration of the most recent GC stop-the-world pause.\n")
	p("# TYPE go_gc_last_pause_seconds gauge\n")
	p("go_gc_last_pause_seconds %s\n", FormatFloat(float64(last)/1e9))
}
