package obs

import (
	"math"
	"strconv"
)

// This file holds the Prometheus text-exposition helpers shared by the
// single-node server (internal/server) and the scatter-gather router
// (internal/shard): both hand-roll the format on the standard library, and
// histogram rendering is exactly the part that must not drift between them.

// WriteHistogramText renders one histogram snapshot as a Prometheus
// histogram series with a single label through the caller's printf-style
// sink: cumulative _bucket lines, then _sum and _count.
func WriteHistogramText(p func(format string, args ...any), name, label, value string, sn HistSnapshot) {
	for _, bc := range sn.ExpositionBuckets() {
		le := "+Inf"
		if !math.IsInf(bc.Le, 1) {
			le = FormatFloat(bc.Le)
		}
		p("%s_bucket{%s=%q,le=%q} %d\n", name, label, value, le, bc.Count)
	}
	p("%s_sum{%s=%q} %s\n", name, label, value, FormatFloat(sn.Sum().Seconds()))
	p("%s_count{%s=%q} %d\n", name, label, value, sn.Count)
}

// FormatFloat renders a float the way Prometheus expects (shortest exact
// decimal/scientific form).
func FormatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
