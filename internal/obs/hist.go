// Package obs is the observability toolkit behind FliX's serving and
// self-tuning layers: span-style query traces (trace.go) and lock-free
// latency histograms (this file).  It depends only on the standard library
// so every other package — the evaluator, the server, the CLIs — can use it
// without cycles or external modules.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of finite histogram buckets.  Bucket i counts
// observations whose duration in nanoseconds has bit length i, i.e. lies in
// [2^(i-1), 2^i).  40 buckets cover 1ns .. ~9.2 minutes; anything longer
// lands in the overflow (+Inf) bucket.
const NumBuckets = 40

// Histogram is a log2-bucketed latency histogram safe for concurrent use
// without locks: Observe is one atomic add on a bucket plus two on the
// count/sum, so it can sit on a request hot path.  The zero value is ready
// to use.
type Histogram struct {
	buckets  [NumBuckets + 1]atomic.Uint64 // [NumBuckets] = overflow
	count    atomic.Uint64
	sumNanos atomic.Int64
}

// bucketOf maps a non-negative duration to its bucket index.
func bucketOf(d time.Duration) int {
	i := bits.Len64(uint64(d))
	if i > NumBuckets {
		return NumBuckets
	}
	return i
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// Count returns the number of samples recorded so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot copies the counters.  Individual buckets are read atomically;
// samples landing mid-snapshot may be partially visible, which is
// acceptable for monitoring (cumulative counts stay monotonic across
// snapshots because buckets only grow).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	// Count is derived from the buckets rather than read from h.count so
	// the exposed +Inf cumulative always equals the bucket sum, even when
	// an Observe lands between the two loads.
	s.SumNanos = h.sumNanos.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	return s
}

// HistSnapshot is an immutable copy of a Histogram.
type HistSnapshot struct {
	Buckets  [NumBuckets + 1]uint64
	Count    uint64
	SumNanos int64
}

// BucketUpper returns the exclusive upper bound of bucket i in nanoseconds
// (2^i); the overflow bucket returns +Inf.
func BucketUpper(i int) float64 {
	if i >= NumBuckets {
		return math.Inf(1)
	}
	return float64(uint64(1) << uint(i))
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the containing bucket — the standard Prometheus estimation.  It
// returns 0 when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = float64(uint64(1) << uint(i-1))
		}
		hi := BucketUpper(i)
		if math.IsInf(hi, 1) {
			return time.Duration(lo) // best effort for the overflow bucket
		}
		frac := (rank - float64(prev)) / float64(c)
		return time.Duration(lo + (hi-lo)*frac)
	}
	return time.Duration(s.SumNanos) // unreachable unless racing snapshot
}

// Mean returns the average observed latency.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / int64(s.Count))
}

// Sum returns the total observed latency.
func (s HistSnapshot) Sum() time.Duration { return time.Duration(s.SumNanos) }

// exposeFirst is the first bucket index rendered individually in the
// Prometheus exposition: everything below 2^10 ns (1.024µs) is folded into
// the first rendered bucket, keeping the line count per series reasonable
// while the cumulative semantics stay exact.
const exposeFirst = 10

// exposeLast is the last finite bucket rendered (2^31 ns ≈ 2.1s); slower
// requests only show up in +Inf, which is where any sane alert looks.
const exposeLast = 31

// ExpositionBuckets returns the cumulative (le, count) pairs for the
// Prometheus text format, ending with the +Inf bucket.  Le bounds are in
// seconds.
func (s HistSnapshot) ExpositionBuckets() []BucketCount {
	out := make([]BucketCount, 0, exposeLast-exposeFirst+2)
	cum := uint64(0)
	for i := 0; i <= NumBuckets; i++ {
		cum += s.Buckets[i]
		if i < exposeFirst {
			continue
		}
		if i <= exposeLast {
			out = append(out, BucketCount{Le: BucketUpper(i) / 1e9, Count: cum})
		}
	}
	out = append(out, BucketCount{Le: math.Inf(1), Count: s.Count})
	return out
}

// BucketCount is one cumulative histogram bucket of the exposition format.
type BucketCount struct {
	Le    float64 // upper bound in seconds; +Inf for the last bucket
	Count uint64
}
