package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// EventKind classifies one trace event.
type EventKind uint8

const (
	// EvPop: the evaluator popped a frontier element off the priority
	// queue; Dist is the distance bound at that point (no later result
	// can be closer).
	EvPop EventKind = iota
	// EvEntry: a popped element was admitted as a new entry point of its
	// meta document (Strategy names the local index).
	EvEntry
	// EvDupDrop: a popped element was discarded by the §5.1 duplicate
	// elimination (an earlier entry point already covers it).
	EvDupDrop
	// EvProbe: one index probe of a meta document completed; Dist carries
	// the number of results it streamed and Elapsed its duration.
	EvProbe
	// EvLinkHop: a runtime link target was pushed onto the frontier at
	// priority Dist.
	EvLinkHop
	// EvResult: a result was emitted at distance Dist.
	EvResult
	// EvCacheHit / EvCacheMiss: the query cache answered / fell through.
	EvCacheHit
	EvCacheMiss
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvPop:
		return "pop"
	case EvEntry:
		return "entry"
	case EvDupDrop:
		return "dup-drop"
	case EvProbe:
		return "probe"
	case EvLinkHop:
		return "link-hop"
	case EvResult:
		return "result"
	case EvCacheHit:
		return "cache-hit"
	case EvCacheMiss:
		return "cache-miss"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// MarshalJSON renders the kind as its name.
func (k EventKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses the name form emitted by MarshalJSON, so remote
// clients (flixquery -server) can decode a server's EXPLAIN summary.
func (k *EventKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for c := EvPop; c <= EvCacheMiss; c++ {
		if c.String() == s {
			*k = c
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", s)
}

// Event is one span-style record.  T is the monotonic offset from the
// trace's start (time.Since on the monotonic clock).
type Event struct {
	T        time.Duration `json:"tNs"`
	Kind     EventKind     `json:"kind"`
	Meta     int32         `json:"meta"`
	Strategy string        `json:"strategy,omitempty"`
	Node     int64         `json:"node,omitempty"`
	Dist     int32         `json:"dist"`
	Elapsed  time.Duration `json:"elapsedNs,omitempty"`
}

// MetaVisit aggregates everything a trace saw inside one meta document —
// the row of flixquery's EXPLAIN output.
type MetaVisit struct {
	Meta      int32         `json:"meta"`
	Strategy  string        `json:"strategy"`
	Entries   int64         `json:"entries"`
	DupDrops  int64         `json:"dupDrops"`
	Results   int64         `json:"results"`
	LinkHops  int64         `json:"linkHops"`
	FirstDist int32         `json:"firstDist"` // distance bound at first admission
	Probe     time.Duration `json:"probeNs"`   // time spent in index probes
}

// DefaultEventLimit caps the raw event list of a Trace unless overridden;
// aggregate counters and MetaVisits keep accumulating past the cap, so
// EXPLAIN summaries stay exact on huge queries.
const DefaultEventLimit = 4096

// Trace records the events of one query evaluation.  The evaluator runs a
// query on a single goroutine, but cache replays, buffered emits and the
// server's slow-query logger may touch a trace from wrapping layers, so a
// mutex (uncontended in practice) keeps it safe for concurrent use.
//
// The engine-facing methods (Pop, Entry, ...) are all no-ops on a nil
// *Trace receiver... except they are never called on one: the evaluator
// guards every call behind a single `opts.Tracer != nil` check, the
// documented zero-overhead fast path.
type Trace struct {
	start time.Time
	limit int

	mu      sync.Mutex
	events  []Event
	dropped int64 // events beyond the limit

	pops, entries, dupDrops, linkHops, results int64
	cacheHit                                   bool
	generation                                 uint64
	metaOrder                                  []int32
	metas                                      map[int32]*MetaVisit
}

// SetGeneration tags the trace with the index generation that served the
// query, so EXPLAIN output and slow-query log lines remain attributable
// after a live reindex hot-swaps the index.
func (t *Trace) SetGeneration(g uint64) {
	t.mu.Lock()
	t.generation = g
	t.mu.Unlock()
}

// NewTrace starts a trace.  eventLimit bounds the raw event list (<= 0
// selects DefaultEventLimit).
func NewTrace(eventLimit int) *Trace {
	if eventLimit <= 0 {
		eventLimit = DefaultEventLimit
	}
	return &Trace{
		start: time.Now(),
		limit: eventLimit,
		metas: make(map[int32]*MetaVisit),
	}
}

// record appends an event, enforcing the cap.  Dropped events are counted
// so Summary can report the truncation instead of hiding it.
func (t *Trace) record(e Event) {
	if len(t.events) >= t.limit {
		t.dropped++
		return
	}
	e.T = time.Since(t.start)
	t.events = append(t.events, e)
}

// visit returns the MetaVisit for a meta document, creating it on first
// admission.
func (t *Trace) visit(meta int32, strategy string, dist int32) *MetaVisit {
	v, ok := t.metas[meta]
	if !ok {
		v = &MetaVisit{Meta: meta, Strategy: strategy, FirstDist: dist}
		t.metas[meta] = v
		t.metaOrder = append(t.metaOrder, meta)
	}
	if v.Strategy == "" {
		v.Strategy = strategy
	}
	return v
}

// Pop records a priority-queue pop at the given distance bound.
func (t *Trace) Pop(node int64, dist int32) {
	t.mu.Lock()
	t.pops++
	t.record(Event{Kind: EvPop, Node: node, Dist: dist})
	t.mu.Unlock()
}

// Entry records the admission of a new entry point into a meta document.
func (t *Trace) Entry(meta int32, strategy string, node int64, dist int32) {
	t.mu.Lock()
	t.entries++
	t.visit(meta, strategy, dist).Entries++
	t.record(Event{Kind: EvEntry, Meta: meta, Strategy: strategy, Node: node, Dist: dist})
	t.mu.Unlock()
}

// DupDrop records a pop discarded by duplicate elimination.
func (t *Trace) DupDrop(meta int32, node int64, dist int32) {
	t.mu.Lock()
	t.dupDrops++
	if v, ok := t.metas[meta]; ok {
		v.DupDrops++
	}
	t.record(Event{Kind: EvDupDrop, Meta: meta, Node: node, Dist: dist})
	t.mu.Unlock()
}

// Probe records one completed index probe: results streamed and duration.
func (t *Trace) Probe(meta int32, strategy string, results int, elapsed time.Duration) {
	t.mu.Lock()
	t.visit(meta, strategy, 0).Probe += elapsed
	t.record(Event{Kind: EvProbe, Meta: meta, Strategy: strategy, Dist: int32(results), Elapsed: elapsed})
	t.mu.Unlock()
}

// LinkHop records a runtime link push at the given frontier priority.
func (t *Trace) LinkHop(meta int32, node int64, dist int32) {
	t.mu.Lock()
	t.linkHops++
	if v, ok := t.metas[meta]; ok {
		v.LinkHops++
	}
	t.record(Event{Kind: EvLinkHop, Meta: meta, Node: node, Dist: dist})
	t.mu.Unlock()
}

// Result records an emitted result.  meta is the emitting meta document.
func (t *Trace) Result(meta int32, node int64, dist int32) {
	t.mu.Lock()
	t.results++
	if v, ok := t.metas[meta]; ok {
		v.Results++
	}
	t.record(Event{Kind: EvResult, Meta: meta, Node: node, Dist: dist})
	t.mu.Unlock()
}

// CacheHit marks the query as answered from the query cache.
func (t *Trace) CacheHit() {
	t.mu.Lock()
	t.cacheHit = true
	t.record(Event{Kind: EvCacheHit})
	t.mu.Unlock()
}

// CacheMiss marks a cache fall-through to the evaluator.
func (t *Trace) CacheMiss() {
	t.mu.Lock()
	t.record(Event{Kind: EvCacheMiss})
	t.mu.Unlock()
}

// Summary folds the trace into its reportable form.  The trace remains
// usable afterwards (the server summarizes once for the response and again
// for the slow-query log).
type Summary struct {
	Elapsed    time.Duration `json:"elapsedNs"`
	Generation uint64        `json:"generation"`
	Pops       int64         `json:"pops"`
	Entries    int64         `json:"entries"`
	DupDrops   int64         `json:"dupDrops"`
	LinkHops   int64         `json:"linkHops"`
	Results    int64         `json:"results"`
	CacheHit   bool          `json:"cacheHit"`
	Metas      []MetaVisit   `json:"metas"`
	Events     []Event       `json:"events,omitempty"`
	Dropped    int64         `json:"eventsDropped,omitempty"`
	NumEvents  int           `json:"numEvents"`
}

// Summary snapshots the trace.  withEvents includes the raw event list
// (EXPLAIN wants it; the slow-query log usually does not).
func (t *Trace) Summary(withEvents bool) Summary {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Summary{
		Elapsed:    time.Since(t.start),
		Generation: t.generation,
		Pops:       t.pops,
		Entries:    t.entries,
		DupDrops:   t.dupDrops,
		LinkHops:   t.linkHops,
		Results:    t.results,
		CacheHit:   t.cacheHit,
		Dropped:    t.dropped,
		NumEvents:  len(t.events),
	}
	s.Metas = make([]MetaVisit, 0, len(t.metaOrder))
	for _, mi := range t.metaOrder {
		s.Metas = append(s.Metas, *t.metas[mi])
	}
	if withEvents {
		s.Events = append([]Event(nil), t.events...)
	}
	return s
}

// Render writes the human-readable EXPLAIN form of the summary — the query
// plan flixquery -explain prints: per-meta-document strategy, entries, link
// hops, results, probe time, plus the frontier pop sequence.
func (s Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query plan: %d pops, %d entries (%d dup-dropped), %d link hops, %d results in %s",
		s.Pops, s.Entries, s.DupDrops, s.LinkHops, s.Results, s.Elapsed.Round(time.Microsecond))
	if s.Generation > 0 {
		fmt.Fprintf(&b, " [gen %d]", s.Generation)
	}
	if s.CacheHit {
		b.WriteString(" [cache hit]")
	}
	b.WriteByte('\n')
	if len(s.Metas) > 0 {
		fmt.Fprintf(&b, "%-6s %-10s %8s %8s %8s %8s %6s %12s\n",
			"meta", "strategy", "entries", "dups", "results", "hops", "dist", "probe")
		for _, m := range s.Metas {
			fmt.Fprintf(&b, "%-6d %-10s %8d %8d %8d %8d %6d %12s\n",
				m.Meta, m.Strategy, m.Entries, m.DupDrops, m.Results, m.LinkHops,
				m.FirstDist, m.Probe.Round(time.Nanosecond))
		}
	}
	if pops := s.popEvents(); len(pops) > 0 {
		b.WriteString("frontier pops (distance bounds): ")
		for i, e := range pops {
			if i > 0 {
				b.WriteString(" -> ")
			}
			fmt.Fprintf(&b, "%d", e.Dist)
			if i == 19 && len(pops) > 20 {
				fmt.Fprintf(&b, " ... (%d more)", len(pops)-20)
				break
			}
		}
		b.WriteByte('\n')
	}
	if s.Dropped > 0 {
		fmt.Fprintf(&b, "(%d events dropped beyond the %d-event cap; aggregates stay exact)\n",
			s.Dropped, s.NumEvents)
	}
	return b.String()
}

// popEvents filters the stored events down to the frontier pops, in order.
func (s Summary) popEvents() []Event {
	var out []Event
	for _, e := range s.Events {
		if e.Kind == EvPop {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}
