package obs

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// 1023ns has bit length 10 -> bucket 10 covers [512, 1024).
	h.Observe(1023 * time.Nanosecond)
	h.Observe(512 * time.Nanosecond)
	h.Observe(1024 * time.Nanosecond) // bucket 11
	h.Observe(0)                      // bucket 0
	h.Observe(-5)                     // clamped to 0
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Buckets[10] != 2 || s.Buckets[11] != 1 || s.Buckets[0] != 2 {
		t.Errorf("bucket spread wrong: [0]=%d [10]=%d [11]=%d", s.Buckets[0], s.Buckets[10], s.Buckets[11])
	}
	if got := s.Sum(); got != 2559*time.Nanosecond {
		t.Errorf("sum = %v, want 2559ns", got)
	}
}

func TestHistogramOverflow(t *testing.T) {
	var h Histogram
	h.Observe(time.Duration(math.MaxInt64))
	s := h.Snapshot()
	if s.Buckets[NumBuckets] != 1 {
		t.Errorf("overflow bucket = %d, want 1", s.Buckets[NumBuckets])
	}
	eb := s.ExpositionBuckets()
	last := eb[len(eb)-1]
	if !math.IsInf(last.Le, 1) || last.Count != 1 {
		t.Errorf("+Inf bucket = %+v, want count 1", last)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// A known distribution: 90 samples at ~1µs, 10 samples at ~1ms.
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1 * time.Millisecond)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.50); p50 < 512*time.Nanosecond || p50 > 2*time.Microsecond {
		t.Errorf("p50 = %v, want ~1µs", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 512*time.Microsecond || p99 > 2*time.Millisecond {
		t.Errorf("p99 = %v, want ~1ms", p99)
	}
	if q := s.Quantile(1); q < s.Quantile(0.5) {
		t.Errorf("q1 (%v) < q0.5 (%v)", q, s.Quantile(0.5))
	}
	var empty Histogram
	if q := empty.Snapshot().Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
}

func TestHistogramExpositionCumulative(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	eb := s.ExpositionBuckets()
	var prevLe float64 = -1
	var prevCount uint64
	for _, bc := range eb {
		if !math.IsInf(bc.Le, 1) && bc.Le <= prevLe {
			t.Errorf("le bounds not increasing: %v after %v", bc.Le, prevLe)
		}
		if bc.Count < prevCount {
			t.Errorf("cumulative counts decreasing: %d after %d", bc.Count, prevCount)
		}
		prevLe, prevCount = bc.Le, bc.Count
	}
	if eb[len(eb)-1].Count != s.Count {
		t.Errorf("+Inf cumulative = %d, want total %d", eb[len(eb)-1].Count, s.Count)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines while
// a reader keeps snapshotting percentiles — the -race test the ISSUE asks
// for.  Beyond the absence of races it checks that cumulative counts never
// regress across snapshots and that the final count is exact.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const writers = 8
	const perWriter = 5000
	stop := make(chan struct{})
	var lastInf uint64
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			s := h.Snapshot()
			_ = s.Quantile(0.5)
			_ = s.Quantile(0.95)
			_ = s.Quantile(0.99)
			eb := s.ExpositionBuckets()
			inf := eb[len(eb)-1].Count
			if inf < lastInf {
				t.Errorf("+Inf cumulative regressed: %d -> %d", lastInf, inf)
				return
			}
			lastInf = inf
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	if got := h.Snapshot().Count; got != writers*perWriter {
		t.Errorf("final count = %d, want %d", got, writers*perWriter)
	}
}

func TestTraceSummary(t *testing.T) {
	tr := NewTrace(0)
	tr.CacheMiss()
	tr.Pop(7, 0)
	tr.Entry(0, "ppo", 7, 0)
	tr.Probe(0, "ppo", 3, 42*time.Nanosecond)
	tr.LinkHop(0, 9, 2)
	tr.Result(0, 8, 1)
	tr.Pop(9, 2)
	tr.DupDrop(0, 9, 2)
	s := tr.Summary(true)
	if s.Pops != 2 || s.Entries != 1 || s.DupDrops != 1 || s.LinkHops != 1 || s.Results != 1 {
		t.Errorf("summary counters wrong: %+v", s)
	}
	if len(s.Metas) != 1 {
		t.Fatalf("metas = %d, want 1", len(s.Metas))
	}
	m := s.Metas[0]
	if m.Strategy != "ppo" || m.Entries != 1 || m.DupDrops != 1 || m.LinkHops != 1 ||
		m.Results != 1 || m.Probe != 42*time.Nanosecond {
		t.Errorf("meta visit wrong: %+v", m)
	}
	if len(s.Events) != s.NumEvents || s.NumEvents == 0 {
		t.Errorf("events = %d, numEvents = %d", len(s.Events), s.NumEvents)
	}
	out := s.Render()
	for _, want := range []string{"query plan:", "ppo", "frontier pops"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
}

func TestTraceEventCap(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Pop(int64(i), int32(i))
	}
	s := tr.Summary(true)
	if s.Pops != 10 {
		t.Errorf("pops = %d, want 10 (aggregates ignore the cap)", s.Pops)
	}
	if len(s.Events) != 4 || s.Dropped != 6 {
		t.Errorf("events = %d dropped = %d, want 4 / 6", len(s.Events), s.Dropped)
	}
	if !strings.Contains(s.Render(), "beyond the 4-event cap") {
		t.Error("Render() does not report skipped events")
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	tr := NewTrace(0)
	tr.CacheMiss()
	tr.Pop(7, 0)
	tr.Entry(0, "ppo", 7, 0)
	tr.Probe(0, "ppo", 3, 42*time.Nanosecond)
	tr.LinkHop(0, 9, 2)
	tr.Result(0, 8, 1)
	s := tr.Summary(true)
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got Summary
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Errorf("round trip mismatch:\n %+v\nvs %+v", s, got)
	}
	var k EventKind
	if err := k.UnmarshalJSON([]byte(`"bogus"`)); err == nil {
		t.Error("unknown kind should not decode")
	}
}
