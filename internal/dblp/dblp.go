// Package dblp generates a synthetic DBLP-like XML document collection.
//
// The paper's experiments (§6) use an extract of the real DBLP collection:
// one XML document per 2nd-level element (article, inproceedings, ...) for
// publications in EDBT, ICDE, SIGMOD and VLDB plus articles in TODS and the
// VLDB Journal — 6,210 documents with 168,991 elements and 25,368
// inter-document links.  That exact extract is not redistributable, so this
// generator produces a deterministic synthetic collection with the same
// element vocabulary, matched document count, per-document element counts
// (≈27 elements per document on average) and citation-link distribution
// (≈4.1 links per document with preferential attachment, so that a few
// heavily cited "hub" papers exist — the role Mohan's VLDB'99 ARIES paper
// plays in the paper's query experiment).
package dblp

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/xmlgraph"
)

// Venue describes one publication venue of the extract.
type Venue struct {
	Name    string
	Kind    string // "inproceedings" or "article"
	Journal string // journal/booktitle element content
}

// Venues mirrors the venues of the paper's extract.
var Venues = []Venue{
	{Name: "EDBT", Kind: "inproceedings", Journal: "EDBT"},
	{Name: "ICDE", Kind: "inproceedings", Journal: "ICDE"},
	{Name: "SIGMOD", Kind: "inproceedings", Journal: "SIGMOD Conference"},
	{Name: "VLDB", Kind: "inproceedings", Journal: "VLDB"},
	{Name: "TODS", Kind: "article", Journal: "ACM Trans. Database Syst."},
	{Name: "VLDBJ", Kind: "article", Journal: "VLDB J."},
}

// Params tunes the generator.  The zero value is not useful; start from
// DefaultParams.
type Params struct {
	// Docs is the number of publication documents (paper: 6,210).
	Docs int
	// MeanCites is the average number of citation links per document
	// (paper: 25,368 / 6,210 ≈ 4.1).
	MeanCites float64
	// MeanExtra is the average number of optional metadata elements per
	// document, calibrated so the mean document size matches the paper's
	// 168,991 / 6,210 ≈ 27.2 elements.
	MeanExtra float64
	// Seed makes the collection reproducible.
	Seed int64
}

// DefaultParams matches the paper's collection scale.
func DefaultParams() Params {
	return Params{Docs: 6210, MeanCites: 4.085, MeanExtra: 15.9, Seed: 42}
}

// Scaled returns DefaultParams shrunk to the given document count, keeping
// the per-document distributions; useful for fast tests and examples.
func Scaled(docs int) Params {
	p := DefaultParams()
	p.Docs = docs
	return p
}

// Publication is the intermediate representation shared by the collection
// builder and the XML writer.
type Publication struct {
	Key     string // e.g. "conf/vldb/Author99"
	Venue   Venue
	Year    int
	Title   string
	Authors []string
	Pages   string
	Extras  [][2]string // optional (tag, text) metadata elements
	Cites   []int       // indexes of cited publications
}

// Collection is a generated corpus.
type Collection struct {
	Pubs []Publication
	// HubIndex is the query-start publication — the stand-in for the
	// paper's "Mohan's VLDB'99 paper about ARIES": a late, citation-rich
	// paper whose transitive citation descendants span many documents
	// (citations point backward in publication order, so late papers have
	// the large descendant sets).
	HubIndex int
	// MostCitedIndex is the publication with the highest in-degree.
	MostCitedIndex int
}

var extraTags = []string{"ee", "url", "crossref", "month", "note", "volume", "number", "cdrom", "isbn", "publisher"}

var firstNames = []string{
	"Alice", "Bob", "Carlos", "Dana", "Erik", "Fatima", "Guo", "Hanna",
	"Igor", "Jun", "Karin", "Luis", "Mei", "Nils", "Olga", "Priya",
	"Quentin", "Rosa", "Stefan", "Tomoko", "Uwe", "Vera", "Wen", "Xenia",
	"Yusuf", "Zoe",
}

var lastNames = []string{
	"Mohan", "Schenkel", "Grust", "Cohen", "Widom", "Goldman", "Chung",
	"Theobald", "Weikum", "Kaushik", "Fagin", "Ley", "Sayed", "Unland",
	"Shasha", "Zhang", "Cooper", "Halevy", "Franklin", "Apers", "Jensen",
	"Suciu", "Vossen", "Eppstein",
}

var titleWords = []string{
	"adaptive", "indexing", "XML", "queries", "efficient", "scalable",
	"path", "connection", "distributed", "semistructured", "recovery",
	"transactions", "optimization", "streams", "views", "joins",
	"aggregation", "caching", "replication", "mining",
}

// Generate builds the synthetic corpus.
func Generate(p Params) *Collection {
	if p.Docs <= 0 {
		panic("dblp: Params.Docs must be positive")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	c := &Collection{Pubs: make([]Publication, p.Docs)}
	for i := range c.Pubs {
		c.Pubs[i] = genPub(rng, i, p)
	}
	// Citations with preferential attachment: papers cite earlier papers;
	// the target is chosen from earlier papers weighted by citations
	// received so far (plus one).  This yields a heavy-tailed in-degree
	// distribution like real citation graphs.
	inDeg := make([]int, p.Docs)
	totalWeight := 0 // sum of inDeg over earlier papers, maintained incrementally
	for i := 1; i < p.Docs; i++ {
		want := poisson(rng, p.MeanCites)
		if want > i {
			want = i
		}
		seen := make(map[int]bool, want)
		for n := 0; n < want; n++ {
			// Half the citations attach preferentially (heavy-tailed
			// in-degree, like real citation graphs); the other half are
			// uniform over earlier papers, which keeps the transitive
			// citation closure of late papers large — the property the
			// descendants experiment depends on.
			var t int
			if rng.Intn(2) == 0 {
				t = rng.Intn(i)
			} else {
				t = pickTarget(rng, inDeg, i, totalWeight+i)
			}
			if seen[t] {
				continue
			}
			seen[t] = true
			inDeg[t]++
			totalWeight++
		}
		cites := make([]int, 0, len(seen))
		for t := range seen {
			cites = append(cites, t)
		}
		// Deterministic order for reproducible XML output.
		sortInts(cites)
		c.Pubs[i].Cites = cites
	}
	for i, d := range inDeg {
		if d > inDeg[c.MostCitedIndex] {
			c.MostCitedIndex = i
		}
	}
	// Query start: the citation-richest paper among the latest decile.
	c.HubIndex = p.Docs - 1
	for i := p.Docs - p.Docs/10 - 1; i < p.Docs; i++ {
		if i >= 0 && len(c.Pubs[i].Cites) > len(c.Pubs[c.HubIndex].Cites) {
			c.HubIndex = i
		}
	}
	return c
}

// pickTarget samples an earlier paper index weighted by inDeg+1.
func pickTarget(rng *rand.Rand, inDeg []int, limit, totalWeight int) int {
	r := rng.Intn(totalWeight)
	for t := 0; t < limit; t++ {
		r -= inDeg[t] + 1
		if r < 0 {
			return t
		}
	}
	return limit - 1
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// poisson samples a Poisson variate by Knuth's inversion (fine for the
// small means used here).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

func genPub(rng *rand.Rand, i int, p Params) Publication {
	v := Venues[rng.Intn(len(Venues))]
	year := 1988 + rng.Intn(16) // 1988..2003, matching the extract era
	author := lastNames[rng.Intn(len(lastNames))]
	pub := Publication{
		Key:   fmt.Sprintf("%s/%s/%s%02d-%d", kindPrefix(v), v.Name, author, year%100, i),
		Venue: v,
		Year:  year,
		Title: genTitle(rng),
		Pages: fmt.Sprintf("%d-%d", 1+rng.Intn(500), 10+rng.Intn(500)+500),
	}
	nAuthors := 1 + rng.Intn(4)
	for a := 0; a < nAuthors; a++ {
		pub.Authors = append(pub.Authors,
			firstNames[rng.Intn(len(firstNames))]+" "+lastNames[rng.Intn(len(lastNames))])
	}
	nExtras := poisson(rng, p.MeanExtra)
	for x := 0; x < nExtras; x++ {
		tag := extraTags[rng.Intn(len(extraTags))]
		pub.Extras = append(pub.Extras, [2]string{tag, fmt.Sprintf("%s-%d", tag, rng.Intn(1000))})
	}
	return pub
}

func kindPrefix(v Venue) string {
	if v.Kind == "article" {
		return "journals"
	}
	return "conf"
}

func genTitle(rng *rand.Rand) string {
	n := 3 + rng.Intn(5)
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += " "
		}
		s += titleWords[rng.Intn(len(titleWords))]
	}
	return s
}

// DocName returns the document (file) name of publication i.
func (c *Collection) DocName(i int) string {
	return fmt.Sprintf("pub%06d.xml", i)
}

// BuildGraph materializes the corpus as an xmlgraph collection.  Each
// publication becomes one document shaped like DBLP records:
//
//	<article key="...">
//	  <author>...</author>+ <title>...</title> <year>...</year>
//	  <journal>|<booktitle>...</booktitle> <pages>...</pages>
//	  extras* <cite>...</cite>*
//	</article>
//
// Citation links run from each <cite> element to the cited document's root
// (inter-document links), exactly how the paper's extract links documents.
func (c *Collection) BuildGraph() *xmlgraph.Collection {
	coll := xmlgraph.NewCollection()
	c.AppendTo(coll)
	coll.Freeze()
	return coll
}

// AppendTo adds the corpus's documents and citation links to an existing,
// unfrozen collection — the building block for mixed collections combining
// a DBLP region with other document shapes.
func (c *Collection) AppendTo(coll *xmlgraph.Collection) {
	roots := make([]xmlgraph.NodeID, len(c.Pubs))
	type pendingCite struct {
		from   xmlgraph.NodeID
		target int
	}
	var pending []pendingCite
	for i := range c.Pubs {
		pub := &c.Pubs[i]
		b := coll.NewDocument(c.DocName(i))
		roots[i] = b.Enter(pub.Venue.Kind, "")
		for _, a := range pub.Authors {
			b.AddLeaf("author", a)
		}
		b.AddLeaf("title", pub.Title)
		b.AddLeaf("year", fmt.Sprintf("%d", pub.Year))
		if pub.Venue.Kind == "article" {
			b.AddLeaf("journal", pub.Venue.Journal)
		} else {
			b.AddLeaf("booktitle", pub.Venue.Journal)
		}
		b.AddLeaf("pages", pub.Pages)
		for _, ex := range pub.Extras {
			b.AddLeaf(ex[0], ex[1])
		}
		for _, t := range pub.Cites {
			cite := b.AddLeaf("cite", c.Pubs[t].Key)
			pending = append(pending, pendingCite{from: cite, target: t})
		}
		b.Leave()
		b.Close()
	}
	for _, pc := range pending {
		coll.AddLink(pc.from, roots[pc.target], xmlgraph.EdgeInterLink)
	}
}

// Hub returns the root element of the most-cited publication in a graph
// built by BuildGraph.
func (c *Collection) Hub(coll *xmlgraph.Collection) xmlgraph.NodeID {
	d, ok := coll.DocByName(c.DocName(c.HubIndex))
	if !ok {
		panic("dblp: hub document missing")
	}
	return coll.Doc(d).Root
}

// WriteXML renders every publication as an XML file in dir, with citation
// links as href attributes — the on-disk form consumed by xmlparse.LoadDir
// and the dblpgen command.
func (c *Collection) WriteXML(dir string) error {
	for i := range c.Pubs {
		f, err := os.Create(filepath.Join(dir, c.DocName(i)))
		if err != nil {
			return err
		}
		if err := c.writePub(f, i); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func (c *Collection) writePub(w io.Writer, i int) error {
	pub := &c.Pubs[i]
	if _, err := fmt.Fprintf(w, "<%s key=%q>\n", pub.Venue.Kind, pub.Key); err != nil {
		return err
	}
	leaf := func(tag, text string) error {
		_, err := fmt.Fprintf(w, "  <%s>%s</%s>\n", tag, xmlEscape(text), tag)
		return err
	}
	for _, a := range pub.Authors {
		if err := leaf("author", a); err != nil {
			return err
		}
	}
	if err := leaf("title", pub.Title); err != nil {
		return err
	}
	if err := leaf("year", fmt.Sprintf("%d", pub.Year)); err != nil {
		return err
	}
	venueTag := "booktitle"
	if pub.Venue.Kind == "article" {
		venueTag = "journal"
	}
	if err := leaf(venueTag, pub.Venue.Journal); err != nil {
		return err
	}
	if err := leaf("pages", pub.Pages); err != nil {
		return err
	}
	for _, ex := range pub.Extras {
		if err := leaf(ex[0], ex[1]); err != nil {
			return err
		}
	}
	for _, t := range pub.Cites {
		if _, err := fmt.Fprintf(w, "  <cite href=%q>%s</cite>\n",
			c.DocName(t), xmlEscape(c.Pubs[t].Key)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "</%s>\n", pub.Venue.Kind)
	return err
}

func xmlEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			out = append(out, "&amp;"...)
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '"':
			out = append(out, "&quot;"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
