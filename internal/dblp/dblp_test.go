package dblp

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/xmlgraph"
	"repro/internal/xmlparse"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Scaled(100))
	b := Generate(Scaled(100))
	if a.HubIndex != b.HubIndex || len(a.Pubs) != len(b.Pubs) {
		t.Fatal("generation is not deterministic")
	}
	for i := range a.Pubs {
		if a.Pubs[i].Key != b.Pubs[i].Key || len(a.Pubs[i].Cites) != len(b.Pubs[i].Cites) {
			t.Fatalf("pub %d differs", i)
		}
	}
	c := Generate(Params{Docs: 100, MeanCites: 4, MeanExtra: 11, Seed: 7})
	if c.Pubs[0].Key == a.Pubs[0].Key {
		t.Error("different seed produced the same corpus")
	}
}

func TestScaleMatchesPaper(t *testing.T) {
	// With a fraction of the full size, the per-document means must match
	// the paper's extract: ~27.2 elements/doc, ~4.1 links/doc.
	c := Generate(Scaled(1200))
	g := c.BuildGraph()
	if g.NumDocs() != 1200 {
		t.Fatalf("docs = %d", g.NumDocs())
	}
	elemsPerDoc := float64(g.NumNodes()) / float64(g.NumDocs())
	if math.Abs(elemsPerDoc-27.2) > 2.5 {
		t.Errorf("elements per doc = %.1f, want ≈27.2", elemsPerDoc)
	}
	linksPerDoc := float64(g.NumLinks()) / float64(g.NumDocs())
	if math.Abs(linksPerDoc-4.1) > 0.6 {
		t.Errorf("links per doc = %.2f, want ≈4.1", linksPerDoc)
	}
	// All links are inter-document citations to roots.
	for _, l := range g.Links() {
		if l.Kind != xmlgraph.EdgeInterLink {
			t.Fatal("unexpected intra-document link")
		}
		if g.Doc(g.DocOf(l.To)).Root != l.To {
			t.Fatal("citation does not point at a document root")
		}
	}
}

func TestHubSpansManyDocuments(t *testing.T) {
	c := Generate(Scaled(500))
	g := c.BuildGraph()
	// The most-cited paper collects far more than the mean (~4).
	mc, _ := g.DocByName(c.DocName(c.MostCitedIndex))
	inDeg := 0
	g.InLinks(g.Doc(mc).Root, func(xmlgraph.Link) { inDeg++ })
	if inDeg < 12 {
		t.Errorf("most-cited in-degree = %d, expected a clear hub", inDeg)
	}
	// The query-start paper's descendants must span many documents — the
	// property the Figure 5 query depends on.
	desc := g.Descendants(c.Hub(g))
	docs := map[xmlgraph.DocID]bool{}
	for _, n := range desc {
		docs[g.DocOf(n)] = true
	}
	if len(docs) < 50 {
		t.Errorf("query start reaches only %d documents", len(docs))
	}
}

func TestNoSelfOrForwardCites(t *testing.T) {
	c := Generate(Scaled(300))
	for i, p := range c.Pubs {
		for _, t2 := range p.Cites {
			if t2 >= i {
				t.Fatalf("pub %d cites %d (not strictly earlier)", i, t2)
			}
		}
	}
}

func TestWriteXMLRoundTrip(t *testing.T) {
	c := Generate(Scaled(40))
	dir := t.TempDir()
	if err := c.WriteXML(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 40 {
		t.Fatalf("wrote %d files", len(entries))
	}
	// Parse the files back; the parsed collection must match the directly
	// built one in structure.
	l := xmlparse.NewLoader()
	l.Strict = true
	if err := l.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	parsed, err := l.Finish()
	if err != nil {
		t.Fatal(err)
	}
	direct := c.BuildGraph()
	if parsed.NumDocs() != direct.NumDocs() ||
		parsed.NumNodes() != direct.NumNodes() ||
		parsed.NumLinks() != direct.NumLinks() {
		t.Errorf("parsed %d/%d/%d vs direct %d/%d/%d",
			parsed.NumDocs(), parsed.NumNodes(), parsed.NumLinks(),
			direct.NumDocs(), direct.NumNodes(), direct.NumLinks())
	}
}

func TestXMLEscape(t *testing.T) {
	if got := xmlEscape(`a<b>&"c`); got != "a&lt;b&gt;&amp;&quot;c" {
		t.Errorf("xmlEscape = %q", got)
	}
}

func TestWriteXMLBadDir(t *testing.T) {
	c := Generate(Scaled(2))
	if err := c.WriteXML(filepath.Join(t.TempDir(), "missing", "dir")); err == nil {
		t.Error("WriteXML into missing dir must fail")
	}
}
